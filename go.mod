module v10

go 1.22
