package v10_test

import (
	"fmt"
	"log"

	v10 "v10"
)

// Collocating an SA-heavy and a VU-heavy service under the full V10 design
// and reading the headline metrics.
func ExampleCollocate() {
	cfg := v10.DefaultConfig()
	bert, err := v10.NewWorkload("BERT", 32, 1, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ncf, err := v10.NewWorkload("NCF", 32, 2, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := v10.Collocate([]*v10.Workload{bert, ncf}, v10.SchemeV10Full,
		v10.Options{Requests: 5})
	if err != nil {
		log.Fatal(err)
	}
	// Closed-loop serving: the run ends once the slowest tenant (BERT)
	// finishes its quota; the faster NCF will have served more by then.
	fmt.Printf("BERT served %d requests; NCF at least %d\n",
		res.Workloads[0].Requests, min(res.Workloads[1].Requests, 5))
	// Output: BERT served 5 requests; NCF at least 5
}

// Profiling a single workload on a dedicated core (the §2 characterization
// methodology).
func ExampleProfile() {
	cfg := v10.DefaultConfig()
	w, err := v10.NewWorkload("MNIST", 32, 1, cfg)
	if err != nil {
		log.Fatal(err)
	}
	res, err := v10.Profile(w, v10.Options{Requests: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Scheme, res.Workloads[0].Requests)
	// Output: Single 3
}

// Driving the simulator with a custom operator trace instead of the
// built-in model zoo.
func ExampleCustomWorkload() {
	w := v10.CustomWorkload("mine", func(request int) *v10.Graph {
		return &v10.Graph{Ops: []v10.Op{
			{ID: 0, Kind: 0, Compute: 7000},                // 10 µs SA op
			{ID: 1, Kind: 1, Compute: 700, Deps: []int{0}}, // 1 µs VU op
		}}
	})
	res, err := v10.Profile(w, v10.Options{Requests: 2})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("request latency: %.0f µs\n", res.Workloads[0].AvgLatency()/700)
	// Output: request latency: 11 µs
}

// Recording a workload's trace and replaying it — the paper's
// trace-capture methodology.
func ExampleRecordTrace() {
	cfg := v10.DefaultConfig()
	w, err := v10.NewWorkload("DLRM", 32, 1, cfg)
	if err != nil {
		log.Fatal(err)
	}
	f := v10.RecordTrace(w, 4)
	replay, err := f.Workload()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(replay.Name, len(f.Requests))
	// Output: DLRM-b32 4
}
