package v10

import (
	"io"

	"v10/internal/cluster"
	"v10/internal/collocate"
	"v10/internal/trace"
)

// Placement assigns workload indices to NPU cores (§3.5): Placement[c]
// lists the workloads collocated on core c.
type Placement = cluster.Placement

// ClusterResult summarizes a multi-core simulation.
type ClusterResult = cluster.Result

// ClusterOptions configure SimulateCluster.
type ClusterOptions struct {
	Config   Config
	Requests int
	// UsePMT runs the PMT baseline on every core instead of V10-Full.
	UsePMT bool
	Seed   uint64
}

// NaivePlacement pairs workloads blindly in order — the baseline the
// clustering mechanism improves on.
func NaivePlacement(n int) Placement { return cluster.NaivePlacement(n) }

// PlanPlacement builds a full cluster placement from the advisor: the best
// compatible pairs share cores, the rest run dedicated.
func (a *Advisor) PlanPlacement(ws []*Workload) Placement {
	return cluster.AdvisorPlacement(a.model, a.features(ws))
}

// PlanGroups generalizes PlanPlacement to up to maxPerCore tenants per core
// (the paper's §5.9 deployments host "two or more" workloads per core).
func (a *Advisor) PlanGroups(ws []*Workload, maxPerCore int) Placement {
	return cluster.AdvisorGroups(a.model, a.features(ws), maxPerCore)
}

func (a *Advisor) features(ws []*Workload) []collocate.Features {
	feats := make([]collocate.Features, len(ws))
	for i, w := range ws {
		feats[i] = collocate.ExtractFeatures(w, a.cfg, a.requests)
	}
	return feats
}

// SimulateCluster runs every core of the placement (each core is an
// independent NPU with its own HBM) and aggregates cluster-level metrics:
// total normalized progress, mean utilization, and the worst tenant.
func SimulateCluster(ws []*Workload, p Placement, opt ClusterOptions) (*ClusterResult, error) {
	return cluster.Run(ws, p, cluster.Options{
		Config:   opt.Config,
		Requests: opt.Requests,
		UsePMT:   opt.UsePMT,
		Seed:     opt.Seed,
	})
}

// TraceFile is a recorded, replayable operator trace — this repository's
// equivalent of the instruction traces the paper captures on real TPUs.
type TraceFile = trace.File

// RecordTrace captures n requests from a workload into a replayable trace.
func RecordTrace(w *Workload, n int) *TraceFile { return trace.Record(w, n) }

// WriteTrace serializes a trace as JSON.
func WriteTrace(w io.Writer, f *TraceFile) error { return f.WriteJSON(w) }

// ReadTrace parses and validates a JSON trace; use TraceFile.Workload to
// replay it.
func ReadTrace(r io.Reader) (*TraceFile, error) { return trace.ReadJSON(r) }
