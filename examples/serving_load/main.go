// Serving-under-load example: beyond the paper's closed-loop methodology,
// the simulator supports open-loop Poisson arrivals, so you can trace the
// classic latency-vs-load curve of an ML service sharing an NPU with a
// collocated tenant — and see how much headroom V10's overlapped execution
// buys before the queue blows up.
package main

import (
	"fmt"
	"log"

	v10 "v10"
)

func main() {
	cfg := v10.DefaultConfig()

	// The service under test, collocated with a VU-heavy background tenant.
	mkPair := func() []*v10.Workload {
		svc, err := v10.NewWorkload("ResNet", 32, 1, cfg)
		if err != nil {
			log.Fatal(err)
		}
		bg, err := v10.NewWorkload("NCF", 32, 2, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return []*v10.Workload{svc, bg}
	}

	// Dedicated-core service rate for reference.
	solo, err := v10.Profile(mkPair()[0], v10.Options{Requests: 10})
	if err != nil {
		log.Fatal(err)
	}
	soloMS := solo.Workloads[0].AvgLatency() / 700e3
	fmt.Printf("ResNet service time alone: %.2f ms/request (≈ %.0f req/s capacity)\n\n",
		soloMS, 1000/soloMS)

	fmt.Printf("%-12s %14s %14s %12s\n", "load (req/s)", "avg lat (ms)", "p95 lat (ms)", "core util")
	for _, rate := range []float64{10, 30, 50, 70, 85} {
		res, err := v10.Collocate(mkPair(), v10.SchemeV10Full, v10.Options{
			Requests:      15,
			ArrivalRateHz: rate,
			Seed:          7,
		})
		if err != nil {
			log.Fatal(err)
		}
		svc := res.Workloads[0]
		fmt.Printf("%-12.0f %14.2f %14.2f %11.1f%%\n",
			rate,
			svc.AvgLatency()/700e3,
			svc.TailLatency(95)/700e3,
			100*res.AggregateUtil())
	}
	fmt.Println("\nLatency stays near the service time until the arrival rate approaches")
	fmt.Println("the shared core's capacity, then queueing delay takes over.")
}
