// Custom-traces example: drive the V10 simulator with your own operator
// traces instead of the built-in model zoo, and scale the core (paper §5.9).
// Here we model a hypothetical speech pipeline: a convolution front-end
// (long SA ops) feeding a feature post-processor (many short VU ops), and
// collocate it with a copy of itself on cores with 1–4 SAs/VUs.
package main

import (
	"fmt"
	"log"

	v10 "v10"
)

// speechPipeline emits one request: 6 conv blocks, each a 150 µs SA operator
// followed by four 8 µs VU operators (resampling, log-mel, normalization).
func speechPipeline(request int) *v10.Graph {
	g := &v10.Graph{}
	add := func(kind uint8, compute int64, bytes float64) {
		op := v10.Op{
			ID:       len(g.Ops),
			Compute:  compute,
			HBMBytes: bytes,
		}
		if kind == 1 {
			op.Kind = 1 // VU
		}
		if len(g.Ops) > 0 {
			op.Deps = []int{len(g.Ops) - 1}
		}
		g.Ops = append(g.Ops, op)
	}
	for block := 0; block < 6; block++ {
		add(0, 150*700, 2e6) // SA: 150 µs at 700 cycles/µs
		for i := 0; i < 4; i++ {
			add(1, 8*700, 1e5)
		}
	}
	return g
}

func main() {
	front := v10.CustomWorkload("speech-a", speechPipeline)
	back := v10.CustomWorkload("speech-b", speechPipeline)

	fmt.Println("two identical speech pipelines sharing one core:")
	fmt.Printf("%-8s %10s %10s %12s\n", "#SA/#VU", "SA util", "VU util", "avg lat (ms)")
	for _, fus := range []int{1, 2, 4} {
		cfg := v10.DefaultConfig().WithFUs(fus)
		res, err := v10.Collocate([]*v10.Workload{front, back}, v10.SchemeV10Full,
			v10.Options{Config: cfg, Requests: 20})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("(%d,%d)   %9.1f%% %9.1f%% %12.2f\n",
			fus, fus, 100*res.SAUtil(), 100*res.VUUtil(),
			res.Workloads[0].AvgLatency()/700e3)
	}

	fmt.Println("\nWith one SA the twin pipelines serialize on the convolution front-end;")
	fmt.Println("doubling the SAs removes the bottleneck without touching the traces.")
}
