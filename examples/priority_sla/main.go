// Priority/SLA example (paper §4, §5.6): a latency-sensitive ML service
// shares an NPU core with a best-effort batch workload. V10's priority-based
// scheduler (Algorithm 1) plus operator preemption keeps the prioritized
// service near its dedicated-core latency while the best-effort tenant
// harvests the leftover cycles — something PMT's coarse time slicing cannot
// do without hurting one side.
package main

import (
	"fmt"
	"log"

	v10 "v10"
)

func main() {
	cfg := v10.DefaultConfig()

	makePair := func(hiShare float64) []*v10.Workload {
		// ResNet serving with a tight SLA, DLRM as the best-effort harvester.
		serve, err := v10.NewWorkload("ResNet", 32, 1, cfg)
		if err != nil {
			log.Fatal(err)
		}
		batch, err := v10.NewWorkload("DLRM", 32, 2, cfg)
		if err != nil {
			log.Fatal(err)
		}
		return []*v10.Workload{
			serve.WithPriority(hiShare),
			batch.WithPriority(1 - hiShare),
		}
	}

	// Dedicated-core reference latency for the latency-sensitive service.
	solo, err := v10.Profile(makePair(0.5)[0], v10.Options{Requests: 10})
	if err != nil {
		log.Fatal(err)
	}
	soloP95 := solo.Workloads[0].TailLatency(95) / 700e3
	fmt.Printf("ResNet alone on a dedicated core: p95 = %.2f ms\n\n", soloP95)

	fmt.Printf("%-10s %12s %14s %16s\n", "priority", "scheme", "ResNet p95(ms)", "DLRM progress")
	for _, hiShare := range []float64{0.5, 0.7, 0.9} {
		for _, scheme := range []v10.Scheme{v10.SchemePMT, v10.SchemeV10Full} {
			pair := makePair(hiShare)
			res, err := v10.Collocate(pair, scheme, v10.Options{Requests: 10})
			if err != nil {
				log.Fatal(err)
			}
			p95 := res.Workloads[0].TailLatency(95) / 700e3
			fmt.Printf("%.0f%%-%.0f%%   %12s %11.2f ms %15.2f req/s\n",
				hiShare*100, (1-hiShare)*100, scheme,
				p95,
				float64(res.Workloads[1].Requests)/(float64(res.TotalCycles)/700e6))
		}
	}

	fmt.Println("\nWith 90% priority under V10-Full, the serving workload's tail latency")
	fmt.Println("approaches its dedicated-core baseline while DLRM still makes progress.")
}
