// Quickstart: collocate an SA-heavy language model (BERT) with a VU-heavy
// recommender (NCF) on one NPU core and compare the paper's four designs —
// PMT (preemptive multitasking, the prior state of the art) against the
// three V10 variants.
package main

import (
	"fmt"
	"log"

	v10 "v10"
)

func main() {
	cfg := v10.DefaultConfig()

	bert, err := v10.NewWorkload("BERT", 32, 1, cfg)
	if err != nil {
		log.Fatal(err)
	}
	ncf, err := v10.NewWorkload("NCF", 32, 2, cfg)
	if err != nil {
		log.Fatal(err)
	}
	pair := []*v10.Workload{bert, ncf}

	results, singleRates, err := v10.CompareSchemes(pair, v10.Options{Requests: 8})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("BERT + NCF on one NPU core (128×128 SA, 8×128×2 VU, 700 MHz):")
	fmt.Printf("%-10s %10s %10s %10s %12s\n", "scheme", "SA util", "VU util", "STP", "BERT avg lat")
	for _, name := range []string{"PMT", "V10-Base", "V10-Fair", "V10-Full"} {
		r := results[name]
		fmt.Printf("%-10s %9.1f%% %9.1f%% %10.2f %9.1f ms\n",
			name, 100*r.SAUtil(), 100*r.VUUtil(), r.STP(singleRates),
			r.Workloads[0].AvgLatency()/700e3)
	}

	pmt, full := results["PMT"], results["V10-Full"]
	fmt.Printf("\nV10-Full vs PMT: %.2fx utilization, %.2fx throughput\n",
		full.AggregateUtil()/pmt.AggregateUtil(),
		full.STP(singleRates)/pmt.STP(singleRates))
}
