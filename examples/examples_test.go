// Smoke test: every example program must build and run to completion. The
// examples are the repo's executable documentation — this keeps them honest
// against API drift.
package examples_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"
)

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("examples shell out to go run")
	}
	entries, err := os.ReadDir(".")
	if err != nil {
		t.Fatal(err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, e.Name())
		}
	}
	sort.Strings(dirs)
	if len(dirs) != 5 {
		t.Fatalf("expected the 5 documented examples, found %v", dirs)
	}
	for _, dir := range dirs {
		dir := dir
		t.Run(dir, func(t *testing.T) {
			t.Parallel()
			if _, err := os.Stat(filepath.Join(dir, "main.go")); err != nil {
				t.Fatalf("example %s has no main.go: %v", dir, err)
			}
			cmd := exec.Command("go", "run", "./"+dir)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run ./%s failed: %v\n%s", dir, err, out)
			}
			if len(out) == 0 {
				t.Fatalf("example %s produced no output", dir)
			}
		})
	}
}
