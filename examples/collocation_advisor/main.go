// Collocation-advisor example (paper §3.4/§3.5): a cluster operator has a
// fleet of ML services to place onto NPU cores. The advisor clusters the
// services by resource signature, predicts pairwise collocation gains from
// offline inter-cluster profiling, and produces a placement plan; we then
// simulate the plan against naive round-robin pairing to show the difference.
package main

import (
	"fmt"
	"log"

	v10 "v10"
)

func main() {
	cfg := v10.DefaultConfig()

	// The incoming fleet: a mix of SA-heavy and VU-heavy services.
	fleet := map[string]int{
		"BERT": 32, "Transformer": 32, "ResNet": 32, "RetinaNet": 32,
		"DLRM": 32, "NCF": 32, "MNIST": 32, "ShapeMask": 8,
	}
	var ws []*v10.Workload
	var names []string
	i := uint64(0)
	for _, name := range []string{"BERT", "Transformer", "ResNet", "RetinaNet", "DLRM", "NCF", "MNIST", "ShapeMask"} {
		w, err := v10.NewWorkload(name, fleet[name], i+1, cfg)
		if err != nil {
			log.Fatal(err)
		}
		ws = append(ws, w)
		names = append(names, w.Name)
		i++
	}

	fmt.Println("training the collocation advisor (offline pairwise profiling)...")
	adv, err := v10.TrainAdvisor(ws, v10.AdvisorOptions{
		Clusters: 4, ProfileRequests: 3, PairSamples: 8, Seed: 7,
	})
	if err != nil {
		log.Fatal(err)
	}
	for idx, w := range ws {
		fmt.Printf("  %-14s cluster %d\n", names[idx], adv.Cluster(w))
	}

	pairs, alone := adv.PlanPairs(ws)
	fmt.Println("\nadvisor plan:")
	for _, p := range pairs {
		fmt.Printf("  core: %s + %s (predicted %.2fx over PMT)\n",
			names[p[0]], names[p[1]], adv.PredictGain(ws[p[0]], ws[p[1]]))
	}
	for _, idx := range alone {
		fmt.Printf("  core: %s alone\n", names[idx])
	}

	// Compare full-cluster throughput: advisor placement vs naive adjacent
	// pairing (BERT+TFMR, RsNt+RtNt, ... — two SA-heavy models per core).
	fmt.Printf("\n%-22s %8s %10s %12s %14s\n", "placement", "cores", "Σ STP", "mean util", "worst tenant")
	for _, plan := range []struct {
		name string
		p    v10.Placement
	}{
		{"advisor (clustered)", adv.PlanPlacement(ws)},
		{"naive (adjacent)", v10.NaivePlacement(len(ws))},
	} {
		res, err := v10.SimulateCluster(ws, plan.p, v10.ClusterOptions{Requests: 5})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %8d %10.2f %9.1f%% %14.2f\n",
			plan.name, res.CoresUsed, res.TotalSTP, 100*res.AggUtil, res.WorstTenant)
	}
	fmt.Println("\nHigher Σ STP means the same fleet served with fewer NPU cores;")
	fmt.Println("a higher worst-tenant value means no service is starved.")
}
