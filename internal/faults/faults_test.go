package faults

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		want []Fault
	}{
		{"fail@1:30e6", []Fault{{Kind: KindFail, Core: 1, At: 30e6}}},
		{"stall@0:10e6+2e6", []Fault{{Kind: KindStall, Core: 0, At: 10e6, Dur: 2e6}}},
		{"hbm@2:5e6+8e6x0.5", []Fault{{Kind: KindHBM, Core: 2, At: 5e6, Dur: 8e6, Factor: 0.5}}},
		{"vmem@0:1e6+4e6x0.25", []Fault{{Kind: KindVMem, Core: 0, At: 1e6, Dur: 4e6, Factor: 0.25}}},
		{
			"fail@1:500000; stall@0:1000+500 , hbm@0:9000+100x0.75",
			[]Fault{
				{Kind: KindFail, Core: 1, At: 500000},
				{Kind: KindStall, Core: 0, At: 1000, Dur: 500},
				{Kind: KindHBM, Core: 0, At: 9000, Dur: 100, Factor: 0.75},
			},
		},
		{"", nil},
		{" ; , ", nil},
	}
	for _, tc := range cases {
		s, err := Parse(tc.spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.spec, err)
		}
		if !reflect.DeepEqual(s.Faults, tc.want) {
			t.Fatalf("Parse(%q) = %+v, want %+v", tc.spec, s.Faults, tc.want)
		}
		// String() renders back into the grammar; reparsing must be stable.
		back, err := Parse(s.String())
		if err != nil {
			t.Fatalf("Parse(String(%q)) = %q: %v", tc.spec, s.String(), err)
		}
		if !reflect.DeepEqual(back.Faults, s.Faults) {
			t.Fatalf("%q does not round-trip: %+v vs %+v", tc.spec, back.Faults, s.Faults)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"fail",               // no @
		"melt@0:100",         // unknown kind
		"fail@0",             // no :at
		"fail@x:100",         // bad core
		"fail@0:abc",         // bad start cycle
		"fail@0:100+50",      // fail takes no dur
		"fail@0:100x0.5",     // fail takes no factor
		"stall@0:100",        // stall needs dur
		"stall@0:100+abc",    // bad dur
		"stall@0:100+50x0.5", // stall takes no factor
		"hbm@0:100+50",       // hbm needs factor
		"hbm@0:100+50xzz",    // bad factor
		"vmem@0:100x0.5",     // vmem needs dur
		"fail@0:-5",          // negative number
		"stall@0:100+-50",    // negative dur
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) accepted a bad spec", spec)
		}
	}
}

func TestValidate(t *testing.T) {
	ok := &Schedule{Faults: []Fault{
		{Kind: KindFail, Core: 1, At: 100},
		{Kind: KindStall, Core: 0, At: 10, Dur: 5},
		{Kind: KindStall, Core: 0, At: 15, Dur: 5}, // adjacent, not overlapping
		{Kind: KindHBM, Core: 0, At: 10, Dur: 5, Factor: 0.5},
		{Kind: KindVMem, Core: 1, At: 10, Dur: 5, Factor: 0.9},
	}}
	if err := ok.Validate(2); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
	var nilSched *Schedule
	if err := nilSched.Validate(2); err != nil {
		t.Fatalf("nil schedule rejected: %v", err)
	}

	bad := []struct {
		name string
		f    []Fault
	}{
		{"unknown kind", []Fault{{Kind: Kind(99), Core: 0, At: 1}}},
		{"negative kind", []Fault{{Kind: Kind(-1), Core: 0, At: 1}}},
		{"core out of range", []Fault{{Kind: KindFail, Core: 2, At: 1}}},
		{"negative core", []Fault{{Kind: KindFail, Core: -1, At: 1}}},
		{"negative at", []Fault{{Kind: KindFail, Core: 0, At: -1}}},
		{"at overflow", []Fault{{Kind: KindFail, Core: 0, At: maxAt + 1}}},
		{"fail at zero", []Fault{{Kind: KindFail, Core: 0, At: 0}}},
		{"fail with dur", []Fault{{Kind: KindFail, Core: 0, At: 1, Dur: 5}}},
		{"fail with factor", []Fault{{Kind: KindFail, Core: 0, At: 1, Factor: 0.5}}},
		{"double fail", []Fault{{Kind: KindFail, Core: 0, At: 1}, {Kind: KindFail, Core: 0, At: 2}}},
		{"stall without dur", []Fault{{Kind: KindStall, Core: 0, At: 1}}},
		{"stall dur overflow", []Fault{{Kind: KindStall, Core: 0, At: 1, Dur: maxAt + 1}}},
		{"stall with factor", []Fault{{Kind: KindStall, Core: 0, At: 1, Dur: 5, Factor: 0.5}}},
		{"hbm without factor", []Fault{{Kind: KindHBM, Core: 0, At: 1, Dur: 5}}},
		{"hbm factor one", []Fault{{Kind: KindHBM, Core: 0, At: 1, Dur: 5, Factor: 1}}},
		{"vmem factor over one", []Fault{{Kind: KindVMem, Core: 0, At: 1, Dur: 5, Factor: 1.5}}},
		{"overlapping stalls", []Fault{
			{Kind: KindStall, Core: 0, At: 10, Dur: 10},
			{Kind: KindStall, Core: 0, At: 15, Dur: 10},
		}},
		{"overlapping hbm", []Fault{
			{Kind: KindHBM, Core: 1, At: 10, Dur: 10, Factor: 0.5},
			{Kind: KindHBM, Core: 1, At: 12, Dur: 2, Factor: 0.5},
		}},
	}
	for _, tc := range bad {
		s := &Schedule{Faults: tc.f}
		if err := s.Validate(2); err == nil {
			t.Errorf("%s: accepted %v", tc.name, tc.f)
		}
	}

	// Same-kind overlap on different cores, and different kinds overlapping
	// on one core, are both fine.
	mixed := &Schedule{Faults: []Fault{
		{Kind: KindStall, Core: 0, At: 10, Dur: 10},
		{Kind: KindStall, Core: 1, At: 10, Dur: 10},
		{Kind: KindHBM, Core: 0, At: 12, Dur: 4, Factor: 0.5},
	}}
	if err := mixed.Validate(2); err != nil {
		t.Fatalf("cross-core/cross-kind overlap rejected: %v", err)
	}
}

func TestFailCycleAndWindows(t *testing.T) {
	s := &Schedule{Faults: []Fault{
		{Kind: KindFail, Core: 1, At: 777},
		{Kind: KindStall, Core: 0, At: 10, Dur: 5},
		{Kind: KindStall, Core: 0, At: 50, Dur: 5},
		{Kind: KindHBM, Core: 0, At: 20, Dur: 5, Factor: 0.5},
	}}
	if at, ok := s.FailCycle(1); !ok || at != 777 {
		t.Fatalf("FailCycle(1) = %d, %v", at, ok)
	}
	if _, ok := s.FailCycle(0); ok {
		t.Fatal("FailCycle(0) reported a fail on a healthy core")
	}
	if ws := s.Windows(0, KindStall); len(ws) != 2 || ws[0].At != 10 || ws[1].At != 50 {
		t.Fatalf("Windows(0, stall) = %+v", ws)
	}
	if ws := s.Windows(0, KindVMem); ws != nil {
		t.Fatalf("Windows(0, vmem) = %+v, want nil", ws)
	}

	var nilSched *Schedule
	if _, ok := nilSched.FailCycle(0); ok {
		t.Fatal("nil schedule reported a fail cycle")
	}
	if ws := nilSched.Windows(0, KindStall); ws != nil {
		t.Fatalf("nil schedule returned windows %+v", ws)
	}
	if !nilSched.Empty() {
		t.Fatal("nil schedule is not Empty")
	}
	if nilSched.String() != "" {
		t.Fatalf("nil schedule renders %q", nilSched.String())
	}
	if s.Empty() {
		t.Fatal("populated schedule reports Empty")
	}
}

func TestKindJSON(t *testing.T) {
	for k := Kind(0); k < numKinds; k++ {
		j, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		var back Kind
		if err := json.Unmarshal(j, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", j, err)
		}
		if back != k {
			t.Fatalf("kind %v round-tripped to %v", k, back)
		}
	}
	var k Kind
	if err := json.Unmarshal([]byte(`"melt"`), &k); err == nil {
		t.Fatal("unknown kind name accepted")
	}
	if err := json.Unmarshal([]byte(`42`), &k); err == nil {
		t.Fatal("non-string kind accepted")
	}
	if got := Kind(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("out-of-range kind renders %q", got)
	}

	// A full Fault round-trips through JSON with the spec-name kind.
	f := Fault{Kind: KindHBM, Core: 3, At: 5, Dur: 9, Factor: 0.5}
	j, _ := json.Marshal(f)
	if !strings.Contains(string(j), `"hbm"`) {
		t.Fatalf("fault JSON %s does not name its kind", j)
	}
	var back Fault
	if err := json.Unmarshal(j, &back); err != nil {
		t.Fatal(err)
	}
	if back != f {
		t.Fatalf("fault round-tripped to %+v", back)
	}
}

func TestGenerateDeterministicAndValid(t *testing.T) {
	const cores, horizon = 4, int64(1_000_000)
	for _, mttf := range []int64{horizon / 4, horizon, horizon * 16} {
		a := Generate(cores, horizon, mttf, 42)
		b := Generate(cores, horizon, mttf, 42)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("mttf %d: generation is not deterministic", mttf)
		}
		if err := a.Validate(cores); err != nil {
			t.Fatalf("mttf %d: generated schedule invalid: %v", mttf, err)
		}
		for _, f := range a.Faults {
			if f.At < 1 || f.At >= horizon {
				t.Fatalf("mttf %d: fault %s outside (0, horizon)", mttf, f)
			}
			if f.Kind != KindFail {
				if f.Dur < 1 || f.At+f.Dur > horizon {
					t.Fatalf("mttf %d: window %s extends past the horizon", mttf, f)
				}
			}
			// Transient windows land before their core's fail-stop.
			if at, ok := a.FailCycle(f.Core); ok && f.Kind != KindFail && f.At+f.Dur > at {
				t.Fatalf("mttf %d: window %s outlives core %d's fail at %d", mttf, f, f.Core, at)
			}
		}
	}
	if !reflect.DeepEqual(Generate(4, horizon, horizon, 1), Generate(4, horizon, horizon, 1)) {
		t.Fatal("same seed produced different schedules")
	}
	if reflect.DeepEqual(Generate(4, horizon, horizon/4, 1).Faults, Generate(4, horizon, horizon/4, 2).Faults) {
		t.Fatal("different seeds produced identical aggressive schedules")
	}
}

func TestGenerateRates(t *testing.T) {
	const cores, horizon = 8, int64(1_000_000)
	// Aggressive MTTF (= horizon/4): nearly every core should fail; lazy
	// MTTF (= 64×horizon): failures should be rare. Count over many seeds.
	var aggressive, lazy int
	for seed := uint64(0); seed < 50; seed++ {
		for _, f := range Generate(cores, horizon, horizon/4, seed).Faults {
			if f.Kind == KindFail {
				aggressive++
			}
		}
		for _, f := range Generate(cores, horizon, horizon*64, seed).Faults {
			if f.Kind == KindFail {
				lazy++
			}
		}
	}
	total := 50 * cores
	if aggressive < total/2 {
		t.Fatalf("mttf=horizon/4 failed only %d of %d cores", aggressive, total)
	}
	if lazy > total/10 {
		t.Fatalf("mttf=64×horizon failed %d of %d cores", lazy, total)
	}
}

func TestGenerateDegenerate(t *testing.T) {
	for _, s := range []*Schedule{
		Generate(0, 1000, 1000, 1),
		Generate(4, 1, 1000, 1),
		Generate(4, 1000, 0, 1),
	} {
		if !s.Empty() {
			t.Fatalf("degenerate inputs generated %+v", s.Faults)
		}
	}
}
