// Package faults is the fleet's deterministic, seeded fault-injection
// engine. A Schedule is a list of timed perturbations against named cores —
// whole-core fail-stop, transient stall (straggler) windows, HBM-bandwidth
// degradation, and vector-memory pressure spikes — that the fleet runner
// maps onto each core's cycle-accurate simulation (sched.Options.HaltAtCycle
// and the three Window kinds). Schedules parse from a compact CLI spec, are
// validated up front, and can be generated from an MTTF target with a seeded
// RNG, so every chaos trial is reproducible from (seed, options) alone.
package faults

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"v10/internal/mathx"
)

// Kind enumerates the fault classes the injector models.
type Kind int

const (
	// KindFail is a whole-core fail-stop: the core halts at Fault.At and
	// serves nothing afterwards. Dur and Factor are unused.
	KindFail Kind = iota
	// KindStall is a transient straggler window: the core's functional units
	// are clock-gated for [At, At+Dur). Factor is unused.
	KindStall
	// KindHBM scales the core's HBM bandwidth capacity by Factor in (0,1)
	// for [At, At+Dur).
	KindHBM
	// KindVMem scales per-workload vector-memory partitions by Factor in
	// (0,1) for requests starting inside [At, At+Dur).
	KindVMem

	numKinds // keep last
)

// String names the kind the way Parse spells it.
func (k Kind) String() string {
	switch k {
	case KindFail:
		return "fail"
	case KindStall:
		return "stall"
	case KindHBM:
		return "hbm"
	case KindVMem:
		return "vmem"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// MarshalJSON encodes the kind as its spec name so chaos-trial repro files
// read like fault specs.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(strconv.Quote(k.String())), nil
}

// UnmarshalJSON decodes a spec-name kind.
func (k *Kind) UnmarshalJSON(data []byte) error {
	s, err := strconv.Unquote(string(data))
	if err != nil {
		return fmt.Errorf("faults: bad kind %s", data)
	}
	for cand := Kind(0); cand < numKinds; cand++ {
		if cand.String() == s {
			*k = cand
			return nil
		}
	}
	return fmt.Errorf("faults: unknown kind %q", s)
}

// Fault is one scheduled perturbation of one core.
type Fault struct {
	Kind   Kind    `json:"kind"`
	Core   int     `json:"core"`
	At     int64   `json:"at"`               // start cycle
	Dur    int64   `json:"dur,omitempty"`    // window length; unused for fail
	Factor float64 `json:"factor,omitempty"` // capacity/partition factor; hbm/vmem only
}

// String renders the fault in Parse's spec grammar.
func (f Fault) String() string {
	s := fmt.Sprintf("%s@%d:%d", f.Kind, f.Core, f.At)
	if f.Kind != KindFail {
		s += fmt.Sprintf("+%d", f.Dur)
	}
	if f.Kind == KindHBM || f.Kind == KindVMem {
		s += fmt.Sprintf("x%g", f.Factor)
	}
	return s
}

// Schedule is a validated set of faults for one fleet run.
type Schedule struct {
	Faults []Fault `json:"faults"`
}

// Empty reports whether the schedule injects nothing. A nil *Schedule and an
// empty one behave identically everywhere (the bit-identity contract the
// chaos oracle pins down).
func (s *Schedule) Empty() bool { return s == nil || len(s.Faults) == 0 }

// maxAt bounds fault start cycles so window arithmetic (At+Dur, heartbeat
// rounding) cannot overflow int64 even with adversarial fuzzer inputs.
const maxAt = int64(1) << 50

// Validate checks every fault against the fleet size and the per-kind rules:
// start cycles in [0, 2^50], positive window durations, factors in (0,1),
// at most one fail-stop per core, and no overlapping same-kind windows on
// the same core.
func (s *Schedule) Validate(cores int) error {
	if s == nil {
		return nil
	}
	failed := map[int]bool{}
	for i, f := range s.Faults {
		if f.Kind < 0 || f.Kind >= numKinds {
			return fmt.Errorf("faults: fault %d has unknown kind %d", i, int(f.Kind))
		}
		if f.Core < 0 || f.Core >= cores {
			return fmt.Errorf("faults: fault %d (%s) targets core %d of a %d-core fleet", i, f, f.Core, cores)
		}
		if f.At < 0 || f.At > maxAt {
			return fmt.Errorf("faults: fault %d (%s) has start cycle out of [0, 2^50]", i, f)
		}
		switch f.Kind {
		case KindFail:
			if f.At == 0 {
				return fmt.Errorf("faults: fault %d (%s): fail-stop at cycle 0 would admit nothing", i, f)
			}
			if f.Dur != 0 || f.Factor != 0 {
				return fmt.Errorf("faults: fault %d (%s): fail-stop takes no duration or factor", i, f)
			}
			if failed[f.Core] {
				return fmt.Errorf("faults: fault %d (%s): core %d already fail-stopped", i, f, f.Core)
			}
			failed[f.Core] = true
		case KindStall:
			if f.Dur <= 0 || f.Dur > maxAt {
				return fmt.Errorf("faults: fault %d (%s) needs a duration in (0, 2^50]", i, f)
			}
			if f.Factor != 0 {
				return fmt.Errorf("faults: fault %d (%s): stall takes no factor", i, f)
			}
		case KindHBM, KindVMem:
			if f.Dur <= 0 || f.Dur > maxAt {
				return fmt.Errorf("faults: fault %d (%s) needs a duration in (0, 2^50]", i, f)
			}
			if !(f.Factor > 0 && f.Factor < 1) {
				return fmt.Errorf("faults: fault %d (%s) needs a factor in (0,1)", i, f)
			}
		}
	}
	// Same-kind windows on one core must not overlap (sched validates this
	// too, but catching it here names the faults instead of the cycles).
	for kind := KindStall; kind < numKinds; kind++ {
		byCore := map[int][]Fault{}
		for _, f := range s.Faults {
			if f.Kind == kind {
				byCore[f.Core] = append(byCore[f.Core], f)
			}
		}
		for core, ws := range byCore {
			sort.Slice(ws, func(i, j int) bool { return ws[i].At < ws[j].At })
			for i := 1; i < len(ws); i++ {
				if ws[i-1].At+ws[i-1].Dur > ws[i].At {
					return fmt.Errorf("faults: core %d has overlapping %s windows (%s, %s)",
						core, kind, ws[i-1], ws[i])
				}
			}
		}
	}
	return nil
}

// FailCycle returns the cycle core fail-stops at, if it does.
func (s *Schedule) FailCycle(core int) (int64, bool) {
	if s == nil {
		return 0, false
	}
	for _, f := range s.Faults {
		if f.Kind == KindFail && f.Core == core {
			return f.At, true
		}
	}
	return 0, false
}

// Windows returns core's faults of the given window kind in schedule order.
func (s *Schedule) Windows(core int, kind Kind) []Fault {
	if s == nil {
		return nil
	}
	var out []Fault
	for _, f := range s.Faults {
		if f.Kind == kind && f.Core == core {
			out = append(out, f)
		}
	}
	return out
}

// String renders the schedule in Parse's grammar ("" when empty).
func (s *Schedule) String() string {
	if s.Empty() {
		return ""
	}
	parts := make([]string, len(s.Faults))
	for i, f := range s.Faults {
		parts[i] = f.String()
	}
	return strings.Join(parts, ";")
}

// Parse reads a fault-schedule spec: semicolon- or comma-separated entries
// of the form
//
//	kind@core:at[+dur][xfactor]
//
// e.g. "fail@1:30e6; stall@0:10e6+2e6; hbm@2:5e6+8e6x0.5; vmem@0:1e6+4e6x0.5".
// Numbers accept scientific notation. The result is syntactically checked
// only; call Validate with the fleet size before running.
func Parse(spec string) (*Schedule, error) {
	s := &Schedule{}
	for _, entry := range strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' }) {
		entry = strings.TrimSpace(entry)
		if entry == "" {
			continue
		}
		f, err := parseFault(entry)
		if err != nil {
			return nil, err
		}
		s.Faults = append(s.Faults, f)
	}
	return s, nil
}

func parseFault(entry string) (Fault, error) {
	var f Fault
	kindStr, rest, ok := strings.Cut(entry, "@")
	if !ok {
		return f, fmt.Errorf("faults: %q: want kind@core:at[+dur][xfactor]", entry)
	}
	switch kindStr {
	case "fail":
		f.Kind = KindFail
	case "stall":
		f.Kind = KindStall
	case "hbm":
		f.Kind = KindHBM
	case "vmem":
		f.Kind = KindVMem
	default:
		return f, fmt.Errorf("faults: %q: unknown kind %q (want fail, stall, hbm, or vmem)", entry, kindStr)
	}
	coreStr, timing, ok := strings.Cut(rest, ":")
	if !ok {
		return f, fmt.Errorf("faults: %q: missing ':' before the start cycle", entry)
	}
	core, err := strconv.Atoi(strings.TrimSpace(coreStr))
	if err != nil {
		return f, fmt.Errorf("faults: %q: bad core index %q", entry, coreStr)
	}
	f.Core = core

	// timing = at[+dur][xfactor]; factor binds to the dur it follows.
	if factorStr, found := cutLast(timing, "x"); found != "" {
		f.Factor, err = parseNum(found)
		if err != nil {
			return f, fmt.Errorf("faults: %q: bad factor %q", entry, found)
		}
		timing = factorStr
	}
	atStr, durStr, hasDur := strings.Cut(timing, "+")
	at, err := parseNum(atStr)
	if err != nil {
		return f, fmt.Errorf("faults: %q: bad start cycle %q", entry, atStr)
	}
	f.At = int64(at)
	if hasDur {
		dur, err := parseNum(durStr)
		if err != nil {
			return f, fmt.Errorf("faults: %q: bad duration %q", entry, durStr)
		}
		f.Dur = int64(dur)
	}
	switch f.Kind {
	case KindFail:
		if hasDur || f.Factor != 0 {
			return f, fmt.Errorf("faults: %q: fail takes no +dur or xfactor", entry)
		}
	case KindStall:
		if !hasDur {
			return f, fmt.Errorf("faults: %q: stall needs a +dur", entry)
		}
		if f.Factor != 0 {
			return f, fmt.Errorf("faults: %q: stall takes no xfactor", entry)
		}
	case KindHBM, KindVMem:
		if !hasDur || f.Factor == 0 {
			return f, fmt.Errorf("faults: %q: %s needs both +dur and xfactor", entry, f.Kind)
		}
	}
	return f, nil
}

// cutLast splits s around the last sep, returning (before, after); after is
// "" when sep is absent.
func cutLast(s, sep string) (before, after string) {
	if i := strings.LastIndex(s, sep); i >= 0 {
		return s[:i], s[i+len(sep):]
	}
	return s, ""
}

// parseNum reads a nonnegative number, accepting scientific notation for
// cycle counts ("30e6").
func parseNum(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("bad number %q", s)
	}
	return v, nil
}

// Generate draws a random schedule for a fleet of the given size over a run
// of horizon cycles, seeded and fully deterministic. Each core fail-stops
// with probability 1-exp(-horizon/mttfCycles) (exponential lifetime with the
// given mean time to failure) at a cycle drawn from the conditioned
// exponential; transient faults (stall, hbm, vmem windows) each strike a
// core with probability horizon/(4*mttf) capped at ½, lasting 1–5% of the
// horizon, before any fail-stop.
func Generate(cores int, horizon, mttfCycles int64, seed uint64) *Schedule {
	if cores <= 0 || horizon <= 1 || mttfCycles <= 0 {
		return &Schedule{}
	}
	s := &Schedule{}
	ratio := float64(horizon) / float64(mttfCycles)
	pTransient := ratio / 4
	if pTransient > 0.5 {
		pTransient = 0.5
	}
	for core := 0; core < cores; core++ {
		rng := mathx.NewRNG(seed + 0xfa17 + uint64(core)*7919)
		failAt := int64(0)
		// P(fail within horizon) = 1 - e^(-horizon/mttf); the fail cycle is
		// uniform in rank via inversion of the truncated exponential.
		if rng.Float64() < 1-math.Exp(-ratio) {
			u := rng.Float64()
			// Invert F(t) = (1-e^(-t/mttf)) / (1-e^(-horizon/mttf)).
			t := -float64(mttfCycles) * math.Log(1-u*(1-math.Exp(-ratio)))
			failAt = clampCycle(int64(t), 1, horizon-1)
			s.Faults = append(s.Faults, Fault{Kind: KindFail, Core: core, At: failAt})
		}
		limit := horizon
		if failAt > 0 {
			limit = failAt
		}
		// Transient windows live before the fail-stop (after it the core is
		// dead anyway). Laid out sequentially so same-kind windows on one
		// core never overlap.
		cursor := int64(1)
		for _, kind := range []Kind{KindStall, KindHBM, KindVMem} {
			if rng.Float64() >= pTransient {
				continue
			}
			dur := clampCycle(int64(rng.Uniform(0.01, 0.05)*float64(horizon)), 1, maxAt)
			if cursor+dur >= limit {
				break
			}
			at := cursor + int64(rng.Float64()*float64(limit-cursor-dur))
			f := Fault{Kind: kind, Core: core, At: at, Dur: dur}
			if kind == KindHBM || kind == KindVMem {
				f.Factor = rng.Uniform(0.25, 0.75)
			}
			s.Faults = append(s.Faults, f)
			cursor = at + dur
		}
	}
	return s
}

func clampCycle(v, lo, hi int64) int64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
