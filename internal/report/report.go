// Package report renders experiment results as aligned plain-text tables and
// CSV, the formats the benchmark harness writes under results/.
package report

import (
	"fmt"
	"strings"
)

// Table is a titled grid of results, one per paper table/figure.
type Table struct {
	ID     string // experiment id, e.g. "fig16a", "table2"
	Title  string
	Note   string // methodology note (paper-vs-measured caveats)
	Header []string
	Rows   [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case string:
			row[i] = v
		case float64:
			row[i] = FormatFloat(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// FormatFloat renders a float compactly: 3 significant decimals for small
// magnitudes, fewer for large ones.
func FormatFloat(v float64) string {
	av := v
	if av < 0 {
		av = -av
	}
	switch {
	case av == 0:
		return "0"
	case av >= 1000:
		return fmt.Sprintf("%.0f", v)
	case av >= 100:
		return fmt.Sprintf("%.1f", v)
	case av >= 1:
		return fmt.Sprintf("%.3f", v)
	default:
		return fmt.Sprintf("%.4f", v)
	}
}

// Percent renders a fraction as a percentage with one decimal.
func Percent(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }

// String renders the table as aligned text.
func (t *Table) String() string {
	var b strings.Builder
	if t.ID != "" {
		fmt.Fprintf(&b, "[%s] ", t.ID)
	}
	b.WriteString(t.Title)
	b.WriteString("\n")
	if t.Note != "" {
		fmt.Fprintf(&b, "  note: %s\n", t.Note)
	}

	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := 0
			if i < len(widths) {
				pad = widths[i] - len(c)
			}
			b.WriteString(c)
			b.WriteString(strings.Repeat(" ", pad))
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteString("\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Markdown renders the table as a GitHub-flavored markdown table with the
// title as a heading, for embedding results in documentation.
func (t *Table) Markdown() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "### %s\n\n", t.Title)
	}
	if t.Note != "" {
		fmt.Fprintf(&b, "_%s_\n\n", t.Note)
	}
	esc := func(s string) string { return strings.ReplaceAll(s, "|", "\\|") }
	b.WriteString("|")
	for _, h := range t.Header {
		b.WriteString(" " + esc(h) + " |")
	}
	b.WriteString("\n|")
	for range t.Header {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range t.Rows {
		b.WriteString("|")
		for _, c := range row {
			b.WriteString(" " + esc(c) + " |")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// CSV renders the table as RFC-4180-ish CSV (fields containing commas or
// quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteByte(',')
			}
			if strings.ContainsAny(c, ",\"\n") {
				b.WriteString(`"` + strings.ReplaceAll(c, `"`, `""`) + `"`)
			} else {
				b.WriteString(c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}
