package report

import (
	"strings"
	"testing"
)

func TestTableString(t *testing.T) {
	tb := &Table{ID: "fig1", Title: "Demo", Header: []string{"name", "value"}}
	tb.AddRow("alpha", 1.5)
	tb.AddRow("b", 1234.5678)
	out := tb.String()
	if !strings.Contains(out, "[fig1] Demo") {
		t.Fatalf("missing title: %q", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "1.500") {
		t.Fatalf("missing cells: %q", out)
	}
	if !strings.Contains(out, "1235") {
		t.Fatalf("large float formatting wrong: %q", out)
	}
}

func TestTableNote(t *testing.T) {
	tb := &Table{Title: "x", Note: "caveat here"}
	if !strings.Contains(tb.String(), "note: caveat here") {
		t.Fatal("note not rendered")
	}
}

func TestCSVQuoting(t *testing.T) {
	tb := &Table{Header: []string{"a", "b"}}
	tb.AddRow(`has,comma`, `has"quote`)
	csv := tb.CSV()
	want := "a,b\n\"has,comma\",\"has\"\"quote\"\n"
	if csv != want {
		t.Fatalf("CSV = %q, want %q", csv, want)
	}
}

func TestFormatFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.12345: "0.1235",
		1.5:     "1.500",
		150.25:  "150.2",
		2500:    "2500",
		-3.25:   "-3.250",
	}
	for in, want := range cases {
		if got := FormatFloat(in); got != want {
			t.Errorf("FormatFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestPercent(t *testing.T) {
	if Percent(0.527) != "52.7%" {
		t.Fatalf("Percent = %q", Percent(0.527))
	}
}

func TestAddRowMixedTypes(t *testing.T) {
	tb := &Table{Header: []string{"a", "b", "c"}}
	tb.AddRow("s", 42, 0.5)
	if tb.Rows[0][1] != "42" || tb.Rows[0][2] != "0.5000" {
		t.Fatalf("row = %v", tb.Rows[0])
	}
}

func TestBarsRendering(t *testing.T) {
	tb := &Table{ID: "figX", Title: "Demo bars", Header: []string{"pair", "PMT", "V10"}}
	tb.AddRow("A+B", "50.0%", "100.0%")
	tb.AddRow("C+D", "25.0%", "OOM")
	out := tb.Bars(20)
	if !strings.Contains(out, "[figX] Demo bars") {
		t.Fatalf("missing title: %q", out)
	}
	lines := strings.Split(out, "\n")
	var pmtA, v10A, oom string
	for i, l := range lines {
		switch {
		case strings.Contains(l, "A+B"):
			pmtA, v10A = lines[i+1], lines[i+2]
		case strings.Contains(l, "C+D"):
			oom = lines[i+2]
		}
	}
	// 100% bar should be twice the 50% bar.
	if strings.Count(v10A, "█") != 2*strings.Count(pmtA, "█") {
		t.Fatalf("bar scaling wrong:\n%s", out)
	}
	if !strings.Contains(oom, "OOM") {
		t.Fatalf("non-numeric cell lost: %q", oom)
	}
}

func TestParseCell(t *testing.T) {
	cases := map[string]struct {
		v  float64
		ok bool
	}{
		"52.7%": {0.527 * 100, true},
		"1.49x": {1.49, true},
		"3.5":   {3.5, true},
		"OOM":   {0, false},
		"":      {0, false},
	}
	for in, want := range cases {
		v, ok := parseCell(in)
		if ok != want.ok || (ok && v != want.v) {
			t.Errorf("parseCell(%q) = %v,%v", in, v, ok)
		}
	}
}

func TestBarsMinWidth(t *testing.T) {
	tb := &Table{Header: []string{"x", "v"}}
	tb.AddRow("a", "1.0")
	if out := tb.Bars(1); !strings.Contains(out, "█") {
		t.Fatalf("tiny width should still render: %q", out)
	}
}

func TestMarkdownRendering(t *testing.T) {
	tb := &Table{Title: "T", Note: "n", Header: []string{"a", "b"}}
	tb.AddRow("x|y", 1.5)
	md := tb.Markdown()
	for _, want := range []string{"### T", "_n_", "| a | b |", "|---|---|", `x\|y`, "1.500"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}
