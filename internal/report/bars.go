package report

import (
	"fmt"
	"strconv"
	"strings"
)

// Bars renders a table's numeric columns as horizontal ASCII bar groups —
// a terminal rendition of the paper's grouped bar figures. Each row becomes
// a group labeled by its first cell; each numeric column becomes one bar.
// Non-numeric cells (e.g. "OOM") render as annotations. width is the
// maximum bar length in characters.
func (t *Table) Bars(width int) string {
	if width < 10 {
		width = 10
	}
	maxVal := 0.0
	type parsedRow struct {
		label string
		vals  []float64
		text  []string
		isNum []bool
	}
	var rows []parsedRow
	for _, r := range t.Rows {
		if len(r) == 0 {
			continue
		}
		pr := parsedRow{label: r[0]}
		for _, cell := range r[1:] {
			v, ok := parseCell(cell)
			pr.vals = append(pr.vals, v)
			pr.text = append(pr.text, cell)
			pr.isNum = append(pr.isNum, ok)
			if ok && v > maxVal {
				maxVal = v
			}
		}
		rows = append(rows, pr)
	}
	if maxVal == 0 {
		maxVal = 1
	}

	labelWidth := 0
	for _, r := range rows {
		if len(r.label) > labelWidth {
			labelWidth = len(r.label)
		}
	}
	colWidth := 0
	for _, h := range t.Header {
		if len(h) > colWidth {
			colWidth = len(h)
		}
	}

	var b strings.Builder
	if t.ID != "" {
		fmt.Fprintf(&b, "[%s] ", t.ID)
	}
	b.WriteString(t.Title)
	b.WriteString("\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-*s\n", labelWidth, r.label)
		for i, v := range r.vals {
			name := ""
			if i+1 < len(t.Header) {
				name = t.Header[i+1]
			}
			if !r.isNum[i] {
				fmt.Fprintf(&b, "  %-*s %s\n", colWidth, name, r.text[i])
				continue
			}
			n := int(v / maxVal * float64(width))
			if n < 0 {
				n = 0
			}
			fmt.Fprintf(&b, "  %-*s %s %s\n", colWidth, name, strings.Repeat("█", n), r.text[i])
		}
	}
	return b.String()
}

// parseCell extracts a numeric value from a rendered cell: plain floats,
// "52.7%", or "1.49x".
func parseCell(s string) (float64, bool) {
	s = strings.TrimSpace(s)
	s = strings.TrimSuffix(s, "%")
	s = strings.TrimSuffix(s, "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, false
	}
	if v < 0 {
		return 0, true
	}
	return v, true
}
