package sim

import (
	"math"
	"testing"
)

// Regression: RunUntil used to check the limit only after firing, so one Step
// could jump arbitrarily far past the cap and execute events beyond it.
func TestRunUntilStopsBeforeLimitOvershoot(t *testing.T) {
	var e Engine
	var fired []Cycle
	record := func(now Cycle) { fired = append(fired, now) }
	e.Schedule(100, record)
	e.Schedule(5_000, record) // beyond the cap: must never execute
	ok := e.RunUntil(func() bool { return false }, 1_000)
	if ok {
		t.Fatal("predicate can never be satisfied")
	}
	if len(fired) != 1 || fired[0] != 100 {
		t.Fatalf("fired %v, want only the event at 100", fired)
	}
	if e.Now() != 1_000 {
		t.Fatalf("clock at %d after limit stop, want exactly the limit 1000", e.Now())
	}
	if !e.Pending() {
		t.Fatal("the event past the limit must still be pending")
	}
	// Resuming with a higher limit fires it at its original time.
	e.RunUntil(func() bool { return false }, 10_000)
	if len(fired) != 2 || fired[1] != 5_000 {
		t.Fatalf("fired %v after raising the limit, want [100 5000]", fired)
	}
}

// An event landing exactly on the limit is inside the capped window.
func TestRunUntilFiresEventAtLimit(t *testing.T) {
	var e Engine
	fired := false
	e.Schedule(1_000, func(Cycle) { fired = true })
	e.RunUntil(func() bool { return false }, 1_000)
	if !fired {
		t.Fatal("event at exactly the limit must fire")
	}
	if e.Now() != 1_000 {
		t.Fatalf("clock at %d, want 1000", e.Now())
	}
}

// The limit stop must not move the clock backwards when the engine is already
// past it (e.g. a zero-length capped window).
func TestRunUntilLimitNeverRewindsClock(t *testing.T) {
	var e Engine
	e.Schedule(500, func(Cycle) {})
	e.RunUntil(func() bool { return false }, 2_000)
	if e.Now() != 500 {
		t.Fatalf("clock at %d, want 500", e.Now())
	}
	e.Schedule(600, func(Cycle) {})
	e.RunUntil(func() bool { return false }, 100) // limit below current time
	if e.Now() != 500 {
		t.Fatalf("clock moved to %d on a stale limit, want 500", e.Now())
	}
}

func TestCeilDivSaturation(t *testing.T) {
	cases := []struct {
		name       string
		work, rate float64
		want       float64
	}{
		{"overflowing ratio", 1e30, 1e-9, maxFluidCycles},
		{"infinite ratio", 1, 0, maxFluidCycles},
		{"nan ratio", 0, 0, maxFluidCycles}, // 0/0 → NaN: saturate, never negative
		{"nan positive work", math.NaN(), 1, maxFluidCycles},
		{"ordinary", 10, 1, 10},
		{"round up", 10, 3, 4},
		{"residue absorbed", 1 + 1e-12, 1, 1},
		{"zero work", 0, 1, 0},
	}
	for _, c := range cases {
		got := ceilDiv(c.work, c.rate)
		if got != c.want {
			t.Errorf("%s: ceilDiv(%g, %g) = %g, want %g", c.name, c.work, c.rate, got, c.want)
		}
		if got < 0 {
			t.Errorf("%s: negative remaining time %g", c.name, got)
		}
	}
}

// A saturated completion never lands in the past and never overflows: the
// pool must stay usable with a pathological work/rate ratio in it.
func TestFluidSaturatedTaskKeepsPoolUsable(t *testing.T) {
	var e Engine
	p := NewFluidPool(&e, 1) // capacity 1 byte/cycle
	// A huge op demanding 1000x capacity: rate ~1e-3, remaining ~1e25 → past
	// the cycle range.
	slow := p.Start(1e22, 1000, func(Cycle) {})
	done := false
	p.Start(100, 0, func(Cycle) { done = true })
	if !e.RunUntil(func() bool { return done }, 1_000_000) {
		t.Fatal("unthrottled neighbor never completed next to a saturated task")
	}
	if rem := p.Preempt(slow); rem <= 0 {
		t.Fatalf("saturated task lost its work: remaining %g", rem)
	}
}

// The rate-change filter: starting N uncontended tasks schedules each task's
// completion exactly once — no start may reschedule its neighbors.
func TestFluidUncontendedReschedulesOncePerTask(t *testing.T) {
	var e Engine
	p := NewFluidPool(&e, 100)
	const n = 32
	remaining := n
	for i := 0; i < n; i++ {
		p.Start(1_000+float64(i), 1, func(Cycle) { remaining-- }) // total demand 32 < 100
	}
	recomputes, reschedules := p.ChurnStats()
	if recomputes != n {
		t.Fatalf("recomputes = %d, want %d (one per start)", recomputes, n)
	}
	if reschedules != n {
		t.Fatalf("reschedules = %d, want %d: uncontended starts must not touch neighbors", reschedules, n)
	}
	if !e.RunUntil(func() bool { return remaining == 0 }, 1<<40) {
		t.Fatal("tasks did not complete")
	}
	// Completions in an uncontended pool reschedule nothing either.
	if _, resched := p.ChurnStats(); resched != n {
		t.Fatalf("reschedules grew to %d after completions, want still %d", resched, n)
	}
}

// Contended pools reschedule only the tasks whose rate actually changed.
func TestFluidContentionReschedulesOnlyRateChanges(t *testing.T) {
	var e Engine
	p := NewFluidPool(&e, 10)
	p.Start(1e6, 4, func(Cycle) {}) // demand 4 of 10: uncontended
	p.Start(1e6, 4, func(Cycle) {}) // total 8: still uncontended
	_, before := p.ChurnStats()
	if before != 2 {
		t.Fatalf("reschedules = %d before contention, want 2", before)
	}
	// Third task pushes total demand to 12 > 10: the water-fill throttles
	// every flow (fair share 3.33 < 4), so all three get (re)scheduled.
	p.Start(1e6, 4, func(Cycle) {})
	_, after := p.ChurnStats()
	if after != before+3 {
		t.Fatalf("reschedules = %d after contention, want %d (two rate changes + one start)", after, before+3)
	}
	// A zero-demand task joining a contended pool runs at rate 1 and steals
	// no bandwidth: the three throttled tasks keep their events.
	p.Start(1e6, 0, func(Cycle) {})
	_, last := p.ChurnStats()
	if last != after+1 {
		t.Fatalf("reschedules = %d after zero-demand start, want %d", last, after+1)
	}
}

// Steady-state stepping with pooled events performs no heap allocations: the
// tentpole's allocation-free dispatch, locked in.
func TestScheduleCallSteadyStateAllocFree(t *testing.T) {
	var e Engine
	var tick func(payload any, now Cycle)
	count := 0
	tick = func(payload any, now Cycle) {
		count++
		e.ScheduleCall(now+10, tick, payload)
	}
	e.ScheduleCall(10, tick, &count) // warm the pool
	e.Step()
	allocs := testing.AllocsPerRun(1000, func() {
		e.Step()
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step allocates %.1f objects/op, want 0", allocs)
	}
}

// Fluid start → complete churn through StartTask is allocation-free once the
// task and event pools are warm.
func TestFluidStartTaskSteadyStateAllocFree(t *testing.T) {
	var e Engine
	p := NewFluidPool(&e, 100)
	done := func(owner any, t *FluidTask, now Cycle) {}
	// Warm the free lists.
	for i := 0; i < 4; i++ {
		p.StartTask(10, 1, done, nil)
	}
	for e.Step() {
	}
	allocs := testing.AllocsPerRun(500, func() {
		p.StartTask(10, 1, done, nil)
		for e.Step() {
		}
	})
	if allocs != 0 {
		t.Fatalf("fluid start/complete allocates %.1f objects/op, want 0", allocs)
	}
}

// EventStats bookkeeping stays consistent across cancel-heavy runs and the
// compactions they trigger.
func TestEventStatsConsistentUnderCompaction(t *testing.T) {
	var e Engine
	var cancel []*Event
	for i := 0; i < 5_000; i++ {
		ev := e.Schedule(Cycle(i+1), func(Cycle) {})
		if i%2 == 0 {
			cancel = append(cancel, ev)
		}
	}
	for _, ev := range cancel {
		ev.Cancel()
	}
	for e.Step() {
	}
	scheduled, fired, canceled := e.EventStats()
	if scheduled != 5_000 || fired != 2_500 || canceled != 2_500 {
		t.Fatalf("EventStats = (%d, %d, %d), want (5000, 2500, 2500)", scheduled, fired, canceled)
	}
	if backlog := scheduled - fired - canceled; backlog != 0 {
		t.Fatalf("backlog %d after drain, want 0", backlog)
	}
	if e.live != 0 || e.dead != 0 {
		t.Fatalf("heap counters live=%d dead=%d after drain", e.live, e.dead)
	}
}

// Timers park and re-arm on the period grid; parked timers hold no events.
func TestTimerParkAndGridAlignment(t *testing.T) {
	var e Engine
	var ticks []Cycle
	var tm *Timer
	tm = e.NewTimer(1024, func(now Cycle) {
		ticks = append(ticks, now)
		if len(ticks) < 3 {
			tm.Arm()
		}
	})
	if tm.Armed() {
		t.Fatal("new timer must start parked")
	}
	e.Schedule(100, func(Cycle) { tm.Arm() })
	for e.Step() {
	}
	want := []Cycle{1024, 2048, 3072}
	if len(ticks) != len(want) {
		t.Fatalf("ticks %v, want %v", ticks, want)
	}
	for i := range want {
		if ticks[i] != want[i] {
			t.Fatalf("ticks %v, want %v", ticks, want)
		}
	}
	if e.Pending() {
		t.Fatal("un-rearmed timer left an event pending")
	}
	// Arm then park: no tick may fire, the heap must drain clean.
	tm.Arm()
	tm.Arm() // arming an armed timer is a no-op
	if !tm.Armed() {
		t.Fatal("timer did not arm")
	}
	tm.Park()
	tm.Park() // parking a parked timer is a no-op
	if tm.Armed() || e.Pending() {
		t.Fatal("parked timer still pending")
	}
	if len(ticks) != 3 {
		t.Fatalf("parked timer ticked: %v", ticks)
	}
}

// Pooled events are recycled: a long self-rescheduling chain must reuse one
// Event object rather than growing the heap or the free list.
func TestPooledEventRecycling(t *testing.T) {
	var e Engine
	count := 0
	var tick func(payload any, now Cycle)
	tick = func(payload any, now Cycle) {
		count++
		if count < 10_000 {
			e.ScheduleCall(now+1, tick, nil)
		}
	}
	e.ScheduleCall(1, tick, nil)
	for e.Step() {
	}
	if count != 10_000 {
		t.Fatalf("fired %d ticks, want 10000", count)
	}
	if len(e.free) > 2 {
		t.Fatalf("free list grew to %d events for a serial chain, want ≤ 2", len(e.free))
	}
}
