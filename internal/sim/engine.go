// Package sim provides the discrete-event machinery beneath the V10 and PMT
// simulators: an event heap driven in cycle time, plus a fluid-progress pool
// that advances concurrently executing operators at rates set by HBM
// bandwidth water-filling.
package sim

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle = int64

// Event is a scheduled callback. Events are single-shot; Cancel prevents a
// pending event from firing.
//
// Events come in two flavors. Schedule events carry a closure and live until
// the GC collects them — holding the returned handle past firing is safe
// (Cancel stays a no-op). ScheduleCall events carry a typed callback plus a
// payload and are recycled into the engine's free list the moment they fire
// or are dropped, so the simulator's hot path allocates nothing; their
// handles must not be retained or canceled after the callback has run.
type Event struct {
	At      Cycle
	seq     uint64
	fn      func(now Cycle)
	cb      func(payload any, now Cycle)
	payload any

	canceled bool
	pooled   bool // recycled after firing; allocated via ScheduleCall
	index    int  // heap index, -1 when popped
	eng      *Engine
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op. Canceled events are dropped lazily;
// once they outnumber the live ones the engine compacts its heap, so long
// runs with heavy preemption (which cancels completion events constantly)
// cannot accumulate garbage.
func (e *Event) Cancel() {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.eng == nil || e.index < 0 {
		return // already popped (fired or being fired)
	}
	e.eng.live--
	e.eng.dead++
	e.eng.canceled++
	if e.eng.dead > len(e.eng.events)/2 {
		e.eng.compact()
	}
}

// Engine is a deterministic discrete-event executor. The zero value is ready
// to use. An Engine is confined to a single goroutine; parallel simulations
// each own their engine (see internal/parallel).
//
// The event heap is hand-rolled (no container/heap interface dispatch) and
// ScheduleCall events are pooled, so steady-state stepping performs no heap
// allocations.
type Engine struct {
	now      Cycle
	seq      uint64
	events   []*Event // binary min-heap on (At, seq)
	free     []*Event // recycled pooled events
	live     int      // uncanceled events still in the heap
	dead     int      // canceled events still in the heap
	fired    uint64
	canceled uint64
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// EventStats reports the engine's lifetime event counters: how many events
// were scheduled, how many fired, and how many were canceled before firing.
// The difference (scheduled - fired - canceled) is the pending backlog; the
// cancel count is the churn preemption-heavy schedules put on the heap.
func (e *Engine) EventStats() (scheduled, fired, canceled uint64) {
	return e.seq, e.fired, e.canceled
}

// less orders the heap by firing time, ties by scheduling order.
func less(a, b *Event) bool {
	if a.At != b.At {
		return a.At < b.At
	}
	return a.seq < b.seq
}

// push inserts ev into the heap.
func (e *Engine) push(ev *Event) {
	e.events = append(e.events, ev)
	e.siftUp(len(e.events) - 1)
}

func (e *Engine) siftUp(i int) {
	evs := e.events
	ev := evs[i]
	for i > 0 {
		parent := (i - 1) / 2
		p := evs[parent]
		if !less(ev, p) {
			break
		}
		evs[i] = p
		p.index = i
		i = parent
	}
	evs[i] = ev
	ev.index = i
}

func (e *Engine) siftDown(i int) {
	evs := e.events
	n := len(evs)
	ev := evs[i]
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && less(evs[r], evs[c]) {
			c = r
		}
		if !less(evs[c], ev) {
			break
		}
		evs[i] = evs[c]
		evs[i].index = i
		i = c
	}
	evs[i] = ev
	ev.index = i
}

// pop removes and returns the heap head.
func (e *Engine) pop() *Event {
	evs := e.events
	n := len(evs)
	top := evs[0]
	top.index = -1
	last := evs[n-1]
	evs[n-1] = nil
	e.events = evs[:n-1]
	if n > 1 {
		evs[0] = last
		last.index = 0
		e.siftDown(0)
	}
	return top
}

// alloc takes an event from the free list, or makes a fresh one.
func (e *Engine) alloc() *Event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &Event{}
}

// release returns a popped event to the free list if it is pooled; closure
// events just drop their callback so the GC can take the captures early
// while the handle keeps its safe post-fire Cancel semantics.
func (e *Engine) release(ev *Event) {
	ev.fn = nil
	if !ev.pooled {
		return
	}
	ev.cb = nil
	ev.payload = nil
	ev.canceled = false
	e.free = append(e.free, ev)
}

// Schedule registers fn to run at cycle at. Scheduling in the past panics —
// that is always a simulator bug. Ties fire in scheduling order.
func (e *Engine) Schedule(at Cycle, fn func(now Cycle)) *Event {
	if at < e.now {
		panic("sim: scheduling event in the past")
	}
	e.seq++
	ev := &Event{At: at, seq: e.seq, fn: fn, eng: e}
	e.push(ev)
	e.live++
	return ev
}

// ScheduleCall registers cb(payload) to run at cycle at, drawing the event
// from the engine's pool: the simulator's hot paths use it to schedule
// without allocating a closure or an Event. The event is recycled as soon as
// it fires (or its cancellation is collected), so the returned handle must
// not be retained — or canceled — after the callback has run. Holders that
// keep the handle to allow cancellation must clear it at the top of cb.
func (e *Engine) ScheduleCall(at Cycle, cb func(payload any, now Cycle), payload any) *Event {
	if at < e.now {
		panic("sim: scheduling event in the past")
	}
	e.seq++
	ev := e.alloc()
	ev.At = at
	ev.seq = e.seq
	ev.cb = cb
	ev.payload = payload
	ev.pooled = true
	ev.eng = e
	e.push(ev)
	e.live++
	return ev
}

// After registers fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn func(now Cycle)) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.Schedule(e.now+delay, fn)
}

// Pending reports whether any uncanceled events remain. It is O(1): the
// engine tracks the live-event count as events are scheduled, canceled, and
// fired.
func (e *Engine) Pending() bool { return e.live > 0 }

// Step fires the next event. It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := e.pop()
		if ev.canceled {
			e.dead--
			e.release(ev)
			continue
		}
		e.live--
		e.fired++
		e.now = ev.At
		if ev.cb != nil {
			ev.cb(ev.payload, e.now)
		} else {
			ev.fn(e.now)
		}
		// Recycle after the callback: during the call the event is in limbo
		// (popped, not pooled), so a self-Cancel inside the callback stays a
		// no-op and the event cannot be handed out again mid-callback.
		e.release(ev)
		return true
	}
	return false
}

// peekLive returns the next event that will fire, dropping canceled heap
// heads along the way, or nil when none remain.
func (e *Engine) peekLive() *Event {
	for len(e.events) > 0 {
		ev := e.events[0]
		if !ev.canceled {
			return ev
		}
		e.pop()
		e.dead--
		e.release(ev)
	}
	return nil
}

// compact rebuilds the heap without its canceled events in O(n). Live events
// keep their (At, seq) keys, so the pop order — and therefore the simulated
// schedule — is unchanged.
func (e *Engine) compact() {
	kept := e.events[:0]
	for _, ev := range e.events {
		if ev.canceled {
			ev.index = -1
			e.release(ev)
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(e.events); i++ {
		e.events[i] = nil // release dropped slots to the GC
	}
	e.events = kept
	for i, ev := range kept {
		ev.index = i
	}
	for i := len(kept)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
	e.dead = 0
}

// RunUntil fires events until the predicate returns true (checked before
// each event), no events remain, or the next event lies past the hard cycle
// limit. Events beyond the limit never execute — the engine peeks at the
// heap head before firing, so a single Step can no longer jump arbitrarily
// far past the cap. When the limit stops the run, the clock advances to
// exactly limit (there is provably no event in between), so capped partial
// results account simulated time up to the cap. It returns true if the
// predicate was satisfied.
func (e *Engine) RunUntil(done func() bool, limit Cycle) bool {
	for {
		if done() {
			return true
		}
		ev := e.peekLive()
		if ev == nil {
			return done()
		}
		if ev.At > limit {
			if limit > e.now {
				e.now = limit
			}
			return done()
		}
		e.Step()
	}
}

// Timer is a parkable periodic callback aligned to the cycle grid
// k × period. While armed it fires at every grid point; parked it costs
// nothing — the quiescent stretches of a simulation (idle open-loop cores,
// uncontended schedules) fast-forward analytically from event to event
// instead of burning a heap operation per slice. The callback itself decides
// whether to re-arm, so a timer stays down until some state change needs it
// again.
//
// A Timer belongs to its engine's goroutine, like the engine itself.
type Timer struct {
	eng    *Engine
	period Cycle
	fn     func(now Cycle)
	ev     *Event // pending tick, nil when parked
}

// NewTimer creates a parked timer firing fn on the period grid once armed.
func (e *Engine) NewTimer(period Cycle, fn func(now Cycle)) *Timer {
	if period <= 0 {
		panic("sim: timer period must be positive")
	}
	return &Timer{eng: e, period: period, fn: fn}
}

// Arm schedules the next tick at the first grid point strictly after now.
// Arming an armed timer is a no-op, so callers arm freely on every state
// change that might need a tick.
func (t *Timer) Arm() {
	if t.ev != nil {
		return
	}
	next := (t.eng.now/t.period + 1) * t.period
	t.ev = t.eng.ScheduleCall(next, timerTick, t)
}

// timerTick clears the pending-event handle before running the callback
// (ScheduleCall events are recycled on firing), then lets fn re-arm.
func timerTick(payload any, now Cycle) {
	t := payload.(*Timer)
	t.ev = nil
	t.fn(now)
}

// Park cancels the pending tick, if any.
func (t *Timer) Park() {
	if t.ev == nil {
		return
	}
	t.ev.Cancel()
	t.ev = nil
}

// Armed reports whether a tick is pending.
func (t *Timer) Armed() bool { return t.ev != nil }
