// Package sim provides the discrete-event machinery beneath the V10 and PMT
// simulators: an event heap driven in cycle time, plus a fluid-progress pool
// that advances concurrently executing operators at rates set by HBM
// bandwidth water-filling.
package sim

import "container/heap"

// Cycle is a point in simulated time, measured in core clock cycles.
type Cycle = int64

// Event is a scheduled callback. Events are single-shot; Cancel prevents a
// pending event from firing.
type Event struct {
	At       Cycle
	seq      uint64
	fn       func(now Cycle)
	canceled bool
	index    int // heap index, -1 when popped
	eng      *Engine
}

// Cancel prevents the event from firing. Canceling an already-fired or
// already-canceled event is a no-op. Canceled events are dropped lazily;
// once they outnumber the live ones the engine compacts its heap, so long
// runs with heavy preemption (which cancels completion events constantly)
// cannot accumulate garbage.
func (e *Event) Cancel() {
	if e == nil || e.canceled {
		return
	}
	e.canceled = true
	if e.eng == nil || e.index < 0 {
		return // already popped (fired or being fired)
	}
	e.eng.live--
	e.eng.dead++
	e.eng.canceled++
	if e.eng.dead > len(e.eng.events)/2 {
		e.eng.compact()
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a deterministic discrete-event executor. The zero value is ready
// to use. An Engine is confined to a single goroutine; parallel simulations
// each own their engine (see internal/parallel).
type Engine struct {
	now      Cycle
	seq      uint64
	events   eventHeap
	live     int // uncanceled events still in the heap
	dead     int // canceled events still in the heap
	fired    uint64
	canceled uint64
}

// Now returns the current simulated cycle.
func (e *Engine) Now() Cycle { return e.now }

// EventStats reports the engine's lifetime event counters: how many events
// were scheduled, how many fired, and how many were canceled before firing.
// The difference (scheduled - fired - canceled) is the pending backlog; the
// cancel count is the churn preemption-heavy schedules put on the heap.
func (e *Engine) EventStats() (scheduled, fired, canceled uint64) {
	return e.seq, e.fired, e.canceled
}

// Schedule registers fn to run at cycle at. Scheduling in the past panics —
// that is always a simulator bug. Ties fire in scheduling order.
func (e *Engine) Schedule(at Cycle, fn func(now Cycle)) *Event {
	if at < e.now {
		panic("sim: scheduling event in the past")
	}
	e.seq++
	ev := &Event{At: at, seq: e.seq, fn: fn, eng: e}
	heap.Push(&e.events, ev)
	e.live++
	return ev
}

// After registers fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn func(now Cycle)) *Event {
	if delay < 0 {
		delay = 0
	}
	return e.Schedule(e.now+delay, fn)
}

// Pending reports whether any uncanceled events remain. It is O(1): the
// engine tracks the live-event count as events are scheduled, canceled, and
// fired.
func (e *Engine) Pending() bool { return e.live > 0 }

// Step fires the next event. It returns false when no events remain.
func (e *Engine) Step() bool {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*Event)
		if ev.canceled {
			e.dead--
			continue
		}
		e.live--
		e.fired++
		e.now = ev.At
		ev.fn(e.now)
		return true
	}
	return false
}

// compact rebuilds the heap without its canceled events in O(n). Live events
// keep their (At, seq) keys, so the pop order — and therefore the simulated
// schedule — is unchanged.
func (e *Engine) compact() {
	kept := e.events[:0]
	for _, ev := range e.events {
		if ev.canceled {
			ev.index = -1
			continue
		}
		kept = append(kept, ev)
	}
	for i := len(kept); i < len(e.events); i++ {
		e.events[i] = nil // release dropped events to the GC
	}
	e.events = kept
	for i, ev := range e.events {
		ev.index = i
	}
	heap.Init(&e.events)
	e.dead = 0
}

// RunUntil fires events until the predicate returns true (checked after each
// event), no events remain, or the hard cycle limit is exceeded. It returns
// true if the predicate was satisfied.
func (e *Engine) RunUntil(done func() bool, limit Cycle) bool {
	for {
		if done() {
			return true
		}
		if e.now > limit {
			return false
		}
		if !e.Step() {
			return done()
		}
	}
}
