package sim

import (
	"v10/internal/npu"
	"v10/internal/obs"
)

// FluidTask is one operator making progress on a functional unit while
// streaming HBM traffic. Work is measured in compute cycles: a task with no
// bandwidth throttling progresses one unit of work per cycle.
type FluidTask struct {
	ID         int
	Work       float64 // remaining compute cycles
	DemandBW   float64 // bytes per cycle the task streams at full rate
	OnComplete func(now Cycle)

	// done/owner form the allocation-free completion path: when done is
	// non-nil it is called instead of OnComplete, receiving the owner the
	// task was started with (StartTask).
	done  func(owner any, t *FluidTask, now Cycle)
	owner any

	pool       *FluidPool
	pos        int  // index in pool.tasks, valid while active
	active     bool // member of the pool's task set
	rate       float64
	doneEvent  *Event
	bytesMoved float64 // traffic actually transferred so far
}

// BytesMoved returns the HBM traffic the task has generated so far.
func (t *FluidTask) BytesMoved() float64 { return t.bytesMoved }

// Remaining returns the remaining compute cycles at full rate.
func (t *FluidTask) Remaining() float64 { return t.Work }

// FluidPool advances a set of FluidTasks under a shared bandwidth capacity
// using max-min (water-filling) allocation. Each change to the task set
// re-solves the allocation; only tasks whose rate actually changed get their
// completion event rescheduled, so contention-free pools reschedule nothing.
type FluidPool struct {
	engine   *Engine
	capacity float64      // bytes per cycle
	tasks    []*FluidTask // active tasks in ascending ID order
	free     []*FluidTask // recycled completed tasks
	nextID   int

	integrated Cycle // tasks' progress is integrated up to this cycle

	demands []float64 // tasks' DemandBW, maintained in task order
	alloc   []float64 // recompute scratch

	// throttled counts active tasks whose rate is not exactly 1. When the
	// pool is uncontended (total demand fits under capacity) and throttled is
	// zero, a recompute has nothing to do: every rate stays 1 and every
	// completion event already lands on the right cycle.
	throttled int

	totalBytes float64 // all traffic ever moved through the pool

	recomputes  uint64 // allocation re-solves
	reschedules uint64 // completion events (re)scheduled

	// Tracer, when non-nil, receives an EvHBMRebalance event at every
	// re-solve of the bandwidth allocation (each task start, completion, and
	// preemption). Every emission is nil-guarded so the disabled path costs
	// one branch.
	Tracer obs.Tracer
}

// NewFluidPool creates a pool over the engine with the given bytes/cycle
// capacity.
func NewFluidPool(engine *Engine, capacityBytesPerCycle float64) *FluidPool {
	return &FluidPool{
		engine:   engine,
		capacity: capacityBytesPerCycle,
	}
}

// TotalBytes returns all HBM traffic moved through the pool so far,
// including traffic of still-running tasks up to the last recompute.
func (p *FluidPool) TotalBytes() float64 { return p.totalBytes }

// Capacity returns the pool's current bytes/cycle bandwidth capacity.
func (p *FluidPool) Capacity() float64 { return p.capacity }

// ChurnStats reports how many allocation re-solves the pool has done and how
// many completion events those re-solves actually (re)scheduled. The gap
// between reschedules and recomputes × tasks is the churn the rate-change
// filter avoided.
func (p *FluidPool) ChurnStats() (recomputes, reschedules uint64) {
	return p.recomputes, p.reschedules
}

// SetCapacity changes the shared bandwidth capacity mid-run (fault
// injection's HBM-degradation windows) and re-solves the allocation at the
// current cycle. Progress up to now is integrated at the old rates first.
func (p *FluidPool) SetCapacity(bytesPerCycle float64) {
	if bytesPerCycle == p.capacity {
		return
	}
	p.capacity = bytesPerCycle
	p.recompute()
}

// Active returns the number of tasks currently progressing.
func (p *FluidPool) Active() int { return len(p.tasks) }

// Start begins executing a task. work is the compute-cycle demand, demandBW
// the task's natural streaming rate in bytes/cycle. onComplete fires when the
// work is done. It returns the task handle (used to preempt).
func (p *FluidPool) Start(work float64, demandBW float64, onComplete func(now Cycle)) *FluidTask {
	t := p.start(work, demandBW)
	t.OnComplete = onComplete
	p.recompute()
	return t
}

// StartTask is the allocation-free variant of Start: done is a shared
// callback (typically a package-level function) receiving owner, so callers
// pass long-lived state instead of capturing it in a fresh closure per
// operator.
func (p *FluidPool) StartTask(work, demandBW float64, done func(owner any, t *FluidTask, now Cycle), owner any) *FluidTask {
	t := p.start(work, demandBW)
	t.done = done
	t.owner = owner
	p.recompute()
	return t
}

// start allocates (or recycles) the task and appends it to the active set.
func (p *FluidPool) start(work, demandBW float64) *FluidTask {
	if work <= 0 {
		work = 1e-9 // degenerate op: complete on the next recompute
	}
	p.nextID++
	var t *FluidTask
	if n := len(p.free); n > 0 {
		t = p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		// Recycled handles had their callbacks and doneEvent cleared when they
		// left the pool; only the progress fields are still stale.
		t.rate = 0
		t.bytesMoved = 0
	} else {
		t = &FluidTask{}
	}
	t.ID = p.nextID
	t.Work = work
	t.DemandBW = demandBW
	t.pool = p
	t.active = true
	p.throttled++ // rate starts at 0 until the first recompute
	// IDs are monotonic, so appending keeps p.tasks sorted by ID — the
	// deterministic order recompute iterates in.
	t.pos = len(p.tasks)
	p.tasks = append(p.tasks, t)
	p.demands = append(p.demands, demandBW)
	return t
}

// remove splices t out of the active set, preserving ID order. The demands
// mirror is spliced identically so it always matches the task order.
func (p *FluidPool) remove(t *FluidTask) {
	copy(p.tasks[t.pos:], p.tasks[t.pos+1:])
	copy(p.demands[t.pos:], p.demands[t.pos+1:])
	p.demands = p.demands[:len(p.demands)-1]
	p.tasks[len(p.tasks)-1] = nil
	p.tasks = p.tasks[:len(p.tasks)-1]
	for i := t.pos; i < len(p.tasks); i++ {
		p.tasks[i].pos = i
	}
	t.active = false
	if t.rate != 1 {
		p.throttled--
	}
}

// Preempt removes a task before completion, returning its remaining compute
// cycles. The task's completion callback will not fire. Preempting a task
// that already completed or was already preempted returns 0 without touching
// the pool (the membership check runs before any integration work).
//
// The handle is recycled: remaining work comes from the return value, and
// BytesMoved must be read before the pool's next Start.
func (p *FluidPool) Preempt(t *FluidTask) float64 {
	if !t.active || t.pool != p {
		return 0
	}
	p.integrate(p.engine.Now())
	t.doneEvent.Cancel()
	t.doneEvent = nil
	p.remove(t)
	p.recompute()
	work := t.Work
	t.OnComplete = nil
	t.done = nil
	t.owner = nil
	p.free = append(p.free, t)
	return work
}

// integrate advances every task's progress up to now at its current rate.
// A second call at the same cycle is free: progress is tracked as integrated
// up to p.integrated. Every structural change to the task set integrates
// first, so all member tasks are integrated to exactly p.integrated — the
// elapsed interval is shared, not per-task.
func (p *FluidPool) integrate(now Cycle) {
	dt := float64(now - p.integrated)
	if dt <= 0 {
		return
	}
	for _, t := range p.tasks {
		progress := t.rate * dt
		if progress > t.Work {
			progress = t.Work
		}
		t.Work -= progress
		moved := progress * t.DemandBW
		t.bytesMoved += moved
		p.totalBytes += moved
	}
	p.integrated = now
}

// maxFluidCycles saturates completion times whose work/rate ratio overflows
// the cycle range (a near-zero allocation on a huge operator): the event
// lands effectively at infinity and is rescheduled when the rate recovers.
const maxFluidCycles = float64(int64(1) << 62)

// recompute re-solves the bandwidth allocation and reschedules the
// completion events of tasks whose rate changed. Tasks whose rate is
// untouched by the re-solve keep their already-scheduled completion event —
// same rate, same landing cycle — which is the common case for uncontended
// tasks when a neighbor starts or finishes.
func (p *FluidPool) recompute() {
	now := p.engine.Now()
	p.recomputes++
	p.integrate(now)

	n := len(p.tasks)
	demands := p.demands
	total := 0.0
	for _, d := range demands {
		total += d
	}

	if total <= p.capacity {
		// Uncontended: the water-fill hands every flow exactly its demand, so
		// every rate is 1 (bit-identical to the general path — allocation
		// equals demand, and summing the zero demands changes no bits). The
		// per-task loop only needs to touch tasks not already at rate 1.
		if p.Tracer != nil {
			p.emitRebalance(now, n, total)
		}
		if p.throttled == 0 {
			return
		}
		for _, t := range p.tasks {
			if t.rate == 1 {
				continue // invariant: rate 1 implies a pending completion event
			}
			t.rate = 1
			p.throttled--
			t.doneEvent.Cancel()
			t.doneEvent = nil
			remaining := ceilDiv(t.Work, 1)
			at := now + Cycle(remaining)
			if remaining >= maxFluidCycles || at < now {
				at = Cycle(maxFluidCycles)
			}
			t.doneEvent = p.engine.ScheduleCall(at, fluidComplete, t)
			p.reschedules++
		}
		return
	}

	if cap(p.alloc) < n {
		p.alloc = make([]float64, n, 2*n+8)
	}
	alloc := p.alloc[:n]
	npu.WaterFillInto(alloc, demands, p.capacity)
	if p.Tracer != nil {
		used := 0.0
		for _, a := range alloc {
			used += a
		}
		p.emitRebalance(now, n, used)
	}

	for i, t := range p.tasks {
		rate := 1.0
		if t.DemandBW > 0 && alloc[i] < t.DemandBW {
			rate = alloc[i] / t.DemandBW
		}
		if rate == t.rate && (t.doneEvent != nil || rate == 0) {
			continue // same rate: the pending completion still lands right
		}
		if (t.rate == 1) != (rate == 1) {
			if rate == 1 {
				p.throttled--
			} else {
				p.throttled++
			}
		}
		t.rate = rate
		t.doneEvent.Cancel()
		t.doneEvent = nil
		if rate > 0 {
			remaining := ceilDiv(t.Work, rate)
			at := now + Cycle(remaining)
			if remaining >= maxFluidCycles || at < now {
				at = Cycle(maxFluidCycles)
			}
			t.doneEvent = p.engine.ScheduleCall(at, fluidComplete, t)
			p.reschedules++
		}
	}
}

// emitRebalance reports one allocation re-solve to the tracer.
func (p *FluidPool) emitRebalance(now Cycle, n int, used float64) {
	p.Tracer.Emit(obs.Event{
		Time: now, Type: obs.EvHBMRebalance,
		WIdx: -1, FUKind: obs.FUNone, FUIndex: -1, Request: -1, Op: -1,
		Arg0: float64(n), Arg1: used,
	})
}

// fluidComplete is the shared completion callback: ScheduleCall events are
// recycled on firing, so the handle is cleared before any pool work.
func fluidComplete(payload any, now Cycle) {
	t := payload.(*FluidTask)
	t.doneEvent = nil
	t.pool.complete(t, now)
}

func (p *FluidPool) complete(t *FluidTask, now Cycle) {
	if !t.active {
		return
	}
	p.integrate(now)
	// Guard against floating-point residue: the event time was rounded up, so
	// the work must be (numerically) done by now.
	t.Work = 0
	p.remove(t)
	p.recompute()
	if t.done != nil {
		t.done(t.owner, t, now)
	} else if t.OnComplete != nil {
		t.OnComplete(now)
	}
	// Recycle after the callbacks: completed handles are dead — pool callers
	// clear their task pointers inside the completion callback, and Preempt's
	// membership check keeps any straggler handle harmless until reuse.
	t.OnComplete = nil
	t.done = nil
	t.owner = nil
	p.free = append(p.free, t)
}

// ceilDiv rounds work/rate up to a whole cycle, absorbing float residue so a
// numerically-finished task (work ≈ 0) completes now rather than next cycle.
// Ratios beyond the cycle range (including +Inf and NaN from degenerate
// rates) saturate to maxFluidCycles instead of overflowing the int64
// conversion.
func ceilDiv(work, rate float64) float64 {
	c := work/rate - 1e-9
	if c <= 0 {
		return 0
	}
	if !(c < maxFluidCycles) {
		return maxFluidCycles // overflow, +Inf, or NaN: saturate
	}
	ic := float64(int64(c))
	if c > ic {
		return ic + 1
	}
	return ic
}
