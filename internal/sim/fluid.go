package sim

import (
	"v10/internal/npu"
	"v10/internal/obs"
)

// FluidTask is one operator making progress on a functional unit while
// streaming HBM traffic. Work is measured in compute cycles: a task with no
// bandwidth throttling progresses one unit of work per cycle.
type FluidTask struct {
	ID         int
	Work       float64 // remaining compute cycles
	DemandBW   float64 // bytes per cycle the task streams at full rate
	OnComplete func(now Cycle)

	rate       float64
	lastUpdate Cycle
	doneEvent  *Event
	bytesMoved float64 // traffic actually transferred so far
}

// BytesMoved returns the HBM traffic the task has generated so far.
func (t *FluidTask) BytesMoved() float64 { return t.bytesMoved }

// Remaining returns the remaining compute cycles at full rate.
func (t *FluidTask) Remaining() float64 { return t.Work }

// FluidPool advances a set of FluidTasks under a shared bandwidth capacity
// using max-min (water-filling) allocation. Each change to the task set
// re-solves the allocation and reschedules completion events.
type FluidPool struct {
	engine   *Engine
	capacity float64 // bytes per cycle
	tasks    map[int]*FluidTask
	nextID   int

	totalBytes float64 // all traffic ever moved through the pool

	// Tracer, when non-nil, receives an EvHBMRebalance event at every
	// re-solve of the bandwidth allocation (each task start, completion, and
	// preemption). Every emission is nil-guarded so the disabled path costs
	// one branch.
	Tracer obs.Tracer
}

// NewFluidPool creates a pool over the engine with the given bytes/cycle
// capacity.
func NewFluidPool(engine *Engine, capacityBytesPerCycle float64) *FluidPool {
	return &FluidPool{
		engine:   engine,
		capacity: capacityBytesPerCycle,
		tasks:    make(map[int]*FluidTask),
	}
}

// TotalBytes returns all HBM traffic moved through the pool so far,
// including traffic of still-running tasks up to the last recompute.
func (p *FluidPool) TotalBytes() float64 { return p.totalBytes }

// Capacity returns the pool's current bytes/cycle bandwidth capacity.
func (p *FluidPool) Capacity() float64 { return p.capacity }

// SetCapacity changes the shared bandwidth capacity mid-run (fault
// injection's HBM-degradation windows) and re-solves the allocation at the
// current cycle. Progress up to now is integrated at the old rates first.
func (p *FluidPool) SetCapacity(bytesPerCycle float64) {
	if bytesPerCycle == p.capacity {
		return
	}
	p.capacity = bytesPerCycle
	p.recompute()
}

// Active returns the number of tasks currently progressing.
func (p *FluidPool) Active() int { return len(p.tasks) }

// Start begins executing a task. work is the compute-cycle demand, demandBW
// the task's natural streaming rate in bytes/cycle. onComplete fires when the
// work is done. It returns the task handle (used to preempt).
func (p *FluidPool) Start(work float64, demandBW float64, onComplete func(now Cycle)) *FluidTask {
	if work <= 0 {
		work = 1e-9 // degenerate op: complete on the next recompute
	}
	p.nextID++
	t := &FluidTask{
		ID:         p.nextID,
		Work:       work,
		DemandBW:   demandBW,
		OnComplete: onComplete,
		lastUpdate: p.engine.Now(),
	}
	p.tasks[t.ID] = t
	p.recompute()
	return t
}

// Preempt removes a task before completion, returning its remaining compute
// cycles. The task's completion callback will not fire.
func (p *FluidPool) Preempt(t *FluidTask) float64 {
	p.integrate(p.engine.Now())
	if _, ok := p.tasks[t.ID]; !ok {
		return 0
	}
	t.doneEvent.Cancel()
	delete(p.tasks, t.ID)
	p.recompute()
	return t.Work
}

// integrate advances every task's progress up to now at its current rate.
func (p *FluidPool) integrate(now Cycle) {
	for _, t := range p.tasks {
		dt := float64(now - t.lastUpdate)
		if dt > 0 {
			progress := t.rate * dt
			if progress > t.Work {
				progress = t.Work
			}
			t.Work -= progress
			moved := progress * t.DemandBW
			t.bytesMoved += moved
			p.totalBytes += moved
		}
		t.lastUpdate = now
	}
}

// recompute re-solves the bandwidth allocation and reschedules completions.
// Callers must have integrated progress to the current cycle first (Start and
// Preempt do).
func (p *FluidPool) recompute() {
	now := p.engine.Now()
	p.integrate(now)

	ids := make([]int, 0, len(p.tasks))
	demands := make([]float64, 0, len(p.tasks))
	for id, t := range p.tasks {
		ids = append(ids, id)
		demands = append(demands, t.DemandBW)
	}
	// Map iteration order is random; sort for determinism.
	sortInts(ids)
	demands = demands[:0]
	for _, id := range ids {
		demands = append(demands, p.tasks[id].DemandBW)
	}
	alloc := npu.WaterFill(demands, p.capacity)
	if p.Tracer != nil {
		used := 0.0
		for _, a := range alloc {
			used += a
		}
		p.Tracer.Emit(obs.Event{
			Time: now, Type: obs.EvHBMRebalance,
			WIdx: -1, FUKind: obs.FUNone, FUIndex: -1, Request: -1, Op: -1,
			Arg0: float64(len(p.tasks)), Arg1: used,
		})
	}

	for i, id := range ids {
		t := p.tasks[id]
		rate := 1.0
		if t.DemandBW > 0 && alloc[i] < t.DemandBW {
			rate = alloc[i] / t.DemandBW
		}
		t.rate = rate
		t.doneEvent.Cancel()
		t.doneEvent = nil
		if rate > 0 {
			remaining := Cycle(ceilDiv(t.Work, rate))
			if remaining < 0 {
				remaining = 0
			}
			task := t
			t.doneEvent = p.engine.Schedule(now+remaining, func(fireNow Cycle) {
				p.complete(task, fireNow)
			})
		}
	}
}

func (p *FluidPool) complete(t *FluidTask, now Cycle) {
	if _, ok := p.tasks[t.ID]; !ok {
		return
	}
	p.integrate(now)
	// Guard against floating-point residue: the event time was rounded up, so
	// the work must be (numerically) done by now.
	t.Work = 0
	delete(p.tasks, t.ID)
	p.recompute()
	if t.OnComplete != nil {
		t.OnComplete(now)
	}
}

// ceilDiv rounds work/rate up to a whole cycle, absorbing float residue so a
// numerically-finished task (work ≈ 0) completes now rather than next cycle.
func ceilDiv(work, rate float64) float64 {
	c := work/rate - 1e-9
	if c <= 0 {
		return 0
	}
	ic := float64(int64(c))
	if c > ic {
		return ic + 1
	}
	return ic
}

func sortInts(xs []int) {
	// Insertion sort: task sets are tiny (≤ #FUs).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
