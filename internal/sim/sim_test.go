package sim

import (
	"math"
	"testing"
	"testing/quick"

	"v10/internal/mathx"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(30, func(Cycle) { order = append(order, 3) })
	e.Schedule(10, func(Cycle) { order = append(order, 1) })
	e.Schedule(20, func(Cycle) { order = append(order, 2) })
	for e.Step() {
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fire order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("final time = %d", e.Now())
	}
}

func TestEngineTieBreakBySchedulingOrder(t *testing.T) {
	var e Engine
	var order []int
	e.Schedule(5, func(Cycle) { order = append(order, 1) })
	e.Schedule(5, func(Cycle) { order = append(order, 2) })
	for e.Step() {
	}
	if order[0] != 1 || order[1] != 2 {
		t.Fatalf("tie order = %v", order)
	}
}

func TestEngineCancel(t *testing.T) {
	var e Engine
	fired := false
	ev := e.Schedule(10, func(Cycle) { fired = true })
	ev.Cancel()
	for e.Step() {
	}
	if fired {
		t.Fatal("canceled event fired")
	}
	if e.Pending() {
		t.Fatal("canceled event still pending")
	}
}

func TestEngineCancelCompactsHeap(t *testing.T) {
	var e Engine
	events := make([]*Event, 10_000)
	for i := range events {
		events[i] = e.Schedule(Cycle(i+1), func(Cycle) {})
	}
	// Cancel everything but the last event: compaction must kick in well
	// before the heap fills with garbage.
	for _, ev := range events[:len(events)-1] {
		ev.Cancel()
	}
	if len(e.events) > len(events)/2 {
		t.Fatalf("heap holds %d entries after canceling %d of %d events",
			len(e.events), len(events)-1, len(events))
	}
	if !e.Pending() {
		t.Fatal("one live event remains, Pending must be true")
	}
	fired := 0
	for e.Step() {
		fired++
	}
	if fired != 1 {
		t.Fatalf("fired %d events, want 1", fired)
	}
	if e.Pending() {
		t.Fatal("Pending after drain")
	}
}

func TestEngineCompactionPreservesOrder(t *testing.T) {
	var e Engine
	var order []int
	var cancel []*Event
	// Interleave kept and canceled events with colliding times so compaction
	// has to preserve (At, seq) tie-breaks.
	for i := 0; i < 200; i++ {
		i := i
		at := Cycle(100 - i/2) // descending, pairs tie
		ev := e.Schedule(at, func(Cycle) { order = append(order, i) })
		if i%2 == 1 {
			cancel = append(cancel, ev)
		}
	}
	for _, ev := range cancel {
		ev.Cancel()
	}
	for e.Step() {
	}
	if len(order) != 100 {
		t.Fatalf("fired %d events, want 100", len(order))
	}
	for k := 1; k < len(order); k++ {
		a, b := order[k-1], order[k]
		atA, atB := Cycle(100-a/2), Cycle(100-b/2)
		if atA > atB || (atA == atB && a > b) {
			t.Fatalf("fire order violated at %d: event %d (t=%d) before %d (t=%d)",
				k, a, atA, b, atB)
		}
	}
}

func TestEngineLiveCountInvariants(t *testing.T) {
	var e Engine
	if e.Pending() {
		t.Fatal("zero-value engine pending")
	}
	ev := e.Schedule(5, func(Cycle) {})
	if !e.Pending() {
		t.Fatal("scheduled event not pending")
	}
	ev.Cancel()
	ev.Cancel() // double-cancel must not corrupt the counters
	if e.Pending() {
		t.Fatal("canceled event still pending")
	}
	fired := false
	ev2 := e.Schedule(7, func(Cycle) { fired = true })
	for e.Step() {
	}
	if !fired || e.Pending() {
		t.Fatalf("fired=%v pending=%v after drain", fired, e.Pending())
	}
	ev2.Cancel() // cancel-after-fire is a no-op
	if e.Pending() || e.live != 0 || e.dead != 0 {
		t.Fatalf("counters corrupted: live=%d dead=%d", e.live, e.dead)
	}
}

func TestEngineCancelDuringCallback(t *testing.T) {
	var e Engine
	var fired []int
	var later *Event
	e.Schedule(1, func(Cycle) {
		fired = append(fired, 1)
		later.Cancel()
	})
	later = e.Schedule(2, func(Cycle) { fired = append(fired, 2) })
	e.Schedule(3, func(Cycle) { fired = append(fired, 3) })
	for e.Step() {
	}
	if len(fired) != 2 || fired[0] != 1 || fired[1] != 3 {
		t.Fatalf("fired = %v, want [1 3]", fired)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	var e Engine
	e.Schedule(10, func(Cycle) {})
	e.Step()
	defer func() {
		if recover() == nil {
			t.Fatal("past scheduling did not panic")
		}
	}()
	e.Schedule(5, func(Cycle) {})
}

func TestEngineAfterAndNestedScheduling(t *testing.T) {
	var e Engine
	var times []Cycle
	e.Schedule(10, func(now Cycle) {
		e.After(5, func(now2 Cycle) { times = append(times, now2) })
	})
	for e.Step() {
	}
	if len(times) != 1 || times[0] != 15 {
		t.Fatalf("nested event at %v, want [15]", times)
	}
}

func TestEngineRunUntil(t *testing.T) {
	var e Engine
	count := 0
	var tick func(Cycle)
	tick = func(Cycle) {
		count++
		e.After(10, tick)
	}
	e.After(10, tick)
	ok := e.RunUntil(func() bool { return count >= 5 }, 1_000_000)
	if !ok || count != 5 {
		t.Fatalf("RunUntil stopped with count=%d ok=%v", count, ok)
	}
	// Limit exceeded case.
	ok = e.RunUntil(func() bool { return false }, 200)
	if ok {
		t.Fatal("RunUntil should report predicate unsatisfied")
	}
}

func TestFluidSingleTaskFullRate(t *testing.T) {
	var e Engine
	pool := NewFluidPool(&e, 100)
	var doneAt Cycle = -1
	pool.Start(1000, 50, func(now Cycle) { doneAt = now })
	for e.Step() {
	}
	if doneAt != 1000 {
		t.Fatalf("unthrottled task finished at %d, want 1000", doneAt)
	}
	if math.Abs(pool.TotalBytes()-50000) > 1 {
		t.Fatalf("bytes moved = %v, want 50000", pool.TotalBytes())
	}
}

func TestFluidOversubscriptionSlowsDown(t *testing.T) {
	var e Engine
	pool := NewFluidPool(&e, 100) // capacity 100 B/cy
	var d1, d2 Cycle = -1, -1
	// Two tasks each demanding 100 B/cy: each gets 50 → rate 0.5.
	pool.Start(1000, 100, func(now Cycle) { d1 = now })
	pool.Start(1000, 100, func(now Cycle) { d2 = now })
	for e.Step() {
	}
	if d1 != 2000 || d2 != 2000 {
		t.Fatalf("throttled tasks finished at %d/%d, want 2000", d1, d2)
	}
}

func TestFluidRateRecoversAfterCompletion(t *testing.T) {
	var e Engine
	pool := NewFluidPool(&e, 100)
	var dShort, dLong Cycle = -1, -1
	pool.Start(500, 100, func(now Cycle) { dShort = now })
	pool.Start(1000, 100, func(now Cycle) { dLong = now })
	for e.Step() {
	}
	// Short: 500 work at rate .5 → done at 1000. Long: 500 done by then,
	// remaining 500 at full rate → 1500.
	if dShort != 1000 {
		t.Fatalf("short task at %d, want 1000", dShort)
	}
	if dLong < 1499 || dLong > 1501 {
		t.Fatalf("long task at %d, want ≈1500", dLong)
	}
}

func TestFluidZeroDemandNeverThrottled(t *testing.T) {
	var e Engine
	pool := NewFluidPool(&e, 1) // tiny capacity
	var done Cycle = -1
	pool.Start(100, 0, func(now Cycle) { done = now })
	pool.Start(100, 1000, nil)
	for e.Step() {
	}
	if done != 100 {
		t.Fatalf("zero-demand task finished at %d, want 100", done)
	}
}

func TestFluidPreemptReturnsRemaining(t *testing.T) {
	var e Engine
	pool := NewFluidPool(&e, 1000)
	completed := false
	task := pool.Start(1000, 10, func(Cycle) { completed = true })
	e.Schedule(400, func(Cycle) {
		remaining := pool.Preempt(task)
		if math.Abs(remaining-600) > 1 {
			t.Errorf("remaining = %v, want ≈600", remaining)
		}
	})
	for e.Step() {
	}
	if completed {
		t.Fatal("preempted task's completion fired")
	}
	if pool.Active() != 0 {
		t.Fatal("pool should be empty")
	}
}

func TestFluidPreemptIdempotent(t *testing.T) {
	var e Engine
	pool := NewFluidPool(&e, 1000)
	task := pool.Start(100, 10, nil)
	e.Schedule(10, func(Cycle) {
		pool.Preempt(task)
		if got := pool.Preempt(task); got != 0 {
			t.Errorf("second preempt returned %v, want 0", got)
		}
	})
	for e.Step() {
	}
}

// Property: total bytes moved equals Σ work_done × demand, and completion
// times are never earlier than work/1.0 (rate can't exceed 1).
func TestFluidConservationProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		var e Engine
		capacity := rng.Uniform(10, 500)
		pool := NewFluidPool(&e, capacity)
		n := 1 + rng.Intn(6)
		type rec struct {
			work, demand float64
			start, done  Cycle
		}
		recs := make([]*rec, n)
		for i := 0; i < n; i++ {
			r := &rec{
				work:   rng.Uniform(10, 5000),
				demand: rng.Uniform(0, 300),
				start:  Cycle(rng.Intn(1000)),
				done:   -1,
			}
			recs[i] = r
			e.Schedule(r.start, func(Cycle) {
				pool.Start(r.work, r.demand, func(now Cycle) { r.done = now })
			})
		}
		for e.Step() {
		}
		wantBytes := 0.0
		for _, r := range recs {
			if r.done < 0 {
				return false // all tasks must finish
			}
			if float64(r.done-r.start) < r.work-1e-6 {
				return false // faster than full rate is impossible
			}
			wantBytes += r.work * r.demand
		}
		return math.Abs(pool.TotalBytes()-wantBytes) < wantBytes*1e-6+1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: with capacity at least the sum of demands, every task runs at
// full rate (completion == work, modulo integer rounding).
func TestFluidNoContentionFullRateProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		var e Engine
		n := 1 + rng.Intn(5)
		demands := make([]float64, n)
		total := 0.0
		for i := range demands {
			demands[i] = rng.Uniform(1, 100)
			total += demands[i]
		}
		pool := NewFluidPool(&e, total+1)
		ok := true
		for i := 0; i < n; i++ {
			work := rng.Uniform(100, 1000)
			w := work
			pool.Start(work, demands[i], func(now Cycle) {
				if float64(now) < w-1e-6 || float64(now) > w+2 {
					ok = false
				}
			})
		}
		for e.Step() {
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
