package sim

import (
	"testing"

	"v10/internal/obs"
)

func TestEngineEventStats(t *testing.T) {
	e := &Engine{}
	e.Schedule(10, func(int64) {})
	ev := e.Schedule(20, func(int64) {})
	e.Schedule(30, func(int64) {})
	ev.Cancel()
	for e.Step() {
	}
	sched, fired, canceled := e.EventStats()
	if sched != 3 || fired != 2 || canceled != 1 {
		t.Fatalf("EventStats = %d/%d/%d, want 3 scheduled, 2 fired, 1 canceled",
			sched, fired, canceled)
	}
	if backlog := sched - fired - canceled; backlog != 0 {
		t.Fatalf("drained engine reports backlog %d", backlog)
	}
}

func TestEngineEventStatsDoubleCancel(t *testing.T) {
	e := &Engine{}
	ev := e.Schedule(10, func(int64) {})
	ev.Cancel()
	ev.Cancel() // no-op: must not double-count
	_, _, canceled := e.EventStats()
	if canceled != 1 {
		t.Fatalf("canceled = %d after double Cancel", canceled)
	}
}

func TestFluidPoolEmitsRebalance(t *testing.T) {
	e := &Engine{}
	ring := obs.NewRing(256)
	p := NewFluidPool(e, 100)
	p.Tracer = ring
	var done int
	p.Start(1000, 80, func(int64) { done++ })
	p.Start(1000, 80, func(int64) { done++ })
	for e.Step() {
	}
	if done != 2 {
		t.Fatalf("completions = %d", done)
	}
	n := ring.Count(obs.EvHBMRebalance)
	if n < 3 {
		// Two starts and at least the first completion each re-solve the
		// water-filling allocation.
		t.Fatalf("only %d rebalance events for 2 starts + 2 completions", n)
	}
	for _, ev := range ring.Events() {
		if ev.Type != obs.EvHBMRebalance {
			continue
		}
		if ev.Arg0 < 0 || ev.Arg0 > 2 {
			t.Fatalf("rebalance task count out of range: %+v", ev)
		}
		if ev.Arg1 < 0 || ev.Arg1 > 100.0001 {
			t.Fatalf("allocated bandwidth %v exceeds the 100 B/cycle pool", ev.Arg1)
		}
	}
}

func TestFluidPoolNilTracerSafe(t *testing.T) {
	e := &Engine{}
	p := NewFluidPool(e, 100)
	p.Start(100, 10, func(int64) {})
	for e.Step() {
	}
}
