// Package metrics accumulates and summarizes what the simulators measure:
// temporal SA/VU utilization, SA+VU overlap breakdown (paper Fig. 17), HBM
// bandwidth utilization, per-workload progress for system throughput (STP,
// the sum of normalized forward progress from Eyerman & Eeckhout that the
// paper adopts in §5.3), request latencies, and preemption accounting.
package metrics

import (
	"fmt"

	"v10/internal/mathx"
	"v10/internal/vnpu"
)

// BusyTracker integrates wall-clock time spent with each combination of
// busy functional units. Drive it with Update at every point the busy set
// changes, then Finish at the end of the run.
type BusyTracker struct {
	lastCycle        int64
	saBusy, vuBusy   int // currently busy counts
	numSA, numVU     int
	SABusyCycles     int64 // Σ busy cycles across SAs (unit-cycles)
	VUBusyCycles     int64 // Σ busy cycles across VUs (unit-cycles)
	BothBusyCycles   int64 // wall cycles with ≥1 SA and ≥1 VU busy
	SAOnlyCycles     int64 // wall cycles with ≥1 SA busy, all VUs idle
	VUOnlyCycles     int64 // wall cycles with ≥1 VU busy, all SAs idle
	IdleCycles       int64 // wall cycles with every FU idle
	SASwitchCycles   int64 // wall cycles SAs spent on context switches
	VUSwitchCycles   int64 // wall cycles VUs spent on context switches
	saSwitch, vuSwch int
}

// NewBusyTracker creates a tracker for a core with the given FU counts.
func NewBusyTracker(numSA, numVU int) *BusyTracker {
	return &BusyTracker{numSA: numSA, numVU: numVU}
}

// Advance integrates the interval [lastCycle, now) under the current busy
// counts; callers then adjust the counts.
func (b *BusyTracker) Advance(now int64) {
	dt := now - b.lastCycle
	if dt < 0 {
		panic("metrics: time went backwards")
	}
	if dt > 0 {
		b.SABusyCycles += dt * int64(b.saBusy)
		b.VUBusyCycles += dt * int64(b.vuBusy)
		saActive := b.saBusy+b.saSwitch > 0
		vuActive := b.vuBusy+b.vuSwch > 0
		switch {
		case saActive && vuActive:
			b.BothBusyCycles += dt
		case saActive:
			b.SAOnlyCycles += dt
		case vuActive:
			b.VUOnlyCycles += dt
		default:
			b.IdleCycles += dt
		}
		b.SASwitchCycles += dt * int64(b.saSwitch)
		b.VUSwitchCycles += dt * int64(b.vuSwch)
	}
	b.lastCycle = now
}

// SetBusy adjusts the number of busy SAs/VUs after advancing to now.
func (b *BusyTracker) SetBusy(now int64, saDelta, vuDelta int) {
	b.Advance(now)
	b.saBusy += saDelta
	b.vuBusy += vuDelta
	if b.saBusy < 0 || b.vuBusy < 0 || b.saBusy > b.numSA || b.vuBusy > b.numVU {
		panic("metrics: FU busy count out of range")
	}
}

// SetSwitching adjusts the number of FUs performing context switches. Counts
// are bounded by the core's FU counts in both directions: a double-
// SetSwitching bug would otherwise inflate SASwitchCycles/VUSwitchCycles
// silently (each extra phantom switcher adds dt per interval).
func (b *BusyTracker) SetSwitching(now int64, saDelta, vuDelta int) {
	b.Advance(now)
	b.saSwitch += saDelta
	b.vuSwch += vuDelta
	if b.saSwitch < 0 || b.vuSwch < 0 {
		panic("metrics: FU switching count negative")
	}
	if b.saSwitch > b.numSA || b.vuSwch > b.numVU {
		panic("metrics: FU switching count exceeds FU count")
	}
}

// Finish integrates up to the end of the run and verifies the internal
// invariant that the Fig. 17 overlap breakdown partitions wall time exactly:
// BothBusy + SAOnly + VUOnly + Idle must equal the integrated span. Every
// interval is accounted to exactly one bucket by Advance, so a mismatch means
// tracker state was corrupted mid-run.
func (b *BusyTracker) Finish(now int64) {
	b.Advance(now)
	sum := b.BothBusyCycles + b.SAOnlyCycles + b.VUOnlyCycles + b.IdleCycles
	if sum != b.lastCycle {
		panic(fmt.Sprintf("metrics: overlap breakdown (%d cycles) does not sum to wall cycles (%d)",
			sum, b.lastCycle))
	}
}

// TotalCycles returns the wall-clock span integrated so far.
func (b *BusyTracker) TotalCycles() int64 { return b.lastCycle }

// WorkloadStats is the per-workload outcome of a simulation run.
type WorkloadStats struct {
	Name             string
	Requests         int       // completed requests
	LatencyCycles    []float64 // per completed request
	ActiveCycles     int64     // FU-occupancy cycles attributed to this workload
	SABusyCycles     int64     // useful SA cycles (occupancy × op efficiency)
	VUBusyCycles     int64     // useful VU cycles
	FLOPs            float64   // floating-point operations completed
	Preemptions      int64     // operator (V10) or task (PMT) preemptions
	SwitchCycles     int64     // context-switch overhead cycles paid
	HBMBytes         float64   // off-chip traffic generated
	CtxStorageBytes  int64     // peak preemption context held in vmem
	ProgressOps      int64     // operators completed (forward progress)
	ProgressOpCycles float64   // compute cycles completed (progress measure)
	FirstCompleteAt  int64
	LastCompleteAt   int64
	// InFlightOpKind records the operator this workload had executing on a
	// functional unit when a fault halted the run: 0 none, 1 SA, 2 VU. The
	// fleet's migration path charges the §3.3 checkpoint cost for it.
	InFlightOpKind int
}

// AvgLatency returns the mean request latency in cycles.
func (w *WorkloadStats) AvgLatency() float64 { return mathx.Mean(w.LatencyCycles) }

// TailLatency returns the p-th percentile request latency in cycles.
func (w *WorkloadStats) TailLatency(p float64) float64 {
	return mathx.Percentile(w.LatencyCycles, p)
}

// RunResult is the outcome of one multi-tenant (or single-tenant) run.
type RunResult struct {
	Scheme      string // "PMT", "V10-Base", "V10-Fair", "V10-Full", "Single"
	TotalCycles int64
	// HaltedAt is the cycle an injected fail-stop cleanly ended the run at
	// (0 = ran to completion). Halted runs keep their partial measurements
	// without an ErrMaxCycles wrap.
	HaltedAt    int64
	NumSA       int
	NumVU       int
	HBMCapacity float64 // bytes per cycle
	Busy        *BusyTracker
	Workloads   []*WorkloadStats
	// Slices holds per-vNPU-slice enforcement statistics (throttle stalls,
	// cap hits, charged HBM bytes) when the run was spatially partitioned;
	// nil otherwise.
	Slices []vnpu.SliceStats
}

// SAUtil returns temporal SA utilization: useful SA cycles over available SA
// unit-cycles (what TPU performance counters report — intra-op pipeline
// bubbles do not count as utilization even though they occupy the FU).
func (r *RunResult) SAUtil() float64 {
	if r.TotalCycles == 0 || r.NumSA == 0 {
		return 0
	}
	var useful int64
	for _, w := range r.Workloads {
		useful += w.SABusyCycles
	}
	return float64(useful) / float64(r.TotalCycles*int64(r.NumSA))
}

// VUUtil returns temporal VU utilization (useful cycles).
func (r *RunResult) VUUtil() float64 {
	if r.TotalCycles == 0 || r.NumVU == 0 {
		return 0
	}
	var useful int64
	for _, w := range r.Workloads {
		useful += w.VUBusyCycles
	}
	return float64(useful) / float64(r.TotalCycles*int64(r.NumVU))
}

// AggregateUtil returns the utilization of all compute units combined,
// the paper's headline "overall NPU utilization".
func (r *RunResult) AggregateUtil() float64 {
	fu := int64(r.NumSA + r.NumVU)
	if r.TotalCycles == 0 || fu == 0 {
		return 0
	}
	var useful int64
	for _, w := range r.Workloads {
		useful += w.SABusyCycles + w.VUBusyCycles
	}
	return float64(useful) / float64(r.TotalCycles*fu)
}

// HBMUtil returns achieved bandwidth over capacity.
func (r *RunResult) HBMUtil() float64 {
	if r.TotalCycles == 0 || r.HBMCapacity == 0 {
		return 0
	}
	bytes := 0.0
	for _, w := range r.Workloads {
		bytes += w.HBMBytes
	}
	return bytes / (float64(r.TotalCycles) * r.HBMCapacity)
}

// OverlapBreakdown returns the fractions of wall-clock time with both FU
// types active, only SA active, and only VU active (Fig. 17).
func (r *RunResult) OverlapBreakdown() (both, saOnly, vuOnly float64) {
	if r.TotalCycles == 0 {
		return 0, 0, 0
	}
	t := float64(r.TotalCycles)
	return float64(r.Busy.BothBusyCycles) / t,
		float64(r.Busy.SAOnlyCycles) / t,
		float64(r.Busy.VUOnlyCycles) / t
}

// ProgressRate returns workload w's forward progress in compute cycles per
// wall cycle — the normalization basis for STP.
func (r *RunResult) ProgressRate(w int) float64 {
	if r.TotalCycles == 0 {
		return 0
	}
	return r.Workloads[w].ProgressOpCycles / float64(r.TotalCycles)
}

// STP computes system throughput: the sum over workloads of this run's
// progress rate divided by the workload's single-tenant progress rate.
func (r *RunResult) STP(singleTenantRates []float64) float64 {
	if len(singleTenantRates) != len(r.Workloads) {
		panic("metrics: STP baseline count mismatch")
	}
	stp := 0.0
	for i := range r.Workloads {
		if singleTenantRates[i] > 0 {
			stp += r.ProgressRate(i) / singleTenantRates[i]
		}
	}
	return stp
}

// FLOPSUtil returns achieved FLOP/cycle over the core's peak FLOP/cycle —
// the paper's Fig. 3 overall FLOPS utilization — given the peak in
// FLOPs per cycle.
func (r *RunResult) FLOPSUtil(peakFLOPsPerCycle float64) float64 {
	if r.TotalCycles == 0 || peakFLOPsPerCycle == 0 {
		return 0
	}
	flops := 0.0
	for _, w := range r.Workloads {
		flops += w.FLOPs
	}
	return flops / (float64(r.TotalCycles) * peakFLOPsPerCycle)
}

// WorkloadSAUtil returns workload w's own SA temporal utilization.
func (r *RunResult) WorkloadSAUtil(w int) float64 {
	if r.TotalCycles == 0 || r.NumSA == 0 {
		return 0
	}
	return float64(r.Workloads[w].SABusyCycles) / float64(r.TotalCycles*int64(r.NumSA))
}

// WorkloadVUUtil returns workload w's own VU temporal utilization.
func (r *RunResult) WorkloadVUUtil(w int) float64 {
	if r.TotalCycles == 0 || r.NumVU == 0 {
		return 0
	}
	return float64(r.Workloads[w].VUBusyCycles) / float64(r.TotalCycles*int64(r.NumVU))
}

// NormalizedProgress returns per-workload progress normalized to the
// single-tenant rate (each term of STP).
func (r *RunResult) NormalizedProgress(singleTenantRates []float64) []float64 {
	out := make([]float64, len(r.Workloads))
	for i := range r.Workloads {
		if singleTenantRates[i] > 0 {
			out[i] = r.ProgressRate(i) / singleTenantRates[i]
		}
	}
	return out
}

// Fairness returns Jain's fairness index over the workloads' normalized
// progress, weighted by priority: 1 means every workload receives exactly
// its priority-proportional share (the goal of Algorithm 1), 1/n means one
// workload monopolizes the core.
func (r *RunResult) Fairness(singleTenantRates, priorities []float64) float64 {
	norm := r.NormalizedProgress(singleTenantRates)
	for i := range norm {
		if i < len(priorities) && priorities[i] > 0 {
			norm[i] /= priorities[i]
		}
	}
	return mathx.JainFairness(norm)
}
