package metrics

import (
	"math"
	"testing"
	"testing/quick"

	"v10/internal/mathx"
)

func TestBusyTrackerIntervals(t *testing.T) {
	b := NewBusyTracker(1, 1)
	b.SetBusy(0, 1, 0)    // SA busy from 0
	b.SetBusy(100, 0, 1)  // VU joins at 100
	b.SetBusy(150, -1, 0) // SA done at 150
	b.SetBusy(200, 0, -1) // VU done at 200
	b.Advance(250)        // idle tail

	if b.SABusyCycles != 150 || b.VUBusyCycles != 100 {
		t.Fatalf("busy cycles SA=%d VU=%d", b.SABusyCycles, b.VUBusyCycles)
	}
	if b.SAOnlyCycles != 100 || b.BothBusyCycles != 50 || b.VUOnlyCycles != 50 || b.IdleCycles != 50 {
		t.Fatalf("breakdown = %d/%d/%d/%d", b.SAOnlyCycles, b.BothBusyCycles, b.VUOnlyCycles, b.IdleCycles)
	}
}

func TestBusyTrackerPanicsOnOverflow(t *testing.T) {
	b := NewBusyTracker(1, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("busy count above FU count accepted")
		}
	}()
	b.SetBusy(0, 2, 0)
}

func TestBusyTrackerPanicsOnTimeReversal(t *testing.T) {
	b := NewBusyTracker(1, 1)
	b.Advance(100)
	defer func() {
		if recover() == nil {
			t.Fatal("time reversal accepted")
		}
	}()
	b.Advance(50)
}

func TestBusyTrackerSwitchingCountsAsActive(t *testing.T) {
	b := NewBusyTracker(1, 1)
	b.SetSwitching(0, 1, 0)
	b.SetSwitching(384, -1, 0)
	b.Advance(400)
	if b.SASwitchCycles != 384 {
		t.Fatalf("switch cycles = %d", b.SASwitchCycles)
	}
	// Switching occupies the FU (it cannot run anything else) but is not
	// counted as useful busy time.
	if b.SABusyCycles != 0 {
		t.Fatal("switching must not count as useful busy time")
	}
	if b.SAOnlyCycles != 384 || b.IdleCycles != 16 {
		t.Fatalf("wall breakdown wrong: saOnly=%d idle=%d", b.SAOnlyCycles, b.IdleCycles)
	}
}

func makeResult() *RunResult {
	b := NewBusyTracker(1, 1)
	b.SetBusy(0, 1, 0)
	b.SetBusy(500, 0, 1)
	b.SetBusy(600, -1, -1)
	b.Advance(1000)
	return &RunResult{
		Scheme:      "test",
		TotalCycles: 1000,
		NumSA:       1,
		NumVU:       1,
		HBMCapacity: 100,
		Busy:        b,
		Workloads: []*WorkloadStats{
			{Name: "A", LatencyCycles: []float64{100, 200, 300}, HBMBytes: 30000,
				ProgressOpCycles: 500, SABusyCycles: 600, VUBusyCycles: 0},
			{Name: "B", LatencyCycles: []float64{50}, HBMBytes: 20000,
				ProgressOpCycles: 100, SABusyCycles: 0, VUBusyCycles: 100},
		},
	}
}

func TestRunResultUtilizations(t *testing.T) {
	r := makeResult()
	if got := r.SAUtil(); got != 0.6 {
		t.Errorf("SAUtil = %v, want 0.6", got)
	}
	if got := r.VUUtil(); got != 0.1 {
		t.Errorf("VUUtil = %v, want 0.1", got)
	}
	if got := r.AggregateUtil(); got != 0.35 {
		t.Errorf("AggregateUtil = %v, want 0.35", got)
	}
	if got := r.HBMUtil(); got != 0.5 {
		t.Errorf("HBMUtil = %v, want 0.5", got)
	}
	both, saOnly, vuOnly := r.OverlapBreakdown()
	if both != 0.1 || saOnly != 0.5 || vuOnly != 0 {
		t.Errorf("overlap = %v/%v/%v", both, saOnly, vuOnly)
	}
}

func TestSTP(t *testing.T) {
	r := makeResult()
	// Single-tenant rates: A would do 1.0, B would do 0.4 compute/cycle.
	stp := r.STP([]float64{1.0, 0.4})
	want := 0.5/1.0 + 0.1/0.4
	if math.Abs(stp-want) > 1e-12 {
		t.Fatalf("STP = %v, want %v", stp, want)
	}
	norm := r.NormalizedProgress([]float64{1.0, 0.4})
	if math.Abs(norm[0]-0.5) > 1e-12 || math.Abs(norm[1]-0.25) > 1e-12 {
		t.Fatalf("normalized progress = %v", norm)
	}
}

func TestSTPMismatchPanics(t *testing.T) {
	r := makeResult()
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched baseline accepted")
		}
	}()
	r.STP([]float64{1})
}

func TestWorkloadLatencyStats(t *testing.T) {
	w := &WorkloadStats{LatencyCycles: []float64{100, 200, 300, 400}}
	if w.AvgLatency() != 250 {
		t.Fatalf("avg = %v", w.AvgLatency())
	}
	if got := w.TailLatency(95); got < 380 || got > 400 {
		t.Fatalf("p95 = %v", got)
	}
}

func TestZeroCycleResultSafe(t *testing.T) {
	r := &RunResult{Busy: NewBusyTracker(1, 1), Workloads: []*WorkloadStats{}}
	if r.SAUtil() != 0 || r.VUUtil() != 0 || r.HBMUtil() != 0 || r.AggregateUtil() != 0 {
		t.Fatal("zero-cycle result should report zero utilizations")
	}
	both, sa, vu := r.OverlapBreakdown()
	if both != 0 || sa != 0 || vu != 0 {
		t.Fatal("zero-cycle overlap should be zero")
	}
}

// Property: the four wall-clock buckets partition total time, and busy
// unit-cycles never exceed capacity.
func TestBusyTrackerPartitionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		numSA, numVU := 1+rng.Intn(3), 1+rng.Intn(3)
		b := NewBusyTracker(numSA, numVU)
		sa, vu := 0, 0
		now := int64(0)
		for i := 0; i < 50; i++ {
			now += int64(rng.Intn(100))
			dsa, dvu := 0, 0
			if rng.Float64() < 0.5 {
				if sa < numSA && rng.Float64() < 0.6 {
					dsa = 1
				} else if sa > 0 {
					dsa = -1
				}
			} else {
				if vu < numVU && rng.Float64() < 0.6 {
					dvu = 1
				} else if vu > 0 {
					dvu = -1
				}
			}
			sa += dsa
			vu += dvu
			b.SetBusy(now, dsa, dvu)
		}
		now += 100
		b.Advance(now)
		total := b.BothBusyCycles + b.SAOnlyCycles + b.VUOnlyCycles + b.IdleCycles
		if total != now {
			return false
		}
		return b.SABusyCycles <= now*int64(numSA) && b.VUBusyCycles <= now*int64(numVU)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestFLOPSUtil(t *testing.T) {
	r := makeResult()
	r.Workloads[0].FLOPs = 1e6
	r.Workloads[1].FLOPs = 1e6
	// 2e6 FLOPs over 1000 cycles at 4000 FLOPs/cycle peak = 50%.
	if got := r.FLOPSUtil(4000); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("FLOPSUtil = %v, want 0.5", got)
	}
	if r.FLOPSUtil(0) != 0 {
		t.Fatal("zero peak should yield 0")
	}
}

func TestWorkloadPerFUUtil(t *testing.T) {
	r := makeResult()
	if got := r.WorkloadSAUtil(0); got != 0.6 {
		t.Fatalf("workload 0 SA util = %v, want 0.6", got)
	}
	if got := r.WorkloadVUUtil(1); got != 0.1 {
		t.Fatalf("workload 1 VU util = %v, want 0.1", got)
	}
	if got := r.WorkloadSAUtil(1); got != 0 {
		t.Fatalf("workload 1 SA util = %v, want 0", got)
	}
}

func TestFairness(t *testing.T) {
	r := makeResult()
	// Equal normalized progress → fairness 1.
	equal := r.Fairness([]float64{0.5, 0.1}, []float64{1, 1})
	if math.Abs(equal-1) > 1e-9 {
		t.Fatalf("equal-progress fairness = %v, want 1", equal)
	}
	// Skewed progress → fairness < 1.
	skew := r.Fairness([]float64{0.5, 0.4}, []float64{1, 1})
	if skew >= equal {
		t.Fatalf("skewed fairness %v should be below %v", skew, equal)
	}
	// Priorities rescale the target shares: progress proportional to
	// priority is perfectly fair.
	prio := r.Fairness([]float64{0.5, 0.2}, []float64{1, 0.5})
	if math.Abs(prio-1) > 1e-9 {
		t.Fatalf("priority-weighted fairness = %v, want 1", prio)
	}
}

func TestProgressRateZeroCycles(t *testing.T) {
	r := &RunResult{Busy: NewBusyTracker(1, 1), Workloads: []*WorkloadStats{{}}}
	if r.ProgressRate(0) != 0 {
		t.Fatal("zero-cycle progress rate should be 0")
	}
}

// --- BusyTracker boundary behaviour ---

// A zero-FU tracker is degenerate but legal (a core model with one FU kind
// disabled): time integrates entirely into Idle, and any attempt to mark an
// FU busy or switching panics immediately.
func TestBusyTrackerZeroFUs(t *testing.T) {
	b := NewBusyTracker(0, 0)
	b.Advance(500)
	b.Finish(1000)
	if b.IdleCycles != 1000 || b.TotalCycles() != 1000 {
		t.Fatalf("idle = %d, total = %d, want 1000, 1000", b.IdleCycles, b.TotalCycles())
	}
	if b.SABusyCycles != 0 || b.VUBusyCycles != 0 {
		t.Fatal("zero-FU tracker accumulated busy cycles")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("busy FU accepted on a zero-FU tracker")
		}
	}()
	b2 := NewBusyTracker(0, 0)
	b2.SetBusy(0, 1, 0)
}

// Finish with no recorded activity must not trip the partition check: the
// whole span is idle, and Both+SAOnly+VUOnly+Idle still sums to wall time.
func TestBusyTrackerFinishWithoutActivity(t *testing.T) {
	b := NewBusyTracker(2, 2)
	b.Finish(12345)
	if b.IdleCycles != 12345 {
		t.Fatalf("idle = %d, want 12345", b.IdleCycles)
	}
	if got := b.BothBusyCycles + b.SAOnlyCycles + b.VUOnlyCycles + b.IdleCycles; got != b.TotalCycles() {
		t.Fatalf("partition %d != wall %d", got, b.TotalCycles())
	}
	// Finish at cycle 0 (a run that never advanced) is also fine.
	NewBusyTracker(1, 1).Finish(0)
}

// SetSwitching at exactly the FU count is legal (every FU mid-switch); one
// more panics.
func TestBusyTrackerSwitchingAtFUCountBoundary(t *testing.T) {
	b := NewBusyTracker(2, 3)
	b.SetSwitching(0, 2, 3) // exactly numSA, numVU: allowed
	b.SetSwitching(100, -2, -3)
	if b.SASwitchCycles != 200 || b.VUSwitchCycles != 300 {
		t.Fatalf("switch unit-cycles = %d/%d, want 200/300", b.SASwitchCycles, b.VUSwitchCycles)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("switching count above FU count accepted")
		}
	}()
	b.SetSwitching(200, 3, 0)
}
