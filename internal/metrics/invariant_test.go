package metrics

import (
	"strings"
	"testing"
)

func mustPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic; want %q", want)
		}
		if msg, ok := r.(string); !ok || !strings.Contains(msg, want) {
			t.Fatalf("panic = %v, want containing %q", r, want)
		}
	}()
	fn()
}

func TestSetSwitchingUpperBound(t *testing.T) {
	b := NewBusyTracker(2, 2)
	b.SetSwitching(10, 2, 0) // at the bound: fine
	mustPanic(t, "exceeds FU count", func() { b.SetSwitching(20, 1, 0) })

	b2 := NewBusyTracker(2, 2)
	mustPanic(t, "exceeds FU count", func() { b2.SetSwitching(10, 0, 3) })
}

func TestSetSwitchingNegative(t *testing.T) {
	b := NewBusyTracker(2, 2)
	mustPanic(t, "negative", func() { b.SetSwitching(10, -1, 0) })
}

func TestFinishPartitionsWallTime(t *testing.T) {
	b := NewBusyTracker(1, 1)
	b.SetBusy(100, 1, 0)  // SA busy from 100
	b.SetBusy(200, 0, 1)  // both busy from 200
	b.SetBusy(300, -1, 0) // VU only from 300
	b.SetBusy(400, 0, -1) // idle from 400
	b.Finish(500)
	if b.IdleCycles != 200 || b.SAOnlyCycles != 100 || b.BothBusyCycles != 100 || b.VUOnlyCycles != 100 {
		t.Fatalf("breakdown = idle %d / sa %d / both %d / vu %d",
			b.IdleCycles, b.SAOnlyCycles, b.BothBusyCycles, b.VUOnlyCycles)
	}
	if b.TotalCycles() != 500 {
		t.Fatalf("total = %d", b.TotalCycles())
	}
}

func TestFinishDetectsCorruptedBreakdown(t *testing.T) {
	b := NewBusyTracker(1, 1)
	b.SetBusy(100, 1, 0)
	b.SetBusy(200, -1, 0)
	b.SAOnlyCycles += 7 // corrupt an accumulator behind the tracker's back
	mustPanic(t, "does not sum to wall cycles", func() { b.Finish(300) })
}
