package bench

import (
	"math"
	"path/filepath"
	"strings"
	"testing"
)

// TestRunSimSuite executes the committed single-core suite once and checks
// every scenario produced work. Cycle counts are pinned exactly: the suite is
// deterministic, and these are the numbers the committed BENCH_sim.json gate
// was measured against — any drift means the engine's arithmetic changed.
func TestRunSimSuite(t *testing.T) {
	s, err := RunSim(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Suite != "sim" {
		t.Fatalf("suite = %q, want sim", s.Suite)
	}
	wantCycles := map[string]int64{
		"pair-full":     397_582_373,
		"pair-base":     337_434_542,
		"quad-full":     246_450_849,
		"pair-nohbm":    383_825_090,
		"preempt-heavy": 195_611_698,
		"open-loop":     299_555_291,
	}
	if len(s.Scenarios) != len(wantCycles) {
		t.Fatalf("got %d scenarios, want %d", len(s.Scenarios), len(wantCycles))
	}
	for _, r := range s.Scenarios {
		want, ok := wantCycles[r.Name]
		if !ok {
			t.Errorf("unexpected scenario %q", r.Name)
			continue
		}
		if r.Cycles != want {
			t.Errorf("%s simulated %d cycles, want exactly %d (bit-identity broken)", r.Name, r.Cycles, want)
		}
		if r.CyclesPerSec <= 0 || r.WallNS <= 0 {
			t.Errorf("%s: empty measurement %+v", r.Name, r)
		}
	}
	if s.GeomeanCyclesPerSec <= 0 || s.CalibPerSec <= 0 {
		t.Fatalf("snapshot missing aggregates: %+v", s)
	}
}

func TestRunFleetSuite(t *testing.T) {
	s, err := RunFleet(1)
	if err != nil {
		t.Fatal(err)
	}
	wantCycles := map[string]int64{
		"fleet-8c16t":       394_010_664,
		"fleet-serial-4c8t": 131_795_707,
	}
	for _, r := range s.Scenarios {
		if want := wantCycles[r.Name]; r.Cycles != want {
			t.Errorf("%s simulated %d cycles, want exactly %d", r.Name, r.Cycles, want)
		}
		if r.RequestsPerSec <= 0 {
			t.Errorf("%s completed no requests", r.Name)
		}
	}
}

func TestGeomean(t *testing.T) {
	rs := []Result{{CyclesPerSec: 2}, {CyclesPerSec: 8}}
	if g := geomean(rs, func(r Result) float64 { return r.CyclesPerSec }); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean(2, 8) = %g, want 4", g)
	}
	// Non-positive entries are skipped, not poisoned.
	rs = append(rs, Result{CyclesPerSec: 0})
	if g := geomean(rs, func(r Result) float64 { return r.CyclesPerSec }); math.Abs(g-4) > 1e-12 {
		t.Fatalf("geomean with zero entry = %g, want 4", g)
	}
	if g := geomean(nil, func(r Result) float64 { return 1 }); g != 0 {
		t.Fatalf("geomean(nil) = %g, want 0", g)
	}
}

func TestAttachBaselinePreservesOriginalTrajectory(t *testing.T) {
	s := &Snapshot{Scenarios: []Result{{Name: "a", CyclesPerSec: 300}, {Name: "new", CyclesPerSec: 50}}}
	// The prior snapshot itself carries a baseline: the original pre-overhaul
	// number must win so the trajectory never re-bases.
	prior := &Snapshot{Scenarios: []Result{{Name: "a", CyclesPerSec: 200, BaselineCyclesPerSec: 100}}}
	s.AttachBaseline(prior)
	if got := s.Scenarios[0].BaselineCyclesPerSec; got != 100 {
		t.Fatalf("baseline re-based to %g, want the original 100", got)
	}
	if got := s.Scenarios[0].SpeedupX; math.Abs(got-3) > 1e-12 {
		t.Fatalf("speedup = %g, want 3 (vs original baseline)", got)
	}
	if s.Scenarios[1].SpeedupX != 0 {
		t.Fatalf("scenario without prior data got speedup %g", s.Scenarios[1].SpeedupX)
	}
	if math.Abs(s.GeomeanSpeedupX-3) > 1e-12 {
		t.Fatalf("geomean speedup = %g, want 3 (only scenarios with baselines count)", s.GeomeanSpeedupX)
	}
	s.AttachBaseline(nil) // must be a no-op
	if s.Scenarios[0].BaselineCyclesPerSec != 100 {
		t.Fatal("AttachBaseline(nil) clobbered the baseline")
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	s := &Snapshot{Suite: "sim", GoMaxProcs: 4, CalibPerSec: 1e8,
		Scenarios: []Result{{Name: "a", Cycles: 10, WallNS: 5, CyclesPerSec: 2e9}}}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := s.Write(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Suite != s.Suite || got.CalibPerSec != s.CalibPerSec ||
		len(got.Scenarios) != 1 || got.Scenarios[0] != s.Scenarios[0] {
		t.Fatalf("round trip changed the snapshot:\nwrote %+v\nread  %+v", s, got)
	}
	if _, err := Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("Load of a missing file must error")
	}
}

func TestCheckRegressionGate(t *testing.T) {
	committed := &Snapshot{Suite: "sim", Scenarios: []Result{
		{Name: "a", CyclesPerSec: 100},
		{Name: "b", CyclesPerSec: 100},
		{Name: "retired", CyclesPerSec: 100},
	}}
	current := &Snapshot{Scenarios: []Result{
		{Name: "a", CyclesPerSec: 86},    // within 15% tolerance
		{Name: "b", CyclesPerSec: 84},    // regressed
		{Name: "added", CyclesPerSec: 1}, // not yet committed: ignored
	}}
	errs := Check(current, committed)
	if len(errs) != 1 {
		t.Fatalf("Check returned %d errors (%v), want exactly 1", len(errs), errs)
	}
	if !strings.Contains(errs[0].Error(), "b regressed") {
		t.Fatalf("wrong scenario flagged: %v", errs[0])
	}
}

// The calibration ratio must cancel machine speed: a run on a host half as
// fast as the snapshot's — both suite and calibration throughput halved —
// passes, while a genuine simulator regression on the same slow host fails.
func TestCheckCalibrationNormalization(t *testing.T) {
	committed := &Snapshot{Suite: "sim", CalibPerSec: 2e8,
		Scenarios: []Result{{Name: "a", CyclesPerSec: 100}}}
	slowHostSameSim := &Snapshot{CalibPerSec: 1e8,
		Scenarios: []Result{{Name: "a", CyclesPerSec: 50}}}
	if errs := Check(slowHostSameSim, committed); len(errs) != 0 {
		t.Fatalf("half-speed host with unchanged simulator flagged: %v", errs)
	}
	slowHostSlowSim := &Snapshot{CalibPerSec: 1e8,
		Scenarios: []Result{{Name: "a", CyclesPerSec: 40}}}
	if errs := Check(slowHostSlowSim, committed); len(errs) != 1 {
		t.Fatalf("real regression hidden by calibration: %v", errs)
	}
	// Snapshots without calibration (pre-normalization files) compare raw.
	uncalibrated := &Snapshot{Suite: "sim", Scenarios: []Result{{Name: "a", CyclesPerSec: 100}}}
	if errs := Check(slowHostSameSim, uncalibrated); len(errs) != 1 {
		t.Fatalf("uncalibrated committed snapshot must compare raw throughput: %v", errs)
	}
}

func TestCalibrateCachedAndPositive(t *testing.T) {
	a := Calibrate()
	if a <= 0 {
		t.Fatalf("calibration %g, want > 0", a)
	}
	if b := Calibrate(); b != a {
		t.Fatalf("calibration not cached: %g then %g", a, b)
	}
}

func TestFormat(t *testing.T) {
	s := &Snapshot{GeomeanCyclesPerSec: 5e9, GeomeanSpeedupX: 2.5,
		Scenarios: []Result{{Name: "a", Cycles: 1000, WallNS: 2000, CyclesPerSec: 5e8, SpeedupX: 2.5}}}
	out := s.Format()
	for _, want := range []string{"a", "geomean cycles/sec: 5e+09", "geomean speedup: 2.50x", "2.50x"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Format output missing %q:\n%s", want, out)
		}
	}
}
