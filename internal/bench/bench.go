// Package bench defines the committed performance-benchmark suite behind
// `v10bench -perf` and the BENCH_sim.json / BENCH_fleet.json regression
// trajectory. The scenarios are fixed — same models, seeds, and options every
// run — so cycles-simulated-per-second is comparable across commits, and the
// CI gate fails any change that regresses a committed snapshot by more than
// Tolerance.
package bench

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"v10/internal/fleet"
	"v10/internal/models"
	"v10/internal/npu"
	"v10/internal/sched"
	"v10/internal/trace"
)

// Tolerance is the allowed fractional throughput regression versus a
// committed snapshot before Check fails (the CI gate).
const Tolerance = 0.15

// Result is one scenario's measured throughput.
type Result struct {
	Name   string `json:"name"`
	Cycles int64  `json:"cycles_simulated"`
	WallNS int64  `json:"wall_ns"`
	// CyclesPerSec is the headline metric: simulated cycles per wall second.
	CyclesPerSec float64 `json:"cycles_per_sec"`
	// RequestsPerSec is completed requests per wall second (fleet suite).
	RequestsPerSec float64 `json:"requests_per_sec,omitempty"`
	// BaselineCyclesPerSec is the pre-overhaul throughput recorded when the
	// scenario was introduced; SpeedupX = CyclesPerSec / baseline. Carried
	// forward verbatim in snapshots so the trajectory stays visible.
	BaselineCyclesPerSec float64 `json:"baseline_cycles_per_sec,omitempty"`
	SpeedupX             float64 `json:"speedup_x,omitempty"`
}

// Snapshot is a committed BENCH_*.json file.
type Snapshot struct {
	Suite               string   `json:"suite"`
	GoMaxProcs          int      `json:"gomaxprocs"`
	Scenarios           []Result `json:"scenarios"`
	GeomeanCyclesPerSec float64  `json:"geomean_cycles_per_sec"`
	GeomeanSpeedupX     float64  `json:"geomean_speedup_x,omitempty"`
	// CalibPerSec is the host's throughput on a fixed CPU-bound calibration
	// loop, measured alongside the suite. Check uses the committed-vs-current
	// calibration ratio to normalize absolute throughputs, so the regression
	// gate compares simulator efficiency rather than machine speed and stays
	// meaningful on CI runners unlike the box that wrote the snapshot.
	CalibPerSec float64 `json:"calib_per_sec,omitempty"`
}

// scenario is one fixed benchmark case: Run simulates it once and reports the
// work done.
type scenario struct {
	name string
	run  func() (cycles int64, requests int, err error)
}

func workload(tb string, batch int, seed uint64, cfg npu.CoreConfig) *trace.Workload {
	s, ok := models.ByName(tb)
	if !ok {
		panic("bench: unknown model " + tb)
	}
	return s.Workload(batch, seed, cfg)
}

func pair(cfg npu.CoreConfig) []*trace.Workload {
	return []*trace.Workload{
		workload("BERT", 32, 1, cfg),
		workload("DLRM", 32, 2, cfg),
	}
}

func simRun(ws []*trace.Workload, opts sched.Options) (int64, int, error) {
	res, err := sched.Run(ws, opts)
	if err != nil {
		return 0, 0, err
	}
	reqs := 0
	for _, w := range res.Workloads {
		reqs += w.Requests
	}
	return res.TotalCycles, reqs, nil
}

// simScenarios is the single-core scheduler suite. Each case stresses a
// different hot path: steady-state priority scheduling, round-robin, wide
// collocation, contention-free fluid progress, preemption churn, and
// open-loop idle gaps (where the fluid-skip fast-forward matters).
func simScenarios() []scenario {
	cfg := npu.DefaultConfig()
	return []scenario{
		{"pair-full", func() (int64, int, error) {
			opts := sched.FullOptions()
			opts.RequestsPerWorkload = 12
			return simRun(pair(cfg), opts)
		}},
		{"pair-base", func() (int64, int, error) {
			opts := sched.BaseOptions()
			opts.RequestsPerWorkload = 12
			return simRun(pair(cfg), opts)
		}},
		{"quad-full", func() (int64, int, error) {
			opts := sched.FullOptions()
			opts.RequestsPerWorkload = 6
			ws := []*trace.Workload{
				workload("BERT", 16, 1, cfg),
				workload("DLRM", 16, 2, cfg),
				workload("NCF", 16, 3, cfg),
				workload("Transformer", 16, 4, cfg),
			}
			return simRun(ws, opts)
		}},
		{"pair-nohbm", func() (int64, int, error) {
			opts := sched.FullOptions()
			opts.RequestsPerWorkload = 12
			opts.DisableFluidHBM = true
			return simRun(pair(cfg), opts)
		}},
		{"preempt-heavy", func() (int64, int, error) {
			opts := sched.FullOptions()
			opts.RequestsPerWorkload = 6
			opts.Config = cfg
			opts.Config.TimeSlice = 512
			return simRun(pair(opts.Config), opts)
		}},
		{"open-loop", func() (int64, int, error) {
			opts := sched.FullOptions()
			opts.RequestsPerWorkload = 8
			opts.ArrivalRateHz = 20
			return simRun(pair(cfg), opts)
		}},
	}
}

// fleetScenarios is the multi-core serving suite (requests/sec headline).
func fleetScenarios() []scenario {
	cfg := npu.DefaultConfig()
	names := []string{"BERT", "DLRM", "NCF", "Transformer", "ResNet", "RetinaNet", "MNIST", "EfficientNet"}
	tenantSet := func(n, batch int) []*trace.Workload {
		ws := make([]*trace.Workload, n)
		for i := 0; i < n; i++ {
			ws[i] = workload(names[i%len(names)], batch, uint64(i+1), cfg)
		}
		return ws
	}
	fleetRun := func(o fleet.Options, tenants []*trace.Workload) (int64, int, error) {
		res, err := fleet.Run(tenants, o)
		if err != nil {
			return 0, 0, err
		}
		// Sum per-core simulated cycles: that is the work the engine did.
		var cycles int64
		for _, cr := range res.Cores {
			if cr.Run != nil {
				cycles += cr.Run.TotalCycles
			}
		}
		return cycles, res.Completed, nil
	}
	return []scenario{
		{"fleet-8c16t", func() (int64, int, error) {
			o := fleet.Options{Cores: 8, Seed: 1, RateHz: 45, DurationCycles: 30e6}
			return fleetRun(o, tenantSet(16, 16))
		}},
		{"fleet-serial-4c8t", func() (int64, int, error) {
			o := fleet.Options{Cores: 4, Seed: 2, RateHz: 45, DurationCycles: 30e6, Parallel: 1}
			return fleetRun(o, tenantSet(8, 16))
		}},
	}
}

// runSuite measures every scenario reps times and keeps each one's best
// (highest-throughput) repetition, the standard way to suppress scheduler
// noise on shared CI machines.
func runSuite(scs []scenario, reps int) ([]Result, error) {
	if reps < 1 {
		reps = 1
	}
	out := make([]Result, 0, len(scs))
	for _, sc := range scs {
		best := Result{Name: sc.name}
		for r := 0; r < reps; r++ {
			start := time.Now()
			cycles, reqs, err := sc.run()
			wall := time.Since(start)
			if err != nil {
				return nil, fmt.Errorf("bench %s: %w", sc.name, err)
			}
			cps := float64(cycles) / wall.Seconds()
			if cps > best.CyclesPerSec {
				best.Cycles = cycles
				best.WallNS = wall.Nanoseconds()
				best.CyclesPerSec = cps
				best.RequestsPerSec = float64(reqs) / wall.Seconds()
			}
		}
		out = append(out, best)
	}
	return out, nil
}

// RunSim runs the single-core suite.
func RunSim(reps int) (*Snapshot, error) {
	rs, err := runSuite(simScenarios(), reps)
	if err != nil {
		return nil, err
	}
	return newSnapshot("sim", rs), nil
}

// RunFleet runs the multi-core serving suite.
func RunFleet(reps int) (*Snapshot, error) {
	rs, err := runSuite(fleetScenarios(), reps)
	if err != nil {
		return nil, err
	}
	return newSnapshot("fleet", rs), nil
}

func newSnapshot(suite string, rs []Result) *Snapshot {
	return &Snapshot{
		Suite:               suite,
		GoMaxProcs:          runtime.GOMAXPROCS(0),
		Scenarios:           rs,
		GeomeanCyclesPerSec: geomean(rs, func(r Result) float64 { return r.CyclesPerSec }),
		CalibPerSec:         Calibrate(),
	}
}

// calibIters is sized so one calibration pass takes a few milliseconds on a
// current core — long enough to measure, short enough to repeat.
const calibIters = 2_000_000

// calibMemWords sizes the calibration walk's buffer (16 MB of int64) well past
// L2 so the pass is bound by the cache/memory subsystem, like the simulator's
// own event-heap and graph-buffer traffic. A compute-only reference stays fast
// when a noisy neighbor saturates shared cache or memory bandwidth — observed
// as the suite dropping ~45% while a pure ALU loop lost 5% — and would let the
// gate flag phantom regressions; the memory-bound pass dips with the suite.
const calibMemWords = 2 << 20

var calibOnce struct {
	done bool
	val  float64
}

// Calibrate measures the host's throughput (iterations/sec, best of 5) on a
// fixed reference load: integer hashing mixed with the transcendental float
// math that dominates the simulator's compute profile, plus a dependent
// pseudo-random walk over a buffer far larger than cache to expose memory
// pressure. This gives Check a machine-speed reference that slows the way the
// suite does — both across hosts and across contention phases on one host.
// The result is cached for the process lifetime.
func Calibrate() float64 {
	if calibOnce.done {
		return calibOnce.val
	}
	mem := make([]int64, calibMemWords)
	best := 0.0
	for rep := 0; rep < 5; rep++ {
		start := time.Now()
		x := uint64(0x9e3779b97f4a7c15)
		f := 1.0
		for i := 0; i < calibIters; i++ {
			x ^= x >> 27
			x *= 0x2545f4914f6cdd1d
			if i&7 == 0 {
				f += math.Sqrt(math.Log(2 + f*1e-9))
			}
		}
		// Dependent walk: each index derives from the loaded value, so the
		// loads serialize and run at memory latency, not issue width.
		idx := uint64(0)
		for i := 0; i < calibIters; i++ {
			v := mem[idx&(calibMemWords-1)]
			mem[idx&(calibMemWords-1)] = v + 1
			idx = uint64(v)*0x9e3779b97f4a7c15 + idx + 0x2545f4914f6cdd1d
		}
		wall := time.Since(start).Seconds()
		// Consume the results so the loops cannot be optimized away.
		if x == 0 || f < 0 || idx == 1 {
			panic("bench: calibration underflow")
		}
		if v := calibIters / wall; v > best {
			best = v
		}
	}
	calibOnce.done = true
	calibOnce.val = best
	return best
}

func geomean(rs []Result, f func(Result) float64) float64 {
	if len(rs) == 0 {
		return 0
	}
	sum := 0.0
	n := 0
	for _, r := range rs {
		v := f(r)
		if v <= 0 {
			continue
		}
		sum += math.Log(v)
		n++
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}

// AttachBaseline copies the per-scenario baseline throughputs from a prior
// snapshot (by name) into s and recomputes the speedups. Used when writing a
// new snapshot so the pre-overhaul numbers stay committed alongside.
func (s *Snapshot) AttachBaseline(base *Snapshot) {
	if base == nil {
		return
	}
	byName := make(map[string]Result, len(base.Scenarios))
	for _, r := range base.Scenarios {
		byName[r.Name] = r
	}
	for i := range s.Scenarios {
		b, ok := byName[s.Scenarios[i].Name]
		if !ok {
			continue
		}
		// The prior snapshot's own baseline, if any, wins: the trajectory is
		// always measured against the original pre-overhaul numbers.
		bl := b.CyclesPerSec
		if b.BaselineCyclesPerSec > 0 {
			bl = b.BaselineCyclesPerSec
		}
		s.Scenarios[i].BaselineCyclesPerSec = bl
		if bl > 0 {
			s.Scenarios[i].SpeedupX = s.Scenarios[i].CyclesPerSec / bl
		}
	}
	s.GeomeanSpeedupX = geomean(s.Scenarios, func(r Result) float64 { return r.SpeedupX })
}

// Load reads a committed snapshot file.
func Load(path string) (*Snapshot, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(raw, &s); err != nil {
		return nil, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return &s, nil
}

// Write serializes the snapshot to path.
func (s *Snapshot) Write(path string) error {
	raw, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Check compares a fresh run against a committed snapshot and returns one
// error per scenario whose throughput regressed by more than Tolerance.
// Scenarios present in only one of the two are reported, not failed: adding a
// scenario must not break the gate before its snapshot lands.
//
// When both snapshots carry a calibration measurement, the current throughputs
// are first scaled by committed/current calibration so the floor compares
// simulator efficiency, not raw machine speed: a CI runner half as fast as the
// snapshot's host also calibrates at half speed and the ratio cancels.
func Check(current, committed *Snapshot) []error {
	var errs []error
	scale := 1.0
	if committed.CalibPerSec > 0 && current.CalibPerSec > 0 {
		scale = committed.CalibPerSec / current.CalibPerSec
	}
	cur := make(map[string]Result, len(current.Scenarios))
	for _, r := range current.Scenarios {
		cur[r.Name] = r
	}
	for _, want := range committed.Scenarios {
		got, ok := cur[want.Name]
		if !ok {
			continue
		}
		floor := want.CyclesPerSec * (1 - Tolerance)
		if got.CyclesPerSec*scale < floor {
			errs = append(errs, fmt.Errorf(
				"bench %s: %s regressed: %.3g cycles/sec (×%.2f calib) < %.3g (committed %.3g, tolerance %.0f%%)",
				committed.Suite, want.Name, got.CyclesPerSec, scale, floor, want.CyclesPerSec, Tolerance*100))
		}
	}
	return errs
}

// Format renders a snapshot as an aligned text table for the CLI.
func (s *Snapshot) Format() string {
	out := fmt.Sprintf("%-18s %14s %12s %14s %9s\n", "scenario", "cycles", "wall", "cycles/sec", "speedup")
	for _, r := range s.Scenarios {
		sp := ""
		if r.SpeedupX > 0 {
			sp = fmt.Sprintf("%8.2fx", r.SpeedupX)
		}
		out += fmt.Sprintf("%-18s %14d %12s %14.4g %9s\n",
			r.Name, r.Cycles, time.Duration(r.WallNS).Round(time.Microsecond), r.CyclesPerSec, sp)
	}
	out += fmt.Sprintf("geomean cycles/sec: %.4g", s.GeomeanCyclesPerSec)
	if s.GeomeanSpeedupX > 0 {
		out += fmt.Sprintf("   geomean speedup: %.2fx", s.GeomeanSpeedupX)
	}
	return out + "\n"
}
