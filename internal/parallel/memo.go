package parallel

import "sync"

// Memo is a goroutine-safe memo cache with per-key in-flight deduplication
// (singleflight): when several goroutines ask for the same key concurrently,
// exactly one runs the compute function while the rest block until its
// result lands, then share it. Both values and errors are cached — callers
// memoize deterministic computations, so retrying a failed key would fail
// identically.
//
// The zero value is ready to use. A Memo must not be copied after first use.
type Memo[K comparable, V any] struct {
	mu sync.Mutex
	m  map[K]*memoCall[V]
}

type memoCall[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// Do returns the cached result for key, computing it with fn on first use.
// Concurrent calls for the same key wait on the single in-flight computation
// instead of racing to run it twice. fn runs without any lock held, so it
// may itself call Do on other keys of other memos (but a recursive Do on the
// same key of the same memo deadlocks).
func (m *Memo[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	m.mu.Lock()
	if m.m == nil {
		m.m = make(map[K]*memoCall[V])
	}
	if c, ok := m.m[key]; ok {
		m.mu.Unlock()
		<-c.done
		return c.val, c.err
	}
	c := &memoCall[V]{done: make(chan struct{})}
	m.m[key] = c
	m.mu.Unlock()

	c.val, c.err = fn()
	close(c.done)
	return c.val, c.err
}

// Len returns the number of cached (or in-flight) keys.
func (m *Memo[K, V]) Len() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.m)
}
