// Package parallel provides the bounded fan-out machinery used to spread
// independent simulations across CPU cores: a worker pool with deterministic
// result ordering (ForEach/Map) and a singleflight-style memo cache (Memo)
// that deduplicates concurrent requests for the same key.
//
// The concurrency model mirrors the simulator's constraints: each
// discrete-event sim.Engine is confined to a single goroutine, so parallelism
// lives strictly *across* independent simulations. Because every simulation
// is deterministic in its inputs and results are aggregated in input-index
// order, a parallel sweep is bit-identical to its serial counterpart.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: n itself when positive,
// otherwise GOMAXPROCS. Pass 1 to force the serial path.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines. Indexes are dispatched in increasing order; after the first
// failure (or context cancellation) no new indexes are dispatched, already
// running calls finish, and the error with the smallest index among the
// calls that ran is returned — so the reported error is deterministic for a
// deterministic fn. With workers == 1 it degenerates to a plain serial loop.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	var (
		next     atomic.Int64
		stop     atomic.Bool
		mu       sync.Mutex
		firstIdx = n
		firstErr error
		wg       sync.WaitGroup
	)
	next.Store(-1)
	record := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		stop.Store(true)
	}
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				if stop.Load() || ctx.Err() != nil {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					record(i, err)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// Map runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines and returns the results ordered by input index, regardless of
// completion order. On error the results are discarded and the
// smallest-index error is returned (see ForEach).
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// MapAll runs fn(i) for every i in [0, n) on at most Workers(workers)
// goroutines and returns every result alongside its per-index error: unlike
// Map, one failing index does not abort the rest. Sweeps where a single bad
// input (an infeasible candidate, a degenerate scenario) must not discard the
// whole batch use this; results and errors are both ordered by input index,
// so the output is bit-identical at any worker count.
func MapAll[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, []error) {
	out := make([]T, n)
	errs := make([]error, n)
	// ForEach's fn never errors here, so it cannot abort; context
	// cancellation still stops dispatching new indexes, leaving the
	// undispatched tail with the context error.
	done := make([]bool, n)
	_ = ForEach(ctx, n, workers, func(i int) error {
		out[i], errs[i] = fn(i)
		done[i] = true
		return nil
	})
	if err := ctx.Err(); err != nil {
		for i := range errs {
			if !done[i] && errs[i] == nil {
				errs[i] = err
			}
		}
	}
	return out, errs
}
