package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("explicit count not honored")
	}
	if Workers(0) < 1 || Workers(-1) < 1 {
		t.Fatal("default worker count must be positive")
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		got, err := Map(context.Background(), 100, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 100 {
			t.Fatalf("len = %d", len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachEmptyAndSerial(t *testing.T) {
	if err := ForEach(context.Background(), 0, 4, func(int) error {
		t.Fatal("fn called for n=0")
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	var order []int
	if err := ForEach(context.Background(), 5, 1, func(i int) error {
		order = append(order, i)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("serial order = %v", order)
		}
	}
}

func TestForEachBoundedConcurrency(t *testing.T) {
	const workers = 3
	var cur, peak atomic.Int64
	err := ForEach(context.Background(), 64, workers, func(int) error {
		n := cur.Add(1)
		for {
			p := peak.Load()
			if n <= p || peak.CompareAndSwap(p, n) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		cur.Add(-1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if p := peak.Load(); p > workers {
		t.Fatalf("observed %d concurrent calls, want <= %d", p, workers)
	}
}

func TestForEachFirstErrorWins(t *testing.T) {
	// Indexes 7 and 23 fail; the smaller index must be reported.
	fail := func(i int) error {
		if i == 7 || i == 23 {
			return fmt.Errorf("boom %d", i)
		}
		return nil
	}
	for _, workers := range []int{1, 4} {
		err := ForEach(context.Background(), 64, workers, fail)
		if err == nil || err.Error() != "boom 7" {
			t.Fatalf("workers=%d: err = %v, want boom 7", workers, err)
		}
	}
}

func TestForEachStopsDispatchAfterError(t *testing.T) {
	var ran atomic.Int64
	sentinel := errors.New("stop")
	err := ForEach(context.Background(), 10_000, 2, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return sentinel
		}
		time.Sleep(100 * time.Microsecond)
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
	if n := ran.Load(); n > 100 {
		t.Fatalf("ran %d tasks after early error", n)
	}
}

func TestForEachContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	done := make(chan error, 1)
	go func() {
		done <- ForEach(ctx, 1_000_000, 2, func(int) error {
			ran.Add(1)
			time.Sleep(200 * time.Microsecond)
			return nil
		})
	}()
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach did not return after cancellation")
	}
	if ran.Load() >= 1_000_000 {
		t.Fatal("cancellation did not stop dispatch")
	}
}

func TestMemoCachesAndDedups(t *testing.T) {
	var m Memo[string, int]
	var computed atomic.Int64
	const callers = 16
	var wg sync.WaitGroup
	results := make([]int, callers)
	wg.Add(callers)
	for g := 0; g < callers; g++ {
		go func(g int) {
			defer wg.Done()
			v, err := m.Do("k", func() (int, error) {
				computed.Add(1)
				time.Sleep(2 * time.Millisecond) // widen the race window
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[g] = v
		}(g)
	}
	wg.Wait()
	if n := computed.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1 (singleflight)", n)
	}
	for _, v := range results {
		if v != 42 {
			t.Fatalf("results = %v", results)
		}
	}
	if m.Len() != 1 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMemoCachesErrors(t *testing.T) {
	var m Memo[int, int]
	sentinel := errors.New("bad key")
	calls := 0
	for i := 0; i < 3; i++ {
		_, err := m.Do(9, func() (int, error) {
			calls++
			return 0, sentinel
		})
		if !errors.Is(err, sentinel) {
			t.Fatalf("err = %v", err)
		}
	}
	if calls != 1 {
		t.Fatalf("failing fn ran %d times, want 1 (errors are cached)", calls)
	}
}

func TestMemoDistinctKeys(t *testing.T) {
	var m Memo[int, int]
	for i := 0; i < 10; i++ {
		v, err := m.Do(i, func() (int, error) { return i * 2, nil })
		if err != nil || v != i*2 {
			t.Fatalf("Do(%d) = %d, %v", i, v, err)
		}
	}
	if m.Len() != 10 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMapAllKeepsGoingPastErrors(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		got, errs := MapAll(context.Background(), 20, workers, func(i int) (int, error) {
			if i%3 == 0 {
				return 0, fmt.Errorf("bad %d", i)
			}
			return i * 10, nil
		})
		if len(got) != 20 || len(errs) != 20 {
			t.Fatalf("workers=%d: len got=%d errs=%d", workers, len(got), len(errs))
		}
		for i := 0; i < 20; i++ {
			if i%3 == 0 {
				if errs[i] == nil || errs[i].Error() != fmt.Sprintf("bad %d", i) {
					t.Fatalf("workers=%d: errs[%d] = %v", workers, i, errs[i])
				}
			} else if errs[i] != nil || got[i] != i*10 {
				t.Fatalf("workers=%d: got[%d]=%d errs[%d]=%v", workers, i, got[i], i, errs[i])
			}
		}
	}
}

func TestMapAllCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, errs := MapAll(ctx, 5, 2, func(i int) (int, error) { return i, nil })
	undone := 0
	for _, err := range errs {
		if errors.Is(err, context.Canceled) {
			undone++
		}
	}
	if undone == 0 {
		t.Fatal("cancelled context should surface on undispatched indexes")
	}
}
