package npu

// WaterFill allocates bandwidth capacity to flows with the given demands
// using max-min fairness: every flow receives min(demand, fair share), and
// capacity left by under-demanding flows is redistributed to the rest.
// The returned slice has one allocation per demand. Demands must be
// non-negative; the sum of allocations never exceeds capacity, and no flow
// ever receives more than its demand.
//
// This is the fluid model the simulator uses for HBM: concurrently executing
// operators stream their traffic at their natural rate when bandwidth is
// plentiful and are throttled proportionally when the collocated workloads
// oversubscribe the interface (the §5.6 DLRM+RsNt effect).
func WaterFill(demands []float64, capacity float64) []float64 {
	alloc := make([]float64, len(demands))
	if capacity <= 0 {
		return alloc
	}
	remainingCap := capacity
	active := make([]int, 0, len(demands))
	for i, d := range demands {
		if d > 0 {
			active = append(active, i)
		}
	}
	for len(active) > 0 {
		share := remainingCap / float64(len(active))
		progressed := false
		next := active[:0]
		for _, i := range active {
			if demands[i]-alloc[i] <= share {
				// Flow fully satisfied at this level.
				remainingCap -= demands[i] - alloc[i]
				alloc[i] = demands[i]
				progressed = true
			} else {
				next = append(next, i)
			}
		}
		active = next
		if !progressed {
			// Every remaining flow wants more than the share: split evenly.
			for _, i := range active {
				alloc[i] += share
			}
			break
		}
		if remainingCap <= 0 {
			break
		}
	}
	return alloc
}
