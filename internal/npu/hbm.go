package npu

// WaterFill allocates bandwidth capacity to flows with the given demands
// using max-min fairness: every flow receives min(demand, fair share), and
// capacity left by under-demanding flows is redistributed to the rest.
// The returned slice has one allocation per demand. Demands must be
// non-negative; the sum of allocations never exceeds capacity, and no flow
// ever receives more than its demand.
//
// This is the fluid model the simulator uses for HBM: concurrently executing
// operators stream their traffic at their natural rate when bandwidth is
// plentiful and are throttled proportionally when the collocated workloads
// oversubscribe the interface (the §5.6 DLRM+RsNt effect).
func WaterFill(demands []float64, capacity float64) []float64 {
	alloc := make([]float64, len(demands))
	WaterFillInto(alloc, demands, capacity)
	return alloc
}

// WaterFillInto is WaterFill writing into a caller-provided slice (len(alloc)
// must equal len(demands)), so hot paths re-solve allocations without
// allocating. The arithmetic — rounds, per-round visit order, and the order
// capacity is reclaimed in — is identical to WaterFill, so the two produce
// bit-identical allocations.
func WaterFillInto(alloc, demands []float64, capacity float64) {
	for i := range alloc {
		alloc[i] = 0
	}
	if capacity <= 0 {
		return
	}
	remainingCap := capacity
	active := 0
	total := 0.0
	for _, d := range demands {
		if d > 0 {
			active++
			total += d
		}
	}
	// No contention: every flow ends with exactly its demand (the round loop
	// below provably converges there), so skip the rounds.
	if total <= capacity {
		for i, d := range demands {
			if d > 0 {
				alloc[i] = d
			}
		}
		return
	}
	// A flow leaves the active set exactly when alloc[i] == demands[i]: full
	// satisfaction assigns the demand verbatim, and the even-split fallback
	// below always leaves alloc strictly under demand before breaking.
	for active > 0 {
		share := remainingCap / float64(active)
		progressed := false
		for i, d := range demands {
			if d <= 0 || alloc[i] == d {
				continue
			}
			if d-alloc[i] <= share {
				// Flow fully satisfied at this level.
				remainingCap -= d - alloc[i]
				alloc[i] = d
				progressed = true
				active--
			}
		}
		if !progressed {
			// Every remaining flow wants more than the share: split evenly.
			for i, d := range demands {
				if d <= 0 || alloc[i] == d {
					continue
				}
				alloc[i] += share
			}
			break
		}
		if remainingCap <= 0 {
			break
		}
	}
}
