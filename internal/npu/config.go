// Package npu models the NPU hardware that V10 targets: a TPU-like core with
// a 128×128 systolic array (SA), an 8×128×2 vector unit (VU), software-managed
// vector memory, and off-chip HBM (paper Table 5). It also provides the
// hardware cost models the paper reports: the operator-preemption context
// switch (§3.3) and the tensor-operator-scheduler overhead (Table 3).
package npu

import "fmt"

// CoreConfig describes one NPU core. The zero value is not meaningful;
// start from DefaultConfig.
type CoreConfig struct {
	SADim         int     // systolic array dimension (SADim×SADim PEs)
	NumSA         int     // number of systolic arrays in the core
	NumVU         int     // number of vector units in the core
	VUSubunits    int     // SIMD subunits in the VU
	VULanes       int     // lanes per subunit
	VUOpsPerLane  int     // FP32 operations per lane per cycle
	FrequencyHz   float64 // core clock
	VMemBytes     int64   // on-chip vector memory capacity
	HBMBytes      int64   // off-chip HBM capacity
	HBMBandwidth  float64 // off-chip bandwidth in bytes/second
	TimeSlice     int64   // scheduler time slice in cycles (preemption timer)
	VURegFileBits int     // vector register file: registers × width per lane
}

// DefaultConfig returns the paper's Table 5 configuration: 128×128 SA,
// 8×128×2 FP32 ops/cycle VU, 700 MHz, 32 MB vector memory, 32 GB HBM at
// 330 GB/s, and a 32768-cycle (~46 µs) scheduler time slice.
func DefaultConfig() CoreConfig {
	return CoreConfig{
		SADim:         128,
		NumSA:         1,
		NumVU:         1,
		VUSubunits:    8,
		VULanes:       128,
		VUOpsPerLane:  2,
		FrequencyHz:   700e6,
		VMemBytes:     32 << 20,
		HBMBytes:      32 << 30,
		HBMBandwidth:  330e9,
		TimeSlice:     32768,
		VURegFileBits: 32 * 32,
	}
}

// Validate reports configuration errors.
func (c CoreConfig) Validate() error {
	switch {
	case c.SADim <= 0:
		return fmt.Errorf("npu: SADim must be positive, got %d", c.SADim)
	case c.NumSA <= 0 || c.NumVU <= 0:
		return fmt.Errorf("npu: need at least one SA and one VU, got %d/%d", c.NumSA, c.NumVU)
	case c.FrequencyHz <= 0:
		return fmt.Errorf("npu: non-positive frequency %v", c.FrequencyHz)
	case c.VMemBytes <= 0 || c.HBMBytes <= 0:
		return fmt.Errorf("npu: non-positive memory capacity")
	case c.HBMBandwidth <= 0:
		return fmt.Errorf("npu: non-positive HBM bandwidth")
	case c.TimeSlice <= 0:
		return fmt.Errorf("npu: non-positive time slice")
	}
	return nil
}

// CyclesPerMicrosecond converts wall time to cycles (700 at 700 MHz).
func (c CoreConfig) CyclesPerMicrosecond() float64 { return c.FrequencyHz / 1e6 }

// MicrosecondsFromCycles converts cycles to wall-clock microseconds.
func (c CoreConfig) MicrosecondsFromCycles(cycles int64) float64 {
	return float64(cycles) / c.CyclesPerMicrosecond()
}

// PeakSAFLOPsPerCycle is the per-SA peak: each PE does one multiply-accumulate
// (2 FLOPs) per cycle.
func (c CoreConfig) PeakSAFLOPsPerCycle() float64 {
	return 2 * float64(c.SADim) * float64(c.SADim)
}

// PeakVUFLOPsPerCycle is the per-VU peak (8×128×2 = 2048 for the default).
func (c CoreConfig) PeakVUFLOPsPerCycle() float64 {
	return float64(c.VUSubunits) * float64(c.VULanes) * float64(c.VUOpsPerLane)
}

// PeakFLOPS returns the core's aggregate peak in FLOP/s across all SAs and
// VUs (~23.4 TFLOP/s for the default config, matching the paper's roofline
// ceiling of ~24 TFLOP/s).
func (c CoreConfig) PeakFLOPS() float64 {
	perCycle := float64(c.NumSA)*c.PeakSAFLOPsPerCycle() + float64(c.NumVU)*c.PeakVUFLOPsPerCycle()
	return perCycle * c.FrequencyHz
}

// HBMBytesPerCycle is the off-chip bandwidth expressed per core cycle
// (~471 B/cycle for 330 GB/s at 700 MHz).
func (c CoreConfig) HBMBytesPerCycle() float64 { return c.HBMBandwidth / c.FrequencyHz }

// WithFUs returns c scaled to n SAs and n VUs with HBM bandwidth scaled
// proportionally, the paper's §5.9 scaling rule ("NPU hardware designers
// scale the HBM bandwidth with the increasing number of SAs/VUs").
func (c CoreConfig) WithFUs(n int) CoreConfig {
	if n <= 0 {
		panic("npu: WithFUs requires n >= 1")
	}
	scaled := c
	scaled.NumSA = n
	scaled.NumVU = n
	scaled.HBMBandwidth = c.HBMBandwidth * float64(n)
	scaled.VMemBytes = c.VMemBytes * int64(n)
	return scaled
}
