package npu

import (
	"math"
	"testing"
	"testing/quick"

	"v10/internal/mathx"
)

func TestDefaultConfigMatchesTable5(t *testing.T) {
	c := DefaultConfig()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if c.SADim != 128 || c.NumSA != 1 || c.NumVU != 1 {
		t.Fatal("SA/VU config wrong")
	}
	if c.FrequencyHz != 700e6 || c.VMemBytes != 32<<20 || c.HBMBytes != 32<<30 {
		t.Fatal("frequency/memory config wrong")
	}
	if c.HBMBandwidth != 330e9 || c.TimeSlice != 32768 {
		t.Fatal("bandwidth/time-slice config wrong")
	}
}

func TestPeakFLOPSNearPaperRoofline(t *testing.T) {
	c := DefaultConfig()
	// Paper Fig. 8: peak ≈ 24 TFLOP/s (SA dominates: 2·128·128·700M ≈ 22.9T).
	peak := c.PeakFLOPS()
	if peak < 22e12 || peak > 25e12 {
		t.Fatalf("peak FLOPS = %v, want ≈ 23-24 TFLOP/s", peak)
	}
	if c.PeakVUFLOPsPerCycle() != 2048 {
		t.Fatalf("VU peak/cycle = %v, want 2048", c.PeakVUFLOPsPerCycle())
	}
}

func TestCycleConversions(t *testing.T) {
	c := DefaultConfig()
	if c.CyclesPerMicrosecond() != 700 {
		t.Fatalf("cycles/µs = %v", c.CyclesPerMicrosecond())
	}
	if got := c.MicrosecondsFromCycles(32768); math.Abs(got-46.8) > 0.1 {
		t.Fatalf("time slice = %v µs, want ≈ 46.8", got)
	}
	if bpc := c.HBMBytesPerCycle(); math.Abs(bpc-471.4) > 1 {
		t.Fatalf("HBM bytes/cycle = %v, want ≈ 471", bpc)
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := []func(*CoreConfig){
		func(c *CoreConfig) { c.SADim = 0 },
		func(c *CoreConfig) { c.NumSA = 0 },
		func(c *CoreConfig) { c.NumVU = -1 },
		func(c *CoreConfig) { c.FrequencyHz = 0 },
		func(c *CoreConfig) { c.VMemBytes = 0 },
		func(c *CoreConfig) { c.HBMBytes = -5 },
		func(c *CoreConfig) { c.HBMBandwidth = 0 },
		func(c *CoreConfig) { c.TimeSlice = 0 },
	}
	for i, mutate := range bad {
		c := DefaultConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestWithFUsScalesBandwidth(t *testing.T) {
	c := DefaultConfig().WithFUs(4)
	if c.NumSA != 4 || c.NumVU != 4 {
		t.Fatal("FU count not scaled")
	}
	if c.HBMBandwidth != 4*330e9 {
		t.Fatal("bandwidth must scale with FUs (§5.9)")
	}
	if c.VMemBytes != 4*(32<<20) {
		t.Fatal("vmem must scale with FUs")
	}
}

func TestWithFUsPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("WithFUs(0) did not panic")
		}
	}()
	DefaultConfig().WithFUs(0)
}

func TestSAPreemptionCostsMatchPaper(t *testing.T) {
	c := DefaultConfig()
	if got := c.SAPreemptCycles(); got != 384 {
		t.Fatalf("SA preempt cycles = %d, want 384 (§3.3)", got)
	}
	if got := c.SAContextBytes(); got != 96<<10 {
		t.Fatalf("SA context = %d bytes, want 96 KB (§3.3)", got)
	}
	if got := c.SANaiveContextBytes(); got != 128<<10 {
		t.Fatalf("naive SA context = %d bytes, want 128 KB (§3.3)", got)
	}
	// The paper's claim: replay-based context is 25% smaller than naive.
	saving := 1 - float64(c.SAContextBytes())/float64(c.SANaiveContextBytes())
	if math.Abs(saving-0.25) > 1e-9 {
		t.Fatalf("context saving = %v, want 0.25", saving)
	}
}

func TestVUPreemptCyclesSmall(t *testing.T) {
	c := DefaultConfig()
	got := c.VUPreemptCycles()
	if got <= 0 || got > 128 {
		t.Fatalf("VU preempt cycles = %d, want small positive", got)
	}
	// VU preemption must be far cheaper than SA preemption.
	if got >= c.SAPreemptCycles() {
		t.Fatal("VU preemption should cost less than SA preemption")
	}
}

func TestPMTContextSwitchRange(t *testing.T) {
	c := DefaultConfig()
	lo := c.PMTContextSwitchCycles(0)
	hi := c.PMTContextSwitchCycles(1)
	if lo != 14000 || hi != 28000 {
		t.Fatalf("PMT ctx switch = [%d, %d] cycles, want [14000, 28000] (20–40 µs)", lo, hi)
	}
	if c.PMTContextSwitchCycles(-1) != lo || c.PMTContextSwitchCycles(2) != hi {
		t.Fatal("jitter clamping broken")
	}
	// PMT context switch dwarfs V10's operator preemption — the paper's point.
	if lo < 10*c.SAPreemptCycles() {
		t.Fatal("PMT switch should be an order of magnitude above SA preempt")
	}
}

func TestContextTableMatchesTable3(t *testing.T) {
	cases := []struct {
		fus, w int
		bytes  int64
	}{
		{2, 2, 43},
		{2, 4, 86},
		{4, 4, 86},
		{8, 8, 173},
	}
	for _, c := range cases {
		if got := ContextTableBytes(c.fus, c.w); got != c.bytes {
			t.Errorf("ContextTableBytes(%d, %d) = %d, want %d", c.fus, c.w, got, c.bytes)
		}
	}
}

func TestContextTableRowBits(t *testing.T) {
	// Fig 11: with 4 FUs each row is 22 bytes (172 bits rounded up).
	if bits := ContextTableRowBits(4); bits != 172 {
		t.Fatalf("row bits for 4 FUs = %d, want 172", bits)
	}
	if (ContextTableRowBits(4)+7)/8 != 22 {
		t.Fatal("4-FU row should round to 22 bytes")
	}
}

func TestSchedulerLatencyMatchesTable3(t *testing.T) {
	cases := []struct {
		fus, w int
		want   int64
	}{
		{2, 2, 22},
		{2, 4, 24},
		{4, 4, 82},
		{8, 8, 284},
	}
	for _, c := range cases {
		if got := SchedulerLatencyCycles(c.fus, c.w); got != c.want {
			t.Errorf("latency(%d FUs, %d workloads) = %d, want %d", c.fus, c.w, got, c.want)
		}
	}
}

func TestSchedulerLatencyExtrapolationMonotone(t *testing.T) {
	prev := int64(0)
	for _, fus := range []int{2, 4, 8, 16, 32} {
		got := SchedulerLatencyCycles(fus, 16)
		if got <= prev {
			t.Fatalf("latency not increasing in FUs: %d then %d", prev, got)
		}
		prev = got
	}
}

func TestOverheadTable3Rows(t *testing.T) {
	cases := []struct {
		sa, vu, w int
		bytes     int64
		lat       int64
		area      float64
		power     float64
	}{
		{1, 1, 2, 43, 22, 0.001, 0.303},
		{1, 1, 4, 86, 24, 0.002, 0.324},
		{2, 2, 4, 86, 82, 0.002, 0.325},
		{4, 4, 8, 173, 284, 0.003, 0.346},
	}
	for _, c := range cases {
		o := Overhead(c.sa, c.vu, c.w)
		if o.ContextBytes != c.bytes || o.LatencyCycles != c.lat {
			t.Errorf("Overhead(%d,%d,%d) bytes/lat = %d/%d, want %d/%d",
				c.sa, c.vu, c.w, o.ContextBytes, o.LatencyCycles, c.bytes, c.lat)
		}
		if math.Abs(o.AreaPercent-c.area) > 1e-9 {
			t.Errorf("Overhead(%d,%d,%d) area = %v, want %v", c.sa, c.vu, c.w, o.AreaPercent, c.area)
		}
		if math.Abs(o.PowerPercent-c.power) > 0.0011 {
			t.Errorf("Overhead(%d,%d,%d) power = %v, want %v", c.sa, c.vu, c.w, o.PowerPercent, c.power)
		}
	}
}

func TestWaterFillUnderSubscribed(t *testing.T) {
	alloc := WaterFill([]float64{10, 20}, 100)
	if alloc[0] != 10 || alloc[1] != 20 {
		t.Fatalf("under-subscribed flows should get full demand: %v", alloc)
	}
}

func TestWaterFillOverSubscribedEqual(t *testing.T) {
	alloc := WaterFill([]float64{100, 100}, 60)
	if alloc[0] != 30 || alloc[1] != 30 {
		t.Fatalf("equal oversubscription should split evenly: %v", alloc)
	}
}

func TestWaterFillMaxMin(t *testing.T) {
	// Small flow satisfied, leftovers to the big ones.
	alloc := WaterFill([]float64{10, 100, 100}, 90)
	if alloc[0] != 10 {
		t.Fatalf("small flow should be satisfied: %v", alloc)
	}
	if math.Abs(alloc[1]-40) > 1e-9 || math.Abs(alloc[2]-40) > 1e-9 {
		t.Fatalf("big flows should split the remainder: %v", alloc)
	}
}

func TestWaterFillZeroCapacityAndEmpty(t *testing.T) {
	alloc := WaterFill([]float64{5, 5}, 0)
	if alloc[0] != 0 || alloc[1] != 0 {
		t.Fatal("zero capacity must allocate nothing")
	}
	if len(WaterFill(nil, 100)) != 0 {
		t.Fatal("empty demands must return empty allocation")
	}
}

// Property: allocations never exceed demand, never exceed capacity in sum,
// and are work-conserving (if any flow is unsatisfied, capacity is used up).
func TestWaterFillProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := rng.Intn(10)
		demands := make([]float64, n)
		for i := range demands {
			demands[i] = rng.Uniform(0, 100)
		}
		capacity := rng.Uniform(0, 300)
		alloc := WaterFill(demands, capacity)
		total, unsatisfied := 0.0, false
		for i := range alloc {
			if alloc[i] < -1e-9 || alloc[i] > demands[i]+1e-9 {
				return false
			}
			total += alloc[i]
			if alloc[i] < demands[i]-1e-9 {
				unsatisfied = true
			}
		}
		if total > capacity+1e-6 {
			return false
		}
		if unsatisfied && total < capacity-1e-6 {
			return false // not work conserving
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
