package npu

import "math"

// Scheduler overhead model (paper Table 3 and Fig. 11).
//
// The workload context table stores one row per collocated workload:
//
//	Op ID (32b) | Op Type (1b) | Active (1b) | Ready (1b) | FU ID (⌈log2 F⌉b)
//	| Active Cycles (64b) | Total Cycles (64b) | Priority (7b)
//
// which is 170 bits plus the FU ID. The latency, area, and power numbers are
// an analytic model fitted to the paper's Cadence Virtuoso synthesis results
// (FreePDK-15nm, normalized to one Google TPUv3 core).

// SchedulerOverhead is one row of Table 3.
type SchedulerOverhead struct {
	NumSA, NumVU  int
	NumWorkloads  int
	ContextBytes  int64   // workload context table storage
	LatencyCycles int64   // scheduling decision latency
	AreaPercent   float64 // die area relative to a TPUv3 core
	PowerPercent  float64 // power relative to a TPUv3 core
}

// ContextTableRowBits returns the bits per context-table row for a core with
// the given total number of functional units.
func ContextTableRowBits(numFUs int) int {
	fuBits := 1
	for 1<<fuBits < numFUs {
		fuBits++
	}
	if numFUs <= 1 {
		fuBits = 1
	}
	return 32 + 1 + 1 + 1 + fuBits + 64 + 64 + 7
}

// ContextTableBytes returns the total context-table storage for the given
// number of FUs and collocated workloads (rounded up to whole bytes).
func ContextTableBytes(numFUs, numWorkloads int) int64 {
	bits := ContextTableRowBits(numFUs) * numWorkloads
	return int64((bits + 7) / 8)
}

// synthesizedLatency holds the latencies measured from the paper's Cadence
// Virtuoso synthesis (FreePDK-15nm) for the configurations it reports.
var synthesizedLatency = map[[2]int]int64{
	{2, 2}: 22,  // 1 SA + 1 VU, 2 workloads
	{2, 4}: 24,  // 1 SA + 1 VU, 4 workloads
	{4, 4}: 82,  // 2 SA + 2 VU, 4 workloads
	{8, 8}: 284, // 4 SA + 4 VU, 8 workloads
}

// SchedulerLatencyCycles models the decision latency of the priority-based
// scheduling policy: a pipelined divider streams active_rate_p for every
// workload, then a per-FU selection network (growing ~F^1.7 from comparator
// fan-in and wiring) picks the minimum. Configurations the paper synthesized
// return the measured values; others use the fitted model.
func SchedulerLatencyCycles(numFUs, numWorkloads int) int64 {
	if lat, ok := synthesizedLatency[[2]int{numFUs, numWorkloads}]; ok {
		return lat
	}
	w := float64(numWorkloads)
	f := float64(numFUs)
	lat := w + 7.93*math.Pow(f, 1.7)
	if lat < 1 {
		lat = 1
	}
	return int64(math.Round(lat))
}

// SchedulerAreaPercent models die area of the operator scheduler relative to
// a TPUv3 core. Storage dominates; wiring amortizes sublinearly.
func SchedulerAreaPercent(numFUs, numWorkloads int) float64 {
	base := float64(ContextTableBytes(2, 2)) // 43 B ↦ 0.001%
	bytes := float64(ContextTableBytes(numFUs, numWorkloads))
	return roundTo(0.001*math.Pow(bytes/base, 0.8), 3)
}

// SchedulerPowerPercent models scheduler power relative to a TPUv3 core:
// a fixed clocking floor plus terms growing with workloads and FUs.
func SchedulerPowerPercent(numFUs, numWorkloads int) float64 {
	w := math.Log2(float64(numWorkloads))
	f := math.Log2(math.Max(float64(numFUs)/2, 1))
	return roundTo(0.282+0.021*w+0.00075*f, 3)
}

// Overhead returns the full Table 3 row for a configuration.
func Overhead(numSA, numVU, numWorkloads int) SchedulerOverhead {
	fus := numSA + numVU
	return SchedulerOverhead{
		NumSA:         numSA,
		NumVU:         numVU,
		NumWorkloads:  numWorkloads,
		ContextBytes:  ContextTableBytes(fus, numWorkloads),
		LatencyCycles: SchedulerLatencyCycles(fus, numWorkloads),
		AreaPercent:   SchedulerAreaPercent(fus, numWorkloads),
		PowerPercent:  SchedulerPowerPercent(fus, numWorkloads),
	}
}

func roundTo(x float64, digits int) float64 {
	p := math.Pow(10, float64(digits))
	return math.Round(x*p) / p
}
