package npu

import (
	"testing"
	"testing/quick"

	"v10/internal/mathx"
)

func TestContextTableStorageMatchesTable3(t *testing.T) {
	cases := []struct {
		fus, rows int
		bytes     int64
	}{
		{2, 2, 43}, {2, 4, 86}, {4, 4, 86}, {8, 8, 173},
	}
	for _, c := range cases {
		tb, err := NewContextTable(c.fus, c.rows)
		if err != nil {
			t.Fatal(err)
		}
		if tb.StorageBytes() != c.bytes {
			t.Errorf("packed table (%d FUs, %d rows) = %d bytes, want %d",
				c.fus, c.rows, tb.StorageBytes(), c.bytes)
		}
		// The bit-accurate structure and the analytic formula must agree.
		if tb.StorageBytes() != ContextTableBytes(c.fus, c.rows) {
			t.Errorf("packed table disagrees with analytic model")
		}
	}
}

func TestContextTableRowWidth(t *testing.T) {
	tb, err := NewContextTable(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 11: with 4 FUs a row is 32+1+1+1+2+64+64+7 = 172 bits.
	if tb.RowBits() != 172 {
		t.Fatalf("row bits = %d, want 172", tb.RowBits())
	}
}

func TestContextTableGeometryErrors(t *testing.T) {
	if _, err := NewContextTable(0, 2); err == nil {
		t.Fatal("zero FUs accepted")
	}
	if _, err := NewContextTable(2, 0); err == nil {
		t.Fatal("zero rows accepted")
	}
}

func TestContextTableSetGetRoundTrip(t *testing.T) {
	tb, err := NewContextTable(4, 3)
	if err != nil {
		t.Fatal(err)
	}
	rows := []ContextRow{
		{OpID: 4, OpType: false, Active: true, Ready: true, FUID: 0, ActiveCycles: 12345, TotalCycles: 99999, Priority: 80},
		{OpID: 8, OpType: true, Active: true, Ready: false, FUID: 1, ActiveCycles: 777, TotalCycles: 888, Priority: 20},
		{OpID: 0xFFFFFFFF, OpType: true, Active: false, Ready: true, FUID: 3, ActiveCycles: 1<<63 + 5, TotalCycles: 1 << 62, Priority: 127},
	}
	for i, r := range rows {
		if err := tb.Set(i, r); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range rows {
		got, err := tb.Get(i)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("row %d round trip: got %+v want %+v", i, got, want)
		}
	}
}

func TestContextTableValidation(t *testing.T) {
	tb, _ := NewContextTable(2, 2)
	if err := tb.Set(5, ContextRow{}); err == nil {
		t.Fatal("out-of-range row accepted")
	}
	if err := tb.Set(0, ContextRow{FUID: 3}); err == nil {
		t.Fatal("FU id beyond table geometry accepted")
	}
	if err := tb.Set(0, ContextRow{Priority: 200}); err == nil {
		t.Fatal("8-bit priority accepted into 7-bit field")
	}
	if _, err := tb.Get(-1); err == nil {
		t.Fatal("negative row accepted")
	}
}

func TestPickNextAlgorithm1(t *testing.T) {
	tb, _ := NewContextTable(2, 4)
	// Row 0: SA, ready, low active rate → should win for SA.
	must(t, tb.Set(0, ContextRow{OpType: false, Ready: true, ActiveCycles: 10, TotalCycles: 100, Priority: 64}))
	// Row 1: SA, ready, higher active rate.
	must(t, tb.Set(1, ContextRow{OpType: false, Ready: true, ActiveCycles: 60, TotalCycles: 100, Priority: 64}))
	// Row 2: SA but already active (running).
	must(t, tb.Set(2, ContextRow{OpType: false, Ready: true, Active: true, ActiveCycles: 0, TotalCycles: 100, Priority: 64}))
	// Row 3: VU candidate.
	must(t, tb.Set(3, ContextRow{OpType: true, Ready: true, ActiveCycles: 5, TotalCycles: 100, Priority: 64}))

	if got := tb.PickNext(false); got != 0 {
		t.Fatalf("SA pick = %d, want 0", got)
	}
	if got := tb.PickNext(true); got != 3 {
		t.Fatalf("VU pick = %d, want 3", got)
	}
	// Raising row 1's priority enough makes its active_rate_p smaller.
	must(t, tb.Set(1, ContextRow{OpType: false, Ready: true, ActiveCycles: 60, TotalCycles: 100, Priority: 127}))
	must(t, tb.Set(0, ContextRow{OpType: false, Ready: true, ActiveCycles: 10, TotalCycles: 100, Priority: 16}))
	// arp(0) = 0.1/(16/127) ≈ 0.79; arp(1) = 0.6/1.0 = 0.6 → row 1 wins.
	if got := tb.PickNext(false); got != 1 {
		t.Fatalf("priority-weighted SA pick = %d, want 1", got)
	}
}

func TestPickNextNoCandidate(t *testing.T) {
	tb, _ := NewContextTable(2, 2)
	if tb.PickNext(false) != -1 {
		t.Fatal("empty table should return -1")
	}
	must(t, tb.Set(0, ContextRow{OpType: true, Ready: true, Priority: 64}))
	if tb.PickNext(false) != -1 {
		t.Fatal("no SA candidate should return -1")
	}
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

// Property: any valid row round-trips exactly through the packed encoding,
// and neighbouring rows are untouched.
func TestContextTableRoundTripProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		fus := 1 + rng.Intn(8)
		rows := 1 + rng.Intn(8)
		tb, err := NewContextTable(fus, rows)
		if err != nil {
			return false
		}
		want := make([]ContextRow, rows)
		for i := range want {
			want[i] = ContextRow{
				OpID:         uint32(rng.Uint64()),
				OpType:       rng.Float64() < 0.5,
				Active:       rng.Float64() < 0.5,
				Ready:        rng.Float64() < 0.5,
				FUID:         uint8(rng.Intn(fus)),
				ActiveCycles: rng.Uint64(),
				TotalCycles:  rng.Uint64(),
				Priority:     uint8(rng.Intn(128)),
			}
			if tb.Set(i, want[i]) != nil {
				return false
			}
		}
		// Overwrite one row and confirm only it changed.
		victim := rng.Intn(rows)
		want[victim].OpID++
		want[victim].Priority = uint8(rng.Intn(128))
		if tb.Set(victim, want[victim]) != nil {
			return false
		}
		for i := range want {
			got, err := tb.Get(i)
			if err != nil || got != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
