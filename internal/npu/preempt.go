package npu

// Operator preemption cost model (paper §3.3).
//
// Preempting a VU operator only needs the PC and vector register values
// saved to vector memory: the VU holds no intermediate state between
// instructions.
//
// Preempting an SA operator uses the paper's input-replay mechanism: the SA
// keeps draining until all partial sums that depend on already-pushed inputs
// have been popped (SADim cycles, fully overlapped with useful output), new
// inputs are checkpointed to vector memory as they are pushed, and the next
// operator's weights are loaded while the preempted operator's weights are
// saved. For a 128×128 SA the exposed context-switch cost is 384 cycles
// (3×SADim) and the saved context is 96 KB (inputs 128×256×2 B + weights
// 128×128×2 B), 25% less than draining 4-byte partial sums.

// SAPreemptCycles returns the exposed cycles one SA context switch costs:
// 3×SADim (drain + weight swap + input replay, partially overlapped).
func (c CoreConfig) SAPreemptCycles() int64 { return int64(3 * c.SADim) }

// SAContextBytes returns the vector-memory bytes one preempted SA operator
// occupies: 2-byte inputs for 2×SADim columns plus 2-byte weights
// (SADim×2·SADim×2 + SADim×SADim×2 = 96 KB at SADim=128).
func (c CoreConfig) SAContextBytes() int64 {
	d := int64(c.SADim)
	inputs := d * 2 * d * 2 // SADim rows × 2·SADim in-flight columns × 2 B
	weights := d * d * 2
	return inputs + weights
}

// SANaiveContextBytes returns what draining the array directly would cost:
// inputs and weights plus 4-byte float32 partial sums (128 KB at SADim=128).
// Kept for the §3.3 comparison and the ablation bench.
func (c CoreConfig) SANaiveContextBytes() int64 {
	d := int64(c.SADim)
	return 2*d*d*2 + d*d*4 // 2×SADim×SADim×2 B inputs+weights, SADim×SADim×4 B partial sums
}

// VUPreemptCycles returns the exposed cycles for a VU context switch: the
// PC and the vector register file are spilled/restored through the vector
// memory write ports.
func (c CoreConfig) VUPreemptCycles() int64 {
	// RegFileBits per lane × lanes across subunits, moved at the VU's
	// load/store width (VUSubunits×VULanes×32 bits per cycle), save + restore.
	regBits := int64(c.VURegFileBits) * int64(c.VULanes)
	portBits := int64(c.VUSubunits) * int64(c.VULanes) * 32
	if portBits == 0 {
		return 1
	}
	cycles := (regBits + portBits - 1) / portBits
	return 2 * (cycles + 1) // +1 for the PC, ×2 for save and restore
}

// PMTContextSwitch models the baseline preemptive multitasking (PREMA-style)
// context switch, which swaps the entire NPU-core state through HBM. The
// paper measures 20–40 µs; jitter selects within that range (0 ≤ jitter ≤ 1).
func (c CoreConfig) PMTContextSwitchCycles(jitter float64) int64 {
	if jitter < 0 {
		jitter = 0
	}
	if jitter > 1 {
		jitter = 1
	}
	lo := 20 * c.CyclesPerMicrosecond()
	hi := 40 * c.CyclesPerMicrosecond()
	return int64(lo + (hi-lo)*jitter)
}
