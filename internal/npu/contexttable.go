package npu

import (
	"errors"
	"fmt"
)

// Workload context table (paper Fig. 11): the hardware structure at the
// heart of V10's operator scheduler. Each row tracks the most recent
// operator of one collocated workload:
//
//	Op ID    | Op Type | Active | Ready | FU ID      | Active Cycles | Total Cycles | Priority
//	32 bits  | 1 bit   | 1 bit  | 1 bit | ⌈log2 F⌉ b | 64 bits       | 64 bits      | 7 bits
//
// This file implements the table bit-accurately: rows serialize to exactly
// the widths above, so the storage numbers in Table 3 (43/86/86/173 bytes)
// fall out of the encoding rather than a formula.

// ContextRow is one decoded row of the workload context table.
type ContextRow struct {
	OpID         uint32
	OpType       bool // false = SA, true = VU
	Active       bool
	Ready        bool
	FUID         uint8
	ActiveCycles uint64
	TotalCycles  uint64
	Priority     uint8 // 7 bits: 0..127
}

// ContextTable is a bit-packed workload context table for a core with a
// given number of functional units.
type ContextTable struct {
	numFUs  int
	fuBits  int
	rowBits int
	rows    int
	bits    []byte // packed storage, rowBits per row
}

// NewContextTable allocates a table with the given geometry.
func NewContextTable(numFUs, numWorkloads int) (*ContextTable, error) {
	if numFUs < 1 {
		return nil, errors.New("npu: context table needs at least one FU")
	}
	if numWorkloads < 1 {
		return nil, errors.New("npu: context table needs at least one workload row")
	}
	fuBits := 1
	for 1<<fuBits < numFUs {
		fuBits++
	}
	rowBits := 32 + 1 + 1 + 1 + fuBits + 64 + 64 + 7
	total := (rowBits*numWorkloads + 7) / 8
	return &ContextTable{
		numFUs:  numFUs,
		fuBits:  fuBits,
		rowBits: rowBits,
		rows:    numWorkloads,
		bits:    make([]byte, total),
	}, nil
}

// Rows returns the number of workload rows.
func (t *ContextTable) Rows() int { return t.rows }

// RowBits returns the exact bits per row.
func (t *ContextTable) RowBits() int { return t.rowBits }

// StorageBytes returns the total packed storage, which matches
// ContextTableBytes (Table 3).
func (t *ContextTable) StorageBytes() int64 { return int64(len(t.bits)) }

// setBits writes width bits of value at bit offset off.
func (t *ContextTable) setBits(off, width int, value uint64) {
	for i := 0; i < width; i++ {
		bit := (value >> uint(width-1-i)) & 1
		pos := off + i
		idx, sh := pos/8, uint(7-pos%8)
		if bit == 1 {
			t.bits[idx] |= 1 << sh
		} else {
			t.bits[idx] &^= 1 << sh
		}
	}
}

// getBits reads width bits at bit offset off.
func (t *ContextTable) getBits(off, width int) uint64 {
	var v uint64
	for i := 0; i < width; i++ {
		pos := off + i
		idx, sh := pos/8, uint(7-pos%8)
		v = v<<1 | uint64((t.bits[idx]>>sh)&1)
	}
	return v
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Set encodes a row into the packed storage.
func (t *ContextTable) Set(row int, r ContextRow) error {
	if row < 0 || row >= t.rows {
		return fmt.Errorf("npu: context row %d out of range", row)
	}
	if int(r.FUID) >= t.numFUs {
		return fmt.Errorf("npu: FU id %d out of range (%d FUs)", r.FUID, t.numFUs)
	}
	if r.Priority > 127 {
		return fmt.Errorf("npu: priority %d exceeds 7 bits", r.Priority)
	}
	off := row * t.rowBits
	t.setBits(off, 32, uint64(r.OpID))
	off += 32
	t.setBits(off, 1, b2u(r.OpType))
	off++
	t.setBits(off, 1, b2u(r.Active))
	off++
	t.setBits(off, 1, b2u(r.Ready))
	off++
	t.setBits(off, t.fuBits, uint64(r.FUID))
	off += t.fuBits
	t.setBits(off, 64, r.ActiveCycles)
	off += 64
	t.setBits(off, 64, r.TotalCycles)
	off += 64
	t.setBits(off, 7, uint64(r.Priority))
	return nil
}

// Get decodes a row from the packed storage.
func (t *ContextTable) Get(row int) (ContextRow, error) {
	if row < 0 || row >= t.rows {
		return ContextRow{}, fmt.Errorf("npu: context row %d out of range", row)
	}
	off := row * t.rowBits
	var r ContextRow
	r.OpID = uint32(t.getBits(off, 32))
	off += 32
	r.OpType = t.getBits(off, 1) == 1
	off++
	r.Active = t.getBits(off, 1) == 1
	off++
	r.Ready = t.getBits(off, 1) == 1
	off++
	r.FUID = uint8(t.getBits(off, t.fuBits))
	off += t.fuBits
	r.ActiveCycles = t.getBits(off, 64)
	off += 64
	r.TotalCycles = t.getBits(off, 64)
	off += 64
	r.Priority = uint8(t.getBits(off, 7))
	return r, nil
}

// PickNext is Algorithm 1 over the packed table: among rows that are Ready,
// not Active, and whose OpType matches fuType, return the index with the
// smallest active_rate_p = (ActiveCycles/TotalCycles)/priority. It returns
// -1 when no candidate exists. Priority 0 rows are skipped (uninitialized).
func (t *ContextTable) PickNext(fuType bool) int {
	best := -1
	var bestKey float64
	for i := 0; i < t.rows; i++ {
		r, _ := t.Get(i)
		if !r.Ready || r.Active || r.OpType != fuType || r.Priority == 0 {
			continue
		}
		key := 0.0
		if r.TotalCycles > 0 {
			key = float64(r.ActiveCycles) / float64(r.TotalCycles) / (float64(r.Priority) / 127)
		}
		if best == -1 || key < bestKey {
			best, bestKey = i, key
		}
	}
	return best
}
