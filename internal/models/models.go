// Package models is the workload zoo: calibrated synthetic operator-trace
// generators for the 11 MLPerf / TPU reference models the paper evaluates
// (Table 4). The paper collected instruction traces on real Cloud TPUs; we
// cannot, so each generator is calibrated to the paper's published
// statistics instead:
//
//   - mean SA/VU operator lengths (Table 1),
//   - single-tenant MXU/VPU temporal utilization (Figs. 4, 5),
//   - HBM bandwidth utilization (Fig. 7),
//   - overall FLOPS utilization and its batch-size trend (Figs. 3, 8),
//   - limited intra-request operator parallelism (Fig. 6, 6.7% mean ideal
//     speedup).
//
// V10's mechanisms only observe operator type, length, dependencies, and
// HBM/vmem footprints, so matching these statistics preserves the behaviour
// that the paper's experiments exercise (see DESIGN.md).
package models

import (
	"fmt"
	"math"
	"sort"

	"v10/internal/mathx"
	"v10/internal/npu"
	"v10/internal/trace"
)

// Spec is the calibration record for one model family. All reference values
// hold at RefBatch (the batch size Table 1 and Table 4 use).
type Spec struct {
	Name        string // full name, e.g. "ResNet-RS"
	Abbrev      string // paper abbreviation, e.g. "RNRS"
	Description string // Table 4 task description

	RefBatch  int     // batch the reference statistics are calibrated at
	MeanSAUS  float64 // Table 1: average SA operator length, µs
	MeanVUUS  float64 // Table 1: average VU operator length, µs
	UtilSA    float64 // Fig. 4: single-tenant MXU temporal utilization
	UtilVU    float64 // Fig. 5: single-tenant VPU temporal utilization
	UtilHBM   float64 // Fig. 7: single-tenant HBM bandwidth utilization
	RequestMS float64 // single-tenant request latency target, ms

	EffSA         float64 // SA FLOPs efficiency (vs peak) at RefBatch
	IntraEffSA    float64 // useful fraction of an SA op's FU occupancy
	IntraEffVU    float64 // useful fraction of a VU op's FU occupancy
	RowsPerSample float64 // systolic-array rows occupied per batch element
	BytesExp      float64 // HBM traffic ∝ (batch/ref)^BytesExp
	CV            float64 // lognormal coefficient of variation of op lengths
	BranchProb    float64 // probability a VU op is parallel to its predecessor

	ParamBytes        int64 // model weights resident in HBM
	ActBytesPerSample int64 // activation memory per batch element
	VMemPerOpRef      int64 // vector-memory footprint of an SA op at RefBatch
}

// Specs returns the 11 evaluated models (paper Table 4), in table order.
func Specs() []Spec {
	return []Spec{
		{
			Name: "BERT", Abbrev: "BERT", Description: "Natural Language Processing",
			RefBatch: 32, MeanSAUS: 877, MeanVUUS: 34.7,
			UtilSA: 0.52, UtilVU: 0.08, UtilHBM: 0.40, RequestMS: 40,
			EffSA: 0.35, IntraEffSA: 0.80, IntraEffVU: 0.85, RowsPerSample: 384, BytesExp: 0.70, CV: 0.25, BranchProb: 0.06,
			ParamBytes: 1300 << 20, ActBytesPerSample: 12 << 20, VMemPerOpRef: 6 << 20,
		},
		{
			Name: "DLRM", Abbrev: "DLRM", Description: "Recommendation",
			RefBatch: 32, MeanSAUS: 17, MeanVUUS: 4.43,
			UtilSA: 0.10, UtilVU: 0.40, UtilHBM: 0.55, RequestMS: 4,
			EffSA: 0.08, IntraEffSA: 0.35, IntraEffVU: 0.80, RowsPerSample: 1, BytesExp: 0.60, CV: 0.35, BranchProb: 0.10,
			ParamBytes: 2 << 30, ActBytesPerSample: 2 << 20, VMemPerOpRef: 1 << 20,
		},
		{
			Name: "EfficientNet", Abbrev: "ENet", Description: "Image Classification",
			RefBatch: 32, MeanSAUS: 105, MeanVUUS: 69,
			UtilSA: 0.35, UtilVU: 0.25, UtilHBM: 0.30, RequestMS: 10,
			EffSA: 0.30, IntraEffSA: 0.65, IntraEffVU: 0.80, RowsPerSample: 260, BytesExp: 0.70, CV: 0.30, BranchProb: 0.08,
			ParamBytes: 50 << 20, ActBytesPerSample: 18 << 20, VMemPerOpRef: 2 << 20,
		},
		{
			Name: "Mask-RCNN", Abbrev: "MRCN", Description: "Object Detection & Segmentation",
			RefBatch: 16, MeanSAUS: 138, MeanVUUS: 14.6,
			UtilSA: 0.30, UtilVU: 0.20, UtilHBM: 0.35, RequestMS: 20,
			EffSA: 0.28, IntraEffSA: 0.60, IntraEffVU: 0.80, RowsPerSample: 800, BytesExp: 0.75, CV: 0.40, BranchProb: 0.10,
			ParamBytes: 250 << 20, ActBytesPerSample: 1800 << 20, VMemPerOpRef: 5 << 20,
		},
		{
			Name: "MNIST", Abbrev: "MNST", Description: "Image Classification",
			RefBatch: 32, MeanSAUS: 180, MeanVUUS: 202,
			UtilSA: 0.25, UtilVU: 0.30, UtilHBM: 0.25, RequestMS: 3,
			EffSA: 0.15, IntraEffSA: 0.55, IntraEffVU: 0.75, RowsPerSample: 1, BytesExp: 0.60, CV: 0.30, BranchProb: 0.05,
			ParamBytes: 15 << 20, ActBytesPerSample: 512 << 10, VMemPerOpRef: 512 << 10,
		},
		{
			Name: "NCF", Abbrev: "NCF", Description: "Recommendation",
			RefBatch: 32, MeanSAUS: 430, MeanVUUS: 17.1,
			UtilSA: 0.25, UtilVU: 0.35, UtilHBM: 0.45, RequestMS: 8,
			EffSA: 0.12, IntraEffSA: 0.55, IntraEffVU: 0.85, RowsPerSample: 2, BytesExp: 0.60, CV: 0.35, BranchProb: 0.10,
			ParamBytes: 1 << 30, ActBytesPerSample: 1 << 20, VMemPerOpRef: 1 << 20,
		},
		{
			Name: "ResNet", Abbrev: "RsNt", Description: "Image Classification",
			RefBatch: 32, MeanSAUS: 154, MeanVUUS: 12.8,
			UtilSA: 0.50, UtilVU: 0.13, UtilHBM: 0.35, RequestMS: 10,
			EffSA: 0.40, IntraEffSA: 0.75, IntraEffVU: 0.80, RowsPerSample: 196, BytesExp: 0.70, CV: 0.30, BranchProb: 0.06,
			ParamBytes: 100 << 20, ActBytesPerSample: 25 << 20, VMemPerOpRef: 2 << 20,
		},
		{
			Name: "ResNet-RS", Abbrev: "RNRS", Description: "Image Classification",
			RefBatch: 32, MeanSAUS: 3200, MeanVUUS: 61.9,
			UtilSA: 0.55, UtilVU: 0.10, UtilHBM: 0.30, RequestMS: 35,
			EffSA: 0.45, IntraEffSA: 0.80, IntraEffVU: 0.85, RowsPerSample: 196, BytesExp: 0.70, CV: 0.30, BranchProb: 0.06,
			ParamBytes: 350 << 20, ActBytesPerSample: 40 << 20, VMemPerOpRef: 6 << 20,
		},
		{
			Name: "RetinaNet", Abbrev: "RtNt", Description: "Object Detection",
			RefBatch: 32, MeanSAUS: 157, MeanVUUS: 4.08,
			UtilSA: 0.45, UtilVU: 0.12, UtilHBM: 0.32, RequestMS: 12,
			EffSA: 0.35, IntraEffSA: 0.70, IntraEffVU: 0.80, RowsPerSample: 400, BytesExp: 0.70, CV: 0.35, BranchProb: 0.08,
			ParamBytes: 150 << 20, ActBytesPerSample: 60 << 20, VMemPerOpRef: 2 << 20,
		},
		{
			Name: "ShapeMask", Abbrev: "SMask", Description: "Object Detection & Segmentation",
			RefBatch: 8, MeanSAUS: 1910, MeanVUUS: 20.2,
			UtilSA: 0.20, UtilVU: 0.45, UtilHBM: 0.40, RequestMS: 40,
			EffSA: 0.25, IntraEffSA: 0.50, IntraEffVU: 0.90, RowsPerSample: 900, BytesExp: 0.75, CV: 0.40, BranchProb: 0.10,
			ParamBytes: 180 << 20, ActBytesPerSample: 3500 << 20, VMemPerOpRef: 5 << 20,
		},
		{
			Name: "Transformer", Abbrev: "TFMR", Description: "Natural Language Processing",
			RefBatch: 32, MeanSAUS: 6650, MeanVUUS: 55.4,
			UtilSA: 0.55, UtilVU: 0.08, UtilHBM: 0.35, RequestMS: 48,
			// Beam-search decoding: HBM traffic grows superlinearly in batch
			// (the paper's footnote 1), hence BytesExp > 1.
			EffSA: 0.40, IntraEffSA: 0.85, IntraEffVU: 0.85, RowsPerSample: 384, BytesExp: 1.15, CV: 0.30, BranchProb: 0.05,
			ParamBytes: 800 << 20, ActBytesPerSample: 30 << 20, VMemPerOpRef: 8 << 20,
		},
	}
}

// ByName returns the spec whose Name or Abbrev matches (case-sensitive).
func ByName(name string) (Spec, bool) {
	for _, s := range Specs() {
		if s.Name == name || s.Abbrev == name {
			return s, true
		}
	}
	return Spec{}, false
}

// Names returns the model names in Table 4 order.
func Names() []string {
	specs := Specs()
	out := make([]string, len(specs))
	for i, s := range specs {
		out[i] = s.Name
	}
	return out
}

// StandardBatches is the batch-size sweep from the characterization study.
var StandardBatches = []int{1, 8, 32, 64, 128, 256, 512, 1024, 2048}

// MemoryFootprint returns the HBM bytes the workload needs at the given
// batch size.
func (s Spec) MemoryFootprint(batch int) int64 {
	return s.ParamBytes + int64(batch)*s.ActBytesPerSample
}

// OOM reports whether the workload exceeds the given HBM region (the paper's
// "some workloads with large batch sizes fail due to insufficient memory").
func (s Spec) OOM(batch int, hbmRegionBytes int64) bool {
	return s.MemoryFootprint(batch) > hbmRegionBytes
}

// derived holds the generator parameters computed from a Spec at a batch.
type derived struct {
	numSA, numVU   int
	saLen, vuLen   float64 // mean compute cycles per op at this batch
	saStall        float64 // mean stall cycles before an SA op
	vuStall        float64
	saFLOPs        float64 // per SA op
	vuFLOPs        float64
	saBytes        float64 // per SA op
	vuBytes        float64
	saVMem, vuVMem int64
	burstProb      float64 // fraction of memory-heavy operators
	burstHigh      float64 // their HBM-demand multiplier
	burstLow       float64 // everyone else's multiplier (conserves total)

	// jitterMu/jitterSigma are the lognormal(mean=1, cv=CV) parameters,
	// precomputed once so the per-op jitter draw on the generator hot path
	// skips the Log/Sqrt parameter derivation. Bit-identical to
	// LogNormalMean(1, cv): Log(1) is exactly 0, so mu = -Log(1+cv²)/2.
	jitterMu, jitterSigma float64 // valid when CV > 0
}

const cyclesPerUS = 700.0

func rowTiles(batch int, rowsPerSample float64, saDim int) float64 {
	rows := float64(batch) * rowsPerSample
	return math.Ceil(rows / float64(saDim))
}

// derive computes the generator parameters for a batch size under the given
// core config.
func (s Spec) derive(batch int, cfg npu.CoreConfig) derived {
	ref := float64(s.RefBatch)
	bf := float64(batch) / ref // batch factor

	saLenRef := s.MeanSAUS * cyclesPerUS
	vuLenRef := s.MeanVUUS * cyclesPerUS
	tRef := s.RequestMS * 1000 * cyclesPerUS

	var d derived
	// Table 1 lengths are measured operator durations (FU occupancy). The
	// Fig. 4/5 utilization targets count useful cycles only, so occupancy
	// fractions are target/intra-op-efficiency.
	occupSA := math.Min(s.UtilSA/s.IntraEffSA, 0.95)
	occupVU := math.Min(s.UtilVU/s.IntraEffVU, 0.95)
	d.numSA = mathx.MaxInt(1, int(math.Round(occupSA*tRef/saLenRef)))
	d.numVU = mathx.MaxInt(1, int(math.Round(occupVU*tRef/vuLenRef)))

	// Operator lengths: SA ops scale with occupied row tiles (padding floor
	// for small batches), VU ops scale linearly with a pipeline floor.
	rowScale := rowTiles(batch, s.RowsPerSample, cfg.SADim) / rowTiles(s.RefBatch, s.RowsPerSample, cfg.SADim)
	d.saLen = saLenRef * rowScale
	d.vuLen = vuLenRef * math.Max(bf, 0.25)

	// FLOPs scale linearly with batch; lengths may not, so stretch the op
	// when FLOPs would exceed the intra-op efficiency ceiling.
	peakSA := cfg.PeakSAFLOPsPerCycle()
	d.saFLOPs = s.EffSA * peakSA * saLenRef * bf
	if minLen := d.saFLOPs / (s.IntraEffSA * peakSA); d.saLen < minLen {
		d.saLen = minLen
	}
	peakVU := cfg.PeakVUFLOPsPerCycle()
	d.vuFLOPs = 0.6 * peakVU * vuLenRef * bf
	if minLen := d.vuFLOPs / (s.IntraEffVU * peakVU); d.vuLen < minLen {
		d.vuLen = minLen
	}

	// Stalls absorb the request time the calibration targets leave neither
	// FU busy (DMA waits, infeed, host time). The fixed component dominates,
	// so utilization improves substantially with batch (Fig. 3/4 trend) —
	// which is also what makes large-batch same-FU pairs genuinely conflict
	// in the Table 2 study.
	stallTotalRef := tRef - float64(d.numSA)*saLenRef - float64(d.numVU)*vuLenRef
	if stallTotalRef < 0 {
		stallTotalRef = 0
	}
	stallScale := 0.90 + 0.10*bf
	perOpStall := stallTotalRef * stallScale / float64(d.numSA+d.numVU)
	d.saStall = perOpStall
	d.vuStall = perOpStall

	// HBM traffic: calibrated total at ref, scaled by BytesExp, distributed
	// over operators proportionally to compute cycles. Traffic is bursty
	// (weight loads, embedding gathers), so per-op demand is bimodal: a
	// memory-heavy minority of operators streams at burstHigh× the average
	// rate. A single tenant still fits under the interface; two tenants'
	// coincident bursts oversubscribe it — the paper's §5.6 DLRM+RsNt effect
	// and the dynamic contention its heuristic baseline cannot see.
	totalBytesRef := s.UtilHBM * tRef * cfg.HBMBytesPerCycle()
	totalBytes := totalBytesRef * math.Pow(math.Max(bf, 1e-6), s.BytesExp)
	computeTotal := float64(d.numSA)*d.saLen + float64(d.numVU)*d.vuLen
	if computeTotal > 0 {
		d.saBytes = totalBytes * d.saLen / computeTotal
		d.vuBytes = totalBytes * d.vuLen / computeTotal
	}
	d.burstHigh = math.Min(1.6, 0.95/math.Max(s.UtilHBM, 0.05))
	d.burstProb = 0.35
	d.burstLow = (1 - d.burstProb*d.burstHigh) / (1 - d.burstProb)
	if d.burstLow < 0 {
		d.burstLow = 0
	}

	d.saVMem = int64(float64(s.VMemPerOpRef) * math.Max(bf, 0.25))
	d.vuVMem = d.saVMem / 4

	if s.CV > 0 {
		sigma2 := math.Log(1 + s.CV*s.CV)
		d.jitterMu = -sigma2 / 2
		d.jitterSigma = math.Sqrt(sigma2)
	}
	return d
}

// jitterDraw samples the per-op lognormal jitter, matching
// rng.LogNormalMean(1, s.CV) draw for draw (cv <= 0 consumes no randomness).
func (d derived) jitterDraw(rng *mathx.RNG, cv float64) float64 {
	if cv <= 0 {
		return 1
	}
	return rng.LogNormal(d.jitterMu, d.jitterSigma)
}

// Workload builds the trace.Workload for this model at the given batch size.
// seed makes the per-request operator-length jitter deterministic; two
// workloads with different seeds see different (but statistically identical)
// request streams. The config provides hardware constants (SA dimension,
// peak rates). Workload does not check OOM; callers use OOM for that.
func (s Spec) Workload(batch int, seed uint64, cfg npu.CoreConfig) *trace.Workload {
	if batch < 1 {
		panic(fmt.Sprintf("models: invalid batch %d", batch))
	}
	d := s.derive(batch, cfg)
	spec := s
	name := fmt.Sprintf("%s-b%d", s.Abbrev, batch)
	genInto := func(request int, g *trace.Graph) *trace.Graph {
		return buildGraphInto(g, spec, d, seed, request)
	}
	return trace.NewWorkloadReusable(name, s.Name, batch, genInto)
}

// buildGraph emits the operator DAG for one request into a fresh graph.
func buildGraph(s Spec, d derived, seed uint64, request int) *trace.Graph {
	return buildGraphInto(nil, s, d, seed, request)
}

// buildGraphInto emits the operator DAG for one request: SA operators each
// followed by their share of VU operators, chained sequentially, with
// occasional parallel branches (BranchProb) that give the small Fig. 6
// critical-path slack. A non-nil g has its Ops and DepsBuf storage reused,
// making the per-request rebuild on the simulator's hot path allocation-free
// after the first request.
func buildGraphInto(g *trace.Graph, s Spec, d derived, seed uint64, request int) *trace.Graph {
	rng := mathx.NewRNG(seed ^ (uint64(request)+1)*0x9e3779b97f4a7c15)
	total := d.numSA + d.numVU
	if g == nil {
		g = &trace.Graph{}
	}
	if cap(g.Ops) < total {
		g.Ops = make([]trace.Op, 0, total)
	} else {
		g.Ops = g.Ops[:0]
	}
	// One backing array serves every op's single-entry Deps slice: a per-op
	// []int was the dominant allocation here.
	if cap(g.DepsBuf) < total {
		g.DepsBuf = make([]int, 0, total)
	} else {
		g.DepsBuf = g.DepsBuf[:0]
	}
	depsBuf := g.DepsBuf

	vuQuota := 0.0
	vuPerSA := float64(d.numVU) / float64(d.numSA)
	emitted := 0

	addOp := func(kind trace.Kind, compute, stall float64, flops, bytes float64, vmem int64) {
		jitter := d.jitterDraw(rng, s.CV)
		jitter = mathx.Clamp(jitter, 0.3, 3.0)
		eff := s.IntraEffSA
		if kind == trace.KindVU {
			eff = s.IntraEffVU
		}
		burst := d.burstLow
		if rng.Float64() < d.burstProb {
			burst = d.burstHigh
		}
		bytes *= burst
		// Emit in place: the slot is pre-sized (cap >= total), and writing
		// fields directly skips a full Op struct copy per operator.
		n := len(g.Ops)
		g.Ops = g.Ops[:n+1]
		op := &g.Ops[n]
		op.ID = n
		op.Kind = kind
		op.Compute = mathx.MaxInt64(1, int64(compute*jitter))
		op.Stall = int64(stall * mathx.Clamp(d.jitterDraw(rng, s.CV), 0.3, 3.0))
		op.Efficiency = eff
		op.FLOPs = flops * jitter
		op.HBMBytes = bytes * jitter
		op.VMemBytes = vmem
		op.Deps = nil
		if n > 0 {
			dep := n - 1
			// A branch op attaches one step earlier, making it parallel to
			// its predecessor.
			if kind == trace.KindVU && dep >= 1 && rng.Float64() < s.BranchProb {
				dep--
			}
			depsBuf = append(depsBuf, dep)
			op.Deps = depsBuf[len(depsBuf)-1:]
		}
	}

	for i := 0; i < d.numSA; i++ {
		addOp(trace.KindSA, d.saLen, d.saStall, d.saFLOPs, d.saBytes, d.saVMem)
		emitted++
		vuQuota += vuPerSA
		for vuQuota >= 1 {
			addOp(trace.KindVU, d.vuLen, d.vuStall, d.vuFLOPs, d.vuBytes, d.vuVMem)
			vuQuota--
		}
	}
	// Emit any VU remainder so counts match the calibration.
	for len(g.Ops) < total {
		addOp(trace.KindVU, d.vuLen, d.vuStall, d.vuFLOPs, d.vuBytes, d.vuVMem)
	}
	g.DepsBuf = depsBuf
	return g
}

// Table1Row is the measured average operator length for a model, mirroring
// the paper's Table 1.
type Table1Row struct {
	Model   string
	Batch   int
	AvgSAUS float64
	AvgVUUS float64
}

// Table1 measures average operator lengths from generated traces (averaged
// over n requests), which should track the calibrated Table 1 values.
func Table1(n int, cfg npu.CoreConfig) []Table1Row {
	rows := make([]Table1Row, 0, 11)
	for _, s := range Specs() {
		w := s.Workload(s.RefBatch, 1, cfg)
		var saSum, vuSum float64
		var saN, vuN int
		for r := 0; r < n; r++ {
			st := w.Request(r).ComputeStats()
			saSum += float64(st.SACycles)
			vuSum += float64(st.VUCycles)
			saN += st.NumSA
			vuN += st.NumVU
		}
		row := Table1Row{Model: s.Name, Batch: s.RefBatch}
		if saN > 0 {
			row.AvgSAUS = saSum / float64(saN) / cyclesPerUS
		}
		if vuN > 0 {
			row.AvgVUUS = vuSum / float64(vuN) / cyclesPerUS
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].Model < rows[j].Model })
	return rows
}
