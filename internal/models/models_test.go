package models

import (
	"math"
	"testing"
	"testing/quick"

	"v10/internal/npu"
	"v10/internal/trace"
)

var cfg = npu.DefaultConfig()

func TestSpecsMatchTable4(t *testing.T) {
	specs := Specs()
	if len(specs) != 11 {
		t.Fatalf("model count = %d, want 11", len(specs))
	}
	wantAbbrev := map[string]string{
		"BERT": "BERT", "DLRM": "DLRM", "EfficientNet": "ENet",
		"Mask-RCNN": "MRCN", "MNIST": "MNST", "NCF": "NCF",
		"ResNet": "RsNt", "ResNet-RS": "RNRS", "RetinaNet": "RtNt",
		"ShapeMask": "SMask", "Transformer": "TFMR",
	}
	for _, s := range specs {
		if wantAbbrev[s.Name] != s.Abbrev {
			t.Errorf("%s abbrev = %s, want %s", s.Name, s.Abbrev, wantAbbrev[s.Name])
		}
	}
	// Table 4 batch sizes: 32 except ShapeMask (8) and Mask-RCNN (16).
	for _, s := range specs {
		want := 32
		switch s.Name {
		case "ShapeMask":
			want = 8
		case "Mask-RCNN":
			want = 16
		}
		if s.RefBatch != want {
			t.Errorf("%s ref batch = %d, want %d", s.Name, s.RefBatch, want)
		}
	}
}

func TestByName(t *testing.T) {
	if s, ok := ByName("ResNet-RS"); !ok || s.Abbrev != "RNRS" {
		t.Fatal("ByName full name failed")
	}
	if s, ok := ByName("SMask"); !ok || s.Name != "ShapeMask" {
		t.Fatal("ByName abbrev failed")
	}
	if _, ok := ByName("NoSuchModel"); ok {
		t.Fatal("ByName accepted unknown model")
	}
}

func TestGeneratedGraphsValidate(t *testing.T) {
	for _, s := range Specs() {
		w := s.Workload(s.RefBatch, 7, cfg)
		for r := 0; r < 3; r++ {
			if err := w.Request(r).Validate(); err != nil {
				t.Fatalf("%s request %d invalid: %v", s.Name, r, err)
			}
		}
	}
}

func TestGeneratorDeterministic(t *testing.T) {
	s, _ := ByName("BERT")
	a := s.Workload(32, 42, cfg).Request(5)
	b := s.Workload(32, 42, cfg).Request(5)
	if len(a.Ops) != len(b.Ops) {
		t.Fatal("op counts differ")
	}
	for i := range a.Ops {
		if a.Ops[i].Compute != b.Ops[i].Compute || a.Ops[i].Stall != b.Ops[i].Stall {
			t.Fatalf("op %d differs between same-seed generations", i)
		}
	}
	c := s.Workload(32, 43, cfg).Request(5)
	same := true
	for i := range a.Ops {
		if a.Ops[i].Compute != c.Ops[i].Compute {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// Mean operator lengths must track Table 1 within jitter tolerance.
func TestTable1Calibration(t *testing.T) {
	rows := Table1(20, cfg)
	want := map[string][2]float64{
		"BERT": {877, 34.7}, "DLRM": {17, 4.43}, "EfficientNet": {105, 69},
		"Mask-RCNN": {138, 14.6}, "MNIST": {180, 202}, "NCF": {430, 17.1},
		"ResNet": {154, 12.8}, "ResNet-RS": {3200, 61.9}, "RetinaNet": {157, 4.08},
		"ShapeMask": {1910, 20.2}, "Transformer": {6650, 55.4},
	}
	for _, row := range rows {
		w, ok := want[row.Model]
		if !ok {
			t.Fatalf("unexpected model %s", row.Model)
		}
		if math.Abs(row.AvgSAUS-w[0])/w[0] > 0.25 {
			t.Errorf("%s avg SA len = %.1f µs, want ≈ %.1f", row.Model, row.AvgSAUS, w[0])
		}
		if math.Abs(row.AvgVUUS-w[1])/w[1] > 0.25 {
			t.Errorf("%s avg VU len = %.1f µs, want ≈ %.1f", row.Model, row.AvgVUUS, w[1])
		}
	}
}

// Single-tenant serial utilization (SA compute / serial time) must track the
// calibrated Fig. 4/5 targets.
func TestUtilizationCalibration(t *testing.T) {
	for _, s := range Specs() {
		w := s.Workload(s.RefBatch, 3, cfg)
		var sa, vu, serial float64
		for r := 0; r < 10; r++ {
			st := w.Request(r).ComputeStats()
			sa += st.UsefulSACycles
			vu += st.UsefulVUCycles
			serial += float64(st.SerialCycles)
		}
		utilSA := sa / serial
		utilVU := vu / serial
		if math.Abs(utilSA-s.UtilSA) > 0.08 {
			t.Errorf("%s serial SA util = %.3f, calibrated %.3f", s.Name, utilSA, s.UtilSA)
		}
		if math.Abs(utilVU-s.UtilVU) > 0.08 {
			t.Errorf("%s serial VU util = %.3f, calibrated %.3f", s.Name, utilVU, s.UtilVU)
		}
	}
}

// Ideal DAG speedup must be small (paper Fig. 6: 6.7% average).
func TestIdealSpeedupSmall(t *testing.T) {
	total, n := 0.0, 0
	for _, s := range Specs() {
		w := s.Workload(s.RefBatch, 9, cfg)
		for r := 0; r < 5; r++ {
			sp := w.Request(r).IdealSpeedup()
			if sp < 1 {
				t.Fatalf("%s speedup %v < 1", s.Name, sp)
			}
			if sp > 1.5 {
				t.Errorf("%s speedup %v too large for Fig 6 shape", s.Name, sp)
			}
			total += sp
			n++
		}
	}
	avg := total / float64(n)
	if avg < 1.0 || avg > 1.25 {
		t.Errorf("mean ideal speedup = %v, want ≈ 1.07 (within [1, 1.25])", avg)
	}
}

func TestBatchScalingMonotone(t *testing.T) {
	s, _ := ByName("BERT")
	prevSerial := int64(0)
	prevFLOPs := 0.0
	for _, b := range []int{1, 8, 32, 128, 512} {
		g := s.Workload(b, 5, cfg).Request(0)
		st := g.ComputeStats()
		if st.SerialCycles < prevSerial {
			t.Fatalf("serial time decreased at batch %d", b)
		}
		if st.FLOPs < prevFLOPs {
			t.Fatalf("FLOPs decreased at batch %d", b)
		}
		prevSerial, prevFLOPs = st.SerialCycles, st.FLOPs
	}
}

// FLOPS utilization (FLOPs / serial-time / peak) should rise with batch size
// and stay below 100% — the Fig. 3 shape.
func TestFLOPSUtilizationTrend(t *testing.T) {
	s, _ := ByName("ResNet")
	var utils []float64
	for _, b := range []int{1, 32, 512} {
		g := s.Workload(b, 5, cfg).Request(0)
		st := g.ComputeStats()
		util := st.FLOPs / (float64(st.SerialCycles) * cfg.PeakFLOPS() / cfg.FrequencyHz)
		if util <= 0 || util >= 1 {
			t.Fatalf("batch %d FLOPS util = %v out of (0,1)", b, util)
		}
		utils = append(utils, util)
	}
	if !(utils[0] < utils[1] && utils[1] <= utils[2]*1.05) {
		t.Errorf("FLOPS util not increasing with batch: %v", utils)
	}
}

// SA FLOPs efficiency can never exceed the physical peak.
func TestEfficiencyCapProperty(t *testing.T) {
	peakSA := cfg.PeakSAFLOPsPerCycle()
	peakVU := cfg.PeakVUFLOPsPerCycle()
	f := func(seed uint64, batchIdx uint8) bool {
		specs := Specs()
		s := specs[int(seed%uint64(len(specs)))]
		b := StandardBatches[int(batchIdx)%len(StandardBatches)]
		g := s.Workload(b, seed, cfg).Request(0)
		for _, op := range g.Ops {
			var peak float64
			if op.Kind == trace.KindSA {
				peak = peakSA
			} else {
				peak = peakVU
			}
			if op.FLOPs > float64(op.Compute)*peak*3.001 {
				// ×3 bound: jitter multiplies FLOPs and compute together, so
				// their ratio stays within the clamp range.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOOMLimits(t *testing.T) {
	mrcn, _ := ByName("Mask-RCNN")
	if mrcn.OOM(16, cfg.HBMBytes) {
		t.Fatal("Mask-RCNN must fit at its Table 4 batch (16)")
	}
	if !mrcn.OOM(32, cfg.HBMBytes) {
		t.Fatal("Mask-RCNN should OOM at batch 32 (paper runs it at 16)")
	}
	smask, _ := ByName("ShapeMask")
	if smask.OOM(8, cfg.HBMBytes) {
		t.Fatal("ShapeMask must fit at batch 8")
	}
	if !smask.OOM(16, cfg.HBMBytes) {
		t.Fatal("ShapeMask should OOM at batch 16")
	}
	bert, _ := ByName("BERT")
	if bert.OOM(2048, cfg.HBMBytes) {
		t.Fatal("BERT should fit at batch 2048")
	}
}

func TestWorkloadPanicsOnBadBatch(t *testing.T) {
	s, _ := ByName("BERT")
	defer func() {
		if recover() == nil {
			t.Fatal("batch 0 accepted")
		}
	}()
	s.Workload(0, 1, cfg)
}

func TestVUIntensiveVsSAIntensive(t *testing.T) {
	// The collocation premise: BERT is SA-heavy, DLRM is VU-heavy.
	bert, _ := ByName("BERT")
	dlrm, _ := ByName("DLRM")
	bs := bert.Workload(32, 1, cfg).Request(0).ComputeStats()
	ds := dlrm.Workload(32, 1, cfg).Request(0).ComputeStats()
	if bs.SACycles <= bs.VUCycles {
		t.Error("BERT should be SA-dominated")
	}
	if ds.VUCycles <= ds.SACycles {
		t.Error("DLRM should be VU-dominated")
	}
}

func TestNamesOrder(t *testing.T) {
	names := Names()
	if len(names) != 11 || names[0] != "BERT" || names[10] != "Transformer" {
		t.Fatalf("Names() = %v", names)
	}
}
