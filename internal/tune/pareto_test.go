package tune

import (
	"testing"
)

func obj(g, p, f float64) Objectives { return Objectives{Goodput: g, P99: p, Fairness: f} }

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b Objectives
		want bool
	}{
		{obj(1.1, 0.9, 0.8), obj(1.0, 1.0, 0.8), true},   // better on two, tied on one
		{obj(1.0, 1.0, 0.8), obj(1.0, 1.0, 0.8), false},  // identical
		{obj(1.2, 1.1, 0.8), obj(1.0, 1.0, 0.8), false},  // trades goodput for p99
		{obj(1.0, 1.0, 0.81), obj(1.0, 1.0, 0.8), true},  // strictly better on one only
		{obj(0.9, 0.8, 0.9), obj(1.0, 1.0, 0.8), false},  // worse goodput
		{obj(1.0, 1.0, 0.79), obj(1.0, 1.0, 0.8), false}, // worse fairness
	}
	for i, c := range cases {
		if got := dominates(c.a, c.b); got != c.want {
			t.Fatalf("case %d: dominates(%+v, %+v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func knobsWithQuantum(q int64) Knobs {
	k := DefaultKnobs()
	k.QuantumCycles = q
	return k
}

func TestParetoFrontFiltersAndOrders(t *testing.T) {
	pts := []Point{
		{Knobs: knobsWithQuantum(4096), Objectives: obj(1.0, 1.0, 0.8)},
		{Knobs: knobsWithQuantum(8192), Objectives: obj(1.2, 1.1, 0.8)},  // front: goodput leader
		{Knobs: knobsWithQuantum(16384), Objectives: obj(0.9, 0.7, 0.8)}, // front: p99 leader
		{Knobs: knobsWithQuantum(32768), Objectives: obj(0.8, 0.9, 0.7)}, // dominated by p99 leader
		{Knobs: knobsWithQuantum(16384), Objectives: obj(0.9, 0.7, 0.8)}, // duplicate key
	}
	front := ParetoFront(pts)
	if len(front) != 3 {
		t.Fatalf("front size %d, want 3: %+v", len(front), front)
	}
	// Canonical order: goodput descending.
	wantQ := []int64{8192, 4096, 16384}
	for i, q := range wantQ {
		if front[i].Knobs.QuantumCycles != q {
			t.Fatalf("front[%d].QuantumCycles = %d, want %d", i, front[i].Knobs.QuantumCycles, q)
		}
	}
}

func TestParetoFrontTieBreaks(t *testing.T) {
	// Equal objectives: order must fall back to the knob key, so the front
	// is reproducible whatever order the archive presented.
	a := Point{Knobs: knobsWithQuantum(9000), Objectives: obj(1, 1, 0.8)}
	b := Point{Knobs: knobsWithQuantum(7000), Objectives: obj(1, 1, 0.8)}
	f1 := ParetoFront([]Point{a, b})
	f2 := ParetoFront([]Point{b, a})
	if len(f1) != 2 || len(f2) != 2 {
		t.Fatalf("tie fronts sized %d, %d, want 2, 2", len(f1), len(f2))
	}
	for i := range f1 {
		if f1[i].Knobs != f2[i].Knobs {
			t.Fatalf("tie order depends on input order: %+v vs %+v", f1[i].Knobs, f2[i].Knobs)
		}
	}
}

func TestFitnessOrdering(t *testing.T) {
	lo := fitness(obj(1.0, 1.0, 0.8))
	hi := fitness(obj(1.2, 0.9, 0.8))
	if hi <= lo {
		t.Fatalf("fitness not increasing in quality: %v <= %v", hi, lo)
	}
	// The fairness nudge is a quarter-weight term.
	if d := fitness(obj(1, 1, 1)) - fitness(obj(1, 1, 0)); d != 0.25 {
		t.Fatalf("fairness weight = %v, want 0.25", d)
	}
}
