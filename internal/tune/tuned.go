package tune

// TunedPolicyPath is the repo-relative location of the committed search
// winner that the regression gates and the tuned experiments load.
const TunedPolicyPath = "results/tuned_policy.json"

// TunedSeed is the search (and corpus) seed the committed policy was found
// at; the regression gates rebuild this seed's corpus.
const TunedSeed = 2

// Tuned returns the committed search winner — the knob vector stored in
// results/tuned_policy.json, pinned here as a Go literal so the regression
// tests and the tuned experiment do not depend on the working directory.
// TestTunedPolicyFileMatchesLiteral keeps the two in lockstep.
//
// Found by `v10tune -seed 2 -pop 16 -generations 24` (211 evaluations):
// versus DefaultKnobs it holds +14.1% geomean goodput at 0.997× geomean p99
// across the corpus, and passes the fleet+faults regression gate (goodput up
// on fleet, tied on faults, p99 no worse on either).
func Tuned() Knobs {
	return Knobs{
		QuantumCycles:          14624,
		PreemptMargin:          1.956431299127637,
		PriorityExponent:       0.6430204989685868,
		QueueLimit:             8,
		CollocationThreshold:   1.4203575928381449,
		MigrationBackoffCycles: 1064323,
		CooldownIntervals:      4,
		SlowdownLimit:          2.544701003875381,
		DrainOccupancy:         0.5853005157700295,
	}
}
