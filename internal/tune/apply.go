package tune

import (
	"v10/internal/ctlplane"
	"v10/internal/fleet"
)

// Apply maps the knob vector onto a fleet configuration. Layer by layer:
//
//   - sched:    QuantumCycles → Config.TimeSlice, PreemptMargin,
//     PriorityExponent.
//   - fleet:    QueueLimit, MigrationBackoffCycles, and — only when the run
//     carries a trained collocation model — CollocationThreshold.
//   - ctlplane: CooldownIntervals and DrainOccupancy, only when the run is
//     elastic; the elastic config is cloned, never mutated in place, and the
//     cooldown is re-expressed in intervals so one policy ports across
//     scenarios with different horizons.
//   - admission: SlowdownLimit, only under predictive admission.
//
// Knobs that have no surface in the given options (no model, no autoscaler,
// queue-bound admission) are inert, so one tuned policy applies uniformly
// across the whole scenario corpus. Apply does not validate — call Validate
// first (the policy loaders already do).
func (k Knobs) Apply(o fleet.Options) fleet.Options {
	o.Config.TimeSlice = k.QuantumCycles
	o.PreemptMargin = k.PreemptMargin
	o.PriorityExponent = k.PriorityExponent
	o.QueueLimit = k.QueueLimit
	o.MigrationBackoffCycles = k.MigrationBackoffCycles
	if o.Model != nil {
		o.CollocationThreshold = k.CollocationThreshold
	}
	if o.Admission == fleet.AdmitPredictive {
		o.SlowdownLimit = k.SlowdownLimit
	}
	if o.Elastic != nil {
		cfg := *o.Elastic
		cfg.CooldownCycles = 0 // mutually exclusive with the interval form
		cfg.CooldownIntervals = k.CooldownIntervals
		cfg.DrainOccupancy = k.DrainOccupancy
		o.Elastic = &cfg
	}
	return o
}

// ApplyElastic rewrites a standalone control-plane config under the knobs —
// the hook the public serving API uses when it owns the ctlplane.Config
// directly rather than through fleet.Options.
func (k Knobs) ApplyElastic(cfg ctlplane.Config) ctlplane.Config {
	cfg.CooldownCycles = 0
	cfg.CooldownIntervals = k.CooldownIntervals
	cfg.DrainOccupancy = k.DrainOccupancy
	return cfg
}
