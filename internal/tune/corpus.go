package tune

import (
	"fmt"

	"v10/internal/collocate"
	"v10/internal/ctlplane"
	"v10/internal/faults"
	"v10/internal/fleet"
	"v10/internal/models"
	"v10/internal/npu"
	"v10/internal/trace"
	"v10/internal/workload"
)

// ScenarioScore is one scenario's measurement of one knob vector: the raw
// serving metrics the aggregate objectives are computed from.
type ScenarioScore struct {
	Scenario  string  `json:"scenario"`
	GoodputHz float64 `json:"goodput_hz"`
	P99Cycles float64 `json:"p99_cycles"` // worst per-tenant p99 latency
	Fairness  float64 `json:"fairness"`   // Jain's index over per-tenant good completions
	Completed int     `json:"completed"`
	Shed      int     `json:"shed"`
}

// Scenario is one seeded, deterministic evaluation cell of the corpus: Run
// is a pure function of the knob vector (the scenario's tenants, arrival
// schedules, fault schedule, and advisor model are all fixed at corpus
// construction).
type Scenario struct {
	Name string
	run  func(k Knobs, parallel int) (ScenarioScore, error)
}

// Run scores one knob vector on this scenario. parallel bounds the worker
// goroutines of the underlying fleet simulation (results are bit-identical
// at any width).
func (s Scenario) Run(k Knobs, parallel int) (ScenarioScore, error) {
	return s.run(k, parallel)
}

// corpusMix is the corpus tenant population: the same interleaved SA-heavy /
// VU-heavy mix as the paper's fleet experiments, at batch 8.
var corpusMix = []string{"BERT", "NCF", "TFMR", "DLRM", "RsNt", "MNST", "SMask", "ENet"}

// Corpus horizons and rates. The cells are deliberately shorter than the
// paper experiments — the search evaluates hundreds of candidates, and the
// knob ordering is already stable at these scales — but long enough for
// several control intervals, a mid-run fault, and diurnal swings.
const (
	corpusFleetHorizon   = 24_000_000
	corpusFaultHorizon   = 32_000_000
	corpusFaultMTTF      = 110_000_000
	corpusElasticHorizon = 24_000_000
	corpusRateHz         = 220
	corpusElasticRateHz  = 150
)

// DefaultCorpus builds the fixed four-scenario evaluation corpus:
//
//   - fleet:    steady-state Poisson serving on 4 cores under advisor
//     placement and a tight 4× SLO — the headline goodput cell.
//   - faults:   the same fleet with a seeded fail-stop schedule, loose 25×
//     SLO, and checkpoint-driven migration — exercises the migration
//     backoff and the advisor-gated recovery targets.
//   - workload: the LLM prefill/decode mix on anti-phased diurnal traffic
//     under least-loaded placement — the queue bound and priority knobs
//     carry this cell.
//   - elastic:  a 6-core autoscaled fleet (3-core floor) on high-amplitude
//     diurnal traffic with predictive admission and one realized-latency
//     feedback round — the ctlplane and admission knobs' surface.
//
// Everything random is derived from seed; the corpus itself (advisor
// training included) is built eagerly so Scenario.Run is pure and cheap to
// repeat. The same seed always yields the same corpus.
func DefaultCorpus(seed uint64, parallel int) ([]Scenario, error) {
	cfg := npu.DefaultConfig()
	tenants := make([]*trace.Workload, len(corpusMix))
	for i, abbrev := range corpusMix {
		spec, ok := models.ByName(abbrev)
		if !ok {
			return nil, fmt.Errorf("tune: unknown corpus model %q", abbrev)
		}
		s := seed + 8*977
		for _, ch := range abbrev {
			s = s*131 + uint64(ch)
		}
		tenants[i] = spec.Workload(8, s, cfg)
	}

	const profileRequests = 3
	feats := make([]collocate.Features, len(tenants))
	for i, w := range tenants {
		feats[i] = collocate.ExtractFeatures(w, cfg, profileRequests)
	}
	model, err := collocate.Train(tenants, feats, collocate.SimPairPerf(cfg, profileRequests),
		collocate.TrainConfig{K: 4, PairSamples: 8, Seed: seed, Parallel: parallel})
	if err != nil {
		return nil, fmt.Errorf("tune: training corpus advisor: %w", err)
	}

	faultSchedule := faults.Generate(4, corpusFaultHorizon, corpusFaultMTTF, seed)

	mix := workload.PrefillDecodeMix(len(corpusMix), corpusRateHz, cfg, seed)
	llmEng := workload.Engine{Config: cfg, HorizonCycles: corpusFleetHorizon, Seed: seed}
	llmArrivals, err := llmEng.Schedules(mix.Specs)
	if err != nil {
		return nil, fmt.Errorf("tune: scheduling prefill/decode arrivals: %w", err)
	}

	diurnal := make([]workload.Spec, len(tenants))
	for i := range diurnal {
		diurnal[i] = workload.Spec{Process: workload.Diurnal, RateHz: corpusElasticRateHz, Amplitude: 0.9}
	}
	elEng := workload.Engine{Config: cfg, HorizonCycles: corpusElasticHorizon, Seed: seed}
	elArrivals, err := elEng.Schedules(diurnal)
	if err != nil {
		return nil, fmt.Errorf("tune: scheduling diurnal arrivals: %w", err)
	}

	cell := func(name string, base func() fleet.Options, ws []*trace.Workload) Scenario {
		return Scenario{Name: name, run: func(k Knobs, parallel int) (ScenarioScore, error) {
			o := k.Apply(base())
			o.Parallel = parallel
			res, err := fleet.Run(ws, o)
			if err != nil {
				return ScenarioScore{}, fmt.Errorf("tune: scenario %s: %w", name, err)
			}
			return score(name, res), nil
		}}
	}

	return []Scenario{
		cell("fleet", func() fleet.Options {
			return fleet.Options{
				Config:         cfg,
				Cores:          4,
				Policy:         fleet.PolicyAdvisor,
				Model:          model,
				RateHz:         corpusRateHz,
				DurationCycles: corpusFleetHorizon,
				SLOFactor:      4,
				Seed:           seed,
			}
		}, tenants),
		cell("faults", func() fleet.Options {
			return fleet.Options{
				Config:          cfg,
				Cores:           4,
				Policy:          fleet.PolicyAdvisor,
				Model:           model,
				RateHz:          corpusRateHz,
				DurationCycles:  corpusFaultHorizon,
				SLOFactor:       25,
				Faults:          faultSchedule,
				HeartbeatCycles: 250_000,
				MissedBeats:     2,
				Seed:            seed,
			}
		}, tenants),
		cell("workload", func() fleet.Options {
			return fleet.Options{
				Config:         cfg,
				Cores:          4,
				Policy:         fleet.PolicyLeastLoaded,
				Arrivals:       llmArrivals,
				DurationCycles: corpusFleetHorizon,
				SLOFactor:      8,
				Seed:           seed,
			}
		}, mix.Workloads),
		cell("elastic", func() fleet.Options {
			return fleet.Options{
				Config:         cfg,
				Cores:          6,
				Policy:         fleet.PolicyLeastLoaded,
				Arrivals:       elArrivals,
				DurationCycles: corpusElasticHorizon,
				SLOFactor:      4,
				Admission:      fleet.AdmitPredictive,
				EstimateScale:  0.45,
				FeedbackRounds: 1,
				Elastic: &ctlplane.Config{
					MinCores:          3,
					IntervalCycles:    corpusElasticHorizon / 24,
					HysteresisWindows: 1,
				},
				Seed: seed,
			}
		}, tenants),
	}, nil
}

// score folds a fleet result into the scenario's scalar metrics.
func score(name string, res *fleet.Result) ScenarioScore {
	s := ScenarioScore{
		Scenario:  name,
		GoodputHz: res.GoodputHz,
		Completed: res.Completed,
		Shed:      res.Shed,
	}
	good := make([]float64, len(res.Tenants))
	for i, ts := range res.Tenants {
		if ts.P99LatencyCycles > s.P99Cycles {
			s.P99Cycles = ts.P99LatencyCycles
		}
		good[i] = float64(ts.Good)
	}
	s.Fairness = jain(good)
	return s
}

// jain is Jain's fairness index: (Σx)² / (n·Σx²) — 1 when every tenant gets
// an equal share, 1/n under total capture, 0 when nothing completed.
func jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
