package tune

import (
	"math"
	"testing"
)

func TestJain(t *testing.T) {
	cases := []struct {
		xs   []float64
		want float64
	}{
		{[]float64{5, 5, 5, 5}, 1},
		{[]float64{1, 0, 0, 0}, 0.25},
		{[]float64{0, 0}, 0},
		{nil, 0},
	}
	for _, c := range cases {
		if got := jain(c.xs); math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("jain(%v) = %v, want %v", c.xs, got, c.want)
		}
	}
}

// TestDefaultCorpusShape builds the real corpus once and checks its cell
// roster, gate coverage, and that scoring is a pure function of the knobs
// (two runs of the same cell agree bit-exactly).
func TestDefaultCorpusShape(t *testing.T) {
	corpus, err := DefaultCorpus(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"fleet", "faults", "workload", "elastic"}
	if len(corpus) != len(want) {
		t.Fatalf("corpus has %d cells, want %d", len(corpus), len(want))
	}
	gates := 0
	for i, sc := range corpus {
		if sc.Name != want[i] {
			t.Fatalf("cell %d named %q, want %q", i, sc.Name, want[i])
		}
		if GateScenarios[sc.Name] {
			gates++
		}
	}
	if gates != len(GateScenarios) {
		t.Fatalf("corpus covers %d of %d gate scenarios", gates, len(GateScenarios))
	}

	k := DefaultKnobs()
	s1, err := corpus[0].Run(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := corpus[0].Run(k, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s1 != s2 {
		t.Fatalf("fleet cell not pure: %+v vs %+v", s1, s2)
	}
	if s1.Completed == 0 || s1.GoodputHz <= 0 || s1.P99Cycles <= 0 {
		t.Fatalf("fleet cell degenerate: %+v", s1)
	}
	if s1.Fairness <= 0 || s1.Fairness > 1 {
		t.Fatalf("fairness %v outside (0, 1]", s1.Fairness)
	}
}

func TestDefaultCorpusSeedChangesTenants(t *testing.T) {
	a, err := DefaultCorpus(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := DefaultCorpus(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	k := DefaultKnobs()
	sa, err := a[0].Run(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := b[0].Run(k, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sa == sb {
		t.Fatalf("seeds 1 and 2 scored identically: %+v", sa)
	}
}
