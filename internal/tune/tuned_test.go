package tune

import (
	"path/filepath"
	"testing"
)

// TestTunedPolicyFileMatchesLiteral pins the committed policy file to the
// Tuned() Go literal, so the gates that run from a test working directory
// and the CLIs that load the file can never drift apart.
func TestTunedPolicyFileMatchesLiteral(t *testing.T) {
	p, err := LoadPolicy(filepath.Join("..", "..", TunedPolicyPath))
	if err != nil {
		t.Fatal(err)
	}
	if p.Knobs != Tuned() {
		t.Fatalf("committed policy knobs diverged from the Tuned() literal:\nfile:    %+v\nliteral: %+v\n(re-run v10tune and update tuned.go, or vice versa)",
			p.Knobs, Tuned())
	}
	if p.Seed != TunedSeed {
		t.Fatalf("committed policy seed %d, gate expects %d", p.Seed, TunedSeed)
	}
	if p.Objectives == nil || p.Objectives.Goodput <= 1 {
		t.Fatalf("committed policy objectives %+v do not record a goodput win", p.Objectives)
	}
}

// TestTunedPolicyBeatsDefaults is the committed-policy regression gate: on
// the gate cells of the tuned seed's corpus (fleet, faults), the tuned knobs
// must hold goodput at least at the defaults' with p99 no worse, and win
// goodput outright on at least one cell. Deterministic — the corpus, both
// knob vectors, and the simulator are all fixed.
func TestTunedPolicyBeatsDefaults(t *testing.T) {
	corpus, err := DefaultCorpus(TunedSeed, 0)
	if err != nil {
		t.Fatal(err)
	}
	tuned, defaults := Tuned(), DefaultKnobs()
	strictWin := false
	gateCells := 0
	for _, sc := range corpus {
		if !GateScenarios[sc.Name] {
			continue
		}
		gateCells++
		st, err := sc.Run(tuned, 0)
		if err != nil {
			t.Fatal(err)
		}
		sd, err := sc.Run(defaults, 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: tuned goodput %.1f Hz p99 %.0f cy | default goodput %.1f Hz p99 %.0f cy",
			sc.Name, st.GoodputHz, st.P99Cycles, sd.GoodputHz, sd.P99Cycles)
		if st.GoodputHz < sd.GoodputHz {
			t.Errorf("%s: tuned goodput %.2f below default %.2f", sc.Name, st.GoodputHz, sd.GoodputHz)
		}
		if st.P99Cycles > sd.P99Cycles {
			t.Errorf("%s: tuned p99 %.0f worse than default %.0f", sc.Name, st.P99Cycles, sd.P99Cycles)
		}
		if st.GoodputHz > sd.GoodputHz {
			strictWin = true
		}
	}
	if gateCells != len(GateScenarios) {
		t.Fatalf("only %d of %d gate cells present", gateCells, len(GateScenarios))
	}
	if !strictWin {
		t.Error("tuned policy never strictly beats the defaults' goodput on a gate cell")
	}
}
