package tune

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestDefaultKnobsValid(t *testing.T) {
	if err := DefaultKnobs().Validate(); err != nil {
		t.Fatalf("DefaultKnobs invalid: %v", err)
	}
	if err := Tuned().Validate(); err != nil {
		t.Fatalf("Tuned invalid: %v", err)
	}
}

// TestValidateRejectsIllegalKnobs drives every knob out of range on both
// sides plus NaN/Inf, and checks the shared KnobError shape each time.
func TestValidateRejectsIllegalKnobs(t *testing.T) {
	ranges := Ranges()
	for _, name := range KnobNames() {
		r := ranges[name]
		cases := []struct {
			value  float64
			reason string
		}{
			{r[0] - 1, "below minimum"},
			{r[1] * 16, "above maximum"},
			{math.NaN(), "not finite"},
			{math.Inf(1), "not finite"},
		}
		for _, c := range cases {
			k := DefaultKnobs()
			setKnob(t, &k, name, c.value)
			err := k.Validate()
			if err == nil {
				t.Fatalf("%s = %v: want error, got nil", name, c.value)
			}
			ke, ok := err.(*KnobError)
			if !ok {
				t.Fatalf("%s = %v: want *KnobError, got %T (%v)", name, c.value, err, err)
			}
			if ke.Knob != name || ke.Reason != c.reason {
				t.Fatalf("%s = %v: got knob %q reason %q, want reason %q", name, c.value, ke.Knob, ke.Reason, c.reason)
			}
			if ke.Min != r[0] || ke.Max != r[1] {
				t.Fatalf("%s: KnobError range [%v, %v] != Ranges() [%v, %v]", name, ke.Min, ke.Max, r[0], r[1])
			}
			msg := ke.Error()
			for _, want := range []string{name, c.reason, "legal range"} {
				if !strings.Contains(msg, want) {
					t.Fatalf("%s: error %q missing %q", name, msg, want)
				}
			}
		}
	}
}

// setKnob assigns a raw value to a knob by JSON name through the spec table.
// NaN/Inf survive the integer casts as valid-to-reject garbage only for the
// float fields, so integer knobs get their illegal values via the field.
func setKnob(t *testing.T, k *Knobs, name string, v float64) {
	t.Helper()
	if math.IsNaN(v) || math.IsInf(v, 0) {
		switch name {
		// int64/int fields cannot hold NaN; their "not finite" arm is
		// unreachable, so exercise it on the float view of the nearest field.
		case "quantum_cycles", "queue_limit", "migration_backoff_cycles", "cooldown_intervals":
			t.Skip("integer knob cannot represent a non-finite value")
		}
	}
	for i := range knobSpecs {
		if knobSpecs[i].name == name {
			knobSpecs[i].set(k, v)
			return
		}
	}
	t.Fatalf("unknown knob %q", name)
}

func TestKnobKeyDistinguishesVectors(t *testing.T) {
	a, b := DefaultKnobs(), DefaultKnobs()
	if a.key() != b.key() {
		t.Fatalf("equal knobs, different keys:\n%s\n%s", a.key(), b.key())
	}
	b.PreemptMargin += 0.01
	if a.key() == b.key() {
		t.Fatalf("different knobs share key %s", a.key())
	}
	for _, name := range KnobNames() {
		if !strings.Contains(a.key(), name+"=") {
			t.Fatalf("key %q missing knob %s", a.key(), name)
		}
	}
}

func TestPolicySaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "policy.json")
	obj := &Objectives{Goodput: 1.1, P99: 0.99, Fairness: 0.8}
	p := &Policy{Description: "round trip", Seed: 7, Generations: 3, Population: 4,
		Evaluations: 11, Objectives: obj, Knobs: Tuned()}
	if err := p.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadPolicy(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Knobs != p.Knobs || got.Seed != 7 || got.Generations != 3 ||
		got.Population != 4 || got.Evaluations != 11 || *got.Objectives != *obj {
		t.Fatalf("round trip mismatch: %+v != %+v", got, p)
	}
}

func TestSaveRejectsInvalidKnobs(t *testing.T) {
	bad := DefaultKnobs()
	bad.QueueLimit = 0
	p := &Policy{Knobs: bad}
	err := p.Save(filepath.Join(t.TempDir(), "bad.json"))
	if err == nil {
		t.Fatal("Save accepted out-of-range knobs")
	}
	if _, ok := err.(*KnobError); !ok {
		t.Fatalf("want *KnobError, got %T (%v)", err, err)
	}
}

func TestLoadPolicyRejections(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	cases := []struct {
		name, body, wantErr string
	}{
		{"missing.json", "", "reading policy"},
		{"garbage.json", "not json", "parsing policy"},
		{"unknown.json", `{"knobs": {"quantum_cycles": 32768}, "bogus_field": 1}`, "unknown field"},
		{"range.json", `{"knobs": {"quantum_cycles": 1, "preempt_margin": 1.25,
			"priority_exponent": 0, "queue_limit": 8, "collocation_threshold": 1.3,
			"migration_backoff_cycles": 250000, "cooldown_intervals": 2,
			"slowdown_limit": 2.5, "drain_occupancy": 0.25}}`, "below minimum"},
		{"nonfinite.json", `{"knobs": {"quantum_cycles": 32768, "preempt_margin": 1e999,
			"priority_exponent": 0, "queue_limit": 8, "collocation_threshold": 1.3,
			"migration_backoff_cycles": 250000, "cooldown_intervals": 2,
			"slowdown_limit": 2.5, "drain_occupancy": 0.25}}`, "parsing policy"},
	}
	for _, c := range cases {
		path := filepath.Join(dir, c.name)
		if c.body != "" {
			path = write(c.name, c.body)
		}
		_, err := LoadPolicy(path)
		if err == nil {
			t.Fatalf("%s: want error containing %q, got nil", c.name, c.wantErr)
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Fatalf("%s: error %q missing %q", c.name, err, c.wantErr)
		}
	}
}

func TestRangesCoverEveryKnob(t *testing.T) {
	ranges := Ranges()
	names := KnobNames()
	if len(ranges) != len(names) {
		t.Fatalf("Ranges has %d entries, KnobNames %d", len(ranges), len(names))
	}
	d := DefaultKnobs()
	for i := range knobSpecs {
		s := &knobSpecs[i]
		r, ok := ranges[s.name]
		if !ok {
			t.Fatalf("Ranges missing %s", s.name)
		}
		if r[0] >= r[1] {
			t.Fatalf("%s: degenerate range [%v, %v]", s.name, r[0], r[1])
		}
		if v := s.get(&d); v < r[0] || v > r[1] {
			t.Fatalf("%s: default %v outside [%v, %v]", s.name, v, r[0], r[1])
		}
	}
}
