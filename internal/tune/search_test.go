package tune

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

// synthCorpus is a cheap, pure stand-in for DefaultCorpus: three scenarios
// (two of them gate cells) whose scores are closed-form functions of the
// knobs, injective enough that distinct vectors score distinctly — which is
// what lets the freshness oracle catch a stale cache.
func synthCorpus() []Scenario {
	mk := func(name string, f func(k Knobs) ScenarioScore) Scenario {
		return Scenario{Name: name, run: func(k Knobs, _ int) (ScenarioScore, error) {
			s := f(k)
			s.Scenario = name
			return s, nil
		}}
	}
	return []Scenario{
		mk("fleet", func(k Knobs) ScenarioScore {
			return ScenarioScore{
				GoodputHz: 900 + 80*(2-math.Abs(k.PreemptMargin-2)) + 1e-4*float64(k.QuantumCycles),
				P99Cycles: 4e6 + 3e4*float64(k.QueueLimit) + 1e3*k.SlowdownLimit,
				Fairness:  0.90 - 0.05*math.Abs(k.PriorityExponent),
				Completed: 100,
			}
		}),
		mk("faults", func(k Knobs) ScenarioScore {
			return ScenarioScore{
				GoodputHz: 600 - 1e-5*math.Abs(float64(k.MigrationBackoffCycles)-500_000),
				P99Cycles: 9e6 - 2e5*k.DrainOccupancy + 1e4*float64(k.CooldownIntervals),
				Fairness:  0.75 + 0.02*k.CollocationThreshold,
				Completed: 80,
			}
		}),
		mk("elastic", func(k Knobs) ScenarioScore {
			return ScenarioScore{
				GoodputHz: 500 + 40*k.DrainOccupancy,
				P99Cycles: 6e6 + 1e5*math.Abs(k.SlowdownLimit-3),
				Fairness:  0.85,
				Completed: 60,
			}
		}),
	}
}

func mustSearch(t *testing.T, o Options) *Result {
	t.Helper()
	res, err := Search(o)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSearchArgumentErrors(t *testing.T) {
	if _, err := Search(Options{}); err == nil {
		t.Fatal("empty corpus accepted")
	}
	if _, err := Search(Options{Corpus: synthCorpus(), Population: 1}); err == nil {
		t.Fatal("population 1 accepted")
	}
	if _, err := Search(Options{Corpus: synthCorpus(), Generations: -1}); err == nil {
		t.Fatal("negative generations accepted")
	}
}

// TestSearchDeterministicAcrossParallel is the headline invariant: the same
// seed yields a bit-identical Result (winner, front, evaluation count — the
// whole JSON) at any worker width, and across repeated runs.
func TestSearchDeterministicAcrossParallel(t *testing.T) {
	base := Options{Seed: 42, Generations: 5, Population: 12, Corpus: synthCorpus()}
	var blobs [][]byte
	for _, par := range []int{1, 4, 7, 1} {
		o := base
		o.Parallel = par
		res := mustSearch(t, o)
		blob, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, blob)
	}
	for i := 1; i < len(blobs); i++ {
		if string(blobs[i]) != string(blobs[0]) {
			t.Fatalf("run %d diverged from run 0:\n%s\nvs\n%s", i, blobs[i], blobs[0])
		}
	}
}

func TestSearchSeedChangesTrajectory(t *testing.T) {
	a := mustSearch(t, Options{Seed: 1, Generations: 3, Population: 8, Corpus: synthCorpus()})
	b := mustSearch(t, Options{Seed: 2, Generations: 3, Population: 8, Corpus: synthCorpus()})
	ja, _ := json.Marshal(a.Front)
	jb, _ := json.Marshal(b.Front)
	if string(ja) == string(jb) {
		t.Fatal("different seeds produced an identical front — RNG not wired through")
	}
}

func TestSearchResultInvariants(t *testing.T) {
	corpus := synthCorpus()
	res := mustSearch(t, Options{Seed: 3, Generations: 4, Population: 10, Corpus: corpus,
		Progress: t.Logf})
	if res.Evaluations < res.Population {
		t.Fatalf("only %d evaluations for population %d", res.Evaluations, res.Population)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	if res.Baseline.Objectives != obj(1, 1, res.Baseline.Objectives.Fairness) {
		t.Fatalf("baseline objectives %+v not the unit ratio", res.Baseline.Objectives)
	}
	if err := Verify(res, corpus, 1); err != nil {
		t.Fatalf("genuine search fails its own oracles: %v", err)
	}
}

func TestAggregateAndRatio(t *testing.T) {
	base := []ScenarioScore{
		{Scenario: "a", GoodputHz: 100, P99Cycles: 1000, Fairness: 0.5},
		{Scenario: "b", GoodputHz: 400, P99Cycles: 2000, Fairness: 0.7},
	}
	// 2× goodput on one cell, tie on the other → geomean √2; p99 halves on
	// one cell → geomean 1/√2.
	cand := []ScenarioScore{
		{Scenario: "a", GoodputHz: 200, P99Cycles: 1000, Fairness: 0.6},
		{Scenario: "b", GoodputHz: 400, P99Cycles: 1000, Fairness: 0.8},
	}
	got := aggregate(cand, base, false)
	if math.Abs(got.Goodput-math.Sqrt2) > 1e-12 ||
		math.Abs(got.P99-1/math.Sqrt2) > 1e-12 ||
		math.Abs(got.Fairness-0.7) > 1e-12 {
		t.Fatalf("aggregate = %+v", got)
	}
	swapped := aggregate(cand, base, true)
	if swapped.Goodput != got.P99 || swapped.P99 != got.Goodput {
		t.Fatalf("swap mutant did not transpose: %+v vs %+v", swapped, got)
	}

	// Ratio guards.
	if r := ratio(1, 100); r != 0.25 {
		t.Fatalf("collapse floor: ratio(1,100) = %v", r)
	}
	if r := ratio(100, 1); r != 4 {
		t.Fatalf("blowup ceiling: ratio(100,1) = %v", r)
	}
	if r := ratio(5, 0); r != 2 {
		t.Fatalf("zero baseline, positive value: ratio = %v", r)
	}
	if r := ratio(0, 0); r != 1 {
		t.Fatalf("both zero: ratio = %v", r)
	}
}

func gatePoint(fleetG, fleetP, faultsG, faultsP float64) Point {
	return Point{Scores: []ScenarioScore{
		{Scenario: "fleet", GoodputHz: fleetG, P99Cycles: fleetP, Fairness: 0.8},
		{Scenario: "faults", GoodputHz: faultsG, P99Cycles: faultsP, Fairness: 0.8},
		{Scenario: "elastic", GoodputHz: 1, P99Cycles: 1, Fairness: 0.8},
	}}
}

func TestBeatsGate(t *testing.T) {
	base := gatePoint(100, 10, 200, 20)
	cases := []struct {
		name string
		p    Point
		want bool
	}{
		{"strictly better everywhere", gatePoint(110, 9, 210, 19), true},
		{"tie one cell, beat the other", gatePoint(100, 10, 210, 19), true},
		{"tie both cells", gatePoint(100, 10, 200, 20), false},
		{"goodput up, p99 worse", gatePoint(110, 11, 210, 19), false},
		{"goodput down on one gate cell", gatePoint(90, 9, 210, 19), false},
		{"mismatched score length", Point{}, false},
	}
	for _, c := range cases {
		if got := BeatsGate(c.p, base); got != c.want {
			t.Fatalf("%s: BeatsGate = %v, want %v", c.name, got, c.want)
		}
	}
	// The non-gate cell must be ignored entirely.
	p := gatePoint(110, 9, 210, 19)
	p.Scores[2].GoodputHz = 0.001
	p.Scores[2].P99Cycles = 1e12
	if !BeatsGate(p, base) {
		t.Fatal("non-gate scenario leaked into the gate")
	}
}

func TestBeatsEverywhere(t *testing.T) {
	base := gatePoint(100, 10, 200, 20)
	if !beatsEverywhere(gatePoint(110, 9, 210, 19), base) {
		t.Fatal("dominating point rejected")
	}
	worse := gatePoint(110, 9, 210, 19)
	worse.Scores[2].P99Cycles = 2 // non-gate cell p99 regression
	if beatsEverywhere(worse, base) {
		t.Fatal("non-gate p99 regression accepted")
	}
	if beatsEverywhere(base, base) {
		t.Fatal("tie accepted as a strict win")
	}
}

// TestPickBestGateTierScansArchive pins the fix for the constrained-optimum
// bug: a gate-passing point that is Pareto-dominated on the unconstrained
// aggregates (so it is NOT on the front) must still win over a front point
// that fails the gate.
func TestPickBestGateTierScansArchive(t *testing.T) {
	baseline := gatePoint(100, 10, 200, 20)
	baseline.Knobs = DefaultKnobs()
	baseline.Objectives = obj(1, 1, 0.8)

	gated := gatePoint(110, 10, 200, 20) // clears the gate...
	gated.Knobs = knobsWithQuantum(5000)
	gated.Objectives = obj(1.05, 1.0, 0.8) // ...but is dominated on aggregates

	flashy := gatePoint(200, 30, 100, 20) // dominates on aggregates, fails gate
	flashy.Knobs = knobsWithQuantum(6000)
	flashy.Objectives = obj(1.4, 0.9, 0.9)

	archive := []Point{baseline, gated, flashy}
	front := ParetoFront(archive) // gated is dominated out
	for _, p := range front {
		if p.Knobs == gated.Knobs {
			t.Fatal("test setup broken: gated point expected off-front")
		}
	}
	best := pickBest(archive, front, baseline)
	if best.Knobs != gated.Knobs {
		t.Fatalf("pickBest chose %+v, want the off-front gate-passing point", best.Objectives)
	}

	// Without any gate-passing point, fall through to the aggregate tier.
	best = pickBest([]Point{baseline, flashy}, ParetoFront([]Point{baseline, flashy}), baseline)
	if best.Knobs != flashy.Knobs {
		t.Fatalf("aggregate tier chose %+v", best.Objectives)
	}

	// And with nothing better than the defaults, keep the defaults.
	best = pickBest([]Point{baseline}, ParetoFront([]Point{baseline}), baseline)
	if best.Knobs != baseline.Knobs {
		t.Fatalf("empty archive tier chose %+v", best.Objectives)
	}
}

// The three planted-bug tests: each mutation flips one classic search-harness
// failure on, runs an otherwise genuine search, and demands that Verify —
// the same oracle chain the v10tune production path runs before writing any
// policy — rejects the result with the right diagnosis.

func TestVerifyCatchesSwappedObjectives(t *testing.T) {
	corpus := synthCorpus()
	res := mustSearch(t, Options{Seed: 11, Generations: 3, Population: 8, Corpus: corpus,
		mutSwapObjectives: true})
	err := Verify(res, corpus, 1)
	if err == nil {
		t.Fatal("Verify accepted a search optimizing transposed objectives")
	}
	if !strings.Contains(err.Error(), "do not recompute") {
		t.Fatalf("wrong diagnosis: %v", err)
	}
}

func TestVerifyCatchesStaleCache(t *testing.T) {
	corpus := synthCorpus()
	res := mustSearch(t, Options{Seed: 11, Generations: 3, Population: 8, Corpus: corpus,
		mutStaleCache: true})
	err := Verify(res, corpus, 1)
	if err == nil {
		t.Fatal("Verify accepted a search with a stale evaluation cache")
	}
	if !strings.Contains(err.Error(), "stale evaluation cache") {
		t.Fatalf("wrong diagnosis: %v", err)
	}
}

func TestVerifyCatchesDroppedScenario(t *testing.T) {
	corpus := synthCorpus()
	res := mustSearch(t, Options{Seed: 11, Generations: 3, Population: 8, Corpus: corpus,
		mutDropScenario: true})
	err := Verify(res, corpus, 1)
	if err == nil {
		t.Fatal("Verify accepted a search that silently dropped a corpus scenario")
	}
	if !strings.Contains(err.Error(), "corpus scenarios") {
		t.Fatalf("wrong diagnosis: %v", err)
	}
}

func TestVerifyRejectsEmptyResult(t *testing.T) {
	if err := Verify(nil, synthCorpus(), 1); err == nil {
		t.Fatal("nil result accepted")
	}
	if err := Verify(&Result{}, synthCorpus(), 1); err == nil {
		t.Fatal("empty result accepted")
	}
}

// TestVerifyCatchesForgedWinner hand-tampers a genuine result to cover the
// oracle arms a live mutation cannot reach: a Best that is neither on the
// front nor gate-passing, and a front poisoned with a dominated point.
func TestVerifyCatchesForgedWinner(t *testing.T) {
	corpus := synthCorpus()
	res := mustSearch(t, Options{Seed: 13, Generations: 3, Population: 8, Corpus: corpus})

	forged := *res
	bad := res.Baseline
	bad.Knobs.PreemptMargin = 2.9999 // off-front, not baseline, fails gate
	bad.Objectives = obj(0.5, 2, 0.1)
	forged.Best = bad
	if err := Verify(&forged, corpus, 1); err == nil {
		t.Fatal("forged winner accepted")
	}

	poisoned := *res
	weak := res.Front[0]
	weak.Objectives.Goodput -= 0.5 // now dominated by the original front[0]
	weak.Knobs.DrainOccupancy = 0.123456
	poisoned.Front = append([]Point{weak}, res.Front...)
	if err := Verify(&poisoned, corpus, 1); err == nil {
		t.Fatal("dominated front point accepted")
	}
}
