package tune

import (
	"testing"

	"v10/internal/collocate"
	"v10/internal/ctlplane"
	"v10/internal/fleet"
	"v10/internal/npu"
)

func TestApplyLayerGating(t *testing.T) {
	k := Tuned()
	base := fleet.Options{Config: npu.DefaultConfig(), Cores: 2}

	// Bare options: sched + fleet knobs land, conditional layers stay inert.
	o := k.Apply(base)
	if o.Config.TimeSlice != k.QuantumCycles || o.PreemptMargin != k.PreemptMargin ||
		o.PriorityExponent != k.PriorityExponent || o.QueueLimit != k.QueueLimit ||
		o.MigrationBackoffCycles != k.MigrationBackoffCycles {
		t.Fatalf("unconditional knobs not applied: %+v", o)
	}
	if o.CollocationThreshold != base.CollocationThreshold {
		t.Fatalf("collocation threshold %v applied without a model", o.CollocationThreshold)
	}
	if o.SlowdownLimit != base.SlowdownLimit {
		t.Fatalf("slowdown limit %v applied without predictive admission", o.SlowdownLimit)
	}
	if o.Elastic != nil {
		t.Fatal("elastic config materialized from nothing")
	}

	// With a model, the advisor threshold follows the knob.
	withModel := base
	withModel.Model = &collocate.Model{}
	if got := k.Apply(withModel).CollocationThreshold; got != k.CollocationThreshold {
		t.Fatalf("collocation threshold = %v, want %v", got, k.CollocationThreshold)
	}

	// Under predictive admission, the slowdown ceiling follows the knob.
	withAdm := base
	withAdm.Admission = fleet.AdmitPredictive
	if got := k.Apply(withAdm).SlowdownLimit; got != k.SlowdownLimit {
		t.Fatalf("slowdown limit = %v, want %v", got, k.SlowdownLimit)
	}

	// The elastic config is cloned, re-expressed in intervals, never mutated.
	orig := &ctlplane.Config{MinCores: 2, CooldownCycles: 777, DrainOccupancy: 0.1}
	withEl := base
	withEl.Elastic = orig
	got := k.Apply(withEl)
	if got.Elastic == orig {
		t.Fatal("elastic config mutated in place")
	}
	if orig.CooldownCycles != 777 || orig.DrainOccupancy != 0.1 {
		t.Fatalf("caller's elastic config was mutated: %+v", orig)
	}
	if got.Elastic.CooldownCycles != 0 || got.Elastic.CooldownIntervals != k.CooldownIntervals ||
		got.Elastic.DrainOccupancy != k.DrainOccupancy || got.Elastic.MinCores != 2 {
		t.Fatalf("elastic knobs misapplied: %+v", got.Elastic)
	}
}

func TestApplyElastic(t *testing.T) {
	k := Tuned()
	cfg := k.ApplyElastic(ctlplane.Config{MinCores: 3, CooldownCycles: 500})
	if cfg.CooldownCycles != 0 || cfg.CooldownIntervals != k.CooldownIntervals ||
		cfg.DrainOccupancy != k.DrainOccupancy || cfg.MinCores != 3 {
		t.Fatalf("ApplyElastic misapplied: %+v", cfg)
	}
}
