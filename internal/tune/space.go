package tune

import (
	"math"

	"v10/internal/mathx"
)

// knobSpec is one dimension of the search space: its JSON name, legal
// closed range, and how the search maps it to and from the normalized
// [0, 1] coordinate the genetic operators work in. Log-scaled knobs
// normalize in log space so a fixed mutation step is a fixed *ratio*;
// integer knobs round on denormalization so every candidate is realizable.
type knobSpec struct {
	name     string
	min, max float64
	log      bool // normalize in log space
	integer  bool // round to integer on denormalization
	get      func(*Knobs) float64
	set      func(*Knobs, float64)
}

// knobSpecs is the search space, in Knobs declaration order. The ranges
// bracket each default by enough to matter but stay inside the regimes the
// stack validates (PreemptMargin >= 1, SlowdownLimit >= 1.5, occupancies in
// (0, 1)).
var knobSpecs = []knobSpec{
	{
		name: "quantum_cycles", min: 4096, max: 262144, log: true, integer: true,
		get: func(k *Knobs) float64 { return float64(k.QuantumCycles) },
		set: func(k *Knobs, v float64) { k.QuantumCycles = int64(v) },
	},
	{
		name: "preempt_margin", min: 1.0, max: 3.0,
		get: func(k *Knobs) float64 { return k.PreemptMargin },
		set: func(k *Knobs, v float64) { k.PreemptMargin = v },
	},
	{
		name: "priority_exponent", min: -0.5, max: 1.0,
		get: func(k *Knobs) float64 { return k.PriorityExponent },
		set: func(k *Knobs, v float64) { k.PriorityExponent = v },
	},
	{
		name: "queue_limit", min: 2, max: 32, integer: true,
		get: func(k *Knobs) float64 { return float64(k.QueueLimit) },
		set: func(k *Knobs, v float64) { k.QueueLimit = int(v) },
	},
	{
		name: "collocation_threshold", min: 1.0, max: 1.6,
		get: func(k *Knobs) float64 { return k.CollocationThreshold },
		set: func(k *Knobs, v float64) { k.CollocationThreshold = v },
	},
	{
		name: "migration_backoff_cycles", min: 50_000, max: 2_000_000, log: true, integer: true,
		get: func(k *Knobs) float64 { return float64(k.MigrationBackoffCycles) },
		set: func(k *Knobs, v float64) { k.MigrationBackoffCycles = int64(v) },
	},
	{
		name: "cooldown_intervals", min: 1, max: 6, integer: true,
		get: func(k *Knobs) float64 { return float64(k.CooldownIntervals) },
		set: func(k *Knobs, v float64) { k.CooldownIntervals = int(v) },
	},
	{
		name: "slowdown_limit", min: 1.5, max: 8,
		get: func(k *Knobs) float64 { return k.SlowdownLimit },
		set: func(k *Knobs, v float64) { k.SlowdownLimit = v },
	},
	{
		name: "drain_occupancy", min: 0.05, max: 0.9,
		get: func(k *Knobs) float64 { return k.DrainOccupancy },
		set: func(k *Knobs, v float64) { k.DrainOccupancy = v },
	},
}

// norm maps a raw knob value into the spec's [0, 1] coordinate.
func (s *knobSpec) norm(v float64) float64 {
	lo, hi := s.min, s.max
	if s.log {
		return (math.Log(v) - math.Log(lo)) / (math.Log(hi) - math.Log(lo))
	}
	return (v - lo) / (hi - lo)
}

// denorm maps a [0, 1] coordinate back to a raw, clamped, realizable value.
func (s *knobSpec) denorm(u float64) float64 {
	if u < 0 {
		u = 0
	} else if u > 1 {
		u = 1
	}
	var v float64
	if s.log {
		v = math.Exp(math.Log(s.min) + u*(math.Log(s.max)-math.Log(s.min)))
	} else {
		v = s.min + u*(s.max-s.min)
	}
	if s.integer {
		v = math.Round(v)
	}
	if v < s.min {
		v = s.min
	} else if v > s.max {
		v = s.max
	}
	return v
}

// mutationSigma is the Gaussian mutation step in normalized coordinates —
// 15% of each knob's (possibly log-scaled) range.
const mutationSigma = 0.15

// sampleKnobs draws a uniform random point of the search space (uniform in
// each knob's normalized coordinate, so log knobs sample log-uniformly).
func sampleKnobs(rng *mathx.RNG) Knobs {
	var k Knobs
	for i := range knobSpecs {
		s := &knobSpecs[i]
		s.set(&k, s.denorm(rng.Float64()))
	}
	return k
}

// crossover blends two parents per-knob in normalized coordinates: each
// child coordinate is a uniform point on the segment between its parents'
// (BLX-0 blend crossover).
func crossover(a, b Knobs, rng *mathx.RNG) Knobs {
	var child Knobs
	for i := range knobSpecs {
		s := &knobSpecs[i]
		ua, ub := s.norm(s.get(&a)), s.norm(s.get(&b))
		t := rng.Float64()
		s.set(&child, s.denorm(ua+t*(ub-ua)))
	}
	return child
}

// mutateKnobs perturbs each knob with probability pMut by a Gaussian step of
// mutationSigma in normalized coordinates, clamping to the legal range.
func mutateKnobs(k Knobs, rng *mathx.RNG) Knobs {
	const pMut = 0.5
	for i := range knobSpecs {
		s := &knobSpecs[i]
		// Draw both variates unconditionally so the RNG stream consumed per
		// knob is fixed — determinism does not depend on which knobs mutate.
		p, step := rng.Float64(), rng.Norm()
		if p >= pMut {
			continue
		}
		s.set(&k, s.denorm(s.norm(s.get(&k))+step*mutationSigma))
	}
	return k
}
