package tune

import "fmt"

// Verify checks a search result against the search-invariant oracles. It is
// cheap except for one fresh re-evaluation of Best and runs in the v10tune
// production path before any policy is written:
//
//  1. Coverage: every reported point scored every corpus scenario, in
//     corpus order (catches silently dropped scenarios).
//  2. Objective consistency: each point's aggregate objectives recompute
//     bit-exactly from its per-scenario scores and the baseline's (catches
//     transposed or re-weighted objectives).
//  3. Front soundness: the front is mutually non-dominated, contains Best,
//     and no reported point dominates a front member.
//  4. Winner constraint: Best either beats the baseline's goodput on every
//     scenario at no-worse p99, or is an explicitly allowed fallback.
//  5. Freshness: re-running the corpus on Best's knobs — and on one
//     non-baseline front point, since a stale cache can leave the winner
//     at the (genuinely scored) baseline — reproduces the recorded scores
//     bit-exactly (catches stale or mis-keyed caches).
func Verify(res *Result, corpus []Scenario, par int) error {
	if res == nil || len(res.Front) == 0 {
		return fmt.Errorf("tune: verify: empty result")
	}

	// 1. Scenario coverage, baseline included.
	points := append([]Point{res.Baseline, res.Best}, res.Front...)
	for _, p := range points {
		if len(p.Scores) != len(corpus) {
			return fmt.Errorf("tune: verify: point %s scored %d of %d corpus scenarios",
				p.Knobs.key(), len(p.Scores), len(corpus))
		}
		for i, s := range p.Scores {
			if s.Scenario != corpus[i].Name {
				return fmt.Errorf("tune: verify: point %s scenario %d is %q, corpus says %q",
					p.Knobs.key(), i, s.Scenario, corpus[i].Name)
			}
		}
	}

	// 2. Objectives must recompute from the recorded scores.
	for _, p := range points {
		want := aggregate(p.Scores, res.Baseline.Scores, false)
		if p.Objectives != want {
			return fmt.Errorf("tune: verify: point %s objectives %+v do not recompute from its scores (want %+v)",
				p.Knobs.key(), p.Objectives, want)
		}
	}

	// 3. Front soundness.
	bestKey := res.Best.Knobs.key()
	onFront := false
	for i, p := range res.Front {
		if p.Knobs.key() == bestKey {
			onFront = true
		}
		for j, q := range res.Front {
			if i != j && dominates(q.Objectives, p.Objectives) {
				return fmt.Errorf("tune: verify: front point %s dominates front point %s",
					q.Knobs.key(), p.Knobs.key())
			}
		}
	}
	if !onFront && bestKey != res.Baseline.Knobs.key() && !BeatsGate(res.Best, res.Baseline) {
		return fmt.Errorf("tune: verify: Best %s is neither on the front nor a gate-passing point", bestKey)
	}

	// 4. Winner constraint (or explicit fallback tiers).
	if !beatsEverywhere(res.Best, res.Baseline) &&
		!BeatsGate(res.Best, res.Baseline) &&
		bestKey != res.Baseline.Knobs.key() &&
		!(res.Best.Objectives.Goodput > 1 && res.Best.Objectives.P99 <= 1) {
		return fmt.Errorf("tune: verify: Best %s neither beats the baseline on the gate scenarios nor matches a fallback tier", bestKey)
	}

	// 5. Fresh re-evaluation of Best plus one non-baseline front point.
	recheck := []Point{res.Best}
	for _, p := range res.Front {
		k := p.Knobs.key()
		if k != bestKey && k != res.Baseline.Knobs.key() {
			recheck = append(recheck, p)
			break
		}
	}
	for _, p := range recheck {
		for i, sc := range corpus {
			fresh, err := sc.Run(p.Knobs, par)
			if err != nil {
				return fmt.Errorf("tune: verify: re-evaluating %s on %s: %w", p.Knobs.key(), sc.Name, err)
			}
			if fresh != p.Scores[i] {
				return fmt.Errorf("tune: verify: recorded %s score %+v of %s does not reproduce (fresh %+v) — stale evaluation cache?",
					sc.Name, p.Scores[i], p.Knobs.key(), fresh)
			}
		}
	}
	return nil
}
