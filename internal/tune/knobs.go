// Package tune is the policy-search harness: a seeded, deterministic
// evolutionary search over the serving stack's cross-layer knob space —
// per-core scheduler quantum and preemption margin, dispatcher queue bound
// and priority bias, collocation threshold, migration backoff, and the
// elastic control plane's cooldown/drain parameters — scored against a fixed
// corpus of seeded fleet scenarios (steady-state serving, fault injection,
// LLM prefill/decode traffic, autoscaling). The search reports a Pareto
// front over (goodput, p99 latency, Jain fairness) and a constrained winner
// that must beat the default knobs on goodput without giving up tail
// latency. Search results are bit-identical for a given seed at any worker
// count: all randomness lives in the serial breeding phase, and scenario
// evaluations are pure functions of the knob vector.
package tune

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"strings"
)

// Knobs is the typed cross-layer policy vector the search optimizes. Every
// field overrides one tunable of the serving stack; Apply maps them onto a
// fleet.Options. The zero value is invalid — start from DefaultKnobs.
type Knobs struct {
	// QuantumCycles is the per-core scheduler's preemption time slice
	// (npu.CoreConfig.TimeSlice). Default 32768.
	QuantumCycles int64 `json:"quantum_cycles"`
	// PreemptMargin is the scheduler's preemption benefit margin: a waiting
	// workload preempts only when its accumulated-rate product exceeds the
	// running one's by this factor. Default 1.25.
	PreemptMargin float64 `json:"preempt_margin"`
	// PriorityExponent biases tenant priorities by estimated service time:
	// each tenant's priority is scaled by (ref/est)^w. Positive favors short
	// tenants, negative long ones, 0 leaves priorities as authored.
	PriorityExponent float64 `json:"priority_exponent"`
	// QueueLimit bounds each core's dispatcher queue. Default 8.
	QueueLimit int `json:"queue_limit"`
	// CollocationThreshold is the advisor's predicted-beneficial cutoff for
	// placement grouping and the spill/migration gates. Default 1.3.
	CollocationThreshold float64 `json:"collocation_threshold"`
	// MigrationBackoffCycles is the base of the exponential backoff between
	// failed migration attempts after a core failure. Default 250e3.
	MigrationBackoffCycles int64 `json:"migration_backoff_cycles"`
	// CooldownIntervals is the elastic control plane's refractory period
	// between scale decisions, in control intervals. Default 2.
	CooldownIntervals int `json:"cooldown_intervals"`
	// SlowdownLimit is predictive admission's ceiling on predicted
	// (wait+service)/service. Default 2.5.
	SlowdownLimit float64 `json:"slowdown_limit"`
	// DrainOccupancy is the mean queue occupancy at or below which the
	// control plane may drain a core. Default 0.25.
	DrainOccupancy float64 `json:"drain_occupancy"`
}

// DefaultKnobs returns the serving stack's built-in operating point — the
// baseline every search candidate is scored against.
func DefaultKnobs() Knobs {
	return Knobs{
		QuantumCycles:          32768,
		PreemptMargin:          1.25,
		PriorityExponent:       0,
		QueueLimit:             8,
		CollocationThreshold:   1.3,
		MigrationBackoffCycles: 250_000,
		CooldownIntervals:      2,
		SlowdownLimit:          2.5,
		DrainOccupancy:         0.25,
	}
}

// KnobError reports one knob whose value falls outside its legal range. It
// is the shared validation currency of the tuner, the policy loaders, and
// the serving CLIs: every path that accepts a knob vector rejects it with
// the same error shape.
type KnobError struct {
	Knob     string  // JSON name of the offending knob
	Value    float64 // the rejected value
	Min, Max float64 // the legal closed range
	Reason   string  // "not finite", "below minimum", "above maximum"
}

func (e *KnobError) Error() string {
	return fmt.Sprintf("tune: knob %s = %v %s (legal range [%v, %v])",
		e.Knob, e.Value, e.Reason, e.Min, e.Max)
}

// Validate checks every knob against its search-space range and returns a
// *KnobError for the first violation (in knob declaration order), nil when
// the vector is legal.
func (k Knobs) Validate() error {
	for _, s := range knobSpecs {
		v := s.get(&k)
		switch {
		case math.IsNaN(v) || math.IsInf(v, 0):
			return &KnobError{Knob: s.name, Value: v, Min: s.min, Max: s.max, Reason: "not finite"}
		case v < s.min:
			return &KnobError{Knob: s.name, Value: v, Min: s.min, Max: s.max, Reason: "below minimum"}
		case v > s.max:
			return &KnobError{Knob: s.name, Value: v, Min: s.min, Max: s.max, Reason: "above maximum"}
		}
	}
	return nil
}

// key is the canonical cache/dedup identity of a knob vector: its fields in
// declaration order. Two Knobs compare equal iff their keys match.
func (k Knobs) key() string {
	var b strings.Builder
	for i, s := range knobSpecs {
		if i > 0 {
			b.WriteByte('|')
		}
		fmt.Fprintf(&b, "%s=%g", s.name, s.get(&k))
	}
	return b.String()
}

// Policy is the on-disk form of a tuned knob vector: the knobs plus the
// provenance of the search that produced them. cmd/v10tune writes it;
// v10serve -tuned and the regression gates load it.
type Policy struct {
	Description string      `json:"description,omitempty"`
	Seed        uint64      `json:"seed,omitempty"`
	Generations int         `json:"generations,omitempty"`
	Population  int         `json:"population,omitempty"`
	Evaluations int         `json:"evaluations,omitempty"`
	Objectives  *Objectives `json:"objectives,omitempty"`
	Knobs       Knobs       `json:"knobs"`
}

// LoadPolicy reads and validates a tuned-policy JSON file. Unknown fields,
// malformed JSON, and out-of-range or non-finite knob values are all
// rejected — a policy that loads is safe to Apply.
func LoadPolicy(path string) (*Policy, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("tune: reading policy: %w", err)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var p Policy
	if err := dec.Decode(&p); err != nil {
		return nil, fmt.Errorf("tune: parsing policy %s: %w", path, err)
	}
	if err := p.Knobs.Validate(); err != nil {
		return nil, fmt.Errorf("tune: policy %s: %w", path, err)
	}
	return &p, nil
}

// Save writes the policy as indented JSON.
func (p *Policy) Save(path string) error {
	if err := p.Knobs.Validate(); err != nil {
		return err
	}
	data, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Ranges describes the search space as knob → [min, max], in a form the
// CLIs can print and schema checks can assert against.
func Ranges() map[string][2]float64 {
	out := make(map[string][2]float64, len(knobSpecs))
	for _, s := range knobSpecs {
		out[s.name] = [2]float64{s.min, s.max}
	}
	return out
}

// KnobNames lists the knob JSON names in declaration order.
func KnobNames() []string {
	out := make([]string, len(knobSpecs))
	for i, s := range knobSpecs {
		out[i] = s.name
	}
	return out
}
