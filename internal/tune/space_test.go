package tune

import (
	"math"
	"testing"

	"v10/internal/mathx"
)

func TestNormDenormRoundTrip(t *testing.T) {
	for i := range knobSpecs {
		s := &knobSpecs[i]
		for _, u := range []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1} {
			v := s.denorm(u)
			if v < s.min || v > s.max {
				t.Fatalf("%s: denorm(%v) = %v outside [%v, %v]", s.name, u, v, s.min, s.max)
			}
			if s.integer && v != math.Round(v) {
				t.Fatalf("%s: denorm(%v) = %v not integral", s.name, u, v)
			}
			// denorm∘norm must be idempotent on realizable values — exactly
			// for integer knobs, to rounding error for continuous ones.
			got := s.denorm(s.norm(v))
			if s.integer && got != v {
				t.Fatalf("%s: denorm(norm(%v)) = %v", s.name, v, got)
			}
			if !s.integer && math.Abs(got-v) > 1e-9*(s.max-s.min) {
				t.Fatalf("%s: denorm(norm(%v)) = %v", s.name, v, got)
			}
		}
	}
}

func TestDenormClamps(t *testing.T) {
	for i := range knobSpecs {
		s := &knobSpecs[i]
		if got := s.denorm(-3); got != s.min {
			t.Fatalf("%s: denorm(-3) = %v, want min %v", s.name, got, s.min)
		}
		if got := s.denorm(7); got != s.max {
			t.Fatalf("%s: denorm(7) = %v, want max %v", s.name, got, s.max)
		}
	}
}

func TestLogKnobsNormalizeInLogSpace(t *testing.T) {
	for i := range knobSpecs {
		s := &knobSpecs[i]
		if !s.log {
			continue
		}
		// The geometric midpoint must land at u = 0.5 exactly.
		mid := math.Sqrt(s.min * s.max)
		if u := s.norm(mid); math.Abs(u-0.5) > 1e-12 {
			t.Fatalf("%s: norm(geomean) = %v, want 0.5", s.name, u)
		}
	}
}

// TestGeneticOperatorsStayLegal hammers sample/crossover/mutate and asserts
// every produced vector validates — the search can never construct a
// candidate the serving stack would reject.
func TestGeneticOperatorsStayLegal(t *testing.T) {
	rng := mathx.NewRNG(99)
	prev := DefaultKnobs()
	for i := 0; i < 200; i++ {
		k := sampleKnobs(rng)
		if err := k.Validate(); err != nil {
			t.Fatalf("sample %d invalid: %v", i, err)
		}
		c := crossover(prev, k, rng)
		if err := c.Validate(); err != nil {
			t.Fatalf("crossover %d invalid: %v", i, err)
		}
		m := mutateKnobs(c, rng)
		if err := m.Validate(); err != nil {
			t.Fatalf("mutation %d invalid: %v", i, err)
		}
		prev = k
	}
}

// TestMutateConsumesFixedRNGStream pins the determinism contract: the RNG
// variates are drawn per knob whether or not the knob mutates, so two equal
// generators stay in lockstep across mutateKnobs calls.
func TestMutateConsumesFixedRNGStream(t *testing.T) {
	a, b := mathx.NewRNG(5), mathx.NewRNG(5)
	mutateKnobs(DefaultKnobs(), a)
	mutateKnobs(Tuned(), b) // different input vector, same stream consumption
	if av, bv := a.Float64(), b.Float64(); av != bv {
		t.Fatalf("RNG streams diverged after mutateKnobs: %v != %v", av, bv)
	}
}

func TestCrossoverBetweenParents(t *testing.T) {
	rng := mathx.NewRNG(17)
	a, b := sampleKnobs(rng), sampleKnobs(rng)
	for i := 0; i < 50; i++ {
		c := crossover(a, b, rng)
		for j := range knobSpecs {
			s := &knobSpecs[j]
			ua, ub := s.norm(s.get(&a)), s.norm(s.get(&b))
			uc := s.norm(s.get(&c))
			lo, hi := math.Min(ua, ub), math.Max(ua, ub)
			// Integer rounding may push the child half a grid step outside.
			slack := 1e-9
			if s.integer {
				slack = 0.51 / (s.max - s.min)
				if s.log {
					slack = 0.51 * (math.Log(s.max) - math.Log(s.min)) / s.min // coarse but safe
				}
			}
			if uc < lo-slack || uc > hi+slack {
				t.Fatalf("%s: child %v outside parent segment [%v, %v]", s.name, uc, lo, hi)
			}
		}
	}
}
