package tune

import (
	"context"
	"fmt"
	"math"
	"sort"

	"v10/internal/mathx"
	"v10/internal/parallel"
)

// Options configure a Search. Corpus and Seed fix the result bit-exactly;
// Parallel only changes wall-clock time.
type Options struct {
	// Seed drives population sampling, crossover, and mutation. Same seed,
	// same corpus, same budget → bit-identical Result at any Parallel.
	Seed uint64
	// Parallel bounds the workers evaluating candidates (0 = GOMAXPROCS,
	// 1 = serial). All randomness stays in the serial breeding phase, so the
	// search trajectory is independent of the width.
	Parallel int
	// Generations is the number of breeding rounds after the initial
	// population evaluation (default 8).
	Generations int
	// Population is the number of candidates alive per generation
	// (default 16, minimum 2).
	Population int
	// Corpus is the evaluation scenario set (required — see DefaultCorpus).
	Corpus []Scenario
	// Progress, when non-nil, receives one line per generation.
	Progress func(format string, args ...any)

	// Mutation hooks for the search-invariant oracle tests. Each plants a
	// classic search-harness bug that Verify must catch:
	//
	//   - mutSwapObjectives: aggregate objectives computed with goodput and
	//     p99 transposed (optimizing the wrong thing while the per-scenario
	//     scores stay honest).
	//   - mutStaleCache: the evaluation cache returns the first entry ever
	//     cached for every subsequent candidate (results detached from the
	//     knobs that claim them).
	//   - mutDropScenario: the last corpus scenario is silently skipped
	//     (coverage hole).
	mutSwapObjectives bool
	mutStaleCache     bool
	mutDropScenario   bool
}

// Result is a completed search: the default-knob baseline, the Pareto front
// over (goodput, p99, fairness), and the constrained winner.
type Result struct {
	Seed        uint64 `json:"seed"`
	Generations int    `json:"generations"`
	Population  int    `json:"population"`
	// Evaluations counts distinct knob vectors actually simulated (cache
	// hits excluded).
	Evaluations int `json:"evaluations"`
	// Baseline is DefaultKnobs scored on the corpus; every point's
	// objectives are ratios against its scores.
	Baseline Point `json:"baseline"`
	// Best is the constrained winner: the front point with the highest
	// aggregate goodput among those that dominate the baseline on every
	// scenario; failing that, among those that clear the regression gate
	// (goodput >= baseline and p99 <= baseline on each GateScenario, with
	// strictly higher goodput on at least one); failing that, the best
	// aggregate goodput-up-at-no-worse-p99 point; finally the baseline.
	Best Point `json:"best"`
	// Front is the Pareto front in canonical order.
	Front []Point `json:"front"`
}

// evaluator scores knob vectors against the corpus with a dedup cache. The
// batch API is the determinism backbone: the caller presents candidates in
// a fixed order, misses are evaluated concurrently (each a pure function),
// and the cache is updated serially in that same order.
type evaluator struct {
	corpus   []Scenario
	parallel int
	cache    map[string][]ScenarioScore
	order    []string // cache insertion order (mutStaleCache reads entry 0)
	evals    int

	mutStale bool
	mutDrop  bool
}

func newEvaluator(o Options) *evaluator {
	return &evaluator{
		corpus:   o.Corpus,
		parallel: o.Parallel,
		cache:    map[string][]ScenarioScore{},
		mutStale: o.mutStaleCache,
		mutDrop:  o.mutDropScenario,
	}
}

// evalOne runs every corpus scenario for one candidate, serially — the
// cross-candidate batch is where the parallelism lives.
func (e *evaluator) evalOne(k Knobs) ([]ScenarioScore, error) {
	corpus := e.corpus
	if e.mutDrop && len(corpus) > 1 {
		corpus = corpus[:len(corpus)-1]
	}
	scores := make([]ScenarioScore, len(corpus))
	for i, sc := range corpus {
		s, err := sc.Run(k, e.parallel)
		if err != nil {
			return nil, err
		}
		scores[i] = s
	}
	return scores, nil
}

// scores returns per-scenario scores for every candidate in batch, in batch
// order, evaluating uncached candidates concurrently.
func (e *evaluator) scores(batch []Knobs) ([][]ScenarioScore, error) {
	var missing []Knobs
	var missingKeys []string
	seen := map[string]bool{}
	for _, k := range batch {
		key := k.key()
		if _, ok := e.cache[key]; ok || seen[key] {
			continue
		}
		if e.mutStale && len(e.order) > 0 {
			// The planted staleness bug: reuse the first result ever cached.
			e.cache[key] = e.cache[e.order[0]]
			e.order = append(e.order, key)
			continue
		}
		seen[key] = true
		missing = append(missing, k)
		missingKeys = append(missingKeys, key)
	}
	if len(missing) > 0 {
		results, err := parallel.Map(context.Background(), len(missing), e.parallel,
			func(i int) ([]ScenarioScore, error) { return e.evalOne(missing[i]) })
		if err != nil {
			return nil, err
		}
		for i, key := range missingKeys {
			e.cache[key] = results[i]
			e.order = append(e.order, key)
			e.evals++
		}
	}
	out := make([][]ScenarioScore, len(batch))
	for i, k := range batch {
		out[i] = e.cache[k.key()]
	}
	return out, nil
}

// aggregate folds per-scenario scores into baseline-relative objectives.
// Ratio guards: a zero baseline metric contributes a neutral 1.0 unless the
// candidate is strictly worse/better, in which case it contributes a fixed
// 2× penalty/bonus — zero-goodput corners stay comparable without infinities.
func aggregate(scores, base []ScenarioScore, swap bool) Objectives {
	var logG, logP, fair float64
	n := float64(len(scores))
	for i, s := range scores {
		b := base[i]
		logG += math.Log(ratio(s.GoodputHz, b.GoodputHz))
		logP += math.Log(ratio(s.P99Cycles, b.P99Cycles))
		fair += s.Fairness
	}
	o := Objectives{
		Goodput:  math.Exp(logG / n),
		P99:      math.Exp(logP / n),
		Fairness: fair / n,
	}
	if swap {
		o.Goodput, o.P99 = o.P99, o.Goodput
	}
	return o
}

// ratio is v/b with the zero-baseline guards described at aggregate.
func ratio(v, b float64) float64 {
	switch {
	case b > 0:
		r := v / b
		if r < 0.25 {
			r = 0.25 // floor so one collapsed scenario cannot dominate the geomean
		} else if r > 4 {
			r = 4
		}
		return r
	case v > 0:
		return 2
	default:
		return 1
	}
}

// Search runs the evolutionary knob search: evaluate the seeded initial
// population (defaults plus uniform samples), then for each generation carry
// the Pareto elites and breed the rest by tournament selection, blend
// crossover, and Gaussian mutation. Every evaluated candidate joins the
// archive; the result reports the archive's Pareto front.
func Search(o Options) (*Result, error) {
	if len(o.Corpus) == 0 {
		return nil, fmt.Errorf("tune: search needs a non-empty corpus")
	}
	if o.Generations < 0 {
		return nil, fmt.Errorf("tune: negative generations %d", o.Generations)
	}
	if o.Generations == 0 {
		o.Generations = 8
	}
	if o.Population == 0 {
		o.Population = 16
	}
	if o.Population < 2 {
		return nil, fmt.Errorf("tune: population %d below minimum 2", o.Population)
	}
	progress := o.Progress
	if progress == nil {
		progress = func(string, ...any) {}
	}

	ev := newEvaluator(o)
	defaults := DefaultKnobs()
	baseScores, err := ev.scores([]Knobs{defaults})
	if err != nil {
		return nil, err
	}
	base := baseScores[0]
	baseline := Point{Knobs: defaults, Objectives: aggregate(base, base, false), Scores: base}

	rng := mathx.NewRNG(o.Seed ^ 0x7475_6e65) // "tune"
	pop := make([]Knobs, 0, o.Population)
	pop = append(pop, defaults)
	for len(pop) < o.Population {
		pop = append(pop, sampleKnobs(rng))
	}

	// The archive holds every evaluated candidate in first-seen order.
	var archive []Point
	inArchive := map[string]bool{}
	absorb := func(ks []Knobs, scs [][]ScenarioScore) {
		for i, k := range ks {
			key := k.key()
			if inArchive[key] {
				continue
			}
			inArchive[key] = true
			archive = append(archive, Point{
				Knobs:      k,
				Objectives: aggregate(scs[i], base, o.mutSwapObjectives),
				Scores:     scs[i],
			})
		}
	}

	for gen := 0; ; gen++ {
		scs, err := ev.scores(pop)
		if err != nil {
			return nil, err
		}
		absorb(pop, scs)
		front := ParetoFront(archive)
		progress("gen %d: %d evaluated, front %d, best goodput ratio %.4f",
			gen, ev.evals, len(front), front[0].Objectives.Goodput)
		if gen == o.Generations {
			break
		}

		// Breed the next population (serial: the only RNG consumer). Elites
		// are the front in canonical order, capped at half the population.
		next := make([]Knobs, 0, o.Population)
		for _, p := range front {
			if len(next) >= o.Population/2 {
				break
			}
			next = append(next, p.Knobs)
		}
		for len(next) < o.Population {
			p1 := tournament(archive, rng)
			p2 := tournament(archive, rng)
			next = append(next, mutateKnobs(crossover(p1.Knobs, p2.Knobs, rng), rng))
		}
		pop = next
	}

	front := ParetoFront(archive)
	return &Result{
		Seed:        o.Seed,
		Generations: o.Generations,
		Population:  o.Population,
		Evaluations: ev.evals,
		Baseline:    baseline,
		Best:        pickBest(archive, front, baseline),
		Front:       front,
	}, nil
}

// tournament picks the fitter of two uniformly drawn archive points.
func tournament(archive []Point, rng *mathx.RNG) Point {
	a := archive[rng.Intn(len(archive))]
	b := archive[rng.Intn(len(archive))]
	if fitness(b.Objectives) > fitness(a.Objectives) {
		return b
	}
	return a
}

// GateScenarios names the corpus cells the committed-policy regression gate
// stands on: a tuned policy must beat the defaults here, not merely on the
// aggregate.
var GateScenarios = map[string]bool{"fleet": true, "faults": true}

// beatsEverywhere reports whether p's raw scores beat the baseline's on
// every scenario: goodput at least as high (strictly higher somewhere) and
// p99 no worse anywhere.
func beatsEverywhere(p, base Point) bool {
	if len(p.Scores) != len(base.Scores) {
		return false
	}
	strict := false
	for i, s := range p.Scores {
		b := base.Scores[i]
		if s.GoodputHz < b.GoodputHz || s.P99Cycles > b.P99Cycles {
			return false
		}
		if s.GoodputHz > b.GoodputHz {
			strict = true
		}
	}
	return strict
}

// BeatsGate reports whether p clears the regression gate against base: on
// every GateScenario its goodput is at least the baseline's and its p99 no
// worse, with strictly higher goodput on at least one gate cell.
func BeatsGate(p, base Point) bool {
	if len(p.Scores) != len(base.Scores) {
		return false
	}
	strict, seen := false, 0
	for i, s := range p.Scores {
		if !GateScenarios[s.Scenario] {
			continue
		}
		b := base.Scores[i]
		seen++
		if s.GoodputHz < b.GoodputHz || s.P99Cycles > b.P99Cycles {
			return false
		}
		if s.GoodputHz > b.GoodputHz {
			strict = true
		}
	}
	return seen > 0 && strict
}

// pickBest selects the constrained winner described at Result.Best. The
// gate tier scans the whole archive, not just the front: a gate-passing
// point is a *constrained* optimum and may legitimately be Pareto-dominated
// on the unconstrained aggregates. Every tier is deterministic — the front
// is in canonical order and the archive tier sorts its candidates.
func pickBest(archive, front []Point, baseline Point) Point {
	for _, p := range front {
		if beatsEverywhere(p, baseline) {
			return p
		}
	}
	var gated []Point
	for _, p := range archive {
		if BeatsGate(p, baseline) {
			gated = append(gated, p)
		}
	}
	if len(gated) > 0 {
		sort.SliceStable(gated, func(i, j int) bool {
			a, b := gated[i].Objectives, gated[j].Objectives
			switch {
			case a.Goodput != b.Goodput:
				return a.Goodput > b.Goodput
			case a.P99 != b.P99:
				return a.P99 < b.P99
			case a.Fairness != b.Fairness:
				return a.Fairness > b.Fairness
			}
			return gated[i].Knobs.key() < gated[j].Knobs.key()
		})
		return gated[0]
	}
	for _, p := range front {
		if p.Objectives.Goodput > 1 && p.Objectives.P99 <= 1 {
			return p
		}
	}
	return baseline
}
