package tune

import "sort"

// Objectives is a candidate's aggregate score across the corpus, expressed
// relative to the default-knob baseline so scenarios with different scales
// weigh equally:
//
//   - Goodput: geometric mean over scenarios of goodput / baseline goodput.
//     Higher is better; 1.0 ties the defaults.
//   - P99: geometric mean of p99 latency / baseline p99. Lower is better.
//   - Fairness: arithmetic mean of Jain's index over per-tenant good
//     completions (absolute, already in [0, 1]). Higher is better.
type Objectives struct {
	Goodput  float64 `json:"goodput"`
	P99      float64 `json:"p99"`
	Fairness float64 `json:"fairness"`
}

// Point is one evaluated candidate: its knobs, aggregate objectives, and
// the per-scenario scores they were computed from.
type Point struct {
	Knobs      Knobs           `json:"knobs"`
	Objectives Objectives      `json:"objectives"`
	Scores     []ScenarioScore `json:"scores"`
}

// dominates reports whether a is at least as good as b on every objective
// and strictly better on at least one.
func dominates(a, b Objectives) bool {
	if a.Goodput < b.Goodput || a.P99 > b.P99 || a.Fairness < b.Fairness {
		return false
	}
	return a.Goodput > b.Goodput || a.P99 < b.P99 || a.Fairness > b.Fairness
}

// ParetoFront filters the mutually non-dominated points and returns them in
// a canonical order: goodput descending, then p99 ascending, then fairness
// descending, then knob key — so the front is bit-identical however the
// candidates were produced. Duplicate knob vectors keep one representative.
func ParetoFront(points []Point) []Point {
	var front []Point
	seen := map[string]bool{}
	for _, p := range points {
		k := p.Knobs.key()
		if seen[k] {
			continue
		}
		dominated := false
		for _, q := range points {
			if dominates(q.Objectives, p.Objectives) {
				dominated = true
				break
			}
		}
		if !dominated {
			seen[k] = true
			front = append(front, p)
		}
	}
	sort.SliceStable(front, func(i, j int) bool {
		a, b := front[i].Objectives, front[j].Objectives
		switch {
		case a.Goodput != b.Goodput:
			return a.Goodput > b.Goodput
		case a.P99 != b.P99:
			return a.P99 < b.P99
		case a.Fairness != b.Fairness:
			return a.Fairness > b.Fairness
		}
		return front[i].Knobs.key() < front[j].Knobs.key()
	})
	return front
}

// fitness scalarizes the objectives for tournament selection: reward
// goodput, punish tail latency, nudge toward fairness. Selection pressure
// only — the reported result is the full Pareto front.
func fitness(o Objectives) float64 {
	return o.Goodput - o.P99 + 0.25*o.Fairness
}
