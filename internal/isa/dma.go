package isa

import (
	"errors"
	"fmt"
)

// DMA support (paper §2.1): "The SRAM buffers are filled by DMA operations
// that execute independently from the core pipeline, such that the NPU can
// overlap computation and data movement between on-chip SRAM and off-chip
// HBM." Two instructions expose the engine to programs:
//
//	dma.in  [vmem], [hbm], n   start an async HBM→vmem copy of n words
//	dma.wait                   block until all outstanding DMAs complete
//
// A dma.in issues in one cycle; the transfer itself proceeds in the
// background at the HBM interface rate and only dma.wait exposes the
// remaining latency — so instructions executed between issue and wait hide
// the transfer (double buffering).

// DMA instruction opcodes (continuing the OpCode space).
const (
	OpDmaIn OpCode = iota + 64
	OpDmaWait
)

// HBM is the off-chip memory, word-addressed in float32 units like VMem.
type HBM struct {
	data []float32
}

// NewHBM allocates an off-chip memory of the given word capacity.
func NewHBM(words int64) *HBM {
	if words <= 0 {
		panic("isa: non-positive HBM size")
	}
	return &HBM{data: make([]float32, words)}
}

// Words returns the capacity in float32 words.
func (m *HBM) Words() int64 { return int64(len(m.data)) }

// Write copies values into HBM at addr.
func (m *HBM) Write(addr int64, vals []float32) error {
	if addr < 0 || addr+int64(len(vals)) > int64(len(m.data)) {
		return fmt.Errorf("isa: hbm write [%d, %d) out of range", addr, addr+int64(len(vals)))
	}
	copy(m.data[addr:], vals)
	return nil
}

// Read copies n words from HBM at addr.
func (m *HBM) Read(addr, n int64) ([]float32, error) {
	if addr < 0 || addr+n > int64(len(m.data)) {
		return nil, fmt.Errorf("isa: hbm read [%d, %d) out of range", addr, addr+n)
	}
	out := make([]float32, n)
	copy(out, m.data[addr:])
	return out, nil
}

// AttachHBM connects an off-chip memory to the core. wordsPerCycle is the
// HBM interface rate in float32 words per cycle (~118 for 330 GB/s at
// 700 MHz). Programs may then use OpDmaIn/OpDmaWait.
func (c *Core) AttachHBM(h *HBM, wordsPerCycle float64) {
	if wordsPerCycle <= 0 {
		panic("isa: non-positive DMA rate")
	}
	c.hbm = h
	c.dmaRate = wordsPerCycle
}

// executeDMA handles the DMA opcodes; returns errUnknown for others.
func (c *Core) executeDMA(in Instr) error {
	switch in.Op {
	case OpDmaIn:
		if c.hbm == nil {
			return errors.New("dma.in without an attached HBM")
		}
		if in.Count <= 0 {
			return errors.New("dma.in needs a positive word count")
		}
		vals, err := c.hbm.Read(in.HAddr, in.Count)
		if err != nil {
			return err
		}
		if err := c.VMem.Write(in.Addr, vals); err != nil {
			return err
		}
		// The copy lands immediately for functional purposes; timing-wise
		// the channel is busy for count/rate cycles starting when free.
		start := c.cycles
		if c.dmaBusyUntil > start {
			start = c.dmaBusyUntil
		}
		c.dmaBusyUntil = start + int64(float64(in.Count)/c.dmaRate+0.999999)
	case OpDmaWait:
		if c.dmaBusyUntil > c.cycles {
			c.dmaWaited += c.dmaBusyUntil - c.cycles
			c.cycles = c.dmaBusyUntil
		}
	default:
		return fmt.Errorf("unknown DMA opcode %v", in.Op)
	}
	return nil
}

// DMAWaitedCycles returns the cycles the core stalled in dma.wait — time
// the program failed to hide behind computation.
func (c *Core) DMAWaitedCycles() int64 { return c.dmaWaited }
