// Package isa is a functional model of the NPU core's instruction set
// (paper §2.1): the vector unit with its 2D vector register file and
// software-managed vector memory, and the push/pushw/pop instructions that
// stream data between the vector registers and the systolic array's FIFOs.
//
//	push/pushw %src   send eight vector-register rows into the SA (8 cycles)
//	pop  %dst         read eight result rows from the SA FIFO (8 cycles)
//	ld   %dst,[vmem]  load a register from vector memory (8 cycles)
//	st   %src,[vmem]  store a register to vector memory (8 cycles)
//	vadd/vsub/vmul/vmax %dst,%a,%b      element-wise SIMD (1 cycle)
//	vaddi/vmuli/vmaxi %dst,%a,imm       scalar-immediate variants (1 cycle)
//
// The interpreter executes whole programs against a systolic.Array, which is
// how the repository demonstrates that a compiled layer (matmul + bias +
// ReLU) runs correctly on the modeled core — including across a VU context
// switch (§3.3: VU preemption saves only the PC and register values).
package isa

import (
	"errors"
	"fmt"

	"v10/internal/systolic"
)

// Geometry of the register file (paper Fig. 2): 8×128 2D vector registers.
const (
	RegRows  = 8
	RegLanes = 128
	RegSize  = RegRows * RegLanes
	NumRegs  = 32
)

// OpCode enumerates the core's instructions.
type OpCode uint8

// Instruction opcodes.
const (
	OpNop   OpCode = iota
	OpLd           // dst ← vmem[addr : addr+RegSize]
	OpSt           // vmem[addr : addr+RegSize] ← src
	OpPushW        // stream 8 weight rows from src into the SA
	OpPush         // stream 8 input rows from src into the SA
	OpPop          // dst ← 8 result rows from the SA FIFO
	OpVAdd         // dst ← a + b
	OpVSub         // dst ← a - b
	OpVMul         // dst ← a * b
	OpVMax         // dst ← max(a, b)
	OpVAddI        // dst ← a + imm
	OpVMulI        // dst ← a * imm
	OpVMaxI        // dst ← max(a, imm)
)

var opNames = map[OpCode]string{
	OpNop: "nop", OpLd: "ld", OpSt: "st", OpPushW: "pushw", OpPush: "push",
	OpPop: "pop", OpVAdd: "vadd", OpVSub: "vsub", OpVMul: "vmul",
	OpVMax: "vmax", OpVAddI: "vaddi", OpVMulI: "vmuli", OpVMaxI: "vmaxi",
	OpDmaIn: "dma.in", OpDmaWait: "dma.wait",
}

// String names the opcode.
func (o OpCode) String() string {
	if n, ok := opNames[o]; ok {
		return n
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Cycles returns the instruction's issue cost (paper §2.1: push/pop move
// eight 128-wide vectors in 8 cycles; ALU ops are single-cycle SIMD).
func (o OpCode) Cycles() int64 {
	switch o {
	case OpLd, OpSt, OpPush, OpPushW, OpPop:
		return 8
	default:
		// ALU ops and DMA issue/wait take one issue cycle; dma.wait adds
		// the exposed transfer latency separately.
		return 1
	}
}

// Instr is one decoded instruction.
type Instr struct {
	Op    OpCode
	Dst   uint8 // destination register
	A, B  uint8 // source registers
	Addr  int64 // vector-memory word address (ld/st, dma.in destination)
	HAddr int64 // HBM word address (dma.in source)
	Count int64 // word count (dma.in)
	Imm   float32
}

// String renders assembly-ish text.
func (in Instr) String() string {
	switch in.Op {
	case OpLd:
		return fmt.Sprintf("ld v%d, [%d]", in.Dst, in.Addr)
	case OpSt:
		return fmt.Sprintf("st v%d, [%d]", in.A, in.Addr)
	case OpPush, OpPushW:
		return fmt.Sprintf("%s v%d", in.Op, in.A)
	case OpPop:
		return fmt.Sprintf("pop v%d", in.Dst)
	case OpVAddI, OpVMulI, OpVMaxI:
		return fmt.Sprintf("%s v%d, v%d, %g", in.Op, in.Dst, in.A, in.Imm)
	case OpNop:
		return "nop"
	default:
		return fmt.Sprintf("%s v%d, v%d, v%d", in.Op, in.Dst, in.A, in.B)
	}
}

// VMem is the software-managed on-chip vector memory, word-addressed in
// float32 units.
type VMem struct {
	data []float32
}

// NewVMem allocates a vector memory of the given word capacity.
func NewVMem(words int64) *VMem {
	if words <= 0 {
		panic("isa: non-positive vmem size")
	}
	return &VMem{data: make([]float32, words)}
}

// Words returns the capacity in float32 words.
func (m *VMem) Words() int64 { return int64(len(m.data)) }

// Write copies values into vmem at addr.
func (m *VMem) Write(addr int64, vals []float32) error {
	if addr < 0 || addr+int64(len(vals)) > int64(len(m.data)) {
		return fmt.Errorf("isa: vmem write [%d, %d) out of range", addr, addr+int64(len(vals)))
	}
	copy(m.data[addr:], vals)
	return nil
}

// Read copies n words from vmem at addr.
func (m *VMem) Read(addr, n int64) ([]float32, error) {
	if addr < 0 || addr+n > int64(len(m.data)) {
		return nil, fmt.Errorf("isa: vmem read [%d, %d) out of range", addr, addr+n)
	}
	out := make([]float32, n)
	copy(out, m.data[addr:])
	return out, nil
}

// Core interprets programs: a vector unit (registers + ALU) attached to a
// systolic array through push/pop FIFOs, sharing a vector memory.
type Core struct {
	SA   *systolic.Array
	VMem *VMem

	regs   [NumRegs][]float32
	pc     int
	cycles int64

	pushedInputs [][]float32 // rows pushed since the last flush
	resultFIFO   [][]float32 // rows popped out of the SA, pending OpPop
	weightRows   [][]float32 // accumulating pushw rows until dim reached

	hbm          *HBM    // optional off-chip memory (AttachHBM)
	dmaRate      float64 // words per cycle over the HBM interface
	dmaBusyUntil int64   // cycle the DMA channel frees up
	dmaWaited    int64   // cycles stalled in dma.wait
}

// NewCore builds a core around a dim-sized systolic array and vmem.
func NewCore(sa *systolic.Array, vmem *VMem) *Core {
	c := &Core{SA: sa, VMem: vmem}
	for i := range c.regs {
		c.regs[i] = make([]float32, RegSize)
	}
	return c
}

// Cycles returns the cycles consumed by executed instructions (including
// systolic streaming charged at flush points).
func (c *Core) Cycles() int64 { return c.cycles }

// Reg returns a copy of a register's contents.
func (c *Core) Reg(i uint8) []float32 {
	out := make([]float32, RegSize)
	copy(out, c.regs[i])
	return out
}

// Run executes the program from the current PC to completion.
func (c *Core) Run(prog []Instr) error {
	for c.pc < len(prog) {
		if err := c.execute(prog[c.pc]); err != nil {
			return fmt.Errorf("isa: pc=%d %s: %w", c.pc, prog[c.pc], err)
		}
		c.pc++
	}
	c.pc = 0
	return nil
}

func (c *Core) execute(in Instr) error {
	if int(in.Dst) >= NumRegs || int(in.A) >= NumRegs || int(in.B) >= NumRegs {
		return errors.New("register index out of range")
	}
	c.cycles += in.Op.Cycles()
	switch in.Op {
	case OpNop:
	case OpLd:
		vals, err := c.VMem.Read(in.Addr, RegSize)
		if err != nil {
			return err
		}
		copy(c.regs[in.Dst], vals)
	case OpSt:
		return c.VMem.Write(in.Addr, c.regs[in.A])
	case OpPushW:
		return c.pushWeights(in.A)
	case OpPush:
		return c.pushInputs(in.A)
	case OpPop:
		return c.pop(in.Dst)
	case OpVAdd:
		for i := 0; i < RegSize; i++ {
			c.regs[in.Dst][i] = c.regs[in.A][i] + c.regs[in.B][i]
		}
	case OpVSub:
		for i := 0; i < RegSize; i++ {
			c.regs[in.Dst][i] = c.regs[in.A][i] - c.regs[in.B][i]
		}
	case OpVMul:
		for i := 0; i < RegSize; i++ {
			c.regs[in.Dst][i] = c.regs[in.A][i] * c.regs[in.B][i]
		}
	case OpVMax:
		for i := 0; i < RegSize; i++ {
			c.regs[in.Dst][i] = max32(c.regs[in.A][i], c.regs[in.B][i])
		}
	case OpVAddI:
		for i := 0; i < RegSize; i++ {
			c.regs[in.Dst][i] = c.regs[in.A][i] + in.Imm
		}
	case OpVMulI:
		for i := 0; i < RegSize; i++ {
			c.regs[in.Dst][i] = c.regs[in.A][i] * in.Imm
		}
	case OpVMaxI:
		for i := 0; i < RegSize; i++ {
			c.regs[in.Dst][i] = max32(c.regs[in.A][i], in.Imm)
		}
	case OpDmaIn, OpDmaWait:
		return c.executeDMA(in)
	case OpVMin, OpVNeg, OpVAbs, OpVRecip, OpVExp, OpVSum, OpVBcast, OpVSel:
		return c.executeVectorExt(in)
	default:
		return errors.New("unknown opcode")
	}
	return nil
}

func max32(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

// pushWeights accumulates eight rows toward a dim×dim weight matrix; when
// complete, it loads the systolic array.
func (c *Core) pushWeights(src uint8) error {
	d := c.SA.Dim()
	if d > RegLanes {
		return fmt.Errorf("array dim %d exceeds register lanes %d", d, RegLanes)
	}
	for r := 0; r < RegRows && len(c.weightRows) < d; r++ {
		row := make([]float32, d)
		copy(row, c.regs[src][r*RegLanes:r*RegLanes+d])
		c.weightRows = append(c.weightRows, row)
	}
	if len(c.weightRows) == d {
		w := c.weightRows
		c.weightRows = nil
		before := c.SA.Cycles()
		if err := c.SA.LoadWeights(w); err != nil {
			return err
		}
		c.cycles += c.SA.Cycles() - before
	}
	return nil
}

// pushInputs queues eight register rows into the SA input FIFO.
func (c *Core) pushInputs(src uint8) error {
	d := c.SA.Dim()
	for r := 0; r < RegRows; r++ {
		row := make([]float32, d)
		copy(row, c.regs[src][r*RegLanes:r*RegLanes+d])
		c.pushedInputs = append(c.pushedInputs, row)
	}
	return nil
}

// pop returns eight result rows; if the FIFO is dry it flushes the pending
// pushes through the array (charging the pipeline occupancy).
func (c *Core) pop(dst uint8) error {
	if len(c.resultFIFO) < RegRows {
		if len(c.pushedInputs) == 0 {
			return errors.New("pop with empty SA pipeline")
		}
		before := c.SA.Cycles()
		results, err := c.SA.Stream(c.pushedInputs)
		if err != nil {
			return err
		}
		c.cycles += c.SA.Cycles() - before
		c.pushedInputs = nil
		c.resultFIFO = append(c.resultFIFO, results...)
	}
	if len(c.resultFIFO) < RegRows {
		return fmt.Errorf("pop needs %d rows, only %d available", RegRows, len(c.resultFIFO))
	}
	d := c.SA.Dim()
	for i := range c.regs[dst] {
		c.regs[dst][i] = 0
	}
	for r := 0; r < RegRows; r++ {
		copy(c.regs[dst][r*RegLanes:r*RegLanes+d], c.resultFIFO[r])
	}
	c.resultFIFO = c.resultFIFO[RegRows:]
	return nil
}

// VUContext is a vector-unit checkpoint (§3.3): the PC and register values,
// spilled to vector memory. The VU holds no other state.
type VUContext struct {
	PC   int
	Addr int64 // where in vmem the registers were saved
}

// ContextWords is the vmem footprint of a VU context in float32 words.
const ContextWords = NumRegs * RegSize

// SaveContext spills the PC and all registers to vmem at addr.
func (c *Core) SaveContext(addr int64) (*VUContext, error) {
	for i := 0; i < NumRegs; i++ {
		if err := c.VMem.Write(addr+int64(i*RegSize), c.regs[i]); err != nil {
			return nil, err
		}
	}
	ctx := &VUContext{PC: c.pc, Addr: addr}
	c.cycles += int64(NumRegs) // one cycle per register through the store port
	return ctx, nil
}

// RestoreContext reloads the PC and registers from a saved context.
func (c *Core) RestoreContext(ctx *VUContext) error {
	for i := 0; i < NumRegs; i++ {
		vals, err := c.VMem.Read(ctx.Addr+int64(i*RegSize), RegSize)
		if err != nil {
			return err
		}
		copy(c.regs[i], vals)
	}
	c.pc = ctx.PC
	c.cycles += int64(NumRegs)
	return nil
}

// RunPreemptible executes prog but stops before instruction stopAt, saves a
// context, and returns it; ResumeRun continues from the context.
func (c *Core) RunPreemptible(prog []Instr, stopAt int, saveAddr int64) (*VUContext, error) {
	if stopAt < 0 || stopAt > len(prog) {
		return nil, fmt.Errorf("isa: stop point %d out of range", stopAt)
	}
	for c.pc < stopAt {
		if err := c.execute(prog[c.pc]); err != nil {
			return nil, fmt.Errorf("isa: pc=%d %s: %w", c.pc, prog[c.pc], err)
		}
		c.pc++
	}
	return c.SaveContext(saveAddr)
}

// ResumeRun restores the context and finishes the program.
func (c *Core) ResumeRun(ctx *VUContext, prog []Instr) error {
	if err := c.RestoreContext(ctx); err != nil {
		return err
	}
	return c.Run(prog)
}
