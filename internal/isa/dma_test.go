package isa

import (
	"testing"

	"v10/internal/mathx"
	"v10/internal/systolic"
)

func dmaCore(dim int) *Core {
	c := newTestCore(dim)
	c.AttachHBM(NewHBM(1<<22), 118) // ~330 GB/s at 700 MHz
	return c
}

func TestDmaInCopiesAndTimes(t *testing.T) {
	c := dmaCore(4)
	vals := []float32{1, 2, 3, 4, 5}
	if err := c.hbm.Write(100, vals); err != nil {
		t.Fatal(err)
	}
	prog := []Instr{
		{Op: OpDmaIn, Addr: 0, HAddr: 100, Count: 5},
		{Op: OpDmaWait},
		{Op: OpLd, Dst: 1, Addr: 0},
	}
	if err := c.Run(prog); err != nil {
		t.Fatal(err)
	}
	got := c.Reg(1)
	for i, v := range vals {
		if got[i] != v {
			t.Fatalf("dma.in[%d] = %v, want %v", i, got[i], v)
		}
	}
}

func TestDmaErrors(t *testing.T) {
	c := newTestCore(4) // no HBM attached
	if err := c.Run([]Instr{{Op: OpDmaIn, Count: 1}}); err == nil {
		t.Fatal("dma.in without HBM accepted")
	}
	c = dmaCore(4)
	if err := c.Run([]Instr{{Op: OpDmaIn, Count: 0}}); err == nil {
		t.Fatal("zero-count dma.in accepted")
	}
	if err := c.Run([]Instr{{Op: OpDmaIn, HAddr: 1 << 40, Count: 8}}); err == nil {
		t.Fatal("oob HBM read accepted")
	}
}

func TestDmaOpNames(t *testing.T) {
	if OpDmaIn.String() != "dma.in" || OpDmaWait.String() != "dma.wait" {
		t.Fatalf("DMA op names wrong: %v %v", OpDmaIn, OpDmaWait)
	}
}

// The §2.1 claim: issuing DMA ahead of compute hides the transfer latency.
// A program that prefetches the next group during compute stalls less in
// dma.wait than one that fetches on demand.
func TestDoubleBufferingHidesTransfers(t *testing.T) {
	const dim = 8
	const groups = 6
	rng := mathx.NewRNG(4)
	w := randRows(dim, dim, rng)
	inputs := randRows(groups*RegRows, dim, rng)

	buildCore := func() *Core {
		c := dmaCore(dim)
		// Weights pre-resident in vmem at 0; input groups live in HBM.
		if err := PackRows(c.VMem, 0, w); err != nil {
			t.Fatal(err)
		}
		hbmImgs := NewVMem(int64(groups) * RegSize) // staging to build images
		if err := PackRows(hbmImgs, 0, inputs); err != nil {
			t.Fatal(err)
		}
		raw, err := hbmImgs.Read(0, int64(groups)*RegSize)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.hbm.Write(0, raw); err != nil {
			t.Fatal(err)
		}
		return c
	}

	weightGroups := (dim + RegRows - 1) / RegRows
	prologue := func() []Instr {
		var p []Instr
		for g := 0; g < weightGroups; g++ {
			p = append(p,
				Instr{Op: OpLd, Dst: 0, Addr: int64(g * RegSize)},
				Instr{Op: OpPushW, A: 0})
		}
		return p
	}
	// Per group: fetch to a staging vmem region, then push/pop + ALU work.
	stage := int64(200000)
	compute := func(buf int64) []Instr {
		return []Instr{
			{Op: OpLd, Dst: 1, Addr: buf},
			{Op: OpPush, A: 1},
			{Op: OpPop, Dst: 2},
			{Op: OpVMaxI, Dst: 2, A: 2, Imm: 0},
			{Op: OpSt, A: 2, Addr: buf},
		}
	}

	// On-demand: dma.in → wait → compute, per group.
	onDemand := buildCore()
	var progA []Instr
	progA = append(progA, prologue()...)
	for g := 0; g < groups; g++ {
		progA = append(progA,
			Instr{Op: OpDmaIn, Addr: stage, HAddr: int64(g * RegSize), Count: RegSize},
			Instr{Op: OpDmaWait})
		progA = append(progA, compute(stage)...)
	}
	if err := onDemand.Run(progA); err != nil {
		t.Fatal(err)
	}

	// Double-buffered: prefetch group g+1 before computing group g.
	pipelined := buildCore()
	var progB []Instr
	progB = append(progB, prologue()...)
	buf := func(g int) int64 { return stage + int64(g%2)*RegSize }
	progB = append(progB,
		Instr{Op: OpDmaIn, Addr: buf(0), HAddr: 0, Count: RegSize},
		Instr{Op: OpDmaWait})
	for g := 0; g < groups; g++ {
		if g+1 < groups {
			progB = append(progB,
				Instr{Op: OpDmaIn, Addr: buf(g + 1), HAddr: int64((g + 1) * RegSize), Count: RegSize})
		}
		progB = append(progB, compute(buf(g))...)
		if g+1 < groups {
			progB = append(progB, Instr{Op: OpDmaWait})
		}
	}
	if err := pipelined.Run(progB); err != nil {
		t.Fatal(err)
	}

	if pipelined.DMAWaitedCycles() >= onDemand.DMAWaitedCycles() {
		t.Fatalf("double buffering should stall less: pipelined=%d on-demand=%d",
			pipelined.DMAWaitedCycles(), onDemand.DMAWaitedCycles())
	}

	// Verify the last group's output against the reference.
	lastBuf := buf(groups - 1)
	got, err := pipelined.VMem.Read(lastBuf, RegSize)
	if err != nil {
		t.Fatal(err)
	}
	ref := systolic.Reference(inputs, w)
	for r := 0; r < RegRows; r++ {
		row := ref[(groups-1)*RegRows+r]
		for j := 0; j < dim; j++ {
			want := max32(row[j], 0)
			if diff := got[r*RegLanes+j] - want; diff > 1e-3 || diff < -1e-3 {
				t.Fatalf("pipelined output[%d][%d] = %v, want %v", r, j, got[r*RegLanes+j], want)
			}
		}
	}
}
