package isa

import (
	"errors"
	"fmt"
	"math"
)

// Extended vector-unit operations (§4: VUs "execute generic vector
// operations that cannot run on the SAs" — activations, reductions,
// normalization building blocks). These are the operators that make DNN
// workloads VU-intensive in the first place.
const (
	OpVMin OpCode = iota + 32
	OpVNeg
	OpVAbs
	OpVRecip // dst ← 1/a (Newton–Raphson seeded, as hardware would)
	OpVExp   // dst ← exp(a), range-limited SIMD approximation
	OpVSum   // dst[lane 0 of each row] ← Σ over the row's lanes (reduction)
	OpVBcast // dst ← broadcast of a's lane 0 across each row
	OpVSel   // dst ← a > 0 ? a : b (select, for leaky activations)
)

func init() {
	opNames[OpVMin] = "vmin"
	opNames[OpVNeg] = "vneg"
	opNames[OpVAbs] = "vabs"
	opNames[OpVRecip] = "vrecip"
	opNames[OpVExp] = "vexp"
	opNames[OpVSum] = "vsum"
	opNames[OpVBcast] = "vbcast"
	opNames[OpVSel] = "vsel"
}

// executeVectorExt handles the extended ALU opcodes.
func (c *Core) executeVectorExt(in Instr) error {
	a, b, dst := c.regs[in.A], c.regs[in.B], c.regs[in.Dst]
	switch in.Op {
	case OpVMin:
		for i := range dst {
			if a[i] < b[i] {
				dst[i] = a[i]
			} else {
				dst[i] = b[i]
			}
		}
	case OpVNeg:
		for i := range dst {
			dst[i] = -a[i]
		}
	case OpVAbs:
		for i := range dst {
			if a[i] < 0 {
				dst[i] = -a[i]
			} else {
				dst[i] = a[i]
			}
		}
	case OpVRecip:
		for i := range dst {
			if a[i] == 0 {
				dst[i] = float32(math.Inf(1))
			} else {
				dst[i] = 1 / a[i]
			}
		}
	case OpVExp:
		for i := range dst {
			// Clamp like SIMD hardware to avoid overflow traps.
			x := float64(a[i])
			if x > 80 {
				x = 80
			}
			if x < -80 {
				x = -80
			}
			dst[i] = float32(math.Exp(x))
		}
	case OpVSum:
		for r := 0; r < RegRows; r++ {
			var s float32
			for l := 0; l < RegLanes; l++ {
				s += a[r*RegLanes+l]
			}
			for l := 0; l < RegLanes; l++ {
				dst[r*RegLanes+l] = 0
			}
			dst[r*RegLanes] = s
		}
	case OpVBcast:
		for r := 0; r < RegRows; r++ {
			v := a[r*RegLanes]
			for l := 0; l < RegLanes; l++ {
				dst[r*RegLanes+l] = v
			}
		}
	case OpVSel:
		for i := range dst {
			if a[i] > 0 {
				dst[i] = a[i]
			} else {
				dst[i] = b[i]
			}
		}
	default:
		return fmt.Errorf("unknown extended vector opcode %v", in.Op)
	}
	return nil
}

// MLPLayer describes one fully-connected layer of a BuildMLP network.
type MLPLayer struct {
	Weights int64 // vmem address of the dim×dim weight images
	Bias    int64 // vmem address of the bias image
	ReLU    bool  // apply ReLU after bias
}

// BuildMLP compiles a multi-layer perceptron: each layer is a matmul on the
// SA followed by bias-add (and optional ReLU) on the VU, with layer i's
// output feeding layer i+1 — the dependent-layer structure that limits
// operator-level parallelism in the paper's Fig. 6 study.
func BuildMLP(l Layout, layers []MLPLayer) ([]Instr, error) {
	if len(layers) == 0 {
		return nil, errors.New("isa: MLP needs at least one layer")
	}
	const (
		rData = 0
		rBias = 1
		rAcc  = 2
	)
	var prog []Instr
	src := l.In
	for li, layer := range layers {
		// Install this layer's weights.
		for g := 0; g < l.weightGroups(); g++ {
			prog = append(prog,
				Instr{Op: OpLd, Dst: rData, Addr: layer.Weights + int64(g*RegSize)},
				Instr{Op: OpPushW, A: rData},
			)
		}
		prog = append(prog, Instr{Op: OpLd, Dst: rBias, Addr: layer.Bias})
		dst := l.Out
		if li < len(layers)-1 {
			// Intermediate activations ping-pong through the output region
			// offset by layer parity.
			dst = l.Out + int64((li%2+1))*int64(l.groups()*RegSize)
		}
		for g := 0; g < l.groups(); g++ {
			prog = append(prog,
				Instr{Op: OpLd, Dst: rData, Addr: src + int64(g*RegSize)},
				Instr{Op: OpPush, A: rData},
				Instr{Op: OpPop, Dst: rAcc},
				Instr{Op: OpVAdd, Dst: rAcc, A: rAcc, B: rBias},
			)
			if layer.ReLU {
				prog = append(prog, Instr{Op: OpVMaxI, Dst: rAcc, A: rAcc, Imm: 0})
			}
			prog = append(prog, Instr{Op: OpSt, A: rAcc, Addr: dst + int64(g*RegSize)})
		}
		src = dst
	}
	return prog, nil
}

// BuildSoftmaxRow compiles a per-row softmax over a register image at addr:
// shifted exp (max-subtract for stability), row-sum reduction, reciprocal,
// broadcast, multiply — all VU work, the kind of operator that makes
// recommendation and detection models VU-bound.
func BuildSoftmaxRow(addr, out int64) []Instr {
	const (
		rX    = 0
		rMax  = 1
		rTmp  = 2
		rSum  = 3
		rNorm = 4
	)
	return []Instr{
		{Op: OpLd, Dst: rX, Addr: addr},
		// Row max via iterated pairwise max against a broadcast: hardware
		// would tree-reduce; we approximate with sum-based normalization
		// after subtracting the row's first element as a cheap stabilizer.
		{Op: OpVBcast, Dst: rMax, A: rX},
		{Op: OpVSub, Dst: rTmp, A: rX, B: rMax},
		{Op: OpVExp, Dst: rTmp, A: rTmp},
		{Op: OpVSum, Dst: rSum, A: rTmp},
		{Op: OpVBcast, Dst: rSum, A: rSum},
		{Op: OpVRecip, Dst: rNorm, A: rSum},
		{Op: OpVMul, Dst: rTmp, A: rTmp, B: rNorm},
		{Op: OpSt, A: rTmp, Addr: out},
	}
}
