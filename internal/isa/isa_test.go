package isa

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"v10/internal/mathx"
	"v10/internal/systolic"
)

func newTestCore(dim int) *Core {
	return NewCore(systolic.New(dim), NewVMem(1<<20))
}

func TestOpCodeStringsAndCycles(t *testing.T) {
	if OpPush.String() != "push" || OpVMaxI.String() != "vmaxi" {
		t.Fatal("opcode names wrong")
	}
	if OpPush.Cycles() != 8 || OpPop.Cycles() != 8 || OpVAdd.Cycles() != 1 {
		t.Fatal("issue costs wrong (push/pop move 8 vectors in 8 cycles)")
	}
	if !strings.Contains((Instr{Op: OpLd, Dst: 3, Addr: 42}).String(), "ld v3, [42]") {
		t.Fatal("instruction rendering wrong")
	}
}

func TestVMemBounds(t *testing.T) {
	m := NewVMem(100)
	if err := m.Write(90, make([]float32, 20)); err == nil {
		t.Fatal("out-of-range write accepted")
	}
	if _, err := m.Read(-1, 10); err == nil {
		t.Fatal("negative read accepted")
	}
	if err := m.Write(0, []float32{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	got, err := m.Read(0, 3)
	if err != nil || got[2] != 3 {
		t.Fatalf("readback wrong: %v %v", got, err)
	}
}

func TestALUInstructions(t *testing.T) {
	c := newTestCore(4)
	a := make([]float32, RegSize)
	b := make([]float32, RegSize)
	for i := range a {
		a[i] = float32(i%7) - 3
		b[i] = float32(i % 5)
	}
	if err := c.VMem.Write(0, a); err != nil {
		t.Fatal(err)
	}
	if err := c.VMem.Write(RegSize, b); err != nil {
		t.Fatal(err)
	}
	prog := []Instr{
		{Op: OpLd, Dst: 1, Addr: 0},
		{Op: OpLd, Dst: 2, Addr: RegSize},
		{Op: OpVAdd, Dst: 3, A: 1, B: 2},
		{Op: OpVSub, Dst: 4, A: 1, B: 2},
		{Op: OpVMul, Dst: 5, A: 1, B: 2},
		{Op: OpVMax, Dst: 6, A: 1, B: 2},
		{Op: OpVAddI, Dst: 7, A: 1, Imm: 10},
		{Op: OpVMulI, Dst: 8, A: 1, Imm: 2},
		{Op: OpVMaxI, Dst: 9, A: 1, Imm: 0},
		{Op: OpSt, A: 3, Addr: 2 * RegSize},
	}
	if err := c.Run(prog); err != nil {
		t.Fatal(err)
	}
	r3, r9 := c.Reg(3), c.Reg(9)
	for i := range a {
		if r3[i] != a[i]+b[i] {
			t.Fatalf("vadd[%d] = %v, want %v", i, r3[i], a[i]+b[i])
		}
		if r9[i] != max32(a[i], 0) {
			t.Fatalf("relu[%d] = %v", i, r9[i])
		}
	}
	stored, _ := c.VMem.Read(2*RegSize, RegSize)
	if stored[5] != a[5]+b[5] {
		t.Fatal("st did not persist")
	}
}

func TestRunErrors(t *testing.T) {
	c := newTestCore(4)
	if err := c.Run([]Instr{{Op: OpLd, Dst: 0, Addr: 1 << 40}}); err == nil {
		t.Fatal("oob load accepted")
	}
	c = newTestCore(4)
	if err := c.Run([]Instr{{Op: OpPop, Dst: 0}}); err == nil {
		t.Fatal("pop on empty pipeline accepted")
	}
	c = newTestCore(4)
	if err := c.Run([]Instr{{Op: OpCode(200)}}); err == nil {
		t.Fatal("unknown opcode accepted")
	}
}

// End-to-end: a compiled FC+bias+ReLU layer on the modeled core matches the
// float reference.
func TestFCReLULayerEndToEnd(t *testing.T) {
	const dim, rows = 8, 24
	rng := mathx.NewRNG(5)
	c := newTestCore(dim)

	layout := Layout{
		Dim: dim, Rows: rows,
		In: 0, Weights: 10000, Bias: 20000, Out: 30000,
	}
	if err := layout.Validate(c.VMem.Words()); err != nil {
		t.Fatal(err)
	}

	in := randRows(rows, dim, rng)
	w := randRows(dim, dim, rng)
	bias := make([]float32, dim)
	for i := range bias {
		bias[i] = float32(rng.Uniform(-1, 1))
	}

	if err := PackRows(c.VMem, layout.In, in); err != nil {
		t.Fatal(err)
	}
	if err := PackRows(c.VMem, layout.Weights, w); err != nil {
		t.Fatal(err)
	}
	biasImg := make([][]float32, RegRows)
	for r := range biasImg {
		biasImg[r] = bias // broadcast to every row of the register
	}
	if err := PackRows(c.VMem, layout.Bias, biasImg); err != nil {
		t.Fatal(err)
	}

	prog, err := BuildFCReLU(layout)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(prog); err != nil {
		t.Fatal(err)
	}

	got, err := UnpackRows(c.VMem, layout.Out, rows, dim)
	if err != nil {
		t.Fatal(err)
	}
	want := systolic.Reference(in, w)
	for r := range want {
		for j := range want[r] {
			ref := max32(want[r][j]+bias[j], 0)
			if math.Abs(float64(got[r][j]-ref)) > 1e-3 {
				t.Fatalf("out[%d][%d] = %v, want %v", r, j, got[r][j], ref)
			}
		}
	}
	if c.Cycles() == 0 {
		t.Fatal("no cycles accounted")
	}
}

// §3.3: VU preemption saves the PC and registers only, and a preempted
// program finishes with identical results after another tenant used the VU.
func TestVUPreemptResume(t *testing.T) {
	const dim = 4
	rng := mathx.NewRNG(9)
	run := func(preemptAt int) []float32 {
		c := newTestCore(dim)
		vals := make([]float32, RegSize)
		for i := range vals {
			vals[i] = float32(rng.Uniform(-5, 5))
		}
		// Deterministic per call series: reseed.
		rng = mathx.NewRNG(9)
		for i := range vals {
			vals[i] = float32(rng.Uniform(-5, 5))
		}
		if err := c.VMem.Write(0, vals); err != nil {
			t.Fatal(err)
		}
		prog := []Instr{
			{Op: OpLd, Dst: 1, Addr: 0},
			{Op: OpVMulI, Dst: 2, A: 1, Imm: 3},
			{Op: OpVAddI, Dst: 2, A: 2, Imm: -1},
			{Op: OpVMax, Dst: 2, A: 2, B: 1},
			{Op: OpVMaxI, Dst: 2, A: 2, Imm: 0},
			{Op: OpSt, A: 2, Addr: RegSize},
		}
		if preemptAt < 0 {
			if err := c.Run(prog); err != nil {
				t.Fatal(err)
			}
		} else {
			ctx, err := c.RunPreemptible(prog, preemptAt, 500000)
			if err != nil {
				t.Fatal(err)
			}
			// Another tenant trashes the registers.
			other := []Instr{
				{Op: OpVAddI, Dst: 1, A: 1, Imm: 999},
				{Op: OpVAddI, Dst: 2, A: 2, Imm: 999},
			}
			// Execute the intruder directly (same VU, different context).
			for _, in := range other {
				if err := c.execute(in); err != nil {
					t.Fatal(err)
				}
			}
			c.pc = 0 // intruder's own PC churn
			if err := c.ResumeRun(ctx, prog); err != nil {
				t.Fatal(err)
			}
		}
		out, err := c.VMem.Read(RegSize, RegSize)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	want := run(-1)
	for _, at := range []int{0, 1, 3, 5, 6} {
		got := run(at)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("preempt@%d: output[%d] = %v, want %v", at, i, got[i], want[i])
			}
		}
	}
}

func TestLayoutValidation(t *testing.T) {
	bad := []Layout{
		{Dim: 0, Rows: 8},
		{Dim: 200, Rows: 8},
		{Dim: 8, Rows: 7},
		{Dim: 8, Rows: 8, Out: 1 << 40},
	}
	for i, l := range bad {
		if l.Validate(1<<20) == nil {
			t.Errorf("bad layout %d accepted", i)
		}
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	m := NewVMem(1 << 16)
	rng := mathx.NewRNG(3)
	rows := randRows(16, 5, rng)
	if err := PackRows(m, 100, rows); err != nil {
		t.Fatal(err)
	}
	got, err := UnpackRows(m, 100, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	for r := range rows {
		for j := range rows[r] {
			if got[r][j] != rows[r][j] {
				t.Fatalf("roundtrip[%d][%d] differs", r, j)
			}
		}
	}
}

// Property: the compiled FC+ReLU layer matches the reference for random
// dims, rows, weights and inputs.
func TestFCReLUProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		dim := 1 + rng.Intn(12)
		rows := RegRows * (1 + rng.Intn(4))
		c := newTestCore(dim)
		layout := Layout{Dim: dim, Rows: rows, In: 0, Weights: 40000, Bias: 80000, Out: 120000}
		in := randRows(rows, dim, rng)
		w := randRows(dim, dim, rng)
		if PackRows(c.VMem, layout.In, in) != nil || PackRows(c.VMem, layout.Weights, w) != nil {
			return false
		}
		zeroBias := make([][]float32, RegRows)
		for r := range zeroBias {
			zeroBias[r] = make([]float32, dim)
		}
		if PackRows(c.VMem, layout.Bias, zeroBias) != nil {
			return false
		}
		prog, err := BuildFCReLU(layout)
		if err != nil {
			return false
		}
		if c.Run(prog) != nil {
			return false
		}
		got, err := UnpackRows(c.VMem, layout.Out, rows, dim)
		if err != nil {
			return false
		}
		want := systolic.Reference(in, w)
		for r := range want {
			for j := range want[r] {
				if math.Abs(float64(got[r][j]-max32(want[r][j], 0))) > 1e-2 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func randRows(n, d int, rng *mathx.RNG) [][]float32 {
	m := make([][]float32, n)
	for i := range m {
		m[i] = make([]float32, d)
		for j := range m[i] {
			m[i][j] = float32(rng.Uniform(-2, 2))
		}
	}
	return m
}
