package isa

import (
	"math"
	"testing"

	"v10/internal/mathx"
	"v10/internal/systolic"
)

func TestExtendedALUOps(t *testing.T) {
	c := newTestCore(4)
	a := make([]float32, RegSize)
	b := make([]float32, RegSize)
	rng := mathx.NewRNG(2)
	for i := range a {
		a[i] = float32(rng.Uniform(-4, 4))
		b[i] = float32(rng.Uniform(-4, 4))
	}
	if err := c.VMem.Write(0, a); err != nil {
		t.Fatal(err)
	}
	if err := c.VMem.Write(RegSize, b); err != nil {
		t.Fatal(err)
	}
	prog := []Instr{
		{Op: OpLd, Dst: 1, Addr: 0},
		{Op: OpLd, Dst: 2, Addr: RegSize},
		{Op: OpVMin, Dst: 3, A: 1, B: 2},
		{Op: OpVNeg, Dst: 4, A: 1},
		{Op: OpVAbs, Dst: 5, A: 1},
		{Op: OpVRecip, Dst: 6, A: 1},
		{Op: OpVExp, Dst: 7, A: 1},
		{Op: OpVSel, Dst: 8, A: 1, B: 2},
	}
	if err := c.Run(prog); err != nil {
		t.Fatal(err)
	}
	r3, r4, r5, r6, r7, r8 := c.Reg(3), c.Reg(4), c.Reg(5), c.Reg(6), c.Reg(7), c.Reg(8)
	for i := range a {
		if r3[i] != min32(a[i], b[i]) {
			t.Fatalf("vmin[%d] wrong", i)
		}
		if r4[i] != -a[i] {
			t.Fatalf("vneg[%d] wrong", i)
		}
		if r5[i] != abs32(a[i]) {
			t.Fatalf("vabs[%d] wrong", i)
		}
		if math.Abs(float64(r6[i]-1/a[i])) > 1e-6*math.Abs(float64(1/a[i])) {
			t.Fatalf("vrecip[%d] wrong", i)
		}
		want := float32(math.Exp(float64(a[i])))
		if math.Abs(float64(r7[i]-want)) > 1e-4*float64(want) {
			t.Fatalf("vexp[%d] = %v, want %v", i, r7[i], want)
		}
		sel := b[i]
		if a[i] > 0 {
			sel = a[i]
		}
		if r8[i] != sel {
			t.Fatalf("vsel[%d] wrong", i)
		}
	}
}

func TestVSumAndBroadcast(t *testing.T) {
	c := newTestCore(4)
	a := make([]float32, RegSize)
	for r := 0; r < RegRows; r++ {
		for l := 0; l < RegLanes; l++ {
			a[r*RegLanes+l] = float32(r + 1) // row r sums to 128·(r+1)
		}
	}
	if err := c.VMem.Write(0, a); err != nil {
		t.Fatal(err)
	}
	prog := []Instr{
		{Op: OpLd, Dst: 1, Addr: 0},
		{Op: OpVSum, Dst: 2, A: 1},
		{Op: OpVBcast, Dst: 3, A: 2},
	}
	if err := c.Run(prog); err != nil {
		t.Fatal(err)
	}
	r2, r3 := c.Reg(2), c.Reg(3)
	for r := 0; r < RegRows; r++ {
		want := float32(RegLanes * (r + 1))
		if r2[r*RegLanes] != want {
			t.Fatalf("vsum row %d = %v, want %v", r, r2[r*RegLanes], want)
		}
		if r2[r*RegLanes+5] != 0 {
			t.Fatal("vsum should zero non-leading lanes")
		}
		for l := 0; l < RegLanes; l++ {
			if r3[r*RegLanes+l] != want {
				t.Fatalf("vbcast row %d lane %d wrong", r, l)
			}
		}
	}
}

func TestExtendedOpNames(t *testing.T) {
	for op, want := range map[OpCode]string{
		OpVMin: "vmin", OpVExp: "vexp", OpVSum: "vsum", OpVSel: "vsel",
	} {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	c := newTestCore(4)
	rng := mathx.NewRNG(6)
	x := make([]float32, RegSize)
	for i := range x {
		x[i] = float32(rng.Uniform(-3, 3))
	}
	if err := c.VMem.Write(0, x); err != nil {
		t.Fatal(err)
	}
	if err := c.Run(BuildSoftmaxRow(0, RegSize)); err != nil {
		t.Fatal(err)
	}
	out, err := c.VMem.Read(RegSize, RegSize)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < RegRows; r++ {
		var sum float64
		for l := 0; l < RegLanes; l++ {
			v := out[r*RegLanes+l]
			if v < 0 || v > 1 {
				t.Fatalf("softmax[%d][%d] = %v out of [0,1]", r, l, v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-4 {
			t.Fatalf("softmax row %d sums to %v", r, sum)
		}
	}
}

// A 2-layer MLP on the modeled core matches composing the reference layers.
func TestBuildMLPTwoLayers(t *testing.T) {
	const dim, rows = 8, 16
	rng := mathx.NewRNG(8)
	c := newTestCore(dim)
	layout := Layout{Dim: dim, Rows: rows, In: 0, Weights: 0, Bias: 0, Out: 300000}

	w1 := randRows(dim, dim, rng)
	w2 := randRows(dim, dim, rng)
	in := randRows(rows, dim, rng)
	zero := make([][]float32, RegRows)
	for r := range zero {
		zero[r] = make([]float32, dim)
	}

	const (
		aW1 = 100000
		aW2 = 120000
		aB  = 140000
	)
	for _, p := range []struct {
		addr int64
		rows [][]float32
	}{
		{layout.In, in}, {aW1, w1}, {aW2, w2}, {aB, zero},
	} {
		if err := PackRows(c.VMem, p.addr, p.rows); err != nil {
			t.Fatal(err)
		}
	}
	prog, err := BuildMLP(layout, []MLPLayer{
		{Weights: aW1, Bias: aB, ReLU: true},
		{Weights: aW2, Bias: aB, ReLU: false},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(prog); err != nil {
		t.Fatal(err)
	}
	got, err := UnpackRows(c.VMem, layout.Out, rows, dim)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: relu(in·W1)·W2 with bf16 quantization at each matmul input.
	h := systolic.Reference(in, w1)
	for r := range h {
		for j := range h[r] {
			h[r][j] = max32(h[r][j], 0)
		}
	}
	want := systolic.Reference(h, w2)
	for r := range want {
		for j := range want[r] {
			if math.Abs(float64(got[r][j]-want[r][j])) > 1e-2*math.Max(1, math.Abs(float64(want[r][j]))) {
				t.Fatalf("mlp[%d][%d] = %v, want %v", r, j, got[r][j], want[r][j])
			}
		}
	}
}

func TestBuildMLPNeedsLayers(t *testing.T) {
	if _, err := BuildMLP(Layout{Dim: 4, Rows: 8}, nil); err == nil {
		t.Fatal("empty MLP accepted")
	}
}

func min32(a, b float32) float32 {
	if a < b {
		return a
	}
	return b
}

func abs32(a float32) float32 {
	if a < 0 {
		return -a
	}
	return a
}
