package isa

import "fmt"

// Layout describes where a fully-connected layer's tensors live in vector
// memory. All addresses are float32 word offsets. Inputs and outputs are
// stored as groups of RegRows rows × RegLanes lanes (one register image per
// group, the array's dim occupying the low lanes).
type Layout struct {
	Dim     int   // systolic array / layer dimension
	Rows    int   // input rows (must be a multiple of RegRows)
	In      int64 // input activations
	Weights int64 // dim×dim weight matrix, stored as ⌈dim/RegRows⌉ register images
	Bias    int64 // one register image broadcast-added to each output group
	Out     int64 // output activations
}

// groups returns the number of RegRows-row groups in the input.
func (l Layout) groups() int { return l.Rows / RegRows }

// weightGroups returns the number of register images holding the weights.
func (l Layout) weightGroups() int { return (l.Dim + RegRows - 1) / RegRows }

// Validate checks the layout against a vmem capacity.
func (l Layout) Validate(vmemWords int64) error {
	if l.Dim <= 0 || l.Dim > RegLanes {
		return fmt.Errorf("isa: layer dim %d out of range (1..%d)", l.Dim, RegLanes)
	}
	if l.Rows <= 0 || l.Rows%RegRows != 0 {
		return fmt.Errorf("isa: rows %d must be a positive multiple of %d", l.Rows, RegRows)
	}
	need := []struct {
		name  string
		addr  int64
		words int64
	}{
		{"inputs", l.In, int64(l.groups()) * RegSize},
		{"weights", l.Weights, int64(l.weightGroups()) * RegSize},
		{"bias", l.Bias, RegSize},
		{"outputs", l.Out, int64(l.groups()) * RegSize},
	}
	for _, n := range need {
		if n.addr < 0 || n.addr+n.words > vmemWords {
			return fmt.Errorf("isa: %s [%d, %d) exceed vmem (%d words)", n.name, n.addr, n.addr+n.words, vmemWords)
		}
	}
	return nil
}

// BuildFCReLU compiles a fully-connected layer with bias and ReLU into an
// instruction program: out = max(0, in·W + bias). This is the operator shape
// the paper's §2.1 walk-through describes (matmul on the SA, element-wise
// post-processing on the VU).
func BuildFCReLU(l Layout) ([]Instr, error) {
	const (
		rData = 0 // staging register for inputs/outputs
		rBias = 1
		rAcc  = 2
	)
	var prog []Instr
	// Load and install weights.
	for g := 0; g < l.weightGroups(); g++ {
		prog = append(prog,
			Instr{Op: OpLd, Dst: rData, Addr: l.Weights + int64(g*RegSize)},
			Instr{Op: OpPushW, A: rData},
		)
	}
	// Bias stays resident.
	prog = append(prog, Instr{Op: OpLd, Dst: rBias, Addr: l.Bias})
	// Stream the input groups.
	for g := 0; g < l.groups(); g++ {
		in := l.In + int64(g*RegSize)
		out := l.Out + int64(g*RegSize)
		prog = append(prog,
			Instr{Op: OpLd, Dst: rData, Addr: in},
			Instr{Op: OpPush, A: rData},
			Instr{Op: OpPop, Dst: rAcc},
			Instr{Op: OpVAdd, Dst: rAcc, A: rAcc, B: rBias},
			Instr{Op: OpVMaxI, Dst: rAcc, A: rAcc, Imm: 0},
			Instr{Op: OpSt, A: rAcc, Addr: out},
		)
	}
	return prog, nil
}

// PackRows writes rows (each of length dim) into vmem as register images at
// addr, padding lanes beyond dim — and any missing rows of the final group —
// with zeros.
func PackRows(m *VMem, addr int64, rows [][]float32) error {
	groups := (len(rows) + RegRows - 1) / RegRows
	buf := make([]float32, RegSize)
	for g := 0; g < groups; g++ {
		for i := range buf {
			buf[i] = 0
		}
		for r := 0; r < RegRows; r++ {
			idx := g*RegRows + r
			if idx < len(rows) {
				copy(buf[r*RegLanes:], rows[idx])
			}
		}
		if err := m.Write(addr+int64(g*RegSize), buf); err != nil {
			return err
		}
	}
	return nil
}

// UnpackRows reads n rows of width dim stored as register images at addr.
func UnpackRows(m *VMem, addr int64, n, dim int) ([][]float32, error) {
	if n%RegRows != 0 {
		return nil, fmt.Errorf("isa: row count %d not a multiple of %d", n, RegRows)
	}
	out := make([][]float32, 0, n)
	for g := 0; g*RegRows < n; g++ {
		img, err := m.Read(addr+int64(g*RegSize), RegSize)
		if err != nil {
			return nil, err
		}
		for r := 0; r < RegRows; r++ {
			row := make([]float32, dim)
			copy(row, img[r*RegLanes:r*RegLanes+dim])
			out = append(out, row)
		}
	}
	return out, nil
}
