package workload

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func TestReadTraceFixture(t *testing.T) {
	tr, err := ReadTraceFile(filepath.Join("testdata", "sample.trace"))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Streams) != 3 {
		t.Fatalf("fixture has %d streams, want 3", len(tr.Streams))
	}
	names := []string{"steady", "bursty", "sparse"}
	for i, st := range tr.Streams {
		if st.Name != names[i] {
			t.Errorf("stream %d = %q, want %q", i, st.Name, names[i])
		}
		if st.MeanRateHz() <= 0 {
			t.Errorf("stream %q has no rate", st.Name)
		}
	}
	// steady is ~2 ms gaps → ~500 Hz native.
	if r := tr.Streams[0].MeanRateHz(); math.Abs(r-500) > 5 {
		t.Errorf("steady native rate %v Hz, want ≈500", r)
	}
}

// TestTraceRoundTrip is the satellite-3 oracle: parse → normalize → emit →
// parse reproduces the normalized trace exactly.
func TestTraceRoundTrip(t *testing.T) {
	tr, err := ReadTraceFile(filepath.Join("testdata", "sample.trace"))
	if err != nil {
		t.Fatal(err)
	}
	norm := &Trace{}
	for _, st := range tr.Streams {
		ns := st.Normalized(750)
		if r := ns.MeanRateHz(); math.Abs(r-750)/750 > 1e-12 {
			t.Fatalf("stream %q normalized rate %v, want 750", st.Name, r)
		}
		norm.Streams = append(norm.Streams, ns)
	}
	var buf bytes.Buffer
	if err := norm.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ParseTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("re-parsing emitted trace: %v\n%s", err, buf.String())
	}
	if !reflect.DeepEqual(norm.Streams, back.Streams) {
		t.Fatal("trace did not round-trip bit-exactly")
	}
}

func TestTraceSpecsCycleStreams(t *testing.T) {
	tr, err := ReadTraceFile(filepath.Join("testdata", "sample.trace"))
	if err != nil {
		t.Fatal(err)
	}
	specs := tr.Specs(7, 300)
	if len(specs) != 7 {
		t.Fatalf("got %d specs, want 7", len(specs))
	}
	for i, sp := range specs {
		if sp.Process != Replay || sp.RateHz != 300 {
			t.Fatalf("spec %d = %+v, want Replay at 300 Hz", i, sp)
		}
		want := tr.Streams[i%3].GapsSec
		if !reflect.DeepEqual(sp.GapsSec, want) {
			t.Fatalf("spec %d gaps don't cycle through streams", i)
		}
	}
}

func TestNormalizedZeroKeepsNative(t *testing.T) {
	st := Stream{Name: "s", GapsSec: []float64{0.5, 0.25}}
	if got := st.Normalized(0); !reflect.DeepEqual(got, st) {
		t.Fatalf("Normalized(0) = %+v, want unchanged", got)
	}
}

func TestParseTraceErrors(t *testing.T) {
	for _, tc := range []struct{ name, in, want string }{
		{"empty", "# only comments\n", "no streams"},
		{"short line", "lonely\n", "want <name> <gap>"},
		{"bad gap", "s 0.1 nope\n", "bad gap"},
		{"negative gap", "s 0.1 -0.2\n", "bad gap"},
		{"zero rate", "s 0 0 0\n", "no realizable rate"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseTrace(strings.NewReader(tc.in))
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("ParseTrace err = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestReplayTenantsRotate(t *testing.T) {
	// Tenants replaying the same stream must not arrive in lockstep: the
	// seeded rotation starts each tenant at a different gap offset.
	e := testEngine()
	spec := Spec{Process: Replay, GapsSec: []float64{0.0004, 0.0009, 0.0023, 0.0011, 0.0031, 0.0016}}
	a, err := e.Schedule(0, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Schedule(1, spec)
	if err != nil {
		t.Fatal(err)
	}
	if equalInt64s(a, b) {
		t.Fatal("two tenants replay in lockstep")
	}
}
