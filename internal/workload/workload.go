// Package workload is the production-trace traffic engine: it turns
// per-tenant traffic descriptions (Spec) into deterministic absolute
// arrival-cycle schedules consumable by sched.Options.ArrivalCycles and the
// fleet dispatcher (fleet.Options.Arrivals).
//
// Real NPU multi-tenancy is not stationary Poisson load: production traces
// are bursty, phase-structured, and heavy-tailed, and V10-style collocation
// wins are largest exactly when tenant demand is anti-correlated. The engine
// therefore supports, beyond Poisson:
//
//   - trace replay from files with rate normalization and per-tenant
//     interarrival scaling (the vhive/invitro production-loader idiom),
//   - diurnal rate curves (inhomogeneous Poisson via thinning),
//   - MMPP flash-crowd bursts (2-state Markov-modulated Poisson),
//   - tenant churn (arrival/departure windows mid-run),
//   - heavy-tailed request-size mixes (mix.go), and
//   - the LLM prefill/decode flagship scenario (llm.go): prefill tenants are
//     SA/compute-bound, decode tenants are VU/memory-bound — the ideal V10
//     collocation pair (FlexNPU).
//
// Everything is seeded and bit-deterministic: tenant t's schedule depends
// only on (Engine.Seed, t, its Spec), never on the fleet size, core count,
// or GOMAXPROCS.
package workload

import "fmt"

// Process identifies an arrival process.
type Process string

// Supported arrival processes.
const (
	// Poisson is a stationary open-loop Poisson stream at RateHz.
	Poisson Process = "poisson"
	// Uniform spaces arrivals exactly 1/RateHz apart (invitro's uniform mode).
	Uniform Process = "uniform"
	// Diurnal is an inhomogeneous Poisson process whose rate follows a raised
	// cosine with mean RateHz: rate(t) = RateHz·(1 + Amplitude·cos(2π·(t −
	// PhaseFrac·Period)/Period)). The peak sits at PhaseFrac·Period, so two
	// classes half a period apart have anti-correlated demand.
	Diurnal Process = "diurnal"
	// MMPP is a 2-state Markov-modulated Poisson process: a baseline state
	// and a flash-crowd burst state running BurstFactor× hotter, occupied a
	// BurstFrac fraction of the time, with mean dwell BurstDwellCycles. The
	// long-run mean rate is exactly RateHz.
	MMPP Process = "mmpp"
	// Replay replays recorded interarrival gaps (GapsSec), cycling through
	// them until the horizon; RateHz > 0 rescales the gaps so the realized
	// mean rate matches (invitro's rate normalization), RateHz == 0 keeps
	// the trace's native rate.
	Replay Process = "trace"
)

// ParseProcess maps a CLI spelling to a Process.
func ParseProcess(s string) (Process, error) {
	switch Process(s) {
	case Poisson, Uniform, Diurnal, MMPP, Replay:
		return Process(s), nil
	}
	return "", fmt.Errorf("workload: unknown arrival process %q (want poisson, uniform, diurnal, mmpp, or trace)", s)
}

// Spec describes one tenant's traffic over a run horizon. The zero value of
// every optional knob picks a documented default; only Process and (except
// for Replay) RateHz are required.
type Spec struct {
	Process Process `json:"process"`

	// RateHz is the tenant's mean arrival rate. Every process realizes this
	// long-run mean exactly (in expectation), so sweeps stay comparable
	// across processes. Replay treats 0 as "keep the trace's native rate".
	RateHz float64 `json:"rate_hz,omitempty"`

	// Amplitude is the Diurnal peak deviation from the mean, in [0, 1]
	// (default 0.8: the peak rate is 1.8× the mean, the trough 0.2×).
	Amplitude float64 `json:"amplitude,omitempty"`
	// PeriodCycles is the Diurnal period (default: the engine horizon, one
	// "day" per run).
	PeriodCycles int64 `json:"period_cycles,omitempty"`
	// PhaseFrac offsets the Diurnal peak as a fraction of the period.
	PhaseFrac float64 `json:"phase_frac,omitempty"`

	// BurstFactor is the MMPP burst-state rate multiplier (default 8).
	BurstFactor float64 `json:"burst_factor,omitempty"`
	// BurstFrac is the long-run fraction of time spent bursting, in (0, 1)
	// (default 0.1).
	BurstFrac float64 `json:"burst_frac,omitempty"`
	// BurstDwellCycles is the mean burst dwell time (default horizon/64).
	BurstDwellCycles int64 `json:"burst_dwell_cycles,omitempty"`

	// StartCycle / EndCycle bound the tenant's active window (tenant churn):
	// arrivals are generated only in [StartCycle, min(EndCycle, horizon)).
	// EndCycle 0 means the full horizon. Phase-structured processes keep
	// absolute time, so a late joiner still peaks with its class.
	StartCycle int64 `json:"start_cycle,omitempty"`
	EndCycle   int64 `json:"end_cycle,omitempty"`

	// GapsSec is Replay's recorded interarrival-gap stream in seconds
	// (see Trace / ParseTrace for the file format).
	GapsSec []float64 `json:"gaps_sec,omitempty"`
}

// withDefaults fills the documented defaults against a horizon.
func (s Spec) withDefaults(horizon int64) Spec {
	if s.Process == Diurnal && s.Amplitude == 0 {
		s.Amplitude = 0.8
	}
	if s.PeriodCycles == 0 {
		s.PeriodCycles = horizon
	}
	if s.BurstFactor == 0 {
		s.BurstFactor = 8
	}
	if s.BurstFrac == 0 {
		s.BurstFrac = 0.1
	}
	if s.BurstDwellCycles == 0 {
		s.BurstDwellCycles = horizon / 64
		if s.BurstDwellCycles < 1 {
			s.BurstDwellCycles = 1
		}
	}
	if s.EndCycle == 0 || s.EndCycle > horizon {
		s.EndCycle = horizon
	}
	return s
}

// validate rejects malformed specs (after withDefaults).
func (s Spec) validate() error {
	switch s.Process {
	case Poisson, Uniform, Diurnal, MMPP, Replay:
	default:
		return fmt.Errorf("workload: unknown arrival process %q", s.Process)
	}
	if s.Process == Replay {
		if len(s.GapsSec) == 0 {
			return fmt.Errorf("workload: trace replay needs a non-empty gap stream")
		}
		var sum float64
		for i, g := range s.GapsSec {
			if g < 0 || isBad(g) {
				return fmt.Errorf("workload: trace gap %d is %v (want finite, >= 0)", i, g)
			}
			sum += g
		}
		if sum <= 0 {
			return fmt.Errorf("workload: trace gaps sum to zero — no realizable rate")
		}
		if s.RateHz < 0 || isBad(s.RateHz) {
			return fmt.Errorf("workload: invalid trace rate %v", s.RateHz)
		}
	} else if !(s.RateHz > 0) || isBad(s.RateHz) {
		return fmt.Errorf("workload: %s process needs RateHz > 0, got %v", s.Process, s.RateHz)
	}
	if s.Amplitude < 0 || s.Amplitude > 1 {
		return fmt.Errorf("workload: diurnal amplitude %v outside [0, 1]", s.Amplitude)
	}
	if s.PhaseFrac < 0 || s.PhaseFrac >= 1 {
		return fmt.Errorf("workload: phase fraction %v outside [0, 1)", s.PhaseFrac)
	}
	if s.BurstFactor < 1 {
		return fmt.Errorf("workload: burst factor %v < 1", s.BurstFactor)
	}
	if s.BurstFrac <= 0 || s.BurstFrac >= 1 {
		return fmt.Errorf("workload: burst fraction %v outside (0, 1)", s.BurstFrac)
	}
	if s.BurstDwellCycles < 1 {
		return fmt.Errorf("workload: burst dwell %d < 1", s.BurstDwellCycles)
	}
	if s.PeriodCycles < 1 {
		return fmt.Errorf("workload: diurnal period %d < 1", s.PeriodCycles)
	}
	if s.StartCycle < 0 {
		return fmt.Errorf("workload: negative start cycle %d", s.StartCycle)
	}
	if s.EndCycle <= s.StartCycle {
		return fmt.Errorf("workload: active window [%d, %d) is empty", s.StartCycle, s.EndCycle)
	}
	return nil
}

func isBad(f float64) bool { return f != f || f > 1e308 || f < -1e308 }
