package workload

import (
	"reflect"
	"testing"

	"v10/internal/npu"
	"v10/internal/trace"
)

// fuSplit sums FU-occupancy cycles by kind over a few requests.
func fuSplit(t *testing.T, w *trace.Workload) (sa, vu, hbm, cycles float64) {
	t.Helper()
	for r := 0; r < 8; r++ {
		g := w.Request(r)
		if len(g.Ops) == 0 {
			t.Fatal("empty request graph")
		}
		for _, op := range g.Ops {
			switch op.Kind {
			case trace.KindSA:
				sa += float64(op.Compute)
			case trace.KindVU:
				vu += float64(op.Compute)
			}
			hbm += op.HBMBytes
			cycles += float64(op.Compute + op.Stall)
		}
	}
	return
}

// TestPrefillDecodeSkew: the flagship pair must have opposite SA/VU skew and
// opposite HBM pressure — that separation is what the advisor's feature
// vector keys on.
func TestPrefillDecodeSkew(t *testing.T) {
	cfg := npu.DefaultConfig()
	pre := Prefill("p", 8, 512, 1, cfg)
	dec := Decode("d", 8, 1024, 2, cfg)

	pSA, pVU, pHBM, pCyc := fuSplit(t, pre)
	dSA, dVU, dHBM, dCyc := fuSplit(t, dec)

	if pSA < 5*pVU {
		t.Errorf("prefill SA/VU = %.0f/%.0f, want SA-dominant", pSA, pVU)
	}
	if dVU < 3*dSA {
		t.Errorf("decode SA/VU = %.0f/%.0f, want VU-dominant", dSA, dVU)
	}
	bpc := cfg.HBMBytesPerCycle()
	pUtil := pHBM / (pCyc * bpc)
	dUtil := dHBM / (dCyc * bpc)
	if dUtil < 2.5*pUtil {
		t.Errorf("HBM util prefill %.2f vs decode %.2f, want decode ≥2.5× hotter", pUtil, dUtil)
	}
	if dUtil >= 1 {
		t.Errorf("decode solo HBM util %.2f ≥ 1 — a single tenant must fit under the interface", dUtil)
	}
	// Decode requests are much shorter than prefill at the reference shapes.
	if pCyc < 2*dCyc {
		t.Errorf("request lengths prefill %.0f vs decode %.0f, want prefill ≥2×", pCyc, dCyc)
	}
}

func TestLLMScaling(t *testing.T) {
	cfg := npu.DefaultConfig()
	_, _, _, small := fuSplit(t, Prefill("s", 1, 128, 1, cfg))
	_, _, _, large := fuSplit(t, Prefill("l", 16, 2048, 1, cfg))
	if large < 20*small {
		t.Errorf("prefill cycles small=%.0f large=%.0f — should scale with batch×prompt", small, large)
	}
	_, _, _, shortCtx := fuSplit(t, Decode("s", 8, 128, 1, cfg))
	_, _, _, longCtx := fuSplit(t, Decode("l", 8, 4096, 1, cfg))
	if longCtx < 1.5*shortCtx {
		t.Errorf("decode cycles ctx128=%.0f ctx4096=%.0f — KV reads should lengthen decode", shortCtx, longCtx)
	}
}

func TestLLMDeterminismAndReuse(t *testing.T) {
	cfg := npu.DefaultConfig()
	w := Decode("d", 8, 1024, 99, cfg)
	fresh := w.Request(3)
	again := w.Request(3)
	if !reflect.DeepEqual(fresh.Ops, again.Ops) {
		t.Fatal("same request index produced different graphs")
	}
	scratch, owned := w.RequestInto(0, nil)
	if !owned {
		t.Fatal("reusable workload should report caller-owned graphs")
	}
	reused, _ := w.RequestInto(3, scratch)
	if !reflect.DeepEqual(fresh.Ops, reused.Ops) {
		t.Fatal("buffer-reusing path diverged from fresh generation")
	}
	w2 := Decode("d", 8, 1024, 100, cfg)
	if reflect.DeepEqual(w.Request(0).Ops, w2.Request(0).Ops) {
		t.Fatal("different seeds produced identical jitter")
	}
}

func TestPrefillDecodeMix(t *testing.T) {
	cfg := npu.DefaultConfig()
	m := PrefillDecodeMix(10, 200, cfg, 5)
	if len(m.Workloads) != 10 || len(m.Specs) != 10 {
		t.Fatalf("mix sizes %d/%d, want 10/10", len(m.Workloads), len(m.Specs))
	}
	seen := map[string]bool{}
	var nPre, nDec int
	for i, w := range m.Workloads {
		if seen[w.Name] {
			t.Fatalf("duplicate tenant name %q — the pair-profile cache would alias", w.Name)
		}
		seen[w.Name] = true
		sp := m.Specs[i]
		if sp.Process != Diurnal {
			t.Fatalf("tenant %d process %q, want diurnal", i, sp.Process)
		}
		switch w.Model {
		case "LLM-Prefill":
			nPre++
			if sp.PhaseFrac != 0 || sp.RateHz != 200 {
				t.Fatalf("prefill tenant %d spec %+v", i, sp)
			}
		case "LLM-Decode":
			nDec++
			if sp.PhaseFrac != 0.5 || sp.RateHz != 800 {
				t.Fatalf("decode tenant %d spec %+v", i, sp)
			}
		default:
			t.Fatalf("unexpected model %q", w.Model)
		}
	}
	if nPre != 5 || nDec != 5 {
		t.Fatalf("class split %d/%d, want 5/5", nPre, nDec)
	}
	// Determinism: same seed, same mix (names and first-request graphs).
	m2 := PrefillDecodeMix(10, 200, cfg, 5)
	for i := range m.Workloads {
		if m.Workloads[i].Name != m2.Workloads[i].Name {
			t.Fatal("mix composition not deterministic")
		}
		if !reflect.DeepEqual(m.Workloads[i].Request(0).Ops, m2.Workloads[i].Request(0).Ops) {
			t.Fatalf("tenant %d graphs differ across identical mixes", i)
		}
	}
}

func TestHeavyTailBatches(t *testing.T) {
	bs := HeavyTailBatches(2000, 8, 1.2, 32, 3)
	var sum, big int
	for _, b := range bs {
		if b < 1 || b > 32 {
			t.Fatalf("batch %d outside [1, 32]", b)
		}
		sum += b
		if b >= 24 {
			big++
		}
	}
	mean := float64(sum) / float64(len(bs))
	if mean < 4 || mean > 12 {
		t.Errorf("mean batch %v, want ≈8", mean)
	}
	if big == 0 {
		t.Error("no heavy-tail draws ≥ 24 in 2000 samples")
	}
	if !reflect.DeepEqual(bs, HeavyTailBatches(2000, 8, 1.2, 32, 3)) {
		t.Error("heavy-tail draws not deterministic")
	}
}
