package workload

import (
	"fmt"
	"math"

	"v10/internal/mathx"
	"v10/internal/npu"
	"v10/internal/trace"
)

// Class is one tenant class in a composed mix: Count tenants sharing a
// workload family and a traffic spec. Workload receives the class-local
// tenant index and a derived seed so every tenant gets a distinct name and
// jitter stream.
type Class struct {
	Name     string
	Count    int
	Workload func(i int, seed uint64) *trace.Workload
	Traffic  Spec
}

// Mix is a composed tenant population: parallel slices of workloads and
// traffic specs, index i describing tenant i. Feed Workloads to the fleet
// and Specs to Engine.Schedules (or fleet.Options.Arrivals).
type Mix struct {
	Workloads []*trace.Workload
	Specs     []Spec
}

// Compose flattens classes into a Mix, interleaving classes round-robin so a
// prefix of the tenant list is still representative (placement policies see
// tenants in order).
func Compose(seed uint64, classes ...Class) Mix {
	var m Mix
	idx := make([]int, len(classes))
	for {
		progressed := false
		for c := range classes {
			if idx[c] >= classes[c].Count {
				continue
			}
			i := idx[c]
			idx[c]++
			progressed = true
			tseed := seed + uint64(c)*0xd1342543de82ef95 + uint64(i)*0x2545f4914f6cdd1d
			m.Workloads = append(m.Workloads, classes[c].Workload(i, tseed))
			m.Specs = append(m.Specs, classes[c].Traffic)
		}
		if !progressed {
			return m
		}
	}
}

// HeavyTailBatches draws n batch sizes from a lognormal with the given mean
// and coefficient of variation, clamped to [1, maxBatch]. cv ≈ 1.2 gives the
// production-like shape: most tenants small, a heavy tail of large ones.
func HeavyTailBatches(n int, mean, cv float64, maxBatch int, seed uint64) []int {
	rng := mathx.NewRNG(seed + 0xba7c4)
	sigma2 := math.Log(1 + cv*cv)
	out := make([]int, n)
	for i := range out {
		b := int(math.Round(rng.LogNormal(math.Log(mean)-sigma2/2, math.Sqrt(sigma2))))
		if b < 1 {
			b = 1
		}
		if b > maxBatch {
			b = maxBatch
		}
		out[i] = b
	}
	return out
}

// PrefillDecodeMix is the flagship FlexNPU scenario: half the tenants run
// LLM prefill (SA/compute-bound), half run decode (VU/HBM-bound), with
// heavy-tailed batch and sequence-length draws and anti-phased diurnal
// traffic — prefill peaks at the start of the period, decode half a period
// later (a decode wave follows the prompts it is answering). rateHz is the
// per-tenant mean for prefill; decode tenants run 4× hotter (each decode
// request is an 8-token chunk, so one generation is many requests).
func PrefillDecodeMix(tenants int, rateHz float64, cfg npu.CoreConfig, seed uint64) Mix {
	if tenants < 2 {
		tenants = 2
	}
	nPrefill := tenants / 2
	nDecode := tenants - nPrefill

	batches := HeavyTailBatches(tenants, 8, 1.2, 32, seed)
	lens := HeavyTailBatches(tenants, 512, 0.9, 4096, seed+1) // prompt/context tokens

	prefill := Class{
		Name:  "prefill",
		Count: nPrefill,
		Workload: func(i int, s uint64) *trace.Workload {
			return Prefill(nameIndexed("prefill", i), batches[i], lens[i], s, cfg)
		},
		Traffic: Spec{Process: Diurnal, RateHz: rateHz, Amplitude: 0.8, PhaseFrac: 0},
	}
	decode := Class{
		Name:  "decode",
		Count: nDecode,
		Workload: func(i int, s uint64) *trace.Workload {
			j := nPrefill + i
			return Decode(nameIndexed("decode", i), batches[j], mathx.MaxInt(lens[j], 128), s, cfg)
		},
		Traffic: Spec{Process: Diurnal, RateHz: 4 * rateHz, Amplitude: 0.8, PhaseFrac: 0.5},
	}
	return Compose(seed, prefill, decode)
}

// nameIndexed builds a per-tenant unique name ("prefill-3"); the fleet's
// pairwise-profile cache keys on names, so duplicates would alias.
func nameIndexed(class string, i int) string {
	return fmt.Sprintf("%s-%d", class, i)
}
