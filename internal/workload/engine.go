package workload

import (
	"fmt"
	"math"

	"v10/internal/mathx"
	"v10/internal/npu"
)

// maxArrivalsPerTenant guards against runaway schedules (a mis-set rate times
// a long horizon). One tenant offering two million requests in a single run
// is far beyond anything the fleet can serve; hitting the cap is a config
// error, not a legitimate workload.
const maxArrivalsPerTenant = 2_000_000

// Engine turns per-tenant Specs into absolute arrival-cycle schedules over a
// fixed horizon. The zero Config means npu.DefaultConfig (the clock converts
// RateHz and trace gaps in seconds into cycles).
//
// Determinism: tenant t's schedule is a pure function of (Seed, t, its Spec,
// HorizonCycles, the clock) — independent of how many other tenants exist
// and of any parallelism in the caller. Same inputs, bit-identical output.
type Engine struct {
	Config        npu.CoreConfig
	HorizonCycles int64
	Seed          uint64
}

// Schedule generates tenant's arrival schedule for spec: strictly
// nondecreasing absolute cycles in [spec.StartCycle, min(spec.EndCycle,
// horizon)), ready for sched.Options.ArrivalCycles.
func (e Engine) Schedule(tenant int, spec Spec) ([]int64, error) {
	cfg := e.Config
	if cfg.SADim == 0 {
		cfg = npu.DefaultConfig()
	}
	if e.HorizonCycles < 1 {
		return nil, fmt.Errorf("workload: non-positive horizon %d", e.HorizonCycles)
	}
	spec = spec.withDefaults(e.HorizonCycles)
	if err := spec.validate(); err != nil {
		return nil, fmt.Errorf("workload: tenant %d: %w", tenant, err)
	}
	// The tenant stride must NOT be splitmix64's gamma (0x9e3779b97f4a7c15):
	// that would place consecutive tenants one draw apart on the same
	// underlying counter sequence, correlating their streams almost exactly.
	rng := mathx.NewRNG(e.Seed + 0x7ea4f1c + uint64(tenant)*0xd1342543de82ef95)
	g := &gen{rng: rng, start: spec.StartCycle, end: spec.EndCycle}

	var err error
	switch spec.Process {
	case Poisson:
		err = g.poisson(cfg.FrequencyHz / spec.RateHz)
	case Uniform:
		err = g.uniform(cfg.FrequencyHz / spec.RateHz)
	case Diurnal:
		err = g.diurnal(spec.RateHz/cfg.FrequencyHz, spec.Amplitude, float64(spec.PeriodCycles), spec.PhaseFrac)
	case MMPP:
		err = g.mmpp(spec.RateHz/cfg.FrequencyHz, spec.BurstFactor, spec.BurstFrac, float64(spec.BurstDwellCycles))
	case Replay:
		err = g.replay(spec.GapsSec, spec.RateHz, cfg.FrequencyHz)
	}
	if err != nil {
		return nil, fmt.Errorf("workload: tenant %d: %w", tenant, err)
	}
	if g.out == nil {
		g.out = []int64{}
	}
	return g.out, nil
}

// Schedules generates one schedule per spec; index i is tenant i.
func (e Engine) Schedules(specs []Spec) ([][]int64, error) {
	out := make([][]int64, len(specs))
	for t, spec := range specs {
		sc, err := e.Schedule(t, spec)
		if err != nil {
			return nil, err
		}
		out[t] = sc
	}
	return out, nil
}

// gen accumulates one tenant's arrival stream in float64 absolute time.
// Emitting floor(t) — never truncating individual gaps and never clamping —
// keeps the realized rate equal to the nominal rate: the number of arrivals
// before an integer horizon equals the number of real-valued arrival times
// before it.
type gen struct {
	rng        *mathx.RNG
	start, end int64
	out        []int64
}

// emit records one arrival at real-valued time t (absolute cycles).
func (g *gen) emit(t float64) error {
	if len(g.out) >= maxArrivalsPerTenant {
		return fmt.Errorf("schedule exceeds %d arrivals — rate × horizon is misconfigured", maxArrivalsPerTenant)
	}
	g.out = append(g.out, int64(t))
	return nil
}

// exp draws a unit-mean exponential sample.
func (g *gen) exp() float64 {
	u := g.rng.Float64()
	for u == 0 {
		u = g.rng.Float64()
	}
	return -math.Log(u)
}

func (g *gen) poisson(meanGap float64) error {
	t := float64(g.start)
	for {
		t += meanGap * g.exp()
		if t >= float64(g.end) {
			return nil
		}
		if err := g.emit(t); err != nil {
			return err
		}
	}
}

func (g *gen) uniform(gap float64) error {
	t := float64(g.start) + gap
	for ; t < float64(g.end); t += gap {
		if err := g.emit(t); err != nil {
			return err
		}
	}
	return nil
}

// diurnal generates an inhomogeneous Poisson stream by thinning: candidates
// arrive at the peak rate and are accepted with probability rate(t)/peak.
// rate is the mean rate in arrivals per cycle.
func (g *gen) diurnal(rate, amp, period, phase float64) error {
	peak := rate * (1 + amp)
	t := float64(g.start)
	for {
		t += g.exp() / peak
		if t >= float64(g.end) {
			return nil
		}
		r := rate * (1 + amp*math.Cos(2*math.Pi*(t-phase*period)/period))
		if g.rng.Float64()*peak < r {
			if err := g.emit(t); err != nil {
				return err
			}
		}
	}
}

// mmpp simulates the 2-state chain exactly: exponential dwells, Poisson
// arrivals at the current state's rate, memoryless redraw at each switch.
// rate is the long-run mean in arrivals per cycle; solving
// r0·(1−f) + B·r0·f = rate pins the baseline rate r0.
func (g *gen) mmpp(rate, burstFactor, burstFrac, burstDwell float64) error {
	r0 := rate / (1 - burstFrac + burstFactor*burstFrac)
	r1 := burstFactor * r0
	baseDwell := burstDwell * (1 - burstFrac) / burstFrac

	burst := g.rng.Float64() < burstFrac // start in the stationary mix
	t := float64(g.start)
	dwell := baseDwell
	if burst {
		dwell = burstDwell
	}
	switchAt := t + dwell*g.exp()
	for {
		r := r0
		if burst {
			r = r1
		}
		next := t + g.exp()/r
		if next >= switchAt {
			// The state flips before the drawn arrival lands; by memorylessness
			// the arrival clock simply restarts in the new state.
			t = switchAt
			burst = !burst
			dwell = baseDwell
			if burst {
				dwell = burstDwell
			}
			switchAt = t + dwell*g.exp()
			if t >= float64(g.end) {
				return nil
			}
			continue
		}
		t = next
		if t >= float64(g.end) {
			return nil
		}
		if err := g.emit(t); err != nil {
			return err
		}
	}
}

// replay cycles through the recorded gaps (seconds → cycles via the clock),
// optionally rescaled so the realized mean rate is targetHz. Each tenant
// starts at a seeded rotation of the gap stream so tenants replaying the
// same trace do not arrive in lockstep.
func (g *gen) replay(gapsSec []float64, targetHz, freqHz float64) error {
	var sum float64
	for _, gap := range gapsSec {
		sum += gap
	}
	scale := freqHz // seconds → cycles
	if targetHz > 0 {
		// Normalize: the trace's native mean gap is sum/len seconds; the
		// target mean gap is 1/targetHz. Scale so they coincide.
		native := sum / float64(len(gapsSec))
		scale *= 1 / (targetHz * native)
	}
	i := g.rng.Intn(len(gapsSec))
	t := float64(g.start)
	for {
		t += gapsSec[i] * scale
		i++
		if i == len(gapsSec) {
			i = 0
		}
		if t >= float64(g.end) {
			return nil
		}
		if err := g.emit(t); err != nil {
			return err
		}
	}
}
