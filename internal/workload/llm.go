package workload

import (
	"fmt"
	"math"

	"v10/internal/mathx"
	"v10/internal/npu"
	"v10/internal/trace"
)

// LLM serving splits each request into two phases with opposite hardware
// skew (FlexNPU): prefill runs the whole prompt through the model in large
// matmuls — compute-bound on the systolic array — while decode generates
// tokens one at a time in matrix-vector products over streamed weights and
// KV cache — bandwidth-bound on the vector unit and HBM. Disaggregated
// serving gives each phase its own tenant class, which makes the two classes
// the ideal V10 collocation pair: their SA/VU demand is complementary, so a
// prefill tenant and a decode tenant sharing one core contend far less than
// two of a kind.
//
// The generators below are calibrated in the same spirit as the models zoo:
// V10's mechanisms only observe operator kind, length, dependency shape, and
// HBM/vmem footprints, so the graphs target those statistics rather than any
// particular model architecture.

// llmBlocks is the number of transformer-layer groups each request graph
// emits (one SA+VU pair per group).
const llmBlocks = 8

// llmShape is the phase calibration: per-request cycle budget split and
// memory behaviour.
type llmShape struct {
	model     string
	refCycles float64 // request length at the reference point
	saFrac    float64 // fraction of the request spent in SA operators
	vuFrac    float64 // fraction spent in VU operators (rest is stall)
	saEff     float64 // SA intra-op efficiency (useful/occupied)
	vuEff     float64
	saFLOPs   float64 // SA FLOPs as a fraction of peak over the op length
	hbmUtil   float64 // request HBM traffic / (request cycles × bandwidth)
	saVMem    int64   // SA operator vector-memory footprint at the reference
	vuVMem    int64
	cv        float64 // lognormal operator-length jitter
}

var prefillShape = llmShape{
	model:     "LLM-Prefill",
	refCycles: 2.8e6, // 4 ms at 700 MHz: batch 8 × 512-token prompt
	saFrac:    0.78, vuFrac: 0.07,
	saEff: 0.85, vuEff: 0.85, saFLOPs: 0.55,
	hbmUtil: 0.22,
	saVMem:  6 << 20, vuVMem: 1 << 20,
	cv: 0.20,
}

var decodeShape = llmShape{
	model:     "LLM-Decode",
	refCycles: 0.6e6, // 0.86 ms: an 8-token decode chunk at batch 8
	saFrac:    0.12, vuFrac: 0.55,
	saEff: 0.10, vuEff: 0.80, saFLOPs: 0.06,
	hbmUtil: 0.80,
	saVMem:  1 << 20, vuVMem: 2 << 20,
	cv: 0.30,
}

// Prefill builds a prefill-phase tenant: batch prompts of promptTokens each
// per request. Request length scales with batch × prompt relative to the
// (batch 8, 512-token) reference. seed makes per-request jitter
// deterministic.
func Prefill(name string, batch, promptTokens int, seed uint64, cfg npu.CoreConfig) *trace.Workload {
	if batch < 1 || promptTokens < 1 {
		panic(fmt.Sprintf("workload: invalid prefill shape batch=%d prompt=%d", batch, promptTokens))
	}
	// Prefill compute scales with tokens processed; the padding floor keeps
	// tiny prompts from vanishing below the scheduler's resolution.
	scale := math.Max(float64(batch*promptTokens)/(8*512), 0.05)
	return buildLLM(name, prefillShape, batch, scale, seed, cfg)
}

// Decode builds a decode-phase tenant: each request is an 8-token generation
// chunk at the given batch over a KV cache of contextTokens. Decode time is
// dominated by weight streaming (batch-independent) plus KV reads (scaling
// with batch × context).
func Decode(name string, batch, contextTokens int, seed uint64, cfg npu.CoreConfig) *trace.Workload {
	if batch < 1 || contextTokens < 1 {
		panic(fmt.Sprintf("workload: invalid decode shape batch=%d context=%d", batch, contextTokens))
	}
	scale := 0.6 + 0.4*float64(batch)/8*float64(contextTokens)/1024
	return buildLLM(name, decodeShape, batch, scale, seed, cfg)
}

// buildLLM assembles the reusable workload for one phase class.
func buildLLM(name string, sh llmShape, batch int, scale float64, seed uint64, cfg npu.CoreConfig) *trace.Workload {
	req := sh.refCycles * scale
	saLen := req * sh.saFrac / llmBlocks
	vuLen := req * sh.vuFrac / llmBlocks
	stall := req * (1 - sh.saFrac - sh.vuFrac) / (2 * llmBlocks)
	saFLOPs := sh.saFLOPs * cfg.PeakSAFLOPsPerCycle() * saLen
	vuFLOPs := 0.5 * cfg.PeakVUFLOPsPerCycle() * vuLen

	// Total traffic is split across operators proportionally to their share
	// of the request, with a bimodal burst (the models-zoo idiom): a minority
	// of operators stream ~15% hotter, so one tenant fits under the interface
	// while two tenants' coincident bursts oversubscribe it.
	bytesTotal := sh.hbmUtil * req * cfg.HBMBytesPerCycle()
	saBytes := bytesTotal * sh.saFrac / (sh.saFrac + sh.vuFrac) / llmBlocks
	vuBytes := bytesTotal * sh.vuFrac / (sh.saFrac + sh.vuFrac) / llmBlocks
	const burstProb, burstHigh = 0.35, 1.15
	burstLow := (1 - burstProb*burstHigh) / (1 - burstProb)

	vmemScale := mathx.Clamp(scale, 0.25, 2)
	saVMem := int64(float64(sh.saVMem) * vmemScale)
	vuVMem := int64(float64(sh.vuVMem) * vmemScale)

	sigma2 := math.Log(1 + sh.cv*sh.cv)
	mu, sigma := -sigma2/2, math.Sqrt(sigma2)

	genInto := func(request int, g *trace.Graph) *trace.Graph {
		rng := mathx.NewRNG(seed ^ (uint64(request)+1)*0x9e3779b97f4a7c15)
		total := 2 * llmBlocks
		if g == nil {
			g = &trace.Graph{}
		}
		if cap(g.Ops) < total {
			g.Ops = make([]trace.Op, 0, total)
		} else {
			g.Ops = g.Ops[:0]
		}
		if cap(g.DepsBuf) < total {
			g.DepsBuf = make([]int, 0, total)
		} else {
			g.DepsBuf = g.DepsBuf[:0]
		}
		depsBuf := g.DepsBuf

		addOp := func(kind trace.Kind, compute, opStall, flops, bytes float64, eff float64, vmem int64) {
			jitter := mathx.Clamp(rng.LogNormal(mu, sigma), 0.3, 3.0)
			burst := burstLow
			if rng.Float64() < burstProb {
				burst = burstHigh
			}
			n := len(g.Ops)
			g.Ops = g.Ops[:n+1]
			op := &g.Ops[n]
			op.ID = n
			op.Kind = kind
			op.Compute = mathx.MaxInt64(1, int64(compute*jitter))
			op.Stall = int64(opStall * mathx.Clamp(rng.LogNormal(mu, sigma), 0.3, 3.0))
			op.Efficiency = eff
			op.FLOPs = flops * jitter
			op.HBMBytes = bytes * burst * jitter
			op.VMemBytes = vmem
			op.Deps = nil
			if n > 0 {
				depsBuf = append(depsBuf, n-1)
				op.Deps = depsBuf[len(depsBuf)-1:]
			}
		}
		for b := 0; b < llmBlocks; b++ {
			addOp(trace.KindSA, saLen, stall, saFLOPs, saBytes, sh.saEff, saVMem)
			addOp(trace.KindVU, vuLen, stall, vuFLOPs, vuBytes, sh.vuEff, vuVMem)
		}
		g.DepsBuf = depsBuf
		return g
	}
	return trace.NewWorkloadReusable(name, sh.model, batch, genInto)
}
