package workload

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Trace is a replayable arrival trace: one interarrival-gap stream per
// recorded tenant. The file format is line-oriented and diff-friendly:
//
//	# comment lines start with '#'
//	<stream-name> <gap> <gap> <gap> ...
//
// where each gap is an interarrival time in seconds (floats; scientific
// notation allowed). The invitro production loader distributes per-minute
// interarrival vectors per function; this is the same shape with the
// bookkeeping stripped.
type Trace struct {
	Streams []Stream
}

// Stream is one recorded tenant's interarrival gaps in seconds.
type Stream struct {
	Name    string
	GapsSec []float64
}

// MeanRateHz is the stream's native arrival rate.
func (s Stream) MeanRateHz() float64 {
	var sum float64
	for _, g := range s.GapsSec {
		sum += g
	}
	if sum <= 0 {
		return 0
	}
	return float64(len(s.GapsSec)) / sum
}

// Normalized returns a copy of the stream rescaled so its mean rate is
// exactly targetHz (the invitro rate-normalization idiom); targetHz <= 0
// returns the stream unchanged.
func (s Stream) Normalized(targetHz float64) Stream {
	native := s.MeanRateHz()
	if targetHz <= 0 || native == 0 {
		return s
	}
	scale := native / targetHz
	out := Stream{Name: s.Name, GapsSec: make([]float64, len(s.GapsSec))}
	for i, g := range s.GapsSec {
		out.GapsSec[i] = g * scale
	}
	return out
}

// Spec converts the stream into a Replay spec at the given target rate
// (0 keeps the native rate).
func (s Stream) Spec(rateHz float64) Spec {
	return Spec{Process: Replay, RateHz: rateHz, GapsSec: s.GapsSec}
}

// Specs builds one Replay spec per tenant, cycling through the trace's
// streams when tenants outnumber them. rateHz > 0 normalizes every tenant
// to that rate; 0 keeps each stream's native rate.
func (t *Trace) Specs(tenants int, rateHz float64) []Spec {
	out := make([]Spec, tenants)
	for i := range out {
		out[i] = t.Streams[i%len(t.Streams)].Spec(rateHz)
	}
	return out
}

// ParseTrace reads the trace format from r.
func ParseTrace(r io.Reader) (*Trace, error) {
	tr := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("workload: trace line %d: want <name> <gap>..., got %q", line, text)
		}
		st := Stream{Name: fields[0], GapsSec: make([]float64, 0, len(fields)-1)}
		for _, f := range fields[1:] {
			g, err := strconv.ParseFloat(f, 64)
			if err != nil || g < 0 || isBad(g) {
				return nil, fmt.Errorf("workload: trace line %d: bad gap %q", line, f)
			}
			st.GapsSec = append(st.GapsSec, g)
		}
		if st.MeanRateHz() == 0 {
			return nil, fmt.Errorf("workload: trace line %d: stream %q has no realizable rate", line, st.Name)
		}
		tr.Streams = append(tr.Streams, st)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("workload: reading trace: %w", err)
	}
	if len(tr.Streams) == 0 {
		return nil, fmt.Errorf("workload: trace has no streams")
	}
	return tr, nil
}

// ReadTraceFile loads a trace file from disk.
func ReadTraceFile(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	tr, err := ParseTrace(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return tr, nil
}

// Write emits the trace in the format ParseTrace reads. Gaps round-trip
// exactly (shortest float64 representation).
func (t *Trace) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "# v10 workload trace: <stream-name> <interarrival gaps in seconds>...")
	for _, st := range t.Streams {
		if _, err := bw.WriteString(st.Name); err != nil {
			return err
		}
		for _, g := range st.GapsSec {
			bw.WriteByte(' ')
			bw.WriteString(strconv.FormatFloat(g, 'g', -1, 64))
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// WriteFile writes the trace to disk.
func (t *Trace) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
