package workload

import (
	"runtime"
	"strings"
	"sync"
	"testing"

	"v10/internal/npu"
)

// horizon100ms is 0.1 s at the default 700 MHz clock — long enough for tight
// rate statistics at the test rates below.
const horizon100ms = 70_000_000

func testEngine() Engine {
	return Engine{HorizonCycles: horizon100ms, Seed: 42}
}

func checkSchedule(t *testing.T, sc []int64, start, end int64) {
	t.Helper()
	prev := int64(-1)
	for i, c := range sc {
		if c < start || c >= end {
			t.Fatalf("arrival %d = %d outside window [%d, %d)", i, c, start, end)
		}
		if c < prev {
			t.Fatalf("arrival %d = %d decreases (prev %d)", i, c, prev)
		}
		prev = c
	}
}

// aggregateCount sums arrivals over tenants many independent schedules so the
// relative sampling error shrinks as 1/sqrt(tenants).
func aggregateCount(t *testing.T, e Engine, spec Spec, tenants int) int {
	t.Helper()
	total := 0
	for tn := 0; tn < tenants; tn++ {
		sc, err := e.Schedule(tn, spec)
		if err != nil {
			t.Fatalf("Schedule(%d): %v", tn, err)
		}
		checkSchedule(t, sc, 0, e.HorizonCycles)
		total += len(sc)
	}
	return total
}

// TestRealizedRateMatchesNominal is the headline property: every process
// realizes its nominal long-run mean rate. The old int64-truncation idiom
// fails this at high rates (realized > nominal).
func TestRealizedRateMatchesNominal(t *testing.T) {
	const (
		rate    = 50_000.0 // 5000 expected arrivals per tenant over 0.1 s
		tenants = 24
	)
	e := testEngine()
	want := rate * 0.1 * float64(tenants)
	for _, tc := range []struct {
		name string
		spec Spec
		tol  float64
	}{
		{"poisson", Spec{Process: Poisson, RateHz: rate}, 0.02},
		{"uniform", Spec{Process: Uniform, RateHz: rate}, 0.001},
		{"diurnal", Spec{Process: Diurnal, RateHz: rate}, 0.03},
		{"diurnal-phased", Spec{Process: Diurnal, RateHz: rate, PhaseFrac: 0.5}, 0.03},
		// Explicit dwell: ~51 regime cycles per horizon, so the long-run mean
		// concentrates (the default horizon/64 dwell fits only ~6 cycles and
		// leaves the realized count dominated by regime-occupancy noise).
		{"mmpp", Spec{Process: MMPP, RateHz: rate, BurstDwellCycles: horizon100ms / 512}, 0.08},
		{"replay-normalized", Spec{Process: Replay, RateHz: rate,
			GapsSec: []float64{0.001, 0.0005, 0.004, 0.0008, 0.01}}, 0.02},
	} {
		t.Run(tc.name, func(t *testing.T) {
			got := float64(aggregateCount(t, e, tc.spec, tenants))
			if rel := (got - want) / want; rel < -tc.tol || rel > tc.tol {
				t.Errorf("realized %v arrivals, want %v ±%v%% (rel err %+.4f)",
					got, want, 100*tc.tol, rel)
			}
		})
	}
}

// TestPoissonHighRateNoInflation targets the bug shape directly: at a mean
// gap of ~2 cycles, gap truncation plus a gap<1 clamp would inflate the
// realized rate by tens of percent. Floor-on-absolute-time must not.
func TestPoissonHighRateNoInflation(t *testing.T) {
	e := Engine{HorizonCycles: 2_000_000, Seed: 7}
	rate := 350e6 // half the 700 MHz clock: mean gap 2 cycles
	got := float64(aggregateCount(t, e, Spec{Process: Poisson, RateHz: rate}, 4))
	want := rate / 700e6 * 2_000_000 * 4
	if rel := (got - want) / want; rel < -0.01 || rel > 0.01 {
		t.Errorf("realized %v arrivals at mean gap 2 cycles, want %v ±1%% (rel err %+.4f)", got, want, rel)
	}
}

// TestDeterminism: a tenant's schedule is a pure function of (seed, tenant,
// spec) — independent of the other tenants in the batch and of parallelism.
func TestDeterminism(t *testing.T) {
	e := testEngine()
	specs := []Spec{
		{Process: Poisson, RateHz: 3000},
		{Process: Diurnal, RateHz: 2500, PhaseFrac: 0.25},
		{Process: MMPP, RateHz: 1500},
		{Process: Replay, GapsSec: []float64{0.001, 0.002, 0.0004}},
		{Process: Uniform, RateHz: 800, StartCycle: 1000, EndCycle: 30_000_000},
	}
	batch, err := e.Schedules(specs)
	if err != nil {
		t.Fatal(err)
	}

	// Tenant 2 generated alone — as if the fleet had a different size.
	alone, err := e.Schedule(2, specs[2])
	if err != nil {
		t.Fatal(err)
	}
	if !equalInt64s(alone, batch[2]) {
		t.Fatalf("tenant 2 schedule differs when generated alone: %d vs %d arrivals", len(alone), len(batch[2]))
	}

	// All tenants regenerated concurrently under inflated parallelism.
	old := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(old)
	par := make([][]int64, len(specs))
	var wg sync.WaitGroup
	for i := range specs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sc, err := e.Schedule(i, specs[i])
			if err == nil {
				par[i] = sc
			}
		}(i)
	}
	wg.Wait()
	for i := range specs {
		if !equalInt64s(par[i], batch[i]) {
			t.Fatalf("tenant %d schedule differs under parallel generation", i)
		}
	}

	// And the whole batch is bit-identical on a second run.
	again, err := e.Schedules(specs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if !equalInt64s(batch[i], again[i]) {
			t.Fatalf("tenant %d schedule not reproducible", i)
		}
	}
}

func TestTenantsDiffer(t *testing.T) {
	e := testEngine()
	spec := Spec{Process: Poisson, RateHz: 2000}
	a, _ := e.Schedule(0, spec)
	b, _ := e.Schedule(1, spec)
	if equalInt64s(a, b) {
		t.Fatal("tenants 0 and 1 produced identical schedules — per-tenant seeding is broken")
	}
}

func TestChurnWindow(t *testing.T) {
	e := testEngine()
	spec := Spec{Process: Poisson, RateHz: 20_000, StartCycle: 10_000_000, EndCycle: 40_000_000}
	sc, err := e.Schedule(0, spec)
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, sc, 10_000_000, 40_000_000)
	want := 20_000.0 * (30_000_000.0 / 700e6)
	if got := float64(len(sc)); got < 0.8*want || got > 1.2*want {
		t.Fatalf("churn window realized %v arrivals, want ≈%v", got, want)
	}
	// EndCycle beyond the horizon clips to the horizon.
	spec.EndCycle = 10 * horizon100ms
	sc, err = e.Schedule(0, spec)
	if err != nil {
		t.Fatal(err)
	}
	checkSchedule(t, sc, 10_000_000, horizon100ms)
}

// TestDiurnalPhaseShapesTraffic: anti-phased classes concentrate arrivals in
// opposite halves of the period — the property the collocation scenario
// depends on.
func TestDiurnalPhaseShapesTraffic(t *testing.T) {
	e := testEngine()
	// Compare the circular half-period centered on the peak against the half
	// centered on the trough: with amplitude 0.9 the peak half carries
	// (1 + 0.9·2/π)/(1 − 0.9·2/π) ≈ 3.7× the arrivals of the trough half.
	countPeakHalf := func(phase float64) (peak, trough int) {
		for tn := 0; tn < 8; tn++ {
			sc, err := e.Schedule(tn, Spec{Process: Diurnal, RateHz: 10_000, Amplitude: 0.9, PhaseFrac: phase})
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range sc {
				// Circular distance from the peak, in period fractions.
				d := float64(c)/horizon100ms - phase
				if d < 0 {
					d++
				}
				if d <= 0.25 || d >= 0.75 {
					peak++
				} else {
					trough++
				}
			}
		}
		return
	}
	for _, phase := range []float64{0, 0.5} {
		p, tr := countPeakHalf(phase)
		if p < 2*tr {
			t.Errorf("phase %v: peak half %d vs trough half %d, want ≥2× concentration", phase, p, tr)
		}
	}
}

// TestMMPPIsBurstier: over windows of the burst-dwell scale, MMPP counts
// must have a much larger dispersion index than Poisson at the same mean.
func TestMMPPIsBurstier(t *testing.T) {
	e := testEngine()
	disp := func(spec Spec) float64 {
		const bins = 64
		var counts [bins]float64
		for tn := 0; tn < 8; tn++ {
			sc, err := e.Schedule(tn, spec)
			if err != nil {
				t.Fatal(err)
			}
			for _, c := range sc {
				counts[c*bins/horizon100ms]++
			}
		}
		var mean float64
		for _, c := range counts {
			mean += c
		}
		mean /= bins
		var v float64
		for _, c := range counts {
			v += (c - mean) * (c - mean)
		}
		return v / float64(bins) / mean
	}
	p := disp(Spec{Process: Poisson, RateHz: 20_000})
	m := disp(Spec{Process: MMPP, RateHz: 20_000})
	if m < 4*p {
		t.Errorf("MMPP dispersion %.2f vs Poisson %.2f — bursts not materializing", m, p)
	}
}

func TestValidation(t *testing.T) {
	e := testEngine()
	for _, tc := range []struct {
		name string
		spec Spec
		want string
	}{
		{"unknown process", Spec{Process: "zipf", RateHz: 1}, "unknown arrival process"},
		{"zero rate", Spec{Process: Poisson}, "needs RateHz > 0"},
		{"negative rate", Spec{Process: Diurnal, RateHz: -3}, "needs RateHz > 0"},
		{"amplitude", Spec{Process: Diurnal, RateHz: 10, Amplitude: 1.5}, "amplitude"},
		{"phase", Spec{Process: Diurnal, RateHz: 10, PhaseFrac: 1}, "phase fraction"},
		{"burst factor", Spec{Process: MMPP, RateHz: 10, BurstFactor: 0.5}, "burst factor"},
		{"burst frac", Spec{Process: MMPP, RateHz: 10, BurstFrac: 1.2}, "burst fraction"},
		{"empty window", Spec{Process: Poisson, RateHz: 10, StartCycle: 5, EndCycle: 5}, "is empty"},
		{"negative start", Spec{Process: Poisson, RateHz: 10, StartCycle: -1}, "negative start"},
		{"replay no gaps", Spec{Process: Replay}, "non-empty gap stream"},
		{"replay zero gaps", Spec{Process: Replay, GapsSec: []float64{0, 0}}, "sum to zero"},
		{"replay bad gap", Spec{Process: Replay, GapsSec: []float64{0.1, -0.2}}, "trace gap"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := e.Schedule(0, tc.spec); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Schedule err = %v, want containing %q", err, tc.want)
			}
		})
	}
	if _, err := (Engine{HorizonCycles: 0}).Schedule(0, Spec{Process: Poisson, RateHz: 1}); err == nil {
		t.Fatal("zero horizon accepted")
	}
	if _, err := (Engine{HorizonCycles: horizon100ms}).Schedule(0, Spec{Process: Poisson, RateHz: 1e12}); err == nil {
		t.Fatal("runaway rate × horizon accepted — arrival cap not enforced")
	}
}

func TestParseProcess(t *testing.T) {
	for _, s := range []string{"poisson", "uniform", "diurnal", "mmpp", "trace"} {
		p, err := ParseProcess(s)
		if err != nil || string(p) != s {
			t.Fatalf("ParseProcess(%q) = %v, %v", s, p, err)
		}
	}
	if _, err := ParseProcess("zipf"); err == nil {
		t.Fatal("ParseProcess accepted zipf")
	}
}

func TestCustomClockConfig(t *testing.T) {
	cfg := npu.DefaultConfig()
	cfg.FrequencyHz = 350e6 // half clock → half the arrivals per cycle-horizon
	e := Engine{Config: cfg, HorizonCycles: horizon100ms, Seed: 1}
	sc, err := e.Schedule(0, Spec{Process: Uniform, RateHz: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(sc), 199; got != want { // 0.2 s horizon at 350 MHz, first at gap
		t.Fatalf("uniform arrivals = %d, want %d", got, want)
	}
}

func equalInt64s(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
