package cluster

import (
	"testing"

	"v10/internal/collocate"
	"v10/internal/models"
	"v10/internal/npu"
	"v10/internal/trace"
)

var cfg = npu.DefaultConfig()

func fleet(t *testing.T, names []string) []*trace.Workload {
	t.Helper()
	var ws []*trace.Workload
	for i, n := range names {
		s, ok := models.ByName(n)
		if !ok {
			t.Fatalf("unknown model %s", n)
		}
		ws = append(ws, s.Workload(s.RefBatch, uint64(i+1), cfg))
	}
	return ws
}

func TestPlacementValidate(t *testing.T) {
	if err := (Placement{{0, 1}, {2}}).Validate(3); err != nil {
		t.Fatalf("valid placement rejected: %v", err)
	}
	cases := []Placement{
		{{0, 1}},         // workload 2 unplaced
		{{0, 1}, {1, 2}}, // workload 1 twice
		{{0, 1}, {}},     // empty core
		{{0, 5}},         // out of range
	}
	for i, p := range cases {
		if p.Validate(3) == nil {
			t.Errorf("bad placement %d accepted", i)
		}
	}
}

func TestNaivePlacementShape(t *testing.T) {
	p := NaivePlacement(5)
	if err := p.Validate(5); err != nil {
		t.Fatal(err)
	}
	if p.Cores() != 3 || len(p[2]) != 1 {
		t.Fatalf("naive placement wrong: %v", p)
	}
}

func TestAdvisorPlacementCoversAll(t *testing.T) {
	ws := fleet(t, []string{"BERT", "DLRM", "NCF", "ResNet", "Transformer", "MNIST"})
	feats := make([]collocate.Features, len(ws))
	for i, w := range ws {
		feats[i] = collocate.ExtractFeatures(w, cfg, 2)
	}
	perf := func(a, b *trace.Workload) (float64, error) {
		fa := collocate.ExtractFeatures(a, cfg, 1)
		fb := collocate.ExtractFeatures(b, cfg, 1)
		return 1 + absF(fa.Vec[7]-fb.Vec[7]), nil
	}
	model, err := collocate.Train(ws, feats, perf, collocate.TrainConfig{K: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := AdvisorPlacement(model, feats)
	if err := p.Validate(len(ws)); err != nil {
		t.Fatalf("advisor placement invalid: %v", err)
	}
}

func absF(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestClusterRunV10BeatsPMT(t *testing.T) {
	ws := fleet(t, []string{"BERT", "NCF", "DLRM", "ResNet"})
	p := Placement{{0, 1}, {2, 3}} // complementary pairs
	v10res, err := Run(ws, p, Options{Requests: 3})
	if err != nil {
		t.Fatal(err)
	}
	pmtRes, err := Run(ws, p, Options{Requests: 3, UsePMT: true})
	if err != nil {
		t.Fatal(err)
	}
	if v10res.TotalSTP <= pmtRes.TotalSTP {
		t.Fatalf("cluster V10 STP %v <= PMT %v", v10res.TotalSTP, pmtRes.TotalSTP)
	}
	if v10res.CoresUsed != 2 || len(v10res.PerCore) != 2 {
		t.Fatalf("core accounting wrong: %+v", v10res)
	}
	// Four workloads on two cores: should deliver well over 2 cores' worth.
	if v10res.TotalSTP < 2.4 {
		t.Fatalf("cluster STP = %v, want > 2.4", v10res.TotalSTP)
	}
	if v10res.WorstTenant <= 0 || v10res.WorstTenant > 1.1 {
		t.Fatalf("worst tenant progress = %v", v10res.WorstTenant)
	}
	if v10res.AggUtil <= pmtRes.AggUtil {
		t.Fatalf("cluster V10 util %v <= PMT %v", v10res.AggUtil, pmtRes.AggUtil)
	}
}

func TestClusterRejectsBadPlacement(t *testing.T) {
	ws := fleet(t, []string{"BERT", "NCF"})
	if _, err := Run(ws, Placement{{0}}, Options{Requests: 2}); err == nil {
		t.Fatal("incomplete placement accepted")
	}
}

func TestClusterSingleWorkloadCores(t *testing.T) {
	ws := fleet(t, []string{"MNIST"})
	res, err := Run(ws, Placement{{0}}, Options{Requests: 3})
	if err != nil {
		t.Fatal(err)
	}
	// A dedicated core delivers ≈ 1.0 normalized progress.
	if res.Normalized[0] < 0.9 || res.Normalized[0] > 1.1 {
		t.Fatalf("dedicated-core progress = %v, want ≈ 1", res.Normalized[0])
	}
}

func TestAdvisorGroupsRespectsCapAndCoverage(t *testing.T) {
	ws := fleet(t, []string{"BERT", "DLRM", "NCF", "ResNet", "Transformer", "MNIST", "RetinaNet"})
	feats := make([]collocate.Features, len(ws))
	for i, w := range ws {
		feats[i] = collocate.ExtractFeatures(w, cfg, 2)
	}
	perf := func(a, b *trace.Workload) (float64, error) {
		fa := collocate.ExtractFeatures(a, cfg, 1)
		fb := collocate.ExtractFeatures(b, cfg, 1)
		return 1 + absF(fa.Vec[7]-fb.Vec[7]), nil
	}
	model, err := collocate.Train(ws, feats, perf, collocate.TrainConfig{K: 3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, cap := range []int{1, 2, 3, 4} {
		p := AdvisorGroups(model, feats, cap)
		if err := p.Validate(len(ws)); err != nil {
			t.Fatalf("cap %d: invalid placement: %v", cap, err)
		}
		for _, g := range p {
			if len(g) > cap {
				t.Fatalf("cap %d violated: group %v", cap, g)
			}
		}
	}
	// Larger caps should never need more cores.
	small := AdvisorGroups(model, feats, 2).Cores()
	large := AdvisorGroups(model, feats, 4).Cores()
	if large > small {
		t.Fatalf("cap 4 uses %d cores, cap 2 uses %d", large, small)
	}
}
