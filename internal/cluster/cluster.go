// Package cluster models the paper's §3.5 deployment story: a pool of NPU
// cores serving a pool of ML inference workloads. The collocation mechanism
// groups compatible workloads, each group is dispatched to one core, and
// every core runs the V10 operator scheduler (or PMT, for comparison).
// Cores are independent — each has its own SA/VU/vmem/HBM — matching the
// paper's observation that V10 "scales easily by having more NPU cores".
package cluster

import (
	"fmt"

	"v10/internal/baseline"
	"v10/internal/collocate"
	"v10/internal/metrics"
	"v10/internal/npu"
	"v10/internal/sched"
	"v10/internal/trace"
)

// Placement assigns workload indices to cores: Placement[c] lists the
// workloads sharing core c.
type Placement [][]int

// Validate checks that every workload in [0, n) appears exactly once and no
// core is empty.
func (p Placement) Validate(n int) error {
	seen := make([]bool, n)
	for c, group := range p {
		if len(group) == 0 {
			return fmt.Errorf("cluster: core %d has no workloads", c)
		}
		for _, w := range group {
			if w < 0 || w >= n {
				return fmt.Errorf("cluster: workload index %d out of range", w)
			}
			if seen[w] {
				return fmt.Errorf("cluster: workload %d placed twice", w)
			}
			seen[w] = true
		}
	}
	for w, ok := range seen {
		if !ok {
			return fmt.Errorf("cluster: workload %d not placed", w)
		}
	}
	return nil
}

// Cores returns the number of cores the placement uses.
func (p Placement) Cores() int { return len(p) }

// NaivePlacement pairs workloads in argument order (the "blind collocation"
// the paper warns about): 2 per core.
func NaivePlacement(n int) Placement {
	var p Placement
	for i := 0; i < n; i += 2 {
		if i+1 < n {
			p = append(p, []int{i, i + 1})
		} else {
			p = append(p, []int{i})
		}
	}
	return p
}

// AdvisorPlacement pairs workloads using a trained collocation model:
// highest predicted-gain compatible pairs share cores; leftovers get
// dedicated cores.
func AdvisorPlacement(model *collocate.Model, feats []collocate.Features) Placement {
	n := len(feats)
	type cand struct {
		i, j int
		gain float64
	}
	var cands []cand
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if model.ShouldCollocate(feats[i], feats[j]) {
				cands = append(cands, cand{i, j, model.PredictPerf(feats[i], feats[j])})
			}
		}
	}
	// Descending gain, deterministic tie-break.
	for a := 1; a < len(cands); a++ {
		for b := a; b > 0; b-- {
			x, y := cands[b], cands[b-1]
			if x.gain > y.gain || (x.gain == y.gain && (x.i < y.i || (x.i == y.i && x.j < y.j))) {
				cands[b], cands[b-1] = y, x
			} else {
				break
			}
		}
	}
	used := make([]bool, n)
	var p Placement
	for _, c := range cands {
		if used[c.i] || used[c.j] {
			continue
		}
		used[c.i], used[c.j] = true, true
		p = append(p, []int{c.i, c.j})
	}
	for i := 0; i < n; i++ {
		if !used[i] {
			p = append(p, []int{i})
		}
	}
	return p
}

// AdvisorGroups generalizes AdvisorPlacement to groups of up to maxPerCore
// workloads (the paper's §5.9 shows cores hosting "two or more collocated
// workloads grouped by our clustering mechanism"). Groups grow greedily: a
// workload joins the group whose minimum pairwise predicted performance with
// it stays above the model's threshold, preferring the best fit.
func AdvisorGroups(model *collocate.Model, feats []collocate.Features, maxPerCore int) Placement {
	if maxPerCore < 1 {
		maxPerCore = 1
	}
	n := len(feats)
	if maxPerCore == 1 {
		p := make(Placement, n)
		for i := range p {
			p[i] = []int{i}
		}
		return p
	}
	assigned := make([]bool, n)
	var p Placement
	// Seed groups from the best pairs, then extend.
	base := AdvisorPlacement(model, feats)
	for _, group := range base {
		var g []int
		for _, w := range group {
			if !assigned[w] {
				g = append(g, w)
				assigned[w] = true
			}
		}
		if len(g) == 0 {
			continue // fully absorbed into an earlier group
		}
		for len(g) < maxPerCore {
			best, bestFit := -1, 0.0
			for cand := 0; cand < n; cand++ {
				if assigned[cand] {
					continue
				}
				fit := model.GroupFit(feats, g, cand)
				if fit > bestFit {
					best, bestFit = cand, fit
				}
			}
			if best < 0 {
				break
			}
			g = append(g, best)
			assigned[best] = true
		}
		p = append(p, g)
	}
	for i := 0; i < n; i++ {
		if !assigned[i] {
			p = append(p, []int{i})
		}
	}
	return p
}

// Options configure a cluster simulation.
type Options struct {
	Config   npu.CoreConfig // per-core configuration
	Requests int            // requests per workload per core run
	UsePMT   bool           // run PMT instead of V10-Full on every core
	Seed     uint64
}

// Result summarizes a cluster run.
type Result struct {
	PerCore     []*metrics.RunResult
	Normalized  []float64 // per-workload normalized progress (vs dedicated core)
	TotalSTP    float64   // Σ Normalized: workloads' worth of progress delivered
	CoresUsed   int
	AggUtil     float64 // mean aggregate compute utilization across cores
	WorstTenant float64 // minimum normalized progress across all workloads
}

// Run simulates every core of the placement and aggregates cluster-level
// metrics. Single-tenant rates for normalization are measured on a dedicated
// core per workload.
func Run(workloads []*trace.Workload, p Placement, opts Options) (*Result, error) {
	if opts.Config.SADim == 0 {
		opts.Config = npu.DefaultConfig()
	}
	if opts.Requests <= 0 {
		opts.Requests = 5
	}
	if err := p.Validate(len(workloads)); err != nil {
		return nil, err
	}

	res := &Result{
		Normalized:  make([]float64, len(workloads)),
		CoresUsed:   p.Cores(),
		WorstTenant: 1e18,
	}
	utilSum := 0.0
	for c, group := range p {
		ws := make([]*trace.Workload, len(group))
		for k, idx := range group {
			ws[k] = workloads[idx]
		}
		rates, err := baseline.SingleTenantRates(ws, opts.Config, opts.Requests)
		if err != nil {
			return nil, fmt.Errorf("cluster: core %d: %w", c, err)
		}
		var coreRes *metrics.RunResult
		if opts.UsePMT {
			coreRes, err = baseline.RunPMT(ws, baseline.PMTOptions{
				Config: opts.Config, RequestsPerWorkload: opts.Requests, Seed: opts.Seed + uint64(c),
			})
		} else {
			so := sched.FullOptions()
			so.Config = opts.Config
			so.RequestsPerWorkload = opts.Requests
			coreRes, err = sched.Run(ws, so)
		}
		if err != nil {
			return nil, fmt.Errorf("cluster: core %d: %w", c, err)
		}
		res.PerCore = append(res.PerCore, coreRes)
		utilSum += coreRes.AggregateUtil()
		for k, idx := range group {
			norm := coreRes.NormalizedProgress(rates)[k]
			res.Normalized[idx] = norm
			res.TotalSTP += norm
			if norm < res.WorstTenant {
				res.WorstTenant = norm
			}
		}
	}
	if p.Cores() > 0 {
		res.AggUtil = utilSum / float64(p.Cores())
	}
	if res.WorstTenant == 1e18 {
		res.WorstTenant = 0
	}
	return res, nil
}
