// Package vnpu is the spatial-partitioning layer: it carves one simulated
// NPU core into vNPU slices from declarative templates, in the style of
// HAMi-style NPU virtualization (hard device-memory and compute-core caps
// that workloads are guaranteed not to exceed) composed with V10's temporal
// interleaving *within* each slice.
//
// A Template declares a slice as three fractions of the core: PE columns
// (compute rate), vector-memory bytes, and HBM bandwidth. NewPartition
// validates a template set against a core configuration — zero-width slices
// and overcommitted fraction sums fail with typed errors — and materializes
// runtime Slices:
//
//   - Vector memory is a hard ceiling: AllocVMem beyond the slice's byte cap
//     fails with a typed *CapError; nothing ever spills past the boundary.
//   - HBM bandwidth is enforced MoCA-style by a windowed token bucket:
//     every operator's DMA bytes are charged against the slice's per-window
//     quota at admission, and a slice that exhausts its window stalls — the
//     transfer is delayed to the window whose refill covers it — rather than
//     shedding work. Oversized transfers reserve whole future windows, so a
//     single charge larger than one quota can never deadlock.
//
// The scheduler (internal/sched) gives each slice its own virtual functional
// units running at the slice's compute fraction and draws per-workload vmem
// partitions and preemption-context budgets from the slice instead of the
// whole core. The conservation invariant the simcheck isolation oracle
// replays from the event stream is WindowBound: a slice's cumulative charged
// bytes through cycle t never exceed (t/W + 1 + residents) × quota.
package vnpu

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"v10/internal/npu"
)

// DefaultWindowCycles is the token-bucket refill window when the caller does
// not choose one: two preemption time-slices (≈ 94 µs at the paper's 700 MHz
// core) — long enough that a typical operator's DMA fits in one window,
// short enough that a throttled burst releases well inside an SLO.
const DefaultWindowCycles = 2 * 32768

// MinPartitionBytes is the smallest per-workload vector-memory partition a
// slice may be divided into. Placement counts it as a slice's hard tenant
// capacity and the scheduler rejects rosters that would shrink a resident's
// partition below it.
const MinPartitionBytes = 4096

// Template declares one vNPU slice as fractions of the core's resources.
type Template struct {
	// Name labels the slice in results and traces ("slice0", "slice1", ...
	// when empty).
	Name string `json:"name,omitempty"`
	// Compute is the fraction of PE columns (systolic-array and vector-unit
	// throughput) the slice owns, in (0,1]. Operators in the slice run at
	// this fraction of the full-core rate.
	Compute float64 `json:"compute"`
	// VMem is the fraction of the core's vector memory, in (0,1]. A hard
	// allocation ceiling.
	VMem float64 `json:"vmem"`
	// HBM is the fraction of the core's HBM bandwidth, in (0,1]. Enforced as
	// a per-window byte quota by the slice's token bucket.
	HBM float64 `json:"hbm"`
}

// TemplateError reports an invalid slice template (e.g. a zero-width slice).
type TemplateError struct {
	Slice    int     // template index
	Resource string  // "compute", "vmem", or "hbm"
	Value    float64 // the offending fraction
}

func (e *TemplateError) Error() string {
	return fmt.Sprintf("vnpu: template %d has %s fraction %v; slices need fractions in (0,1]",
		e.Slice, e.Resource, e.Value)
}

// OvercommitError reports a template set whose fractions sum past the device.
type OvercommitError struct {
	Resource string  // "compute", "vmem", or "hbm"
	Total    float64 // the fraction sum
}

func (e *OvercommitError) Error() string {
	return fmt.Sprintf("vnpu: templates overcommit %s: fractions sum to %v > 1",
		e.Resource, e.Total)
}

// CapError reports a vector-memory allocation that would exceed a slice's
// hard ceiling. Requested is the allocation, Used the bytes already held,
// and Cap the slice's total.
type CapError struct {
	Slice     int
	Name      string
	Requested int64
	Used      int64
	Cap       int64
}

func (e *CapError) Error() string {
	return fmt.Sprintf("vnpu: slice %d (%s): vmem allocation of %d bytes exceeds cap (%d of %d bytes in use)",
		e.Slice, e.Name, e.Requested, e.Used, e.Cap)
}

// ParseTemplates parses a CLI slice spec. Slices are separated by ';' or
// ',', each written [name=]compute:vmem:hbm or the shorthand [name=]f (all
// three fractions equal):
//
//	"0.5:0.5:0.5;0.5:0.5:0.5"    two symmetric halves
//	"big=0.75,small=0.25"        shorthand fractions with names
func ParseTemplates(spec string) ([]Template, error) {
	fields := strings.FieldsFunc(spec, func(r rune) bool { return r == ';' || r == ',' })
	var out []Template
	for _, f := range fields {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		var t Template
		if eq := strings.IndexByte(f, '='); eq >= 0 {
			t.Name = strings.TrimSpace(f[:eq])
			f = f[eq+1:]
		}
		parts := strings.Split(f, ":")
		switch len(parts) {
		case 1:
			v, err := parseFraction(parts[0])
			if err != nil {
				return nil, err
			}
			t.Compute, t.VMem, t.HBM = v, v, v
		case 3:
			vs := make([]float64, 3)
			for i, p := range parts {
				v, err := parseFraction(p)
				if err != nil {
					return nil, err
				}
				vs[i] = v
			}
			t.Compute, t.VMem, t.HBM = vs[0], vs[1], vs[2]
		default:
			return nil, fmt.Errorf("vnpu: slice spec %q: want compute:vmem:hbm or a single fraction", f)
		}
		out = append(out, t)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("vnpu: empty template spec %q", spec)
	}
	return out, nil
}

func parseFraction(s string) (float64, error) {
	v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil {
		return 0, fmt.Errorf("vnpu: bad fraction %q: %v", s, err)
	}
	return v, nil
}

// Validate checks the template set the way NewPartition would: every
// fraction in (0,1] (zero-width slices are typed TemplateErrors) and each
// resource's fractions summing to at most 1 (typed OvercommitError).
func Validate(templates []Template) error {
	if len(templates) == 0 {
		return fmt.Errorf("vnpu: no slice templates")
	}
	var compute, vmem, hbm float64
	for i, t := range templates {
		for _, f := range []struct {
			resource string
			value    float64
		}{{"compute", t.Compute}, {"vmem", t.VMem}, {"hbm", t.HBM}} {
			if !(f.value > 0 && f.value <= 1) || math.IsNaN(f.value) {
				return &TemplateError{Slice: i, Resource: f.resource, Value: f.value}
			}
		}
		compute += t.Compute
		vmem += t.VMem
		hbm += t.HBM
	}
	const eps = 1e-9
	switch {
	case compute > 1+eps:
		return &OvercommitError{Resource: "compute", Total: compute}
	case vmem > 1+eps:
		return &OvercommitError{Resource: "vmem", Total: vmem}
	case hbm > 1+eps:
		return &OvercommitError{Resource: "hbm", Total: hbm}
	}
	return nil
}

// Slice is one materialized vNPU slice with live enforcement state. A Slice
// belongs to exactly one core's Partition; fleet runs build a fresh
// Partition per core so token-bucket state never aliases across cores.
type Slice struct {
	Index int
	Name  string

	// ComputeFraction scales operator execution rate inside the slice.
	ComputeFraction float64
	// VMemBytes is the hard vector-memory ceiling.
	VMemBytes int64
	// QuotaBytes is the HBM byte budget released per window.
	QuotaBytes float64
	// WindowCycles is the token-bucket refill period.
	WindowCycles int64

	vmemUsed int64

	// Token-bucket state: curWin is the window whose budget avail draws
	// from. A charge larger than avail reserves whole future windows by
	// advancing curWin, so avail never goes negative and unused budget from
	// skipped windows is forfeited (strict per-window quota, no burst
	// carry-over).
	curWin int64
	avail  float64

	// Enforcement statistics.
	hbmBytes       float64
	throttleStalls int64
	throttleCycles int64
	capHits        int64
	peakWindow     float64
	residents      int
}

// Partition is one core's full slice set.
type Partition struct {
	WindowCycles int64
	Slices       []*Slice
}

// NewPartition materializes the templates against a core configuration.
// windowCycles <= 0 selects DefaultWindowCycles. The returned slices start
// with full first-window budgets and no vector memory allocated.
func NewPartition(cfg npu.CoreConfig, templates []Template, windowCycles int64) (*Partition, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if err := Validate(templates); err != nil {
		return nil, err
	}
	if windowCycles <= 0 {
		windowCycles = DefaultWindowCycles
	}
	p := &Partition{WindowCycles: windowCycles}
	for i, t := range templates {
		name := t.Name
		if name == "" {
			name = fmt.Sprintf("slice%d", i)
		}
		s := &Slice{
			Index:           i,
			Name:            name,
			ComputeFraction: t.Compute,
			VMemBytes:       int64(t.VMem * float64(cfg.VMemBytes)),
			QuotaBytes:      t.HBM * cfg.HBMBytesPerCycle() * float64(windowCycles),
			WindowCycles:    windowCycles,
		}
		s.avail = s.QuotaBytes
		p.Slices = append(p.Slices, s)
	}
	return p, nil
}

// AllocVMem reserves bytes against the slice's hard vector-memory ceiling,
// failing with a typed *CapError when the ceiling would be exceeded.
func (s *Slice) AllocVMem(bytes int64) error {
	if bytes < 0 {
		return fmt.Errorf("vnpu: negative vmem allocation %d", bytes)
	}
	if s.vmemUsed+bytes > s.VMemBytes {
		return &CapError{Slice: s.Index, Name: s.Name, Requested: bytes, Used: s.vmemUsed, Cap: s.VMemBytes}
	}
	s.vmemUsed += bytes
	return nil
}

// FreeVMem releases a prior allocation (floored at zero).
func (s *Slice) FreeVMem(bytes int64) {
	s.vmemUsed -= bytes
	if s.vmemUsed < 0 {
		s.vmemUsed = 0
	}
}

// VMemUsed returns the bytes currently allocated.
func (s *Slice) VMemUsed() int64 { return s.vmemUsed }

// Charge debits bytes of HBM traffic from the slice's windowed quota at
// cycle now and returns the cycle the transfer may proceed: now when budget
// remains in the current window, or the start of the future window whose
// refill covers the charge (the DMA stalls — it is never shed). Charges
// larger than one window's quota reserve as many whole future windows as
// they need, so the bucket cannot deadlock. Unused budget from windows the
// bucket idled through is forfeited: the quota is a rate ceiling, not a
// savings account.
func (s *Slice) Charge(now int64, bytes float64) int64 {
	if bytes <= 0 || s.QuotaBytes <= 0 {
		return now
	}
	s.advance(now)
	s.hbmBytes += bytes
	if bytes <= s.avail {
		s.avail -= bytes
		used := s.QuotaBytes - s.avail
		if used > s.peakWindow {
			s.peakWindow = used
		}
		return now
	}
	// Window exhausted: drain it, reserve enough whole future windows to
	// cover the deficit, and grant the transfer at the last one's start.
	deficit := bytes - s.avail
	extra := int64(math.Ceil(deficit / s.QuotaBytes))
	s.curWin += extra
	s.avail = s.avail + float64(extra)*s.QuotaBytes - bytes
	s.peakWindow = s.QuotaBytes // the drained windows ran at exactly quota
	grant := s.curWin * s.WindowCycles
	if grant < now {
		grant = now // unreachable (reserved windows start after now); guard only
	}
	s.throttleStalls++
	s.throttleCycles += grant - now
	return grant
}

// advance rolls the bucket forward to now's window, forfeiting unused budget
// from windows that passed. A curWin already in the future (whole-window
// reservations by an oversized charge) stays put.
func (s *Slice) advance(now int64) {
	win := now / s.WindowCycles
	if win > s.curWin {
		s.curWin = win
		s.avail = s.QuotaBytes
	}
}

// NoteCapHit counts one rejected vector-memory reservation (the scheduler
// calls it when a preemption context does not fit the slice's budget).
func (s *Slice) NoteCapHit() { s.capHits++ }

// SetResidents records how many workloads share the slice (placement-time
// bookkeeping surfaced in Stats and used by the conservation oracle's
// WindowBound slack).
func (s *Slice) SetResidents(n int) { s.residents = n }

// Residents returns the recorded resident count.
func (s *Slice) Residents() int { return s.residents }

// SliceStats is one slice's JSON-serializable enforcement summary.
type SliceStats struct {
	Slice           int     `json:"slice"`
	Name            string  `json:"name"`
	ComputeFraction float64 `json:"compute_fraction"`
	VMemBytes       int64   `json:"vmem_bytes"`
	VMemUsedBytes   int64   `json:"vmem_used_bytes"`
	WindowCycles    int64   `json:"window_cycles"`
	QuotaBytes      float64 `json:"hbm_quota_bytes_per_window"`
	HBMBytes        float64 `json:"hbm_bytes"`
	PeakWindowBytes float64 `json:"peak_window_bytes"`
	ThrottleStalls  int64   `json:"throttle_stalls"`
	ThrottleCycles  int64   `json:"throttle_cycles"`
	CapHits         int64   `json:"cap_hits"`
	Residents       int     `json:"residents"`
}

// Stats snapshots the slice's enforcement counters.
func (s *Slice) Stats() SliceStats {
	peak := s.peakWindow
	if used := s.QuotaBytes - s.avail; used > peak {
		peak = used
	}
	return SliceStats{
		Slice:           s.Index,
		Name:            s.Name,
		ComputeFraction: s.ComputeFraction,
		VMemBytes:       s.VMemBytes,
		VMemUsedBytes:   s.vmemUsed,
		WindowCycles:    s.WindowCycles,
		QuotaBytes:      s.QuotaBytes,
		HBMBytes:        s.hbmBytes,
		PeakWindowBytes: peak,
		ThrottleStalls:  s.throttleStalls,
		ThrottleCycles:  s.throttleCycles,
		CapHits:         s.capHits,
		Residents:       s.residents,
	}
}

// WindowBound is the conservation invariant the isolation oracle replays
// from the event stream: a slice's cumulative charged bytes through cycle t
// may not exceed (t/W + 1 + residents) × quota. The +1 covers the in-flight
// window; the +residents covers charges granted early out of a future
// window's remainder after an oversized reservation — each resident serves
// operators sequentially, so at most one such early draw per resident is
// outstanding.
func WindowBound(windowCycles int64, quotaBytes float64, t int64, residents int) float64 {
	if windowCycles <= 0 {
		return math.Inf(1)
	}
	return float64(t/windowCycles+1+int64(residents)) * quotaBytes
}
