package vnpu

import (
	"errors"
	"math"
	"testing"

	"v10/internal/mathx"
	"v10/internal/npu"
)

func mustPartition(t *testing.T, templates []Template, window int64) *Partition {
	t.Helper()
	p, err := NewPartition(npu.DefaultConfig(), templates, window)
	if err != nil {
		t.Fatalf("NewPartition: %v", err)
	}
	return p
}

func halves() []Template {
	return []Template{
		{Name: "a", Compute: 0.5, VMem: 0.5, HBM: 0.5},
		{Name: "b", Compute: 0.5, VMem: 0.5, HBM: 0.5},
	}
}

func TestParseTemplates(t *testing.T) {
	cases := []struct {
		spec string
		want []Template
	}{
		{"0.5:0.5:0.5;0.5:0.25:0.75", []Template{
			{Compute: 0.5, VMem: 0.5, HBM: 0.5},
			{Compute: 0.5, VMem: 0.25, HBM: 0.75},
		}},
		{"big=0.75,small=0.25", []Template{
			{Name: "big", Compute: 0.75, VMem: 0.75, HBM: 0.75},
			{Name: "small", Compute: 0.25, VMem: 0.25, HBM: 0.25},
		}},
		{" a = 0.5 : 0.5 : 0.5 ", []Template{
			{Name: "a", Compute: 0.5, VMem: 0.5, HBM: 0.5},
		}},
	}
	for _, c := range cases {
		got, err := ParseTemplates(c.spec)
		if err != nil {
			t.Fatalf("ParseTemplates(%q): %v", c.spec, err)
		}
		if len(got) != len(c.want) {
			t.Fatalf("ParseTemplates(%q) = %d slices, want %d", c.spec, len(got), len(c.want))
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("ParseTemplates(%q)[%d] = %+v, want %+v", c.spec, i, got[i], c.want[i])
			}
		}
	}
}

func TestParseTemplatesErrors(t *testing.T) {
	for _, spec := range []string{"", " ; ", "0.5:0.5", "0.5:0.5:0.5:0.5", "abc", "a=0.5:x:0.5"} {
		if _, err := ParseTemplates(spec); err == nil {
			t.Errorf("ParseTemplates(%q): want error", spec)
		}
	}
}

func TestValidateTypedErrors(t *testing.T) {
	var te *TemplateError
	err := Validate([]Template{{Compute: 0, VMem: 0.5, HBM: 0.5}})
	if !errors.As(err, &te) || te.Resource != "compute" || te.Slice != 0 {
		t.Fatalf("zero-width compute: got %v", err)
	}
	err = Validate([]Template{{Compute: 0.5, VMem: -0.1, HBM: 0.5}})
	if !errors.As(err, &te) || te.Resource != "vmem" {
		t.Fatalf("negative vmem: got %v", err)
	}
	err = Validate([]Template{{Compute: 0.5, VMem: 0.5, HBM: 1.5}})
	if !errors.As(err, &te) || te.Resource != "hbm" {
		t.Fatalf("fraction > 1: got %v", err)
	}
	err = Validate([]Template{{Compute: 0.5, VMem: 0.5, HBM: math.NaN()}})
	if !errors.As(err, &te) {
		t.Fatalf("NaN fraction: got %v", err)
	}

	var oe *OvercommitError
	err = Validate([]Template{
		{Compute: 0.75, VMem: 0.5, HBM: 0.5},
		{Compute: 0.5, VMem: 0.5, HBM: 0.5},
	})
	if !errors.As(err, &oe) || oe.Resource != "compute" {
		t.Fatalf("compute overcommit: got %v", err)
	}
	err = Validate([]Template{
		{Compute: 0.5, VMem: 0.75, HBM: 0.5},
		{Compute: 0.5, VMem: 0.5, HBM: 0.5},
	})
	if !errors.As(err, &oe) || oe.Resource != "vmem" {
		t.Fatalf("vmem overcommit: got %v", err)
	}
	err = Validate([]Template{
		{Compute: 0.5, VMem: 0.5, HBM: 0.75},
		{Compute: 0.5, VMem: 0.5, HBM: 0.5},
	})
	if !errors.As(err, &oe) || oe.Resource != "hbm" {
		t.Fatalf("hbm overcommit: got %v", err)
	}
	if err := Validate(nil); err == nil {
		t.Fatal("empty template set: want error")
	}
	// Exact full commitment is not an overcommit.
	if err := Validate(halves()); err != nil {
		t.Fatalf("two exact halves: %v", err)
	}
}

func TestNewPartition(t *testing.T) {
	cfg := npu.DefaultConfig()
	p := mustPartition(t, halves(), 0)
	if p.WindowCycles != DefaultWindowCycles {
		t.Fatalf("default window = %d, want %d", p.WindowCycles, DefaultWindowCycles)
	}
	if len(p.Slices) != 2 {
		t.Fatalf("slices = %d, want 2", len(p.Slices))
	}
	s := p.Slices[0]
	if s.Name != "a" || s.Index != 0 {
		t.Fatalf("slice identity = %q/%d", s.Name, s.Index)
	}
	if s.VMemBytes != cfg.VMemBytes/2 {
		t.Fatalf("vmem = %d, want %d", s.VMemBytes, cfg.VMemBytes/2)
	}
	wantQuota := 0.5 * cfg.HBMBytesPerCycle() * float64(DefaultWindowCycles)
	if s.QuotaBytes != wantQuota {
		t.Fatalf("quota = %v, want %v", s.QuotaBytes, wantQuota)
	}
	// Unnamed templates get positional names.
	p2 := mustPartition(t, []Template{{Compute: 1, VMem: 1, HBM: 1}}, 100)
	if p2.Slices[0].Name != "slice0" {
		t.Fatalf("default name = %q", p2.Slices[0].Name)
	}
	if _, err := NewPartition(npu.CoreConfig{}, halves(), 0); err == nil {
		t.Fatal("invalid config: want error")
	}
	if _, err := NewPartition(cfg, []Template{{Compute: 2, VMem: 1, HBM: 1}}, 0); err == nil {
		t.Fatal("invalid templates: want error")
	}
}

func TestAllocVMemCeiling(t *testing.T) {
	p := mustPartition(t, halves(), 0)
	s := p.Slices[0]
	if err := s.AllocVMem(s.VMemBytes); err != nil {
		t.Fatalf("exact-cap alloc: %v", err)
	}
	var ce *CapError
	err := s.AllocVMem(1)
	if !errors.As(err, &ce) {
		t.Fatalf("over-cap alloc: got %v, want *CapError", err)
	}
	if ce.Slice != 0 || ce.Requested != 1 || ce.Used != s.VMemBytes || ce.Cap != s.VMemBytes {
		t.Fatalf("CapError fields = %+v", ce)
	}
	if s.VMemUsed() != s.VMemBytes {
		t.Fatalf("failed alloc mutated usage: %d", s.VMemUsed())
	}
	s.FreeVMem(s.VMemBytes / 2)
	if err := s.AllocVMem(s.VMemBytes / 2); err != nil {
		t.Fatalf("realloc after free: %v", err)
	}
	if err := s.AllocVMem(-1); err == nil {
		t.Fatal("negative alloc: want error")
	}
	s.FreeVMem(10 * s.VMemBytes)
	if s.VMemUsed() != 0 {
		t.Fatalf("over-free went negative: %d", s.VMemUsed())
	}
}

// chargeSlice builds a standalone slice with a round quota for bucket tests.
func chargeSlice(quota float64, window int64) *Slice {
	return &Slice{Name: "t", QuotaBytes: quota, WindowCycles: window, avail: quota}
}

func TestChargeWithinWindow(t *testing.T) {
	s := chargeSlice(100, 1000)
	if got := s.Charge(10, 60); got != 10 {
		t.Fatalf("first charge granted at %d, want 10", got)
	}
	if got := s.Charge(20, 40); got != 20 {
		t.Fatalf("exact-drain charge granted at %d, want 20", got)
	}
	st := s.Stats()
	if st.ThrottleStalls != 0 || st.HBMBytes != 100 || st.PeakWindowBytes != 100 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestChargeStallsToNextWindow(t *testing.T) {
	s := chargeSlice(100, 1000)
	s.Charge(10, 90)
	// 20 bytes left needs 10 more than the 10 available: stall to window 1.
	if got := s.Charge(50, 20); got != 1000 {
		t.Fatalf("throttled charge granted at %d, want 1000", got)
	}
	st := s.Stats()
	if st.ThrottleStalls != 1 || st.ThrottleCycles != 950 {
		t.Fatalf("throttle stats = %+v", st)
	}
	// Window 1's remaining budget is 100-10=90.
	if got := s.Charge(1100, 90); got != 1100 {
		t.Fatalf("window-1 remainder granted at %d, want 1100", got)
	}
	if got := s.Charge(1100, 1); got != 2000 {
		t.Fatalf("drained window-1 charge granted at %d, want 2000", got)
	}
}

func TestChargeOversizedReservesWholeWindows(t *testing.T) {
	s := chargeSlice(100, 1000)
	// 450 bytes: drains window 0's 100, then needs ceil(350/100)=4 more
	// windows; granted at window 4's start. No deadlock for charges larger
	// than one quota.
	if got := s.Charge(0, 450); got != 4000 {
		t.Fatalf("oversized charge granted at %d, want 4000", got)
	}
	// Window 4 has 50 left; a 60-byte charge at cycle 4500 stalls to window 5.
	if got := s.Charge(4500, 60); got != 5000 {
		t.Fatalf("post-reservation charge granted at %d, want 5000", got)
	}
}

func TestChargeForfeitsIdleWindows(t *testing.T) {
	s := chargeSlice(100, 1000)
	s.Charge(10, 100) // drain window 0
	// Idle through windows 1-4; window 5 still has only one quota: no
	// burst carry-over.
	if got := s.Charge(5500, 100); got != 5500 {
		t.Fatalf("post-idle charge granted at %d, want 5500", got)
	}
	if got := s.Charge(5500, 1); got != 6000 {
		t.Fatalf("idle windows carried budget over: granted %d, want 6000", got)
	}
}

func TestChargeZeroAndUnlimited(t *testing.T) {
	s := chargeSlice(100, 1000)
	if got := s.Charge(42, 0); got != 42 {
		t.Fatalf("zero-byte charge granted at %d", got)
	}
	u := chargeSlice(0, 1000) // no quota configured: unlimited
	if got := u.Charge(42, 1e12); got != 42 {
		t.Fatalf("unlimited charge granted at %d", got)
	}
}

// TestChargeWindowBoundProperty fuzzes random charge streams from a few
// concurrent "residents" (each serving sequentially: next charge at or after
// the previous grant) and asserts the WindowBound conservation invariant the
// isolation oracle replays: cumulative granted bytes through cycle t never
// exceed (t/W + 1 + residents) × quota.
func TestChargeWindowBoundProperty(t *testing.T) {
	for seed := uint64(0); seed < 200; seed++ {
		rng := mathx.NewRNG(seed)
		window := int64(500 + rng.Intn(2000))
		quota := 50 + 400*rng.Float64()
		s := chargeSlice(quota, window)
		residents := 1 + rng.Intn(3)
		s.SetResidents(residents)
		next := make([]int64, residents) // earliest next charge per resident
		type grant struct {
			at    int64
			bytes float64
		}
		var grants []grant
		now := int64(0)
		for i := 0; i < 100; i++ {
			now += int64(rng.Intn(int(window)))
			r := rng.Intn(residents)
			at := now
			if next[r] > at {
				at = next[r]
			}
			bytes := quota * (0.1 + 3*rng.Float64()) // up to 3 windows' worth
			g := s.Charge(at, bytes)
			if g < at {
				t.Fatalf("seed %d: grant %d before charge time %d", seed, g, at)
			}
			grants = append(grants, grant{at: g, bytes: bytes})
			next[r] = g
		}
		// Replay in grant order and check the running bound.
		for i := 1; i < len(grants); i++ {
			for j := i; j > 0 && grants[j].at < grants[j-1].at; j-- {
				grants[j], grants[j-1] = grants[j-1], grants[j]
			}
		}
		cum := 0.0
		for _, g := range grants {
			cum += g.bytes
			bound := WindowBound(window, quota, g.at, residents)
			if cum > bound*(1+1e-9) {
				t.Fatalf("seed %d: cumulative %v at cycle %d exceeds bound %v", seed, cum, g.at, bound)
			}
		}
	}
}

func TestStatsAndCounters(t *testing.T) {
	s := chargeSlice(100, 1000)
	s.Index, s.ComputeFraction, s.VMemBytes = 1, 0.5, 4096
	s.NoteCapHit()
	s.NoteCapHit()
	s.SetResidents(3)
	s.Charge(0, 30)
	st := s.Stats()
	if st.CapHits != 2 || st.Residents != 3 || st.Slice != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.PeakWindowBytes != 30 || st.HBMBytes != 30 {
		t.Fatalf("byte stats = %+v", st)
	}
	if st.ComputeFraction != 0.5 || st.VMemBytes != 4096 || st.WindowCycles != 1000 {
		t.Fatalf("shape stats = %+v", st)
	}
}

func TestWindowBound(t *testing.T) {
	if got := WindowBound(1000, 100, 0, 1); got != 200 {
		t.Fatalf("WindowBound(t=0) = %v, want 200", got)
	}
	if got := WindowBound(1000, 100, 2500, 2); got != 500 {
		t.Fatalf("WindowBound(t=2500) = %v, want 500", got)
	}
	if got := WindowBound(0, 100, 10, 1); !math.IsInf(got, 1) {
		t.Fatalf("WindowBound(window=0) = %v, want +Inf", got)
	}
}
