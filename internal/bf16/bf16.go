// Package bf16 implements the bfloat16 floating-point format used by TPU
// systolic arrays (paper §3.3, footnote 2): 1 sign bit, 8 exponent bits,
// 7 mantissa bits — the top half of an IEEE-754 float32. Inputs and weights
// are bfloat16 (2 bytes); partial sums accumulate in float32 (4 bytes),
// which is why V10's input-replay checkpoint is 25% smaller than draining
// the array.
package bf16

import "math"

// Bits is a raw bfloat16 value.
type Bits uint16

// FromFloat32 rounds a float32 to the nearest bfloat16 (round-to-nearest-
// even, matching hardware behaviour). NaN is preserved as a quiet NaN.
func FromFloat32(f float32) Bits {
	u := math.Float32bits(f)
	if f != f { // NaN: keep the top mantissa bit set
		return Bits(u>>16 | 0x0040)
	}
	// Round to nearest even on the truncated 16 bits.
	rounding := uint32(0x7FFF + ((u >> 16) & 1))
	return Bits((u + rounding) >> 16)
}

// Float32 expands a bfloat16 back to float32 exactly.
func (b Bits) Float32() float32 {
	return math.Float32frombits(uint32(b) << 16)
}

// Quantize rounds a float32 through bfloat16 and back: the value the
// hardware actually computes with.
func Quantize(f float32) float32 { return FromFloat32(f).Float32() }

// QuantizeSlice quantizes a slice in place and returns it.
func QuantizeSlice(xs []float32) []float32 {
	for i, x := range xs {
		xs[i] = Quantize(x)
	}
	return xs
}

// Encode packs float32 values into bfloat16 bytes (big-endian within each
// value, 2 bytes each) — the wire format of a §3.3 checkpoint.
func Encode(xs []float32) []byte {
	out := make([]byte, 2*len(xs))
	for i, x := range xs {
		b := FromFloat32(x)
		out[2*i] = byte(b >> 8)
		out[2*i+1] = byte(b)
	}
	return out
}

// Decode unpacks bfloat16 bytes back into float32 values. The byte count
// must be even.
func Decode(bs []byte) []float32 {
	out := make([]float32, len(bs)/2)
	for i := range out {
		b := Bits(bs[2*i])<<8 | Bits(bs[2*i+1])
		out[i] = b.Float32()
	}
	return out
}

// RelativeError returns |quantize(x) − x| / |x| (0 for x == 0), bounded by
// 2⁻⁸ for normal values — the precision DNN inference tolerates.
func RelativeError(x float32) float64 {
	if x == 0 {
		return 0
	}
	return math.Abs(float64(Quantize(x)-x)) / math.Abs(float64(x))
}
