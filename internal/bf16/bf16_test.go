package bf16

import (
	"math"
	"testing"
	"testing/quick"

	"v10/internal/mathx"
)

func TestExactValues(t *testing.T) {
	// Powers of two and small integers are exactly representable.
	for _, v := range []float32{0, 1, -1, 2, 0.5, -0.25, 128, 65536} {
		if got := Quantize(v); got != v {
			t.Errorf("Quantize(%v) = %v, want exact", v, got)
		}
	}
}

func TestRoundToNearestEven(t *testing.T) {
	// 1 + 2^-8 is exactly halfway between 1.0 and the next bf16 (1+2^-7):
	// round-to-even chooses 1.0 (even mantissa).
	half := float32(1) + float32(math.Exp2(-8))
	if got := Quantize(half); got != 1 {
		t.Errorf("halfway rounding = %v, want 1 (round to even)", got)
	}
	// Slightly above halfway rounds up.
	up := float32(1) + float32(math.Exp2(-8))*1.001
	if got := Quantize(up); got <= 1 {
		t.Errorf("above-halfway rounding = %v, want > 1", got)
	}
}

func TestSpecialValues(t *testing.T) {
	inf := float32(math.Inf(1))
	if Quantize(inf) != inf || Quantize(-inf) != -inf {
		t.Error("infinities must survive")
	}
	nan := float32(math.NaN())
	if q := Quantize(nan); q == q {
		t.Error("NaN must stay NaN")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	xs := []float32{1.5, -2.25, 0, 1e10, -1e-10, 3.14159}
	enc := Encode(xs)
	if len(enc) != 2*len(xs) {
		t.Fatalf("encoded length = %d", len(enc))
	}
	dec := Decode(enc)
	for i := range xs {
		if dec[i] != Quantize(xs[i]) {
			t.Errorf("decode[%d] = %v, want %v", i, dec[i], Quantize(xs[i]))
		}
	}
}

func TestQuantizeSliceInPlace(t *testing.T) {
	xs := []float32{1.00001, 2.00002}
	out := QuantizeSlice(xs)
	if &out[0] != &xs[0] {
		t.Fatal("QuantizeSlice must work in place")
	}
}

func TestRelativeErrorBound(t *testing.T) {
	if RelativeError(0) != 0 {
		t.Fatal("zero has no error")
	}
	for _, v := range []float32{1.2345, -987.65, 3e-5, 2.9e20} {
		if e := RelativeError(v); e > math.Exp2(-8) {
			t.Errorf("RelativeError(%v) = %v, above 2^-8", v, e)
		}
	}
}

// Property: quantization is idempotent, monotone, and within the bf16
// relative-error bound for normal floats.
func TestQuantizeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		x := float32(rng.Uniform(-1e6, 1e6))
		q := Quantize(x)
		if Quantize(q) != q {
			return false // idempotence
		}
		if x != 0 && RelativeError(x) > math.Exp2(-7) {
			return false
		}
		y := float32(rng.Uniform(-1e6, 1e6))
		if x <= y && Quantize(x) > Quantize(y) {
			return false // monotonicity
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: Encode/Decode is the identity on already-quantized data.
func TestEncodeDecodeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		xs := make([]float32, 1+rng.Intn(50))
		for i := range xs {
			xs[i] = Quantize(float32(rng.Uniform(-1e4, 1e4)))
		}
		dec := Decode(Encode(xs))
		for i := range xs {
			if dec[i] != xs[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
