package systolic

import (
	"encoding/binary"
	"fmt"

	"v10/internal/bf16"
)

// Checkpoint wire format: the §3.3 context exactly as it would sit in
// vector memory — a small header followed by bfloat16-packed weights and
// saved input rows. Partial sums never appear.
//
//	magic   uint32  "V10S"
//	dim     uint32
//	nextRow uint32
//	done    uint32
//	nSaved  uint32
//	weights dim×dim bf16
//	inputs  nSaved×dim bf16

const checkpointMagic = 0x56313053 // "V10S"

// Serialize packs the checkpoint into its vector-memory byte layout.
func (c *Checkpoint) Serialize() []byte {
	dim := len(c.Weights)
	header := make([]byte, 20)
	binary.BigEndian.PutUint32(header[0:], checkpointMagic)
	binary.BigEndian.PutUint32(header[4:], uint32(dim))
	binary.BigEndian.PutUint32(header[8:], uint32(c.NextRow))
	binary.BigEndian.PutUint32(header[12:], uint32(c.DoneRows))
	binary.BigEndian.PutUint32(header[16:], uint32(len(c.SavedInputs)))

	out := header
	for _, row := range c.Weights {
		out = append(out, bf16.Encode(row)...)
	}
	for _, row := range c.SavedInputs {
		out = append(out, bf16.Encode(row)...)
	}
	return out
}

// DeserializeCheckpoint parses a serialized checkpoint. Values come back
// bfloat16-quantized, which is what the hardware replays.
func DeserializeCheckpoint(data []byte) (*Checkpoint, error) {
	if len(data) < 20 {
		return nil, fmt.Errorf("systolic: checkpoint too short (%d bytes)", len(data))
	}
	if binary.BigEndian.Uint32(data[0:]) != checkpointMagic {
		return nil, fmt.Errorf("systolic: bad checkpoint magic")
	}
	dim := int(binary.BigEndian.Uint32(data[4:]))
	nextRow := int(binary.BigEndian.Uint32(data[8:]))
	done := int(binary.BigEndian.Uint32(data[12:]))
	nSaved := int(binary.BigEndian.Uint32(data[16:]))
	if dim <= 0 || dim > 1<<14 || nSaved < 0 || nSaved > 1<<20 {
		return nil, fmt.Errorf("systolic: implausible checkpoint geometry dim=%d saved=%d", dim, nSaved)
	}
	need := 20 + 2*dim*dim + 2*nSaved*dim
	if len(data) != need {
		return nil, fmt.Errorf("systolic: checkpoint length %d, want %d", len(data), need)
	}
	cp := &Checkpoint{NextRow: nextRow, DoneRows: done}
	off := 20
	cp.Weights = make([][]float32, dim)
	for i := range cp.Weights {
		cp.Weights[i] = bf16.Decode(data[off : off+2*dim])
		off += 2 * dim
	}
	cp.SavedInputs = make([][]float32, nSaved)
	for i := range cp.SavedInputs {
		cp.SavedInputs[i] = bf16.Decode(data[off : off+2*dim])
		off += 2 * dim
	}
	return cp, nil
}
