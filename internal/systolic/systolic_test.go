package systolic

import (
	"math"
	"testing"
	"testing/quick"

	"v10/internal/mathx"
	"v10/internal/npu"
)

func randMatrix(rows, cols int, rng *mathx.RNG) [][]float32 {
	m := make([][]float32, rows)
	for i := range m {
		m[i] = make([]float32, cols)
		for j := range m[i] {
			m[i][j] = float32(rng.Uniform(-2, 2))
		}
	}
	return m
}

func matricesEqual(a, b [][]float32, tol float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Abs(float64(a[i][j]-b[i][j])) > tol {
				return false
			}
		}
	}
	return true
}

func TestStreamMatchesReference3x3(t *testing.T) {
	// The paper's Fig. 13 scale: a 3×3 array.
	a := New(3)
	w := [][]float32{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	if err := a.LoadWeights(w); err != nil {
		t.Fatal(err)
	}
	rows := [][]float32{{1, 0, 0}, {0, 1, 0}, {0, 0, 1}, {1, 1, 1}}
	got, err := a.Stream(rows)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(rows, w)
	if !matricesEqual(got, want, 1e-5) {
		t.Fatalf("systolic result wrong:\n got %v\nwant %v", got, want)
	}
}

func TestStreamCycleCount(t *testing.T) {
	// n rows through a d×d array: C[n-1][d-1] pops at step (n-1)+d+(d-1),
	// so the stream occupies n+2d-2 cycles (fill + drain).
	d, n := 4, 6
	a := New(d)
	rng := mathx.NewRNG(1)
	if err := a.LoadWeights(randMatrix(d, d, rng)); err != nil {
		t.Fatal(err)
	}
	before := a.Cycles()
	if _, err := a.Stream(randMatrix(n, d, rng)); err != nil {
		t.Fatal(err)
	}
	streamCycles := a.Cycles() - before
	want := int64(n + 2*d - 2)
	if streamCycles != want {
		t.Fatalf("stream cycles = %d, want %d (pipeline fill + drain)", streamCycles, want)
	}
}

func TestLoadWeightsCostsDimCycles(t *testing.T) {
	a := New(8)
	rng := mathx.NewRNG(2)
	if err := a.LoadWeights(randMatrix(8, 8, rng)); err != nil {
		t.Fatal(err)
	}
	if a.Cycles() != 8 {
		t.Fatalf("weight load cycles = %d, want 8", a.Cycles())
	}
}

func TestValidationErrors(t *testing.T) {
	a := New(3)
	if _, err := a.Stream([][]float32{{1, 2, 3}}); err == nil {
		t.Fatal("stream before LoadWeights accepted")
	}
	if err := a.LoadWeights([][]float32{{1}}); err == nil {
		t.Fatal("wrong-shape weights accepted")
	}
	rng := mathx.NewRNG(3)
	if err := a.LoadWeights(randMatrix(3, 3, rng)); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Stream([][]float32{{1, 2}}); err == nil {
		t.Fatal("wrong-width row accepted")
	}
	if _, _, err := a.Preempt(randMatrix(4, 3, rng), 99); err == nil {
		t.Fatal("out-of-range preempt point accepted")
	}
}

func TestNewPanicsOnBadDim(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dim 0 accepted")
		}
	}()
	New(0)
}

// The core §3.3 claim: preempting mid-operator and resuming later produces
// byte-identical results to an undisturbed run.
func TestPreemptResumeCorrectness(t *testing.T) {
	const d, n = 4, 20
	rng := mathx.NewRNG(7)
	w := randMatrix(d, d, rng)
	other := randMatrix(d, d, rng)
	rows := randMatrix(n, d, rng)
	want := Reference(rows, w)

	for _, pushAt := range []int{0, 1, 7, n - 1, n} {
		victim := New(d)
		if err := victim.LoadWeights(w); err != nil {
			t.Fatal(err)
		}
		done, cp, err := victim.Preempt(rows, pushAt)
		if err != nil {
			t.Fatal(err)
		}
		if len(done) != pushAt {
			t.Fatalf("pushAt=%d: drained %d rows, want %d (drain completes in-flight work)",
				pushAt, len(done), pushAt)
		}
		// Another operator borrows the array (the whole point of preemption).
		if err := victim.LoadWeights(other); err != nil {
			t.Fatal(err)
		}
		if _, err := victim.Stream(randMatrix(5, d, rng)); err != nil {
			t.Fatal(err)
		}
		// Resume the preempted operator.
		rest, err := victim.Resume(cp, rows)
		if err != nil {
			t.Fatal(err)
		}
		got := append(done, rest...)
		if !matricesEqual(got, want, 1e-4) {
			t.Fatalf("pushAt=%d: preempt+resume result differs from undisturbed run", pushAt)
		}
	}
}

func TestCheckpointSavesOnlyInputsAndWeights(t *testing.T) {
	const d = 4
	rng := mathx.NewRNG(9)
	a := New(d)
	if err := a.LoadWeights(randMatrix(d, d, rng)); err != nil {
		t.Fatal(err)
	}
	rows := randMatrix(30, d, rng)
	_, cp, err := a.Preempt(rows, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Window is at most 2×dim rows.
	if len(cp.SavedInputs) > 2*d {
		t.Fatalf("saved %d input rows, want ≤ %d", len(cp.SavedInputs), 2*d)
	}
	// Context: 2×dim×dim×2B inputs + dim×dim×2B weights.
	want := int64(2*d*d*2 + d*d*2)
	if got := cp.ContextBytes(); got != want {
		t.Fatalf("context bytes = %d, want %d", got, want)
	}
	// The paper's 25% saving vs draining partial sums.
	naive := a.NaiveContextBytes()
	saving := 1 - float64(cp.ContextBytes())/float64(naive)
	if math.Abs(saving-0.25) > 1e-9 {
		t.Fatalf("context saving = %v, want 0.25", saving)
	}
}

func TestCheckpointAt128MatchesPaper(t *testing.T) {
	// The paper's headline numbers for a 128×128 SA: 96 KB context, 384-cycle
	// switch, consistent with the npu package's analytic cost model.
	const d = 128
	a := New(d)
	if a.SwitchOverheadCycles() != 384 {
		t.Fatalf("switch overhead = %d, want 384", a.SwitchOverheadCycles())
	}
	cfg := npu.DefaultConfig()
	if a.SwitchOverheadCycles() != cfg.SAPreemptCycles() {
		t.Fatal("functional model and analytic cost model disagree on switch cycles")
	}
	// Context bytes with a full window: build cheaply via the formula.
	wantCtx := int64(2*d*d*2 + d*d*2)
	if wantCtx != cfg.SAContextBytes() {
		t.Fatalf("context bytes %d disagree with analytic model %d", wantCtx, cfg.SAContextBytes())
	}
	if a.NaiveContextBytes() != cfg.SANaiveContextBytes() {
		t.Fatal("naive context bytes disagree with analytic model")
	}
}

func TestResumeRejectsTamperedInputs(t *testing.T) {
	const d = 3
	rng := mathx.NewRNG(11)
	a := New(d)
	w := randMatrix(d, d, rng)
	if err := a.LoadWeights(w); err != nil {
		t.Fatal(err)
	}
	rows := randMatrix(10, d, rng)
	_, cp, err := a.Preempt(rows, 4)
	if err != nil {
		t.Fatal(err)
	}
	tampered := randMatrix(10, d, rng)
	if _, err := a.Resume(cp, tampered); err == nil {
		t.Fatal("tampered inputs accepted on resume")
	}
}

// Property: the systolic dataflow equals the reference matmul for random
// shapes, weights, and inputs.
func TestStreamMatchesReferenceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		d := 1 + rng.Intn(8)
		n := 1 + rng.Intn(20)
		w := randMatrix(d, d, rng)
		rows := randMatrix(n, d, rng)
		a := New(d)
		if err := a.LoadWeights(w); err != nil {
			return false
		}
		got, err := a.Stream(rows)
		if err != nil {
			return false
		}
		return matricesEqual(got, Reference(rows, w), 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: preempt+resume equals the undisturbed run at any preemption
// point.
func TestPreemptResumeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		d := 1 + rng.Intn(6)
		n := 2 + rng.Intn(24)
		w := randMatrix(d, d, rng)
		rows := randMatrix(n, d, rng)
		pushAt := rng.Intn(n + 1)

		a := New(d)
		if err := a.LoadWeights(w); err != nil {
			return false
		}
		done, cp, err := a.Preempt(rows, pushAt)
		if err != nil {
			return false
		}
		if err := a.LoadWeights(randMatrix(d, d, rng)); err != nil {
			return false
		}
		rest, err := a.Resume(cp, rows)
		if err != nil {
			return false
		}
		return matricesEqual(append(done, rest...), Reference(rows, w), 1e-3)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
