package systolic

import (
	"testing"
	"testing/quick"

	"v10/internal/mathx"
)

func makeCheckpoint(t *testing.T, d, n, pushAt int, seed uint64) (*Checkpoint, [][]float32, [][]float32) {
	t.Helper()
	rng := mathx.NewRNG(seed)
	w := randMatrix(d, d, rng)
	rows := randMatrix(n, d, rng)
	a := New(d)
	if err := a.LoadWeights(w); err != nil {
		t.Fatal(err)
	}
	_, cp, err := a.Preempt(rows, pushAt)
	if err != nil {
		t.Fatal(err)
	}
	return cp, rows, w
}

func TestCheckpointSerializeRoundTrip(t *testing.T) {
	cp, _, _ := makeCheckpoint(t, 4, 20, 6, 1)
	data := cp.Serialize()
	// Wire size = header + bf16 payload.
	want := 20 + 2*4*4 + 2*len(cp.SavedInputs)*4
	if len(data) != want {
		t.Fatalf("serialized size = %d, want %d", len(data), want)
	}
	back, err := DeserializeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.NextRow != cp.NextRow || back.DoneRows != cp.DoneRows {
		t.Fatalf("metadata lost: %+v vs %+v", back, cp)
	}
	if len(back.Weights) != 4 || len(back.SavedInputs) != len(cp.SavedInputs) {
		t.Fatal("payload shape lost")
	}
}

// A checkpoint that round-trips through its byte format must still resume
// correctly — the full §3.3 path including the 2-byte quantization.
func TestSerializedCheckpointResumes(t *testing.T) {
	const d, n, pushAt = 4, 16, 5
	cp, rows, w := makeCheckpoint(t, d, n, pushAt, 2)
	restored, err := DeserializeCheckpoint(cp.Serialize())
	if err != nil {
		t.Fatal(err)
	}
	a := New(d)
	rest, err := a.Resume(restored, rows)
	if err != nil {
		t.Fatal(err)
	}
	want := Reference(rows, w)[pushAt:]
	for r := range rest {
		for j := range rest[r] {
			diff := float64(rest[r][j] - want[r][j])
			if diff < 0 {
				diff = -diff
			}
			if diff > 1e-3 {
				t.Fatalf("resumed[%d][%d] = %v, want %v", r, j, rest[r][j], want[r][j])
			}
		}
	}
}

func TestDeserializeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		make([]byte, 10),                   // too short
		make([]byte, 64),                   // bad magic
		append(validHeader(4, 99), 0, 0),   // wrong length
		append(validHeader(0, 0), 0, 0, 0), // zero dim
	}
	for i, data := range cases {
		if _, err := DeserializeCheckpoint(data); err == nil {
			t.Errorf("garbage %d accepted", i)
		}
	}
}

func validHeader(dim, saved int) []byte {
	h := make([]byte, 20)
	h[0], h[1], h[2], h[3] = 0x56, 0x31, 0x30, 0x53
	h[7] = byte(dim)
	h[19] = byte(saved)
	return h
}

// Property: serialize → deserialize preserves the bf16-quantized payload.
func TestCheckpointSerializeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		d := 1 + rng.Intn(6)
		n := 1 + rng.Intn(16)
		pushAt := rng.Intn(n + 1)
		w := randMatrix(d, d, rng)
		rows := randMatrix(n, d, rng)
		a := New(d)
		if a.LoadWeights(w) != nil {
			return false
		}
		_, cp, err := a.Preempt(rows, pushAt)
		if err != nil {
			return false
		}
		back, err := DeserializeCheckpoint(cp.Serialize())
		if err != nil {
			return false
		}
		// Weights were already quantized inside the array, so they survive
		// the 2-byte format exactly.
		for i := range cp.Weights {
			for j := range cp.Weights[i] {
				if back.Weights[i][j] != cp.Weights[i][j] {
					return false
				}
			}
		}
		return len(back.SavedInputs) == len(cp.SavedInputs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
