package systolic

import (
	"testing"

	"v10/internal/mathx"
)

// FuzzDeserializeCheckpoint hardens the checkpoint parser: arbitrary bytes
// must be rejected or produce a structurally sound checkpoint.
func FuzzDeserializeCheckpoint(f *testing.F) {
	rng := mathx.NewRNG(1)
	a := New(3)
	if err := a.LoadWeights(randMatrix(3, 3, rng)); err != nil {
		f.Fatal(err)
	}
	_, cp, err := a.Preempt(randMatrix(10, 3, rng), 4)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(cp.Serialize())
	f.Add([]byte{})
	f.Add(make([]byte, 20))
	f.Add(validHeader(3, 2))

	f.Fuzz(func(t *testing.T, data []byte) {
		back, err := DeserializeCheckpoint(data)
		if err != nil {
			return
		}
		dim := len(back.Weights)
		if dim == 0 {
			t.Fatal("accepted checkpoint with no weights")
		}
		for _, row := range back.Weights {
			if len(row) != dim {
				t.Fatal("accepted ragged weights")
			}
		}
		for _, row := range back.SavedInputs {
			if len(row) != dim {
				t.Fatal("accepted ragged inputs")
			}
		}
		// Accepted checkpoints must re-serialize to the same byte count.
		if len(back.Serialize()) != len(data) {
			t.Fatal("re-serialization changed size")
		}
	})
}
