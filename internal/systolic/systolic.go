// Package systolic is a functional, cycle-accurate model of the NPU's
// weight-stationary systolic array (paper §2.1, Fig. 2) and of V10's SA
// operator preemption mechanism (§3.3, Fig. 13).
//
// The array is a dim×dim grid of processing elements. PE(i,j) holds weight
// w[i][j]; activations flow left→right, partial sums flow top→bottom. Input
// row r enters the left edge skewed (element i at cycle r+i), and result
// element C[r][j] pops from the bottom of column j at cycle r+dim-1+j+1.
// At small dims this reproduces exactly the timeline of the paper's Fig. 13
// 3×3 example, and it validates the §3.3 claims from first principles:
//
//   - a context switch exposes 3×dim cycles (dim weight swap + 2×dim
//     pipeline refill), with the drain fully overlapped with useful output;
//   - only 2-byte inputs (≤ 2×dim rows) and weights are checkpointed —
//     never the 4-byte partial sums — giving the paper's 96 KB at dim=128,
//     25% below the naive 128 KB drain.
package systolic

import (
	"errors"
	"fmt"

	"v10/internal/bf16"
)

// Array executes matrix multiplications C = A·W for a stationary dim×dim
// weight matrix W and streamed input rows A.
type Array struct {
	dim     int
	weights [][]float32
	cycles  int64
}

// New returns an idle dim×dim array.
func New(dim int) *Array {
	if dim <= 0 {
		panic("systolic: non-positive dimension")
	}
	return &Array{dim: dim}
}

// Dim returns the array dimension.
func (a *Array) Dim() int { return a.dim }

// Cycles returns the cycles consumed so far (weight loads + streaming).
func (a *Array) Cycles() int64 { return a.cycles }

// LoadWeights installs W into the PEs, costing dim cycles (the weight rows
// stream down the array). Weights are quantized to bfloat16 on the way in,
// as in the real hardware (§3.3 footnote 2).
func (a *Array) LoadWeights(w [][]float32) error {
	if err := a.checkMatrix(w); err != nil {
		return err
	}
	a.weights = make([][]float32, a.dim)
	for i := range w {
		a.weights[i] = bf16.QuantizeSlice(append([]float32(nil), w[i]...))
	}
	a.cycles += int64(a.dim)
	return nil
}

func (a *Array) checkMatrix(m [][]float32) error {
	if len(m) != a.dim {
		return fmt.Errorf("systolic: matrix has %d rows, want %d", len(m), a.dim)
	}
	for i, row := range m {
		if len(row) != a.dim {
			return fmt.Errorf("systolic: row %d has %d cols, want %d", i, len(row), a.dim)
		}
	}
	return nil
}

// Weights returns a copy of the currently loaded weights (nil if none).
func (a *Array) Weights() [][]float32 {
	if a.weights == nil {
		return nil
	}
	out := make([][]float32, a.dim)
	for i := range a.weights {
		out[i] = append([]float32(nil), a.weights[i]...)
	}
	return out
}

// grid simulates the PE array cycle by cycle. act/psum hold the values
// latched at the end of the previous cycle.
type grid struct {
	dim       int
	w         [][]float32
	act       [][]float32
	actValid  [][]bool
	psum      [][]float32
	psumValid [][]bool
}

func newGrid(dim int, w [][]float32) *grid {
	g := &grid{dim: dim, w: w}
	g.act = make2d(dim)
	g.psum = make2d(dim)
	g.actValid = make2db(dim)
	g.psumValid = make2db(dim)
	return g
}

func make2d(d int) [][]float32 {
	m := make([][]float32, d)
	for i := range m {
		m[i] = make([]float32, d)
	}
	return m
}

func make2db(d int) [][]bool {
	m := make([][]bool, d)
	for i := range m {
		m[i] = make([]bool, d)
	}
	return m
}

// step advances one cycle. edge[i] is the (possibly invalid) activation
// entering row i this cycle. It returns the valid outputs leaving the bottom
// edge this cycle as (column, value) pairs.
func (g *grid) step(edge []float32, edgeValid []bool) (cols []int, vals []float32) {
	d := g.dim
	newAct := make2d(d)
	newActValid := make2db(d)
	newPsum := make2d(d)
	newPsumValid := make2db(d)

	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			var inAct float32
			var inValid bool
			if j == 0 {
				inAct, inValid = edge[i], edgeValid[i]
			} else {
				inAct, inValid = g.act[i][j-1], g.actValid[i][j-1]
			}
			newAct[i][j] = inAct
			newActValid[i][j] = inValid

			var up float32
			var upValid bool
			if i > 0 {
				up, upValid = g.psum[i-1][j], g.psumValid[i-1][j]
			}
			if inValid {
				newPsum[i][j] = up + g.w[i][j]*inAct
				newPsumValid[i][j] = true
			} else {
				// Bubble: forward the partial sum unchanged.
				newPsum[i][j] = up
				newPsumValid[i][j] = upValid
			}
		}
	}
	g.act, g.actValid = newAct, newActValid
	g.psum, g.psumValid = newPsum, newPsumValid

	for j := 0; j < d; j++ {
		if g.psumValid[d-1][j] {
			cols = append(cols, j)
			vals = append(vals, g.psum[d-1][j])
		}
	}
	return cols, vals
}

// Stream multiplies the input rows by the loaded weights, pushing one row
// per cycle and running until the pipeline drains. It returns the result
// rows and advances the cycle counter by the exact pipeline occupancy.
func (a *Array) Stream(rows [][]float32) ([][]float32, error) {
	out, _, err := a.stream(rows, -1)
	return out, err
}

// Checkpoint is the §3.3 preemption context: the stationary weights plus the
// input rows that had left vector memory but whose results had not fully
// drained when the preemption was invoked. Partial sums are never saved.
type Checkpoint struct {
	Weights     [][]float32
	SavedInputs [][]float32 // rows to replay on resume
	NextRow     int         // index of the first row in SavedInputs
	DoneRows    int         // result rows already produced before the switch
}

// ContextBytes returns the vector-memory footprint of the checkpoint using
// the paper's 2-byte bfloat16 encoding for inputs and weights.
func (c *Checkpoint) ContextBytes() int64 {
	var n int64
	for _, r := range c.SavedInputs {
		n += int64(len(r)) * 2
	}
	for _, r := range c.Weights {
		n += int64(len(r)) * 2
	}
	return n
}

// NaiveContextBytes is what draining the array directly would have to save:
// the full in-flight inputs and weights plus dim×dim float32 partial sums.
func (a *Array) NaiveContextBytes() int64 {
	d := int64(a.dim)
	return 2*d*d*2 + d*d*4
}

// Preempt streams rows but invokes a preemption after pushAt rows have been
// pushed (the preemption timer of §3.2 firing mid-operator). Following
// Fig. 13, the array keeps draining — producing valid output, no wasted
// cycles — while the not-yet-pushed window is redirected to vector memory,
// then the weights are swapped out. It returns the results produced before
// the switch and the checkpoint needed by Resume.
func (a *Array) Preempt(rows [][]float32, pushAt int) ([][]float32, *Checkpoint, error) {
	if pushAt < 0 || pushAt > len(rows) {
		return nil, nil, fmt.Errorf("systolic: preempt point %d out of range", pushAt)
	}
	done, _, err := a.stream(rows[:pushAt], -1)
	if err != nil {
		return nil, nil, err
	}
	// Save the diverted input window: everything already fetched from vmem
	// into the push FIFOs — at most 2×dim rows (skew depth + array depth).
	window := 2 * a.dim
	end := pushAt + window
	if end > len(rows) {
		end = len(rows)
	}
	saved := make([][]float32, 0, end-pushAt)
	for _, r := range rows[pushAt:end] {
		saved = append(saved, append([]float32(nil), r...))
	}
	cp := &Checkpoint{
		Weights:     a.Weights(),
		SavedInputs: saved,
		NextRow:     pushAt,
		DoneRows:    len(done),
	}
	// Weight save overlaps the incoming operator's weight load (Fig. 13
	// step 4); the exposed dim cycles are charged by that LoadWeights call.
	return done, cp, nil
}

// Resume restores a preempted operator: reload its weights (dim cycles),
// replay the saved input window, then continue with the remaining rows.
// rows must be the same input the operator was preempted from.
func (a *Array) Resume(cp *Checkpoint, rows [][]float32) ([][]float32, error) {
	if err := a.LoadWeights(cp.Weights); err != nil {
		return nil, err
	}
	// Replay: saved window first, then the untouched tail. The saved rows
	// are byte-identical to the original, so replay equals re-streaming
	// from NextRow.
	tail := rows[cp.NextRow:]
	for i, saved := range cp.SavedInputs {
		if i >= len(tail) {
			return nil, errors.New("systolic: checkpoint window exceeds remaining rows")
		}
		for j := range saved {
			// Compare in the bfloat16 domain: the checkpoint stores what the
			// hardware would have pushed.
			if bf16.Quantize(saved[j]) != bf16.Quantize(tail[i][j]) {
				return nil, errors.New("systolic: checkpoint does not match input rows")
			}
		}
	}
	return a.Stream(tail)
}

// SwitchOverheadCycles returns the exposed context-switch cost the paper
// derives for this array: dim cycles of weight swap plus 2×dim cycles of
// pipeline refill before the resumed operator pops outputs again — 384 for
// a 128×128 array.
func (a *Array) SwitchOverheadCycles() int64 { return int64(3 * a.dim) }

// stream pushes rows one per cycle (stopping input after stopAfter rows if
// stopAfter >= 0) and steps until the pipeline drains.
func (a *Array) stream(rows [][]float32, stopAfter int) ([][]float32, int64, error) {
	if a.weights == nil {
		return nil, 0, errors.New("systolic: stream before LoadWeights")
	}
	for i, r := range rows {
		if len(r) != a.dim {
			return nil, 0, fmt.Errorf("systolic: input row %d has %d cols, want %d", i, len(r), a.dim)
		}
	}
	n := len(rows)
	if stopAfter >= 0 && stopAfter < n {
		n = stopAfter
	}
	d := a.dim
	// Inputs are bfloat16 on the push FIFOs; partial sums stay float32.
	qrows := make([][]float32, n)
	for i := 0; i < n; i++ {
		qrows[i] = bf16.QuantizeSlice(append([]float32(nil), rows[i]...))
	}
	rows = qrows
	out := make([][]float32, n)
	for i := range out {
		out[i] = make([]float32, d)
	}
	g := newGrid(d, a.weights)

	edge := make([]float32, d)
	edgeValid := make([]bool, d)
	received := 0
	var t int64
	for received < n*d {
		// Element i of row r enters edge row i at cycle r+i.
		for i := 0; i < d; i++ {
			r := t - int64(i)
			if r >= 0 && r < int64(n) {
				edge[i] = rows[r][i]
				edgeValid[i] = true
			} else {
				edgeValid[i] = false
			}
		}
		cols, vals := g.step(edge, edgeValid)
		t++
		for k, j := range cols {
			// C[r][j] pops at cycle r+(d-1)+1 … account r from timing.
			r := t - int64(d) - int64(j)
			if r < 0 || r >= int64(n) {
				return nil, 0, fmt.Errorf("systolic: unexpected output timing (t=%d, j=%d)", t, j)
			}
			out[r][j] = vals[k]
			received++
		}
	}
	a.cycles += t
	return out, t, nil
}

// Reference computes what the hardware computes: bfloat16-quantized inputs
// times bfloat16-quantized weights with float32 accumulation. Use it as the
// golden model for Array results.
func Reference(rows, w [][]float32) [][]float32 {
	qw := make([][]float32, len(w))
	for i := range w {
		qw[i] = bf16.QuantizeSlice(append([]float32(nil), w[i]...))
	}
	qr := make([][]float32, len(rows))
	for i := range rows {
		qr[i] = bf16.QuantizeSlice(append([]float32(nil), rows[i]...))
	}
	return MatMul(qr, qw)
}

// MatMul is the exact float32 reference: C[r][j] = Σ_i rows[r][i]·W[i][j].
func MatMul(rows, w [][]float32) [][]float32 {
	out := make([][]float32, len(rows))
	for r := range rows {
		out[r] = make([]float32, len(w[0]))
		for i := range w {
			a := rows[r][i]
			if a == 0 {
				continue
			}
			for j := range w[i] {
				out[r][j] += a * w[i][j]
			}
		}
	}
	return out
}
