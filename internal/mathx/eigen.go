package mathx

import (
	"math"
	"sort"
)

func sqrt(x float64) float64 { return math.Sqrt(x) }

// EigenSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns eigenvalues in descending order and the
// matching unit eigenvectors as the columns of the returned matrix.
// It panics if a is not square.
func EigenSym(a *Matrix) (values []float64, vectors *Matrix) {
	n := a.Rows
	if a.Cols != n {
		panic("mathx: EigenSym requires a square matrix")
	}
	// Work on a copy; accumulate rotations in v.
	w := a.Clone()
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0.0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < 1e-22 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < 1e-18 {
					continue
				}
				app, aqq := w.At(p, p), w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c
				// Apply rotation J(p,q,theta) on both sides of w.
				for k := 0; k < n; k++ {
					wkp, wkq := w.At(k, p), w.At(k, q)
					w.Set(k, p, c*wkp-s*wkq)
					w.Set(k, q, s*wkp+c*wkq)
				}
				for k := 0; k < n; k++ {
					wpk, wqk := w.At(p, k), w.At(q, k)
					w.Set(p, k, c*wpk-s*wqk)
					w.Set(q, k, s*wpk+c*wqk)
				}
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	// Extract and sort by descending eigenvalue.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{w.At(i, i), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })

	values = make([]float64, n)
	vectors = NewMatrix(n, n)
	for out, p := range pairs {
		values[out] = p.val
		for k := 0; k < n; k++ {
			vectors.Set(k, out, v.At(k, p.idx))
		}
	}
	return values, vectors
}
