package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !almostEq(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almostEq(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almostEq(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{3}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -2, 8, 0}
	if Min(xs) != -2 || Max(xs) != 8 || Sum(xs) != 9 {
		t.Errorf("Min/Max/Sum wrong: %v %v %v", Min(xs), Max(xs), Sum(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be ±Inf")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p, want float64
	}{
		{0, 1}, {100, 10}, {50, 5.5}, {25, 3.25}, {95, 9.55},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); !almostEq(got, c.want, 1e-9) {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile should be 0")
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Errorf("Percentile mutated input: %v", xs)
	}
}

func TestGeoMean(t *testing.T) {
	if got := GeoMean([]float64{1, 4, 16}); !almostEq(got, 4, 1e-9) {
		t.Errorf("GeoMean = %v, want 4", got)
	}
	if got := GeoMean([]float64{-1, 0}); got != 0 {
		t.Errorf("GeoMean of non-positives = %v, want 0", got)
	}
	if got := GeoMean([]float64{2, -1, 8}); !almostEq(got, 4, 1e-9) {
		t.Errorf("GeoMean skipping non-positive = %v, want 4", got)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(6, 3, -1); got != 2 {
		t.Errorf("Ratio(6,3) = %v, want 2", got)
	}
	if got := Ratio(6, 0, 0); got != 0 {
		t.Errorf("Ratio with zero denominator = %v, want fallback 0", got)
	}
	if got := Ratio(0, 0, 1); got != 1 {
		t.Errorf("Ratio(0,0) = %v, want fallback 1", got)
	}
}

// The summary/report helpers must never emit NaN for empty or zero-valued
// inputs — a single NaN cell poisons every aggregate drawn from a table.
func TestNoNaNOnDegenerateInputs(t *testing.T) {
	checks := map[string]float64{
		"Mean(nil)":        Mean(nil),
		"Variance(nil)":    Variance(nil),
		"StdDev(nil)":      StdDev(nil),
		"Percentile(nil)":  Percentile(nil, 95),
		"GeoMean(nil)":     GeoMean(nil),
		"GeoMean(zeros)":   GeoMean([]float64{0, 0}),
		"GeoMean(NaN)":     GeoMean([]float64{math.NaN()}),
		"JainFairness(0s)": JainFairness([]float64{0, 0}),
		"Ratio(1,0,0)":     Ratio(1, 0, 0),
	}
	for name, v := range checks {
		if math.IsNaN(v) {
			t.Errorf("%s = NaN", name)
		}
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestJainFairness(t *testing.T) {
	if got := JainFairness([]float64{1, 1, 1, 1}); !almostEq(got, 1, 1e-12) {
		t.Errorf("equal shares fairness = %v, want 1", got)
	}
	if got := JainFairness([]float64{1, 0, 0, 0}); !almostEq(got, 0.25, 1e-12) {
		t.Errorf("single-user fairness = %v, want 0.25", got)
	}
	if got := JainFairness(nil); got != 1 {
		t.Errorf("empty fairness = %v, want 1", got)
	}
}

// Property: mean is always within [min, max].
func TestMeanBoundedProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		m := Mean(clean)
		return m >= Min(clean)-1e-6 && m <= Max(clean)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: percentile is monotone in p and bounded by min/max.
func TestPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []float64, p1, p2 float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		p1 = math.Mod(math.Abs(p1), 101)
		p2 = math.Mod(math.Abs(p2), 101)
		if p1 > p2 {
			p1, p2 = p2, p1
		}
		a, b := Percentile(xs, p1), Percentile(xs, p2)
		return a <= b+1e-9 && a >= Min(xs)-1e-9 && b <= Max(xs)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Jain fairness index lies in [1/n, 1].
func TestJainFairnessRangeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e50 {
				xs = append(xs, math.Abs(x))
			}
		}
		if len(xs) == 0 {
			return true
		}
		j := JainFairness(xs)
		return j >= 1/float64(len(xs))-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
