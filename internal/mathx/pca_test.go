package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

// Data spread mostly along the (1,1) direction.
func correlatedData(n int, rng *RNG) *Matrix {
	m := NewMatrix(n, 2)
	for i := 0; i < n; i++ {
		t := rng.Uniform(-10, 10)
		m.Set(i, 0, t+rng.Norm()*0.1)
		m.Set(i, 1, t+rng.Norm()*0.1)
	}
	return m
}

func TestPCAFindsDominantDirection(t *testing.T) {
	rng := NewRNG(1)
	data := correlatedData(200, rng)
	p := FitPCA(data, 1)
	// After standardization the dominant direction of perfectly correlated
	// features is (±1/√2, ±1/√2).
	a, b := p.Components.At(0, 0), p.Components.At(1, 0)
	if !almostEq(math.Abs(a), math.Abs(b), 1e-3) {
		t.Fatalf("dominant component not balanced: (%v, %v)", a, b)
	}
	if p.Explained[0] < 0.95 {
		t.Fatalf("explained variance = %v, want > 0.95", p.Explained[0])
	}
}

func TestPCATransformCentersData(t *testing.T) {
	rng := NewRNG(2)
	data := correlatedData(100, rng)
	p := FitPCA(data, 2)
	proj := p.TransformAll(data)
	for c := 0; c < 2; c++ {
		sum := 0.0
		for i := 0; i < proj.Rows; i++ {
			sum += proj.At(i, c)
		}
		if math.Abs(sum/float64(proj.Rows)) > 1e-9 {
			t.Fatalf("projected column %d not centered: mean %v", c, sum/float64(proj.Rows))
		}
	}
}

func TestPCAKClamped(t *testing.T) {
	data := MatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 7}})
	p := FitPCA(data, 10)
	if p.Components.Cols != 2 {
		t.Fatalf("k should clamp to feature count, got %d", p.Components.Cols)
	}
	p = FitPCA(data, 0)
	if p.Components.Cols != 1 {
		t.Fatalf("k should clamp up to 1, got %d", p.Components.Cols)
	}
}

func TestPCAConstantFeatureSafe(t *testing.T) {
	data := MatrixFromRows([][]float64{{1, 5}, {2, 5}, {3, 5}})
	p := FitPCA(data, 2)
	out := p.Transform([]float64{2, 5})
	for _, v := range out {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("constant feature produced non-finite projection: %v", out)
		}
	}
}

func TestPCATransformDimMismatchPanics(t *testing.T) {
	p := FitPCA(MatrixFromRows([][]float64{{1, 2}, {3, 4}}), 1)
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	p.Transform([]float64{1, 2, 3})
}

// Property: explained variance fractions are in [0,1], non-increasing, and
// sum to at most 1.
func TestPCAExplainedVarianceProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		rows, cols := 5+rng.Intn(20), 2+rng.Intn(4)
		data := NewMatrix(rows, cols)
		for i := range data.Data {
			data.Data[i] = rng.Uniform(-100, 100)
		}
		p := FitPCA(data, cols)
		total := 0.0
		prev := math.Inf(1)
		for _, e := range p.Explained {
			if e < -1e-9 || e > 1+1e-9 || e > prev+1e-9 {
				return false
			}
			prev = e
			total += e
		}
		return total <= 1+1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
