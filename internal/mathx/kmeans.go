package mathx

import "math"

// KMeansResult holds a fitted K-Means clustering.
type KMeansResult struct {
	Centroids  *Matrix // K×D centroid coordinates
	Labels     []int   // cluster index per input row
	Inertia    float64 // sum of squared distances to assigned centroids
	Iterations int     // Lloyd iterations actually run
}

// KMeans clusters the rows of data into k clusters using K-Means++
// initialization followed by Lloyd's algorithm. The rng makes the run
// deterministic. maxIter bounds the Lloyd iterations (25 is plenty for the
// small feature sets used by the collocation mechanism). It panics if k < 1;
// when data has fewer rows than k, every row gets its own cluster.
func KMeans(data *Matrix, k, maxIter int, rng *RNG) *KMeansResult {
	if k < 1 {
		panic("mathx: KMeans requires k >= 1")
	}
	n, d := data.Rows, data.Cols
	if n == 0 {
		return &KMeansResult{Centroids: NewMatrix(0, d)}
	}
	if k > n {
		k = n
	}
	if maxIter < 1 {
		maxIter = 1
	}

	centroids := kmeansPlusPlusInit(data, k, rng)
	labels := make([]int, n)
	counts := make([]int, k)

	var inertia float64
	iter := 0
	for ; iter < maxIter; iter++ {
		// Assignment step.
		changed := false
		inertia = 0
		for i := 0; i < n; i++ {
			best, bestDist := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				dist := sqDist(data.Data[i*d:(i+1)*d], centroids.Data[c*d:(c+1)*d])
				if dist < bestDist {
					best, bestDist = c, dist
				}
			}
			if labels[i] != best {
				labels[i] = best
				changed = true
			}
			inertia += bestDist
		}
		if !changed && iter > 0 {
			break
		}
		// Update step.
		for i := range centroids.Data {
			centroids.Data[i] = 0
		}
		for c := range counts {
			counts[c] = 0
		}
		for i := 0; i < n; i++ {
			c := labels[i]
			counts[c]++
			for j := 0; j < d; j++ {
				centroids.Data[c*d+j] += data.At(i, j)
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from its centroid.
				far, farDist := 0, -1.0
				for i := 0; i < n; i++ {
					dist := sqDist(data.Data[i*d:(i+1)*d], centroids.Data[labels[i]*d:(labels[i]+1)*d])
					if dist > farDist {
						far, farDist = i, dist
					}
				}
				copy(centroids.Data[c*d:(c+1)*d], data.Data[far*d:(far+1)*d])
				continue
			}
			for j := 0; j < d; j++ {
				centroids.Data[c*d+j] /= float64(counts[c])
			}
		}
	}
	return &KMeansResult{Centroids: centroids, Labels: labels, Inertia: inertia, Iterations: iter}
}

// Clone deep-copies the fitted clustering so one fit can seed several
// independent online-update streams without sharing centroid storage.
func (r *KMeansResult) Clone() *KMeansResult {
	out := &KMeansResult{Inertia: r.Inertia, Iterations: r.Iterations}
	if r.Centroids != nil {
		out.Centroids = NewMatrix(r.Centroids.Rows, r.Centroids.Cols)
		copy(out.Centroids.Data, r.Centroids.Data)
	}
	if r.Labels != nil {
		out.Labels = append([]int(nil), r.Labels...)
	}
	return out
}

// UpdateCentroid nudges centroid c toward x by learning rate lr (the
// MacQueen sequential K-Means step: centroid += lr * (x - centroid)) and
// returns the Euclidean distance the centroid moved. lr is clamped to [0,1].
func (r *KMeansResult) UpdateCentroid(c int, x []float64, lr float64) float64 {
	d := r.Centroids.Cols
	if len(x) != d {
		panic("mathx: KMeansResult.UpdateCentroid dimension mismatch")
	}
	if c < 0 || c >= r.Centroids.Rows {
		panic("mathx: KMeansResult.UpdateCentroid centroid out of range")
	}
	if lr < 0 {
		lr = 0
	} else if lr > 1 {
		lr = 1
	}
	row := r.Centroids.Data[c*d : (c+1)*d]
	moved := 0.0
	for j := 0; j < d; j++ {
		step := lr * (x[j] - row[j])
		moved += step * step
		row[j] += step
	}
	return math.Sqrt(moved)
}

// Predict returns the nearest centroid index for x.
func (r *KMeansResult) Predict(x []float64) int {
	k, d := r.Centroids.Rows, r.Centroids.Cols
	if len(x) != d {
		panic("mathx: KMeansResult.Predict dimension mismatch")
	}
	best, bestDist := 0, math.Inf(1)
	for c := 0; c < k; c++ {
		dist := sqDist(x, r.Centroids.Data[c*d:(c+1)*d])
		if dist < bestDist {
			best, bestDist = c, dist
		}
	}
	return best
}

func kmeansPlusPlusInit(data *Matrix, k int, rng *RNG) *Matrix {
	n, d := data.Rows, data.Cols
	centroids := NewMatrix(k, d)
	first := rng.Intn(n)
	copy(centroids.Data[0:d], data.Data[first*d:(first+1)*d])

	minDist := make([]float64, n)
	for i := range minDist {
		minDist[i] = sqDist(data.Data[i*d:(i+1)*d], centroids.Data[0:d])
	}
	for c := 1; c < k; c++ {
		total := 0.0
		for _, v := range minDist {
			total += v
		}
		var pick int
		if total == 0 {
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, v := range minDist {
				acc += v
				if acc >= target {
					pick = i
					break
				}
			}
		}
		copy(centroids.Data[c*d:(c+1)*d], data.Data[pick*d:(pick+1)*d])
		for i := 0; i < n; i++ {
			dist := sqDist(data.Data[i*d:(i+1)*d], centroids.Data[c*d:(c+1)*d])
			if dist < minDist[i] {
				minDist[i] = dist
			}
		}
	}
	return centroids
}

func sqDist(a, b []float64) float64 {
	s := 0.0
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}
