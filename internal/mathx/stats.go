package mathx

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 for fewer than two
// samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. It returns 0 for an empty slice and
// does not modify xs.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return PercentileSorted(sorted, p)
}

// PercentileSorted is Percentile over an already ascending-sorted slice: no
// copy, no sort. Callers computing several quantiles of the same sample sort
// once and read each quantile from the sorted buffer.
func PercentileSorted(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Ratio returns num/den, or fallback when den is zero — the guard for
// report paths where a degenerate run (no requests, zero cycles) must render
// as a sentinel instead of poisoning a table with NaN or Inf.
func Ratio(num, den, fallback float64) float64 {
	if den == 0 {
		return fallback
	}
	return num / den
}

// GeoMean returns the geometric mean of xs. Non-positive (and NaN) entries
// are skipped; it returns the documented sentinel 0 when no positive entries
// exist, never NaN.
func GeoMean(xs []float64) float64 {
	s, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Clamp limits x to [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// JainFairness returns Jain's fairness index of xs: (Σx)² / (n·Σx²).
// It is 1 when all entries are equal and 1/n in the most unfair case.
// It returns 1 for empty or all-zero input.
func JainFairness(xs []float64) float64 {
	if len(xs) == 0 {
		return 1
	}
	sum, sq := 0.0, 0.0
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 1
	}
	return sum * sum / (float64(len(xs)) * sq)
}
