package mathx

// PCA is a fitted principal component analysis: a linear projection onto the
// leading eigenvectors of the (standardized) feature covariance matrix.
// The V10 collocation mechanism (§3.4 of the paper) uses PCA to compress
// workload resource-utilization features before K-Means clustering.
type PCA struct {
	Means      []float64 // per-feature mean used for centering
	Scales     []float64 // per-feature std-dev used for standardization (1 when constant)
	Components *Matrix   // Features×K projection matrix (columns are components)
	Explained  []float64 // fraction of total variance captured by each kept component
}

// FitPCA fits a PCA with k components on data (rows are observations,
// columns are features). Features are standardized (zero mean, unit variance)
// before the covariance eigendecomposition so that features on different
// scales — utilization fractions vs. operator lengths in cycles — contribute
// comparably. k is clamped to the number of features.
func FitPCA(data *Matrix, k int) *PCA {
	if k < 1 {
		k = 1
	}
	if k > data.Cols {
		k = data.Cols
	}
	means := data.ColMeans()
	scales := data.ColStdDevs()
	for j, s := range scales {
		if s == 0 {
			scales[j] = 1
		}
	}
	std := NewMatrix(data.Rows, data.Cols)
	for i := 0; i < data.Rows; i++ {
		for j := 0; j < data.Cols; j++ {
			std.Set(i, j, (data.At(i, j)-means[j])/scales[j])
		}
	}
	values, vectors := EigenSym(std.Covariance())

	total := 0.0
	for _, v := range values {
		if v > 0 {
			total += v
		}
	}
	comp := NewMatrix(data.Cols, k)
	explained := make([]float64, k)
	for c := 0; c < k; c++ {
		for r := 0; r < data.Cols; r++ {
			comp.Set(r, c, vectors.At(r, c))
		}
		if total > 0 && values[c] > 0 {
			explained[c] = values[c] / total
		}
	}
	return &PCA{Means: means, Scales: scales, Components: comp, Explained: explained}
}

// Transform projects a single observation onto the fitted components.
func (p *PCA) Transform(x []float64) []float64 {
	if len(x) != len(p.Means) {
		panic("mathx: PCA.Transform feature-count mismatch")
	}
	k := p.Components.Cols
	out := make([]float64, k)
	for c := 0; c < k; c++ {
		s := 0.0
		for j := range x {
			s += (x[j] - p.Means[j]) / p.Scales[j] * p.Components.At(j, c)
		}
		out[c] = s
	}
	return out
}

// TransformAll projects every row of data.
func (p *PCA) TransformAll(data *Matrix) *Matrix {
	out := NewMatrix(data.Rows, p.Components.Cols)
	for i := 0; i < data.Rows; i++ {
		row := p.Transform(data.Row(i))
		copy(out.Data[i*out.Cols:(i+1)*out.Cols], row)
	}
	return out
}
