package mathx

import "fmt"

// Matrix is a dense row-major matrix of float64.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols
}

// NewMatrix returns a zeroed rows×cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("mathx: negative matrix dimension")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// MatrixFromRows builds a matrix from row slices. All rows must have equal
// length. The data is copied.
func MatrixFromRows(rows [][]float64) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			panic(fmt.Sprintf("mathx: ragged rows: row %d has %d cols, want %d", i, len(r), cols))
		}
		copy(m.Data[i*cols:(i+1)*cols], r)
	}
	return m
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns a copy of row i.
func (m *Matrix) Row(i int) []float64 {
	out := make([]float64, m.Cols)
	copy(out, m.Data[i*m.Cols:(i+1)*m.Cols])
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// T returns the transpose of m as a new matrix.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Set(j, i, m.At(i, j))
		}
	}
	return t
}

// Mul returns m×b. It panics on a dimension mismatch.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("mathx: mul dimension mismatch %dx%d × %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < b.Cols; j++ {
				out.Data[i*out.Cols+j] += a * b.At(k, j)
			}
		}
	}
	return out
}

// ColMeans returns the mean of each column.
func (m *Matrix) ColMeans() []float64 {
	means := make([]float64, m.Cols)
	if m.Rows == 0 {
		return means
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			means[j] += m.At(i, j)
		}
	}
	for j := range means {
		means[j] /= float64(m.Rows)
	}
	return means
}

// ColStdDevs returns the population standard deviation of each column.
func (m *Matrix) ColStdDevs() []float64 {
	means := m.ColMeans()
	sds := make([]float64, m.Cols)
	if m.Rows < 2 {
		return sds
	}
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			d := m.At(i, j) - means[j]
			sds[j] += d * d
		}
	}
	for j := range sds {
		sds[j] = sqrt(sds[j] / float64(m.Rows))
	}
	return sds
}

// Covariance returns the Cols×Cols covariance matrix of the rows of m
// (population covariance, rows are observations).
func (m *Matrix) Covariance() *Matrix {
	means := m.ColMeans()
	cov := NewMatrix(m.Cols, m.Cols)
	if m.Rows < 2 {
		return cov
	}
	for i := 0; i < m.Rows; i++ {
		for a := 0; a < m.Cols; a++ {
			da := m.At(i, a) - means[a]
			for b := a; b < m.Cols; b++ {
				cov.Data[a*m.Cols+b] += da * (m.At(i, b) - means[b])
			}
		}
	}
	n := float64(m.Rows)
	for a := 0; a < m.Cols; a++ {
		for b := a; b < m.Cols; b++ {
			v := cov.At(a, b) / n
			cov.Set(a, b, v)
			cov.Set(b, a, v)
		}
	}
	return cov
}
