package mathx

// Silhouette returns the mean silhouette coefficient of a clustering: for
// each point, (b−a)/max(a,b) where a is the mean distance to its own
// cluster's other members and b the smallest mean distance to another
// cluster. Values near 1 mean tight, well-separated clusters; near 0,
// overlapping ones. Points alone in their cluster score 0 (Rousseeuw's
// convention). Used to sanity-check the K=5 choice of the collocation
// clustering (paper Fig. 15).
func Silhouette(data *Matrix, labels []int) float64 {
	n := data.Rows
	if n != len(labels) || n == 0 {
		return 0
	}
	k := 0
	for _, l := range labels {
		if l+1 > k {
			k = l + 1
		}
	}
	if k < 2 {
		return 0
	}
	counts := make([]int, k)
	for _, l := range labels {
		counts[l]++
	}

	d := data.Cols
	dist := func(i, j int) float64 {
		return sqrtF(sqDist(data.Data[i*d:(i+1)*d], data.Data[j*d:(j+1)*d]))
	}

	total := 0.0
	for i := 0; i < n; i++ {
		li := labels[i]
		if counts[li] < 2 {
			continue // silhouette 0 by convention
		}
		sums := make([]float64, k)
		for j := 0; j < n; j++ {
			if j == i {
				continue
			}
			sums[labels[j]] += dist(i, j)
		}
		a := sums[li] / float64(counts[li]-1)
		b := -1.0
		for c := 0; c < k; c++ {
			if c == li || counts[c] == 0 {
				continue
			}
			mean := sums[c] / float64(counts[c])
			if b < 0 || mean < b {
				b = mean
			}
		}
		if b < 0 {
			continue
		}
		den := a
		if b > den {
			den = b
		}
		if den > 0 {
			total += (b - a) / den
		}
	}
	return total / float64(n)
}

func sqrtF(x float64) float64 { return sqrt(x) }
