package mathx

import (
	"math"
	"testing"
)

func TestMinMaxInt64(t *testing.T) {
	cases := []struct {
		name     string
		a, b     int64
		min, max int64
	}{
		{"positive", 3, 7, 3, 7},
		{"reversed", 7, 3, 3, 7},
		{"equal", 5, 5, 5, 5},
		{"negative", -4, -9, -9, -4},
		{"mixed-sign", -1, 1, -1, 1},
		{"zero", 0, -0, 0, 0},
		{"max-int64", math.MaxInt64, math.MaxInt64 - 1, math.MaxInt64 - 1, math.MaxInt64},
		{"min-int64", math.MinInt64, 0, math.MinInt64, 0},
		{"extremes", math.MinInt64, math.MaxInt64, math.MinInt64, math.MaxInt64},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := MinInt64(tc.a, tc.b); got != tc.min {
				t.Errorf("MinInt64(%d, %d) = %d, want %d", tc.a, tc.b, got, tc.min)
			}
			if got := MaxInt64(tc.a, tc.b); got != tc.max {
				t.Errorf("MaxInt64(%d, %d) = %d, want %d", tc.a, tc.b, got, tc.max)
			}
		})
	}
}

func TestMinMaxInt(t *testing.T) {
	cases := []struct {
		name     string
		a, b     int
		min, max int
	}{
		{"positive", 2, 9, 2, 9},
		{"reversed", 9, 2, 2, 9},
		{"equal", -3, -3, -3, -3},
		{"negative", -10, -2, -10, -2},
		{"mixed-sign", 4, -4, -4, 4},
		{"max-int", math.MaxInt, 1, 1, math.MaxInt},
		{"min-int", math.MinInt, -1, math.MinInt, -1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := MinInt(tc.a, tc.b); got != tc.min {
				t.Errorf("MinInt(%d, %d) = %d, want %d", tc.a, tc.b, got, tc.min)
			}
			if got := MaxInt(tc.a, tc.b); got != tc.max {
				t.Errorf("MaxInt(%d, %d) = %d, want %d", tc.a, tc.b, got, tc.max)
			}
		})
	}
}
