package mathx

import (
	"math"
	"testing"
)

func twoClusterFit(t *testing.T) *KMeansResult {
	t.Helper()
	data := NewMatrix(6, 2)
	pts := [][2]float64{{0, 0}, {0.2, 0}, {0, 0.2}, {10, 10}, {10.2, 10}, {10, 10.2}}
	for i, p := range pts {
		data.Set(i, 0, p[0])
		data.Set(i, 1, p[1])
	}
	return KMeans(data, 2, 50, NewRNG(7))
}

func TestKMeansClone(t *testing.T) {
	r := twoClusterFit(t)
	c := r.Clone()
	if &c.Centroids.Data[0] == &r.Centroids.Data[0] {
		t.Fatal("clone shares the centroid backing array")
	}
	if len(c.Labels) != len(r.Labels) {
		t.Fatalf("labels not cloned: %d vs %d", len(c.Labels), len(r.Labels))
	}
	before := r.Centroids.At(0, 0)
	c.UpdateCentroid(0, []float64{100, 100}, 0.5)
	if r.Centroids.At(0, 0) != before {
		t.Fatal("updating the clone mutated the original centroids")
	}
}

func TestUpdateCentroidMovesTowardPoint(t *testing.T) {
	r := twoClusterFit(t)
	x := []float64{1, 1}
	c := r.Predict(x)
	d0 := math.Sqrt(sqDist([]float64{r.Centroids.At(c, 0), r.Centroids.At(c, 1)}, x))
	moved := r.UpdateCentroid(c, x, 0.25)
	d1 := math.Sqrt(sqDist([]float64{r.Centroids.At(c, 0), r.Centroids.At(c, 1)}, x))
	if moved <= 0 {
		t.Fatalf("no movement reported: %v", moved)
	}
	if d1 >= d0 {
		t.Fatalf("centroid did not approach the point: %v -> %v", d0, d1)
	}
	// The reported movement is exactly lr × the prior distance.
	if math.Abs(moved-0.25*d0) > 1e-12 {
		t.Fatalf("moved %v, want lr*dist = %v", moved, 0.25*d0)
	}
	// lr=1 teleports the centroid onto the point; lr=0 is a no-op.
	r.UpdateCentroid(c, x, 1)
	if r.Centroids.At(c, 0) != 1 || r.Centroids.At(c, 1) != 1 {
		t.Fatalf("lr=1 did not land on the point: (%v,%v)", r.Centroids.At(c, 0), r.Centroids.At(c, 1))
	}
	if m := r.UpdateCentroid(c, x, 0); m != 0 {
		t.Fatalf("lr=0 moved %v", m)
	}
	// Out-of-range learning rates clamp instead of overshooting.
	r.UpdateCentroid(c, []float64{3, 3}, 7)
	if r.Centroids.At(c, 0) != 3 || r.Centroids.At(c, 1) != 3 {
		t.Fatalf("lr>1 not clamped to 1: (%v,%v)", r.Centroids.At(c, 0), r.Centroids.At(c, 1))
	}
	if m := r.UpdateCentroid(c, x, -4); m != 0 {
		t.Fatalf("negative lr not clamped to 0, moved %v", m)
	}
}

func TestUpdateCentroidPanics(t *testing.T) {
	r := twoClusterFit(t)
	for name, f := range map[string]func(){
		"bad-cluster": func() { r.UpdateCentroid(5, []float64{0, 0}, 0.5) },
		"bad-dim":     func() { r.UpdateCentroid(0, []float64{0}, 0.5) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
}
