package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 0, 1)
	m.Set(1, 2, 5)
	if m.At(0, 0) != 1 || m.At(1, 2) != 5 || m.At(0, 1) != 0 {
		t.Fatal("At/Set broken")
	}
	r := m.Row(1)
	r[0] = 99
	if m.At(1, 0) == 99 {
		t.Fatal("Row must return a copy")
	}
}

func TestMatrixFromRowsAndClone(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone shares storage")
	}
}

func TestMatrixFromRowsRaggedPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("ragged rows did not panic")
		}
	}()
	MatrixFromRows([][]float64{{1, 2}, {3}})
}

func TestTranspose(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.T()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(2, 1) != 6 || tr.At(0, 1) != 4 {
		t.Fatalf("transpose wrong: %+v", tr)
	}
}

func TestMul(t *testing.T) {
	a := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b := MatrixFromRows([][]float64{{5, 6}, {7, 8}})
	c := a.Mul(b)
	want := [][]float64{{19, 22}, {43, 50}}
	for i := range want {
		for j := range want[i] {
			if c.At(i, j) != want[i][j] {
				t.Fatalf("Mul[%d][%d] = %v, want %v", i, j, c.At(i, j), want[i][j])
			}
		}
	}
}

func TestMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	NewMatrix(2, 3).Mul(NewMatrix(2, 3))
}

func TestColMeansAndStdDevs(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 10}, {3, 10}})
	means := m.ColMeans()
	if means[0] != 2 || means[1] != 10 {
		t.Fatalf("ColMeans = %v", means)
	}
	sds := m.ColStdDevs()
	if !almostEq(sds[0], 1, 1e-12) || sds[1] != 0 {
		t.Fatalf("ColStdDevs = %v", sds)
	}
}

func TestCovarianceKnown(t *testing.T) {
	// Perfectly correlated columns: cov = var.
	m := MatrixFromRows([][]float64{{1, 2}, {2, 4}, {3, 6}})
	cov := m.Covariance()
	varX := 2.0 / 3.0
	if !almostEq(cov.At(0, 0), varX, 1e-12) {
		t.Errorf("var(x) = %v, want %v", cov.At(0, 0), varX)
	}
	if !almostEq(cov.At(0, 1), 2*varX, 1e-12) || !almostEq(cov.At(1, 0), 2*varX, 1e-12) {
		t.Errorf("cov(x,y) = %v, want %v", cov.At(0, 1), 2*varX)
	}
	if !almostEq(cov.At(1, 1), 4*varX, 1e-12) {
		t.Errorf("var(y) = %v, want %v", cov.At(1, 1), 4*varX)
	}
}

// Property: covariance matrices are symmetric with non-negative diagonals.
func TestCovarianceSymmetricProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		rows, cols := 3+rng.Intn(10), 2+rng.Intn(5)
		m := NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = rng.Uniform(-10, 10)
		}
		cov := m.Covariance()
		for a := 0; a < cols; a++ {
			if cov.At(a, a) < -1e-9 {
				return false
			}
			for b := 0; b < cols; b++ {
				if math.Abs(cov.At(a, b)-cov.At(b, a)) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: (A^T)^T == A.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		m := NewMatrix(1+rng.Intn(6), 1+rng.Intn(6))
		for i := range m.Data {
			m.Data[i] = rng.Float64()
		}
		tt := m.T().T()
		for i := range m.Data {
			if m.Data[i] != tt.Data[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
