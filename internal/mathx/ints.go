package mathx

// Integer min/max helpers shared across the simulator packages. Several
// packages used to carry private copies (trace, models, experiments); they
// are deduplicated here so edge-case behaviour (negative values, equal
// arguments, extreme int64 values) is tested in exactly one place.

// MinInt64 returns the smaller of a and b.
func MinInt64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// MaxInt64 returns the larger of a and b.
func MaxInt64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// MinInt returns the smaller of a and b.
func MinInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// MaxInt returns the larger of a and b.
func MaxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
