package mathx

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a, b := NewRNG(1), NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64MeanRoughlyHalf(t *testing.T) {
	r := NewRNG(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnBoundsAndPanic(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 1000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestNormMoments(t *testing.T) {
	r := NewRNG(5)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.Norm()
		sum += x
		sumSq += x * x
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestLogNormalMeanMatchesTarget(t *testing.T) {
	r := NewRNG(9)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.LogNormalMean(100, 0.3)
	}
	mean := sum / n
	if math.Abs(mean-100) > 2 {
		t.Fatalf("lognormal mean = %v, want ~100", mean)
	}
}

func TestLogNormalMeanDegenerateCases(t *testing.T) {
	r := NewRNG(1)
	if got := r.LogNormalMean(50, 0); got != 50 {
		t.Errorf("cv=0 should return mean exactly, got %v", got)
	}
	if got := r.LogNormalMean(0, 0.5); got != 0 {
		t.Errorf("mean=0 should return 0, got %v", got)
	}
	if got := r.LogNormalMean(-5, 0.5); got != 0 {
		t.Errorf("negative mean should return 0, got %v", got)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(13)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) len = %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(21)
	child := r.Split()
	if r.Uint64() == child.Uint64() {
		t.Fatal("split stream mirrors parent")
	}
}
