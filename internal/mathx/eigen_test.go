package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEigenSymDiagonal(t *testing.T) {
	m := MatrixFromRows([][]float64{{3, 0}, {0, 1}})
	vals, vecs := EigenSym(m)
	if !almostEq(vals[0], 3, 1e-9) || !almostEq(vals[1], 1, 1e-9) {
		t.Fatalf("eigenvalues = %v, want [3 1]", vals)
	}
	// First eigenvector should be ±e1.
	if !almostEq(math.Abs(vecs.At(0, 0)), 1, 1e-9) || !almostEq(vecs.At(1, 0), 0, 1e-9) {
		t.Fatalf("first eigenvector = [%v %v]", vecs.At(0, 0), vecs.At(1, 0))
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := MatrixFromRows([][]float64{{2, 1}, {1, 2}})
	vals, vecs := EigenSym(m)
	if !almostEq(vals[0], 3, 1e-9) || !almostEq(vals[1], 1, 1e-9) {
		t.Fatalf("eigenvalues = %v", vals)
	}
	// Eigenvector for 3 is (1,1)/sqrt2.
	ratio := vecs.At(0, 0) / vecs.At(1, 0)
	if !almostEq(ratio, 1, 1e-6) {
		t.Fatalf("leading eigenvector not (1,1): ratio %v", ratio)
	}
}

func TestEigenSymNonSquarePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-square did not panic")
		}
	}()
	EigenSym(NewMatrix(2, 3))
}

// Property: for random symmetric matrices, A·v = λ·v for each returned pair,
// eigenvalues come out sorted descending, and eigenvectors are orthonormal.
func TestEigenSymReconstructionProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 2 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.Uniform(-5, 5)
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs := EigenSym(a)
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-9 {
				return false
			}
		}
		// Check A·v_k == λ_k·v_k.
		for k := 0; k < n; k++ {
			for i := 0; i < n; i++ {
				av := 0.0
				for j := 0; j < n; j++ {
					av += a.At(i, j) * vecs.At(j, k)
				}
				if math.Abs(av-vals[k]*vecs.At(i, k)) > 1e-6 {
					return false
				}
			}
		}
		// Orthonormality.
		for p := 0; p < n; p++ {
			for q := 0; q < n; q++ {
				dot := 0.0
				for i := 0; i < n; i++ {
					dot += vecs.At(i, p) * vecs.At(i, q)
				}
				want := 0.0
				if p == q {
					want = 1
				}
				if math.Abs(dot-want) > 1e-6 {
					return false
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
