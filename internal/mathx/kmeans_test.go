package mathx

import (
	"testing"
	"testing/quick"
)

// threeBlobs builds n points around three well-separated centers.
func threeBlobs(n int, rng *RNG) (*Matrix, []int) {
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	m := NewMatrix(n, 2)
	truth := make([]int, n)
	for i := 0; i < n; i++ {
		c := i % 3
		truth[i] = c
		m.Set(i, 0, centers[c][0]+rng.Norm()*0.5)
		m.Set(i, 1, centers[c][1]+rng.Norm()*0.5)
	}
	return m, truth
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := NewRNG(3)
	data, truth := threeBlobs(150, rng)
	res := KMeans(data, 3, 50, rng)
	// Every ground-truth cluster must map to exactly one label.
	mapping := map[int]map[int]int{}
	for i, label := range res.Labels {
		g := truth[i]
		if mapping[g] == nil {
			mapping[g] = map[int]int{}
		}
		mapping[g][label]++
	}
	used := map[int]bool{}
	for g, labels := range mapping {
		if len(labels) != 1 {
			t.Fatalf("ground-truth cluster %d split across labels %v", g, labels)
		}
		for l := range labels {
			if used[l] {
				t.Fatalf("label %d used by two ground-truth clusters", l)
			}
			used[l] = true
		}
	}
}

func TestKMeansDeterministicGivenSeed(t *testing.T) {
	data, _ := threeBlobs(90, NewRNG(5))
	a := KMeans(data, 3, 50, NewRNG(7))
	b := KMeans(data, 3, 50, NewRNG(7))
	for i := range a.Labels {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("same-seed KMeans runs diverged")
		}
	}
}

func TestKMeansKGreaterThanN(t *testing.T) {
	data := MatrixFromRows([][]float64{{0, 0}, {5, 5}})
	res := KMeans(data, 10, 10, NewRNG(1))
	if res.Centroids.Rows != 2 {
		t.Fatalf("k should clamp to n, got %d centroids", res.Centroids.Rows)
	}
}

func TestKMeansEmptyInput(t *testing.T) {
	res := KMeans(NewMatrix(0, 3), 2, 10, NewRNG(1))
	if len(res.Labels) != 0 {
		t.Fatal("empty input should give empty labels")
	}
}

func TestKMeansPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	KMeans(NewMatrix(3, 2), 0, 10, NewRNG(1))
}

func TestKMeansPredictMatchesTraining(t *testing.T) {
	rng := NewRNG(11)
	data, _ := threeBlobs(120, rng)
	res := KMeans(data, 3, 50, rng)
	for i := 0; i < data.Rows; i++ {
		if got := res.Predict(data.Row(i)); got != res.Labels[i] {
			t.Fatalf("Predict(row %d) = %d, want %d", i, got, res.Labels[i])
		}
	}
}

// Property: every label is a valid cluster index and each point is assigned
// to its nearest centroid (Lloyd fixed point of the assignment step).
func TestKMeansAssignmentOptimalProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 5 + rng.Intn(40)
		data := NewMatrix(n, 2)
		for i := range data.Data {
			data.Data[i] = rng.Uniform(-20, 20)
		}
		k := 1 + rng.Intn(4)
		res := KMeans(data, k, 50, rng)
		for i := 0; i < n; i++ {
			if res.Labels[i] < 0 || res.Labels[i] >= res.Centroids.Rows {
				return false
			}
			assigned := sqDist(data.Row(i), res.Centroids.Row(res.Labels[i]))
			for c := 0; c < res.Centroids.Rows; c++ {
				if sqDist(data.Row(i), res.Centroids.Row(c)) < assigned-1e-9 {
					return false
				}
			}
		}
		return res.Inertia >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
