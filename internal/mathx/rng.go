// Package mathx provides the small numeric toolkit the V10 simulator and the
// clustering-based collocation mechanism depend on: a deterministic RNG,
// descriptive statistics, dense matrices, a Jacobi eigensolver, PCA, and
// K-Means++. Everything is stdlib-only and deterministic given a seed so that
// simulations and experiments are exactly reproducible.
package mathx

import "math"

// RNG is a deterministic splitmix64-based pseudo random number generator.
// The zero value is not usable; construct with NewRNG. RNG is not safe for
// concurrent use; give each goroutine its own (use Split).
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical streams on every platform.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed + 0x9e3779b97f4a7c15}
}

// Split derives an independent generator from r's stream, advancing r.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64() ^ 0xa5a5a5a55a5a5a5a)
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform sample in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform sample in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("mathx: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Uniform returns a uniform sample in [lo, hi).
func (r *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Norm returns a standard normal sample via Box-Muller.
func (r *RNG) Norm() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// LogNormal returns a sample whose logarithm is normal with the given
// location mu and scale sigma (both of the underlying normal).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Norm())
}

// LogNormalMean returns a lognormal sample with the given mean and the given
// coefficient of variation cv (stddev/mean). cv == 0 returns mean exactly.
func (r *RNG) LogNormalMean(mean, cv float64) float64 {
	if mean <= 0 {
		return 0
	}
	if cv <= 0 {
		return mean
	}
	sigma2 := math.Log(1 + cv*cv)
	mu := math.Log(mean) - sigma2/2
	return r.LogNormal(mu, math.Sqrt(sigma2))
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}
