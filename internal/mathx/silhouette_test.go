package mathx

import (
	"testing"
	"testing/quick"
)

func TestSilhouetteWellSeparated(t *testing.T) {
	rng := NewRNG(5)
	data, truth := threeBlobs(90, rng)
	s := Silhouette(data, truth)
	if s < 0.8 {
		t.Fatalf("well-separated blobs silhouette = %v, want > 0.8", s)
	}
	// A random labeling should score much worse.
	randomLabels := make([]int, data.Rows)
	for i := range randomLabels {
		randomLabels[i] = rng.Intn(3)
	}
	if r := Silhouette(data, randomLabels); r >= s-0.3 {
		t.Fatalf("random labels silhouette %v should be far below %v", r, s)
	}
}

func TestSilhouetteDegenerateCases(t *testing.T) {
	data := MatrixFromRows([][]float64{{0, 0}, {1, 1}})
	if Silhouette(data, []int{0, 0}) != 0 {
		t.Fatal("single cluster should score 0")
	}
	if Silhouette(data, []int{0}) != 0 {
		t.Fatal("mismatched labels should score 0")
	}
	if Silhouette(NewMatrix(0, 2), nil) != 0 {
		t.Fatal("empty input should score 0")
	}
	// Singleton clusters use the 0 convention.
	if s := Silhouette(data, []int{0, 1}); s != 0 {
		t.Fatalf("all-singleton clustering = %v, want 0", s)
	}
}

// Property: silhouette is always within [-1, 1].
func TestSilhouetteRangeProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := NewRNG(seed)
		n := 2 + rng.Intn(30)
		data := NewMatrix(n, 2)
		for i := range data.Data {
			data.Data[i] = rng.Uniform(-10, 10)
		}
		labels := make([]int, n)
		k := 1 + rng.Intn(4)
		for i := range labels {
			labels[i] = rng.Intn(k)
		}
		s := Silhouette(data, labels)
		return s >= -1-1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
