// Package dma models the NPU's DMA engine (paper §2.1): transfers between
// off-chip HBM and the on-chip SRAM buffers execute independently from the
// core pipeline, so computation and data movement overlap. The operator
// scheduler relies on exactly this engine: it "uses DMA to load the
// instructions from the off-chip HBM into the on-chip instruction memory.
// The Ready bit indicates whether the DMA is completed" (§3.2).
//
// The engine serializes queued transfers at a fixed bandwidth over a
// discrete-event simulation; DoubleBuffer demonstrates the §2.1 overlap that
// motivates treating operator stall time as hideable.
package dma

import (
	"fmt"

	"v10/internal/obs"
	"v10/internal/sim"
)

// Limiter gates transfer admission onto the channel: Charge debits bytes at
// cycle now and returns the cycle the transfer may start moving — now when
// budget remains, later when the transfer must stall behind a refill. A
// vnpu.Slice's windowed token bucket satisfies it, which is how a slice's HBM
// quota throttles (never sheds) the DMA traffic behind it.
type Limiter interface {
	Charge(now int64, bytes float64) int64
}

// Engine is a single DMA channel moving bytes at a fixed rate.
type Engine struct {
	engine    *sim.Engine
	bandwidth float64 // bytes per cycle

	busyUntil  sim.Cycle
	bytesMoved int64
	busyCycles int64
	pending    int

	// Limiter, when non-nil, is charged for every transfer at enqueue time;
	// the transfer is admitted to the FIFO only at the cycle the limiter
	// grants (throttle delay shows up in the EvDMA queue-wait argument).
	Limiter Limiter

	// Tracer, when non-nil, receives an EvDMA span per completed transfer
	// (Dur = transfer cycles, Arg0 = bytes, Arg1 = FIFO queueing delay).
	Tracer obs.Tracer
}

// New creates a DMA channel on the simulation engine.
func New(engine *sim.Engine, bytesPerCycle float64) *Engine {
	if bytesPerCycle <= 0 {
		panic("dma: non-positive bandwidth")
	}
	return &Engine{engine: engine, bandwidth: bytesPerCycle}
}

// BytesMoved returns the total traffic completed.
func (d *Engine) BytesMoved() int64 { return d.bytesMoved }

// BusyCycles returns the cycles the channel has spent transferring.
func (d *Engine) BusyCycles() int64 { return d.busyCycles }

// Pending returns the number of queued-but-unfinished transfers.
func (d *Engine) Pending() int { return d.pending }

// Enqueue schedules a transfer of the given size; onDone fires at its
// completion cycle (transfers are FIFO and serialized on the channel — this
// sets the Ready bit in the scheduler's context table).
func (d *Engine) Enqueue(bytes int64, onDone func(now sim.Cycle)) error {
	if bytes < 0 {
		return fmt.Errorf("dma: negative transfer size %d", bytes)
	}
	cycles := sim.Cycle(float64(bytes)/d.bandwidth + 0.999999)
	if cycles < 1 && bytes > 0 {
		cycles = 1
	}
	start := d.engine.Now()
	if d.Limiter != nil && bytes > 0 {
		if grant := d.Limiter.Charge(start, float64(bytes)); grant > start {
			start = grant
		}
	}
	if d.busyUntil > start {
		start = d.busyUntil
	}
	done := start + cycles
	d.busyUntil = done
	d.busyCycles += cycles
	d.pending++
	queued := start - d.engine.Now()
	d.engine.Schedule(done, func(now sim.Cycle) {
		d.bytesMoved += bytes
		d.pending--
		if d.Tracer != nil {
			d.Tracer.Emit(obs.Event{
				Time: now, Dur: cycles, Type: obs.EvDMA,
				WIdx: -1, FUKind: obs.FUNone, FUIndex: -1, Request: -1, Op: -1,
				Arg0: float64(bytes), Arg1: float64(queued),
			})
		}
		if onDone != nil {
			onDone(now)
		}
	})
	return nil
}

// Chunk is one unit of a double-buffered pipeline: fetch Bytes via DMA, then
// spend ComputeCycles on it.
type Chunk struct {
	Bytes         int64
	ComputeCycles int64
}

// DoubleBufferStats reports a pipeline execution.
type DoubleBufferStats struct {
	TotalCycles    int64
	TransferCycles int64
	ComputeCycles  int64
	SerialCycles   int64 // what a non-overlapped execution would cost
}

// Overlap returns the fraction of the serial cost hidden by the pipeline.
func (s DoubleBufferStats) Overlap() float64 {
	if s.SerialCycles == 0 {
		return 0
	}
	return 1 - float64(s.TotalCycles)/float64(s.SerialCycles)
}

// DoubleBuffer runs chunks through a two-stage pipeline on a fresh
// simulation: chunk i+1's DMA overlaps chunk i's compute, the §2.1 pattern.
// It returns the measured statistics.
func DoubleBuffer(bytesPerCycle float64, chunks []Chunk) (DoubleBufferStats, error) {
	var stats DoubleBufferStats
	engine := &sim.Engine{}
	d := New(engine, bytesPerCycle)

	computeFree := sim.Cycle(0) // when the compute unit becomes free
	var issue func(i int, now sim.Cycle)
	issue = func(i int, now sim.Cycle) {
		if i >= len(chunks) {
			return
		}
		c := chunks[i]
		err := d.Enqueue(c.Bytes, func(ready sim.Cycle) {
			start := ready
			if computeFree > start {
				start = computeFree
			}
			computeFree = start + c.ComputeCycles
			stats.ComputeCycles += c.ComputeCycles
			// Fetch the next chunk while this one computes.
			issue(i+1, ready)
		})
		if err != nil {
			panic(err) // sizes validated below
		}
	}
	for _, c := range chunks {
		if c.Bytes < 0 || c.ComputeCycles < 0 {
			return stats, fmt.Errorf("dma: invalid chunk %+v", c)
		}
		transfer := int64(float64(c.Bytes)/bytesPerCycle + 0.999999)
		stats.SerialCycles += transfer + c.ComputeCycles
	}
	if len(chunks) > 0 {
		issue(0, 0)
	}
	for engine.Step() {
	}
	stats.TotalCycles = int64(computeFree)
	if engine.Now() > computeFree {
		stats.TotalCycles = engine.Now()
	}
	stats.TransferCycles = d.BusyCycles()
	return stats, nil
}
