package dma

import (
	"testing"

	"v10/internal/obs"
	"v10/internal/sim"
)

func TestEnqueueEmitsDMAEvents(t *testing.T) {
	e := &sim.Engine{}
	d := New(e, 100) // 100 B/cycle
	ring := obs.NewRing(16)
	d.Tracer = ring
	if err := d.Enqueue(1000, nil); err != nil { // 10 cycles
		t.Fatal(err)
	}
	if err := d.Enqueue(500, nil); err != nil { // 5 cycles, queued behind the first
		t.Fatal(err)
	}
	for e.Step() {
	}
	evs := ring.Events()
	if len(evs) != 2 {
		t.Fatalf("traced %d DMA events, want 2", len(evs))
	}
	first, second := evs[0], evs[1]
	if first.Type != obs.EvDMA || second.Type != obs.EvDMA {
		t.Fatalf("wrong event types: %+v %+v", first, second)
	}
	if first.Dur != 10 || first.Arg0 != 1000 || first.Arg1 != 0 {
		t.Fatalf("first transfer = %+v, want dur 10, 1000 bytes, no queue wait", first)
	}
	// The second transfer waits the full 10 cycles of the first in the FIFO.
	if second.Dur != 5 || second.Arg0 != 500 || second.Arg1 != 10 {
		t.Fatalf("second transfer = %+v, want dur 5, 500 bytes, 10-cycle wait", second)
	}
	// Span-at-end convention: Time is the completion cycle.
	if first.Time != 10 || second.Time != 15 {
		t.Fatalf("completion times = %d, %d; want 10, 15", first.Time, second.Time)
	}
}
