package dma

import (
	"testing"
	"testing/quick"

	"v10/internal/mathx"
	"v10/internal/sim"
)

func TestEnqueueSerializesFIFO(t *testing.T) {
	engine := &sim.Engine{}
	d := New(engine, 100) // 100 B/cycle
	var order []int
	var times []sim.Cycle
	for i := 0; i < 3; i++ {
		i := i
		if err := d.Enqueue(1000, func(now sim.Cycle) { // 10 cycles each
			order = append(order, i)
			times = append(times, now)
		}); err != nil {
			t.Fatal(err)
		}
	}
	for engine.Step() {
	}
	if len(order) != 3 || order[0] != 0 || order[2] != 2 {
		t.Fatalf("completion order = %v", order)
	}
	if times[0] != 10 || times[1] != 20 || times[2] != 30 {
		t.Fatalf("completion times = %v, want [10 20 30]", times)
	}
	if d.BytesMoved() != 3000 || d.BusyCycles() != 30 || d.Pending() != 0 {
		t.Fatalf("accounting wrong: %d bytes, %d cycles, %d pending",
			d.BytesMoved(), d.BusyCycles(), d.Pending())
	}
}

func TestEnqueueValidation(t *testing.T) {
	engine := &sim.Engine{}
	d := New(engine, 100)
	if err := d.Enqueue(-1, nil); err == nil {
		t.Fatal("negative transfer accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero bandwidth accepted")
		}
	}()
	New(engine, 0)
}

func TestZeroByteTransferCompletes(t *testing.T) {
	engine := &sim.Engine{}
	d := New(engine, 100)
	fired := false
	if err := d.Enqueue(0, func(sim.Cycle) { fired = true }); err != nil {
		t.Fatal(err)
	}
	for engine.Step() {
	}
	if !fired {
		t.Fatal("zero-byte transfer never completed")
	}
}

func TestDoubleBufferBalanced(t *testing.T) {
	// Transfer time == compute time per chunk: the pipeline should hide
	// nearly half of the serial cost.
	chunks := make([]Chunk, 10)
	for i := range chunks {
		chunks[i] = Chunk{Bytes: 1000, ComputeCycles: 10} // 10cy transfer + 10cy compute
	}
	stats, err := DoubleBuffer(100, chunks)
	if err != nil {
		t.Fatal(err)
	}
	if stats.SerialCycles != 200 {
		t.Fatalf("serial = %d, want 200", stats.SerialCycles)
	}
	// Pipelined: first transfer (10) + 10 computes (100) = 110.
	if stats.TotalCycles != 110 {
		t.Fatalf("pipelined = %d, want 110", stats.TotalCycles)
	}
	if ov := stats.Overlap(); ov < 0.4 {
		t.Fatalf("overlap = %v, want ≈ 0.45", ov)
	}
}

func TestDoubleBufferComputeBound(t *testing.T) {
	chunks := make([]Chunk, 5)
	for i := range chunks {
		chunks[i] = Chunk{Bytes: 100, ComputeCycles: 100} // 1cy transfer
	}
	stats, err := DoubleBuffer(100, chunks)
	if err != nil {
		t.Fatal(err)
	}
	// Transfers hide completely behind compute: 1 + 5×100.
	if stats.TotalCycles != 501 {
		t.Fatalf("compute-bound total = %d, want 501", stats.TotalCycles)
	}
}

func TestDoubleBufferTransferBound(t *testing.T) {
	chunks := make([]Chunk, 5)
	for i := range chunks {
		chunks[i] = Chunk{Bytes: 10000, ComputeCycles: 10} // 100cy transfer
	}
	stats, err := DoubleBuffer(100, chunks)
	if err != nil {
		t.Fatal(err)
	}
	// Compute hides behind transfers: 5×100 + final compute 10.
	if stats.TotalCycles != 510 {
		t.Fatalf("transfer-bound total = %d, want 510", stats.TotalCycles)
	}
}

func TestDoubleBufferEmptyAndInvalid(t *testing.T) {
	stats, err := DoubleBuffer(100, nil)
	if err != nil || stats.TotalCycles != 0 {
		t.Fatalf("empty pipeline: %+v, %v", stats, err)
	}
	if _, err := DoubleBuffer(100, []Chunk{{Bytes: -1}}); err == nil {
		t.Fatal("invalid chunk accepted")
	}
}

// Property: the pipeline never beats max(Σtransfer, Σcompute) and never
// loses to the serial schedule.
func TestDoubleBufferBoundsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := mathx.NewRNG(seed)
		n := 1 + rng.Intn(12)
		chunks := make([]Chunk, n)
		var xfer, comp int64
		for i := range chunks {
			chunks[i] = Chunk{
				Bytes:         int64(rng.Intn(5000)),
				ComputeCycles: int64(rng.Intn(200)),
			}
			xfer += int64(float64(chunks[i].Bytes)/100 + 0.999999)
			comp += chunks[i].ComputeCycles
		}
		stats, err := DoubleBuffer(100, chunks)
		if err != nil {
			return false
		}
		lower := xfer
		if comp > lower {
			lower = comp
		}
		return stats.TotalCycles >= lower && stats.TotalCycles <= stats.SerialCycles
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}
