package dma

import (
	"testing"

	"v10/internal/npu"
	"v10/internal/sim"
	"v10/internal/vnpu"
)

// A vNPU slice's token bucket is the intended Limiter implementation.
var _ Limiter = (*vnpu.Slice)(nil)

// stubLimiter grants every charge at a fixed future cycle and records what it
// was asked.
type stubLimiter struct {
	grant   int64
	charges []float64
}

func (l *stubLimiter) Charge(now int64, bytes float64) int64 {
	l.charges = append(l.charges, bytes)
	if l.grant > now {
		return l.grant
	}
	return now
}

func TestLimiterDelaysAdmission(t *testing.T) {
	engine := &sim.Engine{}
	d := New(engine, 100) // 100 B/cycle: 1000 bytes = 10 cycles
	lim := &stubLimiter{grant: 50}
	d.Limiter = lim

	var done []sim.Cycle
	for i := 0; i < 2; i++ {
		if err := d.Enqueue(1000, func(now sim.Cycle) { done = append(done, now) }); err != nil {
			t.Fatal(err)
		}
	}
	for engine.Step() {
	}
	// Both transfers admitted at the limiter's grant cycle, then serialized
	// FIFO: 50+10 and 50+20.
	if len(done) != 2 || done[0] != 60 || done[1] != 70 {
		t.Fatalf("completions = %v, want [60 70]", done)
	}
	if len(lim.charges) != 2 || lim.charges[0] != 1000 || lim.charges[1] != 1000 {
		t.Fatalf("limiter charges = %v", lim.charges)
	}
	if d.BytesMoved() != 2000 {
		t.Fatalf("bytes moved = %d", d.BytesMoved())
	}
}

func TestLimiterSkipsZeroByteTransfers(t *testing.T) {
	engine := &sim.Engine{}
	d := New(engine, 100)
	lim := &stubLimiter{grant: 50}
	d.Limiter = lim
	fired := false
	if err := d.Enqueue(0, func(sim.Cycle) { fired = true }); err != nil {
		t.Fatal(err)
	}
	for engine.Step() {
	}
	if !fired {
		t.Fatal("zero-byte transfer never completed")
	}
	if len(lim.charges) != 0 {
		t.Fatalf("limiter charged for a zero-byte transfer: %v", lim.charges)
	}
}

func TestSliceTokenBucketAsLimiter(t *testing.T) {
	engine := &sim.Engine{}
	d := New(engine, 1000)
	cfg := npu.DefaultConfig()
	window := int64(1000)
	quota := 0.5 * cfg.HBMBytesPerCycle() * float64(window)
	p, err := vnpu.NewPartition(cfg, []vnpu.Template{{Compute: 1, VMem: 1, HBM: 0.5}}, window)
	if err != nil {
		t.Fatal(err)
	}
	sl := p.Slices[0]
	d.Limiter = sl

	// First transfer consumes most of the window; the second must wait for
	// the next refill, stalling — not shedding — its completion.
	var done []sim.Cycle
	enq := func(bytes int64) {
		if err := d.Enqueue(bytes, func(now sim.Cycle) { done = append(done, now) }); err != nil {
			t.Fatal(err)
		}
	}
	enq(int64(0.9 * quota))
	enq(int64(0.9 * quota))
	for engine.Step() {
	}
	if len(done) != 2 {
		t.Fatalf("completions = %v", done)
	}
	if done[0] >= window {
		t.Fatalf("first transfer finished at %d, want inside window 0", done[0])
	}
	if done[1] < window {
		t.Fatalf("second transfer finished at %d, want throttled into window 1", done[1])
	}
	st := sl.Stats()
	if st.ThrottleStalls != 1 {
		t.Fatalf("throttle stalls = %d, want 1", st.ThrottleStalls)
	}
	if d.BytesMoved() != 2*int64(0.9*quota) {
		t.Fatalf("bytes moved = %d", d.BytesMoved())
	}
}
