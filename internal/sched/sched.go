// Package sched implements V10's tensor operator scheduler (paper §3.2–§3.3):
// the workload context table, Round-Robin and priority-based (Algorithm 1)
// scheduling policies, and the lightweight operator-preemption mechanism, all
// driving a discrete-event NPU core model with fluid HBM bandwidth sharing.
//
// The three V10 variants the paper evaluates map onto Options:
//
//	V10-Base: Policy=RoundRobin, Preemption=false
//	V10-Fair: Policy=Priority,   Preemption=false
//	V10-Full: Policy=Priority,   Preemption=true
package sched

import (
	"errors"
	"fmt"
	"sort"

	"v10/internal/npu"
	"v10/internal/obs"
	"v10/internal/trace"
	"v10/internal/vnpu"
)

// Policy selects how the operator scheduler picks the next workload when
// more ready operators exist than free functional units.
type Policy int

const (
	// RoundRobin circulates through workloads with ready operators.
	RoundRobin Policy = iota
	// Priority implements Algorithm 1: pick the workload with the lowest
	// active_rate_p = (active_time / total_time) / priority.
	Priority
)

// String names the policy.
func (p Policy) String() string {
	if p == RoundRobin {
		return "RR"
	}
	return "Priority"
}

// Window is one timed perturbation of a run: a straggler stall, an
// HBM-bandwidth degradation, or a vector-memory pressure spike. At is the
// start cycle and Dur the length; Factor is the capacity/partition factor in
// (0,1] for the window kinds that take one (ignored for stalls). Windows of
// the same kind must not overlap.
type Window struct {
	At     int64
	Dur    int64
	Factor float64
}

// Options configure a V10 simulation run.
type Options struct {
	Config npu.CoreConfig
	Policy Policy

	// Preemption enables the §3.3 operator-preemption mechanism, checked at
	// every time-slice boundary (Config.TimeSlice cycles).
	Preemption bool

	// PreemptMargin is the factor by which a waiting workload's
	// active_rate_p must undercut the running workload's before preempting.
	// 1 preempts on any strict imbalance; larger values preempt less.
	PreemptMargin float64

	// RequestsPerWorkload is how many requests every workload must complete
	// before the run ends (workloads keep serving until the slowest is done,
	// matching the paper's steady-state methodology).
	RequestsPerWorkload int

	// MaxCycles caps simulated time as a runaway guard.
	MaxCycles int64

	// Seed drives request-trace jitter attribution (per-workload generators
	// carry their own seeds; this seed is reserved for scheduler-side
	// randomness and defaults are deterministic).
	Seed uint64

	// VMemReloadFactor is the extra HBM traffic per additional tile when an
	// operator is split to fit its vector-memory partition (§3.6, Fig. 24).
	VMemReloadFactor float64

	// DisableFluidHBM turns off bandwidth contention (every operator runs at
	// its natural rate). Used by the ablation bench.
	DisableFluidHBM bool

	// DispatchLatency is the exposed scheduling-decision cost in cycles
	// charged on every operator dispatch while the FU sits idle. Zero (the
	// default) models V10's hardware scheduler, whose Table 3 latency hides
	// behind executing operators.
	DispatchLatency int64

	// SoftwareScheduler models the §4 alternative: operator scheduling in
	// host runtime. Unless DispatchLatency is set explicitly, it charges
	// 20 µs worth of cycles per dispatch.
	SoftwareScheduler bool

	// ArrivalRateHz switches from the paper's closed-loop serving (next
	// request issued the moment the previous completes) to open-loop
	// Poisson arrivals at this per-workload rate. Request latency then
	// includes queueing delay. Zero keeps the closed loop. Rates above a
	// workload's service capacity make the queue — and MaxCycles — blow up.
	ArrivalRateHz float64

	// ArrivalCycles, when non-nil, drives every workload from an explicit
	// open-loop arrival schedule instead of drawing Poisson gaps:
	// ArrivalCycles[i] lists workload i's absolute arrival cycles
	// (nondecreasing, ≥ 0) and the run ends once each workload has served
	// exactly len(ArrivalCycles[i]) requests. RequestsPerWorkload is ignored
	// and an empty schedule is allowed (the workload stays resident but
	// idle). This is the fleet dispatcher's interface: admission decisions
	// are made centrally, then each core replays its admitted schedule
	// cycle-accurately. Mutually exclusive with ArrivalRateHz.
	ArrivalCycles [][]int64

	// HaltAtCycle, when positive, fail-stops the run cleanly at that cycle:
	// the simulation ends with its partial measurements and
	// RunResult.HaltedAt set, without an ErrMaxCycles wrap. A halt tied with
	// other events at the same cycle wins — nothing else observable happens
	// at or after the halt. This is the fault injector's whole-core failure
	// hook.
	HaltAtCycle int64

	// StallWindows are transient straggler windows during which the core's
	// functional units are clock-gated: running operators freeze in place
	// (still occupying their FUs) and resume when the window ends. DMA stall
	// phases and arrivals still proceed. Factor is ignored.
	StallWindows []Window

	// HBMWindows scale the HBM bandwidth capacity by Factor for each
	// window's duration (fault injection's bandwidth degradation).
	HBMWindows []Window

	// VMemWindows scale the per-workload vector-memory partition by Factor
	// for requests that *start* inside a window (pressure spikes force finer
	// tiling and extra reload traffic, §3.6).
	VMemWindows []Window

	// Slices, when non-empty, spatially partitions the core into vNPU
	// slices (see internal/vnpu): each slice owns a virtual set of the
	// core's functional units running at its compute fraction, workloads
	// draw their vector-memory partitions and preemption-context budgets
	// from their slice's hard cap instead of the whole core, and every
	// operator's HBM bytes are charged against the slice's windowed token
	// bucket at DMA admission — an exhausted window stalls the transfer to
	// the next refill rather than shedding it. Scheduling (Algorithm 1,
	// preemption) interleaves only the workloads *within* a slice. Slices
	// carry live bucket state, so callers pass a fresh vnpu.Partition's
	// slices per run.
	Slices []*vnpu.Slice

	// SliceOf maps each workload to its slice index (required with Slices,
	// one entry per workload; invalid otherwise).
	SliceOf []int

	// Scheme overrides the result label; empty derives it from the options.
	Scheme string

	// Tracer, when non-nil, receives the run's timeline events (operator
	// dispatch, stall, run segments, preemption save/restore, HBM
	// rebalancing). Nil — the default — disables tracing entirely; every
	// emission site is nil-guarded so the disabled path costs one branch.
	Tracer obs.Tracer

	// Counters, when non-nil, receives a per-workload snapshot of the
	// context-table counters every CounterInterval cycles plus one final
	// snapshot at the end of the run.
	Counters *obs.CounterLog

	// CounterInterval is the counter sampling period in cycles
	// (default 32 × Config.TimeSlice ≈ 1.5 ms at the paper's configuration).
	CounterInterval int64
}

// scheme returns the label for results.
func (o Options) scheme() string {
	if o.Scheme != "" {
		return o.Scheme
	}
	switch {
	case o.Policy == RoundRobin && !o.Preemption:
		return "V10-Base"
	case o.Policy == Priority && !o.Preemption:
		return "V10-Fair"
	case o.Policy == Priority && o.Preemption:
		return "V10-Full"
	default:
		return fmt.Sprintf("V10(%s,preempt=%v)", o.Policy, o.Preemption)
	}
}

// withDefaults normalizes zero-valued options.
func (o Options) withDefaults() (Options, error) {
	if o.Config.SADim == 0 {
		o.Config = npu.DefaultConfig()
	}
	if err := o.Config.Validate(); err != nil {
		return o, err
	}
	if o.PreemptMargin <= 0 {
		// Preempt only when the waiting workload is meaningfully under-served:
		// avoids churn on already-balanced pairs while still rescuing starved
		// short-operator workloads (§3.3). The ablation bench sweeps this.
		o.PreemptMargin = 1.25
	}
	if o.RequestsPerWorkload <= 0 {
		o.RequestsPerWorkload = 20
	}
	if o.MaxCycles <= 0 {
		o.MaxCycles = 200_000_000_000 // ~286 s of device time at 700 MHz
	}
	if o.VMemReloadFactor < 0 {
		return o, errors.New("sched: negative VMemReloadFactor")
	}
	if o.VMemReloadFactor == 0 {
		o.VMemReloadFactor = 0.5
	}
	if o.DispatchLatency < 0 {
		return o, errors.New("sched: negative DispatchLatency")
	}
	// The hardware scheduler's decision latency (Table 3, tens of cycles) is
	// hidden behind already-executing operators (§3.6), so it exposes zero
	// cycles here. The §4 software alternative cannot hide its ~20 µs
	// host-side decision plus round trip.
	if o.SoftwareScheduler && o.DispatchLatency == 0 {
		o.DispatchLatency = int64(20 * o.Config.CyclesPerMicrosecond())
	}
	if o.CounterInterval < 0 {
		return o, errors.New("sched: negative CounterInterval")
	}
	if o.ArrivalCycles != nil {
		if o.ArrivalRateHz > 0 {
			return o, &ArrivalError{Workload: -1, Index: -1,
				Reason: "ArrivalCycles and ArrivalRateHz are mutually exclusive"}
		}
		for i, schedule := range o.ArrivalCycles {
			prev := int64(0)
			for k, at := range schedule {
				if at < prev {
					reason := "decreases"
					if at < 0 {
						reason = "is negative"
					}
					return o, &ArrivalError{Workload: i, Index: k, Value: at, Reason: reason}
				}
				prev = at
			}
		}
	}
	if o.CounterInterval == 0 {
		o.CounterInterval = 32 * o.Config.TimeSlice
	}
	if o.HaltAtCycle < 0 {
		return o, errors.New("sched: negative HaltAtCycle")
	}
	if len(o.Slices) == 0 && o.SliceOf != nil {
		return o, errors.New("sched: SliceOf set without Slices")
	}
	for i, s := range o.Slices {
		if s == nil {
			return o, fmt.Errorf("sched: Slices[%d] is nil", i)
		}
		if !(s.ComputeFraction > 0 && s.ComputeFraction <= 1) {
			return o, fmt.Errorf("sched: Slices[%d] has compute fraction %v", i, s.ComputeFraction)
		}
	}
	if err := validateWindows("stall", o.StallWindows, false); err != nil {
		return o, err
	}
	if err := validateWindows("HBM", o.HBMWindows, true); err != nil {
		return o, err
	}
	if err := validateWindows("vmem", o.VMemWindows, true); err != nil {
		return o, err
	}
	return o, nil
}

// validateWindows checks bounds, factors, and same-kind overlap.
func validateWindows(name string, ws []Window, needFactor bool) error {
	sorted := append([]Window(nil), ws...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].At < sorted[j].At })
	for i, w := range sorted {
		if w.At < 0 || w.Dur <= 0 {
			return fmt.Errorf("sched: %s window [%d,+%d) needs At >= 0 and Dur > 0", name, w.At, w.Dur)
		}
		if needFactor && !(w.Factor > 0 && w.Factor <= 1) {
			return fmt.Errorf("sched: %s window at cycle %d needs a factor in (0,1], got %v", name, w.At, w.Factor)
		}
		if i > 0 && sorted[i-1].At+sorted[i-1].Dur > w.At {
			return fmt.Errorf("sched: %s windows overlap around cycle %d", name, w.At)
		}
	}
	return nil
}

// openLoop reports whether requests arrive over time (Poisson draws or an
// explicit schedule) rather than back-to-back the moment the core frees up.
func (o Options) openLoop() bool { return o.ArrivalRateHz > 0 || o.ArrivalCycles != nil }

// target returns how many requests workload i must serve before the run ends.
func (o Options) target(i int) int {
	if o.ArrivalCycles != nil {
		return len(o.ArrivalCycles[i])
	}
	return o.RequestsPerWorkload
}

// BaseOptions returns the V10-Base configuration (RR, no preemption).
func BaseOptions() Options { return Options{Policy: RoundRobin} }

// FairOptions returns the V10-Fair configuration (Algorithm 1, no preemption).
func FairOptions() Options { return Options{Policy: Priority} }

// FullOptions returns the V10-Full configuration (Algorithm 1 + preemption).
func FullOptions() Options { return Options{Policy: Priority, Preemption: true} }

// ErrMaxCycles is returned when a run exceeds its cycle cap before every
// workload finishes its requests.
var ErrMaxCycles = errors.New("sched: simulation exceeded MaxCycles before completing")

// kindOf maps a trace kind to an FU pool index (0 = SA, 1 = VU).
func kindOf(k trace.Kind) int {
	if k == trace.KindSA {
		return 0
	}
	return 1
}
