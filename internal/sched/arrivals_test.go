package sched

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"v10/internal/trace"
)

func TestArrivalCyclesServesExactSchedule(t *testing.T) {
	w := synthetic("S", 1000, 500, 2)
	opts := FullOptions()
	opts.ArrivalCycles = [][]int64{{0, 10_000, 10_000, 50_000}}
	res, err := Run([]*trace.Workload{w}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workloads[0].Requests != 4 {
		t.Fatalf("requests = %d, want the schedule length 4", res.Workloads[0].Requests)
	}
	// Serial service is 2×(1000+500) = 3000 cycles: the spaced arrivals see
	// bare service latency, the back-to-back one queues behind its twin.
	lats := res.Workloads[0].LatencyCycles
	if len(lats) != 4 {
		t.Fatalf("latencies = %v", lats)
	}
	for i, lat := range lats {
		if lat < 3000 {
			t.Fatalf("latency[%d] = %v < serial minimum 3000", i, lat)
		}
	}
	if lats[2] < lats[1]+3000-1 {
		t.Fatalf("queued twin latency %v should exceed its predecessor's %v by a service time", lats[2], lats[1])
	}
}

func TestArrivalCyclesEmptySchedule(t *testing.T) {
	// A workload with no arrivals holds its partition but serves nothing.
	a := synthetic("A", 1000, 500, 2)
	b := synthetic("B", 1000, 500, 2)
	opts := FullOptions()
	opts.ArrivalCycles = [][]int64{{0, 1000}, {}}
	res, err := Run([]*trace.Workload{a, b}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workloads[0].Requests != 2 || res.Workloads[1].Requests != 0 {
		t.Fatalf("requests = %d/%d, want 2/0", res.Workloads[0].Requests, res.Workloads[1].Requests)
	}
}

func TestArrivalCyclesDeterministic(t *testing.T) {
	mk := func() []*trace.Workload {
		return []*trace.Workload{synthetic("A", 2000, 10, 4), synthetic("B", 10, 2000, 4)}
	}
	opts := FullOptions()
	opts.ArrivalCycles = [][]int64{{0, 5000, 9000}, {100, 100, 20_000}}
	r1, err1 := Run(mk(), opts)
	r2, err2 := Run(mk(), opts)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.TotalCycles != r2.TotalCycles ||
		!reflect.DeepEqual(r1.Workloads[0].LatencyCycles, r2.Workloads[0].LatencyCycles) ||
		!reflect.DeepEqual(r1.Workloads[1].LatencyCycles, r2.Workloads[1].LatencyCycles) {
		t.Fatal("explicit arrival schedules are nondeterministic")
	}
}

func TestArrivalCyclesValidation(t *testing.T) {
	w := synthetic("S", 1000, 500, 1)
	for name, opts := range map[string]Options{
		"decreasing schedule": {ArrivalCycles: [][]int64{{100, 50}}},
		"negative arrival":    {ArrivalCycles: [][]int64{{-1}}},
		"exclusive with rate": {ArrivalCycles: [][]int64{{0}}, ArrivalRateHz: 10},
	} {
		if _, err := Run([]*trace.Workload{w}, opts); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Length mismatch: one schedule for two workloads.
	opts := Options{ArrivalCycles: [][]int64{{0}}}
	if _, err := Run([]*trace.Workload{w, synthetic("T", 10, 10, 1)}, opts); err == nil {
		t.Error("schedule/workload length mismatch accepted")
	}
}

func TestArrivalErrorTyped(t *testing.T) {
	w := synthetic("S", 1000, 500, 1)
	check := func(name string, opts Options, wantWL, wantIdx int) {
		t.Helper()
		_, err := Run([]*trace.Workload{w}, opts)
		var ae *ArrivalError
		if !errors.As(err, &ae) {
			t.Fatalf("%s: err = %v (%T), want *ArrivalError", name, err, err)
		}
		if ae.Workload != wantWL || ae.Index != wantIdx {
			t.Errorf("%s: ArrivalError{Workload: %d, Index: %d}, want {%d, %d}: %v",
				name, ae.Workload, ae.Index, wantWL, wantIdx, ae)
		}
		if ae.Error() == "" || !strings.Contains(ae.Error(), "sched:") {
			t.Errorf("%s: unhelpful message %q", name, ae.Error())
		}
	}
	check("decreasing", Options{ArrivalCycles: [][]int64{{0, 100, 50}}}, 0, 2)
	check("negative", Options{ArrivalCycles: [][]int64{{-7}}}, 0, 0)
	check("exclusive", Options{ArrivalCycles: [][]int64{{0}}, ArrivalRateHz: 10}, -1, -1)

	// Length mismatch surfaces from Run (the schedule count is only known
	// against the workload list).
	_, err := Run([]*trace.Workload{w, synthetic("T", 10, 10, 1)},
		Options{ArrivalCycles: [][]int64{{0}}})
	var ae *ArrivalError
	if !errors.As(err, &ae) || ae.Workload != -1 {
		t.Fatalf("length mismatch: err = %v, want option-level *ArrivalError", err)
	}

	// A valid schedule still runs.
	if _, err := Run([]*trace.Workload{w}, Options{ArrivalCycles: [][]int64{{0, 10, 10}}}); err != nil {
		t.Fatalf("valid schedule rejected: %v", err)
	}
}

// TestOpenLoopRealizedRate pins the runner-side fix: drawing int64-truncated
// gaps clamped to >= 1 cycle inflated the realized Poisson rate (about +10%
// at a 3-cycle mean gap). With float64 absolute-time accumulation the time
// of the Nth arrival must match N×meanGap statistically.
func TestOpenLoopRealizedRate(t *testing.T) {
	const (
		requests = 20_000
		meanGap  = 3.0 // cycles — deep in the old clamp's bias regime
	)
	w := synthetic("S", 1, 0, 1) // 1-cycle service: queues never build up
	opts := BaseOptions()
	opts.RequestsPerWorkload = requests
	opts.ArrivalRateHz = 700e6 / meanGap
	res, err := Run([]*trace.Workload{w}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workloads[0].Requests != requests {
		t.Fatalf("served %d requests, want %d", res.Workloads[0].Requests, requests)
	}
	want := meanGap * requests // expected cycle of the last arrival
	got := float64(res.TotalCycles)
	if rel := (got - want) / want; rel < -0.03 || rel > 0.03 {
		t.Errorf("open-loop run spanned %v cycles for %d arrivals, want %v ±3%% (rel err %+.4f)",
			got, requests, want, rel)
	}
}
