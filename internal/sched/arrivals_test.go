package sched

import (
	"reflect"
	"testing"

	"v10/internal/trace"
)

func TestArrivalCyclesServesExactSchedule(t *testing.T) {
	w := synthetic("S", 1000, 500, 2)
	opts := FullOptions()
	opts.ArrivalCycles = [][]int64{{0, 10_000, 10_000, 50_000}}
	res, err := Run([]*trace.Workload{w}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workloads[0].Requests != 4 {
		t.Fatalf("requests = %d, want the schedule length 4", res.Workloads[0].Requests)
	}
	// Serial service is 2×(1000+500) = 3000 cycles: the spaced arrivals see
	// bare service latency, the back-to-back one queues behind its twin.
	lats := res.Workloads[0].LatencyCycles
	if len(lats) != 4 {
		t.Fatalf("latencies = %v", lats)
	}
	for i, lat := range lats {
		if lat < 3000 {
			t.Fatalf("latency[%d] = %v < serial minimum 3000", i, lat)
		}
	}
	if lats[2] < lats[1]+3000-1 {
		t.Fatalf("queued twin latency %v should exceed its predecessor's %v by a service time", lats[2], lats[1])
	}
}

func TestArrivalCyclesEmptySchedule(t *testing.T) {
	// A workload with no arrivals holds its partition but serves nothing.
	a := synthetic("A", 1000, 500, 2)
	b := synthetic("B", 1000, 500, 2)
	opts := FullOptions()
	opts.ArrivalCycles = [][]int64{{0, 1000}, {}}
	res, err := Run([]*trace.Workload{a, b}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Workloads[0].Requests != 2 || res.Workloads[1].Requests != 0 {
		t.Fatalf("requests = %d/%d, want 2/0", res.Workloads[0].Requests, res.Workloads[1].Requests)
	}
}

func TestArrivalCyclesDeterministic(t *testing.T) {
	mk := func() []*trace.Workload {
		return []*trace.Workload{synthetic("A", 2000, 10, 4), synthetic("B", 10, 2000, 4)}
	}
	opts := FullOptions()
	opts.ArrivalCycles = [][]int64{{0, 5000, 9000}, {100, 100, 20_000}}
	r1, err1 := Run(mk(), opts)
	r2, err2 := Run(mk(), opts)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.TotalCycles != r2.TotalCycles ||
		!reflect.DeepEqual(r1.Workloads[0].LatencyCycles, r2.Workloads[0].LatencyCycles) ||
		!reflect.DeepEqual(r1.Workloads[1].LatencyCycles, r2.Workloads[1].LatencyCycles) {
		t.Fatal("explicit arrival schedules are nondeterministic")
	}
}

func TestArrivalCyclesValidation(t *testing.T) {
	w := synthetic("S", 1000, 500, 1)
	for name, opts := range map[string]Options{
		"decreasing schedule": {ArrivalCycles: [][]int64{{100, 50}}},
		"negative arrival":    {ArrivalCycles: [][]int64{{-1}}},
		"exclusive with rate": {ArrivalCycles: [][]int64{{0}}, ArrivalRateHz: 10},
	} {
		if _, err := Run([]*trace.Workload{w}, opts); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Length mismatch: one schedule for two workloads.
	opts := Options{ArrivalCycles: [][]int64{{0}}}
	if _, err := Run([]*trace.Workload{w, synthetic("T", 10, 10, 1)}, opts); err == nil {
		t.Error("schedule/workload length mismatch accepted")
	}
}
