package sched

import (
	"errors"
	"math"
	"strings"
	"testing"

	"v10/internal/obs"
	"v10/internal/trace"
)

func TestInvalidPriorityRejected(t *testing.T) {
	for _, prio := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		w := synthetic("S", 100, 100, 2)
		w.Priority = prio
		_, err := Run([]*trace.Workload{w}, Options{RequestsPerWorkload: 1})
		if err == nil {
			t.Errorf("priority %v accepted", prio)
			continue
		}
		if !strings.Contains(err.Error(), "invalid priority") {
			t.Errorf("priority %v: unexpected error %v", prio, err)
		}
	}
}

func TestMaxCyclesPartialResult(t *testing.T) {
	long := synthetic("Slow", 100000, 100000, 100)
	// VU-only requests stay clear of Slow's SA monopolization and finish.
	quick := trace.NewWorkload("Quick", "Quick", 1, func(int) *trace.Graph {
		return &trace.Graph{Ops: []trace.Op{{ID: 0, Kind: trace.KindVU, Compute: 10}}}
	})
	res, err := Run([]*trace.Workload{quick, long},
		Options{RequestsPerWorkload: 5, MaxCycles: 50000})
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	if res == nil {
		t.Fatal("partial result discarded on timeout")
	}
	if res.TotalCycles < 50000 {
		t.Fatalf("partial result stops at %d, want >= the 50000-cycle cap", res.TotalCycles)
	}
	// The wrap names who was behind; the finished workload must not appear.
	if !strings.Contains(err.Error(), "Slow 0/5") {
		t.Fatalf("diagnosis missing the lagging workload: %v", err)
	}
	if strings.Contains(err.Error(), "Quick") {
		t.Fatalf("diagnosis lists a finished workload: %v", err)
	}
	// The closed loop keeps serving the finished workload until the cap hits,
	// so it logs at least its quota.
	if res.Workloads[0].Requests < 5 {
		t.Fatalf("finished workload's partial stats lost: %d requests", res.Workloads[0].Requests)
	}
}

// TestTracePreemptionsMatchStats is the ISSUE's ring-buffer assertion: under
// V10-Full every preemption the scheduler counts must appear in the event
// stream, once as EvPreempt and once as the EvCtxSave span that paid for it.
func TestTracePreemptionsMatchStats(t *testing.T) {
	long := synthetic("Long", 500000, 100, 4)
	short := synthetic("Short", 2000, 2000, 40)
	ring := obs.NewRing(1 << 20)
	opts := FullOptions()
	opts.Tracer = ring
	res, err := Run([]*trace.Workload{long, short}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Dropped() != 0 {
		t.Fatalf("ring dropped %d events; enlarge the test buffer", ring.Dropped())
	}
	var preempts int64
	for _, w := range res.Workloads {
		preempts += w.Preemptions
	}
	if preempts == 0 {
		t.Fatal("scenario produced no preemptions; the assertion is vacuous")
	}
	if got := int64(ring.Count(obs.EvPreempt)); got != preempts {
		t.Fatalf("EvPreempt count = %d, RunResult preemptions = %d", got, preempts)
	}
	if got := int64(ring.Count(obs.EvCtxSave)); got != preempts {
		t.Fatalf("EvCtxSave count = %d, want one per preemption (%d)", got, preempts)
	}
	// Per-workload attribution must match too.
	for _, wl := range res.Workloads {
		var n int64
		for _, e := range ring.Events() {
			if e.Type == obs.EvPreempt && e.Workload == wl.Name {
				n++
			}
		}
		if n != wl.Preemptions {
			t.Fatalf("%s: traced preempts %d != stats %d", wl.Name, n, wl.Preemptions)
		}
	}
}

// TestTraceRunSegmentsMatchActiveCycles checks the acceptance criterion that
// traced busy spans agree with the scheduler's aggregates: for a finished
// single-workload run the EvRunSegment durations sum exactly to ActiveCycles;
// for a contended pair they agree within one in-flight segment (< TimeSlice
// here, since every operator is shorter than the slice).
func TestTraceRunSegmentsMatchActiveCycles(t *testing.T) {
	ring := obs.NewRing(1 << 20)
	opts := Options{RequestsPerWorkload: 4, Tracer: ring}
	res, err := Run([]*trace.Workload{synthetic("S", 1000, 500, 4)}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ring.SumDur(obs.EvRunSegment, 0), res.Workloads[0].ActiveCycles; got != want {
		t.Fatalf("traced run cycles %d != ActiveCycles %d", got, want)
	}

	ring = obs.NewRing(1 << 20)
	opts = FullOptions()
	opts.Tracer = ring
	a := synthetic("A", 3000, 200, 12)
	b := synthetic("B", 200, 3000, 12)
	res, err = Run([]*trace.Workload{a, b}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Dropped() != 0 {
		t.Fatalf("ring dropped %d events", ring.Dropped())
	}
	slice := opts.Config.TimeSlice
	if slice == 0 {
		slice = cfg.TimeSlice
	}
	for i, wl := range res.Workloads {
		traced := ring.SumDur(obs.EvRunSegment, i)
		diff := wl.ActiveCycles - traced
		if diff < 0 || diff > slice {
			t.Fatalf("%s: ActiveCycles %d vs traced %d (diff %d, want within one %d-cycle slice)",
				wl.Name, wl.ActiveCycles, traced, diff, slice)
		}
	}
}

func TestTraceDispatchAndRequestEvents(t *testing.T) {
	ring := obs.NewRing(1 << 16)
	res, err := Run([]*trace.Workload{synthetic("S", 1000, 500, 3)},
		Options{RequestsPerWorkload: 2, Tracer: ring})
	if err != nil {
		t.Fatal(err)
	}
	if ring.Count(obs.EvDispatch) == 0 {
		t.Fatal("no dispatch events traced")
	}
	// Request-done instants carry the latency and match completed requests.
	var done int
	for _, e := range ring.Events() {
		if e.Type != obs.EvRequestDone {
			continue
		}
		done++
		if e.Arg0 <= 0 {
			t.Fatalf("request-done without latency payload: %+v", e)
		}
	}
	if done != res.Workloads[0].Requests {
		t.Fatalf("traced request completions %d != stats %d", done, res.Workloads[0].Requests)
	}
}

func TestCounterSampling(t *testing.T) {
	log := obs.NewCounterLog()
	opts := FullOptions()
	opts.Counters = log
	opts.CounterInterval = 4096
	long := synthetic("Long", 500000, 100, 4)
	short := synthetic("Short", 2000, 2000, 40)
	res, err := Run([]*trace.Workload{long, short}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if log.Len() < 4 {
		t.Fatalf("only %d counter rows sampled", log.Len())
	}
	var lastCycle int64 = -1
	perWL := map[string]obs.CounterRow{}
	for _, r := range log.Rows {
		if r.Cycle < lastCycle {
			t.Fatalf("counter cycles not monotonic: %d after %d", r.Cycle, lastCycle)
		}
		lastCycle = r.Cycle
		if r.ActiveCycles > r.Cycle {
			t.Fatalf("active %d exceeds elapsed %d", r.ActiveCycles, r.Cycle)
		}
		perWL[r.Workload] = r // ends as the final snapshot
	}
	// The final snapshot (taken at the end of the run) equals the run stats.
	for _, wl := range res.Workloads {
		final, ok := perWL[wl.Name]
		if !ok {
			t.Fatalf("no counter rows for %s", wl.Name)
		}
		if final.Cycle != res.TotalCycles {
			t.Fatalf("%s final snapshot at %d, run ended at %d", wl.Name, final.Cycle, res.TotalCycles)
		}
		if final.Requests != wl.Requests || final.ActiveCycles != wl.ActiveCycles ||
			final.Preemptions != wl.Preemptions || final.SwitchCycles != wl.SwitchCycles {
			t.Fatalf("%s final snapshot %+v disagrees with stats %+v", wl.Name, final, wl)
		}
	}
}

func TestNegativeCounterIntervalRejected(t *testing.T) {
	w := synthetic("S", 100, 100, 2)
	_, err := Run([]*trace.Workload{w},
		Options{Counters: obs.NewCounterLog(), CounterInterval: -1})
	if err == nil {
		t.Fatal("negative counter interval accepted")
	}
}

// benchWorkloads is the contended V10-Full scenario both benchmarks run, so
// the traced/untraced comparison isolates the observability overhead.
func benchWorkloads() []*trace.Workload {
	return []*trace.Workload{
		synthetic("Long", 50000, 100, 4),
		synthetic("Short", 2000, 2000, 20),
	}
}

// BenchmarkRun measures the nil-tracer fast path: the acceptance bar is no
// measurable regression against the pre-observability scheduler.
func BenchmarkRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Run(benchWorkloads(), FullOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunTraced measures the same run with a ring sink attached, bounding
// what enabling tracing costs.
func BenchmarkRunTraced(b *testing.B) {
	for i := 0; i < b.N; i++ {
		opts := FullOptions()
		opts.Tracer = obs.NewRing(1 << 18)
		if _, err := Run(benchWorkloads(), opts); err != nil {
			b.Fatal(err)
		}
	}
}
