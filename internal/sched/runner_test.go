package sched

import (
	"errors"
	"math"
	"testing"

	"v10/internal/models"
	"v10/internal/npu"
	"v10/internal/trace"
)

var cfg = npu.DefaultConfig()

func wl(t *testing.T, name string, batch int, seed uint64) *trace.Workload {
	t.Helper()
	s, ok := models.ByName(name)
	if !ok {
		t.Fatalf("unknown model %s", name)
	}
	return s.Workload(batch, seed, cfg)
}

// synthetic builds a deterministic workload: n alternating SA/VU ops.
func synthetic(name string, saLen, vuLen int64, pairs int) *trace.Workload {
	return trace.NewWorkload(name, name, 1, func(int) *trace.Graph {
		g := &trace.Graph{}
		for i := 0; i < pairs; i++ {
			sa := trace.Op{ID: len(g.Ops), Kind: trace.KindSA, Compute: saLen}
			if len(g.Ops) > 0 {
				sa.Deps = []int{len(g.Ops) - 1}
			}
			g.Ops = append(g.Ops, sa)
			g.Ops = append(g.Ops, trace.Op{
				ID: len(g.Ops), Kind: trace.KindVU, Compute: vuLen,
				Deps: []int{len(g.Ops) - 1},
			})
		}
		return g
	})
}

func TestSingleWorkloadLatencyMatchesSerial(t *testing.T) {
	w := synthetic("S", 1000, 500, 4)
	res, err := Run([]*trace.Workload{w}, Options{RequestsPerWorkload: 3, Scheme: "Single"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Workloads[0].Requests != 3 {
		t.Fatalf("requests = %d", res.Workloads[0].Requests)
	}
	// Serial time per request: 4×(1000+500) = 6000 cycles, no stalls/contention.
	for _, lat := range res.Workloads[0].LatencyCycles {
		if math.Abs(lat-6000) > 10 {
			t.Fatalf("latency = %v, want ≈ 6000", lat)
		}
	}
	if res.TotalCycles < 17900 || res.TotalCycles > 18100 {
		t.Fatalf("total = %d, want ≈ 18000", res.TotalCycles)
	}
}

func TestSingleWorkloadUtilization(t *testing.T) {
	w := synthetic("S", 1000, 500, 4)
	res, err := Run([]*trace.Workload{w}, Options{RequestsPerWorkload: 5})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.SAUtil(); math.Abs(got-4000.0/6000) > 0.01 {
		t.Fatalf("SA util = %v, want ≈ 0.667", got)
	}
	if got := res.VUUtil(); math.Abs(got-2000.0/6000) > 0.01 {
		t.Fatalf("VU util = %v, want ≈ 0.333", got)
	}
	// Single workload: its SA and VU ops are serial, so no overlap.
	both, _, _ := res.OverlapBreakdown()
	if both > 0.01 {
		t.Fatalf("single-tenant overlap = %v, want ≈ 0", both)
	}
}

func TestTwoComplementaryWorkloadsOverlap(t *testing.T) {
	// A is SA-heavy, B is VU-heavy: V10 should overlap their execution.
	a := synthetic("A", 2000, 10, 10)
	b := synthetic("B", 10, 2000, 10)
	res, err := Run([]*trace.Workload{a, b}, Options{RequestsPerWorkload: 5})
	if err != nil {
		t.Fatal(err)
	}
	both, _, _ := res.OverlapBreakdown()
	if both < 0.5 {
		t.Fatalf("complementary workloads overlap = %v, want > 0.5", both)
	}
	if agg := res.AggregateUtil(); agg < 0.6 {
		t.Fatalf("aggregate util = %v, want > 0.6", agg)
	}
}

func TestRunDeterministic(t *testing.T) {
	mk := func() (*trace.Workload, *trace.Workload) {
		return wl(t, "BERT", 32, 1), wl(t, "NCF", 32, 2)
	}
	a1, b1 := mk()
	a2, b2 := mk()
	r1, err1 := Run([]*trace.Workload{a1, b1}, FullOptions())
	r2, err2 := Run([]*trace.Workload{a2, b2}, FullOptions())
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.TotalCycles != r2.TotalCycles {
		t.Fatalf("nondeterministic total: %d vs %d", r1.TotalCycles, r2.TotalCycles)
	}
	for i := range r1.Workloads {
		if r1.Workloads[i].Preemptions != r2.Workloads[i].Preemptions ||
			r1.Workloads[i].ProgressOpCycles != r2.Workloads[i].ProgressOpCycles {
			t.Fatal("nondeterministic per-workload stats")
		}
	}
}

func TestProgressConservation(t *testing.T) {
	w := synthetic("S", 700, 300, 5)
	res, err := Run([]*trace.Workload{w}, Options{RequestsPerWorkload: 4})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Workloads[0]
	// Each request has 5×(700+300) = 5000 compute cycles.
	wantMin := 4.0 * 5000
	if st.ProgressOpCycles < wantMin {
		t.Fatalf("progress = %v, want >= %v", st.ProgressOpCycles, wantMin)
	}
	if st.ProgressOps < 4*10 {
		t.Fatalf("ops completed = %d", st.ProgressOps)
	}
}

func TestMaxCyclesError(t *testing.T) {
	w := synthetic("S", 100000, 100000, 100)
	_, err := Run([]*trace.Workload{w}, Options{RequestsPerWorkload: 1000, MaxCycles: 10000})
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
}

func TestNoWorkloadsError(t *testing.T) {
	if _, err := Run(nil, Options{}); err == nil {
		t.Fatal("empty workload list accepted")
	}
}

func TestPreemptionFiresUnderContention(t *testing.T) {
	// Long-op workload monopolizes the SA; short-op workload starves without
	// preemption (the paper's Fig. 12 scenario).
	long := synthetic("Long", 500000, 100, 4)
	short := synthetic("Short", 2000, 2000, 40)
	resFull, err := Run([]*trace.Workload{long, short}, FullOptions())
	if err != nil {
		t.Fatal(err)
	}
	if resFull.Workloads[0].Preemptions == 0 {
		t.Fatal("V10-Full never preempted the long-op workload")
	}
	resFair, err := Run([]*trace.Workload{long, short}, FairOptions())
	if err != nil {
		t.Fatal(err)
	}
	if resFair.Workloads[0].Preemptions != 0 || resFair.Workloads[1].Preemptions != 0 {
		t.Fatal("V10-Fair must not preempt")
	}
	// Preemption should cut the short workload's average latency.
	latFull := resFull.Workloads[1].AvgLatency()
	latFair := resFair.Workloads[1].AvgLatency()
	if latFull >= latFair {
		t.Fatalf("preemption did not help: full=%v fair=%v", latFull, latFair)
	}
}

func TestSwitchOverheadAccounted(t *testing.T) {
	long := synthetic("Long", 500000, 100, 4)
	short := synthetic("Short", 2000, 2000, 40)
	res, err := Run([]*trace.Workload{long, short}, FullOptions())
	if err != nil {
		t.Fatal(err)
	}
	var switches int64
	for _, w := range res.Workloads {
		switches += w.SwitchCycles
	}
	if switches == 0 {
		t.Fatal("no switch overhead recorded despite preemptions")
	}
	// Overhead must stay a small fraction of total time (the paper's <2%).
	if frac := float64(switches) / float64(res.TotalCycles); frac > 0.05 {
		t.Fatalf("switch overhead fraction = %v, want < 0.05", frac)
	}
}

func TestPriorityBiasesProgress(t *testing.T) {
	// Two identical workloads contending for the same FU type; priorities
	// 80/20 should bias progress accordingly under V10-Full. Operator length
	// exceeds the time slice, as in the paper's Table 1, so the preemption
	// timer is what enforces proportional shares.
	a := synthetic("A", 200000, 10, 10).WithPriority(0.8)
	b := synthetic("B", 200000, 10, 10).WithPriority(0.2)
	res, err := Run([]*trace.Workload{a, b}, FullOptions())
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := res.ProgressRate(0), res.ProgressRate(1)
	if pa <= pb {
		t.Fatalf("high-priority progress %v <= low-priority %v", pa, pb)
	}
	ratio := pa / pb
	if ratio < 1.5 {
		t.Fatalf("priority bias too weak: ratio %v", ratio)
	}
}

func TestSchemeLabels(t *testing.T) {
	if BaseOptions().scheme() != "V10-Base" ||
		FairOptions().scheme() != "V10-Fair" ||
		FullOptions().scheme() != "V10-Full" {
		t.Fatal("scheme labels wrong")
	}
	o := Options{Scheme: "custom"}
	if o.scheme() != "custom" {
		t.Fatal("scheme override ignored")
	}
}

func TestMultiFUScaling(t *testing.T) {
	// 4 SA-heavy workloads on a 2-SA/2-VU core: both SAs should be busy.
	var ws []*trace.Workload
	for i := 0; i < 4; i++ {
		ws = append(ws, synthetic("W", 5000, 100, 10))
	}
	opts := FullOptions()
	opts.Config = cfg.WithFUs(2)
	res, err := Run(ws, opts)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.SAUtil(); got < 0.8 {
		t.Fatalf("2-SA utilization = %v, want > 0.8 with 4 SA-heavy workloads", got)
	}
}

func TestRealModelsBERTplusNCF(t *testing.T) {
	// The paper's flagship pair: SA-heavy BERT + VU-heavy NCF.
	b := wl(t, "BERT", 32, 1)
	n := wl(t, "NCF", 32, 2)
	res, err := Run([]*trace.Workload{b, n}, Options{RequestsPerWorkload: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.AggregateUtil() <= 0.3 {
		t.Fatalf("aggregate util = %v, want > 0.3", res.AggregateUtil())
	}
	both, _, _ := res.OverlapBreakdown()
	if both <= 0.05 {
		t.Fatalf("overlap = %v, want > 0.05", both)
	}
	for _, w := range res.Workloads {
		if w.Requests < 5 {
			t.Fatalf("%s only finished %d requests", w.Name, w.Requests)
		}
	}
}

func TestUtilizationBounds(t *testing.T) {
	b := wl(t, "BERT", 32, 1)
	d := wl(t, "DLRM", 32, 2)
	for _, opts := range []Options{BaseOptions(), FairOptions(), FullOptions()} {
		opts.RequestsPerWorkload = 4
		res, err := Run([]*trace.Workload{b, d}, opts)
		if err != nil {
			t.Fatal(err)
		}
		for name, v := range map[string]float64{
			"SA": res.SAUtil(), "VU": res.VUUtil(), "HBM": res.HBMUtil(), "agg": res.AggregateUtil(),
		} {
			if v < 0 || v > 1.0001 {
				t.Fatalf("%s %s util out of range: %v", res.Scheme, name, v)
			}
		}
		both, sa, vu := res.OverlapBreakdown()
		if both+sa+vu > 1.0001 {
			t.Fatalf("%s overlap fractions sum to %v", res.Scheme, both+sa+vu)
		}
	}
}

func TestVMemTilingKicksIn(t *testing.T) {
	// An op with a footprint above the per-workload partition must be tiled,
	// inflating HBM traffic.
	big := trace.NewWorkload("Big", "Big", 1, func(int) *trace.Graph {
		return &trace.Graph{Ops: []trace.Op{{
			ID: 0, Kind: trace.KindSA, Compute: 10000,
			HBMBytes: 1e6, VMemBytes: 40 << 20, // 40 MB > 32 MB/2 partition
		}}}
	})
	other := synthetic("O", 100, 100, 2)
	res, err := Run([]*trace.Workload{big, other}, Options{RequestsPerWorkload: 2})
	if err != nil {
		t.Fatal(err)
	}
	// 40 MB into a 16 MB partition → 3 tiles → 1e6×(1+0.5×2)=2e6 per request.
	perReq := res.Workloads[0].HBMBytes / float64(res.Workloads[0].Requests)
	if perReq < 1.9e6 {
		t.Fatalf("tiled HBM traffic per request = %v, want ≈ 2e6", perReq)
	}
}

func TestInvalidOptions(t *testing.T) {
	w := synthetic("S", 100, 100, 2)
	bad := Options{VMemReloadFactor: -1}
	if _, err := Run([]*trace.Workload{w}, bad); err == nil {
		t.Fatal("negative reload factor accepted")
	}
	badCfg := Options{}
	badCfg.Config = cfg
	badCfg.Config.NumSA = 0
	if _, err := Run([]*trace.Workload{w}, badCfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if RoundRobin.String() != "RR" || Priority.String() != "Priority" {
		t.Fatal("Policy.String wrong")
	}
}

func TestSoftwareSchedulerOverheadHurts(t *testing.T) {
	// §4: a host-software operator scheduler pays ~20 µs per decision, which
	// is crippling for short-operator workloads; the hardware scheduler's
	// latency is hidden.
	mk := func() []*trace.Workload {
		return []*trace.Workload{
			synthetic("A", 7000, 700, 20), // 10 µs SA ops: decisions dominate
			synthetic("B", 700, 7000, 20),
		}
	}
	hw, err := Run(mk(), Options{Policy: Priority, RequestsPerWorkload: 3})
	if err != nil {
		t.Fatal(err)
	}
	sw, err := Run(mk(), Options{Policy: Priority, RequestsPerWorkload: 3, SoftwareScheduler: true})
	if err != nil {
		t.Fatal(err)
	}
	if sw.TotalCycles < 2*hw.TotalCycles {
		t.Fatalf("software scheduling should be far slower: hw=%d sw=%d",
			hw.TotalCycles, sw.TotalCycles)
	}
	var swOvhd int64
	for _, w := range sw.Workloads {
		swOvhd += w.SwitchCycles
	}
	if swOvhd == 0 {
		t.Fatal("software dispatch overhead not accounted")
	}
}

func TestNegativeDispatchLatencyRejected(t *testing.T) {
	w := synthetic("S", 100, 100, 2)
	if _, err := Run([]*trace.Workload{w}, Options{DispatchLatency: -5}); err == nil {
		t.Fatal("negative dispatch latency accepted")
	}
}

func TestOpenLoopArrivals(t *testing.T) {
	// Light load: latency ≈ service time (little queueing). Heavy load:
	// latency grows because requests queue behind each other. One request is
	// 10×(7000+7000) = 140k cycles (0.2 ms at 700 MHz).
	mk := func() []*trace.Workload { return []*trace.Workload{synthetic("S", 7000, 7000, 10)} }
	light, err := Run(mk(), Options{
		RequestsPerWorkload: 10, ArrivalRateHz: 500, Seed: 3, // ρ ≈ 0.1
	})
	if err != nil {
		t.Fatal(err)
	}
	heavy, err := Run(mk(), Options{
		RequestsPerWorkload: 10, ArrivalRateHz: 2200, Seed: 3, // ρ ≈ 0.44, bursty
	})
	if err != nil {
		t.Fatal(err)
	}
	serviceCycles := 10.0 * (7000 + 7000)
	if light.Workloads[0].AvgLatency() > 1.5*serviceCycles {
		t.Fatalf("light-load latency %v should be near service time %v",
			light.Workloads[0].AvgLatency(), serviceCycles)
	}
	if heavy.Workloads[0].AvgLatency() <= light.Workloads[0].AvgLatency() {
		t.Fatalf("heavy load latency %v should exceed light load %v",
			heavy.Workloads[0].AvgLatency(), light.Workloads[0].AvgLatency())
	}
	// Open loop leaves the core idle between arrivals under light load.
	if light.AggregateUtil() >= heavy.AggregateUtil() {
		t.Fatalf("light-load utilization %v should be below heavy-load %v",
			light.AggregateUtil(), heavy.AggregateUtil())
	}
}

func TestOpenLoopDeterministic(t *testing.T) {
	mk := func() []*trace.Workload { return []*trace.Workload{synthetic("S", 5000, 5000, 5)} }
	a, err := Run(mk(), Options{RequestsPerWorkload: 5, ArrivalRateHz: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk(), Options{RequestsPerWorkload: 5, ArrivalRateHz: 1000, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalCycles != b.TotalCycles {
		t.Fatal("open-loop runs nondeterministic under same seed")
	}
}
