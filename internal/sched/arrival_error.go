package sched

import "fmt"

// ArrivalError reports an invalid open-loop arrival configuration: a
// malformed explicit schedule, a schedule-count/workload-count mismatch, or
// setting both ArrivalCycles and ArrivalRateHz (documented as mutually
// exclusive). Callers assembling schedules programmatically (the fleet
// dispatcher, the workload engine plumbing) match it with errors.As to
// distinguish a bad traffic description from other configuration errors.
type ArrivalError struct {
	// Workload is the offending schedule's index in ArrivalCycles, or -1 for
	// an option-level conflict (mutual exclusion, schedule-count mismatch).
	Workload int
	// Index is the offending arrival's position within the schedule, or -1.
	Index int
	// Value is the offending arrival cycle when Index >= 0.
	Value int64
	// Reason is the human-readable diagnosis.
	Reason string
}

func (e *ArrivalError) Error() string {
	switch {
	case e.Workload < 0:
		return "sched: invalid arrivals: " + e.Reason
	case e.Index < 0:
		return fmt.Sprintf("sched: invalid arrivals for workload %d: %s", e.Workload, e.Reason)
	}
	return fmt.Sprintf("sched: invalid arrival ArrivalCycles[%d][%d] = %d: %s",
		e.Workload, e.Index, e.Value, e.Reason)
}
