package sched

import (
	"testing"

	"v10/internal/obs"
	"v10/internal/trace"
)

// totalFor runs the workload fault-free and returns the run's makespan; the
// fault tests compare perturbed runs against it.
func totalFor(t *testing.T, w *trace.Workload, o Options) int64 {
	t.Helper()
	res, err := Run([]*trace.Workload{w}, o)
	if err != nil {
		t.Fatal(err)
	}
	return res.TotalCycles
}

// TestHaltEndsRunAtExactCycle: a fail-stop halt ends the run cleanly at its
// cycle with partial measurements — no ErrMaxCycles wrap — and records which
// operator kind each workload had in flight for the migration cost model.
func TestHaltEndsRunAtExactCycle(t *testing.T) {
	w := synthetic("S", 1000, 500, 4) // 6000 cycles per request serially
	log := &obs.Log{}
	res, err := Run([]*trace.Workload{w}, Options{
		RequestsPerWorkload: 100,
		HaltAtCycle:         50_000,
		Tracer:              log,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles != 50_000 || res.HaltedAt != 50_000 {
		t.Fatalf("total %d, halted at %d — want both exactly 50000", res.TotalCycles, res.HaltedAt)
	}
	st := res.Workloads[0]
	if st.Requests == 0 || st.Requests >= 100 {
		t.Fatalf("requests = %d, want a partial count in (0,100)", st.Requests)
	}
	// The workload was mid-operator at cycle 50000 (requests take 6000 cycles
	// back to back), so the in-flight kind must be recorded as SA or VU.
	if st.InFlightOpKind != 1 && st.InFlightOpKind != 2 {
		t.Fatalf("InFlightOpKind = %d, want 1 (SA) or 2 (VU)", st.InFlightOpKind)
	}

	// Nothing observable happens at or after the halt, and the halt itself is
	// traced exactly once with the core-index-unknown sentinel.
	var fails int
	for _, e := range log.Events {
		if e.Time > 50_000 {
			t.Fatalf("event %v at cycle %d, after the halt", e.Type, e.Time)
		}
		if e.Type == obs.EvCoreFail {
			fails++
			if e.Time != 50_000 || e.Arg0 != -1 {
				t.Fatalf("EvCoreFail at %d with Arg0 %v, want cycle 50000 / Arg0 -1", e.Time, e.Arg0)
			}
		}
	}
	if fails != 1 {
		t.Fatalf("EvCoreFail emitted %d times, want once", fails)
	}
}

// TestStallWindowDelaysCompletion: clock-gating the FUs for a window strictly
// inside the run pushes the makespan out by exactly the window's length —
// compute-only operators make no progress while frozen and lose none after.
func TestStallWindowDelaysCompletion(t *testing.T) {
	w := synthetic("S", 1000, 500, 4)
	o := Options{RequestsPerWorkload: 3} // ≈18000 cycles fault-free
	base := totalFor(t, w, o)

	log := &obs.Log{}
	perturbed := o
	perturbed.StallWindows = []Window{{At: 5_000, Dur: 3_000}}
	perturbed.Tracer = log
	res, err := Run([]*trace.Workload{w}, perturbed)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles != base+3_000 {
		t.Fatalf("stalled total %d, want fault-free %d + window 3000", res.TotalCycles, base)
	}
	var stalls int
	for _, e := range log.Events {
		if e.Type == obs.EvCoreStall {
			stalls++
			if e.Time != 8_000 || e.Dur != 3_000 {
				t.Fatalf("EvCoreStall at %d dur %d, want window end 8000 dur 3000", e.Time, e.Dur)
			}
		}
	}
	if stalls != 1 {
		t.Fatalf("EvCoreStall emitted %d times, want once", stalls)
	}
}

// TestHBMWindowSlowsBandwidthBoundRun: degrading HBM capacity for a window
// lengthens a bandwidth-bound run, and the degradation is traced.
func TestHBMWindowSlowsBandwidthBoundRun(t *testing.T) {
	// demand ≈ 600 B/cycle against the core's ≈471 B/cycle: HBM-bound.
	bound := trace.NewWorkload("HBM", "HBM", 1, func(int) *trace.Graph {
		return &trace.Graph{Ops: []trace.Op{{
			ID: 0, Kind: trace.KindSA, Compute: 10_000, HBMBytes: 6e6,
		}}}
	})
	o := Options{RequestsPerWorkload: 3}
	base := totalFor(t, bound, o)

	log := &obs.Log{}
	perturbed := o
	perturbed.HBMWindows = []Window{{At: 1_000, Dur: 10_000, Factor: 0.25}}
	perturbed.Tracer = log
	res, err := Run([]*trace.Workload{bound}, perturbed)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles <= base {
		t.Fatalf("degraded total %d not longer than fault-free %d", res.TotalCycles, base)
	}
	var degrades int
	for _, e := range log.Events {
		if e.Type == obs.EvHBMDegrade {
			degrades++
			if e.Time != 11_000 || e.Dur != 10_000 || e.Arg0 != 0.25 {
				t.Fatalf("EvHBMDegrade at %d dur %d factor %v, want 11000/10000/0.25", e.Time, e.Dur, e.Arg0)
			}
		}
	}
	if degrades != 1 {
		t.Fatalf("EvHBMDegrade emitted %d times, want once", degrades)
	}
}

// TestVMemWindowForcesFinerTiling: requests starting inside a vector-memory
// pressure window see a shrunken partition, so an op that fits fault-free
// must be tiled — inflating its HBM reload traffic (§3.6).
func TestVMemWindowForcesFinerTiling(t *testing.T) {
	// 10 MB fits the 16 MB two-tenant partition untiled; at factor 0.25 the
	// partition is 4 MB → 3 tiles → 1e6×(1+0.5×2) = 2e6 bytes per request.
	snug := trace.NewWorkload("Snug", "Snug", 1, func(int) *trace.Graph {
		return &trace.Graph{Ops: []trace.Op{{
			ID: 0, Kind: trace.KindSA, Compute: 10_000,
			HBMBytes: 1e6, VMemBytes: 10 << 20,
		}}}
	})
	other := synthetic("O", 100, 100, 2)
	o := Options{RequestsPerWorkload: 2}
	baseRes, err := Run([]*trace.Workload{snug, other}, o)
	if err != nil {
		t.Fatal(err)
	}
	basePerReq := baseRes.Workloads[0].HBMBytes / float64(baseRes.Workloads[0].Requests)
	if basePerReq > 1.1e6 {
		t.Fatalf("fault-free traffic %v per request, expected untiled ≈1e6", basePerReq)
	}

	perturbed := o
	perturbed.VMemWindows = []Window{{At: 0, Dur: 1 << 40, Factor: 0.25}}
	res, err := Run([]*trace.Workload{snug, other}, perturbed)
	if err != nil {
		t.Fatal(err)
	}
	perReq := res.Workloads[0].HBMBytes / float64(res.Workloads[0].Requests)
	if perReq < 1.9e6 {
		t.Fatalf("pressured traffic %v per request, want ≈2e6 from forced tiling", perReq)
	}
}

// TestFaultWindowValidation: malformed fault options must be rejected before
// the run starts.
func TestFaultWindowValidation(t *testing.T) {
	w := synthetic("S", 100, 100, 2)
	cases := map[string]Options{
		"negative halt":         {HaltAtCycle: -1},
		"negative window start": {StallWindows: []Window{{At: -5, Dur: 10}}},
		"zero window duration":  {StallWindows: []Window{{At: 5, Dur: 0}}},
		"hbm factor zero":       {HBMWindows: []Window{{At: 0, Dur: 10, Factor: 0}}},
		"hbm factor above one":  {HBMWindows: []Window{{At: 0, Dur: 10, Factor: 1.5}}},
		"vmem factor missing":   {VMemWindows: []Window{{At: 0, Dur: 10}}},
		"overlapping same kind": {StallWindows: []Window{{At: 0, Dur: 100}, {At: 50, Dur: 100}}},
	}
	for name, o := range cases {
		if _, err := Run([]*trace.Workload{w}, o); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	// Distinct kinds may overlap freely; adjacent same-kind windows may touch.
	ok := Options{
		RequestsPerWorkload: 1,
		StallWindows:        []Window{{At: 0, Dur: 100}, {At: 100, Dur: 50}},
		HBMWindows:          []Window{{At: 0, Dur: 1000, Factor: 0.5}},
		VMemWindows:         []Window{{At: 0, Dur: 1000, Factor: 0.5}},
	}
	if _, err := Run([]*trace.Workload{w}, ok); err != nil {
		t.Fatalf("valid overlapping-kinds options rejected: %v", err)
	}
}
