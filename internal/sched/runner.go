package sched

import (
	"fmt"
	"math"
	"strings"

	"v10/internal/mathx"

	"v10/internal/metrics"
	"v10/internal/obs"
	"v10/internal/sim"
	"v10/internal/trace"
	"v10/internal/vnpu"
)

type phase int

const (
	phaseStalling phase = iota // waiting out the operator's DMA/infeed gap
	phaseReady                 // operator ready, waiting for a free FU
	phaseRunning               // operator executing on an FU
	phaseIdle                  // open loop: no request in flight
)

// wlState is one row of the workload context table plus runner bookkeeping.
type wlState struct {
	r        *runner // back-pointer for payload-style event callbacks
	idx      int
	w        *trace.Workload
	stats    *metrics.WorkloadStats
	priority float64

	requestNo    int
	gscratch     *trace.Graph // reusable request-graph buffer (RequestInto)
	ops          []trace.Op
	opIdx        int
	phase        phase
	remaining    float64 // remaining compute cycles of the current operator
	preempted    bool    // operator was preempted and needs a context restore
	requestStart int64

	activeCycles int64   // FU-busy cycles accumulated (the context table's Active Cycles)
	segStart     int64   // when the current running segment began
	segWork      float64 // compute cycles outstanding when the segment began

	inFlight     bool    // a request is currently being served
	queue        []int64 // open-loop: arrival times of requests waiting to start
	arrivals     *mathx.RNG
	nextArrivalF float64 // open-loop Poisson: absolute next-arrival time, pre-floor
	lastDispatch uint64
	ctxBytes     int64 // preemption context currently held in vmem
	vmemPart     int64 // this workload's vector-memory partition
	ctxCap       int64 // cap on held preemption context (vmemPart / 4)

	// vNPU slice membership (sliceIdx 0, slice nil, sliceFrac 1 when the
	// core is unsliced). chargeFrom/chargeBytes carry the pending HBM
	// token-bucket charge to its grant-time trace event.
	sliceIdx    int
	slice       *vnpu.Slice
	sliceFrac   float64
	chargeFrom  int64
	chargeBytes float64

	task *sim.FluidTask
	fu   *fuState
}

// currentOp returns the operator at the front of the workload's stream.
func (w *wlState) currentOp() *trace.Op { return &w.ops[w.opIdx] }

// activeAt returns active_time at cycle now, including the running segment.
func (w *wlState) activeAt(now int64) int64 {
	a := w.activeCycles
	if w.phase == phaseRunning {
		a += now - w.segStart
	}
	return a
}

// arpAt returns active_rate_p = (active_time/total_time)/priority
// (Algorithm 1). All workloads arrive at cycle 0.
func (w *wlState) arpAt(now int64) float64 {
	if now == 0 {
		return 0
	}
	return float64(w.activeAt(now)) / float64(now) / w.priority
}

// fuState is one functional unit (SA or VU). Under spatial partitioning
// every slice owns a full virtual FU set running at its compute fraction;
// slice is 0 on an unsliced core.
type fuState struct {
	r         *runner // back-pointer for payload-style event callbacks
	kind      int     // 0 = SA, 1 = VU
	idx       int
	slice     int
	running   *wlState
	switching bool
	saving    *wlState // workload whose context this FU is checkpointing
}

// runner executes one multi-tenant simulation.
type runner struct {
	opts     Options
	engine   *sim.Engine
	pool     *sim.FluidPool
	busy     *metrics.BusyTracker
	tr       obs.Tracer    // nil when tracing is disabled
	fus      [2][]*fuState // by kind
	wls      []*wlState
	dispatch uint64

	// sliceTimer is the §3.2 preemption timer as a parkable grid timer: armed
	// only while some workload sits ready without an FU, so contention-free
	// and idle stretches skip ahead with no per-slice events at all.
	sliceTimer *sim.Timer

	halted  bool    // fail-stop sentinel fired; run ends at this cycle
	frozen  bool    // inside a straggler window: compute clock-gated
	hbmBase float64 // nominal pool capacity restored after HBM windows

	// unmet counts workloads still short of their request target, so the
	// done-predicate RunUntil evaluates per event is O(1) instead of a scan
	// over every workload.
	unmet int
}

// event builds a workload/FU-attributed trace event. Call sites guard on
// r.tr != nil before constructing the event, keeping the disabled path free.
func (r *runner) event(t obs.EventType, now, dur int64, wl *wlState, fu *fuState) obs.Event {
	e := obs.Event{
		Time: now, Dur: dur, Type: t,
		WIdx: -1, FUKind: obs.FUNone, FUIndex: -1, Request: -1, Op: -1,
	}
	if wl != nil {
		e.Workload = wl.w.Name
		e.WIdx = wl.idx
		e.Request = wl.requestNo
		e.Op = wl.opIdx
	}
	if fu != nil {
		e.FUKind = fu.kind
		e.FUIndex = fu.idx
	}
	return e
}

// Run simulates the workloads sharing one NPU core under the given options
// and returns the measured result. At least one workload is required.
func Run(workloads []*trace.Workload, opts Options) (*metrics.RunResult, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(workloads) == 0 {
		return nil, fmt.Errorf("sched: no workloads")
	}
	// Algorithm 1 divides by the priority when computing active_rate_p, so a
	// zero, negative, or non-finite priority silently turns the policy's
	// comparisons into ±Inf/NaN ordering. Reject it up front.
	for i, w := range workloads {
		if !(w.Priority > 0) || math.IsInf(w.Priority, 0) {
			return nil, fmt.Errorf("sched: workload %d (%s) has invalid priority %v; must be positive and finite",
				i, w.Name, w.Priority)
		}
	}

	cfg := opts.Config
	engine := &sim.Engine{}
	capacity := cfg.HBMBytesPerCycle()
	if opts.DisableFluidHBM {
		capacity = 1e18 // effectively infinite: no contention
	}
	// Spatial partitioning: each slice owns a virtual FU set and divides its
	// own vector memory among its residents. nSlices stays 1 — and every
	// code path below is bit-identical to the unsliced scheduler — when no
	// slices are configured.
	nSlices := 1
	var sliceResidents []int
	if len(opts.Slices) > 0 {
		nSlices = len(opts.Slices)
		if len(opts.SliceOf) != len(workloads) {
			return nil, fmt.Errorf("sched: SliceOf has %d entries for %d workloads",
				len(opts.SliceOf), len(workloads))
		}
		sliceResidents = make([]int, nSlices)
		for i, s := range opts.SliceOf {
			if s < 0 || s >= nSlices {
				return nil, fmt.Errorf("sched: workload %d assigned to slice %d of %d", i, s, nSlices)
			}
			sliceResidents[s]++
		}
	}
	r := &runner{
		opts:   opts,
		engine: engine,
		pool:   sim.NewFluidPool(engine, capacity),
		busy:   metrics.NewBusyTracker(cfg.NumSA*nSlices, cfg.NumVU*nSlices),
		tr:     opts.Tracer,
	}
	vmemPart := cfg.VMemBytes / int64(len(workloads))
	r.hbmBase = capacity
	r.pool.Tracer = opts.Tracer
	// Fault hooks are scheduled before the workloads so a halt tied with an
	// arrival (or any other same-cycle event) fires first and wins the tie.
	r.scheduleFaults()
	for s := 0; s < nSlices; s++ {
		for i := 0; i < cfg.NumSA; i++ {
			r.fus[0] = append(r.fus[0], &fuState{r: r, kind: 0, idx: s*cfg.NumSA + i, slice: s})
		}
		for i := 0; i < cfg.NumVU; i++ {
			r.fus[1] = append(r.fus[1], &fuState{r: r, kind: 1, idx: s*cfg.NumVU + i, slice: s})
		}
	}
	if opts.ArrivalCycles != nil && len(opts.ArrivalCycles) != len(workloads) {
		return nil, &ArrivalError{Workload: -1, Index: -1,
			Reason: fmt.Sprintf("ArrivalCycles has %d schedules for %d workloads",
				len(opts.ArrivalCycles), len(workloads))}
	}
	if opts.Preemption {
		r.sliceTimer = engine.NewTimer(cfg.TimeSlice, r.sliceTick)
	}
	for i, w := range workloads {
		wl := &wlState{
			r:         r,
			idx:       i,
			w:         w,
			priority:  w.Priority,
			stats:     &metrics.WorkloadStats{Name: w.Name},
			vmemPart:  vmemPart,
			sliceFrac: 1,
		}
		if len(opts.Slices) > 0 {
			sl := opts.Slices[opts.SliceOf[i]]
			part := sl.VMemBytes / int64(sliceResidents[sl.Index])
			if part < vnpu.MinPartitionBytes {
				return nil, fmt.Errorf("sched: %w", &vnpu.CapError{
					Slice: sl.Index, Name: sl.Name,
					Requested: vnpu.MinPartitionBytes * int64(sliceResidents[sl.Index]),
					Used:      0, Cap: sl.VMemBytes,
				})
			}
			if err := sl.AllocVMem(part); err != nil {
				return nil, fmt.Errorf("sched: %w", err)
			}
			sl.SetResidents(sliceResidents[sl.Index])
			wl.sliceIdx = sl.Index
			wl.slice = sl
			wl.sliceFrac = sl.ComputeFraction
			wl.vmemPart = part
		}
		wl.ctxCap = wl.vmemPart / 4
		r.wls = append(r.wls, wl)
		switch {
		case opts.ArrivalCycles != nil:
			wl.phase = phaseIdle
			for _, at := range opts.ArrivalCycles[i] {
				r.scheduleArrivalAt(wl, at)
			}
		case opts.ArrivalRateHz > 0:
			wl.arrivals = mathx.NewRNG(opts.Seed + 0xa221 + uint64(i)*7919)
			r.scheduleArrival(wl, 0)
		default:
			r.startRequest(wl, 0, 0)
		}
	}
	if opts.Counters != nil {
		r.scheduleCounterTimer()
	}

	for i, wl := range r.wls {
		if wl.stats.Requests < opts.target(i) {
			r.unmet++
		}
	}
	done := func() bool { return r.halted || r.unmet == 0 }
	finished := engine.RunUntil(done, opts.MaxCycles)
	now := engine.Now()
	r.busy.Finish(now)
	if opts.Counters != nil {
		r.sampleCounters(now) // final snapshot at the end of the run
	}

	result := &metrics.RunResult{
		Scheme:      opts.scheme(),
		TotalCycles: now,
		NumSA:       cfg.NumSA,
		NumVU:       cfg.NumVU,
		HBMCapacity: cfg.HBMBytesPerCycle(),
		Busy:        r.busy,
	}
	if r.halted {
		result.HaltedAt = now
	}
	for _, wl := range r.wls {
		wl.stats.ActiveCycles = wl.activeAt(now)
		if r.halted && wl.phase == phaseRunning {
			// The operator the workload had on an FU when the core died — the
			// fleet migration path charges its §3.3 checkpoint cost.
			wl.stats.InFlightOpKind = kindOf(wl.currentOp().Kind) + 1
		}
		result.Workloads = append(result.Workloads, wl.stats)
	}
	for _, sl := range opts.Slices {
		result.Slices = append(result.Slices, sl.Stats())
	}
	if !finished {
		// Return the partial measurements alongside the error: a timed-out
		// open-loop run is diagnosed from its trace and counters, not
		// discarded. The wrap says who was behind when the cap hit.
		var lag []string
		for i, wl := range r.wls {
			if wl.stats.Requests < opts.target(i) {
				lag = append(lag, fmt.Sprintf("%s %d/%d (queue %d)",
					wl.w.Name, wl.stats.Requests, opts.target(i), len(wl.queue)))
			}
		}
		return result, fmt.Errorf("%w: stopped at cycle %d with incomplete workloads: %s",
			ErrMaxCycles, now, strings.Join(lag, ", "))
	}
	return result, nil
}

// scheduleFaults plants the run's fault-injection hooks: the fail-stop halt
// sentinel, straggler stall windows (freeze/thaw), HBM degradation windows,
// and the vmem pressure window-end trace spans. Window-end events are
// scheduled even with tracing off so event sequencing — and therefore every
// tie-break — is identical between traced and untraced runs.
func (r *runner) scheduleFaults() {
	if h := r.opts.HaltAtCycle; h > 0 {
		r.engine.Schedule(h, func(t int64) {
			r.halted = true
			if r.tr != nil {
				e := r.event(obs.EvCoreFail, t, 0, nil, nil)
				e.Arg0 = -1 // the core does not know its fleet index
				r.tr.Emit(e)
			}
		})
	}
	for _, w := range r.opts.StallWindows {
		win := w
		r.engine.Schedule(win.At, func(t int64) { r.freeze(t) })
		r.engine.Schedule(win.At+win.Dur, func(t int64) { r.thaw(t, win) })
	}
	for _, w := range r.opts.HBMWindows {
		win := w
		r.engine.Schedule(win.At, func(int64) {
			r.pool.SetCapacity(r.hbmBase * win.Factor)
		})
		r.engine.Schedule(win.At+win.Dur, func(t int64) {
			r.pool.SetCapacity(r.hbmBase)
			if r.tr != nil {
				e := r.event(obs.EvHBMDegrade, t, win.Dur, nil, nil)
				e.Arg0 = win.Factor
				r.tr.Emit(e)
			}
		})
	}
	for _, w := range r.opts.VMemWindows {
		win := w
		r.engine.Schedule(win.At+win.Dur, func(t int64) {
			if r.tr != nil {
				e := r.event(obs.EvVMemPressure, t, win.Dur, nil, nil)
				e.Arg0 = win.Factor
				r.tr.Emit(e)
			}
		})
	}
}

// freeze clock-gates the core for a straggler window: every running task is
// preempted in place — progress integrated, traffic flushed into its stats —
// but keeps its FU, so occupancy (and the Fig. 17 busy attribution) keeps
// accumulating while no compute progresses. DMA stalls and arrivals proceed.
func (r *runner) freeze(int64) {
	r.frozen = true
	for _, wl := range r.wls {
		if wl.task == nil {
			continue
		}
		wl.stats.HBMBytes += wl.task.BytesMoved()
		wl.remaining = r.pool.Preempt(wl.task)
		wl.task = nil
	}
}

// thaw ends a straggler window: frozen operators resume from their remaining
// work, and dispatches that landed mid-window (deferred by startTask) start
// executing.
func (r *runner) thaw(now int64, win Window) {
	r.frozen = false
	if r.tr != nil {
		r.tr.Emit(r.event(obs.EvCoreStall, now, win.Dur, nil, nil))
	}
	for _, wl := range r.wls {
		if wl.phase == phaseRunning && wl.task == nil && wl.fu != nil {
			r.resumeTask(wl)
		}
	}
}

// resumeTask restarts wl's frozen-in-place operator on the FU it kept.
func (r *runner) resumeTask(wl *wlState) {
	op := wl.currentOp()
	demand := 0.0
	if op.Compute > 0 {
		demand = op.HBMBytes / float64(op.Compute)
		if wl.sliceFrac != 1 {
			demand *= wl.sliceFrac // per stretched cycle, so bytes are conserved
		}
	}
	wl.task = r.pool.StartTask(wl.remaining, demand, opDoneCB, wl)
}

// opDoneCB is the shared fluid-task completion callback: the workload is the
// owner and its bound FU is read back at fire time (wl.fu is stable from
// dispatch until opComplete/preempt clears it, and preemption cancels the
// task before clearing).
func opDoneCB(owner any, _ *sim.FluidTask, now int64) {
	wl := owner.(*wlState)
	wl.r.opComplete(wl.fu, wl, now)
}

// vmemFactorAt returns the vector-memory partition factor in effect at now
// (1 outside every pressure window).
func (r *runner) vmemFactorAt(now int64) float64 {
	for _, w := range r.opts.VMemWindows {
		if now >= w.At && now < w.At+w.Dur {
			return w.Factor
		}
	}
	return 1
}

// scheduleCounterTimer arms the periodic counter-snapshot sampler.
func (r *runner) scheduleCounterTimer() {
	var tick func(now int64)
	tick = func(now int64) {
		r.sampleCounters(now)
		r.engine.Schedule(now+r.opts.CounterInterval, tick)
	}
	r.engine.Schedule(r.opts.CounterInterval, tick)
}

// sampleCounters snapshots every workload's cumulative context-table
// counters into the counter log.
func (r *runner) sampleCounters(now int64) {
	for _, wl := range r.wls {
		r.opts.Counters.Add(obs.CounterRow{
			Cycle:        now,
			Workload:     wl.w.Name,
			Requests:     wl.stats.Requests,
			ActiveCycles: wl.activeAt(now),
			SABusyCycles: wl.stats.SABusyCycles,
			VUBusyCycles: wl.stats.VUBusyCycles,
			Preemptions:  wl.stats.Preemptions,
			SwitchCycles: wl.stats.SwitchCycles,
			HBMBytes:     wl.stats.HBMBytes,
			CtxBytes:     wl.ctxBytes,
			QueueDepth:   len(wl.queue),
		})
	}
}

// startRequest loads the next request's operator stream (tiled for the
// workload's vector-memory partition) and begins its first operator.
// arrivedAt is when the request entered the system (equals now in the
// closed loop; earlier under open-loop queueing).
func (r *runner) startRequest(wl *wlState, now, arrivedAt int64) {
	g, owned := wl.w.RequestInto(wl.requestNo, wl.gscratch)
	if owned {
		wl.gscratch = g
	}
	part := wl.vmemPart
	if f := r.vmemFactorAt(now); f < 1 {
		part = int64(float64(part) * f)
		if part < 1 {
			part = 1
		}
	}
	tiled := trace.TileForVMem(g, part, r.opts.VMemReloadFactor)
	if owned || tiled != g {
		// The graph's storage is private to this workload (reused scratch or a
		// freshly tiled copy) and already in ID order, so the operator stream
		// is the Ops slice itself — no copy, no sort.
		wl.ops = tiled.Ops
	} else {
		wl.ops = tiled.LinearizeInto(wl.ops[:0])
	}
	if len(wl.ops) == 0 {
		panic(fmt.Sprintf("sched: workload %s produced an empty request", wl.w.Name))
	}
	wl.opIdx = 0
	wl.requestStart = arrivedAt
	wl.inFlight = true
	r.beginOp(wl, now)
}

// scheduleArrivalAt plants one explicit arrival (ArrivalCycles mode). The
// handler mirrors the Poisson path: queue behind the in-flight request or
// start serving immediately.
func (r *runner) scheduleArrivalAt(wl *wlState, at int64) {
	r.engine.ScheduleCall(at, arrivalCB, wl)
}

// arrivalCB handles one explicit arrival.
func arrivalCB(payload any, now int64) {
	wl := payload.(*wlState)
	if wl.inFlight {
		wl.queue = append(wl.queue, now)
	} else {
		wl.r.startRequest(wl, now, now)
	}
}

// scheduleArrival arms the next Poisson arrival for wl (open-loop mode). The
// next-arrival time accumulates in float64 and is floored only on emission:
// truncating each gap to int64 with a gap<1 clamp would bias the realized
// rate above nominal — badly so once the mean gap nears a single cycle.
// floor(t) can tie with the current cycle at sub-cycle gaps; the engine runs
// same-cycle events in scheduling order, so coalesced arrivals still serve.
func (r *runner) scheduleArrival(wl *wlState, now int64) {
	meanCycles := r.opts.Config.FrequencyHz / r.opts.ArrivalRateHz
	wl.nextArrivalF -= meanCycles * logUniform(wl.arrivals)
	r.engine.ScheduleCall(int64(wl.nextArrivalF), poissonArrivalCB, wl)
}

// poissonArrivalCB handles one Poisson arrival and draws the next.
func poissonArrivalCB(payload any, now int64) {
	wl := payload.(*wlState)
	if wl.inFlight {
		wl.queue = append(wl.queue, now)
	} else {
		wl.r.startRequest(wl, now, now)
	}
	wl.r.scheduleArrival(wl, now)
}

// logUniform returns ln(U) for U ∈ (0,1), the exponential-sample kernel.
func logUniform(rng *mathx.RNG) float64 {
	u := rng.Float64()
	for u == 0 {
		u = rng.Float64()
	}
	return math.Log(u)
}

// beginOp starts the stall (DMA/infeed fetch) phase of the current op. The
// ready event carries the workload as its payload — no per-operator closure.
// On a sliced core the operator's HBM bytes are first charged against the
// slice's token bucket: an exhausted window *stalls* the DMA (the stall phase
// starts at the grant cycle), never sheds it.
func (r *runner) beginOp(wl *wlState, now int64) {
	op := wl.currentOp()
	wl.remaining = float64(op.Compute)
	if wl.sliceFrac != 1 {
		// The slice owns only a fraction of the PE columns: compute stretches
		// by 1/fraction (fluid demand shrinks by the same factor below, so
		// total traffic is conserved).
		wl.remaining /= wl.sliceFrac
	}
	wl.preempted = false
	wl.phase = phaseStalling
	start := now
	if sl := wl.slice; sl != nil && op.HBMBytes > 0 {
		start = sl.Charge(now, op.HBMBytes)
		wl.chargeFrom = now
		wl.chargeBytes = op.HBMBytes
		// The grant-time charge event is scheduled whether or not a tracer is
		// attached so traced and untraced sliced runs sequence identically.
		r.engine.ScheduleCall(start, sliceChargeCB, wl)
	}
	r.engine.ScheduleCall(start+op.Stall, opReadyCB, wl)
}

// sliceChargeCB fires at the cycle a slice's token bucket granted the pending
// HBM charge: it emits the throttle span (when the grant was delayed) and the
// charge event the conservation oracle replays.
func sliceChargeCB(payload any, now int64) {
	wl := payload.(*wlState)
	r := wl.r
	if r.tr == nil {
		return
	}
	if d := now - wl.chargeFrom; d > 0 {
		e := r.event(obs.EvSliceThrottle, now, d, wl, nil)
		e.Arg0 = float64(wl.sliceIdx)
		r.tr.Emit(e)
	}
	e := r.event(obs.EvSliceHBM, now, 0, wl, nil)
	e.Arg0 = float64(wl.sliceIdx)
	e.Arg1 = wl.chargeBytes
	r.tr.Emit(e)
}

// opReadyCB is beginOp's pooled-event trampoline.
func opReadyCB(payload any, now int64) {
	wl := payload.(*wlState)
	wl.r.opReady(wl, now)
}

// opReady fires when the operator's DMA completes (the Ready bit is set).
// Per §3.2 the scheduler issues an operator as soon as it is ready and an FU
// is idle.
func (r *runner) opReady(wl *wlState, now int64) {
	wl.phase = phaseReady
	if r.tr != nil {
		r.tr.Emit(r.event(obs.EvStall, now, wl.currentOp().Stall, wl, nil))
	}
	if wl.fu != nil {
		return // already bound to an FU (mid context-restore)
	}
	kind := kindOf(wl.currentOp().Kind)
	if fu := r.idleFU(kind, wl.sliceIdx); fu != nil {
		r.dispatchTo(fu, wl, now)
		return
	}
	// No free FU: the workload waits, so the preemption timer must be live.
	if r.sliceTimer != nil {
		r.sliceTimer.Arm()
	}
}

// idleFU returns an idle, non-switching FU of the kind in the slice, or nil.
func (r *runner) idleFU(kind, slice int) *fuState {
	for _, fu := range r.fus[kind] {
		if fu.slice == slice && fu.running == nil && !fu.switching {
			return fu
		}
	}
	return nil
}

// dispatchTo places wl's current operator on fu, paying a context-restore
// penalty first if the operator was previously preempted.
func (r *runner) dispatchTo(fu *fuState, wl *wlState, now int64) {
	if fu.running != nil || fu.switching {
		panic("sched: dispatch to occupied FU")
	}
	r.dispatch++
	wl.lastDispatch = r.dispatch
	wl.fu = fu
	fu.running = wl
	if r.tr != nil {
		r.tr.Emit(r.event(obs.EvDispatch, now, 0, wl, fu))
	}

	// Exposed scheduling-decision latency (zero for the hardware scheduler;
	// ~20 µs for the §4 software alternative). The FU waits for the verdict.
	if lat := r.opts.DispatchLatency; lat > 0 {
		fu.switching = true
		r.setSwitching(now, fu.kind, +1)
		wl.stats.SwitchCycles += lat
		r.engine.Schedule(now+lat, func(t int64) {
			fu.switching = false
			r.setSwitching(t, fu.kind, -1)
			if r.tr != nil {
				r.tr.Emit(r.event(obs.EvDispatchDelay, t, lat, wl, fu))
			}
			r.finishDispatch(fu, wl, t)
		})
		return
	}
	r.finishDispatch(fu, wl, now)
}

// finishDispatch handles the context restore (if any) and task start once
// the scheduling decision has been delivered.
func (r *runner) finishDispatch(fu *fuState, wl *wlState, now int64) {
	if wl.preempted {
		restore := r.restoreCycles(fu.kind)
		fu.switching = true
		r.setSwitching(now, fu.kind, +1)
		wl.stats.SwitchCycles += restore
		r.engine.ScheduleCall(now+restore, ctxRestoreCB, wl)
		return
	}
	r.startTask(fu, wl, now)
}

// ctxRestoreCB completes a context restore. The workload is still bound to
// its FU (wl.fu set in dispatchTo) and the restore cost is a pure function
// of the FU kind, so the pooled event needs only the workload payload.
func ctxRestoreCB(payload any, now int64) {
	wl := payload.(*wlState)
	r := wl.r
	fu := wl.fu
	fu.switching = false
	r.setSwitching(now, fu.kind, -1)
	r.releaseCtx(wl, fu.kind)
	wl.preempted = false
	if r.tr != nil {
		r.tr.Emit(r.event(obs.EvCtxRestore, now, r.restoreCycles(fu.kind), wl, fu))
	}
	r.startTask(fu, wl, now)
}

// startTask begins fluid execution of wl's current operator on fu.
func (r *runner) startTask(fu *fuState, wl *wlState, now int64) {
	op := wl.currentOp()
	wl.phase = phaseRunning
	wl.segStart = now
	wl.segWork = wl.remaining
	r.setBusy(now, fu.kind, +1)
	if r.frozen {
		// Straggler window: occupy the FU but defer execution; thaw starts
		// the fluid task from wl.remaining.
		return
	}

	demand := 0.0
	if op.Compute > 0 {
		demand = op.HBMBytes / float64(op.Compute)
		if wl.sliceFrac != 1 {
			demand *= wl.sliceFrac // per stretched cycle, so bytes are conserved
		}
	}
	// Scale demand by the fraction of the op still to run so total traffic
	// stays proportional after preemption.
	wl.task = r.pool.StartTask(wl.remaining, demand, opDoneCB, wl)
}

// opComplete handles an operator finishing on fu.
func (r *runner) opComplete(fu *fuState, wl *wlState, now int64) {
	op := wl.currentOp()
	r.setBusy(now, fu.kind, -1)
	seg := now - wl.segStart
	wl.activeCycles += seg
	// sliceFrac converts stretched segment work back to physical-core useful
	// cycles (exact no-op at fraction 1: x*1.0 == x in IEEE 754).
	r.addBusyTo(wl, fu.kind, int64(wl.segWork*op.Eff()*wl.sliceFrac))
	wl.stats.HBMBytes += wl.task.BytesMoved()
	wl.stats.ProgressOps++
	wl.stats.ProgressOpCycles += float64(op.Compute)
	wl.stats.FLOPs += op.FLOPs
	wl.task = nil
	wl.fu = nil
	fu.running = nil
	if r.tr != nil {
		r.tr.Emit(r.event(obs.EvRunSegment, now, seg, wl, fu))
	}

	wl.opIdx++
	if wl.opIdx == len(wl.ops) {
		// Request complete: record latency (from arrival, so open-loop
		// queueing counts) and serve the next request — immediately in the
		// closed loop, from the arrival queue in the open loop.
		lat := float64(now - wl.requestStart)
		wl.stats.LatencyCycles = append(wl.stats.LatencyCycles, lat)
		if r.tr != nil {
			e := r.event(obs.EvRequestDone, now, 0, wl, nil)
			e.Arg0 = lat
			r.tr.Emit(e)
		}
		wl.stats.Requests++
		if wl.stats.Requests == r.opts.target(wl.idx) {
			r.unmet--
		}
		if wl.stats.Requests == 1 {
			wl.stats.FirstCompleteAt = now
		}
		wl.stats.LastCompleteAt = now
		wl.requestNo++
		wl.inFlight = false
		if r.opts.openLoop() {
			if len(wl.queue) > 0 {
				arrivedAt := wl.queue[0]
				wl.queue = wl.queue[1:]
				r.startRequest(wl, now, arrivedAt)
			} else {
				wl.phase = phaseIdle
			}
		} else {
			r.startRequest(wl, now, now)
		}
	} else {
		r.beginOp(wl, now)
	}
	r.fillFU(fu, now)
}

// fillFU invokes the scheduling policy to pick the next ready operator for a
// freed FU.
func (r *runner) fillFU(fu *fuState, now int64) {
	if fu.running != nil || fu.switching {
		return
	}
	if wl := r.pickNext(fu.kind, fu.slice, now); wl != nil {
		r.dispatchTo(fu, wl, now)
	}
}

// pickNext implements the scheduling policies over ready candidates for the
// FU kind within one slice: Algorithm 1 (Priority) or Round-Robin. V10's
// temporal interleaving thus runs independently inside every vNPU slice.
func (r *runner) pickNext(kind, slice int, now int64) *wlState {
	var best *wlState
	var bestKey float64
	for _, wl := range r.wls {
		// wl.fu guards the context-restore window: the workload is already
		// bound to an FU (switching in) but not yet phaseRunning.
		if wl.phase != phaseReady || wl.fu != nil || wl.sliceIdx != slice ||
			kindOf(wl.currentOp().Kind) != kind {
			continue
		}
		var key float64
		switch r.opts.Policy {
		case RoundRobin:
			key = float64(wl.lastDispatch)
		case Priority:
			key = wl.arpAt(now)
		}
		// Exact active_rate_p ties fall back to least-recently-dispatched.
		// Ties are persistent — not just momentary — when operators carry no
		// compute (active cycles never accrue, arp stays 0 for everyone), and
		// breaking them by table index would starve the last workload forever.
		if best == nil || key < bestKey ||
			(key == bestKey && wl.lastDispatch < best.lastDispatch) {
			best, bestKey = wl, key
		}
	}
	return best
}

// sliceTick is the preemption timer's grid callback (§3.2: "Periodically, a
// preemption timer will trigger the scheduling policy to examine whether an
// operator should be preempted"). The timer is parkable: it stays armed only
// while some workload is ready without an FU — every tick on which no
// workload waits would be a no-op anyway (sliceCheck preempts only for a
// waiting candidate), so the parked stretches are behavior-free skips.
func (r *runner) sliceTick(now int64) {
	r.sliceCheck(now)
	for _, wl := range r.wls {
		if wl.phase == phaseReady && wl.fu == nil {
			r.sliceTimer.Arm()
			return
		}
	}
}

// sliceCheck preempts running operators whose workloads have out-run their
// fair share when a starved workload is waiting for the same FU type.
func (r *runner) sliceCheck(now int64) {
	if r.frozen {
		return // clock-gated: nothing is making progress worth rebalancing
	}
	for kind := 0; kind <= 1; kind++ {
		for _, fu := range r.fus[kind] {
			running := fu.running
			if running == nil || fu.switching {
				continue
			}
			cand := r.pickNext(kind, fu.slice, now)
			if cand == nil {
				continue
			}
			if cand.arpAt(now)*r.opts.PreemptMargin >= running.arpAt(now) {
				continue // the running workload is not over-served
			}
			r.preempt(fu, running, now)
		}
	}
}

// preempt stops the operator running on fu, saving its context (§3.3). The
// FU pays the save cost, then the policy refills it.
func (r *runner) preempt(fu *fuState, wl *wlState, now int64) {
	if !r.reserveCtx(wl, fu.kind, now) {
		return // no vmem left for another context: skip this preemption
	}
	wl.remaining = r.pool.Preempt(wl.task)
	r.setBusy(now, fu.kind, -1)
	seg := now - wl.segStart
	wl.activeCycles += seg
	r.addBusyTo(wl, fu.kind, int64((wl.segWork-wl.remaining)*wl.currentOp().Eff()*wl.sliceFrac))
	wl.stats.HBMBytes += wl.task.BytesMoved()
	wl.stats.Preemptions++
	wl.task = nil
	wl.fu = nil
	wl.phase = phaseReady
	wl.preempted = true
	fu.running = nil
	if r.sliceTimer != nil {
		r.sliceTimer.Arm() // the victim now waits for an FU
	}
	if r.tr != nil {
		r.tr.Emit(r.event(obs.EvRunSegment, now, seg, wl, fu))
		e := r.event(obs.EvPreempt, now, 0, wl, fu)
		e.Arg0 = wl.remaining
		r.tr.Emit(e)
	}

	save := r.saveCycles(fu.kind)
	wl.stats.SwitchCycles += save
	fu.switching = true
	fu.saving = wl
	r.setSwitching(now, fu.kind, +1)
	r.engine.ScheduleCall(now+save, ctxSaveCB, fu)
}

// ctxSaveCB completes a context save: the FU is the payload because the
// preempted workload may already be dispatched elsewhere by the time the
// save finishes (fu.saving keeps it for trace attribution).
func ctxSaveCB(payload any, now int64) {
	fu := payload.(*fuState)
	r := fu.r
	fu.switching = false
	r.setSwitching(now, fu.kind, -1)
	if r.tr != nil {
		r.tr.Emit(r.event(obs.EvCtxSave, now, r.saveCycles(fu.kind), fu.saving, fu))
	}
	fu.saving = nil
	r.fillFU(fu, now)
}

// saveCycles is the exposed cost of checkpointing the preempted operator:
// for the SA, draining in-flight partial sums (SADim cycles, §3.3 step 1–3);
// for the VU, spilling PC + registers.
func (r *runner) saveCycles(kind int) int64 {
	if kind == 0 {
		return int64(r.opts.Config.SADim)
	}
	return r.opts.Config.VUPreemptCycles() / 2
}

// restoreCycles is the cost of re-establishing a preempted operator's state:
// for the SA, reloading weights and replaying saved inputs (2×SADim cycles);
// for the VU, reloading PC + registers. save + restore = the paper's 384
// cycles for a 128×128 SA.
func (r *runner) restoreCycles(kind int) int64 {
	if kind == 0 {
		return int64(2 * r.opts.Config.SADim)
	}
	return (r.opts.Config.VUPreemptCycles() + 1) / 2
}

// reserveCtx accounts vector-memory space for a preemption context. SA
// contexts are 96 KB (§3.3); VU contexts are a few KB and always fit. On a
// sliced core the budget comes out of the slice's vmem ceiling, and a
// rejection is recorded as a cap hit (the scheduler skips the preemption
// instead of spilling past the slice boundary).
func (r *runner) reserveCtx(wl *wlState, kind int, now int64) bool {
	var bytes int64
	if kind == 0 {
		bytes = r.opts.Config.SAContextBytes()
	} else {
		bytes = int64(r.opts.Config.VURegFileBits) * int64(r.opts.Config.VULanes) / 8
	}
	if wl.ctxBytes+bytes > wl.ctxCap {
		if sl := wl.slice; sl != nil {
			sl.NoteCapHit()
			if r.tr != nil {
				e := r.event(obs.EvSliceCapHit, now, 0, wl, nil)
				e.Arg0 = float64(wl.sliceIdx)
				r.tr.Emit(e)
			}
		}
		return false
	}
	wl.ctxBytes += bytes
	if wl.ctxBytes > wl.stats.CtxStorageBytes {
		wl.stats.CtxStorageBytes = wl.ctxBytes
	}
	return true
}

// releaseCtx frees the context storage after a restore completes.
func (r *runner) releaseCtx(wl *wlState, kind int) {
	var bytes int64
	if kind == 0 {
		bytes = r.opts.Config.SAContextBytes()
	} else {
		bytes = int64(r.opts.Config.VURegFileBits) * int64(r.opts.Config.VULanes) / 8
	}
	wl.ctxBytes -= bytes
	if wl.ctxBytes < 0 {
		wl.ctxBytes = 0
	}
}

// addBusyTo attributes a segment's useful cycles to the workload's per-FU
// counters (Fig. 9-style per-workload utilization breakdown).
func (r *runner) addBusyTo(wl *wlState, kind int, useful int64) {
	if kind == 0 {
		wl.stats.SABusyCycles += useful
	} else {
		wl.stats.VUBusyCycles += useful
	}
}

func (r *runner) setBusy(now int64, kind int, delta int) {
	if kind == 0 {
		r.busy.SetBusy(now, delta, 0)
	} else {
		r.busy.SetBusy(now, 0, delta)
	}
}

func (r *runner) setSwitching(now int64, kind int, delta int) {
	if kind == 0 {
		r.busy.SetSwitching(now, delta, 0)
	} else {
		r.busy.SetSwitching(now, 0, delta)
	}
}
