package sched

import (
	"errors"
	"math"
	"testing"

	"v10/internal/obs"
	"v10/internal/trace"
	"v10/internal/vnpu"
)

// syntheticHBM builds a deterministic SA-only workload whose every operator
// moves hbmBytes off-chip.
func syntheticHBM(name string, saLen int64, ops int, hbmBytes float64) *trace.Workload {
	return trace.NewWorkload(name, name, 1, func(int) *trace.Graph {
		g := &trace.Graph{}
		for i := 0; i < ops; i++ {
			op := trace.Op{ID: i, Kind: trace.KindSA, Compute: saLen, HBMBytes: hbmBytes}
			if i > 0 {
				op.Deps = []int{i - 1}
			}
			g.Ops = append(g.Ops, op)
		}
		return g
	})
}

// partition materializes templates against the package-level test config,
// failing the test on error. Each Run needs a fresh partition: slices carry
// live token-bucket and vmem state.
func partition(t *testing.T, window int64, templates ...vnpu.Template) *vnpu.Partition {
	t.Helper()
	p, err := vnpu.NewPartition(cfg, templates, window)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSlicedRunReportsSliceStats(t *testing.T) {
	a := synthetic("A", 1000, 500, 4)
	b := synthetic("B", 1000, 500, 4)
	p := partition(t, 0,
		vnpu.Template{Name: "big", Compute: 0.5, VMem: 0.5, HBM: 0.5},
		vnpu.Template{Name: "small", Compute: 0.5, VMem: 0.25, HBM: 0.5})
	res, err := Run([]*trace.Workload{a, b}, Options{
		RequestsPerWorkload: 2,
		Slices:              p.Slices,
		SliceOf:             []int{0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Slices) != 2 {
		t.Fatalf("got %d slice stats, want 2", len(res.Slices))
	}
	for i, ss := range res.Slices {
		if ss.Slice != i {
			t.Fatalf("slice %d reports index %d", i, ss.Slice)
		}
		if ss.Residents != 1 {
			t.Fatalf("slice %d residents = %d, want 1", i, ss.Residents)
		}
		if ss.VMemUsedBytes != p.Slices[i].VMemBytes {
			t.Fatalf("slice %d vmem used = %d, want the full per-resident partition %d",
				i, ss.VMemUsedBytes, p.Slices[i].VMemBytes)
		}
	}
	if res.Slices[0].Name != "big" || res.Slices[1].Name != "small" {
		t.Fatalf("slice names = %q, %q", res.Slices[0].Name, res.Slices[1].Name)
	}
	// NumSA stays the physical core's count, not the virtual per-slice total.
	if res.NumSA != cfg.NumSA {
		t.Fatalf("NumSA = %d, want physical %d", res.NumSA, cfg.NumSA)
	}
	if res.Workloads[0].Requests != 2 || res.Workloads[1].Requests != 2 {
		t.Fatal("sliced workloads did not complete their requests")
	}
}

func TestSliceComputeFractionStretchesLatency(t *testing.T) {
	run := func(slices []*vnpu.Slice, sliceOf []int) float64 {
		w := synthetic("S", 1000, 500, 4)
		res, err := Run([]*trace.Workload{w}, Options{
			RequestsPerWorkload: 3, Slices: slices, SliceOf: sliceOf,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Workloads[0].LatencyCycles[0]
	}
	full := run(nil, nil)
	p := partition(t, 0, vnpu.Template{Compute: 0.5, VMem: 0.5, HBM: 1})
	half := run(p.Slices, []int{0})
	if ratio := half / full; math.Abs(ratio-2) > 0.01 {
		t.Fatalf("half-compute slice latency ratio = %v (%v vs %v), want ≈ 2", ratio, half, full)
	}
}

func TestSliceHBMThrottleStallsDMA(t *testing.T) {
	const window = 4096
	// Each operator's DMA is several times the starved slice's window quota,
	// so every charge must reserve future windows.
	bytesPerOp := 4 * 0.1 * cfg.HBMBytesPerCycle() * window
	run := func(hbmFrac float64) (*vnpu.Slice, int64) {
		p := partition(t, window, vnpu.Template{Compute: 1, VMem: 1, HBM: hbmFrac})
		// Compute longer than the window, so consecutive charges land in
		// distinct windows and the full-bandwidth slice never throttles.
		w := syntheticHBM("W", 2*window, 6, bytesPerOp)
		res, err := Run([]*trace.Workload{w}, Options{
			RequestsPerWorkload: 2, Slices: p.Slices, SliceOf: []int{0},
		})
		if err != nil {
			t.Fatal(err)
		}
		return p.Slices[0], res.TotalCycles
	}
	starved, starvedCycles := run(0.1)
	rich, richCycles := run(1)

	st := starved.Stats()
	if st.ThrottleStalls == 0 || st.ThrottleCycles == 0 {
		t.Fatalf("starved slice saw no throttling: %+v", st)
	}
	// Stall, not shed: every byte is still charged and the run just takes
	// longer than with a full-bandwidth slice. The closed loop charges the
	// next request's first operator before the done predicate ends the run,
	// so up to one extra op's bytes may appear.
	wantBytes := 2 * 6 * bytesPerOp
	if st.HBMBytes < wantBytes-1e-6*wantBytes || st.HBMBytes > wantBytes+bytesPerOp+1e-6*wantBytes {
		t.Fatalf("charged bytes = %v, want within [%v, %v]", st.HBMBytes, wantBytes, wantBytes+bytesPerOp)
	}
	if starvedCycles <= richCycles {
		t.Fatalf("starved run (%d cycles) not slower than full-bandwidth run (%d)",
			starvedCycles, richCycles)
	}
	if rt := rich.Stats(); rt.ThrottleStalls != 0 {
		t.Fatalf("full-bandwidth slice throttled %d times", rt.ThrottleStalls)
	}
}

func TestSliceDispatchStaysInsideSlice(t *testing.T) {
	a := synthetic("A", 1000, 500, 4)
	b := synthetic("B", 1000, 500, 4)
	p := partition(t, 0,
		vnpu.Template{Compute: 0.5, VMem: 0.5, HBM: 0.5},
		vnpu.Template{Compute: 0.5, VMem: 0.5, HBM: 0.5})
	log := &obs.Log{}
	_, err := Run([]*trace.Workload{a, b}, Options{
		RequestsPerWorkload: 3,
		Slices:              p.Slices,
		SliceOf:             []int{0, 1},
		Tracer:              log,
	})
	if err != nil {
		t.Fatal(err)
	}
	dispatches := 0
	for _, e := range log.Events {
		if e.Type != obs.EvDispatch {
			continue
		}
		dispatches++
		perSlice := cfg.NumSA
		if e.FUKind == obs.FUVU {
			perSlice = cfg.NumVU
		}
		if got := e.FUIndex / perSlice; got != e.WIdx {
			t.Fatalf("workload %d dispatched onto slice %d's FU (index %d)", e.WIdx, got, e.FUIndex)
		}
	}
	if dispatches == 0 {
		t.Fatal("no dispatch events traced")
	}
}

func TestSliceChargeEventsMatchStats(t *testing.T) {
	const window = 4096
	bytesPerOp := 2 * 0.2 * cfg.HBMBytesPerCycle() * window
	p := partition(t, window, vnpu.Template{Compute: 1, VMem: 1, HBM: 0.2})
	w := syntheticHBM("W", 2000, 5, bytesPerOp)
	log := &obs.Log{}
	_, err := Run([]*trace.Workload{w}, Options{
		RequestsPerWorkload: 2, Slices: p.Slices, SliceOf: []int{0}, Tracer: log,
	})
	if err != nil {
		t.Fatal(err)
	}
	var charged float64
	var throttles int64
	lastCharge := int64(-1)
	for _, e := range log.Events {
		switch e.Type {
		case obs.EvSliceHBM:
			if e.Arg0 != 0 {
				t.Fatalf("charge event on slice %v, want 0", e.Arg0)
			}
			charged += e.Arg1
			if e.Time < lastCharge {
				t.Fatalf("charge events out of order: %d after %d", e.Time, lastCharge)
			}
			lastCharge = e.Time
		case obs.EvSliceThrottle:
			throttles++
			if e.Dur <= 0 {
				t.Fatalf("throttle span with non-positive duration %d", e.Dur)
			}
		}
	}
	st := p.Slices[0].Stats()
	// Every traced charge is in the stats; a charge whose grant lies past the
	// run's end has no event yet, so the stats may lead the events by at most
	// one in-flight op per resident.
	if charged > st.HBMBytes+1e-6*st.HBMBytes {
		t.Fatalf("event bytes %v exceed slice stats bytes %v", charged, st.HBMBytes)
	}
	if st.HBMBytes-charged > bytesPerOp+1e-6*st.HBMBytes {
		t.Fatalf("stats bytes %v lead event bytes %v by more than one op (%v)",
			st.HBMBytes, charged, bytesPerOp)
	}
	if throttles > st.ThrottleStalls || st.ThrottleStalls-throttles > 1 {
		t.Fatalf("traced %d throttle spans, stats say %d stalls (at most one pending per resident)",
			throttles, st.ThrottleStalls)
	}
	if throttles == 0 {
		t.Fatal("scenario produced no throttling; test is vacuous")
	}
}

func TestSliceCapHitSkipsPreemption(t *testing.T) {
	// Two workloads interleaved inside one tiny slice: the per-resident vmem
	// partition's context budget (part/4) cannot hold a single SA context, so
	// every preemption attempt is rejected and counted as a cap hit.
	small := cfg
	small.VMemBytes = 4 * vnpu.MinPartitionBytes
	// A's SA operators outlast the preemption time-slice while B (higher
	// priority, so a lower active_rate_p) waits — every timer tick wants to
	// preempt A.
	a := synthetic("A", 3*cfg.TimeSlice, 10, 6)
	b := synthetic("B", 3*cfg.TimeSlice, 10, 6)
	b.Priority = 8
	p, err := vnpu.NewPartition(small, []vnpu.Template{{Compute: 1, VMem: 1, HBM: 1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := FullOptions()
	opts.Config = small
	opts.RequestsPerWorkload = 2
	opts.Slices = p.Slices
	opts.SliceOf = []int{0, 0}
	res, err := Run([]*trace.Workload{a, b}, opts)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Slices[0]
	if st.Residents != 2 {
		t.Fatalf("residents = %d, want 2", st.Residents)
	}
	if st.CapHits == 0 {
		t.Fatal("no cap hits recorded despite an undersized context budget")
	}
	if res.Workloads[0].Preemptions+res.Workloads[1].Preemptions != 0 {
		t.Fatal("preemptions happened despite the context budget never fitting")
	}
}

func TestSlicedRunTracedMatchesUntraced(t *testing.T) {
	run := func(tr obs.Tracer) *metricsSummary {
		const window = 4096
		p := partition(t, window,
			vnpu.Template{Compute: 0.5, VMem: 0.5, HBM: 0.25},
			vnpu.Template{Compute: 0.5, VMem: 0.5, HBM: 0.25})
		a := syntheticHBM("A", 2000, 5, 0.5*cfg.HBMBytesPerCycle()*window)
		b := synthetic("B", 1000, 500, 4)
		opts := FullOptions()
		opts.RequestsPerWorkload = 3
		opts.Slices = p.Slices
		opts.SliceOf = []int{0, 1}
		opts.Tracer = tr
		res, err := Run([]*trace.Workload{a, b}, opts)
		if err != nil {
			t.Fatal(err)
		}
		s := &metricsSummary{total: res.TotalCycles}
		for _, w := range res.Workloads {
			s.lats = append(s.lats, w.LatencyCycles...)
			s.hbm += w.HBMBytes
			s.preempts += w.Preemptions
		}
		return s
	}
	plain := run(nil)
	traced := run(&obs.Log{})
	if plain.total != traced.total || plain.hbm != traced.hbm || plain.preempts != traced.preempts {
		t.Fatalf("traced run diverged: %+v vs %+v", plain, traced)
	}
	for i := range plain.lats {
		if plain.lats[i] != traced.lats[i] {
			t.Fatalf("latency %d diverged: %v vs %v", i, plain.lats[i], traced.lats[i])
		}
	}
}

type metricsSummary struct {
	total    int64
	lats     []float64
	hbm      float64
	preempts int64
}

func TestSliceOptionErrors(t *testing.T) {
	w := synthetic("S", 1000, 500, 2)
	p := partition(t, 0, vnpu.Template{Compute: 0.5, VMem: 0.5, HBM: 0.5})

	if _, err := Run([]*trace.Workload{w}, Options{
		RequestsPerWorkload: 1, SliceOf: []int{0},
	}); err == nil {
		t.Fatal("SliceOf without Slices accepted")
	}
	if _, err := Run([]*trace.Workload{w}, Options{
		RequestsPerWorkload: 1, Slices: p.Slices,
	}); err == nil {
		t.Fatal("Slices without SliceOf accepted")
	}
	if _, err := Run([]*trace.Workload{w}, Options{
		RequestsPerWorkload: 1, Slices: p.Slices, SliceOf: []int{1},
	}); err == nil {
		t.Fatal("out-of-range slice index accepted")
	}
	if _, err := Run([]*trace.Workload{w}, Options{
		RequestsPerWorkload: 1, Slices: []*vnpu.Slice{nil}, SliceOf: []int{0},
	}); err == nil {
		t.Fatal("nil slice accepted")
	}
	if _, err := Run([]*trace.Workload{w}, Options{
		RequestsPerWorkload: 1,
		Slices:              []*vnpu.Slice{{ComputeFraction: 0, VMemBytes: 1 << 20}},
		SliceOf:             []int{0},
	}); err == nil {
		t.Fatal("zero compute fraction accepted")
	}

	// A roster that would shrink a resident's partition below the minimum
	// fails with the typed cap error.
	tiny := cfg
	tiny.VMemBytes = 2 * vnpu.MinPartitionBytes
	pt, err := vnpu.NewPartition(tiny, []vnpu.Template{{Compute: 1, VMem: 0.4, HBM: 1}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{RequestsPerWorkload: 1, Config: tiny, Slices: pt.Slices, SliceOf: []int{0}}
	_, err = Run([]*trace.Workload{w}, opts)
	var capErr *vnpu.CapError
	if !errors.As(err, &capErr) {
		t.Fatalf("undersized partition error = %v, want *vnpu.CapError", err)
	}
}
