// Package ctlplane is the fleet's elastic control plane: a deterministic
// control loop that watches windowed SLO-attainment signals and decides when
// to activate spare cores, when to drain and retire active ones, and when the
// collocation model has drifted enough to be worth flagging. The loop is
// deliberately pure — Decide is a function of the signal sequence and the
// config, with no clocks or randomness — so every decision can be replayed
// bit-identically and checked against a counterfactual run that forces the
// opposite decision (see the replay subpackage).
//
// The policy is classic hysteresis + cooldown control:
//
//   - Scale up when SLO attainment stays below UpBelow for HysteresisWindows
//     consecutive windows: activate the lowest-indexed spare core.
//   - Scale down when attainment stays at or above DownAbove AND queue
//     occupancy stays at or below DrainOccupancy for HysteresisWindows
//     consecutive windows: drain the most recently activated core (LIFO, so
//     the always-active cores that host tenant homes are never retired).
//   - Any scale decision starts a CooldownCycles refractory period during
//     which no further scaling happens, and resets both hysteresis streaks.
//   - At most one scale decision per control tick — capacity changes are
//     gradual by construction.
package ctlplane

import "fmt"

// Config parameterizes the control loop. The zero value of every field means
// "use the default"; WithDefaults validates and fills it in. All fields are
// JSON-tagged so a config can ride inside a simcheck scenario or a serving
// summary verbatim.
type Config struct {
	// MinCores is the always-active floor: cores [0, MinCores) host tenant
	// homes and are never drained. Default max(1, maxCores/2).
	MinCores int `json:"min_cores"`
	// IntervalCycles is the control-tick period. Signals are aggregated per
	// window of this many cycles and one Decide call happens at each window
	// boundary. Default durationCycles/16 (at least 1).
	IntervalCycles int64 `json:"interval_cycles"`
	// CooldownCycles is the minimum cycle gap between two scale decisions.
	// Default 2×IntervalCycles. Negative is rejected.
	CooldownCycles int64 `json:"cooldown_cycles"`
	// CooldownIntervals expresses the cooldown as a multiple of the control
	// interval instead of absolute cycles — the portable form a tuned policy
	// carries across scenarios whose horizons (and therefore intervals)
	// differ. Mutually exclusive with CooldownCycles; WithDefaults resolves
	// it to CooldownCycles = CooldownIntervals × IntervalCycles.
	CooldownIntervals int `json:"cooldown_intervals,omitempty"`
	// HysteresisWindows is how many consecutive qualifying windows a signal
	// must persist before the loop acts on it. Default 2.
	HysteresisWindows int `json:"hysteresis_windows"`
	// UpBelow: scale up when window attainment < UpBelow. Default 0.9.
	UpBelow float64 `json:"up_below"`
	// DownAbove: scale down only when attainment >= DownAbove. Default 0.98.
	DownAbove float64 `json:"down_above"`
	// DrainOccupancy: scale down only when the fleet's mean queue occupancy
	// (pending / QueueLimit) is at or below this fraction. Default 0.25.
	DrainOccupancy float64 `json:"drain_occupancy"`
	// DriftEpsilon is the per-window centroid-drift threshold above which the
	// loop records a recluster decision. Default 0.02.
	DriftEpsilon float64 `json:"drift_epsilon"`
	// Script, when non-nil, switches the controller to scripted mode: Decide
	// ignores the signals and replays the scripted decisions for each window
	// instead. This is the counterfactual-replay hook — a recorded decision
	// trace (possibly mutated) is forced onto a fresh run of the same seeded
	// scenario.
	Script []Decision `json:"script,omitempty"`
}

// WithDefaults validates cfg against the fleet's core count and run length
// and fills unset fields with their defaults.
func (cfg Config) WithDefaults(maxCores int, durationCycles int64) (Config, error) {
	if maxCores < 1 {
		return cfg, fmt.Errorf("ctlplane: need at least 1 core, got %d", maxCores)
	}
	if cfg.MinCores < 0 {
		return cfg, fmt.Errorf("ctlplane: negative MinCores %d", cfg.MinCores)
	}
	if cfg.MinCores == 0 {
		cfg.MinCores = maxCores / 2
		if cfg.MinCores < 1 {
			cfg.MinCores = 1
		}
	}
	if cfg.MinCores > maxCores {
		return cfg, fmt.Errorf("ctlplane: MinCores %d exceeds fleet cores %d", cfg.MinCores, maxCores)
	}
	if cfg.IntervalCycles < 0 {
		return cfg, fmt.Errorf("ctlplane: negative IntervalCycles %d", cfg.IntervalCycles)
	}
	if cfg.IntervalCycles == 0 {
		cfg.IntervalCycles = durationCycles / 16
		if cfg.IntervalCycles < 1 {
			cfg.IntervalCycles = 1
		}
	}
	if cfg.CooldownCycles < 0 {
		return cfg, fmt.Errorf("ctlplane: negative CooldownCycles %d", cfg.CooldownCycles)
	}
	if cfg.CooldownIntervals < 0 {
		return cfg, fmt.Errorf("ctlplane: negative CooldownIntervals %d", cfg.CooldownIntervals)
	}
	if cfg.CooldownIntervals > 0 {
		if cfg.CooldownCycles > 0 {
			return cfg, fmt.Errorf("ctlplane: CooldownCycles %d and CooldownIntervals %d are mutually exclusive",
				cfg.CooldownCycles, cfg.CooldownIntervals)
		}
		cfg.CooldownCycles = int64(cfg.CooldownIntervals) * cfg.IntervalCycles
		cfg.CooldownIntervals = 0 // resolved; keeps WithDefaults idempotent
	}
	if cfg.CooldownCycles == 0 {
		cfg.CooldownCycles = 2 * cfg.IntervalCycles
	}
	if cfg.HysteresisWindows < 0 {
		return cfg, fmt.Errorf("ctlplane: negative HysteresisWindows %d", cfg.HysteresisWindows)
	}
	if cfg.HysteresisWindows == 0 {
		cfg.HysteresisWindows = 2
	}
	if cfg.UpBelow == 0 {
		cfg.UpBelow = 0.9
	}
	if cfg.DownAbove == 0 {
		cfg.DownAbove = 0.98
	}
	if cfg.UpBelow < 0 || cfg.UpBelow > 1 || cfg.DownAbove < 0 || cfg.DownAbove > 1 {
		return cfg, fmt.Errorf("ctlplane: attainment thresholds must be in [0,1], got up<%.3f down>=%.3f", cfg.UpBelow, cfg.DownAbove)
	}
	if cfg.UpBelow > cfg.DownAbove {
		return cfg, fmt.Errorf("ctlplane: UpBelow %.3f exceeds DownAbove %.3f (hysteresis band inverted)", cfg.UpBelow, cfg.DownAbove)
	}
	if cfg.DrainOccupancy == 0 {
		cfg.DrainOccupancy = 0.25
	}
	if cfg.DrainOccupancy < 0 || cfg.DrainOccupancy > 1 {
		return cfg, fmt.Errorf("ctlplane: DrainOccupancy must be in (0,1], got %.3f", cfg.DrainOccupancy)
	}
	if cfg.DriftEpsilon < 0 {
		return cfg, fmt.Errorf("ctlplane: negative DriftEpsilon %g", cfg.DriftEpsilon)
	}
	if cfg.DriftEpsilon == 0 {
		cfg.DriftEpsilon = 0.02
	}
	return cfg, nil
}

// WindowSignal is the per-window aggregate the fleet dispatcher hands to
// Decide at each control tick. Attainment is the fraction of the window's
// arrivals whose *estimated* latency met the SLO (GoodEst over Admitted+Shed;
// an idle window counts as 1.0 — no demand means no violation).
type WindowSignal struct {
	Window      int     `json:"window"`
	StartCycle  int64   `json:"start_cycle"`
	EndCycle    int64   `json:"end_cycle"`
	ActiveCores int     `json:"active_cores"`
	Admitted    int     `json:"admitted"`
	Shed        int     `json:"shed"`
	GoodEst     int     `json:"good_est"`
	Attainment  float64 `json:"attainment"`
	// QueueFrac is the mean queue occupancy across active cores at the tick:
	// pending entries / QueueLimit, in [0, ~1+].
	QueueFrac float64 `json:"queue_frac"`
	// Drift is the collocation-model centroid movement accumulated during the
	// window (0 when online re-clustering is off).
	Drift float64 `json:"drift,omitempty"`
}

// DecisionKind names a control decision the way traces spell it.
type DecisionKind string

const (
	// DecideScaleUp activates a spare core.
	DecideScaleUp DecisionKind = "scale-up"
	// DecideScaleDown drains and retires an active spare core.
	DecideScaleDown DecisionKind = "scale-down"
	// DecideRecluster records that the window's model drift crossed
	// DriftEpsilon (the centroid updates themselves are continuous; this is
	// the observable decision point).
	DecideRecluster DecisionKind = "reclustered"
)

// Decision is one control action, stamped with the window and tick cycle it
// was taken at.
type Decision struct {
	Kind    DecisionKind `json:"kind"`
	Window  int          `json:"window"`
	AtCycle int64        `json:"at_cycle"`
	// Core is the spare core being activated or drained (scale decisions).
	Core int `json:"core,omitempty"`
	// ActiveAfter is the active core count after the decision applies.
	ActiveAfter int `json:"active_after,omitempty"`
	// Drift is the window drift that triggered a recluster decision.
	Drift float64 `json:"drift,omitempty"`
}

// Controller is the deterministic decision loop. Feed it one WindowSignal per
// control tick in window order; it returns the decisions for that tick.
type Controller struct {
	cfg      Config
	maxCores int

	active     int   // current active core count
	spares     []int // inactive spare cores, ascending
	stack      []int // activated spares in activation order (LIFO drain)
	lastScale  int64 // cycle of the last scale decision
	everScaled bool  // false until the first scale decision
	lowStreak  int   // consecutive windows with attainment < UpBelow
	highStreak int   // consecutive windows qualifying for scale-down

	// ignoreCooldown is a test-only mutation hook: a buggy controller that
	// skips the refractory check. CheckDiscipline must catch it.
	ignoreCooldown bool
}

// NewController builds a controller for a fleet of maxCores cores. cfg must
// already be validated via WithDefaults.
func NewController(cfg Config, maxCores int) *Controller {
	c := &Controller{cfg: cfg, maxCores: maxCores, active: cfg.MinCores}
	for core := cfg.MinCores; core < maxCores; core++ {
		c.spares = append(c.spares, core)
	}
	return c
}

// Active returns the current active core count.
func (c *Controller) Active() int { return c.active }

// Decide consumes one window's signal and returns the decisions taken at its
// closing tick. In scripted mode the signal is ignored (except for stamping)
// and the script's decisions for this window are replayed instead.
func (c *Controller) Decide(sig WindowSignal) []Decision {
	if c.cfg.Script != nil {
		return c.decideScripted(sig)
	}
	var out []Decision
	if sig.Drift > c.cfg.DriftEpsilon {
		out = append(out, Decision{
			Kind: DecideRecluster, Window: sig.Window, AtCycle: sig.EndCycle,
			ActiveAfter: c.active, Drift: sig.Drift,
		})
	}
	if sig.Attainment < c.cfg.UpBelow {
		c.lowStreak++
	} else {
		c.lowStreak = 0
	}
	if sig.Attainment >= c.cfg.DownAbove && sig.QueueFrac <= c.cfg.DrainOccupancy {
		c.highStreak++
	} else {
		c.highStreak = 0
	}
	cooled := !c.everScaled || sig.EndCycle-c.lastScale >= c.cfg.CooldownCycles
	if c.ignoreCooldown {
		cooled = true
	}
	switch {
	case c.lowStreak >= c.cfg.HysteresisWindows && cooled && len(c.spares) > 0:
		core := c.spares[0]
		c.spares = c.spares[1:]
		c.stack = append(c.stack, core)
		c.active++
		c.noteScale(sig.EndCycle)
		out = append(out, Decision{
			Kind: DecideScaleUp, Window: sig.Window, AtCycle: sig.EndCycle,
			Core: core, ActiveAfter: c.active,
		})
	case c.highStreak >= c.cfg.HysteresisWindows && cooled && len(c.stack) > 0:
		core := c.stack[len(c.stack)-1]
		c.stack = c.stack[:len(c.stack)-1]
		c.spares = append([]int{core}, c.spares...)
		c.active--
		c.noteScale(sig.EndCycle)
		out = append(out, Decision{
			Kind: DecideScaleDown, Window: sig.Window, AtCycle: sig.EndCycle,
			Core: core, ActiveAfter: c.active,
		})
	}
	return out
}

func (c *Controller) noteScale(cycle int64) {
	c.lastScale = cycle
	c.everScaled = true
	c.lowStreak, c.highStreak = 0, 0
}

// decideScripted replays the script's decisions for sig.Window, re-stamping
// cycle and active-count fields so the applied trace is self-consistent even
// when the script was hand-mutated. Scripted scale decisions that are not
// applicable (core already active / not the drainable kind) are dropped.
func (c *Controller) decideScripted(sig WindowSignal) []Decision {
	var out []Decision
	for _, d := range c.cfg.Script {
		if d.Window != sig.Window {
			continue
		}
		switch d.Kind {
		case DecideScaleUp:
			idx := -1
			for i, core := range c.spares {
				if core == d.Core {
					idx = i
					break
				}
			}
			if idx < 0 {
				continue
			}
			c.spares = append(c.spares[:idx], c.spares[idx+1:]...)
			c.stack = append(c.stack, d.Core)
			c.active++
			out = append(out, Decision{
				Kind: DecideScaleUp, Window: sig.Window, AtCycle: sig.EndCycle,
				Core: d.Core, ActiveAfter: c.active,
			})
		case DecideScaleDown:
			idx := -1
			for i, core := range c.stack {
				if core == d.Core {
					idx = i
					break
				}
			}
			if idx < 0 {
				continue
			}
			c.stack = append(c.stack[:idx], c.stack[idx+1:]...)
			c.spares = append([]int{d.Core}, c.spares...)
			c.active--
			out = append(out, Decision{
				Kind: DecideScaleDown, Window: sig.Window, AtCycle: sig.EndCycle,
				Core: d.Core, ActiveAfter: c.active,
			})
		case DecideRecluster:
			out = append(out, Decision{
				Kind: DecideRecluster, Window: sig.Window, AtCycle: sig.EndCycle,
				ActiveAfter: c.active, Drift: sig.Drift,
			})
		}
	}
	return out
}
