// Package replay is the counterfactual-replay harness for the elastic control
// plane. The fleet simulator is bit-deterministic, so a control decision can
// be evaluated exactly: re-run the identical seeded scenario with the
// controller scripted to an alternative decision trace and diff the outcomes.
// The delta between the two runs is the true causal effect of the decision —
// no noise, no confidence intervals, no "all else roughly equal".
package replay

import (
	"fmt"

	"v10/internal/ctlplane"
	"v10/internal/fleet"
	"v10/internal/mathx"
	"v10/internal/trace"
)

// Script extracts the decision trace of a finished elastic run in the form
// Config.Script accepts: replaying it verbatim over the same scenario
// reproduces the run bit-identically.
func Script(res *fleet.Result) []ctlplane.Decision {
	if res.Control == nil {
		return nil
	}
	return append([]ctlplane.Decision(nil), res.Control.Decisions...)
}

// Summary is the outcome slice a counterfactual comparison cares about.
type Summary struct {
	// WorstP99Cycles is the highest per-tenant p99 latency — the fairness
	// headline number.
	WorstP99Cycles float64 `json:"worst_p99_cycles"`
	GoodputHz      float64 `json:"goodput_hz"`
	Good           int     `json:"good"`
	Shed           int     `json:"shed"`
	// ProvisionedCoreCycles is the capacity actually paid for (activity
	// spans, not fleet size × duration).
	ProvisionedCoreCycles int64 `json:"provisioned_core_cycles"`
	FinalActiveCores      int   `json:"final_active_cores"`
	Decisions             int   `json:"decisions"`
}

func summarize(res *fleet.Result) Summary {
	s := Summary{
		GoodputHz:             res.GoodputHz,
		Good:                  res.Good,
		Shed:                  res.Shed,
		ProvisionedCoreCycles: res.ProvisionedCoreCycles,
	}
	for _, ts := range res.Tenants {
		if ts.P99LatencyCycles > s.WorstP99Cycles {
			s.WorstP99Cycles = ts.P99LatencyCycles
		}
	}
	if res.Control != nil {
		s.FinalActiveCores = res.Control.FinalActiveCores
		s.Decisions = len(res.Control.Decisions)
	}
	return s
}

// Report is the exact outcome diff between the base run and the
// counterfactual. Deltas are (counterfactual − base)/base; a positive p99
// delta means the alternative decisions made tail latency worse.
type Report struct {
	Base           Summary `json:"base"`
	Counterfactual Summary `json:"counterfactual"`

	P99DeltaPct         float64 `json:"p99_delta_pct"`
	GoodputDeltaPct     float64 `json:"goodput_delta_pct"`
	ProvisionedDeltaPct float64 `json:"provisioned_delta_pct"`
}

func pctDelta(counter, base float64) float64 {
	return mathx.Ratio(counter-base, base, 0) * 100
}

// Run executes the seeded scenario twice: once with the live controller, and
// once with the controller scripted to mutate(trace of the first run). The
// mutate hook receives its own copy of the trace — return it modified (drop a
// scale-up, move a drain earlier, force an extra core) to ask "what if the
// controller had decided differently?". A nil mutate replays the trace
// verbatim, which must reproduce the base run exactly.
func Run(tenants []*trace.Workload, o fleet.Options, mutate func([]ctlplane.Decision) []ctlplane.Decision) (*Report, error) {
	if o.Elastic == nil {
		return nil, fmt.Errorf("replay: counterfactual replay needs an elastic run (Options.Elastic is nil)")
	}
	base, err := fleet.Run(tenants, o)
	if err != nil {
		return nil, fmt.Errorf("replay: base run: %w", err)
	}
	script := Script(base)
	if mutate != nil {
		script = mutate(script)
	}
	if script == nil {
		// A nil script would flip the rerun back to live-controller mode;
		// an empty-but-non-nil one means "no decisions at all".
		script = []ctlplane.Decision{}
	}
	cfg := base.Control.Config
	cfg.Script = script
	oW := o
	oW.Elastic = &cfg
	counter, err := fleet.Run(tenants, oW)
	if err != nil {
		return nil, fmt.Errorf("replay: counterfactual run: %w", err)
	}
	sb, sc := summarize(base), summarize(counter)
	return &Report{
		Base:                sb,
		Counterfactual:      sc,
		P99DeltaPct:         pctDelta(sc.WorstP99Cycles, sb.WorstP99Cycles),
		GoodputDeltaPct:     pctDelta(sc.GoodputHz, sb.GoodputHz),
		ProvisionedDeltaPct: pctDelta(float64(sc.ProvisionedCoreCycles), float64(sb.ProvisionedCoreCycles)),
	}, nil
}
