package replay

import (
	"encoding/json"
	"reflect"
	"testing"

	"v10/internal/ctlplane"
	"v10/internal/fleet"
	"v10/internal/npu"
	"v10/internal/trace"
)

// synthetic builds a deterministic workload of alternating SA/VU op pairs.
func synthetic(name string, saLen, vuLen int64, pairs int) *trace.Workload {
	return trace.NewWorkload(name, name, 1, func(int) *trace.Graph {
		g := &trace.Graph{}
		for i := 0; i < pairs; i++ {
			sa := trace.Op{ID: len(g.Ops), Kind: trace.KindSA, Compute: saLen}
			if len(g.Ops) > 0 {
				sa.Deps = []int{len(g.Ops) - 1}
			}
			g.Ops = append(g.Ops, sa)
			g.Ops = append(g.Ops, trace.Op{
				ID: len(g.Ops), Kind: trace.KindVU, Compute: vuLen,
				Deps: []int{len(g.Ops) - 1},
			})
		}
		return g
	})
}

func scenario() ([]*trace.Workload, fleet.Options) {
	tenants := []*trace.Workload{
		synthetic("sa0", 4000, 10, 6),
		synthetic("vu0", 10, 4000, 6),
		synthetic("sa1", 4000, 10, 6),
		synthetic("vu1", 10, 4000, 6),
	}
	o := fleet.Options{
		Config:         npu.DefaultConfig(),
		Cores:          3,
		Policy:         fleet.PolicyLeastLoaded,
		RateHz:         30_000,
		DurationCycles: 3_000_000,
		Seed:           5, // pinned: the regression below depends on this exact run
		Elastic:        &ctlplane.Config{MinCores: 1, HysteresisWindows: 1},
	}
	return tenants, o
}

// TestReplayedScriptIsCycleIdentical is the counterfactual-replay regression:
// re-running the pinned seeded scenario with the controller scripted to the
// natural run's own decision trace must reproduce the natural run
// bit-identically — same completions, same latencies, same window signals.
func TestReplayedScriptIsCycleIdentical(t *testing.T) {
	tenants, o := scenario()
	natural, err := fleet.Run(tenants, o)
	if err != nil {
		t.Fatal(err)
	}
	if natural.Control == nil || natural.Control.ScaleUps == 0 {
		t.Fatal("pinned scenario must autoscale for this regression to bite")
	}
	cfg := natural.Control.Config
	cfg.Script = Script(natural)
	oW := o
	oW.Elastic = &cfg
	replayed, err := fleet.Run(tenants, oW)
	if err != nil {
		t.Fatal(err)
	}
	// The only legitimate difference is the Script riding in the recorded
	// config; null it out and demand bit-identity.
	replayed.Control.Config.Script = nil
	jn, _ := json.Marshal(natural)
	jr, _ := json.Marshal(replayed)
	if string(jn) != string(jr) || !reflect.DeepEqual(natural, replayed) {
		t.Fatal("scripted replay of the natural decision trace diverged from the natural run")
	}
	// And a second scripted run reproduces the first (scripted mode is itself
	// deterministic).
	again, err := fleet.Run(tenants, oW)
	if err != nil {
		t.Fatal(err)
	}
	again.Control.Config.Script = nil
	if !reflect.DeepEqual(replayed, again) {
		t.Fatal("scripted rerun is not bit-identical")
	}
}

func TestRunVerbatimReportsZeroDeltas(t *testing.T) {
	tenants, o := scenario()
	rep, err := Run(tenants, o, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.P99DeltaPct != 0 || rep.GoodputDeltaPct != 0 || rep.ProvisionedDeltaPct != 0 {
		t.Fatalf("verbatim replay has nonzero deltas: %+v", rep)
	}
	if !reflect.DeepEqual(rep.Base, rep.Counterfactual) {
		t.Fatalf("summaries differ under verbatim replay: %+v vs %+v", rep.Base, rep.Counterfactual)
	}
}

// TestCounterfactualNoScaleUp asks the harness the canonical what-if: what
// would this overloaded run have looked like had the controller never added
// capacity? The forced run must provision strictly less and serve strictly
// worse — an exact, seed-for-seed causal readout.
func TestCounterfactualNoScaleUp(t *testing.T) {
	tenants, o := scenario()
	rep, err := Run(tenants, o, func(ds []ctlplane.Decision) []ctlplane.Decision {
		var out []ctlplane.Decision
		for _, d := range ds {
			if d.Kind != ctlplane.DecideScaleUp && d.Kind != ctlplane.DecideScaleDown {
				out = append(out, d)
			}
		}
		return out
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Base.Decisions == 0 {
		t.Fatal("base run took no decisions; scenario lost its point")
	}
	if rep.Counterfactual.FinalActiveCores != 1 {
		t.Fatalf("forced run still scaled: %d active cores", rep.Counterfactual.FinalActiveCores)
	}
	if rep.ProvisionedDeltaPct >= 0 {
		t.Fatalf("denying scale-ups should cut provisioned capacity, delta %+.2f%%", rep.ProvisionedDeltaPct)
	}
	if rep.Counterfactual.Good >= rep.Base.Good {
		t.Fatalf("starved run served %d good vs %d with autoscaling", rep.Counterfactual.Good, rep.Base.Good)
	}
}

func TestRunRejectsStaticOptions(t *testing.T) {
	tenants, o := scenario()
	o.Elastic = nil
	if _, err := Run(tenants, o, nil); err == nil {
		t.Fatal("static options accepted")
	}
}
