package ctlplane

import "fmt"

// CheckDiscipline is the control-discipline oracle: given the recorded
// window signals and the decision trace of a finished run, it verifies that
// the decisions are exactly what a clean controller would have taken — and
// additionally spells out the individual invariants (cooldown gaps,
// active-count bounds, LIFO drain order) so a violation names the broken rule
// rather than just "trace mismatch". Scripted runs are forced by construction
// and return no problems.
//
// The replay check is the strong one: Decide is a pure function of the signal
// sequence, so any injected control bug — an ignored cooldown, a skipped
// hysteresis window, a wrong core pick — produces a decision trace a fresh
// controller cannot reproduce.
func CheckDiscipline(cfg Config, maxCores int, windows []WindowSignal, decisions []Decision) []string {
	if cfg.Script != nil {
		return nil
	}
	var problems []string

	// Explicit invariants first, for readable failure messages.
	var lastScale int64
	everScaled := false
	var stack []int
	for i, d := range decisions {
		switch d.Kind {
		case DecideScaleUp, DecideScaleDown:
			if everScaled && d.AtCycle-lastScale < cfg.CooldownCycles {
				problems = append(problems, fmt.Sprintf(
					"ctlplane: cooldown violated: %s at cycle %d only %d cycles after previous scale (cooldown %d)",
					d.Kind, d.AtCycle, d.AtCycle-lastScale, cfg.CooldownCycles))
			}
			lastScale, everScaled = d.AtCycle, true
			if d.ActiveAfter < cfg.MinCores || d.ActiveAfter > maxCores {
				problems = append(problems, fmt.Sprintf(
					"ctlplane: decision %d (%s) leaves %d active cores outside [%d,%d]",
					i, d.Kind, d.ActiveAfter, cfg.MinCores, maxCores))
			}
			if d.Core < cfg.MinCores || d.Core >= maxCores {
				problems = append(problems, fmt.Sprintf(
					"ctlplane: decision %d (%s) touches core %d outside the spare range [%d,%d)",
					i, d.Kind, d.Core, cfg.MinCores, maxCores))
			}
		}
		switch d.Kind {
		case DecideScaleUp:
			stack = append(stack, d.Core)
		case DecideScaleDown:
			if len(stack) == 0 {
				problems = append(problems, fmt.Sprintf(
					"ctlplane: decision %d drains core %d with no activated spare outstanding", i, d.Core))
			} else if top := stack[len(stack)-1]; top != d.Core {
				problems = append(problems, fmt.Sprintf(
					"ctlplane: decision %d drains core %d but LIFO order requires core %d", i, d.Core, top))
			} else {
				stack = stack[:len(stack)-1]
			}
		}
	}

	// Replay: a fresh controller over the same signals must reproduce the
	// decision trace exactly.
	ctl := NewController(cfg, maxCores)
	var want []Decision
	for _, sig := range windows {
		want = append(want, ctl.Decide(sig)...)
	}
	if len(want) != len(decisions) {
		problems = append(problems, fmt.Sprintf(
			"ctlplane: decision trace has %d decisions but a clean controller replay produces %d",
			len(decisions), len(want)))
		return problems
	}
	for i := range want {
		if want[i] != decisions[i] {
			problems = append(problems, fmt.Sprintf(
				"ctlplane: decision %d diverges from clean replay: got %+v, want %+v",
				i, decisions[i], want[i]))
		}
	}
	return problems
}
