package ctlplane

import (
	"reflect"
	"strings"
	"testing"
)

func validCfg(t *testing.T) Config {
	cfg, err := Config{}.WithDefaults(4, 1_600_000)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func TestWithDefaultsFills(t *testing.T) {
	cfg := validCfg(t)
	if cfg.MinCores != 2 {
		t.Fatalf("default MinCores = %d, want maxCores/2 = 2", cfg.MinCores)
	}
	if cfg.IntervalCycles != 100_000 {
		t.Fatalf("default IntervalCycles = %d, want duration/16 = 100000", cfg.IntervalCycles)
	}
	if cfg.CooldownCycles != 200_000 {
		t.Fatalf("default CooldownCycles = %d, want 2 intervals", cfg.CooldownCycles)
	}
	if cfg.HysteresisWindows != 2 || cfg.UpBelow != 0.9 || cfg.DownAbove != 0.98 ||
		cfg.DrainOccupancy != 0.25 || cfg.DriftEpsilon != 0.02 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	// Defaults are idempotent.
	again, err := cfg.WithDefaults(4, 1_600_000)
	if err != nil || !reflect.DeepEqual(again, cfg) {
		t.Fatalf("WithDefaults not idempotent: %+v vs %+v (err %v)", again, cfg, err)
	}
	// Tiny fleets floor at one always-active core.
	one, err := Config{}.WithDefaults(1, 100)
	if err != nil || one.MinCores != 1 {
		t.Fatalf("single-core fleet: MinCores %d err %v", one.MinCores, err)
	}
}

func TestWithDefaultsRejects(t *testing.T) {
	for name, cfg := range map[string]Config{
		"negative-min":      {MinCores: -1},
		"min-above-max":     {MinCores: 9},
		"negative-interval": {IntervalCycles: -1},
		"negative-cooldown": {CooldownCycles: -100},
		"negative-hyst":     {HysteresisWindows: -2},
		"up-above-one":      {UpBelow: 1.5},
		"down-negative":     {DownAbove: -0.1},
		"inverted-band":     {UpBelow: 0.95, DownAbove: 0.5},
		"occupancy-above":   {DrainOccupancy: 1.2},
		"negative-epsilon":  {DriftEpsilon: -0.5},
	} {
		if _, err := cfg.WithDefaults(4, 1_600_000); err == nil {
			t.Errorf("%s: want error, got nil", name)
		}
	}
	if _, err := (Config{}).WithDefaults(0, 100); err == nil {
		t.Error("zero-core fleet accepted")
	}
}

func sigAt(w int, cfg Config, attainment, queueFrac float64) WindowSignal {
	return WindowSignal{
		Window:     w,
		StartCycle: int64(w) * cfg.IntervalCycles,
		EndCycle:   int64(w+1) * cfg.IntervalCycles,
		Attainment: attainment,
		QueueFrac:  queueFrac,
	}
}

// feed runs the controller over synthetic attainment/occupancy pairs and
// returns (windows, decisions) the way the dispatcher would record them.
func feed(c *Controller, cfg Config, points [][2]float64) ([]WindowSignal, []Decision) {
	var windows []WindowSignal
	var decisions []Decision
	for w, p := range points {
		sig := sigAt(w, cfg, p[0], p[1])
		sig.ActiveCores = c.Active()
		windows = append(windows, sig)
		decisions = append(decisions, c.Decide(sig)...)
	}
	return windows, decisions
}

func TestHysteresisDelaysScaleUp(t *testing.T) {
	cfg := validCfg(t)
	c := NewController(cfg, 4)
	// One bad window is not enough with HysteresisWindows=2 …
	if dec := c.Decide(sigAt(0, cfg, 0.5, 0.9)); len(dec) != 0 {
		t.Fatalf("scaled after a single bad window: %+v", dec)
	}
	// … a second consecutive one is.
	dec := c.Decide(sigAt(1, cfg, 0.5, 0.9))
	if len(dec) != 1 || dec[0].Kind != DecideScaleUp {
		t.Fatalf("want one scale-up, got %+v", dec)
	}
	if dec[0].Core != 2 || dec[0].ActiveAfter != 3 {
		t.Fatalf("want lowest spare (core 2) activated to 3 cores, got %+v", dec[0])
	}
	// A good window in between resets the streak.
	c2 := NewController(cfg, 4)
	c2.Decide(sigAt(0, cfg, 0.5, 0.9))
	c2.Decide(sigAt(1, cfg, 0.99, 0.9)) // resets lowStreak (occupancy too high for highStreak)
	if dec := c2.Decide(sigAt(2, cfg, 0.5, 0.9)); len(dec) != 0 {
		t.Fatalf("streak survived a good window: %+v", dec)
	}
}

func TestCooldownBlocksBackToBackScaling(t *testing.T) {
	cfg := validCfg(t) // cooldown = 2 windows
	c := NewController(cfg, 4)
	_, decisions := feed(c, cfg, [][2]float64{
		{0.5, 0.9}, {0.5, 0.9}, // scale-up at window 1
		{0.5, 0.9}, {0.5, 0.9}, // still starved: second up must wait for cooldown
		{0.5, 0.9},
	})
	if len(decisions) != 2 {
		t.Fatalf("want exactly 2 scale-ups, got %+v", decisions)
	}
	gap := decisions[1].AtCycle - decisions[0].AtCycle
	if gap < cfg.CooldownCycles {
		t.Fatalf("second scale only %d cycles after first (cooldown %d)", gap, cfg.CooldownCycles)
	}
	if c.Active() != 4 {
		t.Fatalf("active = %d, want 4", c.Active())
	}
	// Fully scaled: a further starved window has no spare to activate.
	if dec := c.Decide(sigAt(5, cfg, 0.1, 0.9)); len(dec) != 0 {
		t.Fatalf("scaled past maxCores: %+v", dec)
	}
}

func TestScaleDownIsLIFOAndFloored(t *testing.T) {
	cfg := validCfg(t)
	c := NewController(cfg, 4)
	windows, decisions := feed(c, cfg, [][2]float64{
		{0.5, 0.9}, {0.5, 0.9}, // up: core 2
		{0.5, 0.9}, {0.5, 0.9}, // up: core 3
		{1, 0.0}, {1, 0.0}, // down: must be core 3 (LIFO)
		{1, 0.0}, {1, 0.0}, // down: core 2
		{1, 0.0}, {1, 0.0}, {1, 0.0}, // floored at MinCores: no decision
	})
	kinds := []DecisionKind{DecideScaleUp, DecideScaleUp, DecideScaleDown, DecideScaleDown}
	if len(decisions) != len(kinds) {
		t.Fatalf("want %d decisions, got %+v", len(kinds), decisions)
	}
	for i, k := range kinds {
		if decisions[i].Kind != k {
			t.Fatalf("decision %d: want %s, got %+v", i, k, decisions[i])
		}
	}
	if decisions[2].Core != 3 || decisions[3].Core != 2 {
		t.Fatalf("drain order not LIFO: %+v", decisions[2:])
	}
	if c.Active() != cfg.MinCores {
		t.Fatalf("active %d, want floor %d", c.Active(), cfg.MinCores)
	}
	if problems := CheckDiscipline(cfg, 4, windows, decisions); len(problems) != 0 {
		t.Fatalf("clean trace flagged: %v", problems)
	}
}

func TestHighOccupancyBlocksScaleDown(t *testing.T) {
	cfg := validCfg(t)
	c := NewController(cfg, 4)
	c.Decide(sigAt(0, cfg, 0.5, 0.9))
	c.Decide(sigAt(1, cfg, 0.5, 0.9)) // scale-up
	// Perfect attainment but queues still busy: draining would thrash.
	_, decisions := feed(c, cfg, [][2]float64{{1, 0.8}, {1, 0.8}, {1, 0.8}, {1, 0.8}})
	for _, d := range decisions {
		if d.Kind == DecideScaleDown {
			t.Fatalf("drained a core at 0.8 occupancy: %+v", d)
		}
	}
}

func TestReclusterDecisionOnDrift(t *testing.T) {
	cfg := validCfg(t)
	c := NewController(cfg, 4)
	sig := sigAt(0, cfg, 1, 0)
	sig.Drift = cfg.DriftEpsilon * 3
	dec := c.Decide(sig)
	if len(dec) != 1 || dec[0].Kind != DecideRecluster || dec[0].Drift != sig.Drift {
		t.Fatalf("want one recluster decision carrying the drift, got %+v", dec)
	}
	// At-threshold drift does not trigger (strictly above).
	sig2 := sigAt(1, cfg, 1, 0)
	sig2.Drift = cfg.DriftEpsilon
	if dec := c.Decide(sig2); len(dec) != 0 {
		t.Fatalf("recluster at epsilon: %+v", dec)
	}
}

func TestScriptedModeForcesDecisions(t *testing.T) {
	cfg := validCfg(t)
	cfg.Script = []Decision{
		{Kind: DecideScaleUp, Window: 0, Core: 3}, // out of natural order: forced anyway
		{Kind: DecideScaleDown, Window: 2, Core: 3},
		{Kind: DecideScaleUp, Window: 2, Core: 9}, // not a spare: dropped
	}
	c := NewController(cfg, 4)
	d0 := c.Decide(sigAt(0, cfg, 1, 0)) // perfect window, yet the script scales up
	if len(d0) != 1 || d0[0].Kind != DecideScaleUp || d0[0].Core != 3 {
		t.Fatalf("window 0: %+v", d0)
	}
	if d0[0].AtCycle != cfg.IntervalCycles {
		t.Fatalf("scripted decision not re-stamped: %+v", d0[0])
	}
	if d1 := c.Decide(sigAt(1, cfg, 0, 1)); len(d1) != 0 {
		t.Fatalf("window 1 should be silent, got %+v", d1)
	}
	d2 := c.Decide(sigAt(2, cfg, 0, 1))
	if len(d2) != 1 || d2[0].Kind != DecideScaleDown || d2[0].Core != 3 {
		t.Fatalf("window 2: %+v", d2)
	}
	if c.Active() != cfg.MinCores {
		t.Fatalf("active %d after forced up+down, want %d", c.Active(), cfg.MinCores)
	}
}

func TestCheckDisciplineCatchesTamperedTraces(t *testing.T) {
	cfg := validCfg(t)
	c := NewController(cfg, 4)
	windows, decisions := feed(c, cfg, [][2]float64{
		{0.5, 0.9}, {0.5, 0.9}, {0.5, 0.9}, {0.5, 0.9}, {1, 0}, {1, 0}, {1, 0}, {1, 0},
	})
	if problems := CheckDiscipline(cfg, 4, windows, decisions); len(problems) != 0 {
		t.Fatalf("clean trace flagged: %v", problems)
	}
	mutants := map[string]func([]Decision) []Decision{
		"dropped-decision": func(ds []Decision) []Decision { return ds[:len(ds)-1] },
		"extra-decision": func(ds []Decision) []Decision {
			return append(ds, Decision{Kind: DecideScaleUp, Window: 7, AtCycle: windows[7].EndCycle, Core: 3, ActiveAfter: 4})
		},
		"wrong-core": func(ds []Decision) []Decision {
			out := append([]Decision(nil), ds...)
			out[0].Core = 3
			return out
		},
		"out-of-range": func(ds []Decision) []Decision {
			out := append([]Decision(nil), ds...)
			out[0].Core = 0 // draining/activating a home core is never legal
			return out
		},
	}
	for name, mutate := range mutants {
		if problems := CheckDiscipline(cfg, 4, windows, mutate(decisions)); len(problems) == 0 {
			t.Errorf("%s: tampered trace passed the discipline oracle", name)
		}
	}
}

// TestMutationIgnoredCooldownCaught runs the buggy controller that skips the
// refractory check and proves CheckDiscipline reports the violation by name.
func TestMutationIgnoredCooldownCaught(t *testing.T) {
	// Hysteresis 1 with the default 2-window cooldown: only the cooldown
	// spaces decisions out, so ignoring it is observable.
	cfg, err := Config{HysteresisWindows: 1}.WithDefaults(4, 1_600_000)
	if err != nil {
		t.Fatal(err)
	}
	mutant := NewController(cfg, 4)
	mutant.ignoreCooldown = true
	// Persistently starved fleet: the mutant scales up in back-to-back
	// windows, which the cooldown forbids.
	windows, decisions := feed(mutant, cfg, [][2]float64{
		{0.5, 0.9}, {0.5, 0.9}, {0.5, 0.9}, {0.5, 0.9},
	})
	if len(decisions) < 2 {
		t.Fatalf("mutant did not even misbehave: %+v", decisions)
	}
	problems := CheckDiscipline(cfg, 4, windows, decisions)
	if len(problems) == 0 {
		t.Fatal("ignored-cooldown mutant slipped past CheckDiscipline")
	}
	found := false
	for _, p := range problems {
		if strings.Contains(p, "cooldown violated") {
			found = true
		}
	}
	if !found {
		t.Fatalf("violation not named: %v", problems)
	}
}

func TestCheckDisciplineSkipsScriptedRuns(t *testing.T) {
	cfg := validCfg(t)
	cfg.Script = []Decision{{Kind: DecideScaleUp, Window: 0, Core: 2}}
	c := NewController(cfg, 4)
	windows := []WindowSignal{sigAt(0, cfg, 1, 0)}
	decisions := c.Decide(windows[0])
	if problems := CheckDiscipline(cfg, 4, windows, decisions); problems != nil {
		t.Fatalf("scripted run flagged: %v", problems)
	}
}

func TestCooldownIntervalsResolve(t *testing.T) {
	cfg, err := Config{IntervalCycles: 1000, CooldownIntervals: 3}.WithDefaults(4, 16_000)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.CooldownCycles != 3000 {
		t.Fatalf("CooldownCycles = %d, want 3000", cfg.CooldownCycles)
	}
	if cfg.CooldownIntervals != 0 {
		t.Fatalf("CooldownIntervals not cleared after resolution: %d", cfg.CooldownIntervals)
	}
	// Resolution must be idempotent: re-validating the resolved config works.
	if again, err := cfg.WithDefaults(4, 16_000); err != nil || again.CooldownCycles != cfg.CooldownCycles || again.CooldownIntervals != 0 {
		t.Fatalf("resolved config not idempotent: %+v err=%v", again, err)
	}
	if _, err := (Config{CooldownIntervals: -1}).WithDefaults(4, 16_000); err == nil {
		t.Fatal("negative CooldownIntervals accepted")
	}
	if _, err := (Config{CooldownCycles: 10, CooldownIntervals: 2}).WithDefaults(4, 16_000); err == nil {
		t.Fatal("CooldownCycles+CooldownIntervals together accepted")
	}
}
