// Package fleet composes the per-core V10 simulator into a multi-NPU serving
// system: a front-end dispatcher routes open-loop request streams from M
// tenants onto N simulated cores, placement is driven by the §3.4 collocation
// advisor's compatibility predictions (with least-loaded and random baselines),
// and admission control bounds every core's queue, shedding or spilling the
// overflow. Each core then replays its admitted arrival schedule through the
// cycle-accurate operator scheduler (sched.Run) or the PMT baseline, and the
// per-core results aggregate into per-tenant SLO statistics.
//
// The dispatcher itself is a discrete-event simulation over *estimated*
// service times — like a production front end it routes on cheap load
// estimates, while ground truth comes from the per-core NPU simulations.
package fleet

import (
	"fmt"
	"math"
	"sort"

	"v10/internal/collocate"
	"v10/internal/ctlplane"
	"v10/internal/faults"
	"v10/internal/mathx"
	"v10/internal/npu"
	"v10/internal/obs"
	"v10/internal/sched"
	"v10/internal/trace"
	"v10/internal/vnpu"
)

// Policy selects how the dispatcher places tenants on cores.
type Policy string

const (
	// PolicyAdvisor groups compatible tenants using the trained collocation
	// model (Options.Model): each tenant lands on the core whose residents it
	// is predicted to share best with, falling back to least-loaded when no
	// core clears the benefit threshold.
	PolicyAdvisor Policy = "advisor"
	// PolicyLeastLoaded balances estimated service demand across cores
	// (longest-processing-time-first greedy), ignoring compatibility.
	PolicyLeastLoaded Policy = "least-loaded"
	// PolicyRandom places tenants uniformly at random (seeded), the paper's
	// "blind collocation" strawman.
	PolicyRandom Policy = "random"
)

// ParsePolicy maps a CLI spelling to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case PolicyAdvisor, PolicyLeastLoaded, PolicyRandom:
		return Policy(s), nil
	}
	return "", fmt.Errorf("fleet: unknown placement policy %q (want advisor, least-loaded, or random)", s)
}

// Admission selects the dispatcher's front-door admission discipline.
type Admission string

const (
	// AdmitQueueBound is the classic static bound: admit while the core's
	// dispatcher queue holds fewer than QueueLimit requests (default).
	AdmitQueueBound Admission = "queue-bound"
	// AdmitPredictive is PREMA-style predictive admission: admit while the
	// request's predicted slowdown — (estimated wait + estimated service) over
	// estimated service — stays at or below SlowdownLimit. The queue bounds
	// itself: a long backlog predicts a high slowdown and rejects the arrival.
	AdmitPredictive Admission = "predictive"
)

// ParseAdmission maps a CLI spelling to an Admission discipline.
func ParseAdmission(s string) (Admission, error) {
	switch Admission(s) {
	case AdmitQueueBound, AdmitPredictive:
		return Admission(s), nil
	}
	return "", fmt.Errorf("fleet: unknown admission discipline %q (want queue-bound or predictive)", s)
}

// Options configure a fleet run. The zero value serves two cores of V10-Full
// under least-loaded placement.
type Options struct {
	Config npu.CoreConfig // per-core configuration (zero → npu.DefaultConfig)

	// Cores is the number of independent NPU cores (default 2).
	Cores int

	// Scheme is the per-core scheduler: "V10-Full" (default), "V10-Fair",
	// "V10-Base", or "PMT". PMT cores serve their admitted request counts
	// closed-loop (PREMA has no operator-granularity arrival hook), so PMT
	// latencies exclude dispatcher queueing delay.
	Scheme string

	// Policy picks tenant placement (default least-loaded).
	Policy Policy

	// Model is the trained collocation predictor PolicyAdvisor requires; it
	// also gates the spill path's compatibility check. Other policies ignore
	// it.
	Model *collocate.Model

	// ProfileRequests bounds the requests sampled per tenant when extracting
	// features and estimating service times (default 3).
	ProfileRequests int

	// RateHz is each tenant's open-loop Poisson arrival rate (default 60,
	// which puts a mixed-model fleet near saturation at two tenants per
	// core). Mutually exclusive with Arrivals.
	RateHz float64

	// Arrivals, when non-nil, replaces the Poisson draw entirely:
	// Arrivals[t] lists tenant t's absolute arrival cycles (nondecreasing,
	// ≥ 0), one schedule per tenant — the workload engine's interface
	// (workload.Engine.Schedules). Mutually exclusive with RateHz; the
	// schedules should stay within [0, DurationCycles) (the workload engine
	// clips to its horizon).
	Arrivals [][]int64

	// DurationCycles is the arrival window: requests arrive in
	// [0, DurationCycles); cores then drain their admitted queues
	// (default 50e6 cycles ≈ 71 ms at 700 MHz).
	DurationCycles int64

	// QueueLimit bounds each core's dispatcher queue, counting the request
	// in service (default 8). An arrival beyond the bound spills or sheds.
	QueueLimit int

	// NoSpill disables cross-core spill: over-bound arrivals shed
	// immediately instead of probing other compatible cores.
	NoSpill bool

	// SLOFactor sets each tenant's latency SLO as a multiple of its
	// estimated single-tenant serial service time (default 10).
	SLOFactor float64

	// MaxCycles caps each core's simulated cycles (default: the scheduler's
	// 200e9 runaway guard). Capped cores keep their partial measurements.
	MaxCycles int64

	// Seed drives arrival draws, random placement, and per-core scheduler
	// seeds. Same seed → bit-identical Result.
	Seed uint64

	// Parallel bounds the worker goroutines running per-core simulations
	// (0 = GOMAXPROCS, 1 = serial). Results are bit-identical at any width.
	Parallel int

	// Tracer, when non-nil, receives every core's timeline replayed in core
	// order after the run; a sink with BeginSection (ChromeWriter) gets one
	// "core N" section per core so a whole fleet run lands in one Perfetto
	// file.
	Tracer obs.Tracer

	// Counters, when non-nil, receives every core's counter snapshots, one
	// "core N" section per core.
	Counters *obs.CounterLog

	// CoreTracer, when non-nil, supplies an additional live tracer for each
	// core's simulation, called with the core index and its roster (global
	// tenant indices, spill targets included). The simcheck property tests
	// ride fleet runs through this hook.
	CoreTracer func(core int, tenants []int) obs.Tracer

	// Faults is the injected fault schedule (nil or empty: none). Fail-stop
	// faults kill cores mid-run and trigger checkpoint-driven migration of
	// the victims' unserved requests; transient faults perturb the per-core
	// simulations. Requires a V10 scheme — the PMT baseline has no
	// checkpoint/halt support.
	Faults *faults.Schedule

	// HeartbeatCycles is the core-liveness heartbeat period the dispatcher
	// watches (default 1e6 cycles ≈ 1.4 ms at 700 MHz).
	HeartbeatCycles int64

	// MissedBeats is how many consecutive missed heartbeats declare a core
	// dead (default 3). Detection therefore lags the failure by up to
	// HeartbeatCycles*(MissedBeats+1) cycles.
	MissedBeats int

	// MigrationRetries is each victim request's total migration-attempt
	// budget; a victim still unplaced after this many attempts is shed
	// (default 4).
	MigrationRetries int

	// MigrationBackoffCycles is the base of the exponential backoff between
	// failed migration attempts (default 250e3 cycles; attempt k retries
	// after base<<(k-1)).
	MigrationBackoffCycles int64

	// NoMigration sheds every victim of a core failure immediately instead
	// of migrating — the graceful-degradation baseline the faults experiment
	// compares against.
	NoMigration bool

	// VNPUTemplates, when non-empty, spatially partitions every core into
	// the same set of vNPU slices: placement chooses a (core, slice) pair
	// per tenant, V10's temporal interleaving runs independently within each
	// slice, and every CoreResult carries the slices' enforcement statistics
	// (throttle stalls, cap hits, charged HBM bytes). Requires a V10 scheme —
	// the PMT baseline has no slice support.
	VNPUTemplates []vnpu.Template

	// SliceWindowCycles overrides the slices' HBM token-bucket refill window
	// (0 = vnpu.DefaultWindowCycles). Ignored without VNPUTemplates.
	SliceWindowCycles int64

	// PinnedPlacement, when non-nil, bypasses the placement policy: entry c
	// lists the tenants homed on core c (one entry per core, every tenant
	// exactly once). The isolation oracles pin victim/aggressor layouts
	// through it.
	PinnedPlacement [][]int

	// PinnedSlices, when non-nil, fixes every tenant's slice index on
	// whatever core it lands on (len(tenants) entries, each a valid
	// VNPUTemplates index). Without it, tenants pack onto the least-populated
	// slice with vector-memory room. Requires VNPUTemplates.
	PinnedSlices []int

	// Elastic, when non-nil, runs the fleet under the autoscaling control
	// plane: tenants are homed on the first Elastic.MinCores cores, the
	// remaining cores start inactive, and the control loop activates or
	// drains them against windowed SLO-attainment signals (see ctlplane).
	// Requires a V10 scheme and is mutually exclusive with fault injection,
	// vNPU slicing, and pinned placement.
	Elastic *ctlplane.Config

	// Admission selects the front-door admission discipline (default
	// queue-bound, which is bit-identical to the pre-elastic dispatcher).
	Admission Admission

	// SlowdownLimit is predictive admission's slowdown ceiling: an arrival is
	// admitted while (wait + est)/est stays at or below it (default
	// SLOFactor; must be >= 1). Ignored under queue-bound admission.
	SlowdownLimit float64

	// Recluster enables online advisor re-clustering: at every control tick
	// the tenants observed during the window are folded into the collocation
	// model's K-Means stage (sequential centroid updates — no full retrain),
	// so compatibility gates track the drifting mix. Requires Model and
	// Elastic. The model is cloned internally; the caller's model is never
	// mutated, keeping reruns and counterfactual replays bit-identical.
	Recluster bool

	// EstimateScale multiplies every tenant's estimated service time (0 = 1,
	// the identity). The estimate feeds queue booking, predictive admission,
	// and the SLO denominator, so this knob is both a sensitivity study and
	// the injection point for the estimate-consistency mutation oracle.
	EstimateScale float64

	// PreemptMargin forwards the per-core scheduler's preemption benefit
	// margin: a waiting workload preempts only when its accumulated-rate
	// product exceeds the running one's by this factor (0 = the scheduler's
	// default 1.25). Tunable knob; must be >= 1 when set.
	PreemptMargin float64

	// PriorityExponent biases tenant scheduling priorities by estimated
	// service time: tenant t's authored priority is multiplied by
	// (ref/est_t)^PriorityExponent, where ref is the geometric mean of the
	// fleet's service estimates — positive exponents favor short tenants
	// (shortest-job-first pressure on the V10 priority scheduler), negative
	// ones favor long tenants. 0 (the default) leaves priorities as authored.
	PriorityExponent float64

	// CollocationThreshold overrides the trained model's predicted-beneficial
	// cutoff for this run (0 = keep the trained threshold). Placement grouping
	// and the spill/migration compatibility gates all read it. Requires Model.
	CollocationThreshold float64

	// FeedbackRounds closes the loop between estimated and realized latency:
	// after each round the dispatcher's per-tenant booking estimates are
	// rescaled by the ratio of realized to predicted mean latency, and the
	// whole run repeats with the calibrated estimates (FeedbackRounds extra
	// passes). The SLO definition stays on the uncalibrated estimates — only
	// queue booking, predictive admission, and the control plane's attainment
	// signal see the calibration, so goodput is judged against a fixed bar
	// while the control signals converge toward ground truth. The Result
	// carries one CalibrationRound per pass; 0 (the default) is the classic
	// single estimate-driven pass, bit-identical to the pre-feedback
	// dispatcher.
	FeedbackRounds int

	// calib holds the per-tenant booking-estimate multipliers of the current
	// feedback round (nil = all 1). Internal: Run's feedback loop sets it.
	calib []float64

	// StatsWindowCycles, when positive, additionally buckets every tenant's
	// completions into windows of this many cycles, each annotated with the
	// core count actually active during the window — goodput attribution that
	// stays honest across scale events. Defaults to Elastic.IntervalCycles
	// under autoscaling; 0 disables the windows on static fleets.
	StatsWindowCycles int64

	// compat overrides the advisor compatibility oracle used by placement
	// and the spill/migration gates (tests inject stubs); withDefaults wires
	// it to Model.GroupFit when a model is present.
	compat func(feats []collocate.Features, group []int, cand int) float64

	// skipModelUpdates is a test-only mutation hook: the control loop skips
	// the online centroid updates, leaving the collocation model stale as the
	// mix churns. The recluster-consistency oracle must catch it.
	skipModelUpdates bool
}

func (o Options) withDefaults() (Options, error) {
	if o.Config.SADim == 0 {
		o.Config = npu.DefaultConfig()
	}
	if err := o.Config.Validate(); err != nil {
		return o, err
	}
	if o.Cores == 0 {
		o.Cores = 2
	}
	if o.Cores < 1 {
		return o, fmt.Errorf("fleet: invalid core count %d", o.Cores)
	}
	if o.Scheme == "" {
		o.Scheme = "V10-Full"
	}
	switch o.Scheme {
	case "V10-Full", "V10-Fair", "V10-Base", "PMT":
	default:
		return o, fmt.Errorf("fleet: unknown scheme %q", o.Scheme)
	}
	if o.Policy == "" {
		o.Policy = PolicyLeastLoaded
	}
	if _, err := ParsePolicy(string(o.Policy)); err != nil {
		return o, err
	}
	if o.CollocationThreshold < 0 || math.IsInf(o.CollocationThreshold, 0) || math.IsNaN(o.CollocationThreshold) {
		return o, fmt.Errorf("fleet: invalid CollocationThreshold %v", o.CollocationThreshold)
	}
	if o.CollocationThreshold > 0 {
		if o.Model == nil {
			return o, fmt.Errorf("fleet: CollocationThreshold requires a trained collocation model")
		}
		// Before the Recluster clone and the compat binding below, so both see
		// the overridden cutoff.
		o.Model = o.Model.WithThreshold(o.CollocationThreshold)
	}
	if o.Recluster {
		if o.Model == nil {
			return o, fmt.Errorf("fleet: Recluster requires a trained collocation model")
		}
		// Clone before the compat binding below so the online updates land on
		// a private copy and the gates read the updated centroids.
		o.Model = o.Model.CloneForOnline()
	}
	if o.compat == nil && o.Model != nil {
		o.compat = o.Model.GroupFit
	}
	if o.Policy == PolicyAdvisor && o.compat == nil {
		return o, fmt.Errorf("fleet: PolicyAdvisor requires a trained collocation model")
	}
	if o.ProfileRequests <= 0 {
		o.ProfileRequests = 3
	}
	if o.Arrivals != nil {
		if o.RateHz != 0 {
			return o, &sched.ArrivalError{Workload: -1, Index: -1,
				Reason: "fleet Arrivals and RateHz are mutually exclusive"}
		}
		for t, schedule := range o.Arrivals {
			prev := int64(0)
			for k, at := range schedule {
				if at < prev {
					reason := "decreases"
					if at < 0 {
						reason = "is negative"
					}
					return o, &sched.ArrivalError{Workload: t, Index: k, Value: at, Reason: reason}
				}
				prev = at
			}
		}
	}
	if o.RateHz == 0 && o.Arrivals == nil {
		o.RateHz = 60
	}
	if o.RateHz < 0 || math.IsInf(o.RateHz, 0) || math.IsNaN(o.RateHz) {
		return o, fmt.Errorf("fleet: invalid arrival rate %v", o.RateHz)
	}
	if o.DurationCycles == 0 {
		o.DurationCycles = 50_000_000
	}
	if o.DurationCycles < 0 {
		return o, fmt.Errorf("fleet: negative DurationCycles %d", o.DurationCycles)
	}
	if o.QueueLimit == 0 {
		o.QueueLimit = 8
	}
	if o.QueueLimit < 1 {
		return o, fmt.Errorf("fleet: invalid QueueLimit %d", o.QueueLimit)
	}
	if o.SLOFactor == 0 {
		o.SLOFactor = 10
	}
	if o.SLOFactor < 0 {
		return o, fmt.Errorf("fleet: negative SLOFactor %v", o.SLOFactor)
	}
	if o.HeartbeatCycles == 0 {
		o.HeartbeatCycles = 1_000_000
	}
	if o.HeartbeatCycles < 0 {
		return o, fmt.Errorf("fleet: negative HeartbeatCycles %d", o.HeartbeatCycles)
	}
	if o.MissedBeats == 0 {
		o.MissedBeats = 3
	}
	if o.MissedBeats < 0 {
		return o, fmt.Errorf("fleet: negative MissedBeats %d", o.MissedBeats)
	}
	if o.MigrationRetries == 0 {
		o.MigrationRetries = 4
	}
	if o.MigrationRetries < 0 {
		return o, fmt.Errorf("fleet: negative MigrationRetries %d", o.MigrationRetries)
	}
	if o.MigrationBackoffCycles == 0 {
		o.MigrationBackoffCycles = 250_000
	}
	if o.MigrationBackoffCycles < 0 {
		return o, fmt.Errorf("fleet: negative MigrationBackoffCycles %d", o.MigrationBackoffCycles)
	}
	if err := o.Faults.Validate(o.Cores); err != nil {
		return o, err
	}
	if !o.Faults.Empty() && o.Scheme == "PMT" {
		return o, fmt.Errorf("fleet: fault injection requires a V10 scheme; PMT has no checkpoint/halt support")
	}
	if len(o.VNPUTemplates) > 0 {
		if o.Scheme == "PMT" {
			return o, fmt.Errorf("fleet: vNPU slicing requires a V10 scheme; PMT has no slice support")
		}
		if err := vnpu.Validate(o.VNPUTemplates); err != nil {
			return o, err
		}
		if o.SliceWindowCycles < 0 {
			return o, fmt.Errorf("fleet: negative SliceWindowCycles %d", o.SliceWindowCycles)
		}
	} else if o.PinnedSlices != nil {
		return o, fmt.Errorf("fleet: PinnedSlices requires VNPUTemplates")
	}
	if o.EstimateScale == 0 {
		o.EstimateScale = 1
	}
	if o.EstimateScale < 0 || math.IsInf(o.EstimateScale, 0) || math.IsNaN(o.EstimateScale) {
		return o, fmt.Errorf("fleet: invalid EstimateScale %v", o.EstimateScale)
	}
	if o.PreemptMargin < 0 || math.IsInf(o.PreemptMargin, 0) || math.IsNaN(o.PreemptMargin) ||
		(o.PreemptMargin > 0 && o.PreemptMargin < 1) {
		return o, fmt.Errorf("fleet: invalid PreemptMargin %v (want >= 1, or 0 for the default)", o.PreemptMargin)
	}
	if math.IsInf(o.PriorityExponent, 0) || math.IsNaN(o.PriorityExponent) {
		return o, fmt.Errorf("fleet: invalid PriorityExponent %v", o.PriorityExponent)
	}
	if o.FeedbackRounds < 0 {
		return o, fmt.Errorf("fleet: negative FeedbackRounds %d", o.FeedbackRounds)
	}
	if o.Admission == "" {
		o.Admission = AdmitQueueBound
	}
	if _, err := ParseAdmission(string(o.Admission)); err != nil {
		return o, err
	}
	if o.SlowdownLimit == 0 {
		o.SlowdownLimit = o.SLOFactor
	}
	if o.SlowdownLimit < 1 {
		return o, fmt.Errorf("fleet: SlowdownLimit %v below 1 would reject every arrival", o.SlowdownLimit)
	}
	if o.Elastic != nil {
		if o.Scheme == "PMT" {
			return o, fmt.Errorf("fleet: elastic autoscaling requires a V10 scheme; PMT has no drain/checkpoint support")
		}
		if !o.Faults.Empty() {
			return o, fmt.Errorf("fleet: elastic autoscaling and fault injection are mutually exclusive")
		}
		if len(o.VNPUTemplates) > 0 {
			return o, fmt.Errorf("fleet: elastic autoscaling and vNPU slicing are mutually exclusive")
		}
		if o.PinnedPlacement != nil {
			return o, fmt.Errorf("fleet: elastic autoscaling and PinnedPlacement are mutually exclusive")
		}
		cfg, err := o.Elastic.WithDefaults(o.Cores, o.DurationCycles)
		if err != nil {
			return o, err
		}
		o.Elastic = &cfg
		if o.StatsWindowCycles == 0 {
			o.StatsWindowCycles = cfg.IntervalCycles
		}
	}
	if o.Recluster && o.Elastic == nil {
		return o, fmt.Errorf("fleet: Recluster requires Elastic (the control loop drives the updates)")
	}
	if o.StatsWindowCycles < 0 {
		return o, fmt.Errorf("fleet: negative StatsWindowCycles %d", o.StatsWindowCycles)
	}
	return o, nil
}

// pinnedHomes validates a PinnedPlacement against the tenant and core counts
// and returns it as the placement.
func pinnedHomes(pinned [][]int, tenants, cores int) ([][]int, error) {
	if len(pinned) != cores {
		return nil, fmt.Errorf("fleet: PinnedPlacement has %d cores, options say %d", len(pinned), cores)
	}
	seen := make([]bool, tenants)
	homes := make([][]int, cores)
	for c, group := range pinned {
		for _, t := range group {
			if t < 0 || t >= tenants {
				return nil, fmt.Errorf("fleet: PinnedPlacement core %d names tenant %d of %d", c, t, tenants)
			}
			if seen[t] {
				return nil, fmt.Errorf("fleet: PinnedPlacement places tenant %d twice", t)
			}
			seen[t] = true
			homes[c] = append(homes[c], t)
		}
	}
	for t, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("fleet: PinnedPlacement omits tenant %d", t)
		}
	}
	return homes, nil
}

// tenantProfile is the dispatcher's cheap per-tenant characterization: the
// collocation feature vector plus the estimated single-tenant serial service
// time the virtual queues and SLOs are denominated in.
type tenantProfile struct {
	feat      collocate.Features
	estCycles float64
}

// EstimateServeCycles is the dispatcher's service-time estimator for one
// tenant: the mean serial stall+compute total of its first profileRequests
// request graphs, tiled against a half-core vector-memory partition (the
// typical residency the placement aims for is two tenants per core). The
// simcheck estimate-consistency oracle recomputes it independently to pin the
// dispatcher's queue booking and SLO denominators (modulo EstimateScale).
func EstimateServeCycles(w *trace.Workload, cfg npu.CoreConfig, profileRequests int) float64 {
	if profileRequests < 1 {
		profileRequests = 1
	}
	part := cfg.VMemBytes / 2
	var total float64
	var scratch *trace.Graph
	for rq := 0; rq < profileRequests; rq++ {
		g, owned := w.RequestInto(rq, scratch)
		if owned {
			scratch = g
		}
		// Both generated and tiled graphs are in execution (ID) order, so
		// summing Ops directly visits operators exactly as Linearize would.
		for _, op := range trace.TileForVMem(g, part, 0.5).Ops {
			total += float64(op.Stall + op.Compute)
		}
	}
	return total / float64(profileRequests)
}

// profileTenants extracts features and service-time estimates from the first
// ProfileRequests request graphs of every tenant (pure trace analysis — no
// simulation).
func profileTenants(tenants []*trace.Workload, o Options) []tenantProfile {
	profs := make([]tenantProfile, len(tenants))
	for i, w := range tenants {
		profs[i] = tenantProfile{
			estCycles: o.EstimateScale * EstimateServeCycles(w, o.Config, o.ProfileRequests),
		}
		if o.Model != nil {
			profs[i].feat = collocate.ExtractFeatures(w, o.Config, o.ProfileRequests)
		}
	}
	return profs
}

// features projects the profiles' feature vectors (advisor policies only).
func features(profs []tenantProfile) []collocate.Features {
	feats := make([]collocate.Features, len(profs))
	for i, p := range profs {
		feats[i] = p.feat
	}
	return feats
}

// place assigns every tenant a home core under the policy. The returned
// placement has exactly o.Cores entries; cores may be empty when tenants are
// scarce.
func place(profs []tenantProfile, o Options, rng *mathx.RNG) [][]int {
	homes := make([][]int, o.Cores)
	switch o.Policy {
	case PolicyRandom:
		for t := range profs {
			c := rng.Intn(o.Cores)
			homes[c] = append(homes[c], t)
		}
		return homes
	case PolicyLeastLoaded:
		for _, t := range byDescendingLoad(profs) {
			c := leastLoaded(homes, profs, nil)
			homes[c] = append(homes[c], t)
		}
		return homes
	case PolicyAdvisor:
		// Greedy compatibility grouping under a balance cap: each tenant
		// (heaviest first) joins the core whose residents it is predicted to
		// share best with — highest minimum pairwise gain above the model's
		// threshold — falling back to the least-loaded core with room when no
		// resident set clears it (including the empty cores).
		feats := features(profs)
		capacity := (len(profs) + o.Cores - 1) / o.Cores
		for _, t := range byDescendingLoad(profs) {
			best, bestFit := -1, 0.0
			for c := range homes {
				if len(homes[c]) >= capacity {
					continue
				}
				if fit := o.compat(feats, homes[c], t); fit > bestFit {
					best, bestFit = c, fit
				}
			}
			if best < 0 {
				open := func(c int) bool { return len(homes[c]) < capacity }
				best = leastLoaded(homes, profs, open)
			}
			homes[best] = append(homes[best], t)
		}
		return homes
	}
	panic("fleet: unreachable policy " + string(o.Policy))
}

// byDescendingLoad orders tenant indices by estimated service time, heaviest
// first (ties by index), the classic LPT greedy order.
func byDescendingLoad(profs []tenantProfile) []int {
	order := make([]int, len(profs))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return profs[order[a]].estCycles > profs[order[b]].estCycles
	})
	return order
}

// applyPriorities rewrites tenant scheduling priorities under the
// PriorityExponent knob: each tenant's authored priority is multiplied by
// (ref/est)^w against the geometric-mean service estimate ref, clamped to
// [1/64, 64] so the scheduler's positive-finite priority contract holds for
// any exponent in the search space. Tenants are shallow-copied — callers'
// workloads are never mutated. With w == 0 the input slice returns unchanged.
func applyPriorities(tenants []*trace.Workload, profs []tenantProfile, w float64) []*trace.Workload {
	if w == 0 {
		return tenants
	}
	var logSum float64
	n := 0
	for _, p := range profs {
		if p.estCycles > 0 {
			logSum += math.Log(p.estCycles)
			n++
		}
	}
	if n == 0 {
		return tenants
	}
	ref := math.Exp(logSum / float64(n))
	out := make([]*trace.Workload, len(tenants))
	for i, t := range tenants {
		bias := 1.0
		if profs[i].estCycles > 0 {
			bias = math.Pow(ref/profs[i].estCycles, w)
		}
		if bias < 1.0/64 {
			bias = 1.0 / 64
		} else if bias > 64 {
			bias = 64
		}
		base := t.Priority
		if base <= 0 {
			base = 1
		}
		out[i] = t.WithPriority(base * bias)
	}
	return out
}

// leastLoaded returns the eligible core with the smallest summed service
// estimate (ties by index). eligible == nil admits every core; when the
// filter rejects all cores it is ignored.
func leastLoaded(homes [][]int, profs []tenantProfile, eligible func(c int) bool) int {
	best, bestLoad := -1, math.Inf(1)
	for pass := 0; pass < 2 && best < 0; pass++ {
		for c := range homes {
			if pass == 0 && eligible != nil && !eligible(c) {
				continue
			}
			load := 0.0
			for _, t := range homes[c] {
				load += profs[t].estCycles
			}
			if load < bestLoad {
				best, bestLoad = c, load
			}
		}
	}
	return best
}
