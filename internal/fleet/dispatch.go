package fleet

import (
	"math"
	"sort"

	"v10/internal/mathx"
)

// arrival is one tenant request hitting the front end.
type arrival struct {
	at     int64
	tenant int
}

// genArrivals draws every tenant's open-loop Poisson stream over
// [0, DurationCycles) and merges them into one time-ordered sequence (ties by
// tenant index). Seeding is per tenant, so a tenant's stream is independent of
// the fleet size and of the other tenants.
func genArrivals(tenants int, o Options) []arrival {
	meanGap := o.Config.FrequencyHz / o.RateHz
	var all []arrival
	for t := 0; t < tenants; t++ {
		rng := mathx.NewRNG(o.Seed + 0xf1ee7 + uint64(t)*7919)
		at := int64(0)
		for {
			u := rng.Float64()
			for u == 0 {
				u = rng.Float64()
			}
			gap := int64(-meanGap * math.Log(u))
			if gap < 1 {
				gap = 1
			}
			at += gap
			if at >= o.DurationCycles {
				break
			}
			all = append(all, arrival{at: at, tenant: t})
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		return all[i].tenant < all[j].tenant
	})
	return all
}

// dispatchOutcome is the admission-control phase's verdict over the whole
// arrival sequence.
type dispatchOutcome struct {
	// admitted[c][t] lists the arrival cycles of tenant t's requests admitted
	// to core c (global tenant index; nil when none).
	admitted [][][]int64
	// spilled[t] counts tenant t's requests admitted on a non-home core.
	spilled []int
	// shed[t] counts tenant t's rejected requests.
	shed []int
	// offered[t] counts tenant t's total arrivals.
	offered []int
}

// coreQueue is one core's virtual dispatcher state: estimated completion
// times of everything admitted and not yet (estimated) finished. The depth of
// this queue — request in service included — is what QueueLimit bounds.
type coreQueue struct {
	pending []int64 // estimated completion cycles, ascending
	busyTil int64   // estimated cycle the core drains its current backlog
}

// drain drops queue entries whose estimated completion is ≤ now.
func (q *coreQueue) drain(now int64) {
	i := 0
	for i < len(q.pending) && q.pending[i] <= now {
		i++
	}
	if i > 0 {
		q.pending = q.pending[i:]
	}
}

// admit books one request with the given service estimate.
func (q *coreQueue) admit(now int64, estCycles float64) {
	start := q.busyTil
	if now > start {
		start = now
	}
	done := start + int64(estCycles)
	if done <= now {
		done = now + 1
	}
	q.busyTil = done
	q.pending = append(q.pending, done)
}

// dispatch runs admission control over the merged arrival sequence. homes is
// the placement; residents[c] (== homes[c]) gates the advisor policy's spill
// compatibility check.
func dispatch(arrivals []arrival, homes [][]int, profs []tenantProfile, o Options) *dispatchOutcome {
	nT := len(profs)
	out := &dispatchOutcome{
		admitted: make([][][]int64, o.Cores),
		spilled:  make([]int, nT),
		shed:     make([]int, nT),
		offered:  make([]int, nT),
	}
	for c := range out.admitted {
		out.admitted[c] = make([][]int64, nT)
	}
	home := make([]int, nT)
	for c, group := range homes {
		for _, t := range group {
			home[t] = c
		}
	}
	feats := features(profs)
	queues := make([]coreQueue, o.Cores)

	admit := func(c int, a arrival) {
		queues[c].admit(a.at, profs[a.tenant].estCycles)
		out.admitted[c][a.tenant] = append(out.admitted[c][a.tenant], a.at)
		if c != home[a.tenant] {
			out.spilled[a.tenant]++
		}
	}

	for _, a := range arrivals {
		out.offered[a.tenant]++
		for c := range queues {
			queues[c].drain(a.at)
		}
		h := home[a.tenant]
		if len(queues[h].pending) < o.QueueLimit {
			admit(h, a)
			continue
		}
		if o.NoSpill {
			out.shed[a.tenant]++
			continue
		}
		// Spill: probe the other cores for room, preferring the shallowest
		// queue (ties by smaller estimated backlog, then index). The advisor
		// policy only spills onto cores whose residents the tenant is
		// predicted compatible with; empty cores are trivially compatible.
		best := -1
		for c := range queues {
			if c == h || len(queues[c].pending) >= o.QueueLimit {
				continue
			}
			if o.Policy == PolicyAdvisor && len(homes[c]) > 0 &&
				o.Model.GroupFit(feats, homes[c], a.tenant) <= 0 {
				continue
			}
			if best < 0 ||
				len(queues[c].pending) < len(queues[best].pending) ||
				(len(queues[c].pending) == len(queues[best].pending) &&
					queues[c].busyTil < queues[best].busyTil) {
				best = c
			}
		}
		if best < 0 {
			out.shed[a.tenant]++
			continue
		}
		admit(best, a)
	}
	return out
}
