package fleet

import (
	"container/heap"
	"math"
	"sort"

	"v10/internal/collocate"
	"v10/internal/ctlplane"
	"v10/internal/mathx"
	"v10/internal/obs"
	"v10/internal/trace"
)

// arrival is one tenant request hitting the front end.
type arrival struct {
	at     int64
	tenant int
}

// genArrivals produces the fleet's merged, time-ordered arrival sequence
// (ties by tenant index): either the explicit per-tenant schedules from
// o.Arrivals (the workload engine's interface) or every tenant's open-loop
// Poisson stream over [0, DurationCycles). Poisson seeding is per tenant, so
// a tenant's stream is independent of the fleet size and of the other
// tenants. Arrival times accumulate in float64 and are floored only on
// emission: truncating each gap to int64 with a gap<1 clamp would inflate
// the realized rate above the nominal RateHz (badly so at high rates).
func genArrivals(tenants int, o Options) []arrival {
	var all []arrival
	if o.Arrivals != nil {
		for t, schedule := range o.Arrivals {
			for _, at := range schedule {
				all = append(all, arrival{at: at, tenant: t})
			}
		}
	} else {
		meanGap := o.Config.FrequencyHz / o.RateHz
		for t := 0; t < tenants; t++ {
			rng := mathx.NewRNG(o.Seed + 0xf1ee7 + uint64(t)*7919)
			at := 0.0
			for {
				u := rng.Float64()
				for u == 0 {
					u = rng.Float64()
				}
				at -= meanGap * math.Log(u)
				if at >= float64(o.DurationCycles) {
					break
				}
				all = append(all, arrival{at: int64(at), tenant: t})
			}
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		return all[i].tenant < all[j].tenant
	})
	return all
}

// dispatchOutcome is the admission-control phase's verdict over the whole
// arrival sequence, extended with the failure-recovery bookkeeping.
type dispatchOutcome struct {
	// admitted[c][t] lists the arrival cycles of tenant t's requests admitted
	// to core c (global tenant index; nil when none). For a failed core the
	// schedule is truncated at detection time to the requests it actually
	// served — the unserved suffix became migrations.
	admitted [][][]int64
	// debts[c][t] aligns with admitted[c][t]: the latency debt in cycles each
	// request carried into this core (0 for front-door admissions; landing
	// cycle minus original arrival for migrated requests).
	debts [][][]int64
	// spilled[t] counts tenant t's requests admitted on a non-home core.
	spilled []int
	// shed[t] counts tenant t's requests rejected at the front door.
	shed []int
	// offered[t] counts tenant t's total arrivals.
	offered []int
	// estLatSum[t] / estLatCnt[t] accumulate the dispatcher's predicted
	// latency (booked completion − arrival, plus carried debt) over tenant
	// t's admissions — the estimate side of the realized-latency feedback.
	estLatSum []float64
	estLatCnt []int
	// migrated[t] counts migration landings (a request re-victimized by a
	// cascading failure counts once per landing).
	migrated []int
	// migShed[t] counts victims dropped after exhausting the retry budget
	// (or immediately under NoMigration).
	migShed []int
	// migCycles[t] sums detection-to-landing cycles over tenant t's
	// migrations.
	migCycles []int64
	// ckptCycles[t] sums the §3.3 checkpoint costs charged for tenant t's
	// in-flight operators on dying cores (exactly one charge per in-flight
	// operator).
	ckptCycles []int64
	// failed lists the cores declared dead, in detection order.
	failed []int
	// deadOuts/deadJobs hold the failed cores' simulations, run synchronously
	// at detection time to learn ground truth about served requests; runCores
	// reuses them instead of re-running.
	deadOuts map[int]*coreOut
	deadJobs map[int]coreJob
	// log carries the fleet-level fault/heartbeat/migration events for the
	// "fleet" trace section.
	log *obs.Log
	// ctl holds the elastic control plane's bookkeeping (nil without
	// Options.Elastic).
	ctl *controlState
}

// controlState is the dispatcher's elastic-control-plane bookkeeping: the
// decision loop itself, the window accumulators feeding it, and the per-core
// activity spans provisioned-cycle accounting reads.
type controlState struct {
	controller *ctlplane.Controller
	off        []bool  // per-core inactive flag
	spanStart  []int64 // activation cycle of the open span; -1 when off
	spans      []CoreSpan
	windows    []ctlplane.WindowSignal
	decisions  []ctlplane.Decision
	observed   [][]int // per window: tenants folded into the model (Recluster)

	// Current-window accumulators (reset at every tick).
	winAdmitted int
	winShed     int
	winGoodEst  int
	winSeen     []bool // tenants offered during the window

	// Per-tenant drain accounting, aligned with the dispatch outcome slices.
	drained    []int // victims evicted by core drains
	readmitted []int // drained victims that landed on a surviving core
	drainShed  []int // drained victims dropped after exhausting retries

	scaleUps   int
	scaleDowns int
	reclusters int
	modelDrift float64
}

func newControlState(o Options, nT int) *controlState {
	cs := &controlState{
		controller: ctlplane.NewController(*o.Elastic, o.Cores),
		off:        make([]bool, o.Cores),
		spanStart:  make([]int64, o.Cores),
		winSeen:    make([]bool, nT),
		drained:    make([]int, nT),
		readmitted: make([]int, nT),
		drainShed:  make([]int, nT),
	}
	for c := 0; c < o.Cores; c++ {
		if c < o.Elastic.MinCores {
			cs.spanStart[c] = 0
		} else {
			cs.off[c] = true
			cs.spanStart[c] = -1
		}
	}
	return cs
}

// queueEntry is one request booked in a core's virtual dispatcher queue.
type queueEntry struct {
	done   int64 // estimated completion cycle
	tenant int
}

// coreQueue is one core's virtual dispatcher state: estimated completion
// times of everything admitted and not yet (estimated) finished. The depth of
// this queue — request in service included — is what QueueLimit bounds.
type coreQueue struct {
	pending []queueEntry // ascending by done
	busyTil int64        // estimated cycle the core drains its current backlog
	dead    bool         // declared dead; admits nothing
}

// drain drops queue entries whose estimated completion is ≤ now.
func (q *coreQueue) drain(now int64) {
	i := 0
	for i < len(q.pending) && q.pending[i].done <= now {
		i++
	}
	if i > 0 {
		q.pending = q.pending[i:]
	}
}

// admit books one request with the given service estimate and returns its
// estimated completion cycle.
func (q *coreQueue) admit(now int64, estCycles float64, tenant int) int64 {
	start := q.busyTil
	if now > start {
		start = now
	}
	done := start + int64(estCycles)
	if done <= now {
		done = now + 1
	}
	q.busyTil = done
	q.pending = append(q.pending, queueEntry{done: done, tenant: tenant})
	return done
}

// residents returns who is on core c right now: the placed home tenants plus
// every distinct tenant with requests in the live queue. Compatibility gates
// evaluate against this snapshot — gating against the static placement alone
// ignored earlier spills and mis-spilled incompatible tenants together.
func (q *coreQueue) residents(home []int) []int {
	group := append([]int(nil), home...)
	seen := make(map[int]bool, len(home))
	for _, t := range home {
		seen[t] = true
	}
	for _, e := range q.pending {
		if !seen[e.tenant] {
			seen[e.tenant] = true
			group = append(group, e.tenant)
		}
	}
	return group
}

// migration is one victim request of a core failure (or a control-plane core
// drain) being re-dispatched.
type migration struct {
	tenant    int
	arrivedAt int64 // original front-door arrival (latency debt baseline)
	detectAt  int64 // when its core was declared dead (migration-cycles baseline)
	attempts  int   // failed placement attempts so far
	drained   bool  // evicted by a scale-down drain, not a failure
}

// Event priorities at equal cycles: failure detection preempts control ticks,
// which preempt pending migrations, which land before new front-door
// arrivals.
const (
	prioDetect = iota
	prioControl
	prioMigration
	prioArrival
)

// dispatchEvent is one entry of the dispatcher's event heap.
type dispatchEvent struct {
	at     int64
	prio   int
	seq    int
	core   int // prioDetect: which core to declare dead
	window int // prioControl: the window this tick closes
	mig    *migration
	arr    arrival
}

type eventHeap []*dispatchEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*dispatchEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// dispatcher is the front end's working state while consuming the event heap.
type dispatcher struct {
	tenants []*trace.Workload
	homes   [][]int
	profs   []tenantProfile
	o       Options
	out     *dispatchOutcome
	queues  []coreQueue
	home    []int // tenant → home core
	feats   []collocate.Features
	events  eventHeap
	seq     int
	ctl     *controlState // elastic control plane (nil without Options.Elastic)
}

// dispatch runs admission control and failure recovery over the merged
// arrival sequence as a single chronological event simulation. homes is the
// placement; tenants is only consulted when a core dies (its simulation runs
// synchronously at detection time to learn which requests it served). With an
// empty fault schedule the event stream reduces to the plain arrival
// sequence, so fault-free outcomes are bit-identical to a run without the
// fault machinery.
func dispatch(tenants []*trace.Workload, arrivals []arrival, homes [][]int, profs []tenantProfile, o Options) *dispatchOutcome {
	nT := len(profs)
	out := &dispatchOutcome{
		admitted:   make([][][]int64, o.Cores),
		debts:      make([][][]int64, o.Cores),
		spilled:    make([]int, nT),
		shed:       make([]int, nT),
		offered:    make([]int, nT),
		estLatSum:  make([]float64, nT),
		estLatCnt:  make([]int, nT),
		migrated:   make([]int, nT),
		migShed:    make([]int, nT),
		migCycles:  make([]int64, nT),
		ckptCycles: make([]int64, nT),
		deadOuts:   map[int]*coreOut{},
		deadJobs:   map[int]coreJob{},
		log:        &obs.Log{},
	}
	for c := range out.admitted {
		out.admitted[c] = make([][]int64, nT)
		out.debts[c] = make([][]int64, nT)
	}
	d := &dispatcher{
		tenants: tenants,
		homes:   homes,
		profs:   profs,
		o:       o,
		out:     out,
		queues:  make([]coreQueue, o.Cores),
		home:    make([]int, nT),
		feats:   features(profs),
	}
	for c, group := range homes {
		for _, t := range group {
			d.home[t] = c
		}
	}

	// Seed the heap: every front-door arrival, one detection event per
	// fail-stopped core, and — under autoscaling — one control tick per
	// window boundary. Arrivals are pushed in their (already sorted) order so
	// equal-cycle arrivals keep their tenant-index tie-break via seq.
	for c := 0; c < o.Cores; c++ {
		if fail, ok := o.Faults.FailCycle(c); ok {
			d.push(&dispatchEvent{at: detectCycle(fail, o), prio: prioDetect, core: c})
		}
	}
	if o.Elastic != nil {
		out.ctl = newControlState(o, nT)
		d.ctl = out.ctl
		interval := o.Elastic.IntervalCycles
		for w := 0; ; w++ {
			at := int64(w+1) * interval
			if at > o.DurationCycles {
				break
			}
			d.push(&dispatchEvent{at: at, prio: prioControl, window: w})
		}
	}
	for _, a := range arrivals {
		d.push(&dispatchEvent{at: a.at, prio: prioArrival, arr: a})
	}

	for d.events.Len() > 0 {
		e := heap.Pop(&d.events).(*dispatchEvent)
		switch e.prio {
		case prioDetect:
			d.detect(e.at, e.core)
		case prioControl:
			d.tick(e.at, e.window)
		case prioMigration:
			d.migrate(e.at, e.mig)
		case prioArrival:
			d.arrive(e.arr)
		}
	}
	if d.ctl != nil {
		// Close the open activity spans at the end of the arrival window. A
		// core activated on the final control tick has an empty span — no
		// cycles were provisioned, so nothing is recorded.
		for c := range d.ctl.spanStart {
			if d.ctl.spanStart[c] >= 0 {
				if d.ctl.spanStart[c] < o.DurationCycles {
					d.ctl.spans = append(d.ctl.spans, CoreSpan{
						Core: c, StartCycle: d.ctl.spanStart[c], EndCycle: o.DurationCycles,
					})
				}
				d.ctl.spanStart[c] = -1
			}
		}
		sort.SliceStable(d.ctl.spans, func(i, j int) bool {
			if d.ctl.spans[i].Core != d.ctl.spans[j].Core {
				return d.ctl.spans[i].Core < d.ctl.spans[j].Core
			}
			return d.ctl.spans[i].StartCycle < d.ctl.spans[j].StartCycle
		})
	}
	return out
}

func (d *dispatcher) push(e *dispatchEvent) {
	e.seq = d.seq
	d.seq++
	heap.Push(&d.events, e)
}

// detectCycle is when the dispatcher declares a core that failed at cycle
// fail dead: the first heartbeat at or after the failure is missed (a beat
// tied with the failure is missed — the halt wins the tie), and death is
// declared on the MissedBeats-th consecutive miss.
func detectCycle(fail int64, o Options) int64 {
	hb := o.HeartbeatCycles
	first := ((fail + hb - 1) / hb) * hb
	if first == 0 {
		first = hb
	}
	return first + int64(o.MissedBeats-1)*hb
}

// detect declares core c dead: runs its cycle-accurate simulation (halted at
// the failure cycle) to learn ground truth about served requests, truncates
// its admitted schedule, charges the §3.3 checkpoint cost for in-flight
// operators, and turns the unserved suffix into migrations (or sheds, under
// NoMigration).
func (d *dispatcher) detect(now int64, c int) {
	fail, _ := d.o.Faults.FailCycle(c)
	q := &d.queues[c]
	q.dead = true
	q.pending = nil
	q.busyTil = 0
	d.out.failed = append(d.out.failed, c)

	hb := d.o.HeartbeatCycles
	firstMiss := now - int64(d.o.MissedBeats-1)*hb
	for k := 0; k < d.o.MissedBeats; k++ {
		d.out.log.Emit(obs.Event{
			Time: firstMiss + int64(k)*hb, Type: obs.EvHeartbeatMiss,
			WIdx: -1, FUKind: obs.FUNone, FUIndex: -1, Request: -1, Op: -1,
			Arg0: float64(c), Arg1: float64(k + 1),
		})
	}
	d.out.log.Emit(obs.Event{
		Time: now, Type: obs.EvCoreDead,
		WIdx: -1, FUKind: obs.FUNone, FUIndex: -1, Request: -1, Op: -1,
		Arg0: float64(c), Arg1: float64(fail),
	})

	job := buildJob(d.tenants, d.homes[c], d.out.admitted[c], d.o)
	d.out.deadJobs[c] = job
	if len(job.roster) == 0 {
		return
	}
	out := runCore(c, job, d.o, perturbFor(d.o.Faults, c))
	d.out.deadOuts[c] = out

	for k, t := range job.roster {
		served := 0
		var inFlight int
		if out.res != nil {
			served = out.res.Workloads[k].Requests
			inFlight = out.res.Workloads[k].InFlightOpKind
		}
		schedule := d.out.admitted[c][t]
		debts := d.out.debts[c][t]
		if served > len(schedule) {
			served = len(schedule) // defensive; V10 cores cannot overshoot
		}
		victims := schedule[served:]
		vdebts := debts[served:]
		d.out.admitted[c][t] = schedule[:served]
		d.out.debts[c][t] = debts[:served]

		// The workload's one in-flight operator (at most one: a workload runs
		// a single serial operator stream) is context-saved exactly once; the
		// §3.3 cost delays its request's — the first victim's — re-dispatch.
		var ckpt int64
		if inFlight != 0 && len(victims) > 0 {
			ckpt = checkpointCycles(d.o, inFlight)
			d.out.ckptCycles[t] += ckpt
		}
		for vi, at := range victims {
			m := &migration{tenant: t, arrivedAt: at - vdebts[vi], detectAt: now}
			if d.o.NoMigration {
				d.shedMigration(now, m)
				continue
			}
			ready := now
			if vi == 0 {
				ready += ckpt
			}
			d.push(&dispatchEvent{at: ready, prio: prioMigration, mig: m})
		}
	}
}

// checkpointCycles is the exposed cost of context-saving one in-flight
// operator on a dying core and shipping the context out over HBM: the §3.3
// preemption drain (384 cycles for a 128×128 SA) plus the context transfer
// (96 KB for the SA; the VU register file otherwise) at full HBM bandwidth.
func checkpointCycles(o Options, inFlightKind int) int64 {
	bpc := o.Config.HBMBytesPerCycle()
	if inFlightKind == 1 { // SA
		xfer := int64(math.Ceil(float64(o.Config.SAContextBytes()) / bpc))
		return o.Config.SAPreemptCycles() + xfer
	}
	ctx := int64(o.Config.VURegFileBits) * int64(o.Config.VULanes) / 8
	xfer := int64(math.Ceil(float64(ctx) / bpc))
	return o.Config.VUPreemptCycles() + xfer
}

// tick closes window w at its boundary cycle: it aggregates the window's
// admission signal, folds the observed tenants into the collocation model
// (Recluster), asks the controller for decisions, and applies them.
func (d *dispatcher) tick(now int64, w int) {
	cs := d.ctl
	// Occupancy snapshot across active cores, after draining estimated
	// completions up to the tick.
	active := 0
	occ := 0.0
	for c := range d.queues {
		if cs.off[c] || d.queues[c].dead {
			continue
		}
		d.queues[c].drain(now)
		active++
		occ += float64(len(d.queues[c].pending)) / float64(d.o.QueueLimit)
	}
	queueFrac := 0.0
	if active > 0 {
		queueFrac = occ / float64(active)
	}

	// Online re-clustering: fold the tenants offered during the window into
	// the model in tenant order (deterministic), before the signal is built
	// so the decision sees this window's drift.
	drift := 0.0
	if d.o.Recluster {
		var observed []int
		for t, seen := range cs.winSeen {
			if !seen {
				continue
			}
			observed = append(observed, t)
			if !d.o.skipModelUpdates {
				_, moved := d.o.Model.Observe(d.feats[t])
				drift += moved
			}
			cs.winSeen[t] = false
		}
		cs.observed = append(cs.observed, observed)
		cs.modelDrift += drift
	}

	att := 1.0 // an idle window has no demand, hence no violation
	if cs.winAdmitted+cs.winShed > 0 {
		att = float64(cs.winGoodEst) / float64(cs.winAdmitted+cs.winShed)
	}
	sig := ctlplane.WindowSignal{
		Window:      w,
		StartCycle:  now - d.o.Elastic.IntervalCycles,
		EndCycle:    now,
		ActiveCores: active,
		Admitted:    cs.winAdmitted,
		Shed:        cs.winShed,
		GoodEst:     cs.winGoodEst,
		Attainment:  att,
		QueueFrac:   queueFrac,
		Drift:       drift,
	}
	cs.windows = append(cs.windows, sig)
	cs.winAdmitted, cs.winShed, cs.winGoodEst = 0, 0, 0

	for _, dec := range cs.controller.Decide(sig) {
		cs.decisions = append(cs.decisions, dec)
		switch dec.Kind {
		case ctlplane.DecideScaleUp:
			d.activate(now, dec)
		case ctlplane.DecideScaleDown:
			cs.scaleDowns++
			d.out.log.Emit(obs.Event{
				Time: now, Type: obs.EvScaleDown,
				WIdx: -1, FUKind: obs.FUNone, FUIndex: -1, Request: -1, Op: -1,
				Arg0: float64(dec.Core), Arg1: float64(dec.ActiveAfter),
			})
			d.drainCore(now, dec.Core)
		case ctlplane.DecideRecluster:
			cs.reclusters++
			_, obsCount := d.o.Model.OnlineDrift()
			d.out.log.Emit(obs.Event{
				Time: now, Type: obs.EvRecluster,
				WIdx: -1, FUKind: obs.FUNone, FUIndex: -1, Request: -1, Op: -1,
				Arg0: dec.Drift, Arg1: float64(obsCount),
			})
		}
	}
}

// activate brings a spare core online: it starts a fresh activity span and
// becomes a spill/readmission target immediately.
func (d *dispatcher) activate(now int64, dec ctlplane.Decision) {
	cs := d.ctl
	cs.scaleUps++
	cs.off[dec.Core] = false
	cs.spanStart[dec.Core] = now
	d.out.log.Emit(obs.Event{
		Time: now, Type: obs.EvScaleUp,
		WIdx: -1, FUKind: obs.FUNone, FUIndex: -1, Request: -1, Op: -1,
		Arg0: float64(dec.Core), Arg1: float64(dec.ActiveAfter),
	})
}

// drainCore retires an active spare core: its unserved queue suffix becomes
// readmission migrations (the in-service head pays the §3.3 checkpoint cost,
// like a failure victim), its admitted schedule is truncated to what it will
// actually have served, and the core goes inactive.
func (d *dispatcher) drainCore(now int64, c int) {
	cs := d.ctl
	q := &d.queues[c]
	q.drain(now)

	// The queue (ascending estimated completion) is the per-tenant admission
	// suffix: count pending entries per tenant, then walk the queue in order
	// matching each entry to its tenant's next unserved admission.
	pendingOf := make(map[int]int)
	for _, e := range q.pending {
		pendingOf[e.tenant]++
	}
	cursor := make(map[int]int, len(pendingOf))
	for t, n := range pendingOf {
		cursor[t] = len(d.out.admitted[c][t]) - n
	}

	// At most one request is in service at the drain point — the queue head
	// (its predecessors' estimated completions have all passed). Its
	// context-save cost delays its readmission, charged as an SA checkpoint
	// (the conservative §3.3 cost; the dispatcher has no operator-kind
	// ground truth mid-run).
	var ckpt int64
	if len(q.pending) > 0 {
		t0 := q.pending[0].tenant
		ckpt = checkpointCycles(d.o, 1)
		d.out.ckptCycles[t0] += ckpt
	}
	for i, e := range q.pending {
		t := e.tenant
		k := cursor[t]
		cursor[t]++
		at := d.out.admitted[c][t][k]
		debt := d.out.debts[c][t][k]
		m := &migration{tenant: t, arrivedAt: at - debt, detectAt: now, drained: true}
		cs.drained[t]++
		if d.o.NoMigration {
			d.shedMigration(now, m)
			continue
		}
		ready := now
		if i == 0 {
			ready += ckpt
		}
		d.push(&dispatchEvent{at: ready, prio: prioMigration, mig: m})
	}
	victims := len(q.pending)
	for t, n := range pendingOf {
		keep := len(d.out.admitted[c][t]) - n
		d.out.admitted[c][t] = d.out.admitted[c][t][:keep]
		d.out.debts[c][t] = d.out.debts[c][t][:keep]
	}
	q.pending = nil
	q.busyTil = 0
	cs.off[c] = true
	if cs.spanStart[c] >= 0 {
		if cs.spanStart[c] < now {
			cs.spans = append(cs.spans, CoreSpan{Core: c, StartCycle: cs.spanStart[c], EndCycle: now})
		}
		cs.spanStart[c] = -1
	}
	d.out.log.Emit(obs.Event{
		Time: now, Type: obs.EvCoreDrain,
		WIdx: -1, FUKind: obs.FUNone, FUIndex: -1, Request: -1, Op: -1,
		Arg0: float64(c), Arg1: float64(victims),
	})
}

// migrate attempts to land one victim request — of a core failure or a
// scale-down drain — on a surviving core.
func (d *dispatcher) migrate(now int64, m *migration) {
	for c := range d.queues {
		if d.ctl != nil && d.ctl.off[c] {
			continue
		}
		d.queues[c].drain(now)
	}
	best := d.bestTarget(now, m.tenant, -1)
	if best >= 0 {
		d.admit(best, arrival{at: now, tenant: m.tenant}, now-m.arrivedAt)
		if m.drained {
			d.ctl.readmitted[m.tenant]++
			d.out.log.Emit(obs.Event{
				Time: now, Type: obs.EvReadmit,
				Workload: d.tenantName(m.tenant), WIdx: m.tenant,
				FUKind: obs.FUNone, FUIndex: -1, Request: -1, Op: -1,
				Arg0: float64(best), Arg1: float64(now - m.arrivedAt),
			})
			return
		}
		d.out.migrated[m.tenant]++
		d.out.migCycles[m.tenant] += now - m.detectAt
		d.out.log.Emit(obs.Event{
			Time: now, Type: obs.EvMigrate,
			Workload: d.tenantName(m.tenant), WIdx: m.tenant,
			FUKind: obs.FUNone, FUIndex: -1, Request: -1, Op: -1,
			Arg0: float64(best), Arg1: float64(now - m.arrivedAt),
		})
		return
	}
	m.attempts++
	if m.attempts >= d.o.MigrationRetries {
		d.shedMigration(now, m)
		return
	}
	shift := m.attempts - 1
	if shift > 30 {
		shift = 30
	}
	d.push(&dispatchEvent{at: now + d.o.MigrationBackoffCycles<<shift, prio: prioMigration, mig: m})
}

// shedMigration gives up on a victim request (retry budget exhausted, or
// NoMigration).
func (d *dispatcher) shedMigration(now int64, m *migration) {
	if m.drained {
		d.ctl.drainShed[m.tenant]++
	} else {
		d.out.migShed[m.tenant]++
	}
	d.out.log.Emit(obs.Event{
		Time: now, Type: obs.EvMigrateShed,
		Workload: d.tenantName(m.tenant), WIdx: m.tenant,
		FUKind: obs.FUNone, FUIndex: -1, Request: -1, Op: -1,
		Arg0: float64(m.attempts),
	})
}

func (d *dispatcher) tenantName(t int) string {
	if t < len(d.tenants) {
		return d.tenants[t].Name
	}
	return ""
}

// arrive runs front-door admission control for one arrival. This is the
// fault-free hot path and decides identically to the pre-fault dispatcher
// when no core has died, modulo the live-residents compatibility snapshot.
func (d *dispatcher) arrive(a arrival) {
	d.out.offered[a.tenant]++
	if d.ctl != nil && a.tenant < len(d.ctl.winSeen) {
		d.ctl.winSeen[a.tenant] = true
	}
	for c := range d.queues {
		if d.ctl != nil && d.ctl.off[c] {
			continue
		}
		d.queues[c].drain(a.at)
	}
	h := d.home[a.tenant]
	if !d.queues[h].dead && (d.ctl == nil || !d.ctl.off[h]) && d.admitOK(h, a) {
		d.admit(h, a, 0)
		return
	}
	if d.o.NoSpill {
		d.shedArrival(a.tenant)
		return
	}
	// Spill: probe the other cores for room, preferring the shallowest queue
	// (ties by smaller estimated backlog, then index). The advisor policy
	// only spills onto cores whose *live* residents — placed tenants plus
	// anyone currently queued there — the tenant is predicted compatible
	// with; empty cores are trivially compatible.
	best := d.bestTarget(a.at, a.tenant, h)
	if best < 0 {
		d.shedArrival(a.tenant)
		return
	}
	d.admit(best, a, 0)
}

func (d *dispatcher) shedArrival(tenant int) {
	d.out.shed[tenant]++
	if d.ctl != nil {
		d.ctl.winShed++
	}
}

// bookEst is the booking estimate for one tenant request: the profiled
// service estimate scaled by the current calibration round's multiplier (1
// without feedback). Queue booking, predictive admission, and therefore the
// control plane's attainment signal all see the calibrated value; the SLO
// definition deliberately does not.
func (d *dispatcher) bookEst(t int) float64 {
	est := d.profs[t].estCycles
	if d.o.calib != nil {
		est *= d.o.calib[t]
	}
	return est
}

// admitOK applies the front-door admission discipline to one arrival probing
// core c: the static queue bound, or the PREMA-style predicted-slowdown gate.
func (d *dispatcher) admitOK(c int, a arrival) bool {
	q := &d.queues[c]
	if d.o.Admission == AdmitPredictive {
		est := d.bookEst(a.tenant)
		if est <= 0 {
			return true
		}
		wait := float64(q.busyTil - a.at)
		if wait < 0 {
			wait = 0
		}
		return (wait+est)/est <= d.o.SlowdownLimit
	}
	return len(q.pending) < d.o.QueueLimit
}

// bestTarget picks the most lightly loaded live core with admission room that
// passes the advisor compatibility gate, excluding core `exclude` (-1: none).
func (d *dispatcher) bestTarget(at int64, tenant, exclude int) int {
	best := -1
	for c := range d.queues {
		q := &d.queues[c]
		if c == exclude || q.dead || (d.ctl != nil && d.ctl.off[c]) ||
			!d.admitOK(c, arrival{at: at, tenant: tenant}) {
			continue
		}
		if d.o.Policy == PolicyAdvisor {
			group := q.residents(d.homes[c])
			if len(group) > 0 && d.o.compat(d.feats, group, tenant) <= 0 {
				continue
			}
		}
		if best < 0 ||
			len(q.pending) < len(d.queues[best].pending) ||
			(len(q.pending) == len(d.queues[best].pending) &&
				q.busyTil < d.queues[best].busyTil) {
			best = c
		}
	}
	return best
}

// admit books one request on core c with the given latency debt.
func (d *dispatcher) admit(c int, a arrival, debt int64) {
	done := d.queues[c].admit(a.at, d.bookEst(a.tenant), a.tenant)
	d.out.admitted[c][a.tenant] = append(d.out.admitted[c][a.tenant], a.at)
	d.out.debts[c][a.tenant] = append(d.out.debts[c][a.tenant], debt)
	d.out.estLatSum[a.tenant] += float64(done-a.at) + float64(debt)
	d.out.estLatCnt[a.tenant]++
	if c != d.home[a.tenant] {
		d.out.spilled[a.tenant]++
	}
	if d.ctl != nil && debt == 0 {
		// Front-door admission: feed the window's estimated SLO-attainment
		// signal (readmissions carry debt and are already counted).
		d.ctl.winAdmitted++
		if float64(done-a.at) <= d.o.SLOFactor*d.profs[a.tenant].estCycles {
			d.ctl.winGoodEst++
		}
	}
}
