package fleet

import (
	"container/heap"
	"math"
	"sort"

	"v10/internal/collocate"
	"v10/internal/mathx"
	"v10/internal/obs"
	"v10/internal/trace"
)

// arrival is one tenant request hitting the front end.
type arrival struct {
	at     int64
	tenant int
}

// genArrivals produces the fleet's merged, time-ordered arrival sequence
// (ties by tenant index): either the explicit per-tenant schedules from
// o.Arrivals (the workload engine's interface) or every tenant's open-loop
// Poisson stream over [0, DurationCycles). Poisson seeding is per tenant, so
// a tenant's stream is independent of the fleet size and of the other
// tenants. Arrival times accumulate in float64 and are floored only on
// emission: truncating each gap to int64 with a gap<1 clamp would inflate
// the realized rate above the nominal RateHz (badly so at high rates).
func genArrivals(tenants int, o Options) []arrival {
	var all []arrival
	if o.Arrivals != nil {
		for t, schedule := range o.Arrivals {
			for _, at := range schedule {
				all = append(all, arrival{at: at, tenant: t})
			}
		}
	} else {
		meanGap := o.Config.FrequencyHz / o.RateHz
		for t := 0; t < tenants; t++ {
			rng := mathx.NewRNG(o.Seed + 0xf1ee7 + uint64(t)*7919)
			at := 0.0
			for {
				u := rng.Float64()
				for u == 0 {
					u = rng.Float64()
				}
				at -= meanGap * math.Log(u)
				if at >= float64(o.DurationCycles) {
					break
				}
				all = append(all, arrival{at: int64(at), tenant: t})
			}
		}
	}
	sort.SliceStable(all, func(i, j int) bool {
		if all[i].at != all[j].at {
			return all[i].at < all[j].at
		}
		return all[i].tenant < all[j].tenant
	})
	return all
}

// dispatchOutcome is the admission-control phase's verdict over the whole
// arrival sequence, extended with the failure-recovery bookkeeping.
type dispatchOutcome struct {
	// admitted[c][t] lists the arrival cycles of tenant t's requests admitted
	// to core c (global tenant index; nil when none). For a failed core the
	// schedule is truncated at detection time to the requests it actually
	// served — the unserved suffix became migrations.
	admitted [][][]int64
	// debts[c][t] aligns with admitted[c][t]: the latency debt in cycles each
	// request carried into this core (0 for front-door admissions; landing
	// cycle minus original arrival for migrated requests).
	debts [][][]int64
	// spilled[t] counts tenant t's requests admitted on a non-home core.
	spilled []int
	// shed[t] counts tenant t's requests rejected at the front door.
	shed []int
	// offered[t] counts tenant t's total arrivals.
	offered []int
	// migrated[t] counts migration landings (a request re-victimized by a
	// cascading failure counts once per landing).
	migrated []int
	// migShed[t] counts victims dropped after exhausting the retry budget
	// (or immediately under NoMigration).
	migShed []int
	// migCycles[t] sums detection-to-landing cycles over tenant t's
	// migrations.
	migCycles []int64
	// ckptCycles[t] sums the §3.3 checkpoint costs charged for tenant t's
	// in-flight operators on dying cores (exactly one charge per in-flight
	// operator).
	ckptCycles []int64
	// failed lists the cores declared dead, in detection order.
	failed []int
	// deadOuts/deadJobs hold the failed cores' simulations, run synchronously
	// at detection time to learn ground truth about served requests; runCores
	// reuses them instead of re-running.
	deadOuts map[int]*coreOut
	deadJobs map[int]coreJob
	// log carries the fleet-level fault/heartbeat/migration events for the
	// "fleet" trace section.
	log *obs.Log
}

// queueEntry is one request booked in a core's virtual dispatcher queue.
type queueEntry struct {
	done   int64 // estimated completion cycle
	tenant int
}

// coreQueue is one core's virtual dispatcher state: estimated completion
// times of everything admitted and not yet (estimated) finished. The depth of
// this queue — request in service included — is what QueueLimit bounds.
type coreQueue struct {
	pending []queueEntry // ascending by done
	busyTil int64        // estimated cycle the core drains its current backlog
	dead    bool         // declared dead; admits nothing
}

// drain drops queue entries whose estimated completion is ≤ now.
func (q *coreQueue) drain(now int64) {
	i := 0
	for i < len(q.pending) && q.pending[i].done <= now {
		i++
	}
	if i > 0 {
		q.pending = q.pending[i:]
	}
}

// admit books one request with the given service estimate.
func (q *coreQueue) admit(now int64, estCycles float64, tenant int) {
	start := q.busyTil
	if now > start {
		start = now
	}
	done := start + int64(estCycles)
	if done <= now {
		done = now + 1
	}
	q.busyTil = done
	q.pending = append(q.pending, queueEntry{done: done, tenant: tenant})
}

// residents returns who is on core c right now: the placed home tenants plus
// every distinct tenant with requests in the live queue. Compatibility gates
// evaluate against this snapshot — gating against the static placement alone
// ignored earlier spills and mis-spilled incompatible tenants together.
func (q *coreQueue) residents(home []int) []int {
	group := append([]int(nil), home...)
	seen := make(map[int]bool, len(home))
	for _, t := range home {
		seen[t] = true
	}
	for _, e := range q.pending {
		if !seen[e.tenant] {
			seen[e.tenant] = true
			group = append(group, e.tenant)
		}
	}
	return group
}

// migration is one victim request of a core failure being re-dispatched.
type migration struct {
	tenant    int
	arrivedAt int64 // original front-door arrival (latency debt baseline)
	detectAt  int64 // when its core was declared dead (migration-cycles baseline)
	attempts  int   // failed placement attempts so far
}

// Event priorities at equal cycles: failure detection preempts pending
// migrations, which land before new front-door arrivals.
const (
	prioDetect = iota
	prioMigration
	prioArrival
)

// dispatchEvent is one entry of the dispatcher's event heap.
type dispatchEvent struct {
	at   int64
	prio int
	seq  int
	core int // prioDetect: which core to declare dead
	mig  *migration
	arr  arrival
}

type eventHeap []*dispatchEvent

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*dispatchEvent)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// dispatcher is the front end's working state while consuming the event heap.
type dispatcher struct {
	tenants []*trace.Workload
	homes   [][]int
	profs   []tenantProfile
	o       Options
	out     *dispatchOutcome
	queues  []coreQueue
	home    []int // tenant → home core
	feats   []collocate.Features
	events  eventHeap
	seq     int
}

// dispatch runs admission control and failure recovery over the merged
// arrival sequence as a single chronological event simulation. homes is the
// placement; tenants is only consulted when a core dies (its simulation runs
// synchronously at detection time to learn which requests it served). With an
// empty fault schedule the event stream reduces to the plain arrival
// sequence, so fault-free outcomes are bit-identical to a run without the
// fault machinery.
func dispatch(tenants []*trace.Workload, arrivals []arrival, homes [][]int, profs []tenantProfile, o Options) *dispatchOutcome {
	nT := len(profs)
	out := &dispatchOutcome{
		admitted:   make([][][]int64, o.Cores),
		debts:      make([][][]int64, o.Cores),
		spilled:    make([]int, nT),
		shed:       make([]int, nT),
		offered:    make([]int, nT),
		migrated:   make([]int, nT),
		migShed:    make([]int, nT),
		migCycles:  make([]int64, nT),
		ckptCycles: make([]int64, nT),
		deadOuts:   map[int]*coreOut{},
		deadJobs:   map[int]coreJob{},
		log:        &obs.Log{},
	}
	for c := range out.admitted {
		out.admitted[c] = make([][]int64, nT)
		out.debts[c] = make([][]int64, nT)
	}
	d := &dispatcher{
		tenants: tenants,
		homes:   homes,
		profs:   profs,
		o:       o,
		out:     out,
		queues:  make([]coreQueue, o.Cores),
		home:    make([]int, nT),
		feats:   features(profs),
	}
	for c, group := range homes {
		for _, t := range group {
			d.home[t] = c
		}
	}

	// Seed the heap: every front-door arrival plus one detection event per
	// fail-stopped core. Arrivals are pushed in their (already sorted) order
	// so equal-cycle arrivals keep their tenant-index tie-break via seq.
	for c := 0; c < o.Cores; c++ {
		if fail, ok := o.Faults.FailCycle(c); ok {
			d.push(&dispatchEvent{at: detectCycle(fail, o), prio: prioDetect, core: c})
		}
	}
	for _, a := range arrivals {
		d.push(&dispatchEvent{at: a.at, prio: prioArrival, arr: a})
	}

	for d.events.Len() > 0 {
		e := heap.Pop(&d.events).(*dispatchEvent)
		switch e.prio {
		case prioDetect:
			d.detect(e.at, e.core)
		case prioMigration:
			d.migrate(e.at, e.mig)
		case prioArrival:
			d.arrive(e.arr)
		}
	}
	return out
}

func (d *dispatcher) push(e *dispatchEvent) {
	e.seq = d.seq
	d.seq++
	heap.Push(&d.events, e)
}

// detectCycle is when the dispatcher declares a core that failed at cycle
// fail dead: the first heartbeat at or after the failure is missed (a beat
// tied with the failure is missed — the halt wins the tie), and death is
// declared on the MissedBeats-th consecutive miss.
func detectCycle(fail int64, o Options) int64 {
	hb := o.HeartbeatCycles
	first := ((fail + hb - 1) / hb) * hb
	if first == 0 {
		first = hb
	}
	return first + int64(o.MissedBeats-1)*hb
}

// detect declares core c dead: runs its cycle-accurate simulation (halted at
// the failure cycle) to learn ground truth about served requests, truncates
// its admitted schedule, charges the §3.3 checkpoint cost for in-flight
// operators, and turns the unserved suffix into migrations (or sheds, under
// NoMigration).
func (d *dispatcher) detect(now int64, c int) {
	fail, _ := d.o.Faults.FailCycle(c)
	q := &d.queues[c]
	q.dead = true
	q.pending = nil
	q.busyTil = 0
	d.out.failed = append(d.out.failed, c)

	hb := d.o.HeartbeatCycles
	firstMiss := now - int64(d.o.MissedBeats-1)*hb
	for k := 0; k < d.o.MissedBeats; k++ {
		d.out.log.Emit(obs.Event{
			Time: firstMiss + int64(k)*hb, Type: obs.EvHeartbeatMiss,
			WIdx: -1, FUKind: obs.FUNone, FUIndex: -1, Request: -1, Op: -1,
			Arg0: float64(c), Arg1: float64(k + 1),
		})
	}
	d.out.log.Emit(obs.Event{
		Time: now, Type: obs.EvCoreDead,
		WIdx: -1, FUKind: obs.FUNone, FUIndex: -1, Request: -1, Op: -1,
		Arg0: float64(c), Arg1: float64(fail),
	})

	job := buildJob(d.tenants, d.homes[c], d.out.admitted[c], d.o)
	d.out.deadJobs[c] = job
	if len(job.roster) == 0 {
		return
	}
	out := runCore(c, job, d.o, perturbFor(d.o.Faults, c))
	d.out.deadOuts[c] = out

	for k, t := range job.roster {
		served := 0
		var inFlight int
		if out.res != nil {
			served = out.res.Workloads[k].Requests
			inFlight = out.res.Workloads[k].InFlightOpKind
		}
		schedule := d.out.admitted[c][t]
		debts := d.out.debts[c][t]
		if served > len(schedule) {
			served = len(schedule) // defensive; V10 cores cannot overshoot
		}
		victims := schedule[served:]
		vdebts := debts[served:]
		d.out.admitted[c][t] = schedule[:served]
		d.out.debts[c][t] = debts[:served]

		// The workload's one in-flight operator (at most one: a workload runs
		// a single serial operator stream) is context-saved exactly once; the
		// §3.3 cost delays its request's — the first victim's — re-dispatch.
		var ckpt int64
		if inFlight != 0 && len(victims) > 0 {
			ckpt = checkpointCycles(d.o, inFlight)
			d.out.ckptCycles[t] += ckpt
		}
		for vi, at := range victims {
			m := &migration{tenant: t, arrivedAt: at - vdebts[vi], detectAt: now}
			if d.o.NoMigration {
				d.shedMigration(now, m)
				continue
			}
			ready := now
			if vi == 0 {
				ready += ckpt
			}
			d.push(&dispatchEvent{at: ready, prio: prioMigration, mig: m})
		}
	}
}

// checkpointCycles is the exposed cost of context-saving one in-flight
// operator on a dying core and shipping the context out over HBM: the §3.3
// preemption drain (384 cycles for a 128×128 SA) plus the context transfer
// (96 KB for the SA; the VU register file otherwise) at full HBM bandwidth.
func checkpointCycles(o Options, inFlightKind int) int64 {
	bpc := o.Config.HBMBytesPerCycle()
	if inFlightKind == 1 { // SA
		xfer := int64(math.Ceil(float64(o.Config.SAContextBytes()) / bpc))
		return o.Config.SAPreemptCycles() + xfer
	}
	ctx := int64(o.Config.VURegFileBits) * int64(o.Config.VULanes) / 8
	xfer := int64(math.Ceil(float64(ctx) / bpc))
	return o.Config.VUPreemptCycles() + xfer
}

// migrate attempts to land one victim request on a surviving core.
func (d *dispatcher) migrate(now int64, m *migration) {
	for c := range d.queues {
		d.queues[c].drain(now)
	}
	best := d.bestTarget(m.tenant, -1)
	if best >= 0 {
		d.admit(best, arrival{at: now, tenant: m.tenant}, now-m.arrivedAt)
		d.out.migrated[m.tenant]++
		d.out.migCycles[m.tenant] += now - m.detectAt
		d.out.log.Emit(obs.Event{
			Time: now, Type: obs.EvMigrate,
			Workload: d.tenantName(m.tenant), WIdx: m.tenant,
			FUKind: obs.FUNone, FUIndex: -1, Request: -1, Op: -1,
			Arg0: float64(best), Arg1: float64(now - m.arrivedAt),
		})
		return
	}
	m.attempts++
	if m.attempts >= d.o.MigrationRetries {
		d.shedMigration(now, m)
		return
	}
	shift := m.attempts - 1
	if shift > 30 {
		shift = 30
	}
	d.push(&dispatchEvent{at: now + d.o.MigrationBackoffCycles<<shift, prio: prioMigration, mig: m})
}

// shedMigration gives up on a victim request (retry budget exhausted, or
// NoMigration).
func (d *dispatcher) shedMigration(now int64, m *migration) {
	d.out.migShed[m.tenant]++
	d.out.log.Emit(obs.Event{
		Time: now, Type: obs.EvMigrateShed,
		Workload: d.tenantName(m.tenant), WIdx: m.tenant,
		FUKind: obs.FUNone, FUIndex: -1, Request: -1, Op: -1,
		Arg0: float64(m.attempts),
	})
}

func (d *dispatcher) tenantName(t int) string {
	if t < len(d.tenants) {
		return d.tenants[t].Name
	}
	return ""
}

// arrive runs front-door admission control for one arrival. This is the
// fault-free hot path and decides identically to the pre-fault dispatcher
// when no core has died, modulo the live-residents compatibility snapshot.
func (d *dispatcher) arrive(a arrival) {
	d.out.offered[a.tenant]++
	for c := range d.queues {
		d.queues[c].drain(a.at)
	}
	h := d.home[a.tenant]
	if !d.queues[h].dead && len(d.queues[h].pending) < d.o.QueueLimit {
		d.admit(h, a, 0)
		return
	}
	if d.o.NoSpill {
		d.out.shed[a.tenant]++
		return
	}
	// Spill: probe the other cores for room, preferring the shallowest queue
	// (ties by smaller estimated backlog, then index). The advisor policy
	// only spills onto cores whose *live* residents — placed tenants plus
	// anyone currently queued there — the tenant is predicted compatible
	// with; empty cores are trivially compatible.
	best := d.bestTarget(a.tenant, h)
	if best < 0 {
		d.out.shed[a.tenant]++
		return
	}
	d.admit(best, a, 0)
}

// bestTarget picks the most lightly loaded live core with queue room that
// passes the advisor compatibility gate, excluding core `exclude` (-1: none).
func (d *dispatcher) bestTarget(tenant, exclude int) int {
	best := -1
	for c := range d.queues {
		q := &d.queues[c]
		if c == exclude || q.dead || len(q.pending) >= d.o.QueueLimit {
			continue
		}
		if d.o.Policy == PolicyAdvisor {
			group := q.residents(d.homes[c])
			if len(group) > 0 && d.o.compat(d.feats, group, tenant) <= 0 {
				continue
			}
		}
		if best < 0 ||
			len(q.pending) < len(d.queues[best].pending) ||
			(len(q.pending) == len(d.queues[best].pending) &&
				q.busyTil < d.queues[best].busyTil) {
			best = c
		}
	}
	return best
}

// admit books one request on core c with the given latency debt.
func (d *dispatcher) admit(c int, a arrival, debt int64) {
	d.queues[c].admit(a.at, d.profs[a.tenant].estCycles, a.tenant)
	d.out.admitted[c][a.tenant] = append(d.out.admitted[c][a.tenant], a.at)
	d.out.debts[c][a.tenant] = append(d.out.debts[c][a.tenant], debt)
	if c != d.home[a.tenant] {
		d.out.spilled[a.tenant]++
	}
}
