package fleet

import (
	"errors"
	"math/rand"
	"sort"
	"testing"

	"v10/internal/mathx"
	"v10/internal/vnpu"
)

func halves() []vnpu.Template {
	return []vnpu.Template{
		{Name: "a", Compute: 0.5, VMem: 0.5, HBM: 0.5},
		{Name: "b", Compute: 0.5, VMem: 0.5, HBM: 0.5},
	}
}

func TestFleetSlicedRunReportsSliceStats(t *testing.T) {
	res, err := Run(mixedTenants(), Options{
		Cores:          2,
		RateHz:         40,
		DurationCycles: 5_000_000,
		Seed:           7,
		Parallel:       1,
		VNPUTemplates:  halves(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, cr := range res.Cores {
		if len(cr.Tenants) == 0 {
			continue
		}
		if len(cr.SliceOf) != len(cr.Tenants) {
			t.Fatalf("core %d: sliceOf %v for roster %v", cr.Core, cr.SliceOf, cr.Tenants)
		}
		if cr.Run == nil {
			continue
		}
		if len(cr.Slices) != 2 {
			t.Fatalf("core %d: %d slice stats, want 2", cr.Core, len(cr.Slices))
		}
		// Residents recorded per slice must match the roster assignment, and
		// per-slice vmem stays within each slice's ceiling.
		counts := make([]int, 2)
		for _, s := range cr.SliceOf {
			counts[s]++
		}
		for i, ss := range cr.Slices {
			if ss.Residents != counts[i] {
				t.Fatalf("core %d slice %d residents = %d, roster says %d",
					cr.Core, i, ss.Residents, counts[i])
			}
			if ss.VMemUsedBytes > ss.VMemBytes {
				t.Fatalf("core %d slice %d vmem %d exceeds ceiling %d",
					cr.Core, i, ss.VMemUsedBytes, ss.VMemBytes)
			}
		}
	}
	if res.Completed == 0 {
		t.Fatal("sliced fleet served nothing")
	}
}

func TestFleetPinnedPlacementAndSlices(t *testing.T) {
	tenants := mixedTenants()
	res, err := Run(tenants, Options{
		Cores:           2,
		RateHz:          40,
		DurationCycles:  5_000_000,
		Seed:            7,
		Parallel:        1,
		NoSpill:         true,
		VNPUTemplates:   halves(),
		PinnedPlacement: [][]int{{0, 1}, {2, 3}},
		PinnedSlices:    []int{0, 1, 0, 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	wantHomes := [][]int{{0, 1}, {2, 3}}
	for c, group := range res.Placement {
		if len(group) != len(wantHomes[c]) {
			t.Fatalf("placement = %v, want %v", res.Placement, wantHomes)
		}
		for i := range group {
			if group[i] != wantHomes[c][i] {
				t.Fatalf("placement = %v, want %v", res.Placement, wantHomes)
			}
		}
	}
	for _, cr := range res.Cores {
		for k, tn := range cr.Tenants {
			if want := tn % 2; cr.SliceOf[k] != want {
				t.Fatalf("core %d tenant %d on slice %d, pinned to %d",
					cr.Core, tn, cr.SliceOf[k], want)
			}
		}
	}
}

func TestFleetSlicePlacementDeterministic(t *testing.T) {
	run := func() *Result {
		res, err := Run(mixedTenants(), Options{
			Cores:          2,
			RateHz:         40,
			DurationCycles: 5_000_000,
			Seed:           11,
			Parallel:       1,
			VNPUTemplates:  halves(),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.TotalCycles != b.TotalCycles {
		t.Fatalf("nondeterministic total: %d vs %d", a.TotalCycles, b.TotalCycles)
	}
	for c := range a.Cores {
		ca, cb := a.Cores[c], b.Cores[c]
		for k := range ca.SliceOf {
			if ca.SliceOf[k] != cb.SliceOf[k] {
				t.Fatalf("core %d slice assignment diverged: %v vs %v", c, ca.SliceOf, cb.SliceOf)
			}
		}
		for s := range ca.Slices {
			if ca.Slices[s] != cb.Slices[s] {
				t.Fatalf("core %d slice %d stats diverged:\n%+v\n%+v", c, s, ca.Slices[s], cb.Slices[s])
			}
		}
	}
	for i := range a.Tenants {
		if a.Tenants[i].P99LatencyCycles != b.Tenants[i].P99LatencyCycles {
			t.Fatalf("tenant %d p99 diverged", i)
		}
	}
}

func TestFleetSliceOptionErrors(t *testing.T) {
	tenants := mixedTenants()
	for name, o := range map[string]Options{
		"pmt with slices": {Scheme: "PMT", VNPUTemplates: halves()},
		"overcommitted vmem": {VNPUTemplates: []vnpu.Template{
			{Compute: 0.5, VMem: 0.8, HBM: 0.5}, {Compute: 0.5, VMem: 0.8, HBM: 0.5}}},
		"zero-width slice": {VNPUTemplates: []vnpu.Template{
			{Compute: 0, VMem: 0.5, HBM: 0.5}}},
		"pinned slices without templates": {PinnedSlices: []int{0, 0, 0, 0}},
		"negative window":                 {VNPUTemplates: halves(), SliceWindowCycles: -1},
		"pinned slice out of range":       {VNPUTemplates: halves(), PinnedSlices: []int{0, 1, 2, 0}},
		"pinned slices wrong length":      {VNPUTemplates: halves(), PinnedSlices: []int{0}},
		"pinned placement wrong cores":    {PinnedPlacement: [][]int{{0, 1, 2, 3}}, Cores: 2},
		"pinned placement duplicate":      {PinnedPlacement: [][]int{{0, 1}, {1, 2, 3}}, Cores: 2},
		"pinned placement omits tenant":   {PinnedPlacement: [][]int{{0, 1}, {2}}, Cores: 2},
	} {
		if _, err := Run(tenants, o); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}

	// Overcommit is a typed error.
	_, err := Run(tenants, Options{VNPUTemplates: []vnpu.Template{
		{Compute: 0.6, VMem: 0.6, HBM: 0.6}, {Compute: 0.6, VMem: 0.6, HBM: 0.6}}})
	var oc *vnpu.OvercommitError
	if !errors.As(err, &oc) {
		t.Fatalf("overcommit error = %v, want *vnpu.OvercommitError", err)
	}
}

func TestAssignSlicesPacksByCapacity(t *testing.T) {
	o := Options{Config: cfg, VNPUTemplates: halves()}
	got := assignSlices([]int{0, 1, 2, 3}, o)
	// Least-populated packing alternates slices.
	want := []int{0, 1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("assignSlices = %v, want %v", got, want)
		}
	}

	// A slice with room for one resident fills, then overflow packs onto the
	// other slice.
	small := cfg
	small.VMemBytes = 4 * vnpu.MinPartitionBytes
	o = Options{Config: small, VNPUTemplates: []vnpu.Template{
		{Compute: 0.5, VMem: 0.25, HBM: 0.5}, // capacity 1 resident
		{Compute: 0.5, VMem: 0.75, HBM: 0.5}, // capacity 3 residents
	}}
	got = assignSlices([]int{0, 1, 2, 3}, o)
	want = []int{0, 1, 1, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("capacity-aware assignSlices = %v, want %v", got, want)
		}
	}
}

// TestTenantStatsQuantilesMatchReference pins the sorted-buffer quantile path
// to the reference copy+sort-per-quantile implementation on random samples.
func TestTenantStatsQuantilesMatchReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := rng.Intn(400)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 1e6
		}
		wantP95 := mathx.Percentile(xs, 95)
		wantP99 := mathx.Percentile(xs, 99)
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		if got := mathx.PercentileSorted(sorted, 95); got != wantP95 {
			t.Fatalf("trial %d: p95 %v != %v", trial, got, wantP95)
		}
		if got := mathx.PercentileSorted(sorted, 99); got != wantP99 {
			t.Fatalf("trial %d: p99 %v != %v", trial, got, wantP99)
		}
	}
}

// BenchmarkTenantStats guards the per-snapshot quantile recompute: the sorted
// buffer is reused across tenants, so per-tenant cost is one sort of its own
// latencies, not a fresh allocation + copy + sort per quantile.
func BenchmarkTenantStats(b *testing.B) {
	tenants := mixedTenants()
	o, err := Options{Cores: 2, RateHz: 40, DurationCycles: 5_000_000, Seed: 3, Parallel: 1}.withDefaults()
	if err != nil {
		b.Fatal(err)
	}
	profs := profileTenants(tenants, o)
	homes := place(profs, o, mathx.NewRNG(o.Seed+0x9f1e))
	arrivals := genArrivals(len(tenants), o)
	disp := dispatch(tenants, arrivals, homes, profs, o)
	jobs := buildJobs(tenants, homes, disp, o)
	outs, err := runCores(jobs, disp, o)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats := tenantStats(tenants, profs, homes, disp, jobs, outs, o)
		if len(stats) != len(tenants) {
			b.Fatal("bad stats")
		}
	}
}
