package fleet

import (
	"encoding/json"
	"math"
	"testing"

	"v10/internal/collocate"
	"v10/internal/trace"
)

func TestTunedKnobOptionValidation(t *testing.T) {
	base := quickOptions()
	for _, tc := range []struct {
		name   string
		mutate func(*Options)
	}{
		{"PreemptMargin below 1", func(o *Options) { o.PreemptMargin = 0.5 }},
		{"negative PreemptMargin", func(o *Options) { o.PreemptMargin = -1 }},
		{"NaN PreemptMargin", func(o *Options) { o.PreemptMargin = math.NaN() }},
		{"NaN PriorityExponent", func(o *Options) { o.PriorityExponent = math.NaN() }},
		{"Inf PriorityExponent", func(o *Options) { o.PriorityExponent = math.Inf(1) }},
		{"negative FeedbackRounds", func(o *Options) { o.FeedbackRounds = -1 }},
		{"threshold without model", func(o *Options) { o.CollocationThreshold = 1.2 }},
		{"negative threshold", func(o *Options) { o.CollocationThreshold = -1 }},
		{"NaN threshold", func(o *Options) { o.CollocationThreshold = math.NaN() }},
	} {
		o := base
		tc.mutate(&o)
		if _, err := Run(mixedTenants(), o); err == nil {
			t.Errorf("%s: Run accepted invalid options", tc.name)
		}
	}
}

func TestCollocationThresholdReachesModel(t *testing.T) {
	tenants := mixedTenants()
	feats := make([]collocate.Features, len(tenants))
	for i, w := range tenants {
		feats[i] = collocate.ExtractFeatures(w, cfg, 2)
	}
	model, err := collocate.Train(tenants, feats,
		func(a, b *trace.Workload) (float64, error) { return 1.5, nil },
		collocate.TrainConfig{K: 2, Seed: 1})
	if err != nil {
		t.Fatalf("train: %v", err)
	}
	o := quickOptions()
	o.Model = model
	o.CollocationThreshold = 2.5
	resolved, err := o.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if got := resolved.Model.Threshold(); got != 2.5 {
		t.Fatalf("resolved model threshold = %v, want 2.5", got)
	}
	if model.Threshold() == 2.5 {
		t.Fatal("caller's model was mutated")
	}
}

func TestApplyPrioritiesBiasAndClamp(t *testing.T) {
	tenants := mixedTenants()
	profs := []tenantProfile{{estCycles: 100}, {estCycles: 10_000},
		{estCycles: 100}, {estCycles: 10_000}}

	if got := applyPriorities(tenants, profs, 0); &got[0] == &tenants[0] && got[0] != tenants[0] {
		t.Fatal("exponent 0 must be the identity")
	}
	out := applyPriorities(tenants, profs, 1)
	if out[0].Priority <= out[1].Priority {
		t.Fatalf("positive exponent must favor the short tenant: %v vs %v",
			out[0].Priority, out[1].Priority)
	}
	neg := applyPriorities(tenants, profs, -1)
	if neg[0].Priority >= neg[1].Priority {
		t.Fatalf("negative exponent must favor the long tenant: %v vs %v",
			neg[0].Priority, neg[1].Priority)
	}
	for _, w := range []float64{-0.5, 0.25, 1, 3} {
		for i, tw := range applyPriorities(tenants, profs, w) {
			if !(tw.Priority > 0) || math.IsInf(tw.Priority, 0) ||
				tw.Priority < 1.0/64 || tw.Priority > 64 {
				t.Fatalf("w=%v tenant %d: priority %v outside the clamp", w, i, tw.Priority)
			}
		}
	}
	if tenants[0].Priority != 1 {
		t.Fatal("applyPriorities mutated the caller's workloads")
	}
}

func TestPriorityExponentChangesSchedule(t *testing.T) {
	// Size-contrasted tenants: mixedTenants' SA/VU mirror images share one
	// service estimate, so the bias would be uniform (a no-op by design).
	tenants := func() []*trace.Workload {
		return []*trace.Workload{
			synthetic("small0", 500, 500, 2),
			synthetic("big0", 8000, 8000, 12),
			synthetic("small1", 500, 500, 2),
			synthetic("big1", 8000, 8000, 12),
		}
	}
	o := quickOptions()
	base, err := Run(tenants(), o)
	if err != nil {
		t.Fatal(err)
	}
	// A positive exponent only amplifies the short tenant's existing arp
	// advantage; favoring the *long* tenant is what flips decisions.
	o.PriorityExponent = -1
	biased, err := Run(tenants(), o)
	if err != nil {
		t.Fatal(err)
	}
	bj, _ := json.Marshal(base.Tenants)
	pj, _ := json.Marshal(biased.Tenants)
	if string(bj) == string(pj) {
		t.Fatal("PriorityExponent -1 left every tenant outcome identical — knob is not wired")
	}
}

// TestFeedbackShrinksCalibrationDrift is the satellite-2 regression: under
// collocation the serial profile over-estimates service, so the dispatcher's
// predicted latencies start far from the realized ones; the feedback loop's
// calibrated booking must close the gap monotonically enough that the final
// round's drift beats round 0 and the attainment signal stands on realized
// latency.
func TestFeedbackShrinksCalibrationDrift(t *testing.T) {
	o := quickOptions()
	o.FeedbackRounds = 2
	res, err := Run(mixedTenants(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Calibration) != 3 {
		t.Fatalf("got %d calibration rounds, want 3", len(res.Calibration))
	}
	first, last := res.Calibration[0], res.Calibration[2]
	if first.Drift <= 0 {
		t.Fatalf("round-0 drift %v — scenario has no estimate error to calibrate away", first.Drift)
	}
	if last.Drift >= first.Drift {
		t.Fatalf("calibration drift did not shrink: round 0 %.4f → round 2 %.4f",
			first.Drift, last.Drift)
	}
	for _, ts := range res.Tenants {
		if ts.Admitted > 0 && ts.EstAvgLatencyCycles <= 0 {
			t.Fatalf("tenant %d admitted %d requests but has no predicted latency",
				ts.Tenant, ts.Admitted)
		}
	}
	for t2, s := range last.Scales {
		if !(s > 0) || math.IsInf(s, 0) {
			t.Fatalf("tenant %d: non-finite calibration scale %v", t2, s)
		}
	}
}

func TestFeedbackZeroRoundsUnchanged(t *testing.T) {
	o := quickOptions()
	res, err := Run(mixedTenants(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Calibration != nil {
		t.Fatal("FeedbackRounds 0 must not record calibration rounds")
	}
}

func TestFeedbackDeterministic(t *testing.T) {
	run := func(par int) string {
		o := quickOptions()
		o.FeedbackRounds = 1
		o.Parallel = par
		res, err := Run(mixedTenants(), o)
		if err != nil {
			t.Fatal(err)
		}
		j, _ := json.Marshal(res)
		return string(j)
	}
	if run(1) != run(4) {
		t.Fatal("feedback runs are not bit-identical across parallel widths")
	}
}
