package fleet

import (
	"testing"

	"v10/internal/obs"
	"v10/internal/simcheck"
	"v10/internal/trace"
)

// specPairs mirrors the synthetic() workload shapes as simcheck WorkloadSpecs
// so the invariant checker can derive each core's expected operator streams
// independently of the runner.
func specFor(name string, saLen, vuLen int64, pairs int) simcheck.WorkloadSpec {
	spec := simcheck.WorkloadSpec{Name: name, Priority: 1}
	for i := 0; i < pairs; i++ {
		spec.Ops = append(spec.Ops,
			simcheck.OpSpec{Kind: "SA", Compute: saLen},
			simcheck.OpSpec{Kind: "VU", Compute: vuLen})
	}
	return spec
}

// oracleTenants pairs each fleet tenant with its independently-derived spec.
func oracleTenants() ([]*trace.Workload, []simcheck.WorkloadSpec) {
	type shape struct {
		name   string
		sa, vu int64
		pairs  int
	}
	shapes := []shape{
		{"sa0", 4000, 10, 6},
		{"vu0", 10, 4000, 6},
		{"sa1", 3000, 20, 5},
		{"vu1", 20, 3000, 5},
	}
	ws := make([]*trace.Workload, len(shapes))
	specs := make([]simcheck.WorkloadSpec, len(shapes))
	for i, s := range shapes {
		ws[i] = synthetic(s.name, s.sa, s.vu, s.pairs)
		specs[i] = specFor(s.name, s.sa, s.vu, s.pairs)
	}
	return ws, specs
}

// TestFleetPassesSimcheckOracles rides a simcheck.Checker on every core of a
// fleet run through the CoreTracer hook: each core's event stream must satisfy
// the full invariant suite (wall-cycle partition per FU, every dispatched
// operator completes or resumes exactly once, ActiveCycles equals the traced
// run segments) against operator streams derived independently from the specs.
func TestFleetPassesSimcheckOracles(t *testing.T) {
	tenants, specs := oracleTenants()
	checkers := map[int]*simcheck.Checker{}

	o := quickOptions()
	o.CoreTracer = func(core int, roster []int) obs.Tracer {
		sc := &simcheck.Scenario{
			Config:        o.Config,
			ArrivalRateHz: 1, // marker: open-loop serving, no latency telescoping
		}
		for _, tnt := range roster {
			sc.Workloads = append(sc.Workloads, specs[tnt])
		}
		checkers[core] = simcheck.NewChecker(sc, o.Scheme, false)
		return checkers[core]
	}
	res, err := Run(tenants, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(checkers) == 0 {
		t.Fatal("CoreTracer was never invoked")
	}
	for core, ck := range checkers {
		for _, p := range ck.Finalize(res.Cores[core].Run, nil) {
			t.Errorf("core %d: %s", core, p)
		}
	}

	// Conservation across the fleet: every offered request completes or sheds
	// exactly once, and fleet throughput is exactly the sum of the per-core
	// cycle-accurate results.
	if res.Offered != res.Completed+res.Shed {
		t.Fatalf("offered %d != completed %d + shed %d", res.Offered, res.Completed, res.Shed)
	}
	var coreRequests int
	for _, cr := range res.Cores {
		if cr.Run == nil {
			continue
		}
		for _, wl := range cr.Run.Workloads {
			coreRequests += wl.Requests
		}
	}
	if coreRequests != res.Completed {
		t.Fatalf("Σ per-core requests %d != fleet completed %d", coreRequests, res.Completed)
	}

	// Per-core wall-cycle sanity: the fleet's makespan is its slowest core.
	var slowest int64
	for _, cr := range res.Cores {
		if cr.Run != nil && cr.Run.TotalCycles > slowest {
			slowest = cr.Run.TotalCycles
		}
	}
	if res.TotalCycles != slowest {
		t.Fatalf("TotalCycles %d != slowest core %d", res.TotalCycles, slowest)
	}
}

// TestFleetOraclesAllSchemes repeats the checker ride-along on every per-core
// scheduler scheme the fleet supports.
func TestFleetOraclesAllSchemes(t *testing.T) {
	for _, scheme := range []string{"V10-Base", "V10-Fair", "V10-Full", "PMT"} {
		t.Run(scheme, func(t *testing.T) {
			tenants, specs := oracleTenants()
			checkers := map[int]*simcheck.Checker{}
			o := quickOptions()
			o.Scheme = scheme
			o.CoreTracer = func(core int, roster []int) obs.Tracer {
				sc := &simcheck.Scenario{Config: o.Config, ArrivalRateHz: 1}
				for _, tnt := range roster {
					sc.Workloads = append(sc.Workloads, specs[tnt])
				}
				checkers[core] = simcheck.NewChecker(sc, scheme, false)
				return checkers[core]
			}
			res, err := Run(tenants, o)
			if err != nil {
				t.Fatal(err)
			}
			for core, ck := range checkers {
				for _, p := range ck.Finalize(res.Cores[core].Run, nil) {
					t.Errorf("core %d: %s", core, p)
				}
			}
			// PMT serves closed-loop: completions may exceed admissions on the
			// raw per-core results, but tenant stats must stay capped.
			for _, ts := range res.Tenants {
				if ts.Completed > ts.Admitted {
					t.Errorf("tenant %d completed %d > admitted %d", ts.Tenant, ts.Completed, ts.Admitted)
				}
			}
		})
	}
}
