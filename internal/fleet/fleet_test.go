package fleet

import (
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"testing"

	"v10/internal/collocate"
	"v10/internal/mathx"
	"v10/internal/metrics"
	"v10/internal/npu"
	"v10/internal/sched"
	"v10/internal/trace"
	"v10/internal/workload"
)

var cfg = npu.DefaultConfig()

// synthetic builds a deterministic workload: pairs alternating SA/VU ops.
func synthetic(name string, saLen, vuLen int64, pairs int) *trace.Workload {
	return trace.NewWorkload(name, name, 1, func(int) *trace.Graph {
		g := &trace.Graph{}
		for i := 0; i < pairs; i++ {
			sa := trace.Op{ID: len(g.Ops), Kind: trace.KindSA, Compute: saLen}
			if len(g.Ops) > 0 {
				sa.Deps = []int{len(g.Ops) - 1}
			}
			g.Ops = append(g.Ops, sa)
			g.Ops = append(g.Ops, trace.Op{
				ID: len(g.Ops), Kind: trace.KindVU, Compute: vuLen,
				Deps: []int{len(g.Ops) - 1},
			})
		}
		return g
	})
}

// mixedTenants is two SA-heavy and two VU-heavy synthetic tenants, enough
// contrast for every placement policy to act on.
func mixedTenants() []*trace.Workload {
	return []*trace.Workload{
		synthetic("sa0", 4000, 10, 6),
		synthetic("vu0", 10, 4000, 6),
		synthetic("sa1", 4000, 10, 6),
		synthetic("vu1", 10, 4000, 6),
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"advisor", PolicyAdvisor, true},
		{"least-loaded", PolicyLeastLoaded, true},
		{"random", PolicyRandom, true},
		{"", "", false},
		{"Advisor", "", false},
		{"round-robin", "", false},
	} {
		got, err := ParsePolicy(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParsePolicy(%q) = %q, %v; want %q, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
}

func TestOptionValidation(t *testing.T) {
	base := Options{Config: cfg}
	for _, tc := range []struct {
		name   string
		mutate func(*Options)
	}{
		{"negative cores", func(o *Options) { o.Cores = -1 }},
		{"unknown scheme", func(o *Options) { o.Scheme = "V11" }},
		{"unknown policy", func(o *Options) { o.Policy = "greedy" }},
		{"advisor without model", func(o *Options) { o.Policy = PolicyAdvisor }},
		{"negative rate", func(o *Options) { o.RateHz = -5 }},
		{"NaN rate", func(o *Options) { o.RateHz = math.NaN() }},
		{"negative duration", func(o *Options) { o.DurationCycles = -1 }},
		{"negative queue limit", func(o *Options) { o.QueueLimit = -2 }},
		{"negative SLO factor", func(o *Options) { o.SLOFactor = -1 }},
	} {
		o := base
		tc.mutate(&o)
		if _, err := Run(mixedTenants(), o); err == nil {
			t.Errorf("%s: Run accepted invalid options", tc.name)
		}
	}
	if _, err := Run(nil, base); err == nil {
		t.Error("Run accepted an empty tenant set")
	}
}

func TestPlaceLeastLoadedBalances(t *testing.T) {
	// LPT greedy over estimates {100, 90, 10, 10} on 2 cores: heaviest first,
	// always onto the lighter core, ties by index.
	profs := []tenantProfile{{estCycles: 100}, {estCycles: 90}, {estCycles: 10}, {estCycles: 10}}
	homes := place(profs, Options{Cores: 2, Policy: PolicyLeastLoaded}, nil)
	want := [][]int{{0, 3}, {1, 2}}
	if !reflect.DeepEqual(homes, want) {
		t.Fatalf("placement = %v, want %v", homes, want)
	}
}

func TestPlaceRandomCoversAllTenants(t *testing.T) {
	profs := make([]tenantProfile, 9)
	o := Options{Cores: 3, Policy: PolicyRandom, Seed: 7}
	h1 := place(profs, o, newPlacementRNG(o))
	h2 := place(profs, o, newPlacementRNG(o))
	if !reflect.DeepEqual(h1, h2) {
		t.Fatalf("same seed placed differently: %v vs %v", h1, h2)
	}
	seen := make([]int, len(profs))
	for _, group := range h1 {
		for _, tnt := range group {
			seen[tnt]++
		}
	}
	for tnt, n := range seen {
		if n != 1 {
			t.Fatalf("tenant %d placed %d times in %v", tnt, n, h1)
		}
	}
}

// trainTestModel trains a collocation model on the mixed tenant set with a
// fixed pair-performance function: mixed SA/VU pairs are strongly beneficial
// (1.6×), same-kind pairs are not (1.0× < the 1.3× threshold).
func trainTestModel(t *testing.T, tenants []*trace.Workload) *collocate.Model {
	t.Helper()
	feats := make([]collocate.Features, len(tenants))
	for i, w := range tenants {
		feats[i] = collocate.ExtractFeatures(w, cfg, 2)
	}
	perf := func(a, b *trace.Workload) (float64, error) {
		if (a.Name[:2] == "sa") == (b.Name[:2] == "sa") {
			return 1.0, nil
		}
		return 1.6, nil
	}
	m, err := collocate.Train(tenants, feats, perf, collocate.TrainConfig{K: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestPlaceAdvisorPairsCompatibleTenants(t *testing.T) {
	tenants := mixedTenants()
	model := trainTestModel(t, tenants)
	o := Options{Config: cfg, Cores: 2, Policy: PolicyAdvisor, Model: model, ProfileRequests: 2}
	o, err := o.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	profs := profileTenants(tenants, o)
	feats := features(profs)
	// Model sanity first: the fake perf function must survive training.
	if fit := model.GroupFit(feats, []int{0}, 1); fit <= 0 {
		t.Fatalf("mixed pair predicted incompatible (fit %v)", fit)
	}
	if fit := model.GroupFit(feats, []int{0}, 2); fit > 0 {
		t.Fatalf("same-kind pair predicted compatible (fit %v)", fit)
	}
	homes := place(profs, o, newPlacementRNG(o))
	for c, group := range homes {
		if len(group) != 2 {
			t.Fatalf("core %d hosts %v, want exactly 2 tenants (placement %v)", c, group, homes)
		}
		// Tenants 0,2 are SA-heavy; 1,3 VU-heavy. Each core must mix kinds.
		sa := 0
		for _, tnt := range group {
			if tnt%2 == 0 {
				sa++
			}
		}
		if sa != 1 {
			t.Fatalf("core %d hosts %v — same-kind pairing despite advisor (placement %v)", c, group, homes)
		}
	}
}

func TestCoreQueueAdmitAndDrain(t *testing.T) {
	var q coreQueue
	q.admit(0, 100, 0)
	q.admit(0, 100, 1)
	want := []queueEntry{{done: 100, tenant: 0}, {done: 200, tenant: 1}}
	if q.busyTil != 200 || !reflect.DeepEqual(q.pending, want) {
		t.Fatalf("after two admits: busyTil %d pending %v", q.busyTil, q.pending)
	}
	q.drain(150)
	if !reflect.DeepEqual(q.pending, want[1:]) {
		t.Fatalf("after drain(150): pending %v", q.pending)
	}
	// A zero-cost admit still occupies at least one cycle.
	q.drain(1000)
	q.admit(1000, 0, 0)
	if len(q.pending) != 1 || q.pending[0].done != 1001 {
		t.Fatalf("zero-cost admit: pending %v", q.pending)
	}
}

// floodArrivals is n back-to-back arrivals of tenant 0 at cycles 1..n.
func floodArrivals(n int) []arrival {
	out := make([]arrival, n)
	for i := range out {
		out[i] = arrival{at: int64(i + 1), tenant: 0}
	}
	return out
}

func TestDispatchEnforcesQueueBound(t *testing.T) {
	// One core, queue bound 3, service estimates too large to drain: of six
	// back-to-back arrivals exactly 3 are admitted and 3 shed.
	o := Options{Cores: 1, QueueLimit: 3, Policy: PolicyLeastLoaded}
	profs := []tenantProfile{{estCycles: 1e12}}
	disp := dispatch(nil, floodArrivals(6), [][]int{{0}}, profs, o)
	if got := len(disp.admitted[0][0]); got != 3 {
		t.Fatalf("admitted %d, want 3", got)
	}
	if disp.shed[0] != 3 || disp.spilled[0] != 0 || disp.offered[0] != 6 {
		t.Fatalf("shed %d spilled %d offered %d, want 3/0/6",
			disp.shed[0], disp.spilled[0], disp.offered[0])
	}
}

func TestDispatchSpillsThenSheds(t *testing.T) {
	// Two cores with bound 1: the second arrival spills to the empty peer,
	// the third sheds. NoSpill sheds immediately instead.
	o := Options{Cores: 2, QueueLimit: 1, Policy: PolicyLeastLoaded}
	profs := []tenantProfile{{estCycles: 1e12}, {estCycles: 1e12}}
	homes := [][]int{{0}, {1}}
	disp := dispatch(nil, floodArrivals(3), homes, profs, o)
	if !reflect.DeepEqual(disp.admitted[0][0], []int64{1}) ||
		!reflect.DeepEqual(disp.admitted[1][0], []int64{2}) {
		t.Fatalf("admitted = %v", disp.admitted)
	}
	if disp.spilled[0] != 1 || disp.shed[0] != 1 {
		t.Fatalf("spilled %d shed %d, want 1/1", disp.spilled[0], disp.shed[0])
	}

	o.NoSpill = true
	disp = dispatch(nil, floodArrivals(3), homes, profs, o)
	if disp.spilled[0] != 0 || disp.shed[0] != 2 {
		t.Fatalf("NoSpill: spilled %d shed %d, want 0/2", disp.spilled[0], disp.shed[0])
	}
}

func TestDispatchDrainsFinishedWork(t *testing.T) {
	// Small service estimates and spaced arrivals: the virtual queue drains
	// between arrivals, so nothing sheds despite a bound of 1.
	o := Options{Cores: 1, QueueLimit: 1, Policy: PolicyLeastLoaded}
	profs := []tenantProfile{{estCycles: 10}}
	arrivals := []arrival{{at: 0, tenant: 0}, {at: 100, tenant: 0}, {at: 200, tenant: 0}}
	disp := dispatch(nil, arrivals, [][]int{{0}}, profs, o)
	if disp.shed[0] != 0 || len(disp.admitted[0][0]) != 3 {
		t.Fatalf("shed %d admitted %d, want 0/3", disp.shed[0], len(disp.admitted[0][0]))
	}
}

func TestGenArrivalsWindowAndOrdering(t *testing.T) {
	o, err := Options{Config: cfg, RateHz: 5000, DurationCycles: 2_000_000, Seed: 11}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	arrivals := genArrivals(3, o)
	if len(arrivals) == 0 {
		t.Fatal("no arrivals generated")
	}
	prev := int64(-1)
	for _, a := range arrivals {
		if a.at < 0 || a.at >= o.DurationCycles {
			t.Fatalf("arrival at %d outside [0, %d)", a.at, o.DurationCycles)
		}
		if a.at < prev {
			t.Fatalf("arrivals out of order: %d after %d", a.at, prev)
		}
		prev = a.at
	}
	// Per-tenant streams are independent of fleet size: tenant 0's stream in
	// a 1-tenant fleet equals its stream in the 3-tenant fleet.
	solo := genArrivals(1, o)
	var t0 []arrival
	for _, a := range arrivals {
		if a.tenant == 0 {
			t0 = append(t0, a)
		}
	}
	if !reflect.DeepEqual(solo, t0) {
		t.Fatal("tenant 0's arrival stream depends on fleet size")
	}
}

// quickOptions is a small but non-trivial fleet configuration: high rate over
// a short window so a handful of requests queue and complete fast.
func quickOptions() Options {
	return Options{
		Config:         cfg,
		Cores:          2,
		Policy:         PolicyLeastLoaded,
		RateHz:         3000,
		DurationCycles: 3_000_000,
		Seed:           5,
	}
}

func TestRunDeterministicAcrossParallelWidths(t *testing.T) {
	results := make([]*Result, 3)
	for i, par := range []int{1, 4, 0} {
		o := quickOptions()
		o.Parallel = par
		res, err := Run(mixedTenants(), o)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	want, err := json.Marshal(results[0])
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results[1:] {
		got, _ := json.Marshal(res)
		if string(got) != string(want) {
			t.Fatalf("Parallel width changed the result (run %d):\n%s\nvs\n%s", i+1, got, want)
		}
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatal("results differ outside the JSON projection (per-core RunResults)")
	}
}

func TestRunAccounting(t *testing.T) {
	res, err := Run(mixedTenants(), quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	if res.Offered == 0 {
		t.Fatal("no offered requests — load too low to test anything")
	}
	var offered, admitted, shed, completed, good int
	for _, ts := range res.Tenants {
		if ts.Offered != ts.Admitted+ts.Shed {
			t.Fatalf("tenant %d: offered %d != admitted %d + shed %d",
				ts.Tenant, ts.Offered, ts.Admitted, ts.Shed)
		}
		// V10 cores run every admitted request to completion.
		if ts.Completed != ts.Admitted {
			t.Fatalf("tenant %d: completed %d != admitted %d", ts.Tenant, ts.Completed, ts.Admitted)
		}
		if ts.Good > ts.Completed {
			t.Fatalf("tenant %d: good %d > completed %d", ts.Tenant, ts.Good, ts.Completed)
		}
		offered += ts.Offered
		admitted += ts.Admitted
		shed += ts.Shed
		completed += ts.Completed
		good += ts.Good
	}
	if res.Offered != offered || res.Admitted != admitted || res.Shed != shed ||
		res.Completed != completed || res.Good != good {
		t.Fatalf("aggregates %d/%d/%d/%d/%d don't match tenant sums %d/%d/%d/%d/%d",
			res.Offered, res.Admitted, res.Shed, res.Completed, res.Good,
			offered, admitted, shed, completed, good)
	}
	var coreAdmitted int
	for _, cr := range res.Cores {
		coreAdmitted += cr.Admitted
	}
	if coreAdmitted != res.Admitted {
		t.Fatalf("Σ core admitted %d != fleet admitted %d", coreAdmitted, res.Admitted)
	}
}

func TestTenantStatsPercentileFixture(t *testing.T) {
	// Hand-computed: latencies {100, 200, 1000}, SLO 5×100 = 500 → 2 good;
	// p95 = 200·0.1 + 1000·0.9 = 920; p99 = 200·0.02 + 1000·0.98 = 984;
	// window 700e6 cycles at 700 MHz = 1 s → goodput 2 req/s.
	o, err := Options{Config: cfg, Cores: 1, SLOFactor: 5, DurationCycles: 700_000_000}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	tenants := []*trace.Workload{synthetic("w", 10, 10, 1)}
	profs := []tenantProfile{{estCycles: 100}}
	homes := [][]int{{0}}
	disp := &dispatchOutcome{
		admitted: [][][]int64{{{0, 1, 2}}},
		spilled:  []int{0}, shed: []int{1}, offered: []int{4},
	}
	jobs := []coreJob{{roster: []int{0}, targets: []int{3}, admitted: 3}}
	outs := []*coreOut{{res: &metrics.RunResult{
		Workloads: []*metrics.WorkloadStats{{LatencyCycles: []float64{100, 200, 1000}}},
	}}}
	stats := tenantStats(tenants, profs, homes, disp, jobs, outs, o)
	ts := stats[0]
	check := func(name string, got, want float64) {
		t.Helper()
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
	if ts.Completed != 3 || ts.Good != 2 || ts.Shed != 1 || ts.Admitted != 3 {
		t.Fatalf("counts: completed %d good %d shed %d admitted %d",
			ts.Completed, ts.Good, ts.Shed, ts.Admitted)
	}
	check("SLOCycles", ts.SLOCycles, 500)
	check("avg", ts.AvgLatencyCycles, (100+200+1000)/3.0)
	check("p95", ts.P95LatencyCycles, 920)
	check("p99", ts.P99LatencyCycles, 984)
	check("goodput", ts.GoodputHz, 2)
	check("shed rate", ts.ShedRate, 0.25)
}

func TestRunPMTScheme(t *testing.T) {
	o := quickOptions()
	o.Scheme = "PMT"
	res, err := Run(mixedTenants(), o)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range res.Tenants {
		// PMT closed-loop overshoot must be capped to the admitted count.
		if ts.Completed > ts.Admitted {
			t.Fatalf("tenant %d: completed %d > admitted %d", ts.Tenant, ts.Completed, ts.Admitted)
		}
	}
	if res.Completed == 0 {
		t.Fatal("PMT fleet completed nothing")
	}
}

// newPlacementRNG mirrors Run's placement RNG derivation for direct place()
// tests.
func newPlacementRNG(o Options) *mathx.RNG { return mathx.NewRNG(o.Seed + 0x9f1e) }

// TestGenArrivalsRealizedRate is the satellite-1 regression: the old
// truncate-and-clamp gap draw inflated the realized rate above RateHz
// (≈ +11% at a 3-cycle mean gap). Float64 accumulation must track nominal.
func TestGenArrivalsRealizedRate(t *testing.T) {
	for _, tc := range []struct {
		name    string
		rateHz  float64
		tenants int
		tol     float64
	}{
		{"serving regime", 5000, 16, 0.03},
		// Mean gap 700e6/233e6 ≈ 3 cycles: deep in the old clamp's bias
		// regime, where truncation alone added ~10%.
		{"cycle-scale gaps", 233e6, 2, 0.01},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o, err := Options{Config: cfg, RateHz: tc.rateHz, DurationCycles: 2_000_000, Seed: 3}.withDefaults()
			if err != nil {
				t.Fatal(err)
			}
			got := float64(len(genArrivals(tc.tenants, o)))
			want := tc.rateHz / cfg.FrequencyHz * float64(o.DurationCycles) * float64(tc.tenants)
			if rel := (got - want) / want; rel < -tc.tol || rel > tc.tol {
				t.Errorf("realized %v arrivals, want %v ±%v%% (rel err %+.4f)",
					got, want, 100*tc.tol, rel)
			}
		})
	}
}

func TestArrivalsOptionValidation(t *testing.T) {
	base := quickOptions()
	base.RateHz = 0

	o := base
	o.Arrivals = [][]int64{{0, 100}, {50}, {}, {200}}
	o.RateHz = 60
	var ae *sched.ArrivalError
	if _, err := Run(mixedTenants(), o); !errors.As(err, &ae) || ae.Workload != -1 {
		t.Fatalf("Arrivals+RateHz: err = %v, want option-level *sched.ArrivalError", err)
	}

	o = base
	o.Arrivals = [][]int64{{0, 100}, {50, 20}, {}, {200}}
	if _, err := Run(mixedTenants(), o); !errors.As(err, &ae) || ae.Workload != 1 || ae.Index != 1 {
		t.Fatalf("decreasing schedule: err = %v, want *sched.ArrivalError{1, 1}", err)
	}

	o = base
	o.Arrivals = [][]int64{{-5}, {}, {}, {}}
	if _, err := Run(mixedTenants(), o); !errors.As(err, &ae) || ae.Value != -5 {
		t.Fatalf("negative arrival: err = %v, want *sched.ArrivalError{Value: -5}", err)
	}

	o = base
	o.Arrivals = [][]int64{{0}}
	if _, err := Run(mixedTenants(), o); !errors.As(err, &ae) || ae.Workload != -1 {
		t.Fatalf("length mismatch: err = %v, want option-level *sched.ArrivalError", err)
	}
}

// TestArrivalsDriveFleet runs explicit schedules end-to-end: offered counts
// match the schedules exactly (no Poisson draw anywhere), an empty schedule
// is a legal idle tenant, and the run is deterministic.
func TestArrivalsDriveFleet(t *testing.T) {
	o := quickOptions()
	o.RateHz = 0
	o.Arrivals = [][]int64{
		{0, 400_000, 800_000, 1_200_000},
		{100_000, 500_000},
		{},
		{250_000, 250_000, 900_000},
	}
	res, err := Run(mixedTenants(), o)
	if err != nil {
		t.Fatal(err)
	}
	for tn, want := range []int{4, 2, 0, 3} {
		if got := res.Tenants[tn].Offered; got != want {
			t.Errorf("tenant %d offered %d requests, want %d", tn, got, want)
		}
	}
	if res.Completed == 0 || res.Completed != res.Admitted {
		t.Errorf("completed %d of %d admitted — schedules should drain fully", res.Completed, res.Admitted)
	}
	res2, err := Run(mixedTenants(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalCycles != res2.TotalCycles || !reflect.DeepEqual(res.Tenants, res2.Tenants) {
		t.Fatal("explicit-arrivals fleet run is nondeterministic")
	}
}

// TestWorkloadEngineFeedsFleet wires workload.Engine schedules into the
// fleet — the tentpole's integration seam.
func TestWorkloadEngineFeedsFleet(t *testing.T) {
	o := quickOptions()
	o.RateHz = 0
	eng := workload.Engine{Config: cfg, HorizonCycles: o.DurationCycles, Seed: o.Seed}
	specs := []workload.Spec{
		{Process: workload.Poisson, RateHz: 2000},
		{Process: workload.MMPP, RateHz: 2000},
		{Process: workload.Diurnal, RateHz: 2000},
		{Process: workload.Uniform, RateHz: 2000, StartCycle: 1_000_000},
	}
	arr, err := eng.Schedules(specs)
	if err != nil {
		t.Fatal(err)
	}
	o.Arrivals = arr
	res, err := Run(mixedTenants(), o)
	if err != nil {
		t.Fatal(err)
	}
	for tn := range specs {
		if res.Tenants[tn].Offered != len(arr[tn]) {
			t.Errorf("tenant %d offered %d, want schedule length %d",
				tn, res.Tenants[tn].Offered, len(arr[tn]))
		}
	}
}
