package fleet

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sort"

	"v10/internal/baseline"
	"v10/internal/ctlplane"
	"v10/internal/faults"
	"v10/internal/mathx"
	"v10/internal/metrics"
	"v10/internal/obs"
	"v10/internal/parallel"
	"v10/internal/sched"
	"v10/internal/trace"
	"v10/internal/vnpu"
)

// TenantStats is one tenant's serving outcome across the whole fleet.
type TenantStats struct {
	Tenant int    `json:"tenant"`
	Name   string `json:"name"`
	Home   int    `json:"home_core"`

	Offered   int `json:"offered"`   // arrivals the front end saw
	Admitted  int `json:"admitted"`  // requests admitted (home + spill)
	Spilled   int `json:"spilled"`   // admitted on a non-home core
	Shed      int `json:"shed"`      // rejected by admission control
	Completed int `json:"completed"` // served by a core simulation
	Good      int `json:"good"`      // completed within the SLO

	// Recovery metrics (fault injection; zero — and omitted from JSON —
	// without failures). Migrated counts migration landings, MigrationShed
	// the victims dropped after exhausting their retry budget (already
	// included in Shed), MigrationCycles the summed detection-to-landing
	// delay, and CheckpointCycles the summed §3.3 context-save costs charged
	// for this tenant's in-flight operators on dying cores.
	Migrated         int   `json:"migrated,omitempty"`
	MigrationShed    int   `json:"migration_shed,omitempty"`
	MigrationCycles  int64 `json:"migration_cycles,omitempty"`
	CheckpointCycles int64 `json:"checkpoint_cycles,omitempty"`

	// Elastic-drain metrics (autoscaling; zero without scale-downs). Drained
	// counts this tenant's requests evicted by core drains, Readmitted the
	// drained victims that landed on a surviving core, DrainShed the drained
	// victims dropped after exhausting retries (already included in Shed).
	Drained    int `json:"drained,omitempty"`
	Readmitted int `json:"readmitted,omitempty"`
	DrainShed  int `json:"drain_shed,omitempty"`

	SLOCycles        float64 `json:"slo_cycles"`
	AvgLatencyCycles float64 `json:"avg_latency_cycles"`
	// EstAvgLatencyCycles is the dispatcher's mean *predicted* latency over
	// this tenant's admissions (booked completion minus arrival, carried debt
	// included) — comparing it against AvgLatencyCycles measures how far the
	// estimate-driven front end is from ground truth, and the FeedbackRounds
	// calibration loop shrinks exactly that gap.
	EstAvgLatencyCycles float64 `json:"est_avg_latency_cycles,omitempty"`
	P95LatencyCycles float64 `json:"p95_latency_cycles"`
	P99LatencyCycles float64 `json:"p99_latency_cycles"`
	GoodputHz        float64 `json:"goodput_hz"` // SLO-compliant req/s over the arrival window
	ShedRate         float64 `json:"shed_rate"`  // shed / offered

	// Windows buckets completions by completion cycle into
	// StatsWindowCycles-sized windows, each annotated with the cores active
	// during it — goodput attribution that survives mid-run scale events.
	// Nil unless Options.StatsWindowCycles > 0.
	Windows []TenantWindow `json:"windows,omitempty"`
}

// TenantWindow is one tenant's serving outcome inside one stats window.
type TenantWindow struct {
	Window      int   `json:"window"`
	StartCycle  int64 `json:"start_cycle"`
	EndCycle    int64 `json:"end_cycle"`
	ActiveCores int   `json:"active_cores"` // cores with an activity span overlapping the window
	Completed   int   `json:"completed"`    // completions attributed to the window
	Good        int   `json:"good"`
	// GoodputHz is the window's SLO-compliant rate; GoodputPerCoreHz divides
	// it by the window's active core count, the honest per-capacity number.
	GoodputHz        float64 `json:"goodput_hz"`
	GoodputPerCoreHz float64 `json:"goodput_per_core_hz"`
}

// CoreSpan is one contiguous activity interval of a core: [StartCycle,
// EndCycle) within the arrival window. Static fleets have one full-length
// span per core; autoscaled cores accumulate one span per activation.
type CoreSpan struct {
	Core       int   `json:"core"`
	StartCycle int64 `json:"start_cycle"`
	EndCycle   int64 `json:"end_cycle"`
}

// ControlOutcome is the elastic control plane's run record: every window
// signal, every decision, the per-core activity spans, and the drain/
// recluster tallies the oracles cross-check.
type ControlOutcome struct {
	MinCores       int   `json:"min_cores"`
	MaxCores       int   `json:"max_cores"`
	IntervalCycles int64 `json:"interval_cycles"`
	// Config is the fully resolved control policy the run used — the
	// discipline oracle replays decisions against exactly these parameters.
	Config ctlplane.Config `json:"config"`

	FinalActiveCores int `json:"final_active_cores"`
	PeakActiveCores  int `json:"peak_active_cores"`

	ScaleUps     int `json:"scale_ups"`
	ScaleDowns   int `json:"scale_downs"`
	DrainVictims int `json:"drain_victims"`
	Readmitted   int `json:"readmitted"`
	DrainShed    int `json:"drain_shed"`
	Reclusters   int `json:"reclusters"`
	// ModelDrift is the cumulative centroid movement the online re-clustering
	// accumulated (0 without Recluster).
	ModelDrift float64 `json:"model_drift,omitempty"`

	Windows   []ctlplane.WindowSignal `json:"windows"`
	Decisions []ctlplane.Decision     `json:"decisions"`
	CoreSpans []CoreSpan              `json:"core_spans"`
	// ObservedTenants lists, per window, the tenants folded into the
	// collocation model (Recluster only) — the recluster-consistency oracle
	// replays them against a fresh clone.
	ObservedTenants [][]int `json:"observed_tenants,omitempty"`
}

// CoreResult is one core's simulation outcome.
type CoreResult struct {
	Core     int   `json:"core"`
	Tenants  []int `json:"tenants"` // roster: residents first, spill sources after
	Admitted int   `json:"admitted"`
	// SliceOf maps roster entries to their vNPU slice indices and Slices
	// carries the core's per-slice enforcement statistics; both are nil
	// unless the fleet ran spatially partitioned (Options.VNPUTemplates).
	SliceOf []int             `json:"slice_of,omitempty"`
	Slices  []vnpu.SliceStats `json:"slices,omitempty"`
	// Run holds the core's cycle-accurate measurements; nil when the core
	// had no tenants. Cycle-capped cores keep their partial measurements
	// (the joined error identifies them).
	Run *metrics.RunResult `json:"-"`
}

// Result is a whole fleet run.
type Result struct {
	Scheme         string        `json:"scheme"`
	Policy         Policy        `json:"policy"`
	Placement      [][]int       `json:"placement"` // home tenants per core
	DurationCycles int64         `json:"duration_cycles"`
	TotalCycles    int64         `json:"total_cycles"` // slowest core's finish
	Cores          []CoreResult  `json:"cores"`
	Tenants        []TenantStats `json:"tenants"`

	Offered   int     `json:"offered"`
	Admitted  int     `json:"admitted"`
	Shed      int     `json:"shed"`
	Completed int     `json:"completed"`
	Good      int     `json:"good"`
	GoodputHz float64 `json:"goodput_hz"`
	ShedRate  float64 `json:"shed_rate"`

	// ProvisionedCoreCycles sums every core's activity spans over the arrival
	// window — the capacity actually paid for. A static fleet provisions
	// Cores × DurationCycles; an autoscaled one only the spans its control
	// plane kept active. The elastic experiment's efficiency claim is
	// denominated in this.
	ProvisionedCoreCycles int64 `json:"provisioned_core_cycles"`

	// Fault-injection outcome (omitted from JSON on fault-free runs).
	FailedCores     []int `json:"failed_cores,omitempty"` // detection order
	Migrated        int   `json:"migrated,omitempty"`
	MigrationShed   int   `json:"migration_shed,omitempty"`
	MigrationCycles int64 `json:"migration_cycles,omitempty"`

	// Control is the elastic control plane's run record (nil on static runs).
	Control *ControlOutcome `json:"control,omitempty"`

	// Calibration records the realized-latency feedback trajectory, one entry
	// per pass (nil without Options.FeedbackRounds). The final entry belongs
	// to the pass this Result measures.
	Calibration []CalibrationRound `json:"calibration,omitempty"`
}

// CalibrationRound is one pass of the realized-latency feedback loop.
type CalibrationRound struct {
	Round int `json:"round"`
	// Drift is the mean relative gap between the dispatcher's predicted and
	// the realized per-tenant mean latency: mean over served tenants of
	// |est − real| / real. The feedback regression test pins that it shrinks.
	Drift float64 `json:"drift"`
	// Scales are the per-tenant booking-estimate multipliers this pass ran
	// with (all 1 on round 0).
	Scales []float64 `json:"scales"`
}

// coreJob is one core's prepared simulation input.
type coreJob struct {
	roster    []int // global tenant indices
	ws        []*trace.Workload
	schedules [][]int64 // admitted arrival cycles per roster entry
	targets   []int     // admitted request counts per roster entry
	sliceOf   []int     // vNPU slice per roster entry (nil: unsliced)
	admitted  int
}

// coreOut is one core's simulation output.
type coreOut struct {
	res      *metrics.RunResult
	err      error
	log      *obs.Log
	counters *obs.CounterLog
}

// sectioner is implemented by sinks that group multi-run output (ChromeWriter
// and CounterLog both do).
type sectioner interface{ BeginSection(label string) }

// Run serves the tenants' open-loop request streams on a fleet of simulated
// NPU cores: place → dispatch (admission control) → per-core cycle-accurate
// simulation → aggregate. Same Options (and seed) produce a bit-identical
// Result at any Parallel width. Cycle-capped cores keep their partial
// measurements; their errors come back joined alongside the Result.
func Run(tenants []*trace.Workload, o Options) (*Result, error) {
	o, err := o.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(tenants) == 0 {
		return nil, errors.New("fleet: no tenants")
	}
	if o.FeedbackRounds == 0 {
		return runOnce(tenants, o)
	}

	// Realized-latency feedback: run, compare each tenant's predicted mean
	// latency against what the cycle-accurate cores measured, rescale the
	// booking estimates by the realized/predicted ratio, and repeat. The loop
	// is a fixed-point iteration toward estimates the fleet actually
	// realizes; every pass is itself deterministic, so the whole trajectory
	// is reproducible from the seed.
	calib := make([]float64, len(tenants))
	for i := range calib {
		calib[i] = 1
	}
	var rounds []CalibrationRound
	for r := 0; ; r++ {
		o.calib = append([]float64(nil), calib...)
		res, runErr := runOnce(tenants, o)
		if res == nil {
			return nil, runErr
		}
		round := CalibrationRound{Round: r, Scales: o.calib}
		n := 0
		for _, ts := range res.Tenants {
			if ts.Completed > 0 && ts.EstAvgLatencyCycles > 0 && ts.AvgLatencyCycles > 0 {
				round.Drift += math.Abs(ts.EstAvgLatencyCycles-ts.AvgLatencyCycles) / ts.AvgLatencyCycles
				n++
			}
		}
		if n > 0 {
			round.Drift /= float64(n)
		}
		rounds = append(rounds, round)
		res.Calibration = rounds
		if runErr != nil || r == o.FeedbackRounds {
			return res, runErr
		}
		for t, ts := range res.Tenants {
			if ts.Completed > 0 && ts.EstAvgLatencyCycles > 0 && ts.AvgLatencyCycles > 0 {
				calib[t] *= ts.AvgLatencyCycles / ts.EstAvgLatencyCycles
				if calib[t] < 0.05 {
					calib[t] = 0.05
				} else if calib[t] > 20 {
					calib[t] = 20
				}
			}
		}
	}
}

// runOnce is a single estimate-driven pass of the serving pipeline; o must
// already be defaulted. Run's feedback loop calls it once per calibration
// round.
func runOnce(tenants []*trace.Workload, o Options) (*Result, error) {
	if o.Arrivals != nil && len(o.Arrivals) != len(tenants) {
		return nil, &sched.ArrivalError{Workload: -1, Index: -1,
			Reason: fmt.Sprintf("fleet Arrivals has %d schedules for %d tenants",
				len(o.Arrivals), len(tenants))}
	}

	if o.PinnedSlices != nil && len(o.PinnedSlices) != len(tenants) {
		return nil, fmt.Errorf("fleet: PinnedSlices has %d entries for %d tenants",
			len(o.PinnedSlices), len(tenants))
	}
	for t, s := range o.PinnedSlices {
		if s < 0 || s >= len(o.VNPUTemplates) {
			return nil, fmt.Errorf("fleet: tenant %d pinned to slice %d of %d", t, s, len(o.VNPUTemplates))
		}
	}

	profs := profileTenants(tenants, o)
	tenants = applyPriorities(tenants, profs, o.PriorityExponent)
	var homes [][]int
	if o.PinnedPlacement != nil {
		var err error
		homes, err = pinnedHomes(o.PinnedPlacement, len(tenants), o.Cores)
		if err != nil {
			return nil, err
		}
	} else if o.Elastic != nil {
		// Homes live on the always-active floor; the spare cores above
		// MinCores start empty and inactive, serving only spill and
		// readmission traffic while scaled up.
		oPlace := o
		oPlace.Cores = o.Elastic.MinCores
		homes = place(profs, oPlace, mathx.NewRNG(o.Seed+0x9f1e))
		for len(homes) < o.Cores {
			homes = append(homes, nil)
		}
	} else {
		homes = place(profs, o, mathx.NewRNG(o.Seed+0x9f1e))
	}
	arrivals := genArrivals(len(tenants), o)
	disp := dispatch(tenants, arrivals, homes, profs, o)
	jobs := buildJobs(tenants, homes, disp, o)

	outs, runErr := runCores(jobs, disp, o)

	res := &Result{
		Scheme:         o.Scheme,
		Policy:         o.Policy,
		Placement:      homes,
		DurationCycles: o.DurationCycles,
		FailedCores:    disp.failed,
	}
	replayObservability(disp, outs, o)
	for c, job := range jobs {
		cr := CoreResult{Core: c, Tenants: job.roster, Admitted: job.admitted, SliceOf: job.sliceOf}
		if outs[c] != nil {
			cr.Run = outs[c].res
			if cr.Run != nil {
				cr.Slices = cr.Run.Slices
				if cr.Run.TotalCycles > res.TotalCycles {
					res.TotalCycles = cr.Run.TotalCycles
				}
			}
		}
		res.Cores = append(res.Cores, cr)
	}
	res.Tenants = tenantStats(tenants, profs, homes, disp, jobs, outs, o)
	for _, ts := range res.Tenants {
		res.Offered += ts.Offered
		res.Admitted += ts.Admitted
		res.Shed += ts.Shed
		res.Completed += ts.Completed
		res.Good += ts.Good
		res.GoodputHz += ts.GoodputHz
		res.Migrated += ts.Migrated
		res.MigrationShed += ts.MigrationShed
		res.MigrationCycles += ts.MigrationCycles
	}
	res.ShedRate = mathx.Ratio(float64(res.Shed), float64(res.Offered), 0)
	res.ProvisionedCoreCycles = int64(o.Cores) * o.DurationCycles
	if cs := disp.ctl; cs != nil {
		res.ProvisionedCoreCycles = 0
		for _, sp := range cs.spans {
			res.ProvisionedCoreCycles += sp.EndCycle - sp.StartCycle
		}
		ctl := &ControlOutcome{
			MinCores:        o.Elastic.MinCores,
			MaxCores:        o.Cores,
			IntervalCycles:  o.Elastic.IntervalCycles,
			Config:          *o.Elastic,
			ScaleUps:        cs.scaleUps,
			ScaleDowns:      cs.scaleDowns,
			Reclusters:      cs.reclusters,
			ModelDrift:      cs.modelDrift,
			Windows:         cs.windows,
			Decisions:       cs.decisions,
			CoreSpans:       cs.spans,
			ObservedTenants: cs.observed,
		}
		ctl.FinalActiveCores = cs.controller.Active()
		ctl.PeakActiveCores = o.Elastic.MinCores
		for _, w := range cs.windows {
			if w.ActiveCores > ctl.PeakActiveCores {
				ctl.PeakActiveCores = w.ActiveCores
			}
		}
		for _, d := range ctl.Decisions {
			if d.Kind == ctlplane.DecideScaleUp && d.ActiveAfter > ctl.PeakActiveCores {
				ctl.PeakActiveCores = d.ActiveAfter
			}
		}
		for _, ts := range res.Tenants {
			ctl.DrainVictims += ts.Drained
			ctl.Readmitted += ts.Readmitted
			ctl.DrainShed += ts.DrainShed
		}
		res.Control = ctl
	}
	return res, runErr
}

// buildJobs turns the dispatch outcome into per-core simulation inputs. A
// core's roster is its home residents (placement order — they hold vector-
// memory partitions even when idle) followed by spill sources (ascending
// tenant index) that actually landed requests on it.
func buildJobs(tenants []*trace.Workload, homes [][]int, disp *dispatchOutcome, o Options) []coreJob {
	jobs := make([]coreJob, o.Cores)
	for c := range jobs {
		if job, ok := disp.deadJobs[c]; ok {
			// A failed core's job was built — and simulated — at detection
			// time, against the pre-truncation schedule it actually ran.
			jobs[c] = job
			continue
		}
		jobs[c] = buildJob(tenants, homes[c], disp.admitted[c], o)
	}
	return jobs
}

// buildJob assembles one core's simulation input from its home residents and
// the per-tenant admitted schedules.
func buildJob(tenants []*trace.Workload, home []int, admitted [][]int64, o Options) coreJob {
	var job coreJob
	resident := make([]bool, len(tenants))
	for _, t := range home {
		resident[t] = true
		job.roster = append(job.roster, t)
	}
	for t := range tenants {
		if !resident[t] && len(admitted[t]) > 0 {
			job.roster = append(job.roster, t)
		}
	}
	for _, t := range job.roster {
		sc := admitted[t]
		if sc == nil {
			sc = []int64{}
		}
		job.ws = append(job.ws, tenants[t])
		job.schedules = append(job.schedules, sc)
		job.targets = append(job.targets, len(sc))
		job.admitted += len(sc)
	}
	if len(o.VNPUTemplates) > 0 {
		job.sliceOf = assignSlices(job.roster, o)
	}
	return job
}

// assignSlices maps each roster entry to a vNPU slice on its core. Pinned
// tenants (Options.PinnedSlices) go where they are told; the rest pack onto
// the least-populated slice that still has vector-memory room for another
// resident partition (capacity = slice vmem / MinPartitionBytes), falling
// back to least-populated when every slice is full — sched.Run then fails
// with the typed cap error instead of silently overcommitting.
func assignSlices(roster []int, o Options) []int {
	n := len(o.VNPUTemplates)
	counts := make([]int, n)
	caps := make([]int, n)
	for s, t := range o.VNPUTemplates {
		caps[s] = int(int64(t.VMem*float64(o.Config.VMemBytes)) / vnpu.MinPartitionBytes)
	}
	out := make([]int, len(roster))
	for i, t := range roster {
		s := -1
		if o.PinnedSlices != nil {
			s = o.PinnedSlices[t]
		} else {
			for pass := 0; pass < 2 && s < 0; pass++ {
				for c := 0; c < n; c++ {
					if pass == 0 && counts[c] >= caps[c] {
						continue
					}
					if s < 0 || counts[c] < counts[s] {
						s = c
					}
				}
			}
		}
		counts[s]++
		out[i] = s
	}
	return out
}

// perturb is one core's slice of the fault schedule, mapped to the
// scheduler's knobs.
type perturb struct {
	halt  int64
	stall []sched.Window
	hbm   []sched.Window
	vmem  []sched.Window
}

// perturbFor extracts core's perturbations from the schedule (zero value
// when the schedule is empty).
func perturbFor(s *faults.Schedule, core int) perturb {
	var p perturb
	if at, ok := s.FailCycle(core); ok {
		p.halt = at
	}
	p.stall = windowsOf(s, core, faults.KindStall)
	p.hbm = windowsOf(s, core, faults.KindHBM)
	p.vmem = windowsOf(s, core, faults.KindVMem)
	return p
}

func windowsOf(s *faults.Schedule, core int, kind faults.Kind) []sched.Window {
	var out []sched.Window
	for _, f := range s.Windows(core, kind) {
		out = append(out, sched.Window{At: f.At, Dur: f.Dur, Factor: f.Factor})
	}
	return out
}

// runCore executes one core's cycle-accurate simulation under its fault
// perturbations, with its own engine, event log, and counter log.
func runCore(c int, job coreJob, o Options, p perturb) *coreOut {
	out := &coreOut{}
	var sinks []obs.Tracer
	if o.Tracer != nil {
		out.log = &obs.Log{}
		sinks = append(sinks, out.log)
	}
	if o.CoreTracer != nil {
		sinks = append(sinks, o.CoreTracer(c, job.roster))
	}
	tr := obs.Multi(sinks...)

	if o.Scheme == "PMT" {
		out.res, out.err = baseline.RunPMT(job.ws, baseline.PMTOptions{
			Config:           o.Config,
			Policy:           baseline.PMTRoundRobin,
			RequestTargets:   job.targets,
			MaxCycles:        o.MaxCycles,
			Seed:             o.Seed + 0xc0e + uint64(c),
			WeightByPriority: true,
			Tracer:           tr,
		})
		return out
	}
	so := sched.Options{
		Config:        o.Config,
		ArrivalCycles: job.schedules,
		MaxCycles:     o.MaxCycles,
		Seed:          o.Seed + 0xc0e + uint64(c),
		Scheme:        o.Scheme,
		Tracer:        tr,
		PreemptMargin: o.PreemptMargin,
		HaltAtCycle:   p.halt,
		StallWindows:  p.stall,
		HBMWindows:    p.hbm,
		VMemWindows:   p.vmem,
	}
	switch o.Scheme {
	case "V10-Base":
		so.Policy = sched.RoundRobin
	case "V10-Fair":
		so.Policy = sched.Priority
	default: // V10-Full
		so.Policy = sched.Priority
		so.Preemption = true
	}
	if len(o.VNPUTemplates) > 0 {
		// A fresh partition per core: slices hold live token-bucket and vmem
		// state that must never alias across cores (or reruns).
		part, perr := vnpu.NewPartition(o.Config, o.VNPUTemplates, o.SliceWindowCycles)
		if perr != nil {
			out.err = perr
			return out
		}
		so.Slices = part.Slices
		so.SliceOf = job.sliceOf
	}
	if o.Counters != nil {
		out.counters = obs.NewCounterLog()
		so.Counters = out.counters
	}
	out.res, out.err = sched.Run(job.ws, so)
	return out
}

// runCores executes every surviving core's simulation on the worker pool;
// failed cores reuse the simulation already run at detection time. Per-core
// errors (cycle caps) are joined, labeled with the core; partial results are
// kept.
func runCores(jobs []coreJob, disp *dispatchOutcome, o Options) ([]*coreOut, error) {
	outs, _ := parallel.Map(context.Background(), len(jobs), o.Parallel, func(c int) (*coreOut, error) {
		if out, ok := disp.deadOuts[c]; ok {
			return out, nil
		}
		if _, dead := disp.deadJobs[c]; dead {
			return nil, nil // failed core with an empty roster: nothing ran
		}
		if len(jobs[c].roster) == 0 {
			return nil, nil
		}
		return runCore(c, jobs[c], o, perturbFor(o.Faults, c)), nil
	})
	var errs []error
	for c, out := range outs {
		if out != nil && out.err != nil {
			errs = append(errs, fmt.Errorf("fleet: core %d: %w", c, out.err))
		}
	}
	return outs, errors.Join(errs...)
}

// replayObservability re-emits the fleet-level fault/migration events and
// then every core's captured events and counter rows into the shared sinks,
// in core order, under "fleet" / "core N" sections — one deterministic
// Perfetto timeline (and counter log) for the whole fleet.
func replayObservability(disp *dispatchOutcome, outs []*coreOut, o Options) {
	if o.Tracer != nil && len(disp.log.Events) > 0 {
		if sec, ok := o.Tracer.(sectioner); ok {
			sec.BeginSection("fleet")
		}
		disp.log.Replay(o.Tracer)
	}
	for c, out := range outs {
		if out == nil {
			continue
		}
		if o.Tracer != nil && out.log != nil {
			if sec, ok := o.Tracer.(sectioner); ok {
				sec.BeginSection(fmt.Sprintf("core %d", c))
			}
			out.log.Replay(o.Tracer)
		}
		if o.Counters != nil && out.counters != nil {
			o.Counters.BeginSection(fmt.Sprintf("core %d", c))
			for _, row := range out.counters.Rows {
				o.Counters.Add(row)
			}
		}
	}
}

// intAt / int64At index the dispatch outcome's optional recovery slices,
// treating nil (hand-built fault-free outcomes) as all-zero.
func intAt(s []int, i int) int {
	if i < len(s) {
		return s[i]
	}
	return 0
}

func int64At(s []int64, i int) int64 {
	if i < len(s) {
		return s[i]
	}
	return 0
}

// makeTenantWindows builds one tenant's empty stats-window skeleton: window
// bounds plus the core count active in each window, read from the control
// plane's activity spans (a static fleet is fully active throughout).
// Completions land in the window of their completion cycle; completions past
// the arrival horizon (cores draining their backlog) clamp to the last
// window.
func makeTenantWindows(disp *dispatchOutcome, o Options) []TenantWindow {
	n := int((o.DurationCycles + o.StatsWindowCycles - 1) / o.StatsWindowCycles)
	if n < 1 {
		n = 1
	}
	spans := []CoreSpan(nil)
	if disp.ctl != nil {
		spans = disp.ctl.spans
	} else {
		for c := 0; c < o.Cores; c++ {
			spans = append(spans, CoreSpan{Core: c, StartCycle: 0, EndCycle: o.DurationCycles})
		}
	}
	wins := make([]TenantWindow, n)
	for i := range wins {
		start := int64(i) * o.StatsWindowCycles
		end := start + o.StatsWindowCycles
		if end > o.DurationCycles {
			end = o.DurationCycles
		}
		wins[i] = TenantWindow{Window: i, StartCycle: start, EndCycle: end}
		for _, sp := range spans {
			if sp.StartCycle < end && sp.EndCycle > start {
				wins[i].ActiveCores++
			}
		}
	}
	return wins
}

// tenantStats folds the per-core workload measurements back into per-tenant
// serving statistics. PMT cores serve closed-loop and can overshoot their
// targets, so completions and latencies are capped to the admitted count.
func tenantStats(tenants []*trace.Workload, profs []tenantProfile, homes [][]int,
	disp *dispatchOutcome, jobs []coreJob, outs []*coreOut, o Options) []TenantStats {
	home := make([]int, len(tenants))
	for c, group := range homes {
		for _, t := range group {
			home[t] = c
		}
	}
	durationSec := float64(o.DurationCycles) / o.Config.FrequencyHz
	stats := make([]TenantStats, len(tenants))
	var lats []float64 // reused across tenants: one allocation, one sort each
	for t := range tenants {
		ts := &stats[t]
		ts.Tenant = t
		ts.Name = tenants[t].Name
		ts.Home = home[t]
		ts.Offered = disp.offered[t]
		ts.Admitted = disp.offered[t] - disp.shed[t]
		ts.Spilled = disp.spilled[t]
		// Shed counts both front-door rejections and victims dropped after
		// migration-retry exhaustion, keeping offered == completed + shed (+
		// in-flight-at-cap) under failures. The recovery slices are nil in
		// hand-built fault-free outcomes.
		ts.Shed = disp.shed[t] + intAt(disp.migShed, t)
		ts.Migrated = intAt(disp.migrated, t)
		ts.MigrationShed = intAt(disp.migShed, t)
		ts.MigrationCycles = int64At(disp.migCycles, t)
		ts.CheckpointCycles = int64At(disp.ckptCycles, t)
		if cs := disp.ctl; cs != nil {
			ts.Drained = cs.drained[t]
			ts.Readmitted = cs.readmitted[t]
			ts.DrainShed = cs.drainShed[t]
			// Drain-shed victims are lost requests, same as migration sheds.
			ts.Shed += cs.drainShed[t]
		}
		ts.SLOCycles = o.SLOFactor * profs[t].estCycles
		if t < len(disp.estLatCnt) && disp.estLatCnt[t] > 0 {
			ts.EstAvgLatencyCycles = disp.estLatSum[t] / float64(disp.estLatCnt[t])
		}

		var wins []TenantWindow
		if o.StatsWindowCycles > 0 {
			wins = makeTenantWindows(disp, o)
		}
		lats = lats[:0]
		for c, job := range jobs {
			if outs[c] == nil || outs[c].res == nil {
				continue
			}
			for k, rt := range job.roster {
				if rt != t {
					continue
				}
				got := outs[c].res.Workloads[k].LatencyCycles
				if len(got) > job.targets[k] {
					got = got[:job.targets[k]] // PMT closed-loop overshoot
				}
				// A migrated request's latency counts from its original
				// front-door arrival: the core measured from the migration
				// landing, the debt bridges the difference.
				var dbt []int64
				if c < len(disp.debts) && disp.debts[c] != nil {
					dbt = disp.debts[c][rt]
				}
				var sched []int64
				if c < len(disp.admitted) && disp.admitted[c] != nil {
					sched = disp.admitted[c][rt]
				}
				for i, l := range got {
					if i < len(dbt) {
						l += float64(dbt[i])
					}
					lats = append(lats, l)
					if wins != nil && i < len(sched) {
						// Completion lands at core-arrival + core latency;
						// the debt already elapsed before the core arrival.
						at := sched[i] + int64(outs[c].res.Workloads[k].LatencyCycles[i])
						w := int(at / o.StatsWindowCycles)
						if w >= len(wins) {
							w = len(wins) - 1
						}
						wins[w].Completed++
						if l <= o.SLOFactor*profs[t].estCycles {
							wins[w].Good++
						}
					}
				}
			}
		}
		ts.Completed = len(lats)
		for _, l := range lats {
			if l <= ts.SLOCycles {
				ts.Good++
			}
		}
		if wins != nil {
			winSec := float64(o.StatsWindowCycles) / o.Config.FrequencyHz
			for i := range wins {
				wins[i].GoodputHz = mathx.Ratio(float64(wins[i].Good), winSec, 0)
				wins[i].GoodputPerCoreHz = mathx.Ratio(wins[i].GoodputHz, float64(wins[i].ActiveCores), 0)
			}
			ts.Windows = wins
		}
		// Mean before the in-place sort (float addition is order-sensitive),
		// then both tail quantiles off one sorted buffer instead of a full
		// copy+sort per quantile.
		ts.AvgLatencyCycles = mathx.Mean(lats)
		sort.Float64s(lats)
		ts.P95LatencyCycles = mathx.PercentileSorted(lats, 95)
		ts.P99LatencyCycles = mathx.PercentileSorted(lats, 99)
		ts.GoodputHz = mathx.Ratio(float64(ts.Good), durationSec, 0)
		ts.ShedRate = mathx.Ratio(float64(ts.Shed), float64(ts.Offered), 0)
	}
	return stats
}
