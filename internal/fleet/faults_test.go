package fleet

import (
	"encoding/json"
	"reflect"
	"testing"

	"v10/internal/collocate"
	"v10/internal/faults"
	"v10/internal/obs"
	"v10/internal/trace"
)

func mustParseFaults(t *testing.T, spec string) *faults.Schedule {
	t.Helper()
	s, err := faults.Parse(spec)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func eventsOf(log *obs.Log, ty obs.EventType) []obs.Event {
	var out []obs.Event
	for _, e := range log.Events {
		if e.Type == ty {
			out = append(out, e)
		}
	}
	return out
}

// TestCheckpointCyclesTable pins the §3.3 checkpoint price per in-flight
// operator kind: the preemption drain plus the context transfer over HBM.
// For the default 128×128 SA at 330 GB/s / 700 MHz that is 384 cycles of
// drain plus ⌈96 KB / 471.43 B-per-cycle⌉ = 209 transfer cycles.
func TestCheckpointCyclesTable(t *testing.T) {
	o, err := Options{Config: cfg}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		kind int
		want int64
	}{
		{"SA: 384 drain + 209 transfer of 96 KB", 1, 593},
		{"VU: 10 spill/restore + 35 transfer of 16 KB", 2, 45},
	} {
		if got := checkpointCycles(o, tc.kind); got != tc.want {
			t.Errorf("%s: checkpointCycles = %d, want %d", tc.name, got, tc.want)
		}
	}
}

// faultFixtureOptions is the hand-driven dispatcher fixture shared by the
// checkpoint and retry tests: two cores, one-beat detection, no profiling
// noise.
func faultFixtureOptions(t *testing.T, spec string) Options {
	t.Helper()
	o, err := Options{
		Config:          cfg,
		Cores:           2,
		Scheme:          "V10-Full",
		Policy:          PolicyLeastLoaded,
		QueueLimit:      4,
		HeartbeatCycles: 50_000,
		MissedBeats:     1,
		Faults:          mustParseFaults(t, spec),
	}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	return o
}

// TestCheckpointChargedOncePerInFlightOperator fails a core mid-operator
// with two admitted requests: the §3.3 cost is charged exactly once (there
// is one in-flight operator), it delays only the first victim's re-dispatch,
// and both victims land on the surviving core carrying latency debt from
// their original arrivals.
func TestCheckpointChargedOncePerInFlightOperator(t *testing.T) {
	o := faultFixtureOptions(t, "fail@0:100000")
	// One long SA operator per request: at the fail cycle the first request
	// is mid-SA, the second still queued behind it.
	tenants := []*trace.Workload{synthetic("sa0", 400_000, 10, 1)}
	profs := profileTenants(tenants, o)
	homes := [][]int{{0}, {}}
	arrivals := []arrival{{at: 1, tenant: 0}, {at: 2, tenant: 0}}

	disp := dispatch(tenants, arrivals, homes, profs, o)

	const ckpt = 593 // SA checkpoint, pinned by TestCheckpointCyclesTable
	if disp.ckptCycles[0] != ckpt {
		t.Fatalf("checkpoint cycles %d, want exactly one %d-cycle charge", disp.ckptCycles[0], ckpt)
	}
	if disp.migrated[0] != 2 || disp.migShed[0] != 0 {
		t.Fatalf("migrated %d migShed %d, want 2/0", disp.migrated[0], disp.migShed[0])
	}
	if got := len(disp.admitted[0][0]); got != 0 {
		t.Fatalf("dead core kept %d admitted requests after truncation", got)
	}
	// Detection at the first heartbeat ≥ the fail cycle (100000 exactly).
	// The queued victim re-dispatches at detection; the in-flight victim
	// pays the checkpoint delay first.
	if want := []int64{100_000, 100_000 + ckpt}; !reflect.DeepEqual(disp.admitted[1][0], want) {
		t.Fatalf("survivor admitted %v, want %v", disp.admitted[1][0], want)
	}
	if want := []int64{100_000 - 2, 100_000 + ckpt - 1}; !reflect.DeepEqual(disp.debts[1][0], want) {
		t.Fatalf("latency debts %v, want %v", disp.debts[1][0], want)
	}
	if disp.migCycles[0] != ckpt {
		t.Fatalf("migration cycles %d, want %d (one immediate landing, one checkpoint-delayed)", disp.migCycles[0], ckpt)
	}
	if got := eventsOf(disp.log, obs.EvCoreDead); len(got) != 1 || got[0].Arg0 != 0 || got[0].Arg1 != 100_000 {
		t.Fatalf("EvCoreDead events %+v", got)
	}
	if got := eventsOf(disp.log, obs.EvHeartbeatMiss); len(got) != 1 {
		t.Fatalf("%d heartbeat misses, want 1", len(got))
	}
	if got := eventsOf(disp.log, obs.EvMigrate); len(got) != 2 || got[0].Arg0 != 1 || got[1].Arg0 != 1 {
		t.Fatalf("EvMigrate events %+v", got)
	}

	// Fold through to tenant stats: both migrated requests complete on the
	// survivor and their latencies carry the debt back to original arrival.
	jobs := buildJobs(tenants, homes, disp, o)
	outs, err := runCores(jobs, disp, o)
	if err != nil {
		t.Fatal(err)
	}
	stats := tenantStats(tenants, profs, homes, disp, jobs, outs, o)
	ts := stats[0]
	if ts.Completed != 2 || ts.Migrated != 2 || ts.CheckpointCycles != ckpt {
		t.Fatalf("stats completed %d migrated %d ckpt %d, want 2/2/%d",
			ts.Completed, ts.Migrated, ts.CheckpointCycles, ckpt)
	}
	if ts.AvgLatencyCycles <= 100_000-2 {
		t.Fatalf("avg latency %g does not include the migration debt", ts.AvgLatencyCycles)
	}
}

// TestMigrationRetriesBackOffThenShed kills every core: victims probe, back
// off exponentially (base<<(attempt-1)), and shed when the attempt budget is
// spent — at the exact cycles the backoff schedule dictates.
func TestMigrationRetriesBackOffThenShed(t *testing.T) {
	o := faultFixtureOptions(t, "fail@0:100000;fail@1:50000")
	o.MigrationRetries = 3
	o.MigrationBackoffCycles = 1000
	tenants := []*trace.Workload{synthetic("sa0", 400_000, 10, 1)}
	profs := profileTenants(tenants, o)
	homes := [][]int{{0}, {}}
	arrivals := []arrival{{at: 1, tenant: 0}, {at: 2, tenant: 0}}

	disp := dispatch(tenants, arrivals, homes, profs, o)

	if disp.migrated[0] != 0 || disp.migShed[0] != 2 {
		t.Fatalf("migrated %d migShed %d, want 0/2 (nowhere to land)", disp.migrated[0], disp.migShed[0])
	}
	// Queued victim: attempts at 100000, 101000 (+1000<<0), 103000 (+1000<<1),
	// shed on the third. Checkpointed victim: the same ladder from 100593.
	shed := eventsOf(disp.log, obs.EvMigrateShed)
	if len(shed) != 2 {
		t.Fatalf("%d migrate-shed events, want 2", len(shed))
	}
	if shed[0].Time != 103_000 || shed[1].Time != 103_593 {
		t.Fatalf("shed at cycles %d, %d; want 103000, 103593", shed[0].Time, shed[1].Time)
	}
	for _, e := range shed {
		if e.Arg0 != 3 {
			t.Fatalf("shed after %g attempts, want the full budget of 3", e.Arg0)
		}
	}
	// Conservation: everything offered was admitted once, then shed.
	if disp.offered[0] != 2 || disp.shed[0] != 0 {
		t.Fatalf("offered %d front-shed %d, want 2/0", disp.offered[0], disp.shed[0])
	}
}

// TestNoMigrationShedsVictimsImmediately pins the graceful-degradation
// baseline: with NoMigration every victim is dropped at detection time.
func TestNoMigrationShedsVictimsImmediately(t *testing.T) {
	o := faultFixtureOptions(t, "fail@0:100000")
	o.NoMigration = true
	tenants := []*trace.Workload{synthetic("sa0", 400_000, 10, 1)}
	profs := profileTenants(tenants, o)
	disp := dispatch(tenants, []arrival{{at: 1, tenant: 0}, {at: 2, tenant: 0}},
		[][]int{{0}, {}}, profs, o)
	if disp.migrated[0] != 0 || disp.migShed[0] != 2 {
		t.Fatalf("migrated %d migShed %d, want 0/2", disp.migrated[0], disp.migShed[0])
	}
	shed := eventsOf(disp.log, obs.EvMigrateShed)
	if len(shed) != 2 || shed[0].Time != 100_000 || shed[1].Time != 100_000 {
		t.Fatalf("shed events %+v, want both at detection cycle 100000", shed)
	}
}

// TestSpillChecksLiveResidents is the regression test for the stale-state
// spill bug: the advisor compatibility gate must evaluate a spill target's
// *live* occupants — home tenants plus anyone currently queued there — not
// the static placement. Here core 1's placement is empty but an earlier
// spill parked an incompatible tenant in its queue.
func TestSpillChecksLiveResidents(t *testing.T) {
	incompat := func(feats []collocate.Features, group []int, cand int) float64 {
		for _, g := range group {
			if g == 2 && cand == 0 {
				return -1 // tenant 0 must not share a core with tenant 2
			}
		}
		return 1
	}
	o := Options{Cores: 2, QueueLimit: 2, Policy: PolicyAdvisor, compat: incompat}
	profs := []tenantProfile{{estCycles: 1e12}, {estCycles: 1e12}, {estCycles: 1e12}}
	homes := [][]int{{0, 1, 2}, {}}
	arrivals := []arrival{
		{at: 1, tenant: 1}, // fills home core 0 ...
		{at: 2, tenant: 2}, // ... to its bound
		{at: 3, tenant: 2}, // spills onto empty core 1
		{at: 4, tenant: 0}, // must NOT join tenant 2 on core 1
	}
	disp := dispatch(nil, arrivals, homes, profs, o)
	if disp.spilled[2] != 1 {
		t.Fatalf("tenant 2 spilled %d, want 1 (the fixture's premise)", disp.spilled[2])
	}
	if disp.shed[0] != 1 || len(disp.admitted[1][0]) != 0 {
		t.Fatalf("tenant 0: shed %d, on core 1 %d — spilled onto a live incompatible resident",
			disp.shed[0], len(disp.admitted[1][0]))
	}

	// Positive control: with a permissive oracle the same arrival spills, so
	// the shed above is the gate's doing, not queue pressure.
	o.compat = func([]collocate.Features, []int, int) float64 { return 1 }
	disp = dispatch(nil, arrivals, homes, profs, o)
	if disp.shed[0] != 0 || len(disp.admitted[1][0]) != 1 {
		t.Fatalf("permissive oracle: shed %d, on core 1 %d — want 0/1", disp.shed[0], len(disp.admitted[1][0]))
	}
}

// TestMigrationRetainsMoreGoodputThanShedOnly: recovering victims by
// migration must strictly beat dropping them, in completions and goodput.
func TestMigrationRetainsMoreGoodputThanShedOnly(t *testing.T) {
	// Three cores at a rate that keeps queues non-empty: the failing core has
	// victims to recover, and the survivors have slack to absorb them.
	base := quickOptions()
	base.Cores = 3
	base.RateHz = 15_000
	base.Faults = mustParseFaults(t, "fail@0:1500000")
	base.HeartbeatCycles = 100_000
	base.MissedBeats = 1

	resMig, err := Run(mixedTenants(), base)
	if err != nil {
		t.Fatal(err)
	}
	shedOnly := base
	shedOnly.NoMigration = true
	resShed, err := Run(mixedTenants(), shedOnly)
	if err != nil {
		t.Fatal(err)
	}
	if resMig.Migrated == 0 {
		t.Fatal("fixture produced no migrations — nothing compared")
	}
	if resMig.Completed <= resShed.Completed {
		t.Fatalf("migration completed %d, shed-only %d — recovery bought nothing",
			resMig.Completed, resShed.Completed)
	}
	if resMig.GoodputHz <= resShed.GoodputHz {
		t.Fatalf("migration goodput %g ≤ shed-only %g", resMig.GoodputHz, resShed.GoodputHz)
	}
	// Both conserve requests.
	for _, res := range []*Result{resMig, resShed} {
		if res.Offered != res.Completed+res.Shed {
			t.Fatalf("offered %d != completed %d + shed %d", res.Offered, res.Completed, res.Shed)
		}
	}
}

// TestFaultFreePathBitIdentical: a nil fault schedule, an empty one, and a
// pre-faults-style run must produce byte-identical results — the fault
// machinery may not perturb the fault-free path.
func TestFaultFreePathBitIdentical(t *testing.T) {
	o := quickOptions()
	runWith := func(s *faults.Schedule) *Result {
		t.Helper()
		oo := o
		oo.Faults = s
		res, err := Run(mixedTenants(), oo)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	nilRes := runWith(nil)
	emptyRes := runWith(&faults.Schedule{})
	a, _ := json.Marshal(nilRes)
	b, _ := json.Marshal(emptyRes)
	if string(a) != string(b) {
		t.Fatalf("nil vs empty schedule differ:\n%s\nvs\n%s", a, b)
	}
	if !reflect.DeepEqual(nilRes, emptyRes) {
		t.Fatal("nil vs empty schedule differ outside the JSON projection")
	}
}

// TestFaultedRunDeterministicAcrossParallelWidths extends the fleet's
// determinism contract to fault injection: same seed and schedule, same
// bits, at any worker-pool width.
func TestFaultedRunDeterministicAcrossParallelWidths(t *testing.T) {
	results := make([]*Result, 3)
	for i, par := range []int{1, 4, 0} {
		o := quickOptions()
		o.Faults = mustParseFaults(t, "fail@0:1000000;stall@1:200000+100000")
		o.HeartbeatCycles = 100_000
		o.Parallel = par
		res, err := Run(mixedTenants(), o)
		if err != nil {
			t.Fatal(err)
		}
		results[i] = res
	}
	want, _ := json.Marshal(results[0])
	for i, res := range results[1:] {
		if got, _ := json.Marshal(res); string(got) != string(want) {
			t.Fatalf("Parallel width changed the faulted result (run %d)", i+1)
		}
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Fatal("faulted results differ outside the JSON projection")
	}
}

// TestFaultOptionValidation covers the new knobs' rejection paths.
func TestFaultOptionValidation(t *testing.T) {
	for _, tc := range []struct {
		name   string
		mutate func(*Options)
	}{
		{"negative heartbeat", func(o *Options) { o.HeartbeatCycles = -1 }},
		{"negative missed beats", func(o *Options) { o.MissedBeats = -2 }},
		{"negative retries", func(o *Options) { o.MigrationRetries = -1 }},
		{"negative backoff", func(o *Options) { o.MigrationBackoffCycles = -5 }},
		{"faults on PMT", func(o *Options) {
			o.Scheme = "PMT"
			o.Faults = &faults.Schedule{Faults: []faults.Fault{{Kind: faults.KindFail, Core: 0, At: 100}}}
		}},
		{"fault beyond fleet", func(o *Options) {
			o.Faults = &faults.Schedule{Faults: []faults.Fault{{Kind: faults.KindFail, Core: 7, At: 100}}}
		}},
	} {
		o := quickOptions()
		tc.mutate(&o)
		if _, err := Run(mixedTenants(), o); err == nil {
			t.Errorf("%s: Run accepted invalid options", tc.name)
		}
	}
}

// TestFleetTraceCarriesFaultEvents: the shared tracer's "fleet" section must
// carry the typed failure/recovery events so they land in Perfetto exports.
func TestFleetTraceCarriesFaultEvents(t *testing.T) {
	log := &obs.Log{}
	o := quickOptions()
	o.Faults = mustParseFaults(t, "fail@0:1000000")
	o.HeartbeatCycles = 100_000
	o.Tracer = log
	res, err := Run(mixedTenants(), o)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FailedCores) != 1 || res.FailedCores[0] != 0 {
		t.Fatalf("failed cores %v, want [0]", res.FailedCores)
	}
	if got := len(eventsOf(log, obs.EvCoreDead)); got != 1 {
		t.Fatalf("%d EvCoreDead in the shared trace, want 1", got)
	}
	if got := len(eventsOf(log, obs.EvMigrate)); got != res.Migrated {
		t.Fatalf("%d EvMigrate events for %d migrations", got, res.Migrated)
	}
	// MissedBeats defaults to 3: one miss event per beat before death.
	if got := len(eventsOf(log, obs.EvHeartbeatMiss)); got != 3 {
		t.Fatalf("%d heartbeat-miss events, want 3 (default MissedBeats)", got)
	}
}
