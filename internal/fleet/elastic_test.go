package fleet

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"v10/internal/collocate"
	"v10/internal/ctlplane"
	"v10/internal/obs"
	"v10/internal/trace"
)

// elasticOptions is an overloaded single-home-core fleet with two spares:
// four tenants at a rate that saturates one core, so the control loop has a
// clear scale-up signal from the first windows.
func elasticOptions() Options {
	o := quickOptions()
	o.Cores = 3
	o.RateHz = 30_000
	o.Elastic = &ctlplane.Config{MinCores: 1, HysteresisWindows: 1}
	return o
}

func TestElasticOptionValidation(t *testing.T) {
	tenants := mixedTenants()
	for name, mod := range map[string]func(o *Options){
		"pmt": func(o *Options) { o.Scheme = "PMT" },
		"negative-cooldown": func(o *Options) {
			o.Elastic = &ctlplane.Config{CooldownCycles: -1}
		},
		"negative-interval": func(o *Options) {
			o.Elastic = &ctlplane.Config{IntervalCycles: -5}
		},
		"min-exceeds-cores": func(o *Options) {
			o.Elastic = &ctlplane.Config{MinCores: 9}
		},
		"inverted-band": func(o *Options) {
			o.Elastic = &ctlplane.Config{UpBelow: 0.99, DownAbove: 0.5}
		},
		"pinned-placement": func(o *Options) {
			o.PinnedPlacement = [][]int{{0, 1, 2, 3}, nil, nil}
		},
		"bad-admission":      func(o *Options) { o.Admission = "psychic" },
		"slowdown-below-one": func(o *Options) { o.SlowdownLimit = 0.5 },
		"recluster-no-model": func(o *Options) { o.Recluster = true },
		"recluster-static": func(o *Options) {
			o.Elastic = nil
			o.Recluster = true
			o.Model = trainTestModel(t, tenants)
		},
		"estimate-scale-negative": func(o *Options) { o.EstimateScale = -1 },
		"stats-window-negative":   func(o *Options) { o.StatsWindowCycles = -7 },
	} {
		o := elasticOptions()
		mod(&o)
		if _, err := Run(tenants, o); err == nil {
			t.Errorf("%s: want validation error, got nil", name)
		}
	}
}

func TestElasticScaleUpUnderOverload(t *testing.T) {
	res, err := Run(mixedTenants(), elasticOptions())
	if err != nil {
		t.Fatal(err)
	}
	ctl := res.Control
	if ctl == nil {
		t.Fatal("elastic run returned no Control block")
	}
	if ctl.ScaleUps == 0 {
		t.Fatal("overloaded single-core fleet never scaled up")
	}
	if ctl.PeakActiveCores <= ctl.MinCores {
		t.Fatalf("peak active %d not above the floor %d", ctl.PeakActiveCores, ctl.MinCores)
	}
	if len(ctl.Windows) != 16 {
		t.Fatalf("want 16 default windows, got %d", len(ctl.Windows))
	}
	if got := CheckDiscipline(res); len(got) > 0 {
		t.Fatalf("control discipline violated: %v", got)
	}
	static := int64(3) * res.DurationCycles
	if res.ProvisionedCoreCycles >= static {
		t.Fatalf("provisioned %d should be below static %d (spares start off)",
			res.ProvisionedCoreCycles, static)
	}
	var spanSum int64
	for _, sp := range ctl.CoreSpans {
		if sp.EndCycle <= sp.StartCycle {
			t.Fatalf("empty or inverted span %+v", sp)
		}
		spanSum += sp.EndCycle - sp.StartCycle
	}
	if spanSum != res.ProvisionedCoreCycles {
		t.Fatalf("span sum %d != provisioned %d", spanSum, res.ProvisionedCoreCycles)
	}
	// Conservation: every offered request is either completed or shed.
	for _, ts := range res.Tenants {
		if ts.Offered != ts.Completed+ts.Shed {
			t.Fatalf("tenant %d: offered %d != completed %d + shed %d",
				ts.Tenant, ts.Offered, ts.Completed, ts.Shed)
		}
	}
}

// CheckDiscipline adapts the ctlplane oracle to a fleet result for tests.
func CheckDiscipline(res *Result) []string {
	return ctlplane.CheckDiscipline(res.Control.Config, res.Control.MaxCores,
		res.Control.Windows, res.Control.Decisions)
}

func TestElasticScaleDownDrainsAndConserves(t *testing.T) {
	// Demand only in the first 40% of the horizon: the loop scales up under
	// the burst, then drains back to the floor once the fleet idles.
	o := elasticOptions()
	o.RateHz = 0
	tenants := mixedTenants()
	o.Arrivals = make([][]int64, len(tenants))
	for t := range o.Arrivals {
		for at := int64(0); at < o.DurationCycles*2/5; at += 20_000 {
			o.Arrivals[t] = append(o.Arrivals[t], at)
		}
	}
	var logBuf obs.Log
	o.Tracer = &logBuf
	res, err := Run(tenants, o)
	if err != nil {
		t.Fatal(err)
	}
	ctl := res.Control
	if ctl.ScaleUps == 0 || ctl.ScaleDowns == 0 {
		t.Fatalf("want both scale directions, got ups=%d downs=%d", ctl.ScaleUps, ctl.ScaleDowns)
	}
	if ctl.FinalActiveCores != ctl.MinCores {
		t.Fatalf("idle fleet should end at the floor %d, got %d", ctl.MinCores, ctl.FinalActiveCores)
	}
	if ctl.DrainVictims != ctl.Readmitted+ctl.DrainShed {
		t.Fatalf("drain victims %d != readmitted %d + drain-shed %d",
			ctl.DrainVictims, ctl.Readmitted, ctl.DrainShed)
	}
	for _, ts := range res.Tenants {
		if ts.Offered != ts.Completed+ts.Shed {
			t.Fatalf("tenant %d lost requests: offered %d completed %d shed %d",
				ts.Tenant, ts.Offered, ts.Completed, ts.Shed)
		}
		if ts.Drained != ts.Readmitted+ts.DrainShed {
			t.Fatalf("tenant %d drain accounting broken: %d != %d + %d",
				ts.Tenant, ts.Drained, ts.Readmitted, ts.DrainShed)
		}
	}
	// Typed events must match the recovery metrics.
	counts := map[obs.EventType]int{}
	for _, e := range logBuf.Events {
		counts[e.Type]++
	}
	if counts[obs.EvScaleUp] != ctl.ScaleUps || counts[obs.EvScaleDown] != ctl.ScaleDowns {
		t.Fatalf("scale events (%d up, %d down) disagree with metrics (%d, %d)",
			counts[obs.EvScaleUp], counts[obs.EvScaleDown], ctl.ScaleUps, ctl.ScaleDowns)
	}
	if counts[obs.EvCoreDrain] != ctl.ScaleDowns {
		t.Fatalf("%d core-drain events for %d scale-downs", counts[obs.EvCoreDrain], ctl.ScaleDowns)
	}
	if counts[obs.EvReadmit] != ctl.Readmitted {
		t.Fatalf("%d readmit events for %d readmissions", counts[obs.EvReadmit], ctl.Readmitted)
	}
	if got := CheckDiscipline(res); len(got) > 0 {
		t.Fatalf("control discipline violated: %v", got)
	}
}

func TestElasticDeterministicRerun(t *testing.T) {
	a, err := Run(mixedTenants(), elasticOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mixedTenants(), elasticOptions())
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := json.Marshal(a)
	jb, _ := json.Marshal(b)
	if string(ja) != string(jb) || !reflect.DeepEqual(a, b) {
		t.Fatal("elastic rerun is not bit-identical")
	}
}

// TestStatsWindowsCoreAware is the regression test for the fixed-core-set
// stats bug: with a scale-up mid-run, per-window goodput must be attributed
// against the cores active in each window, not the static fleet size.
func TestStatsWindowsCoreAware(t *testing.T) {
	o := elasticOptions()
	res, err := Run(mixedTenants(), o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Control.ScaleUps == 0 {
		t.Fatal("scenario must scale up mid-run for this regression test")
	}
	firstUp := res.Control.Decisions[0].AtCycle
	for _, ts := range res.Tenants {
		if len(ts.Windows) == 0 {
			t.Fatalf("tenant %d: no stats windows despite autoscaling", ts.Tenant)
		}
		sumC, sumG := 0, 0
		for _, w := range ts.Windows {
			sumC += w.Completed
			sumG += w.Good
			if w.StartCycle >= o.DurationCycles || w.EndCycle <= w.StartCycle {
				t.Fatalf("tenant %d window %d: bad bounds %+v", ts.Tenant, w.Window, w)
			}
			if w.EndCycle <= firstUp && w.ActiveCores != res.Control.MinCores {
				t.Fatalf("window [%d,%d) precedes the first scale-up at %d but claims %d active cores",
					w.StartCycle, w.EndCycle, firstUp, w.ActiveCores)
			}
			if w.ActiveCores > 0 {
				wantPer := w.GoodputHz / float64(w.ActiveCores)
				if w.GoodputPerCoreHz != wantPer {
					t.Fatalf("window %d: per-core goodput %v, want %v", w.Window, w.GoodputPerCoreHz, wantPer)
				}
			}
		}
		if sumC != ts.Completed || sumG != ts.Good {
			t.Fatalf("tenant %d: window sums (%d, %d) != totals (%d, %d)",
				ts.Tenant, sumC, sumG, ts.Completed, ts.Good)
		}
	}
	// At least one later window must see the grown fleet.
	grew := false
	for _, w := range res.Tenants[0].Windows {
		if w.ActiveCores > res.Control.MinCores {
			grew = true
		}
	}
	if !grew {
		t.Fatal("no stats window observed the scaled-up core set")
	}
}

func TestStatsWindowsOnStaticFleet(t *testing.T) {
	o := quickOptions()
	o.StatsWindowCycles = 500_000
	res, err := Run(mixedTenants(), o)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range res.Tenants {
		if len(ts.Windows) != 6 {
			t.Fatalf("tenant %d: want 6 windows over 3M cycles, got %d", ts.Tenant, len(ts.Windows))
		}
		for _, w := range ts.Windows {
			if w.ActiveCores != o.Cores {
				t.Fatalf("static fleet window claims %d active cores, want %d", w.ActiveCores, o.Cores)
			}
		}
	}
}

func TestPredictiveAdmissionSelfBounds(t *testing.T) {
	o := elasticOptions()
	o.Admission = AdmitPredictive
	o.SlowdownLimit = 2 // tight: roughly one request of wait tolerated
	tight, err := Run(mixedTenants(), o)
	if err != nil {
		t.Fatal(err)
	}
	o.SlowdownLimit = 1000 // effectively unbounded
	loose, err := Run(mixedTenants(), o)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Shed == 0 {
		t.Fatal("tight slowdown limit shed nothing under overload")
	}
	if loose.Shed >= tight.Shed {
		t.Fatalf("loosening the slowdown limit did not reduce shedding: %d -> %d",
			tight.Shed, loose.Shed)
	}
	if loose.Admitted <= tight.Admitted {
		t.Fatalf("loose limit admitted %d <= tight %d", loose.Admitted, tight.Admitted)
	}
}

func TestQueueBoundDefaultMatchesLegacy(t *testing.T) {
	// The Admission/SlowdownLimit/EstimateScale defaults must leave the
	// static dispatcher bit-identical to an options struct that never heard
	// of them.
	base, err := Run(mixedTenants(), quickOptions())
	if err != nil {
		t.Fatal(err)
	}
	o := quickOptions()
	o.Admission = AdmitQueueBound
	o.EstimateScale = 1
	o.SlowdownLimit = 10
	explicit, err := Run(mixedTenants(), o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(base, explicit) {
		t.Fatal("explicit admission defaults diverge from the legacy path")
	}
}

// driftTenants is a mix with within-cluster variation: unlike mixedTenants
// (two identical tenants per family), each observation here sits off its
// cluster centroid, so online updates produce nonzero drift.
func driftTenants() []*trace.Workload {
	return []*trace.Workload{
		synthetic("sa0", 4000, 10, 6),
		synthetic("sa1", 3400, 60, 7),
		synthetic("vu0", 10, 4000, 6),
		synthetic("vu1", 60, 3400, 7),
	}
}

// reclusterOptions serves the tenants under the advisor policy with online
// re-clustering enabled.
func reclusterOptions(t *testing.T, tenants []*trace.Workload) Options {
	o := elasticOptions()
	o.Policy = PolicyAdvisor
	o.Model = trainTestModel(t, tenants)
	o.Recluster = true
	return o
}

func TestReclusterAccumulatesDriftWithoutMutatingCaller(t *testing.T) {
	tenants := driftTenants()
	o := reclusterOptions(t, tenants)
	orig := o.Model
	res, err := Run(tenants, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Control.ModelDrift <= 0 {
		t.Fatal("online re-clustering accumulated no centroid drift under live traffic")
	}
	if len(res.Control.ObservedTenants) != len(res.Control.Windows) {
		t.Fatalf("observed-tenant record has %d windows, signals have %d",
			len(res.Control.ObservedTenants), len(res.Control.Windows))
	}
	if got := checkReclusterConsistency(res, orig, tenants, o); got != "" {
		t.Fatal(got)
	}
	// The caller's model must be untouched: a second run from the same
	// original model reproduces the result bit-identically.
	res2, err := Run(tenants, o)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, res2) {
		t.Fatal("rerun from the shared trained model diverged: online updates leaked into the caller's model")
	}
}

// checkReclusterConsistency is the stale-centroid oracle: replaying the
// recorded per-window observations against a fresh clone of the original
// model must reproduce Control.ModelDrift exactly (same fold order, same
// float math).
func checkReclusterConsistency(res *Result, orig *collocate.Model, tenants []*trace.Workload, o Options) string {
	clone := orig.CloneForOnline()
	want := 0.0
	for _, window := range res.Control.ObservedTenants {
		// Per-window inner sum first, mirroring the dispatcher's fold order —
		// float addition is not associative.
		winDrift := 0.0
		for _, tn := range window {
			f := collocate.ExtractFeatures(tenants[tn], o.Config, withProfileDefault(o.ProfileRequests))
			_, moved := clone.Observe(f)
			winDrift += moved
		}
		want += winDrift
	}
	if res.Control.ModelDrift != want {
		return "recluster inconsistency: recorded drift does not match an independent replay of the observations (stale or extra centroid updates)"
	}
	return ""
}

func withProfileDefault(n int) int {
	if n <= 0 {
		return 3
	}
	return n
}

// TestMutationStaleCentroidCaught injects the skipModelUpdates control-plane
// bug — churn happens but the centroids never move — and proves the
// recluster-consistency oracle catches it.
func TestMutationStaleCentroidCaught(t *testing.T) {
	tenants := driftTenants()
	o := reclusterOptions(t, tenants)
	orig := o.Model
	o.skipModelUpdates = true
	res, err := Run(tenants, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Control.ModelDrift != 0 {
		t.Fatalf("mutant still accumulated drift %v", res.Control.ModelDrift)
	}
	problem := checkReclusterConsistency(res, orig, tenants, o)
	if problem == "" {
		t.Fatal("stale-centroid mutant slipped past the recluster-consistency oracle")
	}
	if !strings.Contains(problem, "stale") {
		t.Fatalf("unexpected problem wording: %s", problem)
	}
}

// TestMutationEstimateScaleCaught doubles every service estimate (the
// admission-estimate-off-by-2x bug) and proves the estimate-consistency
// oracle — SLOCycles must equal SLOFactor × the independently recomputed
// estimate — catches it.
func TestMutationEstimateScaleCaught(t *testing.T) {
	tenants := mixedTenants()
	check := func(res *Result, o Options) bool {
		pr := withProfileDefault(o.ProfileRequests)
		slo := o.SLOFactor
		if slo == 0 {
			slo = 10
		}
		for i, ts := range res.Tenants {
			if ts.SLOCycles != slo*EstimateServeCycles(tenants[i], cfg, pr) {
				return false
			}
		}
		return true
	}
	o := quickOptions()
	res, err := Run(tenants, o)
	if err != nil {
		t.Fatal(err)
	}
	if !check(res, o) {
		t.Fatal("clean run failed the estimate-consistency oracle")
	}
	o.EstimateScale = 2
	mut, err := Run(tenants, o)
	if err != nil {
		t.Fatal(err)
	}
	if check(mut, o) {
		t.Fatal("2x estimate mutant slipped past the estimate-consistency oracle")
	}
}
