package experiments

import (
	"fmt"

	"v10/internal/models"
	"v10/internal/report"
)

// sweepBatches returns the batch sizes a model can run without OOM.
func (c *Context) sweepBatches(spec models.Spec) []int {
	var out []int
	for _, b := range models.StandardBatches {
		if !spec.OOM(b, c.Config.HBMBytes) {
			out = append(out, b)
		}
	}
	return out
}

// characterizationTable builds a model×batch table from a per-run metric.
func (c *Context) characterizationTable(id, title, note string,
	metric func(abbrev string, batch int) (float64, error)) (*report.Table, error) {

	t := &report.Table{ID: id, Title: title, Note: note}
	t.Header = []string{"model"}
	for _, b := range models.StandardBatches {
		t.Header = append(t.Header, fmt.Sprintf("b%d", b))
	}
	for _, spec := range models.Specs() {
		row := []string{spec.Name}
		allowed := map[int]bool{}
		for _, b := range c.sweepBatches(spec) {
			allowed[b] = true
		}
		for _, b := range models.StandardBatches {
			if !allowed[b] {
				row = append(row, "OOM")
				continue
			}
			v, err := metric(spec.Abbrev, b)
			if err != nil {
				return nil, err
			}
			row = append(row, report.Percent(v))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig3 regenerates the overall FLOPS utilization of single DNN inference
// workloads across batch sizes (deeper color = larger batch in the paper).
func (c *Context) Fig3() (*report.Table, error) {
	peak := c.Config.PeakFLOPS() / c.Config.FrequencyHz // FLOPs per cycle
	return c.characterizationTable("fig3",
		"Overall FLOPS utilization of DNN inference workloads",
		"single-tenant runs; OOM entries mirror the paper's out-of-memory failures",
		func(abbrev string, batch int) (float64, error) {
			res, err := c.profile(abbrev, batch)
			if err != nil {
				return 0, err
			}
			return res.FLOPSUtil(peak), nil
		})
}

// Fig4 regenerates MXU (systolic array) temporal utilization.
func (c *Context) Fig4() (*report.Table, error) {
	return c.characterizationTable("fig4",
		"MXU temporal utilization of inference workloads",
		"",
		func(abbrev string, batch int) (float64, error) {
			res, err := c.profile(abbrev, batch)
			if err != nil {
				return 0, err
			}
			return res.SAUtil(), nil
		})
}

// Fig5 regenerates VPU (vector unit) temporal utilization.
func (c *Context) Fig5() (*report.Table, error) {
	return c.characterizationTable("fig5",
		"VPU temporal utilization of inference workloads",
		"",
		func(abbrev string, batch int) (float64, error) {
			res, err := c.profile(abbrev, batch)
			if err != nil {
				return 0, err
			}
			return res.VUUtil(), nil
		})
}

// Fig6 regenerates the theoretical maximum speedup from intra-workload
// operator parallelism: serial time over DAG critical path.
func (c *Context) Fig6() (*report.Table, error) {
	t := &report.Table{
		ID:    "fig6",
		Title: "Theoretical maximum speedup with operator-level parallelism",
		Note:  "serial/critical-path per request DAG; paper average is 1.067",
	}
	t.Header = []string{"model"}
	for _, b := range models.StandardBatches {
		t.Header = append(t.Header, fmt.Sprintf("b%d", b))
	}
	sum, n := 0.0, 0
	for _, spec := range models.Specs() {
		row := []string{spec.Name}
		allowed := map[int]bool{}
		for _, b := range c.sweepBatches(spec) {
			allowed[b] = true
		}
		for _, b := range models.StandardBatches {
			if !allowed[b] {
				row = append(row, "OOM")
				continue
			}
			w := c.batchWorkload(spec.Abbrev, b)
			avg := 0.0
			for r := 0; r < c.ProfileRequests; r++ {
				avg += w.Request(r).IdealSpeedup()
			}
			avg /= float64(c.ProfileRequests)
			sum += avg
			n++
			row = append(row, report.FormatFloat(avg))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Note += fmt.Sprintf("; measured mean %.3f", sum/float64(n))
	return t, nil
}

// Fig7 regenerates HBM bandwidth utilization of single DNN inferences.
func (c *Context) Fig7() (*report.Table, error) {
	return c.characterizationTable("fig7",
		"HBM bandwidth utilization of DNN inferences",
		"utilization generally falls with batch size; Transformer rises (beam search)",
		func(abbrev string, batch int) (float64, error) {
			res, err := c.profile(abbrev, batch)
			if err != nil {
				return 0, err
			}
			return res.HBMUtil(), nil
		})
}

// Fig8 regenerates the roofline plot: operation intensity vs achieved
// TFLOP/s per model and batch, with the paper's compute and bandwidth roofs.
func (c *Context) Fig8() (*report.Table, error) {
	t := &report.Table{
		ID:    "fig8",
		Title: "Roofline placement of DNN inference workloads",
		Note: fmt.Sprintf("compute roof %.1f TFLOP/s, bandwidth roof %.0f GB/s",
			c.Config.PeakFLOPS()/1e12, c.Config.HBMBandwidth/1e9),
		Header: []string{"model", "batch", "OI (FLOPs/B)", "TFLOP/s", "roof-limited-by"},
	}
	for _, spec := range models.Specs() {
		for _, b := range c.sweepBatches(spec) {
			res, err := c.profile(spec.Abbrev, b)
			if err != nil {
				return nil, err
			}
			var flops, bytes float64
			for _, w := range res.Workloads {
				flops += w.FLOPs
				bytes += w.HBMBytes
			}
			oi := 0.0
			if bytes > 0 {
				oi = flops / bytes
			}
			seconds := float64(res.TotalCycles) / c.Config.FrequencyHz
			tflops := flops / seconds / 1e12
			limit := "bandwidth"
			if oi*c.Config.HBMBandwidth > c.Config.PeakFLOPS() {
				limit = "compute"
			}
			t.AddRow(spec.Name, b, oi, tflops, limit)
		}
	}
	return t, nil
}

// Table1 regenerates the average operator lengths of the DNN models.
func (c *Context) Table1() (*report.Table, error) {
	t := &report.Table{
		ID:     "table1",
		Title:  "Average operator lengths of DNN models (µs)",
		Note:   "batch 32 except ShapeMask (8) and Mask-RCNN (16)",
		Header: []string{"model", "avg SA op len (µs)", "avg VU op len (µs)"},
	}
	for _, row := range models.Table1(10, c.Config) {
		t.AddRow(row.Model, row.AvgSAUS, row.AvgVUUS)
	}
	return t, nil
}
