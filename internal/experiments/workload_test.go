package experiments

import (
	"strings"
	"testing"
)

func TestWorkloadSweepExperiment(t *testing.T) {
	c := testContext()
	tb, err := c.WorkloadSweep()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 3; len(tb.Rows) != want {
		t.Fatalf("rows = %d, want %d (scenarios × policies)", len(tb.Rows), want)
	}
	goodput := map[string]map[string]float64{}
	for _, row := range tb.Rows {
		scenario, policy := row[0], row[1]
		g := parseFloatCell(t, row[5])
		if g < 0 {
			t.Fatalf("negative goodput %v", g)
		}
		f := parseFloatCell(t, row[7])
		if f < 0 || f > 1 {
			t.Fatalf("%s/%s: Jain fairness %v outside [0,1]", scenario, policy, f)
		}
		if goodput[scenario] == nil {
			goodput[scenario] = map[string]float64{}
		}
		goodput[scenario][policy] = g
	}
	// The satellite acceptance criterion: compatibility-aware placement must
	// beat load-only placement on goodput under bursty MMPP traffic AND under
	// the anti-phased LLM prefill/decode mix.
	for _, scenario := range []string{"bursty", "prefill/decode"} {
		adv, ll := goodput[scenario]["advisor"], goodput[scenario]["least-loaded"]
		if adv <= ll {
			t.Errorf("%s: advisor goodput %v <= least-loaded %v", scenario, adv, ll)
		}
	}
	if !strings.Contains(tb.Note, "advisor vs least-loaded") {
		t.Errorf("note missing the comparison: %q", tb.Note)
	}
}

func TestWorkloadSweepDeterministic(t *testing.T) {
	a, err := testContext().WorkloadSweep()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testContext().WorkloadSweep()
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("WorkloadSweep is nondeterministic across contexts")
	}
}

func TestJain(t *testing.T) {
	if j := jain([]float64{5, 5, 5, 5}); j != 1 {
		t.Errorf("equal shares: jain = %v, want 1", j)
	}
	if j := jain([]float64{10, 0, 0, 0}); j != 0.25 {
		t.Errorf("total capture: jain = %v, want 0.25", j)
	}
	if j := jain([]float64{0, 0}); j != 0 {
		t.Errorf("all-zero: jain = %v, want 0", j)
	}
}
