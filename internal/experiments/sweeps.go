package experiments

import (
	"context"
	"fmt"

	"v10/internal/baseline"
	"v10/internal/mathx"
	"v10/internal/metrics"
	"v10/internal/models"
	"v10/internal/parallel"
	"v10/internal/report"
	"v10/internal/sched"
	"v10/internal/trace"
)

// The Fig. 22–25 sweeps are grids of independent simulations, so each one
// flattens its grid into cells, fans the cells out across c.Parallel workers
// (shared runs deduplicated by the Context memo caches), and assembles the
// rows in sweep order — the table is bit-identical to a serial run.

// PrioritySplits are the relative priority settings of Fig. 22 (DNN1 share).
var PrioritySplits = []float64{0.5, 0.6, 0.7, 0.8, 0.9}

// Fig22a regenerates per-workload performance (normalized to ideal
// single-tenant) under varying priorities, for V10-Full and PMT.
func (c *Context) Fig22a() (*report.Table, error) {
	t := &report.Table{
		ID:    "fig22a",
		Title: "Performance of collocated workloads vs ideal under priorities (DNN1 prioritized)",
		Note:  "per split: V10-Full DNN1/DNN2 then PMT DNN1/DNN2, normalized progress vs single-tenant",
	}
	t.Header = []string{"pair", "split"}
	t.Header = append(t.Header, "V10 DNN1", "V10 DNN2", "PMT DNN1", "PMT DNN2")
	rows, err := parallel.Map(context.Background(), len(EvalPairs)*len(PrioritySplits), c.Parallel,
		func(i int) ([]string, error) {
			p := EvalPairs[i/len(PrioritySplits)]
			split := PrioritySplits[i%len(PrioritySplits)]
			rates, err := c.singleRates(p)
			if err != nil {
				return nil, err
			}
			full, pmt, err := c.priorityRun(p, split)
			if err != nil {
				return nil, err
			}
			nf := full.NormalizedProgress(rates)
			np := pmt.NormalizedProgress(rates)
			return []string{
				PairLabel(p), splitLabel(split),
				report.FormatFloat(nf[0]), report.FormatFloat(nf[1]),
				report.FormatFloat(np[0]), report.FormatFloat(np[1]),
			}, nil
		})
	if err != nil {
		return nil, err
	}
	t.Rows = rows
	return t, nil
}

func splitLabel(split float64) string {
	return fmt.Sprintf("%.0f%%-%.0f%%", split*100, (1-split)*100)
}

// Fig22b regenerates overall throughput of V10-Full under each priority
// split, normalized to PMT at the same split.
func (c *Context) Fig22b() (*report.Table, error) {
	t := &report.Table{
		ID:    "fig22b",
		Title: "Throughput of V10-Full with various priority settings (w.r.t. PMT)",
	}
	t.Header = []string{"pair"}
	for _, split := range PrioritySplits {
		t.Header = append(t.Header, splitLabel(split))
	}
	cells, err := parallel.Map(context.Background(), len(EvalPairs)*len(PrioritySplits), c.Parallel,
		func(i int) (string, error) {
			p := EvalPairs[i/len(PrioritySplits)]
			split := PrioritySplits[i%len(PrioritySplits)]
			rates, err := c.singleRates(p)
			if err != nil {
				return "", err
			}
			full, pmt, err := c.priorityRun(p, split)
			if err != nil {
				return "", err
			}
			return report.FormatFloat(mathx.Ratio(full.STP(rates), pmt.STP(rates), 0)), nil
		})
	if err != nil {
		return nil, err
	}
	for pi, p := range EvalPairs {
		row := append([]string{PairLabel(p)}, cells[pi*len(PrioritySplits):(pi+1)*len(PrioritySplits)]...)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// priorityRun simulates a pair at a priority split under V10-Full and PMT.
func (c *Context) priorityRun(p [2]string, split float64) (full, pmt *metrics.RunResult, err error) {
	mk := func() []*trace.Workload {
		return []*trace.Workload{
			c.workload(p[0]).WithPriority(split),
			c.workload(p[1]).WithPriority(1 - split),
		}
	}
	opts := sched.FullOptions()
	opts.Config = c.Config
	opts.RequestsPerWorkload = c.Requests
	fullRes, err := sched.Run(mk(), opts)
	if err != nil {
		return nil, nil, fmt.Errorf("fig22 V10 %s@%v: %w", PairLabel(p), split, err)
	}
	pmtRes, err := baseline.RunPMT(mk(), baseline.PMTOptions{
		Config: c.Config, RequestsPerWorkload: c.Requests,
		Seed: c.Seed, WeightByPriority: true,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("fig22 PMT %s@%v: %w", PairLabel(p), split, err)
	}
	return fullRes, pmtRes, nil
}

// TimeSlices is the Fig. 23 scheduler-time-slice sweep, in cycles.
var TimeSlices = []int64{512, 1024, 4096, 32768, 65536, 1048576}

// Fig23 regenerates throughput of V10-Full under various scheduler time
// slices, normalized to PMT.
func (c *Context) Fig23() (*report.Table, error) {
	t := &report.Table{
		ID:    "fig23",
		Title: "Throughput of V10-Full with various scheduler time slices (normalized to PMT)",
		Note:  "32768 cycles (~46 µs) balances preemption overhead and scheduling granularity",
	}
	t.Header = []string{"pair"}
	for _, s := range TimeSlices {
		t.Header = append(t.Header, fmt.Sprintf("%d", s))
	}
	cells, err := parallel.Map(context.Background(), len(EvalPairs)*len(TimeSlices), c.Parallel,
		func(i int) (string, error) {
			p := EvalPairs[i/len(TimeSlices)]
			slice := TimeSlices[i%len(TimeSlices)]
			run, err := c.pair(p)
			if err != nil {
				return "", err
			}
			opts := sched.FullOptions()
			opts.Config = c.Config
			opts.Config.TimeSlice = slice
			opts.RequestsPerWorkload = c.Requests
			res, err := sched.Run([]*trace.Workload{c.workload(p[0]), c.workload(p[1])}, opts)
			if err != nil {
				return "", fmt.Errorf("fig23 %s@%d: %w", PairLabel(p), slice, err)
			}
			return report.FormatFloat(mathx.Ratio(res.STP(run.rates), run.pmt.STP(run.rates), 0)), nil
		})
	if err != nil {
		return nil, err
	}
	for pi, p := range EvalPairs {
		row := append([]string{PairLabel(p)}, cells[pi*len(TimeSlices):(pi+1)*len(TimeSlices)]...)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// VMemCapacities is the Fig. 24 vector-memory sweep, in bytes.
var VMemCapacities = []int64{8 << 20, 16 << 20, 24 << 20, 32 << 20, 48 << 20, 64 << 20}

// Fig24 regenerates throughput of V10-Full over PMT and V10-Full's HBM
// bandwidth utilization under various vector memory capacities.
func (c *Context) Fig24() (*report.Table, error) {
	t := &report.Table{
		ID:    "fig24",
		Title: "Throughput of V10-Full over PMT and HBM BW utilization vs vector memory capacity",
		Note:  "small vmem partitions force operator tiling, raising HBM traffic",
	}
	t.Header = []string{"pair"}
	for _, v := range VMemCapacities {
		mb := v >> 20
		t.Header = append(t.Header, fmt.Sprintf("%dMB tput", mb), fmt.Sprintf("%dMB hbm", mb))
	}
	cells, err := parallel.Map(context.Background(), len(EvalPairs)*len(VMemCapacities), c.Parallel,
		func(i int) ([2]string, error) {
			p := EvalPairs[i/len(VMemCapacities)]
			vmem := VMemCapacities[i%len(VMemCapacities)]
			rates, err := c.singleRates(p)
			if err != nil {
				return [2]string{}, err
			}
			cfg := c.Config
			cfg.VMemBytes = vmem
			mk := func() []*trace.Workload {
				return []*trace.Workload{c.workload(p[0]), c.workload(p[1])}
			}
			pmt, err := baseline.RunPMT(mk(), baseline.PMTOptions{
				Config: cfg, RequestsPerWorkload: c.Requests, Seed: c.Seed,
			})
			if err != nil {
				return [2]string{}, fmt.Errorf("fig24 PMT %s@%d: %w", PairLabel(p), vmem, err)
			}
			opts := sched.FullOptions()
			opts.Config = cfg
			opts.RequestsPerWorkload = c.Requests
			full, err := sched.Run(mk(), opts)
			if err != nil {
				return [2]string{}, fmt.Errorf("fig24 V10 %s@%d: %w", PairLabel(p), vmem, err)
			}
			ratio := mathx.Ratio(full.STP(rates), pmt.STP(rates), 0)
			return [2]string{report.FormatFloat(ratio), report.Percent(full.HBMUtil())}, nil
		})
	if err != nil {
		return nil, err
	}
	for pi, p := range EvalPairs {
		row := []string{PairLabel(p)}
		for vi := range VMemCapacities {
			cell := cells[pi*len(VMemCapacities)+vi]
			row = append(row, cell[0], cell[1])
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// ScaleFUs and ScaleWorkloads define the Fig. 25 scalability grid.
var (
	ScaleFUs       = []int{1, 2, 4, 8}
	ScaleWorkloads = []int{2, 4, 6, 8, 12, 16, 24, 32}
)

// Fig25 regenerates V10 scalability: throughput over single-tenant execution
// as the number of SAs/VUs and collocated workloads grows. Workloads are
// picked randomly from the 11 models, and HBM bandwidth scales with the FU
// count (§5.9). Each grid cell seeds its own RNG, so cells are independent
// and the grid parallelizes without changing any cell's draw.
func (c *Context) Fig25() (*report.Table, error) {
	t := &report.Table{
		ID:    "fig25",
		Title: "V10 scalability with more FUs and collocated workloads (STP over single-tenant)",
		Note:  "throughput grows linearly until workloads ≈ FUs",
	}
	t.Header = []string{"(#SA,#VU)"}
	for _, m := range ScaleWorkloads {
		t.Header = append(t.Header, fmt.Sprintf("%dw", m))
	}
	specs := models.Specs()
	cells, err := parallel.Map(context.Background(), len(ScaleFUs)*len(ScaleWorkloads), c.Parallel,
		func(i int) (string, error) {
			n := ScaleFUs[i/len(ScaleWorkloads)]
			m := ScaleWorkloads[i%len(ScaleWorkloads)]
			cfg := c.Config.WithFUs(n)
			rng := mathx.NewRNG(c.Seed*1000 + uint64(n*100+m))
			var ws []*trace.Workload
			var rates []float64
			for w := 0; w < m; w++ {
				spec := specs[rng.Intn(len(specs))]
				ws = append(ws, spec.Workload(spec.RefBatch, rng.Uint64(), c.Config))
				single, err := c.single(spec.Abbrev)
				if err != nil {
					return "", err
				}
				rates = append(rates, single.ProgressRate(0))
			}
			opts := sched.FullOptions()
			opts.Config = cfg
			opts.RequestsPerWorkload = mathx.MaxInt(2, c.Requests/2)
			res, err := sched.Run(ws, opts)
			if err != nil {
				return "", fmt.Errorf("fig25 (%d,%d)x%d: %w", n, n, m, err)
			}
			return report.FormatFloat(res.STP(rates)), nil
		})
	if err != nil {
		return nil, err
	}
	for ni, n := range ScaleFUs {
		row := append([]string{fmt.Sprintf("(%d,%d)", n, n)},
			cells[ni*len(ScaleWorkloads):(ni+1)*len(ScaleWorkloads)]...)
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}
