package experiments

import (
	"strings"
	"testing"
)

func TestElasticExperiment(t *testing.T) {
	c := testContext()
	tb, err := c.Elastic()
	if err != nil {
		t.Fatal(err)
	}
	if want := 2 * 2 * 2; len(tb.Rows) != want {
		t.Fatalf("rows = %d, want %d (scenarios × fleet × admission)", len(tb.Rows), want)
	}
	type cell struct{ goodput, p99, provisioned float64 }
	cells := map[string]cell{}
	for _, row := range tb.Rows {
		key := row[0] + "/" + row[1] + "/" + row[2]
		cells[key] = cell{
			goodput:     parseFloatCell(t, row[6]),
			p99:         parseFloatCell(t, row[7]),
			provisioned: parseFloatCell(t, row[8]),
		}
	}

	// The tentpole acceptance criteria, straight off the table cells.
	//
	// 1. Under the diurnal swing the autoscaler matches the statically
	//    peak-provisioned fleet's p99 within 5% while provisioning materially
	//    (>20%) fewer core-cycles.
	for _, adm := range []string{"queue-bound", "predictive"} {
		auto, static := cells["diurnal/autoscale/"+adm], cells["diurnal/static/"+adm]
		if auto.p99 > static.p99*1.05 {
			t.Errorf("diurnal/%s: autoscaled p99 %.3fms exceeds static %.3fms by more than 5%%",
				adm, auto.p99, static.p99)
		}
		if auto.provisioned > static.provisioned*0.8 {
			t.Errorf("diurnal/%s: autoscaled fleet provisioned %.1fMcyc, not materially below static %.1fMcyc",
				adm, auto.provisioned, static.provisioned)
		}
	}
	// 2. Under churn, predictive admission beats queue-bound on goodput on
	//    the autoscaled fleet (sheds land on requests that would have missed
	//    their SLO anyway).
	if p, q := cells["churn/autoscale/predictive"], cells["churn/autoscale/queue-bound"]; p.goodput <= q.goodput {
		t.Errorf("churn: predictive goodput %.1f <= queue-bound %.1f on the autoscaled fleet",
			p.goodput, q.goodput)
	}
	if !strings.Contains(tb.Note, "autoscaled p99") || !strings.Contains(tb.Note, "predictive admission") {
		t.Errorf("note missing the headline comparisons: %q", tb.Note)
	}
}

func TestElasticExperimentDeterministic(t *testing.T) {
	a, err := testContext().Elastic()
	if err != nil {
		t.Fatal(err)
	}
	b, err := testContext().Elastic()
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatal("Elastic is nondeterministic across contexts")
	}
}
