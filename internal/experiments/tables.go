package experiments

import (
	"fmt"

	"v10/internal/models"
	"v10/internal/npu"
	"v10/internal/report"
)

// Table3 regenerates the tensor-operator-scheduler overhead table from the
// analytic hardware cost model (area and power normalized to a TPUv3 core).
func (c *Context) Table3() (*report.Table, error) {
	t := &report.Table{
		ID:    "table3",
		Title: "Overhead of the tensor operator scheduler",
		Note:  "analytic model calibrated to the paper's FreePDK-15nm synthesis",
		Header: []string{"#SAs", "#VUs", "#workloads",
			"context table", "latency", "area", "power"},
	}
	for _, row := range [][3]int{{1, 1, 2}, {1, 1, 4}, {2, 2, 4}, {4, 4, 8}} {
		o := npu.Overhead(row[0], row[1], row[2])
		t.AddRow(
			fmt.Sprintf("%d", o.NumSA), fmt.Sprintf("%d", o.NumVU),
			fmt.Sprintf("%d", o.NumWorkloads),
			fmt.Sprintf("%d bytes", o.ContextBytes),
			fmt.Sprintf("%d cycles", o.LatencyCycles),
			fmt.Sprintf("%.3f%%", o.AreaPercent),
			fmt.Sprintf("%.3f%%", o.PowerPercent))
	}
	return t, nil
}

// Table4 lists the evaluated ML models.
func (c *Context) Table4() (*report.Table, error) {
	t := &report.Table{
		ID:     "table4",
		Title:  "ML models used in the evaluation",
		Note:   "batch size is 32 except ShapeMask (8) and Mask-RCNN (16)",
		Header: []string{"name", "abbrev", "description", "batch"},
	}
	for _, s := range models.Specs() {
		t.AddRow(s.Name, s.Abbrev, s.Description, s.RefBatch)
	}
	return t, nil
}

// Table5 lists the NPU simulator configuration.
func (c *Context) Table5() (*report.Table, error) {
	cfg := c.Config
	t := &report.Table{
		ID:     "table5",
		Title:  "Configuration of the NPU simulator",
		Header: []string{"parameter", "value"},
	}
	t.AddRow("Systolic array (SA) dimension", fmt.Sprintf("%d×%d", cfg.SADim, cfg.SADim))
	t.AddRow("Vector unit (VU) dimension",
		fmt.Sprintf("%d×%d×%d FP32 operations/cycle", cfg.VUSubunits, cfg.VULanes, cfg.VUOpsPerLane))
	t.AddRow("Frequency", fmt.Sprintf("%.0f MHz", cfg.FrequencyHz/1e6))
	t.AddRow("Vector Memory", fmt.Sprintf("%d MB", cfg.VMemBytes>>20))
	t.AddRow("HBM Memory Size & Bandwidth",
		fmt.Sprintf("%d GB, %.0f GB/s", cfg.HBMBytes>>30, cfg.HBMBandwidth/1e9))
	t.AddRow("Scheduler Time Slice",
		fmt.Sprintf("%d cycles (≈ %.0f µs)", cfg.TimeSlice, cfg.MicrosecondsFromCycles(cfg.TimeSlice)))
	return t, nil
}
