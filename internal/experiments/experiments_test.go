package experiments

import (
	"strconv"
	"strings"
	"testing"

	"v10/internal/report"
)

// testContext returns a context scaled down for test speed.
func testContext() *Context {
	c := NewContext()
	c.Requests = 3
	c.ProfileRequests = 2
	return c
}

// parsePercent converts "52.7%" to 0.527.
func parsePercent(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil {
		t.Fatalf("bad percent %q: %v", s, err)
	}
	return v / 100
}

func parseFloatCell(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "x"), 64)
	if err != nil {
		t.Fatalf("bad float cell %q: %v", s, err)
	}
	return v
}

func TestGeneratorsRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4", "table5",
		"fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig15",
		"fig16a", "fig16b", "fig16c", "fig17", "fig18", "fig19", "fig20",
		"fig21", "fig22a", "fig22b", "fig23", "fig24", "fig25", "disc4", "ext1", "calib",
		"fleet", "faults", "workload", "elastic", "tuned",
	}
	gens := Generators()
	if len(gens) != len(want) {
		t.Fatalf("generator count = %d, want %d", len(gens), len(want))
	}
	for i, id := range want {
		if gens[i].ID != id {
			t.Errorf("generator[%d] = %s, want %s", i, gens[i].ID, id)
		}
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%s) missing", id)
		}
	}
	if _, ok := ByID("nonsense"); ok {
		t.Error("ByID accepted unknown id")
	}
	if len(IDs()) != len(want) {
		t.Error("IDs() length mismatch")
	}
}

func TestFig3UtilizationRisesWithBatch(t *testing.T) {
	c := testContext()
	tb, err := c.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 11 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// For BERT (row 0): utilization at batch 256 (col 6) above batch 1 (col 1).
	lo := parsePercent(t, tb.Rows[0][1])
	hi := parsePercent(t, tb.Rows[0][6])
	if hi <= lo {
		t.Fatalf("BERT FLOPS util should rise with batch: b1=%v b256=%v", lo, hi)
	}
	// All utilizations below 100%, and below ~60% (paper: "less than half").
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			if cell == "OOM" {
				continue
			}
			if v := parsePercent(t, cell); v <= 0 || v > 0.75 {
				t.Fatalf("FLOPS util %v out of expected range for %s", v, row[0])
			}
		}
	}
}

func TestFig3OOMEntriesMatchPaper(t *testing.T) {
	c := testContext()
	tb, err := c.Fig3()
	if err != nil {
		t.Fatal(err)
	}
	byModel := map[string][]string{}
	for _, row := range tb.Rows {
		byModel[row[0]] = row[1:]
	}
	// Mask-RCNN (ref batch 16) must OOM at batch 32 (index 2) and beyond.
	if byModel["Mask-RCNN"][2] != "OOM" {
		t.Error("Mask-RCNN should OOM at batch 32")
	}
	if byModel["BERT"][8] == "OOM" {
		t.Error("BERT should fit at batch 2048")
	}
}

func TestFig4And5Complementarity(t *testing.T) {
	c := testContext()
	f4, err := c.Fig4()
	if err != nil {
		t.Fatal(err)
	}
	f5, err := c.Fig5()
	if err != nil {
		t.Fatal(err)
	}
	util := func(tb [][]string, model string, col int) float64 {
		for _, row := range tb {
			if row[0] == model {
				return parsePercent(t, row[col])
			}
		}
		t.Fatalf("missing %s", model)
		return 0
	}
	// Batch-32 column is index 3. BERT: MXU-heavy. DLRM: VPU-heavy.
	if util(f4.Rows, "BERT", 3) <= util(f5.Rows, "BERT", 3) {
		t.Error("BERT should be MXU-dominant at batch 32")
	}
	if util(f5.Rows, "DLRM", 3) <= util(f4.Rows, "DLRM", 3) {
		t.Error("DLRM should be VPU-dominant at batch 32")
	}
	// Both units individually below 100% (underutilization, O1).
	for _, row := range append(append([][]string{}, f4.Rows...), f5.Rows...) {
		for _, cell := range row[1:] {
			if cell == "OOM" {
				continue
			}
			if v := parsePercent(t, cell); v > 1 {
				t.Fatalf("temporal util > 100%%: %v", v)
			}
		}
	}
}

func TestFig6MeanNearPaper(t *testing.T) {
	c := testContext()
	tb, err := c.Fig6()
	if err != nil {
		t.Fatal(err)
	}
	// Note records "measured mean X" — paper reports 1.067 (6.7%).
	if !strings.Contains(tb.Note, "measured mean 1.0") && !strings.Contains(tb.Note, "measured mean 1.1") {
		t.Fatalf("ideal speedup mean off: %q", tb.Note)
	}
}

func TestFig9PMTHasNoOverlapGain(t *testing.T) {
	c := testContext()
	tb, err := c.Fig9()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 15 {
		t.Fatalf("Fig9 pair count = %d, want 15", len(tb.Rows))
	}
	// PMT total utilization is the average of the two tenants, so each
	// total column must be ≤ ~ the max of single-tenant utils (< 60%).
	for _, row := range tb.Rows {
		total := parsePercent(t, row[5])
		if total > 0.65 {
			t.Fatalf("%s PMT MXU util %v too high — PMT cannot overlap", row[0], total)
		}
	}
}

func TestFig16SchemesOrdering(t *testing.T) {
	c := testContext()
	tb, err := c.Fig16a()
	if err != nil {
		t.Fatal(err)
	}
	better := 0
	for _, row := range tb.Rows {
		pmt := parsePercent(t, row[1])
		full := parsePercent(t, row[4])
		if full > pmt {
			better++
		}
	}
	if better < 9 {
		t.Fatalf("V10-Full beats PMT on SA util for only %d/11 pairs", better)
	}
}

func TestFig17OverlapOnlyUnderV10(t *testing.T) {
	c := testContext()
	tb, err := c.Fig17()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		pmtBoth := parsePercent(t, row[1])
		fullBoth := parsePercent(t, row[10])
		if pmtBoth > 0.05 {
			t.Fatalf("%s: PMT overlap %v should be ≈ 0", row[0], pmtBoth)
		}
		if fullBoth <= pmtBoth {
			t.Fatalf("%s: V10-Full overlap %v should exceed PMT %v", row[0], fullBoth, pmtBoth)
		}
	}
}

func TestFig18ThroughputShapes(t *testing.T) {
	c := testContext()
	tb, err := c.Fig18()
	if err != nil {
		t.Fatal(err)
	}
	var fullSum float64
	for _, row := range tb.Rows {
		pmt := parseFloatCell(t, row[1])
		full := parseFloatCell(t, row[4])
		if pmt != 1 {
			t.Fatalf("PMT column should be 1.0 (normalization), got %v", pmt)
		}
		if full <= 1.1 {
			t.Fatalf("%s: V10-Full %v should clearly beat PMT", row[0], full)
		}
		fullSum += full
	}
	avg := fullSum / float64(len(tb.Rows))
	// Paper: 1.57× average.
	if avg < 1.3 || avg > 1.9 {
		t.Fatalf("V10-Full average throughput gain = %v, want ≈ 1.57", avg)
	}
}

func TestFig19And20LatencyImproves(t *testing.T) {
	c := testContext()
	f19, err := c.Fig19()
	if err != nil {
		t.Fatal(err)
	}
	f20, err := c.Fig20()
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range []*reportTable{f19, f20} {
		improved := 0
		for _, row := range tb.Rows {
			// V10-Full columns are the last two; values are normalized to PMT.
			d1 := parseFloatCell(t, row[7])
			d2 := parseFloatCell(t, row[8])
			if d1 < 1 {
				improved++
			}
			if d2 < 1 {
				improved++
			}
		}
		if improved < 14 { // at least ~2/3 of the 22 workload slots
			t.Fatalf("%s: V10-Full improved latency for only %d/22 workloads", tb.ID, improved)
		}
	}
}

func TestFig21PreemptionCounts(t *testing.T) {
	c := testContext()
	tb, err := c.Fig21()
	if err != nil {
		t.Fatal(err)
	}
	someV10MorePreempts := false
	for _, row := range tb.Rows {
		pmtOvhd := parsePercent(t, row[2])
		v10Ovhd := parsePercent(t, row[3])
		if pmtOvhd > 0.05 || v10Ovhd > 0.05 {
			t.Fatalf("%s/%s: switch overhead too high (%v, %v); paper keeps both <2%%",
				row[0], row[1], pmtOvhd, v10Ovhd)
		}
		pmtPre := parseFloatCell(t, row[4])
		v10Pre := parseFloatCell(t, row[5])
		if v10Pre > pmtPre {
			someV10MorePreempts = true
		}
	}
	if !someV10MorePreempts {
		t.Fatal("V10 should preempt more often than PMT somewhere (finer granularity)")
	}
}

func TestFig22PriorityMonotone(t *testing.T) {
	c := testContext()
	tb, err := c.Fig22a()
	if err != nil {
		t.Fatal(err)
	}
	// For each pair, V10 DNN1 normalized progress at 90/10 must exceed the
	// value at 50/50.
	perf := map[string]map[string]float64{}
	for _, row := range tb.Rows {
		if perf[row[0]] == nil {
			perf[row[0]] = map[string]float64{}
		}
		perf[row[0]][row[1]] = parseFloatCell(t, row[2])
	}
	monotone := 0
	for pair, m := range perf {
		if m["90%-10%"] > m["50%-50%"] {
			monotone++
		} else {
			t.Logf("pair %s: 90/10 %v vs 50/50 %v", pair, m["90%-10%"], m["50%-50%"])
		}
	}
	if monotone < 8 {
		t.Fatalf("priority raised DNN1 performance for only %d/11 pairs", monotone)
	}
}

func TestFig23SmallSlicesHurt(t *testing.T) {
	c := testContext()
	tb, err := c.Fig23()
	if err != nil {
		t.Fatal(err)
	}
	// Column 1 is 512 cycles, column 4 is the default 32768: the default
	// should beat the tiny slice on average (preemption overhead).
	var tiny, def float64
	for _, row := range tb.Rows {
		tiny += parseFloatCell(t, row[1])
		def += parseFloatCell(t, row[4])
	}
	if def <= tiny {
		t.Fatalf("default slice (%v) should beat 512-cycle slice (%v) on average", def, tiny)
	}
}

func TestFig24VMemShapes(t *testing.T) {
	c := testContext()
	tb, err := c.Fig24()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		// Throughput ratio > 1 at every capacity (V10 always beats PMT).
		for i := 1; i < len(row); i += 2 {
			if v := parseFloatCell(t, row[i]); v < 1 {
				t.Fatalf("%s: V10 below PMT (%v) at capacity column %d", row[0], v, i)
			}
		}
	}
}

func TestFig25Scalability(t *testing.T) {
	c := testContext()
	tb, err := c.Fig25()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// More FUs with many workloads → higher STP: compare (8,8) vs (1,1) at
	// 16 workloads (column 6).
	small := parseFloatCell(t, tb.Rows[0][6])
	big := parseFloatCell(t, tb.Rows[3][6])
	if big < 3*small {
		t.Fatalf("scaling weak: (1,1)=%v (8,8)=%v at 16 workloads", small, big)
	}
	// With only 2 workloads, extra FUs barely help.
	twoW := parseFloatCell(t, tb.Rows[3][1])
	if twoW > 3 {
		t.Fatalf("2 workloads cannot fill 8+8 FUs, got STP %v", twoW)
	}
}

func TestHeadlineSummaryNearPaper(t *testing.T) {
	c := testContext()
	s, err := c.HeadlineSummary()
	if err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		name  string
		got   float64
		paper float64
	}{
		{"utilization", s.UtilizationX, 1.64},
		{"throughput", s.ThroughputX, 1.57},
		{"avg latency", s.AvgLatencyX, 1.56},
		{"tail latency", s.TailLatencyX, 1.74},
	}
	for _, ch := range checks {
		if ch.got < 1.25 || ch.got > 2.2 {
			t.Errorf("%s improvement = %.2fx, paper %.2fx — outside plausible band",
				ch.name, ch.got, ch.paper)
		}
	}
}

func TestTable3MatchesPaperExactly(t *testing.T) {
	c := testContext()
	tb, err := c.Table3()
	if err != nil {
		t.Fatal(err)
	}
	want := [][]string{
		{"1", "1", "2", "43 bytes", "22 cycles"},
		{"1", "1", "4", "86 bytes", "24 cycles"},
		{"2", "2", "4", "86 bytes", "82 cycles"},
		{"4", "4", "8", "173 bytes", "284 cycles"},
	}
	for i, w := range want {
		for j, cell := range w {
			if tb.Rows[i][j] != cell {
				t.Errorf("table3[%d][%d] = %q, want %q", i, j, tb.Rows[i][j], cell)
			}
		}
	}
}

func TestTable5MatchesConfig(t *testing.T) {
	c := testContext()
	tb, err := c.Table5()
	if err != nil {
		t.Fatal(err)
	}
	joined := tb.String()
	for _, want := range []string{"128×128", "8×128×2", "700 MHz", "32 MB", "32 GB, 330 GB/s", "32768 cycles"} {
		if !strings.Contains(joined, want) {
			t.Errorf("table5 missing %q", want)
		}
	}
}

func TestFig15FiveClusters(t *testing.T) {
	c := testContext()
	tb, err := c.Fig15()
	if err != nil {
		t.Fatal(err)
	}
	clusters := map[string]bool{}
	for _, row := range tb.Rows {
		clusters[row[3]] = true
	}
	if len(clusters) < 3 || len(clusters) > 5 {
		t.Fatalf("cluster count = %d, want ≈ 5", len(clusters))
	}
}

func TestPairLabel(t *testing.T) {
	if PairLabel([2]string{"BERT", "NCF"}) != "BERT+NCF" {
		t.Fatal("PairLabel wrong")
	}
}

// reportTable aliases the report type for test brevity.
type reportTable = report.Table

func TestFig8RooflineBounds(t *testing.T) {
	c := testContext()
	tb, err := c.Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) < 50 {
		t.Fatalf("roofline rows = %d, want one per model×batch", len(tb.Rows))
	}
	peakT := c.Config.PeakFLOPS() / 1e12
	for _, row := range tb.Rows {
		tf := parseFloatCell(t, row[3])
		if tf <= 0 || tf > peakT {
			t.Fatalf("%s b%s achieves %v TFLOP/s, outside (0, %v]", row[0], row[1], tf, peakT)
		}
		if row[4] != "compute" && row[4] != "bandwidth" {
			t.Fatalf("bad roof label %q", row[4])
		}
	}
}

func TestTable1MatchesPaperWithin25Pct(t *testing.T) {
	c := testContext()
	tb, err := c.Table1()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{"BERT": 877, "Transformer": 6650, "DLRM": 17}
	for _, row := range tb.Rows {
		if target, ok := want[row[0]]; ok {
			got := parseFloatCell(t, row[1])
			if got < target*0.75 || got > target*1.25 {
				t.Errorf("%s avg SA len = %v µs, want ≈ %v", row[0], got, target)
			}
		}
	}
}

func TestTable4AndTable5Static(t *testing.T) {
	c := testContext()
	t4, err := c.Table4()
	if err != nil {
		t.Fatal(err)
	}
	if len(t4.Rows) != 11 {
		t.Fatalf("table4 rows = %d", len(t4.Rows))
	}
}

func TestFig22bThroughputAlwaysAbovePMT(t *testing.T) {
	c := testContext()
	tb, err := c.Fig22b()
	if err != nil {
		t.Fatal(err)
	}
	above := 0
	total := 0
	for _, row := range tb.Rows {
		for _, cell := range row[1:] {
			total++
			if parseFloatCell(t, cell) > 1 {
				above++
			}
		}
	}
	// Paper: V10 beats PMT at essentially every priority split (one known
	// exception, DLRM+RsNt, which oversubscribes HBM).
	if above < total*8/10 {
		t.Fatalf("V10 above PMT in only %d/%d priority cells", above, total)
	}
}

func TestDisc4SoftwareSchedulerCollapses(t *testing.T) {
	c := testContext()
	tb, err := c.Disc4()
	if err != nil {
		t.Fatal(err)
	}
	worse := 0
	for _, row := range tb.Rows {
		ratio := parseFloatCell(t, row[3])
		if ratio < 1 {
			worse++
		}
		// Short-operator pairs (DLRM collocations) must lose badly.
		if row[0] == "DLRM+RsNt" && ratio > 0.8 {
			t.Fatalf("DLRM+RsNt software/hardware = %v, want well below 0.8", ratio)
		}
	}
	if worse < 9 {
		t.Fatalf("software scheduler should hurt nearly every pair, only %d/11 worse", worse)
	}
}

func TestExt1PremaCannotCloseGap(t *testing.T) {
	c := testContext()
	tb, err := c.Ext1()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		prema := parseFloatCell(t, row[2])
		full := parseFloatCell(t, row[3])
		// PREMA stays near RR throughput; V10 clearly above both.
		if prema < 0.7 || prema > 1.3 {
			t.Fatalf("%s: PREMA STP ratio %v far from 1", row[0], prema)
		}
		if full <= prema*1.05 {
			t.Fatalf("%s: V10-Full (%v) should clearly beat PREMA (%v)", row[0], full, prema)
		}
	}
}

func TestCalibrationWithinTolerance(t *testing.T) {
	c := testContext()
	tb, err := c.Calib()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 11 {
		t.Fatalf("calib rows = %d", len(tb.Rows))
	}
	worst, err := maxRelErr(tb)
	if err != nil {
		t.Fatal(err)
	}
	// Every calibrated statistic should track its paper target within 30%
	// (lognormal jitter plus integer op counts account for the slack).
	if worst > 0.30 {
		t.Fatalf("worst calibration drift = %.1f%%, want ≤ 30%%\n%s", worst*100, tb.String())
	}
}
