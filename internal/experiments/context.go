// Package experiments regenerates every table and figure of the paper's
// characterization (§2) and evaluation (§5) sections from the simulator.
// Each generator returns a report.Table whose rows mirror the paper's
// bars/series; DESIGN.md maps experiment IDs to generators, and
// EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"os"
	"path/filepath"

	"v10/internal/baseline"
	"v10/internal/metrics"
	"v10/internal/models"
	"v10/internal/npu"
	"v10/internal/obs"
	"v10/internal/parallel"
	"v10/internal/sched"
	"v10/internal/trace"
	"v10/internal/tune"
)

// Context carries shared configuration and memoizes simulation runs so that
// figures drawing on the same runs (e.g. Figs. 16–21) simulate them once.
// The memo caches are goroutine-safe with per-key in-flight deduplication,
// so generators and sweep cells may run concurrently: two figures needing
// the same pair wait on one simulation instead of racing to run it twice.
type Context struct {
	Config npu.CoreConfig
	// Requests per workload per collocated run. The paper runs to steady
	// state; a few requests per workload already show the shapes, and the
	// benches scale this up.
	Requests int
	// ProfileRequests per single-tenant characterization run (Figs. 3–8).
	ProfileRequests int
	Seed            uint64
	// Parallel bounds the worker goroutines for sweep fan-out (0 =
	// GOMAXPROCS, 1 = serial). Every simulation engine stays confined to one
	// goroutine and rows are assembled in sweep order, so tables are
	// bit-identical at any worker count.
	Parallel int

	// TraceDir, when set, attaches a Chrome trace writer to every V10 run of
	// every collocation pair and writes <pair>.trace.json files there — any
	// paper figure built on the pair runs can then be replayed as a Perfetto
	// timeline. Pair runs are memoized, so each pair traces exactly once.
	TraceDir string

	// CounterDir, when set, writes interval-sampled per-workload counter
	// snapshots for every pair as <pair>.counters.csv.
	CounterDir string

	// TunedKnobs overrides the committed v10tune policy in the tuned
	// experiment (nil = the built-in search winner).
	TunedKnobs *tune.Knobs

	profiles parallel.Memo[string, *metrics.RunResult]
	pairs    parallel.Memo[string, *pairRun]
	singles  parallel.Memo[string, *metrics.RunResult]
}

// NewContext returns a Context with the paper's default configuration.
func NewContext() *Context {
	return &Context{
		Config:          npu.DefaultConfig(),
		Requests:        4,
		ProfileRequests: 3,
		Seed:            1,
	}
}

type pairRun struct {
	workloads []string
	pmt       *metrics.RunResult
	base      *metrics.RunResult
	fair      *metrics.RunResult
	full      *metrics.RunResult
	rates     []float64
}

// EvalPairs are the 11 collocation pairs of the evaluation figures
// (Figs. 16–24), in the paper's x-axis order.
var EvalPairs = [][2]string{
	{"BERT", "NCF"}, {"BERT", "RtNt"}, {"RsNt", "RtNt"}, {"NCF", "RsNt"},
	{"BERT", "TFMR"}, {"BERT", "DLRM"}, {"RNRS", "SMask"}, {"ENet", "RsNt"},
	{"MNST", "NCF"}, {"DLRM", "RsNt"}, {"RNRS", "MRCN"},
}

// Fig9Pairs are the 15 pairs of the Fig. 9 PMT characterization.
var Fig9Pairs = append(append([][2]string{}, EvalPairs...),
	[2]string{"MNST", "RNRS"}, [2]string{"BERT", "RsNt"},
	[2]string{"DLRM", "RtNt"}, [2]string{"DLRM", "NCF"},
)

// PairLabel renders a pair the way the paper labels its x-axes.
func PairLabel(p [2]string) string { return p[0] + "+" + p[1] }

// workload constructs the Table 4 instance (reference batch) of a model.
func (c *Context) workload(abbrev string) *trace.Workload {
	spec, ok := models.ByName(abbrev)
	if !ok {
		panic(fmt.Sprintf("experiments: unknown model %q", abbrev))
	}
	seed := c.Seed
	for _, ch := range abbrev {
		seed = seed*131 + uint64(ch)
	}
	return spec.Workload(spec.RefBatch, seed, c.Config)
}

// batchWorkload constructs a model instance at an explicit batch size.
func (c *Context) batchWorkload(abbrev string, batch int) *trace.Workload {
	spec, ok := models.ByName(abbrev)
	if !ok {
		panic(fmt.Sprintf("experiments: unknown model %q", abbrev))
	}
	seed := c.Seed + uint64(batch)*977
	for _, ch := range abbrev {
		seed = seed*131 + uint64(ch)
	}
	return spec.Workload(batch, seed, c.Config)
}

// profile memoizes the single-tenant characterization run of model@batch.
func (c *Context) profile(abbrev string, batch int) (*metrics.RunResult, error) {
	key := fmt.Sprintf("%s@%d", abbrev, batch)
	return c.profiles.Do(key, func() (*metrics.RunResult, error) {
		res, err := baseline.RunSingle(c.batchWorkload(abbrev, batch), c.Config, c.ProfileRequests)
		if err != nil {
			return nil, fmt.Errorf("profile %s: %w", key, err)
		}
		return res, nil
	})
}

// single memoizes a single-tenant run of a Table 4 instance.
func (c *Context) single(abbrev string) (*metrics.RunResult, error) {
	return c.singles.Do(abbrev, func() (*metrics.RunResult, error) {
		res, err := baseline.RunSingle(c.workload(abbrev), c.Config, c.Requests)
		if err != nil {
			return nil, fmt.Errorf("single %s: %w", abbrev, err)
		}
		return res, nil
	})
}

// pair memoizes the four-scheme comparison of a collocation pair.
func (c *Context) pair(p [2]string) (*pairRun, error) {
	key := PairLabel(p)
	return c.pairs.Do(key, func() (*pairRun, error) {
		mk := func() []*trace.Workload {
			return []*trace.Workload{c.workload(p[0]), c.workload(p[1])}
		}
		run := &pairRun{workloads: []string{p[0], p[1]}}

		var err error
		if run.rates, err = c.singleRates(p); err != nil {
			return nil, err
		}
		if run.pmt, err = baseline.RunPMT(mk(), baseline.PMTOptions{
			Config: c.Config, RequestsPerWorkload: c.Requests, Seed: c.Seed,
		}); err != nil {
			return nil, fmt.Errorf("PMT %s: %w", key, err)
		}
		var tracer *obs.ChromeWriter
		var counters *obs.CounterLog
		if c.TraceDir != "" {
			tracer = obs.NewChromeWriter(c.Config.CyclesPerMicrosecond())
		}
		if c.CounterDir != "" {
			counters = obs.NewCounterLog()
		}
		for _, variant := range []struct {
			label string
			opts  sched.Options
			dst   **metrics.RunResult
		}{
			{"V10-Base", sched.BaseOptions(), &run.base},
			{"V10-Fair", sched.FairOptions(), &run.fair},
			{"V10-Full", sched.FullOptions(), &run.full},
		} {
			opts := variant.opts
			opts.Config = c.Config
			opts.RequestsPerWorkload = c.Requests
			if tracer != nil {
				tracer.BeginSection(variant.label)
				opts.Tracer = tracer
			}
			if counters != nil {
				counters.BeginSection(variant.label)
				opts.Counters = counters
			}
			res, err := sched.Run(mk(), opts)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", variant.label, key, err)
			}
			*variant.dst = res
		}
		if tracer != nil {
			if err := writeDir(c.TraceDir, key+".trace.json", tracer.WriteFile); err != nil {
				return nil, err
			}
		}
		if counters != nil {
			if err := writeDir(c.CounterDir, key+".counters.csv", counters.WriteFile); err != nil {
				return nil, err
			}
		}
		return run, nil
	})
}

// writeDir ensures dir exists and hands write the joined path.
func writeDir(dir, name string, write func(path string) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	return write(filepath.Join(dir, name))
}

// singleRates returns the pair's single-tenant progress rates, reusing the
// memoized single-tenant runs.
func (c *Context) singleRates(p [2]string) ([]float64, error) {
	rates := make([]float64, 2)
	for i, abbrev := range p {
		res, err := c.single(abbrev)
		if err != nil {
			return nil, err
		}
		rates[i] = res.ProgressRate(0)
	}
	return rates, nil
}

// schemes iterates the four compared designs in paper order.
func (r *pairRun) schemes() []*metrics.RunResult {
	return []*metrics.RunResult{r.pmt, r.base, r.fair, r.full}
}
