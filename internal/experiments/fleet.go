package experiments

import (
	"fmt"

	"v10/internal/collocate"
	"v10/internal/fleet"
	"v10/internal/report"
	"v10/internal/trace"
)

// fleetMix is the tenant population of the placement-policy sweep: SA-heavy
// (BERT, TFMR, RsNt) and VU-heavy (NCF, DLRM, MNST) models interleaved so
// compatibility-aware placement has real signal to exploit.
var fleetMix = []string{"BERT", "NCF", "TFMR", "DLRM", "RsNt", "MNST", "SMask", "ENet"}

// fleetRates is the default load sweep (per-tenant open-loop arrival rates).
var fleetRates = []float64{60, 120, 180}

// fleetTenants builds the sweep's 8-tenant population at batch 8.
func (c *Context) fleetTenants() []*trace.Workload {
	out := make([]*trace.Workload, len(fleetMix))
	for i, abbrev := range fleetMix {
		out[i] = c.batchWorkload(abbrev, 8)
	}
	return out
}

// Fleet compares advisor-guided, least-loaded, and random tenant placement on
// a 4-core serving fleet under a load sweep: every policy sees the identical
// arrival streams; only where requests land differs. Goodput counts requests
// completed within each tenant's SLO (4× its estimated single-tenant service
// time — tight enough that contention-blind placement pays for it).
func (c *Context) Fleet() (*report.Table, error) {
	tenants := c.fleetTenants()
	feats := make([]collocate.Features, len(tenants))
	for i, w := range tenants {
		feats[i] = collocate.ExtractFeatures(w, c.Config, c.ProfileRequests)
	}
	model, err := collocate.Train(tenants, feats, collocate.SimPairPerf(c.Config, c.ProfileRequests),
		collocate.TrainConfig{K: 4, PairSamples: 8, Seed: c.Seed, Parallel: c.Parallel})
	if err != nil {
		return nil, fmt.Errorf("fleet: training advisor: %w", err)
	}

	t := &report.Table{
		ID:    "fleet",
		Title: "Fleet serving: placement policy vs goodput (4 cores, 8 tenants)",
		Header: []string{"rate (Hz)", "policy", "offered", "shed", "completed",
			"goodput (req/s)", "p99 (ms)", "agg util"},
	}
	goodput := map[fleet.Policy][]float64{}
	for _, rate := range fleetRates {
		for _, policy := range []fleet.Policy{fleet.PolicyAdvisor, fleet.PolicyLeastLoaded, fleet.PolicyRandom} {
			res, err := fleet.Run(tenants, fleet.Options{
				Config:    c.Config,
				Cores:     4,
				Policy:    policy,
				Model:     model,
				RateHz:    rate,
				SLOFactor: 4,
				Seed:      c.Seed,
				Parallel:  c.Parallel,
			})
			if err != nil {
				return nil, fmt.Errorf("fleet: rate %v policy %s: %w", rate, policy, err)
			}
			goodput[policy] = append(goodput[policy], res.GoodputHz)
			var p99, util float64
			var cores int
			for _, ts := range res.Tenants {
				if ts.P99LatencyCycles > p99 {
					p99 = ts.P99LatencyCycles
				}
			}
			for _, cr := range res.Cores {
				if cr.Run != nil && cr.Run.TotalCycles > 0 {
					util += cr.Run.AggregateUtil()
					cores++
				}
			}
			if cores > 0 {
				util /= float64(cores)
			}
			t.AddRow(rate, string(policy), res.Offered, res.Shed, res.Completed,
				res.GoodputHz, p99/c.Config.CyclesPerMicrosecond()/1e3, report.Percent(util))
		}
	}
	var advSum, llSum, randSum float64
	for _, g := range goodput[fleet.PolicyAdvisor] {
		advSum += g
	}
	for _, g := range goodput[fleet.PolicyLeastLoaded] {
		llSum += g
	}
	for _, g := range goodput[fleet.PolicyRandom] {
		randSum += g
	}
	t.Note = fmt.Sprintf(
		"aggregate goodput across the sweep: advisor %.0f req/s, least-loaded %.0f req/s (%+.1f%%), random %.0f req/s (%+.1f%%)",
		advSum, llSum, deltaPct(advSum, llSum), randSum, deltaPct(advSum, randSum))
	return t, nil
}

// deltaPct is the advisor's relative goodput advantage over the baseline.
func deltaPct(adv, base float64) float64 {
	if base == 0 {
		return 0
	}
	return (adv/base - 1) * 100
}
