package experiments

import (
	"fmt"

	"v10/internal/report"
	"v10/internal/tune"
)

// Tuned compares the committed v10tune search winner against the default
// knobs on the tuner's own evaluation corpus (rebuilt at the committed
// policy's seed), one row per corpus cell. The fleet and faults rows are the
// regression gate the policy was selected under: goodput at least the
// defaults' at no-worse p99, strictly better goodput on at least one.
func (c *Context) Tuned() (*report.Table, error) {
	knobs := tune.Tuned()
	if c.TunedKnobs != nil {
		knobs = *c.TunedKnobs
	}
	if err := knobs.Validate(); err != nil {
		return nil, fmt.Errorf("tuned experiment: %w", err)
	}
	corpus, err := tune.DefaultCorpus(tune.TunedSeed, c.Parallel)
	if err != nil {
		return nil, fmt.Errorf("tuned experiment: %w", err)
	}
	defaults := tune.DefaultKnobs()

	t := &report.Table{
		ID:    "tuned",
		Title: "Tuned policy vs default knobs (v10tune search winner)",
		Note: fmt.Sprintf("v10tune corpus at seed %d; 'gate' rows are the committed policy's regression gate "+
			"(goodput >= default at p99 <= default, strictly better somewhere); p99 is the worst tenant's, in Mcycles",
			tune.TunedSeed),
		Header: []string{"scenario", "gate", "goodput default (Hz)", "goodput tuned (Hz)", "goodput x",
			"p99 default (Mcy)", "p99 tuned (Mcy)", "p99 x", "fairness default", "fairness tuned"},
	}
	for _, sc := range corpus {
		sd, err := sc.Run(defaults, c.Parallel)
		if err != nil {
			return nil, fmt.Errorf("tuned experiment: defaults on %s: %w", sc.Name, err)
		}
		st, err := sc.Run(knobs, c.Parallel)
		if err != nil {
			return nil, fmt.Errorf("tuned experiment: tuned on %s: %w", sc.Name, err)
		}
		gate := ""
		if tune.GateScenarios[sc.Name] {
			gate = "yes"
		}
		t.AddRow(sc.Name, gate,
			sd.GoodputHz, st.GoodputHz, ratioCell(st.GoodputHz, sd.GoodputHz),
			sd.P99Cycles/1e6, st.P99Cycles/1e6, ratioCell(st.P99Cycles, sd.P99Cycles),
			sd.Fairness, st.Fairness)
	}
	return t, nil
}

// ratioCell renders tuned/default, guarding the degenerate zero baseline.
func ratioCell(v, b float64) string {
	if b == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.3fx", v/b)
}
