package experiments

import (
	"strings"
	"testing"
)

func TestFleetExperiment(t *testing.T) {
	c := testContext()
	tb, err := c.Fleet()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(fleetRates) * 3; len(tb.Rows) != want {
		t.Fatalf("rows = %d, want %d (rates × policies)", len(tb.Rows), want)
	}
	// Sum goodput per policy straight off the table cells.
	goodput := map[string]float64{}
	for _, row := range tb.Rows {
		g := parseFloatCell(t, row[5])
		if g < 0 {
			t.Fatalf("negative goodput %v", g)
		}
		goodput[row[1]] += g
	}
	// The tentpole acceptance criterion: advisor-guided placement must not
	// lose to compatibility-blind least-loaded on aggregate goodput.
	if goodput["advisor"] < goodput["least-loaded"] {
		t.Errorf("advisor goodput %v < least-loaded %v across the sweep",
			goodput["advisor"], goodput["least-loaded"])
	}
	if !strings.Contains(tb.Note, "aggregate goodput") {
		t.Errorf("note missing the aggregate comparison: %q", tb.Note)
	}
}
