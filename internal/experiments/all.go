package experiments

import (
	"fmt"
	"sort"

	"v10/internal/mathx"
	"v10/internal/report"
)

// Generator produces one paper artifact.
type Generator struct {
	ID   string
	Name string
	Run  func(*Context) (*report.Table, error)
}

// Generators returns every table/figure generator in paper order.
func Generators() []Generator {
	return []Generator{
		{"table1", "Average operator lengths", (*Context).Table1},
		{"table2", "Collocation prediction accuracy", (*Context).Table2},
		{"table3", "Scheduler overhead", (*Context).Table3},
		{"table4", "Evaluated models", (*Context).Table4},
		{"table5", "Simulator configuration", (*Context).Table5},
		{"fig3", "FLOPS utilization", (*Context).Fig3},
		{"fig4", "MXU temporal utilization", (*Context).Fig4},
		{"fig5", "VPU temporal utilization", (*Context).Fig5},
		{"fig6", "Ideal operator-parallel speedup", (*Context).Fig6},
		{"fig7", "HBM bandwidth utilization", (*Context).Fig7},
		{"fig8", "Roofline", (*Context).Fig8},
		{"fig9", "PMT collocation utilization", (*Context).Fig9},
		{"fig15", "Workload clustering", (*Context).Fig15},
		{"fig16a", "SA utilization (collocated)", (*Context).Fig16a},
		{"fig16b", "VU utilization (collocated)", (*Context).Fig16b},
		{"fig16c", "HBM BW utilization (collocated)", (*Context).Fig16c},
		{"fig17", "Execution overlap breakdown", (*Context).Fig17},
		{"fig18", "Throughput vs PMT", (*Context).Fig18},
		{"fig19", "Average latency", (*Context).Fig19},
		{"fig20", "95th-percentile tail latency", (*Context).Fig20},
		{"fig21", "Preemption overhead", (*Context).Fig21},
		{"fig22a", "Priority sweep: per-workload", (*Context).Fig22a},
		{"fig22b", "Priority sweep: throughput", (*Context).Fig22b},
		{"fig23", "Time-slice sweep", (*Context).Fig23},
		{"fig24", "Vector-memory sweep", (*Context).Fig24},
		{"fig25", "Scalability", (*Context).Fig25},
		{"disc4", "Hardware vs software scheduler (§4)", (*Context).Disc4},
		{"ext1", "Task-level scheduling gap (PREMA)", (*Context).Ext1},
		{"calib", "Workload-zoo calibration report", (*Context).Calib},
		{"fleet", "Fleet placement-policy sweep", (*Context).Fleet},
		{"faults", "Fleet resilience under injected core failures", (*Context).Faults},
		{"workload", "Workload-engine traffic sweep (bursty + prefill/decode)", (*Context).WorkloadSweep},
		{"elastic", "Elastic control plane: autoscaling vs static provisioning", (*Context).Elastic},
		{"tuned", "Tuned policy vs default knobs (v10tune search winner)", (*Context).Tuned},
	}
}

// ByID returns the generator for an experiment ID.
func ByID(id string) (Generator, bool) {
	for _, g := range Generators() {
		if g.ID == id {
			return g, true
		}
	}
	return Generator{}, false
}

// IDs returns all experiment IDs, sorted.
func IDs() []string {
	gens := Generators()
	ids := make([]string, len(gens))
	for i, g := range gens {
		ids[i] = g.ID
	}
	sort.Strings(ids)
	return ids
}

// RunAll executes every generator, returning the tables in paper order.
func RunAll(c *Context) ([]*report.Table, error) {
	var out []*report.Table
	for _, g := range Generators() {
		t, err := g.Run(c)
		if err != nil {
			return out, fmt.Errorf("experiment %s: %w", g.ID, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// Summary computes the paper's headline geomean improvements of V10-Full
// over PMT across the evaluation pairs: aggregate utilization, throughput,
// average latency, and tail latency.
type Summary struct {
	UtilizationX float64 // paper: 1.64×
	ThroughputX  float64 // paper: 1.57×
	AvgLatencyX  float64 // paper: 1.56× (reduction)
	TailLatencyX float64 // paper: 1.74× (reduction)
}

// HeadlineSummary measures the four abstract-level claims. Pairs whose PMT
// run degenerates (zero utilization, throughput, or latency) are excluded
// from the corresponding geomean; if a whole category ends up empty the
// summary is meaningless and an explicit error is returned rather than a
// silent 0× (or NaN) headline.
func (c *Context) HeadlineSummary() (Summary, error) {
	var utils, tputs, avgs, tails []float64
	for _, p := range EvalPairs {
		run, err := c.pair(p)
		if err != nil {
			return Summary{}, err
		}
		if u := run.pmt.AggregateUtil(); u > 0 {
			utils = append(utils, run.full.AggregateUtil()/u)
		}
		if s := run.pmt.STP(run.rates); s > 0 {
			tputs = append(tputs, run.full.STP(run.rates)/s)
		}
		for wl := 0; wl < 2; wl++ {
			if l := run.full.Workloads[wl].AvgLatency(); l > 0 {
				avgs = append(avgs, run.pmt.Workloads[wl].AvgLatency()/l)
			}
			if l := run.full.Workloads[wl].TailLatency(95); l > 0 {
				tails = append(tails, run.pmt.Workloads[wl].TailLatency(95)/l)
			}
		}
	}
	for name, xs := range map[string][]float64{
		"utilization": utils, "throughput": tputs,
		"average latency": avgs, "tail latency": tails,
	} {
		if len(xs) == 0 {
			return Summary{}, fmt.Errorf("experiments: no valid %s samples across the evaluation pairs", name)
		}
	}
	return Summary{
		UtilizationX: geomean(utils),
		ThroughputX:  geomean(tputs),
		AvgLatencyX:  geomean(avgs),
		TailLatencyX: geomean(tails),
	}, nil
}

func geomean(xs []float64) float64 { return mathx.GeoMean(xs) }
