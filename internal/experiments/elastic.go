package experiments

import (
	"fmt"

	"v10/internal/ctlplane"
	"v10/internal/fleet"
	"v10/internal/report"
	"v10/internal/workload"
)

// Elastic sweep shape: a 6-core fleet whose autoscaled variant starts at 3
// active cores, under a horizon long enough for several control intervals.
const (
	elasticHorizon  = 50_000_000
	elasticMaxCores = 6
	elasticMinCores = 3
)

// elasticScenario is one traffic shape of the elastic sweep.
type elasticScenario struct {
	name  string
	specs []workload.Spec
}

// elasticScenarios builds the two traffic shapes the control plane is judged
// on:
//
//   - diurnal: every tenant swings through the same high-amplitude daily
//     cycle, so fleet demand peaks at ~2× the mean and troughs near idle —
//     the canonical autoscaling case where a static fleet pays for its peak
//     all day.
//   - churn: a base population of steady tenants joined mid-run by sustained
//     high-rate surge tenants while one departs early — a step overload that
//     admission control sees before the autoscaler can react.
func (c *Context) elasticScenarios(n int, rate float64) []elasticScenario {
	diurnal := elasticScenario{name: "diurnal"}
	for i := 0; i < n; i++ {
		diurnal.specs = append(diurnal.specs, workload.Spec{
			Process:   workload.Diurnal,
			RateHz:    rate,
			Amplitude: 0.9,
		})
	}

	churn := elasticScenario{name: "churn"}
	for i := 0; i < n; i++ {
		spec := workload.Spec{Process: workload.Poisson, RateHz: rate}
		switch {
		case i%3 == 1: // sustained surge joining mid-run at 6× the resident rate
			spec.RateHz = 6 * rate
			spec.StartCycle = elasticHorizon * 2 / 5
		case i == 2: // early departure
			spec.EndCycle = elasticHorizon / 2
		}
		churn.specs = append(churn.specs, spec)
	}
	return []elasticScenario{diurnal, churn}
}

// elasticControl returns the sweep's control-loop policy: hysteresis of one
// window and a one-interval cooldown, tight enough to track the diurnal swing
// inside the horizon.
func elasticControl() *ctlplane.Config {
	return &ctlplane.Config{
		MinCores:          elasticMinCores,
		IntervalCycles:    elasticHorizon / 32,
		CooldownCycles:    elasticHorizon / 32,
		HysteresisWindows: 1,
	}
}

// Elastic compares a statically peak-provisioned fleet against the SLO-driven
// autoscaler, crossed with queue-bound vs predictive admission, under churn
// and diurnal traffic. Every cell sees the identical per-tenant arrival
// schedules; only capacity management and the admission test differ. The
// claim under test: the autoscaler matches the static fleet's p99 within a
// few percent while provisioning materially fewer core-cycles, and
// predictive admission converts shed decisions into goodput when churn
// overloads the fleet faster than scaling can react.
func (c *Context) Elastic() (*report.Table, error) {
	tenants := c.fleetTenants()
	t := &report.Table{
		ID:    "elastic",
		Title: "Elastic control plane: static vs autoscaled fleet × admission policy (6 cores, 8 tenants)",
		Header: []string{"scenario", "fleet", "admission", "offered", "shed", "completed",
			"goodput (req/s)", "p99 (ms)", "provisioned (Mcyc)", "vs static"},
	}

	type cell struct{ goodput, p99, provisioned float64 }
	cells := map[string]map[string]cell{}
	static := float64(elasticMaxCores) * elasticHorizon

	for _, sc := range c.elasticScenarios(len(fleetMix), 80) {
		eng := workload.Engine{Config: c.Config, HorizonCycles: elasticHorizon, Seed: c.Seed}
		arrivals, err := eng.Schedules(sc.specs)
		if err != nil {
			return nil, fmt.Errorf("elastic: scheduling %s arrivals: %w", sc.name, err)
		}
		cells[sc.name] = map[string]cell{}

		for _, fl := range []string{"static", "autoscale"} {
			for _, adm := range []fleet.Admission{fleet.AdmitQueueBound, fleet.AdmitPredictive} {
				o := fleet.Options{
					Config:         c.Config,
					Cores:          elasticMaxCores,
					Policy:         fleet.PolicyLeastLoaded,
					Arrivals:       arrivals,
					DurationCycles: elasticHorizon,
					QueueLimit:     32,
					SLOFactor:      4,
					Admission:      adm,
					// Gate a notch under the SLO factor so borderline
					// admissions retain margin for estimate noise.
					SlowdownLimit: 2.5,
					// The serial profile over-estimates service on a
					// collocating core by ~2×; a calibrated scale keeps the
					// admission model's virtual queues draining at the rate
					// the fleet actually realizes.
					EstimateScale: 0.45,
					Seed:          c.Seed,
					Parallel:      c.Parallel,
				}
				if fl == "autoscale" {
					o.Elastic = elasticControl()
				}
				res, err := fleet.Run(tenants, o)
				if err != nil {
					return nil, fmt.Errorf("elastic: %s %s %s: %w", sc.name, fl, adm, err)
				}
				var p99 float64
				for _, ts := range res.Tenants {
					if ts.P99LatencyCycles > p99 {
						p99 = ts.P99LatencyCycles
					}
				}
				cells[sc.name][fl+"/"+string(adm)] = cell{
					goodput:     res.GoodputHz,
					p99:         p99,
					provisioned: float64(res.ProvisionedCoreCycles),
				}
				t.AddRow(sc.name, fl, string(adm), res.Offered, res.Shed, res.Completed,
					res.GoodputHz, p99/c.Config.CyclesPerMicrosecond()/1e3,
					float64(res.ProvisionedCoreCycles)/1e6,
					report.Percent(float64(res.ProvisionedCoreCycles)/static))
			}
		}
	}

	qb := string(fleet.AdmitQueueBound)
	pred := string(fleet.AdmitPredictive)
	di, ch := cells["diurnal"], cells["churn"]
	t.Note = fmt.Sprintf(
		"diurnal: autoscaled p99 %+.1f%% vs static at %.0f%% of its provisioned core-cycles; "+
			"churn: predictive admission goodput %+.1f%% vs queue-bound on the autoscaled fleet",
		deltaPct(di["autoscale/"+qb].p99, di["static/"+qb].p99),
		100*di["autoscale/"+qb].provisioned/di["static/"+qb].provisioned,
		deltaPct(ch["autoscale/"+pred].goodput, ch["autoscale/"+qb].goodput))
	return t, nil
}
