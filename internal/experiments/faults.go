package experiments

import (
	"fmt"

	"v10/internal/collocate"
	"v10/internal/faults"
	"v10/internal/fleet"
	"v10/internal/report"
)

// faultMTTFs is the resilience sweep's mean-time-to-failure axis in cycles.
// The axis spans partial-fleet failure (three of four cores lost) down to a
// single failure; it deliberately stays above the regime where every core
// dies, because with no survivors there is nowhere to migrate and every
// strategy collapses to the same shed-everything outcome.
var faultMTTFs = []int64{130_000_000, 160_000_000, 400_000_000}

const (
	faultDuration  = 40_000_000 // arrival window in cycles (≈57 ms at 700 MHz)
	faultCores     = 4
	faultRateHz    = 120
	faultHeartbeat = 250_000 // detection lag ≪ the work lost to a failure
	faultSLO       = 25      // loose enough that recovered (debt-carrying) requests can still be good
)

// faultConfigs are the compared resilience strategies. Migration is the
// recovery path under test; the shed-only row is the ablation that drops
// every victim, and the least-loaded row removes compatibility-aware
// placement from the recovery target choice.
var faultConfigs = []struct {
	label       string
	policy      fleet.Policy
	noMigration bool
}{
	{"advisor+migrate", fleet.PolicyAdvisor, false},
	{"least-loaded+migrate", fleet.PolicyLeastLoaded, false},
	{"advisor shed-only", fleet.PolicyAdvisor, true},
}

// Faults sweeps core mean-time-to-failure on a 4-core serving fleet and
// compares resilience strategies: checkpoint-driven migration of a failed
// core's victims to surviving compatible cores versus shedding them. Every
// cell also runs fault-free under its own configuration, so "retained" is
// the fraction of fault-free goodput the strategy preserved through the
// injected failures. Fault schedules depend only on the mttf and seed —
// every strategy faces the identical failures.
func (c *Context) Faults() (*report.Table, error) {
	tenants := c.fleetTenants()
	feats := make([]collocate.Features, len(tenants))
	for i, w := range tenants {
		feats[i] = collocate.ExtractFeatures(w, c.Config, c.ProfileRequests)
	}
	model, err := collocate.Train(tenants, feats, collocate.SimPairPerf(c.Config, c.ProfileRequests),
		collocate.TrainConfig{K: 4, PairSamples: 8, Seed: c.Seed, Parallel: c.Parallel})
	if err != nil {
		return nil, fmt.Errorf("faults: training advisor: %w", err)
	}

	t := &report.Table{
		ID:    "faults",
		Title: "Fleet resilience: MTTF sweep vs recovery strategy (4 cores, 8 tenants)",
		Header: []string{"mttf (ms)", "strategy", "failed", "migrated", "mig-shed",
			"completed", "goodput (req/s)", "retained"},
	}
	baseOptions := func(policy fleet.Policy) fleet.Options {
		return fleet.Options{
			Config:          c.Config,
			Cores:           faultCores,
			Policy:          policy,
			Model:           model,
			RateHz:          faultRateHz,
			DurationCycles:  faultDuration,
			SLOFactor:       faultSLO,
			HeartbeatCycles: faultHeartbeat,
			MissedBeats:     2,
			Seed:            c.Seed,
			Parallel:        c.Parallel,
		}
	}
	retained := map[string]float64{}
	for _, mttf := range faultMTTFs {
		schedule := faults.Generate(faultCores, faultDuration, mttf, c.Seed)
		for _, fc := range faultConfigs {
			o := baseOptions(fc.policy)
			baseRes, err := fleet.Run(tenants, o)
			if err != nil {
				return nil, fmt.Errorf("faults: mttf %d %s fault-free baseline: %w", mttf, fc.label, err)
			}
			o.Faults = schedule
			o.NoMigration = fc.noMigration
			res, err := fleet.Run(tenants, o)
			if err != nil {
				return nil, fmt.Errorf("faults: mttf %d %s: %w", mttf, fc.label, err)
			}
			frac := 0.0
			if baseRes.GoodputHz > 0 {
				frac = res.GoodputHz / baseRes.GoodputHz
			}
			retained[fc.label] += frac
			t.AddRow(c.Config.MicrosecondsFromCycles(mttf)/1e3, fc.label,
				len(res.FailedCores), res.Migrated, res.MigrationShed,
				res.Completed, res.GoodputHz, report.Percent(frac))
		}
	}
	n := float64(len(faultMTTFs))
	t.Note = fmt.Sprintf(
		"mean goodput retained across the sweep: advisor+migrate %.1f%%, least-loaded+migrate %.1f%%, advisor shed-only %.1f%%",
		100*retained["advisor+migrate"]/n, 100*retained["least-loaded+migrate"]/n,
		100*retained["advisor shed-only"]/n)
	return t, nil
}
