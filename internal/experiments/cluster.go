package experiments

import (
	"fmt"

	"v10/internal/mathx"

	"v10/internal/collocate"
	"v10/internal/models"
	"v10/internal/report"
	"v10/internal/trace"
)

// clusterInstances builds the workload-instance population used by the
// clustering experiments: every model at a few batch sizes (skipping OOM),
// mirroring "each point is a model with a distinct batch size" (Fig. 15).
func (c *Context) clusterInstances(batches []int) ([]*trace.Workload, []collocate.Features) {
	var ws []*trace.Workload
	var fs []collocate.Features
	for i, spec := range models.Specs() {
		for _, b := range batches {
			if spec.OOM(b, c.Config.HBMBytes) {
				continue
			}
			w := spec.Workload(b, c.Seed+uint64(i*1000+b), c.Config)
			ws = append(ws, w)
			fs = append(fs, collocate.ExtractFeatures(w, c.Config, c.ProfileRequests))
		}
	}
	return ws, fs
}

// Fig15 regenerates the clustering scatter: each workload instance's SA
// utilization and HBM bandwidth utilization with its assigned cluster.
func (c *Context) Fig15() (*report.Table, error) {
	_, fs := c.clusterInstances([]int{8, 32, 64})
	model, err := collocate.ClusterOnly(fs, collocate.TrainConfig{K: 5, Seed: c.Seed})
	if err != nil {
		return nil, fmt.Errorf("fig15: %w", err)
	}
	t := &report.Table{
		ID:     "fig15",
		Title:  "Clustering of the 11 ML models at different batch sizes",
		Header: []string{"instance", "SA util", "HBM BW util", "cluster"},
	}
	rows := make([][]float64, len(fs))
	labels := make([]int, len(fs))
	for i, f := range fs {
		rows[i] = f.Vec
		labels[i] = model.PredictCluster(f)
		t.AddRow(f.Name, report.Percent(f.Vec[0]), report.Percent(f.Vec[2]),
			fmt.Sprintf("%d", labels[i]))
	}
	sil := mathx.Silhouette(mathx.MatrixFromRows(rows), labels)
	t.Note = fmt.Sprintf(
		"PCA + K-Means (K=5) over resource features; axes match the paper's scatter; silhouette %.2f", sil)
	return t, nil
}

// Table2 regenerates the collocation-prediction comparison: Random,
// Heuristic, and Clustering under leave-two-models-out cross-validation,
// predicting whether a pair reaches ≥1.3× the PMT throughput under V10.
func (c *Context) Table2() (*report.Table, error) {
	// The population spans batch sizes like the Fig. 15 dataset: large-batch
	// instances have high FU occupancy, so many same-FU pairs genuinely
	// fall below the 1.3× benefit threshold (the negative class).
	workloads, feats := c.clusterInstances([]int{32, 256, 1024})
	perf := collocate.SimPairPerf(c.Config, mathx.MaxInt(2, c.Requests/2))
	results, err := collocate.CrossValidate(workloads, feats, perf,
		collocate.TrainConfig{K: 5, Threshold: 1.3, PairSamples: 12, Seed: c.Seed, Parallel: c.Parallel},
		func(m *collocate.Model) []collocate.Predictor {
			return []collocate.Predictor{
				collocate.RandomPolicy{},
				collocate.HeuristicPolicy{},
				collocate.ClusteringPolicy{Model: m},
			}
		})
	if err != nil {
		return nil, fmt.Errorf("table2: %w", err)
	}
	t := &report.Table{
		ID:    "table2",
		Title: "Prediction accuracy and worst-case performance of collocation schemes",
		Note:  "positive = collocation improves throughput ≥1.3× vs PMT; leave-2-models-out CV",
		Header: []string{"scheme", "accuracy", "true pos", "true neg",
			"false pos", "false neg", "worst perf", "pairs"},
	}
	for _, r := range results {
		t.AddRow(r.Predictor,
			report.Percent(r.Accuracy), report.Percent(r.TPRate), report.Percent(r.TNRate),
			report.Percent(r.FPRate), report.Percent(r.FNRate),
			fmt.Sprintf("%.3fx", r.WorstPerf), fmt.Sprintf("%d", r.N))
	}
	return t, nil
}
