package experiments

import (
	"strings"
	"testing"
)

func TestFaultsExperiment(t *testing.T) {
	c := testContext()
	tb, err := c.Faults()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(faultMTTFs) * len(faultConfigs); len(tb.Rows) != want {
		t.Fatalf("rows = %d, want %d (mttfs × strategies)", len(tb.Rows), want)
	}
	goodput := map[string]float64{}
	retained := map[string]float64{}
	var failures, migrations int
	for _, row := range tb.Rows {
		label := row[1]
		failures += int(parseFloatCell(t, row[2]))
		migrations += int(parseFloatCell(t, row[3]))
		goodput[label] += parseFloatCell(t, row[6])
		retained[label] += parsePercent(t, row[7])
	}
	if failures == 0 {
		t.Fatal("the sweep injected no core failures — mttf axis is toothless")
	}
	if migrations == 0 {
		t.Fatal("no migrations landed across the sweep")
	}
	// The resilience acceptance criterion: recovering victims by
	// checkpoint-driven migration must retain strictly more goodput than
	// shedding them, on aggregate across the default sweep.
	if goodput["advisor+migrate"] <= goodput["advisor shed-only"] {
		t.Errorf("advisor+migrate goodput %v ≤ shed-only %v across the sweep",
			goodput["advisor+migrate"], goodput["advisor shed-only"])
	}
	if retained["advisor+migrate"] <= retained["advisor shed-only"] {
		t.Errorf("advisor+migrate retained %v ≤ shed-only %v across the sweep",
			retained["advisor+migrate"], retained["advisor shed-only"])
	}
	if !strings.Contains(tb.Note, "goodput retained") {
		t.Errorf("note missing the retained-goodput comparison: %q", tb.Note)
	}
}
