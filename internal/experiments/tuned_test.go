package experiments

import (
	"strings"
	"testing"

	"v10/internal/tune"
)

func TestTunedExperimentRegistered(t *testing.T) {
	g, ok := ByID("tuned")
	if !ok {
		t.Fatal("tuned experiment not registered")
	}
	if g.Name == "" {
		t.Fatal("tuned experiment has no name")
	}
}

func TestTunedExperimentTable(t *testing.T) {
	c := NewContext()
	tb, err := c.Tuned()
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != "tuned" {
		t.Fatalf("table ID %q", tb.ID)
	}
	if len(tb.Rows) != 4 {
		t.Fatalf("%d rows, want one per corpus cell", len(tb.Rows))
	}
	gateRows := 0
	for _, row := range tb.Rows {
		if tune.GateScenarios[row[0]] {
			if row[1] != "yes" {
				t.Errorf("gate cell %s not marked", row[0])
			}
			gateRows++
		} else if row[1] != "" {
			t.Errorf("non-gate cell %s marked as gate", row[0])
		}
	}
	if gateRows != len(tune.GateScenarios) {
		t.Fatalf("table covers %d of %d gate cells", gateRows, len(tune.GateScenarios))
	}
	if !strings.Contains(tb.Note, "seed") {
		t.Errorf("note omits the corpus seed: %q", tb.Note)
	}
}

func TestTunedExperimentRejectsBadOverride(t *testing.T) {
	c := NewContext()
	bad := tune.DefaultKnobs()
	bad.QueueLimit = -5
	c.TunedKnobs = &bad
	if _, err := c.Tuned(); err == nil {
		t.Fatal("invalid knob override accepted")
	}
}
