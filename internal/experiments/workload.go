package experiments

import (
	"fmt"

	"v10/internal/collocate"
	"v10/internal/fleet"
	"v10/internal/report"
	"v10/internal/trace"
	"v10/internal/workload"
)

// workloadHorizon is the arrival window of the workload-engine sweep
// (50e6 cycles ≈ 71 ms at 700 MHz, the fleet default).
const workloadHorizon = 50_000_000

// workloadScenario is one row group of the sweep: a tenant population plus
// the per-tenant traffic specs the engine turns into arrival schedules.
type workloadScenario struct {
	name    string
	tenants []*trace.Workload
	specs   []workload.Spec
}

// workloadScenarios builds the two flagship scenarios:
//
//   - bursty: the fleet sweep's 8-model mix under MMPP flash crowds — long
//     calm stretches at a fraction of the mean rate punctuated by 8× bursts,
//     so placement quality decides whether bursts shed or ride out on a
//     compatible neighbor's idle engines.
//   - prefill/decode: the LLM serving mix — SA-bound prefill tenants against
//     VU/HBM-bound decode tenants on anti-phased diurnal traffic, the
//     FlexNPU-style collocation case the advisor is built for.
func (c *Context) workloadScenarios() []workloadScenario {
	bursty := workloadScenario{name: "bursty", tenants: c.fleetTenants()}
	for range bursty.tenants {
		bursty.specs = append(bursty.specs, workload.Spec{
			Process: workload.MMPP,
			RateHz:  180,
		})
	}

	mix := workload.PrefillDecodeMix(8, 120, c.Config, c.Seed)
	return []workloadScenario{
		bursty,
		{name: "prefill/decode", tenants: mix.Workloads, specs: mix.Specs},
	}
}

// WorkloadSweep compares the placement policies under the workload engine's
// non-Poisson traffic: every policy sees the identical per-tenant arrival
// schedules (bit-deterministic in the seed); only where requests land
// differs. The dispatcher runs with a 16-deep queue and an 8× SLO so that
// bursts queue rather than shed instantly — with the default shallow queue,
// burst goodput is decided by shed coin-flips at the admission edge instead
// of by how well the collocated residents absorb the backlog, which is the
// thing placement quality actually controls. Fairness is Jain's index over
// per-tenant goodput — 1 means every tenant got the same share of good
// completions, 1/n means one tenant took everything.
func (c *Context) WorkloadSweep() (*report.Table, error) {
	t := &report.Table{
		ID:    "workload",
		Title: "Workload engine: placement policy vs goodput under production-style traffic (4 cores, 8 tenants)",
		Header: []string{"scenario", "policy", "offered", "shed", "completed",
			"goodput (req/s)", "p99 (ms)", "fairness"},
	}
	goodput := map[string]map[fleet.Policy]float64{}
	for _, sc := range c.workloadScenarios() {
		feats := make([]collocate.Features, len(sc.tenants))
		for i, w := range sc.tenants {
			feats[i] = collocate.ExtractFeatures(w, c.Config, c.ProfileRequests)
		}
		model, err := collocate.Train(sc.tenants, feats, collocate.SimPairPerf(c.Config, c.ProfileRequests),
			collocate.TrainConfig{K: 4, PairSamples: 8, Seed: c.Seed, Parallel: c.Parallel})
		if err != nil {
			return nil, fmt.Errorf("workload: training advisor for %s: %w", sc.name, err)
		}
		eng := workload.Engine{Config: c.Config, HorizonCycles: workloadHorizon, Seed: c.Seed}
		arrivals, err := eng.Schedules(sc.specs)
		if err != nil {
			return nil, fmt.Errorf("workload: scheduling %s arrivals: %w", sc.name, err)
		}

		goodput[sc.name] = map[fleet.Policy]float64{}
		for _, policy := range []fleet.Policy{fleet.PolicyAdvisor, fleet.PolicyLeastLoaded, fleet.PolicyRandom} {
			res, err := fleet.Run(sc.tenants, fleet.Options{
				Config:         c.Config,
				Cores:          4,
				Policy:         policy,
				Model:          model,
				Arrivals:       arrivals,
				DurationCycles: workloadHorizon,
				QueueLimit:     16,
				SLOFactor:      8,
				Seed:           c.Seed,
				Parallel:       c.Parallel,
			})
			if err != nil {
				return nil, fmt.Errorf("workload: %s policy %s: %w", sc.name, policy, err)
			}
			goodput[sc.name][policy] = res.GoodputHz
			var p99 float64
			good := make([]float64, len(res.Tenants))
			for i, ts := range res.Tenants {
				if ts.P99LatencyCycles > p99 {
					p99 = ts.P99LatencyCycles
				}
				good[i] = float64(ts.Good)
			}
			t.AddRow(sc.name, string(policy), res.Offered, res.Shed, res.Completed,
				res.GoodputHz, p99/c.Config.CyclesPerMicrosecond()/1e3, jain(good))
		}
	}
	t.Note = fmt.Sprintf(
		"advisor vs least-loaded goodput: bursty %+.1f%%, prefill/decode %+.1f%% — collocation-aware placement holds its lead when traffic is bursty and anti-phased, where a load-only estimate is stalest",
		deltaPct(goodput["bursty"][fleet.PolicyAdvisor], goodput["bursty"][fleet.PolicyLeastLoaded]),
		deltaPct(goodput["prefill/decode"][fleet.PolicyAdvisor], goodput["prefill/decode"][fleet.PolicyLeastLoaded]))
	return t, nil
}

// jain is Jain's fairness index over per-tenant values: (Σx)²/(n·Σx²),
// 1 when all equal, 1/n under total capture. Zero-good runs report 0.
func jain(xs []float64) float64 {
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}
