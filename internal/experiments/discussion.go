package experiments

import (
	"fmt"

	"v10/internal/baseline"
	"v10/internal/report"
	"v10/internal/sched"
	"v10/internal/trace"
)

// Ext1 is an extension experiment: how much of V10's gain could a smarter
// task-level scheduler recover? It compares plain round-robin PMT, PREMA's
// token-based policy with SJF tiebreaks (the actual baseline system the
// paper cites), and V10-Full. The answer — PREMA helps latency fairness but
// cannot recover the throughput, because no task-level scheduler overlaps
// SA and VU execution — is the paper's O4 in table form.
func (c *Context) Ext1() (*report.Table, error) {
	t := &report.Table{
		ID:    "ext1",
		Title: "Task-level scheduling cannot close the gap: PMT-RR vs PMT-PREMA vs V10-Full (STP vs PMT-RR)",
		Note:  "each pair plus a short MNIST tenant (PREMA needs ≥3 tenants to differ from RR); no task-level policy overlaps SA and VU (O4)",
		Header: []string{"trio", "PMT-RR", "PMT-PREMA", "V10-Full",
			"PREMA MNST p95 vs RR"},
	}
	for _, p := range EvalPairs {
		mk := func() []*trace.Workload {
			return []*trace.Workload{
				c.workload(p[0]), c.workload(p[1]), c.workload("MNST"),
			}
		}
		rates, err := baseline.SingleTenantRates(mk(), c.Config, c.Requests)
		if err != nil {
			return nil, fmt.Errorf("ext1 %s: %w", PairLabel(p), err)
		}
		rr, err := baseline.RunPMT(mk(), baseline.PMTOptions{
			Config: c.Config, RequestsPerWorkload: c.Requests, Seed: c.Seed,
		})
		if err != nil {
			return nil, fmt.Errorf("ext1 RR %s: %w", PairLabel(p), err)
		}
		prema, err := baseline.RunPMT(mk(), baseline.PMTOptions{
			Config: c.Config, RequestsPerWorkload: c.Requests,
			Seed: c.Seed, Policy: baseline.PMTPrema,
		})
		if err != nil {
			return nil, fmt.Errorf("ext1 PREMA %s: %w", PairLabel(p), err)
		}
		opts := sched.FullOptions()
		opts.Config = c.Config
		opts.RequestsPerWorkload = c.Requests
		full, err := sched.Run(mk(), opts)
		if err != nil {
			return nil, fmt.Errorf("ext1 V10 %s: %w", PairLabel(p), err)
		}
		rrSTP := rr.STP(rates)
		premaSTP, fullSTP := 0.0, 0.0
		if rrSTP > 0 {
			premaSTP = prema.STP(rates) / rrSTP
			fullSTP = full.STP(rates) / rrSTP
		}
		tailRatio := 0.0
		if t95 := rr.Workloads[2].TailLatency(95); t95 > 0 {
			tailRatio = prema.Workloads[2].TailLatency(95) / t95
		}
		t.AddRow(PairLabel(p)+"+MNST", 1.0, premaSTP, fullSTP, report.FormatFloat(tailRatio))
	}
	return t, nil
}

// Disc4 quantifies the paper's §4 discussion of the alternative
// software-based operator scheduler: the same V10-Full policy but with each
// scheduling decision made in host runtime (~20 µs exposed per dispatch)
// instead of in hardware (latency hidden). The paper argues the software
// overhead is "too large for most operators"; this experiment measures it.
func (c *Context) Disc4() (*report.Table, error) {
	t := &report.Table{
		ID:    "disc4",
		Title: "Hardware vs software operator scheduler (§4), throughput normalized to PMT",
		Note:  "software scheduling pays ~20 µs per dispatch; short-operator workloads collapse",
		Header: []string{"pair", "V10-Full (hw)", "V10-Full (sw)", "sw/hw",
			"sw dispatch overhead"},
	}
	for _, p := range EvalPairs {
		run, err := c.pair(p)
		if err != nil {
			return nil, err
		}
		stpPMT := run.pmt.STP(run.rates)
		opts := sched.FullOptions()
		opts.Config = c.Config
		opts.RequestsPerWorkload = c.Requests
		opts.SoftwareScheduler = true
		sw, err := sched.Run([]*trace.Workload{c.workload(p[0]), c.workload(p[1])}, opts)
		if err != nil {
			return nil, fmt.Errorf("disc4 %s: %w", PairLabel(p), err)
		}
		hwSTP, swSTP := 0.0, 0.0
		if stpPMT > 0 {
			hwSTP = run.full.STP(run.rates) / stpPMT
			swSTP = sw.STP(run.rates) / stpPMT
		}
		var swOvhd int64
		for _, w := range sw.Workloads {
			swOvhd += w.SwitchCycles
		}
		ratio := 0.0
		if hwSTP > 0 {
			ratio = swSTP / hwSTP
		}
		t.AddRow(PairLabel(p),
			report.FormatFloat(hwSTP), report.FormatFloat(swSTP),
			report.FormatFloat(ratio),
			report.Percent(float64(swOvhd)/float64(sw.TotalCycles)))
	}
	return t, nil
}
