package experiments

import (
	"v10/internal/mathx"
	"v10/internal/report"
)

// Fig9 regenerates the PMT characterization: per-workload MXU and VPU
// utilization for 15 collocated pairs under preemptive multitasking.
func (c *Context) Fig9() (*report.Table, error) {
	t := &report.Table{
		ID:     "fig9",
		Title:  "NPU utilization with preemptive multi-tasking (PMT)",
		Note:   "per-workload breakdown; PMT time-shares, so utilizations average rather than add",
		Header: []string{"pair", "DNN1 MXU", "DNN2 MXU", "DNN1 VPU", "DNN2 VPU", "total MXU", "total VPU"},
	}
	for _, p := range Fig9Pairs {
		run, err := c.pair(p)
		if err != nil {
			return nil, err
		}
		pmt := run.pmt
		t.AddRow(PairLabel(p),
			report.Percent(pmt.WorkloadSAUtil(0)), report.Percent(pmt.WorkloadSAUtil(1)),
			report.Percent(pmt.WorkloadVUUtil(0)), report.Percent(pmt.WorkloadVUUtil(1)),
			report.Percent(pmt.SAUtil()), report.Percent(pmt.VUUtil()))
	}
	return t, nil
}

var schemeNames = []string{"PMT", "V10-Base", "V10-Fair", "V10-Full"}

// schemeTable builds a pair×scheme table from a per-run metric.
func (c *Context) schemeTable(id, title, note string,
	metric func(run *pairRun, scheme int) float64,
	format func(float64) string) (*report.Table, error) {

	t := &report.Table{ID: id, Title: title, Note: note}
	t.Header = append([]string{"pair"}, schemeNames...)
	for _, p := range EvalPairs {
		run, err := c.pair(p)
		if err != nil {
			return nil, err
		}
		row := []string{PairLabel(p)}
		for s := range run.schemes() {
			row = append(row, format(metric(run, s)))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig16a regenerates systolic array utilization per pair and scheme.
func (c *Context) Fig16a() (*report.Table, error) {
	return c.schemeTable("fig16a", "SA utilization when collocating two workloads", "",
		func(run *pairRun, s int) float64 { return run.schemes()[s].SAUtil() },
		report.Percent)
}

// Fig16b regenerates vector unit utilization per pair and scheme.
func (c *Context) Fig16b() (*report.Table, error) {
	return c.schemeTable("fig16b", "VU utilization when collocating two workloads", "",
		func(run *pairRun, s int) float64 { return run.schemes()[s].VUUtil() },
		report.Percent)
}

// Fig16c regenerates HBM bandwidth utilization per pair and scheme.
func (c *Context) Fig16c() (*report.Table, error) {
	return c.schemeTable("fig16c", "Memory bandwidth utilization", "",
		func(run *pairRun, s int) float64 { return run.schemes()[s].HBMUtil() },
		report.Percent)
}

// Fig17 regenerates the execution-time breakdown: fraction of wall time with
// both SA and VU operators running, SA only, and VU only.
func (c *Context) Fig17() (*report.Table, error) {
	t := &report.Table{
		ID:    "fig17",
		Title: "Execution time breakdown of SA and VU operators",
		Note:  "per scheme: both / SA-only / VU-only fractions of wall time",
	}
	t.Header = []string{"pair"}
	for _, s := range schemeNames {
		t.Header = append(t.Header, s+" both", s+" SA", s+" VU")
	}
	for _, p := range EvalPairs {
		run, err := c.pair(p)
		if err != nil {
			return nil, err
		}
		row := []string{PairLabel(p)}
		for _, res := range run.schemes() {
			both, sa, vu := res.OverlapBreakdown()
			row = append(row, report.Percent(both), report.Percent(sa), report.Percent(vu))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig18 regenerates system throughput (STP) normalized to PMT.
func (c *Context) Fig18() (*report.Table, error) {
	return c.schemeTable("fig18",
		"Overall throughput (sum of normalized progress), normalized to PMT",
		"STP per Eyerman & Eeckhout; >1 means better than preemptive multitasking",
		func(run *pairRun, s int) float64 {
			pmtSTP := run.pmt.STP(run.rates)
			if pmtSTP == 0 {
				return 0
			}
			return run.schemes()[s].STP(run.rates) / pmtSTP
		},
		report.FormatFloat)
}

// latencyTable builds Fig. 19/20-style per-workload latency tables
// (normalized to PMT; lower is better, paper plots the inverse ratio as
// "improvement").
func (c *Context) latencyTable(id, title string, lat func(run *pairRun, scheme, wl int) float64) (*report.Table, error) {
	t := &report.Table{ID: id, Title: title,
		Note: "normalized to PMT; <1 is better than PMT"}
	t.Header = []string{"pair"}
	for _, s := range schemeNames {
		t.Header = append(t.Header, s+" DNN1", s+" DNN2")
	}
	for _, p := range EvalPairs {
		run, err := c.pair(p)
		if err != nil {
			return nil, err
		}
		row := []string{PairLabel(p)}
		for s := range run.schemes() {
			for wl := 0; wl < 2; wl++ {
				base := lat(run, 0, wl)
				v := 0.0
				if base > 0 {
					v = lat(run, s, wl) / base
				}
				row = append(row, report.FormatFloat(v))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// Fig19 regenerates average latency of collocated workloads.
func (c *Context) Fig19() (*report.Table, error) {
	return c.latencyTable("fig19", "Average latency of collocated DNN inference workloads",
		func(run *pairRun, s, wl int) float64 {
			return run.schemes()[s].Workloads[wl].AvgLatency()
		})
}

// Fig20 regenerates 95th-percentile tail latency of collocated workloads.
func (c *Context) Fig20() (*report.Table, error) {
	return c.latencyTable("fig20", "95th-percentile tail latency of collocated DNN inference workloads",
		func(run *pairRun, s, wl int) float64 {
			return run.schemes()[s].Workloads[wl].TailLatency(95)
		})
}

// Fig21 regenerates the preemption-overhead study: context-switch overhead
// (relative to useful cycles) and preemptions per request, PMT vs V10-Full.
func (c *Context) Fig21() (*report.Table, error) {
	t := &report.Table{
		ID:    "fig21",
		Title: "Context switch overhead and preemption counts",
		Note:  "overhead = switch cycles / total cycles; V10 preempts far more often at similar overhead",
		Header: []string{"pair", "workload",
			"PMT ovhd", "V10 ovhd", "PMT preempts/req", "V10 preempts/req"},
	}
	for _, p := range EvalPairs {
		run, err := c.pair(p)
		if err != nil {
			return nil, err
		}
		for wl := 0; wl < 2; wl++ {
			pmtW := run.pmt.Workloads[wl]
			fullW := run.full.Workloads[wl]
			pmtOvhd := mathx.Ratio(float64(pmtW.SwitchCycles), float64(run.pmt.TotalCycles), 0)
			fullOvhd := mathx.Ratio(float64(fullW.SwitchCycles), float64(run.full.TotalCycles), 0)
			pmtPre := float64(pmtW.Preemptions) / float64(mathx.MaxInt(pmtW.Requests, 1))
			fullPre := float64(fullW.Preemptions) / float64(mathx.MaxInt(fullW.Requests, 1))
			t.AddRow(PairLabel(p), pmtW.Name,
				report.Percent(pmtOvhd), report.Percent(fullOvhd),
				report.FormatFloat(pmtPre), report.FormatFloat(fullPre))
		}
	}
	return t, nil
}
