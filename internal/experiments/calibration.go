package experiments

import (
	"fmt"

	"v10/internal/mathx"
	"v10/internal/models"
	"v10/internal/report"
)

// Calib is a reproduction-hygiene artifact (not a paper figure): for every
// model it puts the calibration targets — Table 1 operator lengths and the
// Fig. 4/5/7 utilizations — next to what the generated traces actually
// measure, so drift in the workload zoo is immediately visible.
func (c *Context) Calib() (*report.Table, error) {
	t := &report.Table{
		ID:    "calib",
		Title: "Workload-zoo calibration: paper targets vs generated traces",
		Note:  "targets from Table 1 and Figs. 4/5/7; measured at each model's reference batch",
		Header: []string{"model",
			"SA len tgt (µs)", "SA len meas", "VU len tgt (µs)", "VU len meas",
			"MXU tgt", "MXU meas", "VPU tgt", "VPU meas", "HBM tgt", "HBM meas"},
	}
	for _, spec := range models.Specs() {
		w := c.batchWorkload(spec.Abbrev, spec.RefBatch)
		var sa, vu, serial, bytes, saOcc, vuOcc float64
		var nSA, nVU int
		for r := 0; r < c.ProfileRequests+5; r++ {
			st := w.Request(r).ComputeStats()
			sa += st.UsefulSACycles
			vu += st.UsefulVUCycles
			saOcc += float64(st.SACycles)
			vuOcc += float64(st.VUCycles)
			serial += float64(st.SerialCycles)
			bytes += st.HBMBytes
			nSA += st.NumSA
			nVU += st.NumVU
		}
		// A model whose trace has no ops of one kind (or no cycles at all)
		// must render as 0, not NaN — NaN cells break maxRelErr and every
		// downstream aggregate.
		measSALen := mathx.Ratio(saOcc, float64(nSA), 0) / 700
		measVULen := mathx.Ratio(vuOcc, float64(nVU), 0) / 700
		t.AddRow(spec.Name,
			report.FormatFloat(spec.MeanSAUS), report.FormatFloat(measSALen),
			report.FormatFloat(spec.MeanVUUS), report.FormatFloat(measVULen),
			report.Percent(spec.UtilSA), report.Percent(mathx.Ratio(sa, serial, 0)),
			report.Percent(spec.UtilVU), report.Percent(mathx.Ratio(vu, serial, 0)),
			report.Percent(spec.UtilHBM),
			report.Percent(mathx.Ratio(bytes, serial*c.Config.HBMBytesPerCycle(), 0)))
	}
	return t, nil
}

// maxRelErr returns the largest relative deviation between target/measured
// column pairs of a Calib table — used by tests to bound calibration drift.
func maxRelErr(t *report.Table) (float64, error) {
	var worst float64
	for _, row := range t.Rows {
		for col := 1; col+1 < len(row); col += 2 {
			tgt, err1 := parseNumeric(row[col])
			meas, err2 := parseNumeric(row[col+1])
			if err1 != nil || err2 != nil {
				return 0, fmt.Errorf("calib: bad cells %q %q", row[col], row[col+1])
			}
			if tgt == 0 {
				continue
			}
			rel := (meas - tgt) / tgt
			if rel < 0 {
				rel = -rel
			}
			if rel > worst {
				worst = rel
			}
		}
	}
	return worst, nil
}

func parseNumeric(s string) (float64, error) {
	var v float64
	if n, err := fmt.Sscanf(s, "%f", &v); n != 1 {
		return 0, err
	}
	return v, nil
}
