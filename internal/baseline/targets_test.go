package baseline

import (
	"testing"

	"v10/internal/trace"
)

func TestPMTRequestTargetsPerWorkload(t *testing.T) {
	a := synthetic("A", 5000, 100, 10)
	b := synthetic("B", 100, 5000, 10)
	res, err := RunPMT([]*trace.Workload{a, b}, PMTOptions{
		RequestTargets: []int{2, 5},
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	// PMT serves closed-loop: it may overshoot a satisfied target while the
	// other workload finishes, but never undershoot.
	for i, want := range []int{2, 5} {
		if got := res.Workloads[i].Requests; got < want {
			t.Fatalf("workload %d served %d requests, target %d", i, got, want)
		}
	}
}

func TestPMTRequestTargetZero(t *testing.T) {
	// A zero-target workload holds a context-table slot but need not serve.
	a := synthetic("A", 5000, 100, 10)
	b := synthetic("B", 100, 5000, 10)
	res, err := RunPMT([]*trace.Workload{a, b}, PMTOptions{
		RequestTargets: []int{3, 0},
		Seed:           7,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Workloads[0].Requests; got < 3 {
		t.Fatalf("workload 0 served %d requests, target 3", got)
	}
}

func TestPMTRequestTargetsValidation(t *testing.T) {
	a := synthetic("A", 5000, 100, 10)
	b := synthetic("B", 100, 5000, 10)
	if _, err := RunPMT([]*trace.Workload{a, b}, PMTOptions{
		RequestTargets: []int{-1, 2},
	}); err == nil {
		t.Error("negative target accepted")
	}
	if _, err := RunPMT([]*trace.Workload{a, b}, PMTOptions{
		RequestTargets: []int{2},
	}); err == nil {
		t.Error("target/workload length mismatch accepted")
	}
}
