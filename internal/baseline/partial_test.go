package baseline

import (
	"errors"
	"strings"
	"testing"

	"v10/internal/trace"
)

func TestPMTMaxCyclesPartialResult(t *testing.T) {
	w := synthetic("Slow", 100000, 100000, 100)
	res, err := RunPMT([]*trace.Workload{w},
		PMTOptions{RequestsPerWorkload: 50, MaxCycles: 100000})
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
	if res == nil {
		t.Fatal("partial PMT result discarded on timeout")
	}
	if !strings.Contains(err.Error(), "Slow 0/50") {
		t.Fatalf("diagnosis missing the lagging workload: %v", err)
	}
	if res.TotalCycles < 100000 {
		t.Fatalf("partial result stops at %d, want >= the cycle cap", res.TotalCycles)
	}
}
