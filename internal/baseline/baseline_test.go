package baseline

import (
	"errors"
	"math"
	"testing"

	"v10/internal/models"
	"v10/internal/npu"
	"v10/internal/sched"
	"v10/internal/trace"
)

var cfg = npu.DefaultConfig()

func synthetic(name string, saLen, vuLen int64, pairs int) *trace.Workload {
	return trace.NewWorkload(name, name, 1, func(int) *trace.Graph {
		g := &trace.Graph{}
		for i := 0; i < pairs; i++ {
			sa := trace.Op{ID: len(g.Ops), Kind: trace.KindSA, Compute: saLen}
			if len(g.Ops) > 0 {
				sa.Deps = []int{len(g.Ops) - 1}
			}
			g.Ops = append(g.Ops, sa)
			g.Ops = append(g.Ops, trace.Op{
				ID: len(g.Ops), Kind: trace.KindVU, Compute: vuLen,
				Deps: []int{len(g.Ops) - 1},
			})
		}
		return g
	})
}

func modelWL(t *testing.T, name string, batch int, seed uint64) *trace.Workload {
	t.Helper()
	s, ok := models.ByName(name)
	if !ok {
		t.Fatalf("unknown model %s", name)
	}
	return s.Workload(batch, seed, cfg)
}

func TestPMTSingleWorkloadNoSwitching(t *testing.T) {
	w := synthetic("S", 1000, 500, 4)
	res, err := RunPMT([]*trace.Workload{w}, PMTOptions{RequestsPerWorkload: 3})
	if err != nil {
		t.Fatal(err)
	}
	st := res.Workloads[0]
	if st.Requests != 3 {
		t.Fatalf("requests = %d", st.Requests)
	}
	if st.Preemptions != 0 || st.SwitchCycles != 0 {
		t.Fatalf("single workload should never context switch: %d/%d", st.Preemptions, st.SwitchCycles)
	}
	for _, lat := range st.LatencyCycles {
		if math.Abs(lat-6000) > 10 {
			t.Fatalf("latency = %v, want 6000", lat)
		}
	}
}

func TestPMTTimeSharesFairly(t *testing.T) {
	a := synthetic("A", 10000, 1000, 20)
	b := synthetic("B", 10000, 1000, 20)
	// A small quantum relative to the run length keeps the round-robin
	// truncation error low so the fairness signal is visible.
	res, err := RunPMT([]*trace.Workload{a, b}, PMTOptions{
		RequestsPerWorkload: 10, Quantum: 200000, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	pa, pb := res.ProgressRate(0), res.ProgressRate(1)
	if ratio := pa / pb; ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("equal-priority PMT progress ratio = %v, want ≈ 1", ratio)
	}
	// Both workloads must have been preempted by slice expiry.
	if res.Workloads[0].Preemptions == 0 && res.Workloads[1].Preemptions == 0 {
		t.Fatal("PMT never context switched under collocation")
	}
}

func TestPMTNoOverlapAcrossWorkloads(t *testing.T) {
	// Complementary pair under PMT: still no SA/VU overlap, because only one
	// workload owns the core at a time and its own ops are serial (O4).
	a := synthetic("A", 5000, 10, 20)
	b := synthetic("B", 10, 5000, 20)
	res, err := RunPMT([]*trace.Workload{a, b}, PMTOptions{RequestsPerWorkload: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	both, _, _ := res.OverlapBreakdown()
	if both > 0.02 {
		t.Fatalf("PMT overlap = %v, want ≈ 0", both)
	}
}

func TestPMTSwitchOverheadBounded(t *testing.T) {
	a := modelWL(t, "BERT", 32, 1)
	b := modelWL(t, "NCF", 32, 2)
	res, err := RunPMT([]*trace.Workload{a, b}, PMTOptions{RequestsPerWorkload: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	var sw int64
	for _, w := range res.Workloads {
		sw += w.SwitchCycles
	}
	frac := float64(sw) / float64(res.TotalCycles)
	if frac <= 0 || frac > 0.05 {
		t.Fatalf("PMT switch overhead = %v, want (0, 0.05] (paper: <2%%)", frac)
	}
}

func TestPMTvsV10OnComplementaryPair(t *testing.T) {
	// The paper's central claim at miniature scale: V10 beats PMT on
	// aggregate utilization and system throughput for a compatible pair.
	mk := func(seed uint64) []*trace.Workload {
		return []*trace.Workload{
			modelWL(t, "BERT", 32, seed), modelWL(t, "NCF", 32, seed+100),
		}
	}
	rates, err := SingleTenantRates(mk(1), cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	pmt, err := RunPMT(mk(1), PMTOptions{RequestsPerWorkload: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	full, err := sched.Run(mk(1), sched.Options{
		Policy: sched.Priority, Preemption: true, RequestsPerWorkload: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if full.AggregateUtil() <= pmt.AggregateUtil() {
		t.Fatalf("V10-Full agg util %v <= PMT %v", full.AggregateUtil(), pmt.AggregateUtil())
	}
	stpPMT, stpFull := pmt.STP(rates), full.STP(rates)
	if stpFull <= stpPMT {
		t.Fatalf("V10-Full STP %v <= PMT %v", stpFull, stpPMT)
	}
	if stpFull/stpPMT < 1.2 {
		t.Fatalf("V10/PMT STP ratio = %v, want > 1.2 for a compatible pair", stpFull/stpPMT)
	}
	// PMT's STP should hover near 1 (time sharing minus overhead).
	if stpPMT < 0.7 || stpPMT > 1.3 {
		t.Fatalf("PMT STP = %v, want ≈ 1", stpPMT)
	}
}

func TestPMTPriorityWeighting(t *testing.T) {
	a := synthetic("A", 10000, 1000, 20).WithPriority(0.8)
	b := synthetic("B", 10000, 1000, 20).WithPriority(0.2)
	res, err := RunPMT([]*trace.Workload{a, b}, PMTOptions{
		RequestsPerWorkload: 3, Seed: 4, WeightByPriority: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	ratio := res.ProgressRate(0) / res.ProgressRate(1)
	if ratio < 2 {
		t.Fatalf("80/20 PMT progress ratio = %v, want > 2", ratio)
	}
}

func TestPMTDeterministic(t *testing.T) {
	mk := func() []*trace.Workload {
		return []*trace.Workload{synthetic("A", 5000, 100, 10), synthetic("B", 100, 5000, 10)}
	}
	r1, err1 := RunPMT(mk(), PMTOptions{RequestsPerWorkload: 3, Seed: 9})
	r2, err2 := RunPMT(mk(), PMTOptions{RequestsPerWorkload: 3, Seed: 9})
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if r1.TotalCycles != r2.TotalCycles {
		t.Fatalf("PMT nondeterministic: %d vs %d", r1.TotalCycles, r2.TotalCycles)
	}
}

func TestPMTMaxCycles(t *testing.T) {
	w := synthetic("S", 1000000, 1000000, 50)
	_, err := RunPMT([]*trace.Workload{w}, PMTOptions{RequestsPerWorkload: 100, MaxCycles: 5000})
	if !errors.Is(err, ErrMaxCycles) {
		t.Fatalf("err = %v, want ErrMaxCycles", err)
	}
}

func TestPMTEmptyWorkloads(t *testing.T) {
	if _, err := RunPMT(nil, PMTOptions{}); err == nil {
		t.Fatal("empty workloads accepted")
	}
}

func TestRunSingleLabel(t *testing.T) {
	res, err := RunSingle(synthetic("S", 100, 100, 2), cfg, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Scheme != "Single" {
		t.Fatalf("scheme = %s", res.Scheme)
	}
}

func TestSingleTenantRatesPositive(t *testing.T) {
	ws := []*trace.Workload{
		modelWL(t, "DLRM", 32, 1), modelWL(t, "MNIST", 32, 2),
	}
	rates, err := SingleTenantRates(ws, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rates {
		if r <= 0 || r >= 1 {
			t.Fatalf("rate[%d] = %v, want in (0,1)", i, r)
		}
	}
}

func TestPMTUtilizationIsAverageOfSingles(t *testing.T) {
	// Paper §5.2: PMT's aggregate utilization is the average, not the sum, of
	// the single-tenant utilizations (minus switch overhead).
	a := modelWL(t, "BERT", 32, 11)
	b := modelWL(t, "NCF", 32, 12)
	ra, err := RunSingle(a, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := RunSingle(b, cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	pmt, err := RunPMT([]*trace.Workload{modelWL(t, "BERT", 32, 11), modelWL(t, "NCF", 32, 12)},
		PMTOptions{RequestsPerWorkload: 4, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	wantApprox := (ra.AggregateUtil() + rb.AggregateUtil()) / 2
	got := pmt.AggregateUtil()
	if math.Abs(got-wantApprox) > 0.12 {
		t.Fatalf("PMT agg util = %v, want ≈ average of singles %v", got, wantApprox)
	}
}

func TestPMTPremaPolicyFairAndComplete(t *testing.T) {
	a := synthetic("A", 10000, 1000, 20).WithPriority(0.5)
	b := synthetic("B", 10000, 1000, 20).WithPriority(0.5)
	c := synthetic("C", 10000, 1000, 20).WithPriority(0.5)
	res, err := RunPMT([]*trace.Workload{a, b, c}, PMTOptions{
		RequestsPerWorkload: 5, Quantum: 200000, Seed: 2, Policy: PMTPrema,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Workloads {
		if w.Requests < 5 {
			t.Fatalf("%s starved under PREMA policy: %d requests", w.Name, w.Requests)
		}
	}
	// Equal priorities, equal workloads: progress within 40% of each other.
	p0, p2 := res.ProgressRate(0), res.ProgressRate(2)
	if ratio := p0 / p2; ratio < 0.6 || ratio > 1.67 {
		t.Fatalf("PREMA equal-priority progress ratio = %v", ratio)
	}
}

func TestPMTPremaPrioritizes(t *testing.T) {
	// Higher priority accumulates tokens faster → scheduled more often.
	hi := synthetic("HI", 10000, 1000, 20).WithPriority(0.9)
	lo := synthetic("LO", 10000, 1000, 20).WithPriority(0.1)
	res, err := RunPMT([]*trace.Workload{hi, lo}, PMTOptions{
		RequestsPerWorkload: 8, Quantum: 100000, Seed: 3, Policy: PMTPrema,
	})
	if err != nil {
		t.Fatal(err)
	}
	// With only two workloads PREMA alternates (the other always holds max
	// tokens), so check it at least completes and does not starve anyone.
	if res.Workloads[0].Requests < 8 || res.Workloads[1].Requests < 8 {
		t.Fatal("PREMA starved a workload")
	}
}

func TestPMTPremaSJFPrefersShortJobs(t *testing.T) {
	// Three workloads, one much shorter: PREMA's SJF tiebreak should give
	// the short workload better normalized latency than plain RR gives it.
	mk := func() []*trace.Workload {
		return []*trace.Workload{
			synthetic("LONG1", 100000, 1000, 20),
			synthetic("LONG2", 100000, 1000, 20),
			synthetic("SHORT", 5000, 500, 4),
		}
	}
	rr, err := RunPMT(mk(), PMTOptions{RequestsPerWorkload: 4, Quantum: 300000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	prema, err := RunPMT(mk(), PMTOptions{
		RequestsPerWorkload: 4, Quantum: 300000, Seed: 5, Policy: PMTPrema,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prema.Workloads[2].AvgLatency() > rr.Workloads[2].AvgLatency()*1.3 {
		t.Fatalf("PREMA short-job latency %v much worse than RR %v",
			prema.Workloads[2].AvgLatency(), rr.Workloads[2].AvgLatency())
	}
}

func TestPMTPolicyString(t *testing.T) {
	if PMTRoundRobin.String() != "RR" || PMTPrema.String() != "PREMA" {
		t.Fatal("PMTPolicy names wrong")
	}
}
