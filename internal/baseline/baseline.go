// Package baseline implements the schemes V10 is compared against:
//
//   - PMT: preemptive multi-tasking (PREMA-style), the state of the art the
//     paper benchmarks against. Workloads time-share the whole NPU core at
//     task granularity; every context switch checkpoints the entire core
//     state through HBM and costs 20–40 µs.
//   - Single: a workload running alone on a dedicated core (the "no sharing"
//     deployment and the normalization baseline for STP and priority plots).
package baseline

import (
	"fmt"
	"strings"

	"v10/internal/mathx"
	"v10/internal/metrics"
	"v10/internal/npu"
	"v10/internal/obs"
	"v10/internal/sched"
	"v10/internal/sim"
	"v10/internal/trace"
)

// PMTPolicy selects how PMT picks the next workload at a context switch.
type PMTPolicy int

const (
	// PMTRoundRobin cycles through workloads in order.
	PMTRoundRobin PMTPolicy = iota
	// PMTPrema implements PREMA's token-based scheme (Choi & Rhu, HPCA'20):
	// waiting workloads accumulate tokens proportional to their priority;
	// among workloads whose tokens reach the highest outstanding level, the
	// one with the shortest estimated job wins (SJF tiebreak), and its
	// tokens reset on dispatch.
	PMTPrema
)

// String names the policy.
func (p PMTPolicy) String() string {
	if p == PMTPrema {
		return "PREMA"
	}
	return "RR"
}

// PMTOptions configure the preemptive multitasking baseline.
type PMTOptions struct {
	Config npu.CoreConfig

	// Policy selects the next-workload rule (default round-robin; the
	// paper's baseline follows PREMA, available as PMTPrema).
	Policy PMTPolicy

	// Quantum is the whole-core time slice in cycles. The default (1.4M
	// cycles ≈ 2 ms) keeps the measured context-switch overhead under the
	// ~2% the paper reports for PMT (Fig. 21): PREMA must amortize its heavy
	// checkpoint with coarse slices.
	Quantum int64

	// RequestsPerWorkload ends the run once every workload served this many.
	RequestsPerWorkload int

	// RequestTargets, when non-nil, replaces RequestsPerWorkload with a
	// per-workload completion target: the run ends once workload i has
	// served RequestTargets[i] requests (zero allowed). PMT serves
	// closed-loop — requests issue back to back — so a workload that
	// reaches its target keeps serving while slower tenants catch up; the
	// fleet layer caps its per-tenant accounting to the target.
	RequestTargets []int

	// MaxCycles is the runaway guard.
	MaxCycles int64

	// Seed drives the 20–40 µs context-switch jitter.
	Seed uint64

	// WeightByPriority scales each workload's quantum by its priority
	// (the paper's §5.6 PMT comparison assigns time slices proportionally).
	WeightByPriority bool

	// Tracer receives timeline events (dispatch, stall, run segments,
	// preemptions, whole-core context switches). nil disables tracing; every
	// emission site is nil-guarded, mirroring sched.Run.
	Tracer obs.Tracer
}

func (o PMTOptions) withDefaults() (PMTOptions, error) {
	if o.Config.SADim == 0 {
		o.Config = npu.DefaultConfig()
	}
	if err := o.Config.Validate(); err != nil {
		return o, err
	}
	if o.Quantum <= 0 {
		o.Quantum = 1_400_000
	}
	if o.RequestsPerWorkload <= 0 {
		o.RequestsPerWorkload = 20
	}
	if o.MaxCycles <= 0 {
		o.MaxCycles = 200_000_000_000
	}
	for i, t := range o.RequestTargets {
		if t < 0 {
			return o, fmt.Errorf("baseline: RequestTargets[%d] = %d is negative", i, t)
		}
	}
	return o, nil
}

// target returns how many requests workload i must serve before the run ends.
func (o PMTOptions) target(i int) int {
	if o.RequestTargets != nil {
		return o.RequestTargets[i]
	}
	return o.RequestsPerWorkload
}

// ErrMaxCycles is the sentinel for runs stopped by the MaxCycles guard. It
// aliases sched.ErrMaxCycles so errors.Is matches uniformly whichever runner
// produced the timeout.
var ErrMaxCycles = sched.ErrMaxCycles

type pmtWL struct {
	idx          int
	w            *trace.Workload
	stats        *metrics.WorkloadStats
	requestNo    int
	ops          []trace.Op
	opIdx        int
	requestStart int64

	tokens  float64 // PREMA token balance (accumulates while waiting)
	estWork float64 // running mean of request compute cycles (SJF estimate)

	remainingCompute float64 // of the current op (mid-run checkpoint)
	remainingStall   int64
	stallStartedAt   int64
	started          bool  // current op passed its stall phase
	segStart         int64 // when the current compute segment began
}

// RunPMT simulates preemptive multitasking over the workloads.
func RunPMT(workloads []*trace.Workload, opts PMTOptions) (*metrics.RunResult, error) {
	opts, err := opts.withDefaults()
	if err != nil {
		return nil, err
	}
	if len(workloads) == 0 {
		return nil, fmt.Errorf("baseline: no workloads")
	}
	if opts.RequestTargets != nil && len(opts.RequestTargets) != len(workloads) {
		return nil, fmt.Errorf("baseline: RequestTargets has %d entries for %d workloads",
			len(opts.RequestTargets), len(workloads))
	}
	cfg := opts.Config
	engine := &sim.Engine{}
	pool := sim.NewFluidPool(engine, cfg.HBMBytesPerCycle())
	busy := metrics.NewBusyTracker(cfg.NumSA, cfg.NumVU)
	rng := mathx.NewRNG(opts.Seed + 0x517cc1b7)

	wls := make([]*pmtWL, len(workloads))
	prioSum := 0.0
	for i, w := range workloads {
		wls[i] = &pmtWL{idx: i, w: w, stats: &metrics.WorkloadStats{Name: w.Name}}
		wls[i].loadRequest(cfg, len(workloads))
		prioSum += w.Priority
	}

	r := &pmtRunner{
		opts: opts, engine: engine, pool: pool, busy: busy, rng: rng,
		wls: wls, prioSum: prioSum, tr: opts.Tracer,
	}
	pool.Tracer = opts.Tracer
	r.activate(0, 0)

	done := func() bool {
		for i, wl := range wls {
			if wl.stats.Requests < opts.target(i) {
				return false
			}
		}
		return true
	}
	finished := engine.RunUntil(done, opts.MaxCycles)
	now := engine.Now()
	// Close the in-flight compute segment so the results account occupancy up
	// to the stop cycle (the counterpart of sched.Run's activeAt): without it
	// a capped run under-reports the active workload by up to one operator.
	if r.task != nil {
		wl := wls[r.active]
		op := &wl.ops[wl.opIdx]
		kind := kindOf(op.Kind)
		remaining := pool.Preempt(r.task)
		wl.stats.HBMBytes += r.task.BytesMoved()
		seg := now - wl.segStart
		wl.stats.ActiveCycles += seg
		wl.addBusy(kind, int64((wl.remainingCompute-remaining)*op.Eff()))
		r.setBusy(now, kind, -1)
		if r.tr != nil && seg > 0 {
			r.tr.Emit(r.event(obs.EvRunSegment, now, seg, wl, kind))
		}
		r.task = nil
	}
	busy.Finish(now)

	result := &metrics.RunResult{
		Scheme:      "PMT",
		TotalCycles: now,
		NumSA:       cfg.NumSA,
		NumVU:       cfg.NumVU,
		HBMCapacity: cfg.HBMBytesPerCycle(),
		Busy:        busy,
	}
	for _, wl := range wls {
		result.Workloads = append(result.Workloads, wl.stats)
	}
	if !finished {
		// Keep the partial measurements: timed-out runs are diagnosed, not
		// discarded (mirrors sched.Run).
		var lag []string
		for i, wl := range wls {
			if wl.stats.Requests < opts.target(i) {
				lag = append(lag, fmt.Sprintf("%s %d/%d",
					wl.w.Name, wl.stats.Requests, opts.target(i)))
			}
		}
		return result, fmt.Errorf("%w: stopped at cycle %d with incomplete workloads: %s",
			ErrMaxCycles, now, strings.Join(lag, ", "))
	}
	return result, nil
}

type pmtRunner struct {
	opts    PMTOptions
	engine  *sim.Engine
	pool    *sim.FluidPool
	busy    *metrics.BusyTracker
	rng     *mathx.RNG
	tr      obs.Tracer // nil when tracing is disabled
	wls     []*pmtWL
	prioSum float64

	active     int
	task       *sim.FluidTask
	stallEvent *sim.Event
	sliceEvent *sim.Event
	epoch      uint64 // invalidates stale callbacks across context switches
}

func (wl *pmtWL) loadRequest(cfg npu.CoreConfig, tenants int) {
	g := wl.w.Request(wl.requestNo)
	// PMT also partitions vector memory among resident workloads: the whole
	// point of its heavy context switch is keeping all tenants resident.
	g = trace.TileForVMem(g, cfg.VMemBytes/int64(tenants), 0.5)
	wl.ops = g.Linearize()
	wl.opIdx = 0
	wl.remainingCompute = -1
	wl.remainingStall = -1
	wl.started = false

	// Update the PREMA job-length estimate (exponential running mean over
	// the compute cycles of recent requests).
	var comp float64
	for _, op := range wl.ops {
		comp += float64(op.Compute)
	}
	if wl.estWork == 0 {
		wl.estWork = comp
	} else {
		wl.estWork = 0.7*wl.estWork + 0.3*comp
	}
}

// addBusy attributes completed busy cycles to the per-FU counters.
func (wl *pmtWL) addBusy(kind int, cycles int64) {
	if kind == 0 {
		wl.stats.SABusyCycles += cycles
	} else {
		wl.stats.VUBusyCycles += cycles
	}
}

// event builds a workload-attributed trace event. PMT time-shares the whole
// core, so FU-attributed events use index 0 of the operator's FU kind. Call
// sites guard on r.tr != nil first, keeping the disabled path free.
func (r *pmtRunner) event(t obs.EventType, now, dur int64, wl *pmtWL, kind int) obs.Event {
	e := obs.Event{
		Time: now, Dur: dur, Type: t,
		WIdx: -1, FUKind: kind, FUIndex: -1, Request: -1, Op: -1,
	}
	if wl != nil {
		e.Workload = wl.w.Name
		e.WIdx = wl.idx
		e.Request = wl.requestNo
		e.Op = wl.opIdx
	}
	if kind != obs.FUNone {
		e.FUIndex = 0
	}
	return e
}

// quantum returns the active workload's slice length.
func (r *pmtRunner) quantum(wl *pmtWL) int64 {
	if !r.opts.WeightByPriority || r.prioSum == 0 {
		return r.opts.Quantum
	}
	share := wl.w.Priority / r.prioSum * float64(len(r.wls))
	q := int64(float64(r.opts.Quantum) * share)
	if q < 1 {
		q = 1
	}
	return q
}

// activate gives the core to workload idx and arms its slice timer.
func (r *pmtRunner) activate(idx int, now int64) {
	r.active = idx
	r.epoch++
	wl := r.wls[idx]
	if r.tr != nil {
		r.tr.Emit(r.event(obs.EvDispatch, now, 0, wl, kindOf(wl.ops[wl.opIdx].Kind)))
	}
	if len(r.wls) > 1 {
		epoch := r.epoch
		r.sliceEvent = r.engine.Schedule(now+r.quantum(wl), func(t int64) {
			if epoch == r.epoch {
				r.sliceExpired(t)
			}
		})
	}
	r.resumeOp(wl, now)
}

// resumeOp continues the active workload's current operator from wherever
// the last slice left it.
func (r *pmtRunner) resumeOp(wl *pmtWL, now int64) {
	op := &wl.ops[wl.opIdx]
	if !wl.started {
		stall := wl.remainingStall
		if stall < 0 {
			stall = op.Stall
		}
		epoch := r.epoch
		r.stallEvent = r.engine.Schedule(now+stall, func(t int64) {
			if epoch != r.epoch {
				return
			}
			wl.started = true
			wl.remainingStall = -1
			if r.tr != nil {
				r.tr.Emit(r.event(obs.EvStall, t, stall, wl, obs.FUNone))
			}
			r.runOp(wl, t)
		})
		wl.remainingStall = stall
		wl.stallStartedAt = now
		return
	}
	r.runOp(wl, now)
}

// runOp executes the compute portion of the current operator.
func (r *pmtRunner) runOp(wl *pmtWL, now int64) {
	op := &wl.ops[wl.opIdx]
	work := wl.remainingCompute
	if work < 0 {
		work = float64(op.Compute)
	}
	demand := 0.0
	if op.Compute > 0 {
		demand = op.HBMBytes / float64(op.Compute)
	}
	kind := kindOf(op.Kind)
	r.setBusy(now, kind, +1)
	wl.segStart = now
	epoch := r.epoch
	r.task = r.pool.Start(work, demand, func(t int64) {
		if epoch != r.epoch {
			return
		}
		r.opComplete(wl, t)
	})
	wl.remainingCompute = work
}

func (r *pmtRunner) opComplete(wl *pmtWL, now int64) {
	op := &wl.ops[wl.opIdx]
	kind := kindOf(op.Kind)
	r.setBusy(now, kind, -1)
	// The final segment ran wall-clock from its (re)start to now; earlier
	// segments were credited when their slices expired. Occupancy is wall
	// time (not work cycles) so ActiveCycles stays conserved against the
	// busy tracker even when the fluid HBM pool stretches the segment.
	seg := now - wl.segStart
	wl.stats.ActiveCycles += seg
	wl.addBusy(kind, int64(wl.remainingCompute*op.Eff()))
	wl.stats.HBMBytes += r.task.BytesMoved()
	wl.stats.ProgressOps++
	wl.stats.ProgressOpCycles += float64(op.Compute)
	wl.stats.FLOPs += op.FLOPs
	if r.tr != nil {
		r.tr.Emit(r.event(obs.EvRunSegment, now, seg, wl, kind))
	}
	r.task = nil
	wl.remainingCompute = -1
	wl.started = false
	wl.remainingStall = -1

	wl.opIdx++
	if wl.opIdx == len(wl.ops) {
		lat := float64(now - wl.requestStart)
		wl.stats.LatencyCycles = append(wl.stats.LatencyCycles, lat)
		if r.tr != nil {
			e := r.event(obs.EvRequestDone, now, 0, wl, obs.FUNone)
			e.Arg0 = lat
			r.tr.Emit(e)
		}
		wl.stats.Requests++
		if wl.stats.Requests == 1 {
			wl.stats.FirstCompleteAt = now
		}
		wl.stats.LastCompleteAt = now
		wl.requestNo++
		wl.loadRequest(r.opts.Config, len(r.wls))
		wl.requestStart = now
	}
	r.resumeOp(wl, now)
}

// sliceExpired checkpoints the running workload (whole-core context switch
// through HBM, 20–40 µs) and hands the core to the next one.
func (r *pmtRunner) sliceExpired(now int64) {
	wl := r.wls[r.active]
	// Freeze the current operator wherever it is.
	if r.task != nil {
		op := &wl.ops[wl.opIdx]
		kind := kindOf(op.Kind)
		remaining := r.pool.Preempt(r.task)
		wl.stats.HBMBytes += r.task.BytesMoved()
		seg := now - wl.segStart
		wl.stats.ActiveCycles += seg
		wl.addBusy(kind, int64((wl.remainingCompute-remaining)*op.Eff()))
		wl.remainingCompute = remaining
		r.setBusy(now, kind, -1)
		r.task = nil
		if r.tr != nil {
			r.tr.Emit(r.event(obs.EvRunSegment, now, seg, wl, kind))
			e := r.event(obs.EvPreempt, now, 0, wl, kind)
			e.Arg0 = remaining
			r.tr.Emit(e)
		}
	} else if r.stallEvent != nil {
		r.stallEvent.Cancel()
		elapsed := now - wl.stallStartedAt
		before := wl.remainingStall
		wl.remainingStall -= elapsed
		if wl.remainingStall < 0 {
			wl.remainingStall = 0
		}
		if r.tr != nil {
			if consumed := before - wl.remainingStall; consumed > 0 {
				r.tr.Emit(r.event(obs.EvStall, now, consumed, wl, obs.FUNone))
			}
			// Arg0 = -1 marks a stall-phase preemption: no compute was
			// outstanding, so the op re-arms its remaining stall on resume.
			e := r.event(obs.EvPreempt, now, 0, wl, obs.FUNone)
			e.Arg0 = -1
			r.tr.Emit(e)
		}
	}
	wl.stats.Preemptions++
	r.epoch++

	// Whole-core context switch: nothing executes while state round-trips
	// through HBM.
	switchCycles := r.opts.Config.PMTContextSwitchCycles(r.rng.Float64())
	wl.stats.SwitchCycles += switchCycles
	next := r.pickNext()
	r.engine.Schedule(now+switchCycles, func(t int64) {
		if r.tr != nil {
			r.tr.Emit(r.event(obs.EvCtxSave, t, switchCycles, wl, obs.FUNone))
		}
		r.activate(next, t)
	})
}

// pickNext selects the workload to receive the core after a switch.
func (r *pmtRunner) pickNext() int {
	if r.opts.Policy != PMTPrema || len(r.wls) < 2 {
		return (r.active + 1) % len(r.wls)
	}
	// PREMA token scheme: everyone except the outgoing workload earned
	// tokens proportional to priority while waiting this quantum.
	for i, wl := range r.wls {
		if i != r.active {
			wl.tokens += wl.w.Priority
		}
	}
	// Candidates: workloads within 50% of the highest token balance
	// (PREMA's "high-priority group"); SJF tiebreak on estimated job length.
	maxTok := 0.0
	for i, wl := range r.wls {
		if i != r.active && wl.tokens > maxTok {
			maxTok = wl.tokens
		}
	}
	best := (r.active + 1) % len(r.wls)
	bestEst, bestTok := 0.0, -1.0
	found := false
	for i, wl := range r.wls {
		if i == r.active || wl.tokens < 0.5*maxTok {
			continue
		}
		est, tok := wl.estWork, wl.tokens
		better := !found ||
			est < 0.99*bestEst ||
			(est <= 1.01*bestEst && tok > bestTok)
		if better {
			best, bestEst, bestTok, found = i, est, tok, true
		}
	}
	r.wls[best].tokens = 0
	return best
}

func (r *pmtRunner) setBusy(now int64, kind int, delta int) {
	if kind == 0 {
		r.busy.SetBusy(now, delta, 0)
	} else {
		r.busy.SetBusy(now, 0, delta)
	}
}

func kindOf(k trace.Kind) int {
	if k == trace.KindSA {
		return 0
	}
	return 1
}

// RunSingle runs one workload alone on a dedicated core ("no sharing"),
// the ideal-performance baseline.
func RunSingle(w *trace.Workload, cfg npu.CoreConfig, requests int) (*metrics.RunResult, error) {
	res, err := sched.Run([]*trace.Workload{w}, sched.Options{
		Config:              cfg,
		Policy:              sched.RoundRobin,
		RequestsPerWorkload: requests,
		Scheme:              "Single",
	})
	return res, err
}

// SingleTenantRates returns each workload's single-tenant progress rate
// (compute cycles per wall cycle), the normalization bases for STP.
func SingleTenantRates(workloads []*trace.Workload, cfg npu.CoreConfig, requests int) ([]float64, error) {
	rates := make([]float64, len(workloads))
	for i, w := range workloads {
		res, err := RunSingle(w, cfg, requests)
		if err != nil {
			return nil, fmt.Errorf("single-tenant %s: %w", w.Name, err)
		}
		rates[i] = res.ProgressRate(0)
	}
	return rates, nil
}
