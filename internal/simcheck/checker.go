package simcheck

import (
	"fmt"
	"math"

	"v10/internal/metrics"
	"v10/internal/npu"
	"v10/internal/obs"
	"v10/internal/trace"
)

// expOp is one expected (tiled) operator: what the runner must execute for
// every request of a workload, derived independently from the scenario.
type expOp struct {
	kind    int // 0 = SA, 1 = VU
	compute int64
	stall   int64
	hbm     float64
}

// switchWin is one context-switch window (dispatch latency, context restore,
// or context save) whose cost the runner charged when the window opened.
type switchWin struct {
	kind  int
	start int64
	dur   int64
	wl    int
}

// wlCheck is the checker's shadow of one workload's context-table row,
// rebuilt purely from the event stream.
type wlCheck struct {
	id   int
	name string

	// Operator cursor and per-operator accumulators.
	curReq, curOp int
	stallSum      int64
	stallSeen     bool
	dispatches    int
	runSegs       int
	opPreempts    int
	restores      int
	delays        int

	// Execution-state machine.
	dispatched    bool // bound to an FU (V10) / holding the core (PMT)
	gateDelay     bool // dispatch-latency window must pass before running
	gateRestore   bool // context-restore window must pass before running
	running       bool
	runningSince  int64
	resumePending bool // preempted mid-compute; the resume owes a restore
	parked        bool // PMT: preempted off the core, awaiting reactivation
	fu            *fuCheck

	// Run totals.
	runSegSum     int64
	runSegSumKind [2]int64
	switchCharged int64
	preempts      int
	requestsDone  int
	lastDoneTime  int64
	latencies     []float64
	completedOps  int
	completedComp float64
	pmtSaveSum    int64 // PMT: Σ completed whole-core switch durations
	pmtSavePend   int   // PMT: switches charged but not yet completed
}

// fuCheck is the checker's shadow of one functional unit.
type fuCheck struct {
	kind, idx int
	owner     int  // workload index occupying the FU, -1 when free
	saving    bool // paying a preemption save; occupied until EvCtxSave
	saveWl    int
	saveEnd   int64
	saveDur   int64
}

// Checker is a pluggable obs.Tracer that validates conservation laws online
// against the event stream and, in Finalize, against the final RunResult.
// Build one fresh Checker per run; it is not safe for concurrent use.
type Checker struct {
	scheme string
	pmt    bool
	closed bool // closed-loop serving: request latency telescopes exactly
	cfg    npu.CoreConfig
	lat    int64 // V10 exposed dispatch latency
	pmtLo  int64 // PMT context-switch jitter bounds
	pmtHi  int64

	exp       [][]expOp
	serialMin []int64   // per workload: Σ tiled (stall + compute)
	reqHBM    []float64 // per workload: Σ tiled op HBM bytes per request
	reqHBMLo  []float64 // same, restricted to ops with compute > 0
	capacity  float64

	wls []*wlCheck
	fus [2][]*fuCheck

	// PMT whole-core state.
	pmtActive     int // workload holding the core, -1 when none
	pmtSwitchOpen bool
	pmtSwitchFrom int
	pmtSwitchAt   int64

	// Lookahead: EvRunSegment (and PMT EvStall) resolve as "completed" or
	// "preempted" depending on whether the very next emission is the
	// matching EvPreempt (the producers emit those pairs back to back).
	pending     *obs.Event
	openWins    []switchWin
	doneWinUnit [2]int64 // Σ durations of completed switch windows per kind

	lastTime int64
	events   int
	problems []string
	dead     bool // a structural assumption broke; stop to avoid cascading
}

const maxProblems = 40

// NewChecker derives the expected operator streams for one scheme of the
// scenario (in run order; reversed mirrors buildWorkloads) and returns a
// fresh checker ready to be passed as the run's Tracer.
func NewChecker(sc *Scenario, scheme string, reversed bool) *Checker {
	cfg := sc.Config
	c := &Checker{
		scheme:    scheme,
		pmt:       scheme == SchemePMT,
		closed:    sc.ArrivalRateHz == 0 && sc.ArrivalCycles == nil,
		cfg:       cfg,
		lat:       sc.DispatchLatency,
		pmtLo:     cfg.PMTContextSwitchCycles(0),
		pmtHi:     cfg.PMTContextSwitchCycles(1),
		capacity:  cfg.HBMBytesPerCycle(),
		pmtActive: -1,
	}
	reload := sc.VMemReloadFactor
	if reload == 0 {
		reload = 0.5
	}
	if c.pmt {
		reload = 0.5 // baseline.loadRequest hard-codes the reload factor
		c.lat = 0
		c.closed = true
	}
	nw := len(sc.Workloads)
	part := cfg.VMemBytes / int64(nw)
	for i := 0; i < nw; i++ {
		spec := sc.Workloads[i]
		if reversed {
			spec = sc.Workloads[nw-1-i]
		}
		g := trace.TileForVMem(spec.graph(), part, reload)
		var ops []expOp
		var serial int64
		var hbm, hbmLo float64
		for _, op := range g.Linearize() {
			kind := 1
			if op.Kind == trace.KindSA {
				kind = 0
			}
			ops = append(ops, expOp{kind: kind, compute: op.Compute, stall: op.Stall, hbm: op.HBMBytes})
			serial += op.Stall + op.Compute
			hbm += op.HBMBytes
			if op.Compute > 0 {
				hbmLo += op.HBMBytes
			}
		}
		c.exp = append(c.exp, ops)
		c.serialMin = append(c.serialMin, serial)
		c.reqHBM = append(c.reqHBM, hbm)
		c.reqHBMLo = append(c.reqHBMLo, hbmLo)
		c.wls = append(c.wls, &wlCheck{id: i, name: spec.Name})
	}
	for i := 0; i < cfg.NumSA; i++ {
		c.fus[0] = append(c.fus[0], &fuCheck{kind: 0, idx: i, owner: -1})
	}
	for i := 0; i < cfg.NumVU; i++ {
		c.fus[1] = append(c.fus[1], &fuCheck{kind: 1, idx: i, owner: -1})
	}
	return c
}

func (c *Checker) failf(format string, args ...interface{}) {
	if len(c.problems) < maxProblems {
		c.problems = append(c.problems, fmt.Sprintf(format, args...))
	}
}

// fatalf records a structural failure and stops further checking: the shadow
// state no longer matches the runner's, so everything downstream is noise.
func (c *Checker) fatalf(format string, args ...interface{}) {
	c.failf(format, args...)
	c.dead = true
}

func (c *Checker) saveCycles(kind int) int64 {
	if kind == 0 {
		return int64(c.cfg.SADim)
	}
	return c.cfg.VUPreemptCycles() / 2
}

func (c *Checker) restoreCycles(kind int) int64 {
	if kind == 0 {
		return int64(2 * c.cfg.SADim)
	}
	return (c.cfg.VUPreemptCycles() + 1) / 2
}

// Emit implements obs.Tracer.
func (c *Checker) Emit(e obs.Event) {
	if c.dead {
		return
	}
	c.events++
	if e.Time < c.lastTime {
		c.fatalf("event #%d %s at cycle %d before previous event at %d", c.events, e.Type, e.Time, c.lastTime)
		return
	}
	c.lastTime = e.Time
	if e.Dur < 0 || e.Time-e.Dur < 0 {
		c.failf("%s at cycle %d has bad span dur=%d", e.Type, e.Time, e.Dur)
	}

	// Resolve the pending run-segment / stall lookahead: the producers emit
	// EvRunSegment+EvPreempt (and PMT's partial EvStall+EvPreempt) back to
	// back, so any other event means the pending one was a completion.
	if p := c.pending; p != nil {
		c.pending = nil
		if e.Type == obs.EvPreempt && e.WIdx == p.WIdx {
			c.resolvePreempted(p, &e)
			return
		}
		c.resolveCompleted(p)
		if c.dead {
			return
		}
	}

	switch e.Type {
	case obs.EvHBMRebalance:
		if e.Arg1 > c.capacity*(1+1e-9)+1e-9 {
			c.failf("HBM rebalance at cycle %d allocated %g over capacity %g", e.Time, e.Arg1, c.capacity)
		}
		return
	case obs.EvDMA:
		return
	case obs.EvCoreFail, obs.EvCoreStall, obs.EvHBMDegrade, obs.EvVMemPressure,
		obs.EvHeartbeatMiss, obs.EvCoreDead, obs.EvMigrate, obs.EvMigrateShed:
		// Fault-injection and fleet-resilience events: not workload-state
		// transitions (WIdx may be -1 or a fleet-global tenant index), so
		// they pass through the per-workload oracle untouched.
		return
	case obs.EvCtxSave:
		if c.pmt {
			c.pmtCtxSave(e)
		} else {
			c.v10CtxSave(e)
		}
		return
	case obs.EvPreempt:
		c.fatalf("%s: preempt at cycle %d for wl %d not preceded by its run segment or stall", c.scheme, e.Time, e.WIdx)
		return
	}

	wl := c.wl(e.WIdx)
	if wl == nil {
		c.fatalf("%s at cycle %d has bad workload index %d", e.Type, e.Time, e.WIdx)
		return
	}
	if e.Workload != wl.name {
		c.failf("%s at cycle %d names workload %q, index %d is %q", e.Type, e.Time, e.Workload, e.WIdx, wl.name)
	}

	if e.Type == obs.EvRequestDone {
		c.requestDone(wl, e)
		return
	}
	if !c.advance(wl, e) {
		return
	}
	if c.pmt {
		c.pmtEvent(wl, e)
	} else {
		c.v10Event(wl, e)
	}
}

func (c *Checker) wl(idx int) *wlCheck {
	if idx < 0 || idx >= len(c.wls) {
		return nil
	}
	return c.wls[idx]
}

func (c *Checker) curOp(wl *wlCheck) expOp { return c.exp[wl.id][wl.curOp] }

// advance moves wl's operator cursor to the event's (request, op) position,
// validating that operators execute strictly in stream order.
func (c *Checker) advance(wl *wlCheck, e obs.Event) bool {
	n := len(c.exp[wl.id])
	if e.Request < 0 || e.Op < 0 || e.Op >= n {
		c.fatalf("%s at cycle %d for %s has bad position req=%d op=%d (stream has %d ops)",
			e.Type, e.Time, wl.name, e.Request, e.Op, n)
		return false
	}
	if e.Request == wl.curReq && e.Op == wl.curOp {
		return true
	}
	next := e.Request == wl.curReq && e.Op == wl.curOp+1
	wrap := e.Request == wl.curReq+1 && e.Op == 0 && wl.curOp == n-1
	if !next && !wrap {
		c.fatalf("%s at cycle %d for %s jumps from (req %d, op %d) to (req %d, op %d)",
			e.Type, e.Time, wl.name, wl.curReq, wl.curOp, e.Request, e.Op)
		return false
	}
	// The cursor only moves once the previous operator completed, which
	// resolveCompleted validated and reset; leftover accumulator state means
	// the runner abandoned an operator mid-flight.
	if wl.stallSeen || wl.dispatches > 0 || wl.runSegs > 0 {
		c.fatalf("%s at cycle %d for %s advances to (req %d, op %d) before op (req %d, op %d) completed",
			e.Type, e.Time, wl.name, e.Request, e.Op, wl.curReq, wl.curOp)
		return false
	}
	wl.curReq, wl.curOp = e.Request, e.Op
	return true
}

// resolvePreempted handles the paired emission: pending run segment (or PMT
// partial stall) followed immediately by its EvPreempt.
func (c *Checker) resolvePreempted(p *obs.Event, e *obs.Event) {
	wl := c.wl(p.WIdx)
	if e.Time != p.Time {
		c.fatalf("preempt for %s at cycle %d not at its segment end %d", wl.name, e.Time, p.Time)
		return
	}
	wl.preempts++
	if c.pmt {
		c.pmtPreempt(wl, p, e)
		return
	}
	// V10 preempts only happen mid-compute.
	if p.Type != obs.EvRunSegment {
		c.fatalf("%s: preempt for %s at cycle %d follows %s, want run segment", c.scheme, wl.name, e.Time, p.Type)
		return
	}
	op := c.curOp(wl)
	if e.Arg0 < 0 || e.Arg0 > float64(op.compute)+1e-6 {
		c.failf("preempt for %s at cycle %d reports remaining work %g of an op with compute %d", wl.name, e.Time, e.Arg0, op.compute)
	}
	fu := wl.fu
	if fu == nil || fu.kind != e.FUKind || fu.idx != e.FUIndex {
		c.fatalf("preempt for %s at cycle %d on FU %d/%d it does not hold", wl.name, e.Time, e.FUKind, e.FUIndex)
		return
	}
	wl.opPreempts++
	wl.resumePending = true
	// The FU pays the save cost before accepting new work; the workload is
	// immediately redispatchable elsewhere.
	save := c.saveCycles(fu.kind)
	fu.owner = -1
	fu.saving = true
	fu.saveWl = wl.id
	fu.saveEnd = e.Time + save
	fu.saveDur = save
	wl.fu = nil
	wl.dispatched = false
	wl.switchCharged += save
	c.openWins = append(c.openWins, switchWin{kind: fu.kind, start: e.Time, dur: save, wl: wl.id})
}

// resolveCompleted handles a pending run segment (or PMT stall) that was NOT
// followed by a preempt: the segment ran to completion.
func (c *Checker) resolveCompleted(p *obs.Event) {
	wl := c.wl(p.WIdx)
	if c.pmt && p.Type == obs.EvStall {
		// Full stall phase ended; compute starts at the same cycle.
		wl.running = true
		wl.runningSince = p.Time
		return
	}
	op := c.curOp(wl)
	if !c.pmt {
		fu := wl.fu
		if fu != nil {
			fu.owner = -1
		}
		wl.fu = nil
		wl.dispatched = false
		if wl.runSegs != wl.dispatches {
			c.failf("%s op (req %d, op %d): %d run segments over %d dispatches", wl.name, wl.curReq, wl.curOp, wl.runSegs, wl.dispatches)
		}
		if wl.dispatches != wl.opPreempts+1 {
			c.failf("%s op (req %d, op %d): %d dispatches for %d preemptions (want preempts+1)",
				wl.name, wl.curReq, wl.curOp, wl.dispatches, wl.opPreempts)
		}
		if wl.restores != wl.opPreempts {
			c.failf("%s op (req %d, op %d): %d context restores for %d preemptions", wl.name, wl.curReq, wl.curOp, wl.restores, wl.opPreempts)
		}
		if c.lat > 0 && wl.delays != wl.dispatches {
			c.failf("%s op (req %d, op %d): %d dispatch-delay spans for %d dispatches", wl.name, wl.curReq, wl.curOp, wl.delays, wl.dispatches)
		}
		if !wl.stallSeen || wl.stallSum != op.stall {
			c.failf("%s op (req %d, op %d): stall cycles %d (seen=%v), trace says %d",
				wl.name, wl.curReq, wl.curOp, wl.stallSum, wl.stallSeen, op.stall)
		}
	} else {
		if wl.runSegs != wl.opPreempts+1 {
			c.failf("%s op (req %d, op %d): %d run segments for %d compute preemptions", wl.name, wl.curReq, wl.curOp, wl.runSegs, wl.opPreempts)
		}
		if wl.stallSum != op.stall {
			c.failf("%s op (req %d, op %d): stall cycles %d, trace says %d", wl.name, wl.curReq, wl.curOp, wl.stallSum, op.stall)
		}
	}
	wl.completedOps++
	wl.completedComp += float64(op.compute)
	wl.stallSum = 0
	wl.stallSeen = false
	wl.dispatches = 0
	wl.runSegs = 0
	wl.opPreempts = 0
	wl.restores = 0
	wl.delays = 0
}

// ---- V10 event machine ----

func (c *Checker) v10Event(wl *wlCheck, e obs.Event) {
	op := c.curOp(wl)
	switch e.Type {
	case obs.EvStall:
		if wl.stallSeen || wl.dispatches > 0 {
			c.fatalf("duplicate stall for %s op (req %d, op %d) at cycle %d", wl.name, wl.curReq, wl.curOp, e.Time)
			return
		}
		if e.Dur != op.stall {
			c.failf("%s op (req %d, op %d) stall span %d, trace says %d", wl.name, wl.curReq, wl.curOp, e.Dur, op.stall)
		}
		wl.stallSeen = true
		wl.stallSum = e.Dur

	case obs.EvDispatch:
		if !wl.stallSeen {
			c.fatalf("%s dispatched at cycle %d before op (req %d, op %d) left its stall phase", wl.name, e.Time, wl.curReq, wl.curOp)
			return
		}
		if wl.dispatched || wl.running {
			c.fatalf("%s double-dispatched at cycle %d", wl.name, e.Time)
			return
		}
		fu := c.fuAt(e.FUKind, e.FUIndex)
		if fu == nil || fu.kind != op.kind {
			c.fatalf("%s dispatched to FU %d/%d at cycle %d; op (req %d, op %d) is kind %d",
				wl.name, e.FUKind, e.FUIndex, e.Time, wl.curReq, wl.curOp, op.kind)
			return
		}
		if fu.owner >= 0 || fu.saving {
			c.fatalf("%s dispatched at cycle %d to occupied FU %d/%d (owner %d, saving %v)",
				wl.name, e.Time, fu.kind, fu.idx, fu.owner, fu.saving)
			return
		}
		fu.owner = wl.id
		wl.fu = fu
		wl.dispatched = true
		wl.dispatches++
		wl.gateDelay = c.lat > 0
		wl.gateRestore = wl.resumePending
		if wl.gateDelay {
			wl.switchCharged += c.lat
			c.openWins = append(c.openWins, switchWin{kind: fu.kind, start: e.Time, dur: c.lat, wl: wl.id})
		} else {
			c.passDelayGate(wl, e.Time)
		}

	case obs.EvDispatchDelay:
		if !wl.dispatched || !wl.gateDelay || wl.fu == nil {
			c.fatalf("unexpected dispatch-delay for %s at cycle %d", wl.name, e.Time)
			return
		}
		if e.Dur != c.lat {
			c.failf("dispatch-delay for %s at cycle %d spans %d, configured latency is %d", wl.name, e.Time, e.Dur, c.lat)
		}
		wl.delays++
		wl.gateDelay = false
		c.closeWin(wl, wl.fu.kind, e.Time, c.lat)
		c.passDelayGate(wl, e.Time)

	case obs.EvCtxRestore:
		if !wl.dispatched || wl.gateDelay || !wl.gateRestore || wl.fu == nil {
			c.fatalf("unexpected context restore for %s at cycle %d", wl.name, e.Time)
			return
		}
		want := c.restoreCycles(wl.fu.kind)
		if e.Dur != want {
			c.failf("context restore for %s at cycle %d spans %d, want %d", wl.name, e.Time, e.Dur, want)
		}
		wl.restores++
		wl.gateRestore = false
		wl.resumePending = false
		c.closeWin(wl, wl.fu.kind, e.Time, want)
		wl.running = true
		wl.runningSince = e.Time

	case obs.EvRunSegment:
		if !wl.running || wl.fu == nil || wl.fu.kind != e.FUKind || wl.fu.idx != e.FUIndex {
			c.fatalf("run segment for %s at cycle %d without a running operator on FU %d/%d", wl.name, e.Time, e.FUKind, e.FUIndex)
			return
		}
		if e.Dur != e.Time-wl.runningSince {
			c.failf("run segment for %s at cycle %d spans %d, execution started at %d", wl.name, e.Time, e.Dur, wl.runningSince)
		}
		wl.runSegs++
		wl.runSegSum += e.Dur
		wl.runSegSumKind[e.FUKind] += e.Dur
		wl.running = false
		// Completion frees the FU; a preemption moves it to saving. The next
		// emission disambiguates (see Emit's pending lookahead).
		ev := e
		c.pending = &ev

	default:
		c.failf("unexpected %s event for %s at cycle %d", e.Type, wl.name, e.Time)
	}
}

// passDelayGate fires when the scheduling decision lands: either a context
// restore begins (its cost is charged now) or execution starts immediately.
func (c *Checker) passDelayGate(wl *wlCheck, now int64) {
	if wl.gateRestore {
		restore := c.restoreCycles(wl.fu.kind)
		wl.switchCharged += restore
		c.openWins = append(c.openWins, switchWin{kind: wl.fu.kind, start: now, dur: restore, wl: wl.id})
		return
	}
	wl.running = true
	wl.runningSince = now
}

func (c *Checker) v10CtxSave(e obs.Event) {
	fu := c.fuAt(e.FUKind, e.FUIndex)
	if fu == nil || !fu.saving {
		c.fatalf("context save at cycle %d on FU %d/%d with no save in flight", e.Time, e.FUKind, e.FUIndex)
		return
	}
	if e.Dur != fu.saveDur || e.Time != fu.saveEnd {
		c.failf("context save on FU %d/%d at cycle %d spans %d; preemption at %d scheduled %d cycles",
			fu.kind, fu.idx, e.Time, e.Dur, fu.saveEnd-fu.saveDur, fu.saveDur)
	}
	c.closeWin(c.wls[fu.saveWl], fu.kind, fu.saveEnd, fu.saveDur)
	fu.saving = false
}

func (c *Checker) fuAt(kind, idx int) *fuCheck {
	if kind != 0 && kind != 1 {
		return nil
	}
	if idx < 0 || idx >= len(c.fus[kind]) {
		return nil
	}
	return c.fus[kind][idx]
}

// closeWin retires the open switch window matching exactly (workload, kind,
// duration, end cycle). Windows for one workload can overlap — a preemption
// save is still draining while the workload redispatches elsewhere — so the
// match must be exact, not FIFO.
func (c *Checker) closeWin(wl *wlCheck, kind int, end, dur int64) {
	for i, w := range c.openWins {
		if w.wl == wl.id && w.kind == kind && w.dur == dur && w.start+w.dur == end {
			c.doneWinUnit[kind] += w.dur
			c.openWins = append(c.openWins[:i], c.openWins[i+1:]...)
			return
		}
	}
	c.fatalf("switch window for %s on kind %d ending at cycle %d (dur %d) was never opened", wl.name, kind, end, dur)
}

// ---- PMT event machine ----

func (c *Checker) pmtEvent(wl *wlCheck, e obs.Event) {
	op := c.curOp(wl)
	switch e.Type {
	case obs.EvDispatch:
		if c.pmtSwitchOpen {
			c.fatalf("PMT activated %s at cycle %d during a context switch", wl.name, e.Time)
			return
		}
		if c.pmtActive >= 0 {
			c.fatalf("PMT activated %s at cycle %d while %s holds the core", wl.name, e.Time, c.wls[c.pmtActive].name)
			return
		}
		if wl.dispatches > 0 && !wl.parked {
			c.fatalf("PMT reactivated %s at cycle %d without a preemption since its last slice", wl.name, e.Time)
			return
		}
		if e.FUKind != op.kind {
			c.failf("PMT activated %s at cycle %d on FU kind %d, current op is kind %d", wl.name, e.Time, e.FUKind, op.kind)
		}
		c.pmtActive = wl.id
		wl.parked = false
		wl.dispatched = true
		wl.dispatches++
		if wl.resumePending {
			// Resuming mid-compute: execution restarts at activation.
			wl.resumePending = false
			wl.running = true
			wl.runningSince = e.Time
		}

	case obs.EvStall:
		if c.pmtActive != wl.id {
			c.fatalf("PMT stall for %s at cycle %d while it does not hold the core", wl.name, e.Time)
			return
		}
		if wl.running {
			c.fatalf("PMT stall for %s at cycle %d while its operator is computing", wl.name, e.Time)
			return
		}
		wl.stallSum += e.Dur
		wl.stallSeen = true
		if wl.stallSum > op.stall {
			c.failf("%s op (req %d, op %d) accumulated %d stall cycles, trace says %d",
				wl.name, wl.curReq, wl.curOp, wl.stallSum, op.stall)
		}
		ev := e
		c.pending = &ev // full stall (starts compute) unless a preempt follows

	case obs.EvRunSegment:
		if c.pmtActive != wl.id || !wl.running {
			c.fatalf("PMT run segment for %s at cycle %d without a running operator", wl.name, e.Time)
			return
		}
		if e.FUKind != op.kind {
			c.failf("PMT run segment for %s op (req %d, op %d) on FU kind %d, trace says %d",
				wl.name, wl.curReq, wl.curOp, e.FUKind, op.kind)
		}
		if e.Dur != e.Time-wl.runningSince {
			c.failf("PMT run segment for %s at cycle %d spans %d, execution started at %d", wl.name, e.Time, e.Dur, wl.runningSince)
		}
		wl.runSegs++
		wl.runSegSum += e.Dur
		if e.FUKind == 0 || e.FUKind == 1 {
			wl.runSegSumKind[e.FUKind] += e.Dur
		}
		wl.running = false
		ev := e
		c.pending = &ev

	default:
		c.failf("unexpected %s event for %s at cycle %d", e.Type, wl.name, e.Time)
	}
}

func (c *Checker) pmtPreempt(wl *wlCheck, p *obs.Event, e *obs.Event) {
	if e.Arg0 >= 0 {
		// Mid-compute preemption: must follow the partial run segment.
		if p.Type != obs.EvRunSegment {
			c.fatalf("PMT compute preempt for %s at cycle %d follows %s", wl.name, e.Time, p.Type)
			return
		}
		wl.opPreempts++
		wl.resumePending = true
	} else {
		// Stall-phase preemption (Arg0 = -1) follows the partial stall span.
		if p.Type != obs.EvStall {
			c.fatalf("PMT stall preempt for %s at cycle %d follows %s", wl.name, e.Time, p.Type)
			return
		}
	}
	if c.pmtActive != wl.id {
		c.fatalf("PMT preempted %s at cycle %d while it does not hold the core", wl.name, e.Time)
		return
	}
	c.pmtActive = -1
	wl.dispatched = false
	wl.parked = true
	wl.pmtSavePend++
	c.pmtSwitchOpen = true
	c.pmtSwitchFrom = wl.id
	c.pmtSwitchAt = e.Time
}

func (c *Checker) pmtCtxSave(e obs.Event) {
	if !c.pmtSwitchOpen {
		c.fatalf("PMT context save at cycle %d with no switch in flight", e.Time)
		return
	}
	wl := c.wls[c.pmtSwitchFrom]
	if e.WIdx != c.pmtSwitchFrom {
		c.failf("PMT context save at cycle %d attributed to wl %d, switch was from %d", e.Time, e.WIdx, c.pmtSwitchFrom)
	}
	if e.Dur < c.pmtLo || e.Dur > c.pmtHi {
		c.failf("PMT context save at cycle %d spans %d, outside the 20-40us jitter band [%d, %d]", e.Time, e.Dur, c.pmtLo, c.pmtHi)
	}
	if e.Time != c.pmtSwitchAt+e.Dur {
		c.failf("PMT context save at cycle %d (dur %d) does not end the switch begun at %d", e.Time, e.Dur, c.pmtSwitchAt)
	}
	wl.pmtSaveSum += e.Dur
	wl.pmtSavePend--
	c.pmtSwitchOpen = false
}

// ---- request accounting ----

func (c *Checker) requestDone(wl *wlCheck, e obs.Event) {
	n := len(c.exp[wl.id])
	if e.Op != n {
		c.failf("request-done for %s at cycle %d carries op %d, want the stream length %d", wl.name, e.Time, e.Op, n)
	}
	if e.Request != wl.curReq {
		c.failf("request-done for %s at cycle %d carries request %d, current is %d", wl.name, e.Time, e.Request, wl.curReq)
	}
	if wl.completedOps == 0 || wl.completedOps%n != 0 {
		c.failf("request-done for %s at cycle %d after %d completed ops (stream has %d)", wl.name, e.Time, wl.completedOps, n)
	}
	if c.closed {
		// Closed loop: the next request starts the instant the previous one
		// completes, so latencies telescope with no lost cycles.
		if want := float64(e.Time - wl.lastDoneTime); e.Arg0 != want {
			c.failf("request-done for %s at cycle %d reports latency %g; closed-loop serving implies %g", wl.name, e.Time, e.Arg0, want)
		}
	} else if e.Arg0 < 0 {
		c.failf("request-done for %s at cycle %d reports negative latency %g", wl.name, e.Time, e.Arg0)
	}
	wl.requestsDone++
	wl.lastDoneTime = e.Time
	wl.latencies = append(wl.latencies, e.Arg0)
}

// ---- finalization ----

// Finalize resolves in-flight state against the final RunResult and returns
// every violation found. runErr is the runner's error: nil, or an
// ErrMaxCycles wrap for a capped run, which relaxes the few invariants a cap
// can legitimately leave half-open.
func (c *Checker) Finalize(res *metrics.RunResult, runErr error) []string {
	capped := runErr != nil
	pendingWl := -1
	if p := c.pending; p != nil && !c.dead {
		c.pending = nil
		if c.pmt && capped && p.Type == obs.EvRunSegment {
			// The run was cut mid-operator and RunPMT closed the in-flight
			// segment — or this was a true completion the cap hid. Either
			// way the segment cycles are real; op completion is uncertain.
			c.wl(p.WIdx).running = false
			pendingWl = p.WIdx
		} else {
			c.resolveCompleted(p)
		}
	}
	if res == nil {
		c.failf("%s returned no result", c.scheme)
		return c.problems
	}
	total := res.TotalCycles
	if c.lastTime > total {
		c.failf("last event at cycle %d is beyond the run end %d", c.lastTime, total)
	}
	if bt := res.Busy.TotalCycles(); bt != total {
		c.failf("busy tracker covered %d cycles, run lasted %d", bt, total)
	}
	if part := res.Busy.BothBusyCycles + res.Busy.SAOnlyCycles + res.Busy.VUOnlyCycles + res.Busy.IdleCycles; part != total {
		c.failf("busy partition both+saOnly+vuOnly+idle = %d does not cover %d wall cycles", part, total)
	}
	if len(res.Workloads) != len(c.wls) {
		c.failf("%s result has %d workloads, scenario has %d", c.scheme, len(res.Workloads), len(c.wls))
		return c.problems
	}

	var occKind [2]int64
	var totalActive int64
	for i, st := range res.Workloads {
		wl := c.wls[i]
		if st.Name != wl.name {
			c.failf("result workload %d is %q, scenario order says %q", i, st.Name, wl.name)
			continue
		}
		inflight := int64(0)
		if wl.running {
			inflight = total - wl.runningSince
			occKind[c.curOp(wl).kind] += inflight
		}
		occKind[0] += wl.runSegSumKind[0]
		occKind[1] += wl.runSegSumKind[1]

		if st.Requests != wl.requestsDone {
			c.failf("%s: result reports %d requests, trace shows %d request-done events", wl.name, st.Requests, wl.requestsDone)
		}
		if len(st.LatencyCycles) != len(wl.latencies) {
			c.failf("%s: %d recorded latencies for %d completed requests", wl.name, len(st.LatencyCycles), len(wl.latencies))
		} else {
			for j := range wl.latencies {
				if st.LatencyCycles[j] != wl.latencies[j] {
					c.failf("%s request %d: recorded latency %g, request-done event said %g", wl.name, j, st.LatencyCycles[j], wl.latencies[j])
					break
				}
			}
		}
		if st.Preemptions != int64(wl.preempts) {
			c.failf("%s: result reports %d preemptions, trace shows %d", wl.name, st.Preemptions, wl.preempts)
		}
		if want := wl.runSegSum + inflight; st.ActiveCycles != want {
			c.failf("%s: ActiveCycles %d, traced run segments sum to %d (incl. %d in flight)", wl.name, st.ActiveCycles, want, inflight)
		}
		if c.pmt {
			lo := wl.pmtSaveSum + int64(wl.pmtSavePend)*c.pmtLo
			hi := wl.pmtSaveSum + int64(wl.pmtSavePend)*c.pmtHi
			if st.SwitchCycles < lo || st.SwitchCycles > hi {
				c.failf("%s: SwitchCycles %d outside traced bound [%d, %d]", wl.name, st.SwitchCycles, lo, hi)
			}
		} else if st.SwitchCycles != wl.switchCharged {
			c.failf("%s: SwitchCycles %d, traced switch windows charge %d", wl.name, st.SwitchCycles, wl.switchCharged)
		}

		saCap, vuCap := wl.runSegSumKind[0], wl.runSegSumKind[1]
		if wl.running {
			if c.curOp(wl).kind == 0 {
				saCap += inflight
			} else {
				vuCap += inflight
			}
		}
		if st.SABusyCycles < 0 || st.SABusyCycles > saCap {
			c.failf("%s: useful SA cycles %d outside [0, %d] SA occupancy", wl.name, st.SABusyCycles, saCap)
		}
		if st.VUBusyCycles < 0 || st.VUBusyCycles > vuCap {
			c.failf("%s: useful VU cycles %d outside [0, %d] VU occupancy", wl.name, st.VUBusyCycles, vuCap)
		}

		progress := int64(wl.completedOps)
		if c.pmt && capped {
			hi := progress
			if pendingWl == i {
				hi++ // the unresolved trailing segment may have completed
			}
			if st.ProgressOps != progress && st.ProgressOps != hi {
				c.failf("%s: ProgressOps %d, trace shows %d completed ops (capped run)", wl.name, st.ProgressOps, progress)
			}
		} else {
			if st.ProgressOps != progress {
				c.failf("%s: ProgressOps %d, trace shows %d completed ops", wl.name, st.ProgressOps, progress)
			}
			if math.Abs(st.ProgressOpCycles-wl.completedComp) > 0.5+1e-9*wl.completedComp {
				c.failf("%s: ProgressOpCycles %g, completed ops sum to %g", wl.name, st.ProgressOpCycles, wl.completedComp)
			}
		}

		serial := c.serialMin[i]
		for j, lat := range st.LatencyCycles {
			if int64(lat) < serial {
				c.failf("%s request %d: latency %g below the serial minimum %d", wl.name, j, lat, serial)
				break
			}
			if lat > float64(total) {
				c.failf("%s request %d: latency %g exceeds the run length %d", wl.name, j, lat, total)
				break
			}
		}
		if want := int64(wl.requestsDone) * serial; total < want {
			c.failf("%s: %d requests of >= %d serial cycles cannot fit in %d total cycles", wl.name, wl.requestsDone, serial, total)
		}

		maxHBM := float64(wl.requestsDone+1)*c.reqHBM[i]*(1+1e-6) + 1.0
		minHBM := float64(wl.requestsDone)*c.reqHBMLo[i]*(1-1e-6) - 1.0
		if st.HBMBytes > maxHBM {
			c.failf("%s: HBM bytes %g exceed %d started requests x %g per request", wl.name, st.HBMBytes, wl.requestsDone+1, c.reqHBM[i])
		}
		if !capped && st.HBMBytes < minHBM {
			c.failf("%s: HBM bytes %g below %d completed requests x %g per request", wl.name, st.HBMBytes, wl.requestsDone, c.reqHBMLo[i])
		}
		totalActive += st.ActiveCycles
	}

	if occ := res.Busy.SABusyCycles + res.Busy.VUBusyCycles; occ != totalActive {
		c.failf("workload ActiveCycles sum to %d, busy tracker integrated %d FU-busy cycles", totalActive, occ)
	}
	if res.Busy.SABusyCycles != occKind[0] {
		c.failf("busy tracker SA occupancy %d, traced SA segments sum to %d", res.Busy.SABusyCycles, occKind[0])
	}
	if res.Busy.VUBusyCycles != occKind[1] {
		c.failf("busy tracker VU occupancy %d, traced VU segments sum to %d", res.Busy.VUBusyCycles, occKind[1])
	}

	var switchUnit [2]int64
	switchUnit[0], switchUnit[1] = c.doneWinUnit[0], c.doneWinUnit[1]
	for _, w := range c.openWins {
		switchUnit[w.kind] += total - w.start
	}
	if c.pmt {
		if res.Busy.SASwitchCycles != 0 || res.Busy.VUSwitchCycles != 0 {
			c.failf("PMT busy tracker shows FU switching cycles %d/%d; PMT switches whole-core", res.Busy.SASwitchCycles, res.Busy.VUSwitchCycles)
		}
	} else {
		if res.Busy.SASwitchCycles != switchUnit[0] {
			c.failf("busy tracker SA switching %d, traced windows integrate %d", res.Busy.SASwitchCycles, switchUnit[0])
		}
		if res.Busy.VUSwitchCycles != switchUnit[1] {
			c.failf("busy tracker VU switching %d, traced windows integrate %d", res.Busy.VUSwitchCycles, switchUnit[1])
		}
	}

	if u := res.HBMUtil(); u > 1+1e-6 {
		c.failf("HBM utilization %g exceeds capacity", u)
	}
	return c.problems
}
