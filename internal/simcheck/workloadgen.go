package simcheck

import (
	"fmt"

	"v10/internal/mathx"
	"v10/internal/workload"
)

// GenWorkloadScenario derives a workload-engine trial from one seed: a
// GenScenario hardware/workload draw re-armed with explicit per-workload
// arrival schedules from a random workload.Engine process (Poisson, uniform,
// diurnal, MMPP, or trace replay) instead of the closed loop or the runner's
// own Poisson draw. This puts the new arrival processes — including their
// bursts, phases, and churn windows — under the full invariant checker and
// the determinism oracle. Same seed, same scenario.
func GenWorkloadScenario(seed uint64) *Scenario {
	sc := GenScenario(seed)
	rng := mathx.NewRNG(seed ^ 0x3a7e11ab12cd34ef)

	// Explicit schedules are a V10-only interface (PMT has no arrival hook).
	sc.Schemes = []string{SchemeBase, SchemeFair, SchemeFull}
	sc.ArrivalRateHz = 0
	sc.PMTQuantum, sc.PMTPrema, sc.PMTWeighted = 0, false, false

	// Horizon: enough room for ~Requests arrivals per workload at ~30% load
	// over the fleet's total uncontended service time.
	var totalServe float64
	for i := range sc.Workloads {
		totalServe += serveCycles(sc, i)
	}
	if totalServe < 1 {
		totalServe = 1
	}
	horizon := int64(totalServe * float64(sc.Requests) / 0.3)
	if horizon < 1000 {
		horizon = 1000
	}
	perTenant := sc.Requests // expected arrivals per workload
	rateHz := float64(perTenant) / float64(horizon) * sc.Config.FrequencyHz

	eng := workload.Engine{Config: sc.Config, HorizonCycles: horizon, Seed: seed}
	sc.ArrivalCycles = make([][]int64, len(sc.Workloads))
	total := 0
	maxLen := 1
	for i := range sc.Workloads {
		spec := workload.Spec{RateHz: rateHz}
		switch rng.Intn(5) {
		case 0:
			spec.Process = workload.Poisson
		case 1:
			spec.Process = workload.Uniform
		case 2:
			spec.Process = workload.Diurnal
			spec.PhaseFrac = pickF(rng, 0, 0.25, 0.5)
		case 3:
			spec.Process = workload.MMPP
		default:
			spec.Process = workload.Replay
			gaps := make([]float64, 2+rng.Intn(4))
			for k := range gaps {
				gaps[k] = rng.Uniform(0.1, 2)
			}
			spec.GapsSec = gaps
		}
		if rng.Float64() < 0.25 { // tenant churn: a partial active window
			spec.StartCycle = int64(rng.Float64() * float64(horizon) / 2)
			spec.EndCycle = spec.StartCycle + 1 + int64(rng.Float64()*float64(horizon)/2)
		}
		arr, err := eng.Schedule(i, spec)
		if err != nil {
			// The generator only draws valid specs; an error here is itself a
			// bug worth surfacing, so make the scenario unrunnable loudly.
			panic(fmt.Sprintf("simcheck: workload generator produced invalid spec: %v", err))
		}
		sc.ArrivalCycles[i] = arr
		total += len(arr)
		if len(arr) > maxLen {
			maxLen = len(arr)
		}
	}
	if total == 0 {
		// All-empty schedules never advance the run; plant one arrival.
		sc.ArrivalCycles[0] = []int64{0}
		maxLen = 1
	}
	// The run's per-workload target is its schedule length; re-derive the
	// cycle budget against the longest schedule plus the arrival horizon
	// (the last arrival may land just before it).
	sc.Requests = maxLen
	sc.MaxCycles = budget(sc) + horizon
	return sc
}

// checkScheduleConformance is the workload-arm oracle: a clean run must
// serve exactly its schedule — workload i completes len(ArrivalCycles[i])
// requests, no more, no fewer.
func checkScheduleConformance(sc *Scenario, out *Outcome) []string {
	if sc.ArrivalCycles == nil || out.Result == nil || out.Err != nil {
		return nil
	}
	var problems []string
	for i, st := range out.Result.Workloads {
		if want := len(sc.ArrivalCycles[i]); st.Requests != want {
			problems = append(problems, fmt.Sprintf(
				"schedule conformance: workload %d served %d requests, schedule has %d",
				i, st.Requests, want))
		}
	}
	return problems
}

// RunWorkloadTrial generates the workload-engine scenario for a seed and
// checks it under the invariant checker and oracles (v10check -workload).
func RunWorkloadTrial(seed uint64) *Violation {
	sc := GenWorkloadScenario(seed)
	if err := sc.Validate(); err != nil {
		return &Violation{Scenario: sc, Problems: []string{"generator produced invalid scenario: " + err.Error()}}
	}
	return CheckScenario(sc)
}
