package simcheck

import (
	"os"
	"path/filepath"
	"reflect"
	"strconv"
	"testing"

	"v10/internal/mathx"
)

func TestGenScenarioDeterministic(t *testing.T) {
	for seed := uint64(0); seed < 25; seed++ {
		a, b := GenScenario(seed), GenScenario(seed)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("seed %d: GenScenario not deterministic", seed)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("seed %d: generated invalid scenario: %v", seed, err)
		}
	}
}

// Regression: seed 126's first draw lands in the PREMA worst case — a 1.6e12
// cycle budget with a 5000-cycle PMT quantum, i.e. billions of events — and
// the trial used to run for hours while its observation log exhausted memory.
// The generator must reject such draws and resample deterministically.
func TestGenScenarioRejectsUnaffordableDraws(t *testing.T) {
	pathological := []uint64{126, 1480} // worst offenders from a 3000-seed probe
	for _, seed := range pathological {
		s := GenScenario(seed)
		if c := trialCost(s); c > maxTrialEvents {
			t.Errorf("seed %d: kept a scenario with estimated cost %.3g > cap %.3g",
				seed, c, float64(maxTrialEvents))
		}
		if s.Seed != seed {
			t.Errorf("seed %d: resampled scenario reports Seed %d; repro-by-seed breaks", seed, s.Seed)
		}
	}
	// Affordable seeds must be bit-identical to the pre-resampling generator:
	// attempt 0 draws from exactly NewRNG(seed).
	for seed := uint64(0); seed < 50; seed++ {
		first := genScenario(seed, mathx.NewRNG(seed))
		if trialCost(first) > maxTrialEvents {
			continue
		}
		if !reflect.DeepEqual(first, GenScenario(seed)) {
			t.Errorf("seed %d: affordable scenario changed under the resample loop", seed)
		}
	}
}

func TestScenarioRoundTrip(t *testing.T) {
	sc := GenScenario(7)
	path := filepath.Join(t.TempDir(), "repro.json")
	if err := sc.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadScenario(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sc, got) {
		t.Fatalf("round trip changed the scenario:\nwrote %+v\nread  %+v", sc, got)
	}
}

// TestSerialOracleKnownValue pins the serial oracle to a hand-computed case:
// 2 ops, no tiling, no HBM throttle, so per-request = stall+compute exactly.
func TestSerialOracleKnownValue(t *testing.T) {
	sc := GenScenario(0) // borrow a valid config
	sc.Workloads = []WorkloadSpec{{Name: "W0", Priority: 1, Ops: []OpSpec{
		{Kind: "SA", Compute: 1000, Stall: 200},
		{Kind: "VU", Compute: 500, Stall: 0},
	}}}
	sc.Clones = false
	sc.Requests = 3
	sc.Schemes = append([]string(nil), AllSchemes...)
	sc.ArrivalRateHz = 0
	sc.DispatchLatency = 0
	sc.Config.VMemBytes = 32 << 20 // no tiling
	sc.Config.HBMBandwidth = 330e9
	sc.MaxCycles = 1_000_000
	if err := sc.Validate(); err != nil {
		t.Fatal(err)
	}
	_, perReq := serialExpectation(sc, SchemeBase, 0)
	if perReq != 1700 {
		t.Fatalf("serialExpectation = %d, want 1700", perReq)
	}
	if v := CheckScenario(sc); v != nil {
		t.Fatalf("hand scenario violated:\n%s", join(v.Problems))
	}
	for _, scheme := range AllSchemes {
		out := RunScheme(sc, scheme, false)
		if out.Err != nil || out.Result == nil {
			t.Fatalf("%s: %v", scheme, out.Err)
		}
		if out.Result.TotalCycles != 3*1700 {
			t.Fatalf("%s: makespan %d, want 5100", scheme, out.Result.TotalCycles)
		}
	}
}

// TestTrialSweep is the package's standing randomized gate. The default seed
// count keeps `go test ./...` fast; set SIMCHECK_TRIALS to sweep wider (CI
// runs v10check -trials 500 on top of this).
func TestTrialSweep(t *testing.T) {
	n := uint64(40)
	if s := os.Getenv("SIMCHECK_TRIALS"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("SIMCHECK_TRIALS=%q: %v", s, err)
		}
		n = v
	}
	if testing.Short() {
		n = 10
	}
	for seed := uint64(0); seed < n; seed++ {
		if v := RunTrial(seed); v != nil {
			t.Errorf("seed %d:\n%s", seed, join(v.Problems))
			if t.Failed() && seed > 0 { // report the first few, not hundreds
				return
			}
		}
	}
}

func join(problems []string) string {
	s := ""
	for _, p := range problems {
		s += "  - " + p + "\n"
	}
	return s
}
