// Chaos harness: seeded random fleet trials under fault injection. A
// ChaosScenario is a self-contained multi-core serving trial (tenants,
// placement policy, dispatcher knobs, fault schedule) whose oracles assert
// the resilience layer's conservation law — every admitted request is
// completed, migrated-then-completed, or shed, exactly once; none are lost —
// plus determinism under faults, bit-identity of the fault-free path with
// and without the fault machinery engaged, and cross-checks between the
// fleet's typed fault events and its recovery metrics. Cores that take no
// faults additionally ride the full per-core invariant Checker.
package simcheck

import (
	"encoding/json"
	"fmt"
	"reflect"
	"sync"

	"v10/internal/faults"
	"v10/internal/fleet"
	"v10/internal/mathx"
	"v10/internal/npu"
	"v10/internal/obs"
	"v10/internal/trace"
)

// ChaosScenario is one self-contained fleet trial under fault injection. It
// serializes to JSON so a failing seed replays from a repro file.
type ChaosScenario struct {
	Seed                   uint64         `json:"seed"`
	Config                 npu.CoreConfig `json:"config"`
	Cores                  int            `json:"cores"`
	Scheme                 string         `json:"scheme"` // V10 only: PMT has no checkpoint/halt support
	Policy                 string         `json:"policy"`
	RateHz                 float64        `json:"rate_hz"`
	DurationCycles         int64          `json:"duration_cycles"`
	QueueLimit             int            `json:"queue_limit"`
	HeartbeatCycles        int64          `json:"heartbeat_cycles"`
	MissedBeats            int            `json:"missed_beats"`
	MigrationRetries       int            `json:"migration_retries"`
	MigrationBackoffCycles int64          `json:"migration_backoff_cycles"`
	NoMigration            bool           `json:"no_migration,omitempty"`
	Workloads              []WorkloadSpec `json:"workloads"`
	Faults                 []faults.Fault `json:"faults,omitempty"`
}

// ChaosViolation is a failed chaos trial: the scenario plus every oracle
// message, JSON-serializable for replay.
type ChaosViolation struct {
	Scenario *ChaosScenario `json:"scenario"`
	Problems []string       `json:"problems"`
}

// Error implements error.
func (v *ChaosViolation) Error() string {
	return fmt.Sprintf("simcheck: chaos seed %d: %d problem(s), first: %s",
		v.Scenario.Seed, len(v.Problems), v.Problems[0])
}

// GenChaosScenario derives a complete random chaos trial from one seed:
// fleet shape, dispatcher and recovery knobs, tenant set, offered load from
// under- to over-saturated, and a fault schedule mixing fail-stops (single
// core up to whole fleet), stragglers, HBM degradation, and vector-memory
// pressure — plus the occasional fault-free trial, which must match the
// pre-fault dispatcher bit for bit. Same seed, same scenario.
func GenChaosScenario(seed uint64) *ChaosScenario {
	rng := mathx.NewRNG(seed + 0xc4a05)
	cfg := npu.DefaultConfig()
	cfg.TimeSlice = pick64(rng, 1024, 8192, 32768)

	cs := &ChaosScenario{
		Seed:                   seed,
		Config:                 cfg,
		Cores:                  2 + rng.Intn(3),
		Scheme:                 pickScheme(rng),
		Policy:                 "least-loaded",
		DurationCycles:         pick64(rng, 300_000, 1_000_000, 2_000_000),
		QueueLimit:             1 + rng.Intn(8),
		HeartbeatCycles:        pick64(rng, 50_000, 100_000, 250_000),
		MissedBeats:            1 + rng.Intn(3),
		MigrationRetries:       1 + rng.Intn(5),
		MigrationBackoffCycles: pick64(rng, 50_000, 100_000, 250_000),
		NoMigration:            rng.Float64() < 0.15,
	}
	if rng.Float64() < 0.3 {
		cs.Policy = "random"
	}

	nw := 2 + rng.Intn(5)
	partition := cfg.VMemBytes / int64(nw)
	for i := 0; i < nw; i++ {
		cs.Workloads = append(cs.Workloads, WorkloadSpec{
			Name:     fmt.Sprintf("T%d", i),
			Priority: 1,
			Ops:      genOps(rng, partition),
		})
	}
	balanceDurations(&Scenario{Config: cfg, Workloads: cs.Workloads})

	// Offered load: util × fleet capacity, spread evenly over the tenants,
	// capped so a trial stays small even when requests are microscopic.
	var totalServe float64
	sc := &Scenario{Config: cfg, Workloads: cs.Workloads}
	for i := range cs.Workloads {
		totalServe += serveCycles(sc, i)
	}
	if totalServe < 1 {
		totalServe = 1
	}
	util := pickF(rng, 0.4, 0.8, 1.5)
	cs.RateHz = util * float64(cs.Cores) * cfg.FrequencyHz / totalServe
	if maxRate := 120 * cfg.FrequencyHz / float64(cs.DurationCycles); cs.RateHz > maxRate {
		cs.RateHz = maxRate
	}

	// Fault schedule: mostly drawn from the generator at an MTTF aggressive
	// enough to kill cores regularly; sometimes none at all.
	if rng.Float64() < 0.85 {
		horizon := 2 * cs.DurationCycles
		mttf := horizon / int64(1+rng.Intn(4))
		if rng.Float64() < 0.2 {
			mttf = horizon * 8 // rare faults: most cores survive
		}
		cs.Faults = faults.Generate(cs.Cores, horizon, mttf, seed+0xdead).Faults
	}
	return cs
}

func pickScheme(rng *mathx.RNG) string {
	switch rng.Intn(4) {
	case 0:
		return SchemeBase
	case 1:
		return SchemeFair
	default:
		return SchemeFull
	}
}

// buildWorkloads materializes the tenant set (same generator machinery as the
// single-core scenarios).
func (cs *ChaosScenario) buildWorkloads() []*trace.Workload {
	return (&Scenario{Workloads: cs.Workloads}).BuildWorkloads()
}

// options maps the scenario onto fleet.Options. schedule selects the fault
// schedule (the fault-free bit-identity oracle passes nil and empty).
func (cs *ChaosScenario) options(schedule *faults.Schedule) fleet.Options {
	return fleet.Options{
		Config:                 cs.Config,
		Cores:                  cs.Cores,
		Scheme:                 cs.Scheme,
		Policy:                 fleet.Policy(cs.Policy),
		RateHz:                 cs.RateHz,
		DurationCycles:         cs.DurationCycles,
		QueueLimit:             cs.QueueLimit,
		HeartbeatCycles:        cs.HeartbeatCycles,
		MissedBeats:            cs.MissedBeats,
		MigrationRetries:       cs.MigrationRetries,
		MigrationBackoffCycles: cs.MigrationBackoffCycles,
		NoMigration:            cs.NoMigration,
		Faults:                 schedule,
		Seed:                   cs.Seed,
		// Serial inside one trial: v10check parallelizes across trials, and
		// nesting worker pools just thrashes the same cores. CoreTracer
		// checker registration is mutex-guarded, so a parallel inner run is
		// safe if a caller ever wants one.
		Parallel: 1,
	}
}

// CheckChaosScenario runs the trial and returns every oracle violation.
func CheckChaosScenario(cs *ChaosScenario) (problems []string) {
	defer func() {
		if r := recover(); r != nil {
			problems = append(problems, fmt.Sprintf("panic: %v", r))
		}
	}()
	schedule := &faults.Schedule{Faults: cs.Faults}
	if err := schedule.Validate(cs.Cores); err != nil {
		return []string{fmt.Sprintf("generated fault schedule invalid: %v", err)}
	}

	// Run 1: faults on, fleet event log attached, per-core invariant
	// checkers riding every core the fault schedule leaves untouched.
	faulty := make(map[int]bool)
	for _, f := range cs.Faults {
		faulty[f.Core] = true
	}
	checkers := map[int]*Checker{}
	var checkersMu sync.Mutex
	fleetLog := &obs.Log{}
	o := cs.options(schedule)
	o.Tracer = fleetLog
	o.CoreTracer = func(core int, roster []int) obs.Tracer {
		if faulty[core] {
			return &obs.Log{} // perturbed timing: the per-core oracle does not apply
		}
		sc := &Scenario{Config: cs.Config, ArrivalRateHz: 1} // open-loop marker
		for _, t := range roster {
			sc.Workloads = append(sc.Workloads, cs.Workloads[t])
		}
		ck := NewChecker(sc, cs.Scheme, false)
		// The callback fires on fleet worker goroutines when the inner run is
		// parallel; only the map itself is shared (each checker then sees one
		// core's serial event stream).
		checkersMu.Lock()
		checkers[core] = ck
		checkersMu.Unlock()
		return ck
	}
	res, err := fleet.Run(cs.buildWorkloads(), o)
	if err != nil {
		problems = append(problems, fmt.Sprintf("fleet run error: %v", err))
	}
	if res == nil {
		return problems
	}
	for core, ck := range checkers {
		if res.Cores[core].Run == nil {
			continue
		}
		for _, p := range ck.Finalize(res.Cores[core].Run, nil) {
			problems = append(problems, fmt.Sprintf("core %d checker: %s", core, p))
		}
	}
	problems = append(problems, checkChaosConservation(cs, res, err == nil)...)
	problems = append(problems, checkChaosEvents(res, fleetLog.Events, cs.MissedBeats)...)

	// Run 2: determinism — the same seed must reproduce the faulted run bit
	// for bit, per-core cycle measurements included.
	res2, err2 := fleet.Run(cs.buildWorkloads(), cs.options(schedule))
	if err2 != nil {
		problems = append(problems, fmt.Sprintf("fleet re-run error: %v", err2))
	}
	if res2 != nil {
		if !sameResult(stripTracerView(res), res2) {
			problems = append(problems, "faulted run is not deterministic: re-run with the same seed differs")
		}
	}

	// Run 3 (fault-free trials only): a nil fault schedule and an empty one
	// must be bit-identical — the fault machinery may not perturb the
	// fault-free path at all.
	if len(cs.Faults) == 0 {
		res3, err3 := fleet.Run(cs.buildWorkloads(), cs.options(nil))
		if err3 != nil {
			problems = append(problems, fmt.Sprintf("nil-schedule run error: %v", err3))
		}
		if res3 != nil && !sameResult(stripTracerView(res), res3) {
			problems = append(problems, "empty fault schedule is not bit-identical to a nil schedule")
		}
	}
	return problems
}

// stripTracerView returns res as-is; the comparison runs carry no tracers,
// and fleet results hold no tracer state, so the faulted run compares
// directly. Kept as a seam in case Result ever grows run-local handles.
func stripTracerView(res *fleet.Result) *fleet.Result { return res }

func sameResult(a, b *fleet.Result) bool {
	ja, errA := json.Marshal(a)
	jb, errB := json.Marshal(b)
	if errA != nil || errB != nil || string(ja) != string(jb) {
		return false
	}
	// The JSON projection hides the per-core RunResults (CoreResult.Run is
	// json:"-"); DeepEqual covers the cycle-accurate measurements too.
	return reflect.DeepEqual(a, b)
}

// checkChaosConservation asserts the fleet's request-conservation law per
// tenant and in aggregate: nothing is lost, nothing is double-counted.
func checkChaosConservation(cs *ChaosScenario, res *fleet.Result, uncapped bool) (problems []string) {
	failf := func(format string, args ...any) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}
	var offered, admitted, shed, completed, migrated, migShed int
	for _, ts := range res.Tenants {
		// Admitted counts front-door admissions; migration-shed victims were
		// admitted first and re-counted into Shed when dropped.
		if ts.Offered != ts.Admitted+ts.Shed-ts.MigrationShed {
			failf("tenant %d: offered %d != admitted %d + shed %d - migration-shed %d",
				ts.Tenant, ts.Offered, ts.Admitted, ts.Shed, ts.MigrationShed)
		}
		inflight := ts.Admitted - ts.MigrationShed - ts.Completed
		if inflight < 0 {
			failf("tenant %d: completed %d exceeds admitted %d - migration-shed %d — a request was served twice",
				ts.Tenant, ts.Completed, ts.Admitted, ts.MigrationShed)
		}
		if uncapped && inflight > 0 {
			failf("tenant %d: %d admitted request(s) neither completed nor shed — lost", ts.Tenant, inflight)
		}
		if ts.MigrationShed > 0 && cs.NoMigration && ts.Migrated > 0 {
			failf("tenant %d: %d migration landing(s) under NoMigration", ts.Tenant, ts.Migrated)
		}
		if ts.Good > ts.Completed {
			failf("tenant %d: %d SLO-good of %d completed", ts.Tenant, ts.Good, ts.Completed)
		}
		offered += ts.Offered
		admitted += ts.Admitted
		shed += ts.Shed
		completed += ts.Completed
		migrated += ts.Migrated
		migShed += ts.MigrationShed
	}
	if res.Offered != offered || res.Admitted != admitted || res.Shed != shed ||
		res.Completed != completed || res.Migrated != migrated || res.MigrationShed != migShed {
		failf("fleet totals (offered %d admitted %d shed %d completed %d migrated %d migration-shed %d) "+
			"do not match the tenant sums (%d %d %d %d %d %d)",
			res.Offered, res.Admitted, res.Shed, res.Completed, res.Migrated, res.MigrationShed,
			offered, admitted, shed, completed, migrated, migShed)
	}
	if uncapped && res.Offered != res.Completed+res.Shed {
		failf("fleet: offered %d != completed %d + shed %d", res.Offered, res.Completed, res.Shed)
	}

	// Every fail-stopped core — and only those — must be declared dead.
	want := map[int]bool{}
	for _, f := range cs.Faults {
		if f.Kind == faults.KindFail {
			want[f.Core] = true
		}
	}
	got := map[int]bool{}
	for _, c := range res.FailedCores {
		if got[c] {
			failf("core %d declared dead twice", c)
		}
		got[c] = true
		if !want[c] {
			failf("core %d declared dead without a fail-stop fault", c)
		}
	}
	for c := range want {
		if !got[c] {
			failf("fail-stopped core %d never declared dead", c)
		}
	}
	return problems
}

// checkChaosEvents cross-checks the typed fleet events against the recovery
// metrics: the Perfetto timeline and the JSON summary must tell one story.
func checkChaosEvents(res *fleet.Result, events []obs.Event, missedBeats int) (problems []string) {
	counts := map[obs.EventType]int{}
	for _, e := range events {
		counts[e.Type]++
	}
	check := func(ty obs.EventType, want int, what string) {
		if counts[ty] != want {
			problems = append(problems, fmt.Sprintf("%d %s event(s) for %s count %d", counts[ty], ty, what, want))
		}
	}
	check(obs.EvCoreDead, len(res.FailedCores), "failed-core")
	check(obs.EvHeartbeatMiss, len(res.FailedCores)*missedBeats, "failed-cores×missed-beats")
	check(obs.EvMigrate, res.Migrated, "migrated")
	check(obs.EvMigrateShed, res.MigrationShed, "migration-shed")
	return problems
}

// RunChaosTrial generates and checks one chaos trial, returning nil on pass.
func RunChaosTrial(seed uint64) *ChaosViolation {
	cs := GenChaosScenario(seed)
	if problems := CheckChaosScenario(cs); len(problems) > 0 {
		return &ChaosViolation{Scenario: cs, Problems: problems}
	}
	return nil
}
