// Package simcheck is the differential simulation-testing subsystem: a
// seeded random scenario generator, a runtime invariant checker that rides
// the obs.Tracer hook through sched.Run and baseline.RunPMT, and a layer of
// cross-scheme differential oracles. Together they form the standing harness
// that every scheduler change must pass (see README "Testing & verification"):
//
//   - Checker asserts conservation laws on the event stream and the final
//     RunResult: active + idle + switching cycles partition wall cycles per
//     FU, every dispatched operator completes or is preempted-and-resumed
//     exactly once, per-workload ActiveCycles equals the sum of traced run
//     segments, and HBM bytes stay within what the dispatched operators can
//     generate.
//   - The oracles check that V10 with one workload is serial execution
//     (makespan and per-op timing, computed independently), that equal-
//     priority scheduling is permutation-fair within a bound, and that runs
//     are bit-deterministic.
//   - Violation captures a failing trial as a seed-addressed, minimized,
//     JSON-serializable repro that cmd/v10check and the fuzz targets replay.
package simcheck

import (
	"encoding/json"
	"fmt"
	"os"

	"v10/internal/npu"
	"v10/internal/trace"
)

// Scheme names accepted in Scenario.Schemes.
const (
	SchemePMT  = "PMT"
	SchemeBase = "V10-Base"
	SchemeFair = "V10-Fair"
	SchemeFull = "V10-Full"
)

// AllSchemes lists every runnable scheme in canonical order.
var AllSchemes = []string{SchemePMT, SchemeBase, SchemeFair, SchemeFull}

// OpSpec is one generated tensor operator. Ops chain sequentially (op i
// depends on op i-1), matching the paper's observation that operators within
// one workload execute sequentially.
type OpSpec struct {
	Kind       string  `json:"kind"` // "SA" or "VU"
	Compute    int64   `json:"compute"`
	Stall      int64   `json:"stall"`
	Efficiency float64 `json:"efficiency,omitempty"`
	HBMBytes   float64 `json:"hbm_bytes,omitempty"`
	VMemBytes  int64   `json:"vmem_bytes,omitempty"`
}

// WorkloadSpec is one generated workload: a fixed operator list served
// repeatedly (every request reuses the same graph, which keeps scenarios
// fully serializable and minimizable).
type WorkloadSpec struct {
	Name     string   `json:"name"`
	Priority float64  `json:"priority"`
	Ops      []OpSpec `json:"ops"`
}

// Scenario is one self-contained random trial: hardware config, scheduler
// knobs, and workload set. It serializes to JSON so a failing seed replays
// from a repro file byte-for-byte.
type Scenario struct {
	Seed             uint64         `json:"seed"`
	Config           npu.CoreConfig `json:"config"`
	Schemes          []string       `json:"schemes"`
	Requests         int            `json:"requests"`
	MaxCycles        int64          `json:"max_cycles"`
	PreemptMargin    float64        `json:"preempt_margin,omitempty"`
	VMemReloadFactor float64        `json:"vmem_reload_factor,omitempty"`
	DispatchLatency  int64          `json:"dispatch_latency,omitempty"`
	ArrivalRateHz    float64        `json:"arrival_rate_hz,omitempty"`
	// ArrivalCycles is the explicit open-loop schedule per workload (the
	// workload-engine arm): absolute nondecreasing arrival cycles, one
	// schedule per workload. Mutually exclusive with ArrivalRateHz; V10
	// schemes only (PMT has no arrival hook).
	ArrivalCycles [][]int64      `json:"arrival_cycles,omitempty"`
	PMTQuantum    int64          `json:"pmt_quantum,omitempty"`
	PMTPrema      bool           `json:"pmt_prema,omitempty"`
	PMTWeighted   bool           `json:"pmt_weighted,omitempty"`
	Clones        bool           `json:"clones,omitempty"` // workloads are identical copies
	Workloads     []WorkloadSpec `json:"workloads"`
}

// graph materializes one workload's operator DAG (fresh per call so callers
// may tile or mutate it freely).
func (w WorkloadSpec) graph() *trace.Graph {
	g := &trace.Graph{Ops: make([]trace.Op, len(w.Ops))}
	for i, op := range w.Ops {
		kind := trace.KindVU
		if op.Kind == "SA" {
			kind = trace.KindSA
		}
		var deps []int
		if i > 0 {
			deps = []int{i - 1}
		}
		g.Ops[i] = trace.Op{
			ID:         i,
			Kind:       kind,
			Compute:    op.Compute,
			Stall:      op.Stall,
			Efficiency: op.Efficiency,
			FLOPs:      2 * float64(op.Compute), // nominal; checker does not rely on it
			HBMBytes:   op.HBMBytes,
			VMemBytes:  op.VMemBytes,
			Deps:       deps,
		}
	}
	return g
}

// BuildWorkloads materializes the scenario's workload set in declaration
// order. The generators are deterministic and request-independent.
func (s *Scenario) BuildWorkloads() []*trace.Workload {
	return s.buildWorkloads(false)
}

// buildWorkloads optionally reverses the declaration order (the permutation
// the fairness oracle compares against).
func (s *Scenario) buildWorkloads(reversed bool) []*trace.Workload {
	out := make([]*trace.Workload, len(s.Workloads))
	for i := range s.Workloads {
		spec := s.Workloads[i]
		if reversed {
			spec = s.Workloads[len(s.Workloads)-1-i]
		}
		g := spec.graph() // capture one immutable template
		w := trace.NewWorkload(spec.Name, "simcheck", 1, func(request int) *trace.Graph {
			fresh := *g
			fresh.Ops = append([]trace.Op(nil), g.Ops...)
			return &fresh
		})
		out[i] = w.WithPriority(spec.Priority)
	}
	return out
}

// Validate rejects scenarios the runners would refuse or that the checker
// cannot reason about.
func (s *Scenario) Validate() error {
	if err := s.Config.Validate(); err != nil {
		return err
	}
	if len(s.Workloads) == 0 {
		return fmt.Errorf("simcheck: scenario has no workloads")
	}
	if s.Requests <= 0 {
		return fmt.Errorf("simcheck: non-positive requests %d", s.Requests)
	}
	if len(s.Schemes) == 0 {
		return fmt.Errorf("simcheck: scenario runs no schemes")
	}
	for _, sch := range s.Schemes {
		switch sch {
		case SchemePMT, SchemeBase, SchemeFair, SchemeFull:
		default:
			return fmt.Errorf("simcheck: unknown scheme %q", sch)
		}
		if sch == SchemePMT && (s.ArrivalRateHz > 0 || s.ArrivalCycles != nil) {
			return fmt.Errorf("simcheck: PMT does not support open-loop arrivals")
		}
	}
	if s.ArrivalCycles != nil {
		if s.ArrivalRateHz > 0 {
			return fmt.Errorf("simcheck: ArrivalCycles and ArrivalRateHz are mutually exclusive")
		}
		if len(s.ArrivalCycles) != len(s.Workloads) {
			return fmt.Errorf("simcheck: %d arrival schedules for %d workloads",
				len(s.ArrivalCycles), len(s.Workloads))
		}
		for i, schedule := range s.ArrivalCycles {
			prev := int64(0)
			for k, at := range schedule {
				if at < prev {
					return fmt.Errorf("simcheck: arrival_cycles[%d][%d] = %d is negative or decreasing", i, k, at)
				}
				prev = at
			}
		}
	}
	if s.Clones {
		// The clone-symmetry oracle is exact and only sound for true clones;
		// the minimizer clears the flag whenever it perturbs a workload.
		first := s.Workloads[0]
		for _, w := range s.Workloads[1:] {
			if w.Priority != first.Priority || len(w.Ops) != len(first.Ops) {
				return fmt.Errorf("simcheck: clones flag set but workloads differ")
			}
			for i := range w.Ops {
				if w.Ops[i] != first.Ops[i] {
					return fmt.Errorf("simcheck: clones flag set but workloads differ")
				}
			}
		}
	}
	for _, w := range s.Workloads {
		if !(w.Priority > 0) {
			return fmt.Errorf("simcheck: workload %s has non-positive priority", w.Name)
		}
		if len(w.Ops) == 0 {
			return fmt.Errorf("simcheck: workload %s has no ops", w.Name)
		}
		for i, op := range w.Ops {
			if op.Kind != "SA" && op.Kind != "VU" {
				return fmt.Errorf("simcheck: workload %s op %d has kind %q", w.Name, i, op.Kind)
			}
			if op.Compute < 0 || op.Stall < 0 || op.HBMBytes < 0 || op.VMemBytes < 0 {
				return fmt.Errorf("simcheck: workload %s op %d has negative fields", w.Name, i)
			}
		}
	}
	return nil
}

// equalPriorities reports whether every workload has the same priority.
func (s *Scenario) equalPriorities() bool {
	for _, w := range s.Workloads[1:] {
		if w.Priority != s.Workloads[0].Priority {
			return false
		}
	}
	return true
}

// WriteFile serializes the scenario as indented JSON.
func (s *Scenario) WriteFile(path string) error {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// ReadScenario loads a scenario repro file written by WriteFile / v10check.
func ReadScenario(path string) (*Scenario, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Scenario
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("simcheck: %s: %w", path, err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}
