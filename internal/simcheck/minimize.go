package simcheck

// Minimize greedily shrinks a failing scenario while it keeps failing:
// fewer schemes, fewer workloads, fewer requests, fewer and simpler
// operators, then default knobs. Each candidate is re-checked from scratch
// (at most maxChecks CheckScenario calls), so the returned repro fails for a
// real reason, not an artifact of the shrinking. Returns the smallest failing
// scenario found and its violation.
func Minimize(sc *Scenario, maxChecks int) (*Scenario, *Violation) {
	best := sc
	bestV := CheckScenario(sc)
	if bestV == nil {
		return sc, nil
	}
	checks := 1
	for improved := true; improved && checks < maxChecks; {
		improved = false
		for _, cand := range shrinkCandidates(best) {
			if checks >= maxChecks {
				break
			}
			if cand.Validate() != nil {
				continue
			}
			checks++
			if v := CheckScenario(cand); v != nil {
				best, bestV = cand, v
				improved = true
				break // restart the pass from the shrunken scenario
			}
		}
	}
	return best, bestV
}

// shrinkCandidates proposes one-step simplifications, most aggressive first.
func shrinkCandidates(s *Scenario) []*Scenario {
	var out []*Scenario
	add := func(c *Scenario) {
		if !zeroDurationWorkload(c) {
			out = append(out, c)
		}
	}

	if len(s.Schemes) > 1 {
		for _, scheme := range s.Schemes {
			c := s.clone()
			c.Schemes = []string{scheme}
			add(c)
		}
	}
	if len(s.Workloads) > 1 {
		for i := range s.Workloads {
			c := s.clone()
			c.Workloads = append(c.Workloads[:i], c.Workloads[i+1:]...)
			c.Clones = c.Clones && len(c.Workloads) > 1
			add(c)
		}
	}
	if s.Requests > 1 {
		c := s.clone()
		c.Requests = 1
		add(c)
	}
	for i := range s.Workloads {
		if len(s.Workloads[i].Ops) > 1 {
			for j := range s.Workloads[i].Ops {
				c := s.clone()
				ops := c.Workloads[i].Ops
				c.Workloads[i].Ops = append(ops[:j], ops[j+1:]...)
				c.Clones = false
				add(c)
			}
		}
		for j := range s.Workloads[i].Ops {
			for _, f := range []func(*OpSpec){
				func(o *OpSpec) { o.Stall = 0 },
				func(o *OpSpec) { o.HBMBytes = 0 },
				func(o *OpSpec) { o.VMemBytes = 0 },
				func(o *OpSpec) { o.Efficiency = 0 },
			} {
				c := s.clone()
				f(&c.Workloads[i].Ops[j])
				if c.Workloads[i].Ops[j] == s.Workloads[i].Ops[j] {
					continue // field already zero
				}
				c.Clones = false
				add(c)
			}
		}
	}
	for _, f := range []func(*Scenario) bool{
		func(c *Scenario) bool { c.DispatchLatency = 0; return s.DispatchLatency != 0 },
		func(c *Scenario) bool { c.PreemptMargin = 0; return s.PreemptMargin != 0 },
		func(c *Scenario) bool { c.VMemReloadFactor = 0.5; return s.VMemReloadFactor != 0.5 },
		func(c *Scenario) bool { c.ArrivalRateHz = 0; return s.ArrivalRateHz != 0 },
		func(c *Scenario) bool { c.PMTQuantum = 0; return s.PMTQuantum != 0 },
		func(c *Scenario) bool { c.PMTPrema = false; return s.PMTPrema },
		func(c *Scenario) bool { c.PMTWeighted = false; return s.PMTWeighted },
	} {
		c := s.clone()
		if f(c) {
			add(c)
		}
	}
	return out
}

// zeroDurationWorkload rejects candidates where some workload's every
// operator has zero compute and zero stall: in the closed loop such a
// workload chains events at a single timestamp forever (the generator's
// balanceDurations floor rules this out for generated scenarios).
func zeroDurationWorkload(s *Scenario) bool {
	for _, w := range s.Workloads {
		var t int64
		for _, op := range w.Ops {
			t += op.Compute + op.Stall
		}
		if t == 0 {
			return true
		}
	}
	return false
}

// clone deep-copies the scenario (Config is a plain value struct).
func (s *Scenario) clone() *Scenario {
	c := *s
	c.Schemes = append([]string(nil), s.Schemes...)
	c.Workloads = make([]WorkloadSpec, len(s.Workloads))
	for i, w := range s.Workloads {
		w.Ops = append([]OpSpec(nil), w.Ops...)
		c.Workloads[i] = w
	}
	return &c
}
